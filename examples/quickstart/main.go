// Quickstart: build a synthetic edge storage scenario, formulate an
// IDDE strategy with IDDE-G, and inspect the result.
package main

import (
	"fmt"
	"log"

	"idde"
)

func main() {
	// A mid-size scenario at the paper's default setting: 30 edge
	// servers, 200 users, 5 data items, density-1.0 edge network.
	sc, err := idde.NewScenario(idde.ScenarioConfig{
		Servers:   30,
		Users:     200,
		DataItems: 5,
		Seed:      42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Run the paper's two-phase algorithm and grab its diagnostics.
	st, diag, err := sc.SolveIDDEG()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("IDDE-G on N=%d, M=%d, K=%d (%.0f MB reserved storage)\n",
		sc.Servers(), sc.Users(), sc.DataItems(), sc.TotalStorageMB())
	fmt.Printf("  objective #1, average data rate:        %8.2f MBps\n", st.AvgRateMBps)
	fmt.Printf("  objective #2, average delivery latency: %8.3f ms\n", st.AvgLatencyMs)
	fmt.Printf("  formulated in %v\n", st.Elapsed.Round(1e6))
	fmt.Printf("  phase 1: %d game iterations (converged=%v, %d frozen)\n",
		diag.GameUpdates, diag.GameConverged, diag.FrozenUsers)
	fmt.Printf("  phase 2: %d replicas, %.2f s total latency shaved vs all-cloud\n",
		diag.Replicas, diag.LatencyReductionSec)

	// Every user ends up assigned to a (server, channel) pair.
	server, channel, ok := st.Assignment(0)
	if ok {
		fmt.Printf("  e.g. user 0 -> server v%d channel c%d at %.1f MBps\n",
			server, channel, st.UserRateMBps(0))
	}
}

// Vendor competition: the paper's introduction motivates reservations
// with competition — "app vendors have to compete for storage
// resources for storing their own data". This example puts three
// vendors (think a social network, a game publisher and a video
// service) on the same 25-server edge system and compares three ways of
// splitting the contested reservations:
//
//	even-split    — naive equal shares per server
//	proportional  — shares follow local demand
//	draft         — vendors alternate greedy claims (an auction)
package main

import (
	"fmt"
	"log"

	"idde"
)

func main() {
	sc, err := idde.NewScenario(idde.ScenarioConfig{
		Servers: 25, Users: 240, DataItems: 9, Seed: 33,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3 vendors compete for %.0f MB of reserved edge storage\n\n", sc.TotalStorageMB())

	for _, policy := range []idde.CompetitionPolicy{idde.EvenSplit, idde.Proportional, idde.Draft} {
		res, err := sc.Compete(3, policy, 33)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("policy %-13s  system latency %7.2f ms   rate fairness (Jain) %.3f\n",
			res.Policy, res.SystemLatencyMs, res.JainFairness)
		for _, v := range res.Vendors {
			fmt.Printf("  vendor %d: %3d users  %7.1f MBps  %7.2f ms  %6.0f MB reserved  %d replicas\n",
				v.Vendor, v.Users, v.RateMBps, v.LatencyMs, v.ReservedMB, v.Replicas)
		}
		fmt.Println()
	}
	fmt.Println("The draft (greedy auction) dominates: contested megabytes go to")
	fmt.Println("whoever saves the most latency per MB, so every vendor beats its")
	fmt.Println("even-split outcome. Proportional shares look fair on paper but starve")
	fmt.Println("small vendors' tails — exactly why the paper's vendors reserve storage")
	fmt.Println("deliberately instead of trusting a blanket split.")
}

// Mobility: the paper's future-work scenario — users move, strategies
// go stale, and keeping the delivery profile optimal costs migration
// traffic. This example simulates a lunchtime crowd drifting through a
// business district and compares two operating policies:
//
//   - re-solve:  re-run IDDE-G every epoch (fresh α and σ) and pay for
//     shipping replicas to their new homes;
//   - sticky:    re-allocate users every epoch but freeze the epoch-0
//     delivery profile (zero migration, increasingly stale placement).
package main

import (
	"fmt"
	"log"

	"idde"
)

func main() {
	sc, err := idde.NewScenario(idde.ScenarioConfig{
		Servers: 20, Users: 150, DataItems: 5, Seed: 21,
	})
	if err != nil {
		log.Fatal(err)
	}

	base := idde.MobilityConfig{
		Epochs:       8,
		EpochSeconds: 120,
		SpeedMps:     [2]float64{1, 3}, // brisk pedestrians
		PauseProb:    0.25,
	}

	resolve, err := sc.SimulateMobility(base, 1)
	if err != nil {
		log.Fatal(err)
	}
	stickyCfg := base
	stickyCfg.StickyDelivery = true
	sticky, err := sc.SimulateMobility(stickyCfg, 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("epoch-by-epoch comparison (re-solve vs sticky delivery):")
	fmt.Printf("%-6s  %22s  %22s  %12s  %10s\n", "epoch", "re-solve lat/migrated", "sticky lat/migrated", "handovers", "uncovered")
	var resolveMB, resolveLat, stickyLat float64
	for i := range resolve {
		r, s := resolve[i], sticky[i]
		fmt.Printf("%-6d  %12.2fms %6.0fMB  %12.2fms %6.0fMB  %12d  %10d\n",
			r.Epoch, r.LatencyMs, r.MigratedMB, s.LatencyMs, s.MigratedMB, r.Handover, r.Uncovered)
		resolveMB += r.MigratedMB
		if i > 0 {
			resolveLat += r.LatencyMs
			stickyLat += s.LatencyMs
		}
	}
	n := float64(len(resolve) - 1)
	fmt.Printf("\nre-solve: %.2f ms average latency at the cost of %.0f MB migrated\n", resolveLat/n, resolveMB)
	fmt.Printf("sticky:   %.2f ms average latency with zero migration traffic\n", stickyLat/n)
	fmt.Println("\nThe gap is the price of letting the delivery profile go stale while")
	fmt.Println("the crowd moves — the trade-off the paper's future work points at.")
}

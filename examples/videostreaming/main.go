// Video streaming: an app vendor (think a short-video or VOD service)
// has reserved edge storage for its most popular titles across a
// metropolitan edge storage system and must decide, for tonight's
// prime-time audience, how to allocate viewers to servers/channels and
// where to stage the titles.
//
// This example reproduces the paper's comparison on that workload:
// all five approaches run on the same scenario, and the table shows why
// only the interference-aware, collaboration-aware IDDE-G holds both
// objectives at once.
package main

import (
	"fmt"
	"log"

	"idde"
)

func main() {
	// Prime time: many concurrent viewers per server, a small hot
	// catalog of large titles (90–300 MB segments bundles), Zipf-heavy
	// popularity — the classic CDN-at-the-edge shape.
	sc, err := idde.NewScenario(idde.ScenarioConfig{
		Servers:        25,
		Users:          300,
		DataItems:      6,
		Seed:           7,
		ItemSizesMB:    []float64{90, 180, 300},
		StorageRangeMB: [2]float64{90, 600},
		ZipfSkew:       1.2, // prime-time popularity is very skewed
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("video streaming scenario: %d servers, %d viewers, %d titles, %.0f MB reserved\n\n",
		sc.Servers(), sc.Users(), sc.DataItems(), sc.TotalStorageMB())

	sts, err := sc.Compare(7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-8s  %14s  %14s  %10s  %9s\n", "approach", "viewer rate", "startup delay", "replicas", "time")
	for _, st := range sts {
		fmt.Printf("%-8s  %10.1f MBps  %11.2f ms  %10d  %9v\n",
			st.Approach, st.AvgRateMBps, st.AvgLatencyMs, len(st.Replicas()), st.Elapsed.Round(1e6))
	}

	// The vendor's SLO check: a 20 ms startup budget (the paper's VR
	// example needs 20 ms end-to-end; VOD is more forgiving but the
	// same arithmetic applies).
	fmt.Println()
	for _, st := range sts {
		verdict := "MISSES"
		if st.AvgLatencyMs <= 20 {
			verdict = "meets"
		}
		fmt.Printf("  %s %s the 20 ms startup budget (%.2f ms)\n", st.Approach, verdict, st.AvgLatencyMs)
	}
}

// Capacity planning: how much edge storage should an app vendor
// reserve? The paper treats reservations as fixed (§2.1); this example
// uses the library to answer the follow-up question a vendor actually
// faces — sweep the per-server reservation budget and watch the
// marginal latency return of each extra megabyte fall off.
//
// The sweep holds the scenario fixed (same seed) and scales only the
// storage range, averaging a few seeds per point.
package main

import (
	"fmt"
	"log"

	"idde"
)

func main() {
	type point struct {
		budgetMB float64
		latency  float64
		rate     float64
		replicas int
	}
	budgets := []float64{0.25, 0.5, 1, 2, 4}
	const seeds = 3

	fmt.Println("storage reservation sweep (N=25, M=200, K=6; scale × [30,300] MB per server)")
	fmt.Printf("%-8s  %12s  %14s  %10s\n", "scale", "rate (MBps)", "latency (ms)", "replicas")

	var prev *point
	for _, scale := range budgets {
		var agg point
		agg.budgetMB = scale
		for seed := uint64(0); seed < seeds; seed++ {
			sc, err := idde.NewScenario(idde.ScenarioConfig{
				Servers:        25,
				Users:          200,
				DataItems:      6,
				Seed:           100 + seed,
				StorageRangeMB: [2]float64{30 * scale, 300 * scale},
			})
			if err != nil {
				log.Fatal(err)
			}
			st, diag, err := sc.SolveIDDEG()
			if err != nil {
				log.Fatal(err)
			}
			agg.latency += st.AvgLatencyMs / seeds
			agg.rate += st.AvgRateMBps / seeds
			agg.replicas += diag.Replicas / seeds
		}
		marker := ""
		if prev != nil {
			saved := prev.latency - agg.latency
			marker = fmt.Sprintf("   (−%.2f ms vs previous)", saved)
			if saved < 0.2 {
				marker += "  ← diminishing returns"
			}
		}
		fmt.Printf("%-8.2f  %12.1f  %14.3f  %10d%s\n", scale, agg.rate, agg.latency, agg.replicas, marker)
		p := agg
		prev = &p
	}

	fmt.Println("\nRates are storage-independent (objective #1 is wireless-side); latency")
	fmt.Println("improves with reservations until every hot item is one hop from everyone.")
}

// Autonomous driving: vehicles stream fresh HD-map tiles and model
// updates from the edge. Items are small (5–20 MB), demand is bursty
// (every vehicle entering a district wants the same tiles at once), and
// the latency budget is tight.
//
// The example formulates an IDDE-G strategy for the fleet and then
// *executes* it on the discrete-event simulator twice — once with
// arrivals spread over a minute, once as a synchronized burst — to show
// how much headroom the analytic Eq. 9 latency leaves under contention.
package main

import (
	"fmt"
	"log"

	"idde"
)

func main() {
	sc, err := idde.NewScenario(idde.ScenarioConfig{
		Servers:        20,
		Users:          250, // vehicles in the district
		DataItems:      8,   // map tiles + model shards
		Seed:           11,
		ItemSizesMB:    []float64{5, 10, 20},
		StorageRangeMB: [2]float64{20, 120},
		ZipfSkew:       0.6, // tiles are requested fairly evenly
	})
	if err != nil {
		log.Fatal(err)
	}

	st, diag, err := sc.SolveIDDEG()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fleet scenario: %d road-side servers, %d vehicles, %d tiles\n",
		sc.Servers(), sc.Users(), sc.DataItems())
	fmt.Printf("IDDE-G strategy: %.1f MBps per vehicle, %.3f ms analytic tile latency, %d replicas\n\n",
		st.AvgRateMBps, st.AvgLatencyMs, diag.Replicas)

	// Execute the strategy under two arrival patterns.
	calm := sc.Simulate(st, 60, 1) // arrivals spread over a minute
	burst := sc.Simulate(st, 0, 1) // everyone at the district border at once

	fmt.Printf("%-22s  %14s  %14s  %12s\n", "arrival pattern", "measured (ms)", "analytic (ms)", "inflation")
	fmt.Printf("%-22s  %14.3f  %14.3f  %11.2fx\n", "spread over 60 s", calm.AvgLatencyMs, calm.AnalyticAvgMs, calm.MaxInflation)
	fmt.Printf("%-22s  %14.3f  %14.3f  %11.2fx\n", "synchronized burst", burst.AvgLatencyMs, burst.AnalyticAvgMs, burst.MaxInflation)

	fmt.Printf("\n%d of %d tile fetches still hit the cloud; the rest are served inside the edge system.\n",
		burst.CloudRequests, sc.Users())
	if burst.AvgLatencyMs < 20 {
		fmt.Println("Even the synchronized burst stays inside a 20 ms tile budget.")
	} else {
		fmt.Println("The synchronized burst blows the 20 ms tile budget — add reservations or servers.")
	}
}

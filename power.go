package idde

import (
	"fmt"

	"idde/internal/power"
)

// PowerReport summarizes a transmit-power control pass (see
// internal/power): users with Shannon-cap headroom shed power, cutting
// interference for everyone else, without any user losing rate.
type PowerReport struct {
	// AvgRateBeforeMBps and AvgRateAfterMBps are objective #1 before
	// and after the pass (same allocation profile).
	AvgRateBeforeMBps float64
	AvgRateAfterMBps  float64
	// SavedWatts is the total transmit power shed across users.
	SavedWatts float64
	// TunedUsers counts users whose power was reduced.
	TunedUsers int
	// PowersW holds every user's tuned power.
	PowersW []float64
}

// TunePower runs the power-control extension on a formulated strategy's
// allocation profile. It is a Pareto improvement: no user's rate drops,
// the average rate can only rise, and delivery latency is untouched.
func (sc *Scenario) TunePower(st *Strategy) (*PowerReport, error) {
	if st == nil || st.sc != sc {
		return nil, fmt.Errorf("idde: strategy does not belong to this scenario")
	}
	res, err := power.Tune(sc.in, st.raw.Alloc, power.DefaultOptions())
	if err != nil {
		return nil, err
	}
	rep := &PowerReport{
		AvgRateBeforeMBps: float64(res.AvgRateBefore),
		AvgRateAfterMBps:  float64(res.AvgRateAfter),
		SavedWatts:        float64(res.SavedWatts),
		TunedUsers:        res.TunedUsers,
		PowersW:           make([]float64, len(res.Powers)),
	}
	for j, p := range res.Powers {
		rep.PowersW[j] = float64(p)
	}
	return rep, nil
}

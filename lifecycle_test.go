package idde

import (
	"bytes"
	"testing"
)

// TestFullLifecycle drives the public API through the whole story a
// production adopter would live: build a scenario, race the approaches,
// deploy the winner, tune power, persist the strategy, survive a server
// failure, validate under burst load, and follow the crowd through a
// mobility epoch — one integration test across every subsystem.
func TestFullLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("lifecycle test skipped in -short")
	}
	sc, err := NewScenario(ScenarioConfig{
		Servers: 18, Users: 140, DataItems: 5, Seed: 99,
		IPBudget: 50e6, // 50ms
	})
	if err != nil {
		t.Fatal(err)
	}

	// 1. Race all five approaches; the paper's winner must win here too.
	sts, err := sc.Compare(99)
	if err != nil {
		t.Fatal(err)
	}
	var winner *Strategy
	for _, st := range sts {
		if st.Approach == IDDEG {
			winner = st
		}
	}
	for _, st := range sts {
		if st.Approach == IDDEG {
			continue
		}
		if winner.AvgRateMBps < st.AvgRateMBps || winner.AvgLatencyMs > st.AvgLatencyMs {
			t.Fatalf("IDDE-G did not dominate %s: rate %v vs %v, lat %v vs %v",
				st.Approach, winner.AvgRateMBps, st.AvgRateMBps, winner.AvgLatencyMs, st.AvgLatencyMs)
		}
	}

	// 2. Power-control pass: free rate.
	pr, err := sc.TunePower(winner)
	if err != nil {
		t.Fatal(err)
	}
	if pr.AvgRateAfterMBps < pr.AvgRateBeforeMBps-1e-9 {
		t.Fatal("power pass regressed rates")
	}

	// 3. Persist and reload the deployment artifact.
	var buf bytes.Buffer
	if err := winner.Save(&buf); err != nil {
		t.Fatal(err)
	}
	reloaded, err := sc.LoadStrategy(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.AvgLatencyMs != winner.AvgLatencyMs {
		t.Fatal("reloaded strategy changed latency")
	}

	// 4. Validate under a synchronized burst on the simulator.
	burst := sc.Simulate(reloaded, 0, 1)
	if burst.AvgLatencyMs < burst.AnalyticAvgMs-1e-9 {
		t.Fatal("burst beat the analytic bound")
	}

	// 5. Kill the busiest server and repair.
	busiest, busiestCount := 0, -1
	counts := make(map[int]int)
	for j := 0; j < sc.Users(); j++ {
		if s, _, ok := reloaded.Assignment(j); ok {
			counts[s]++
			if counts[s] > busiestCount {
				busiest, busiestCount = s, counts[s]
			}
		}
	}
	degraded, repaired, rep, err := sc.InjectFailure(reloaded, busiest)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DisplacedUsers != busiestCount {
		t.Fatalf("displaced %d, expected %d", rep.DisplacedUsers, busiestCount)
	}
	if repaired.AvgRateMBps <= 0 {
		t.Fatal("repaired system dead")
	}

	// 6. The degraded scenario still formulates fresh strategies.
	fresh, err := degraded.Solve(IDDEG, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A from-scratch re-solve on the degraded system should do at least
	// roughly as well as the incremental repair.
	if fresh.AvgRateMBps < repaired.AvgRateMBps*0.9 {
		t.Fatalf("fresh solve (%v) far below repair (%v)?", fresh.AvgRateMBps, repaired.AvgRateMBps)
	}

	// 7. Crowd moves on: one mobility window over the degraded system.
	eps, err := degraded.SimulateMobility(MobilityConfig{
		Epochs: 2, EpochSeconds: 60, SpeedMps: [2]float64{1, 2},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(eps) != 3 || eps[2].RateMBps <= 0 {
		t.Fatalf("mobility epochs malformed: %+v", eps)
	}

	// 8. Observability: the inspection report covers the repaired state.
	report := Inspect(degraded, repaired)
	if report == "" {
		t.Fatal("empty inspection report")
	}
}

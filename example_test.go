package idde_test

import (
	"fmt"
	"log"

	"idde"
)

// ExampleNewScenario formulates an IDDE strategy with the paper's
// IDDE-G algorithm on a small deterministic scenario.
func ExampleNewScenario() {
	sc, err := idde.NewScenario(idde.ScenarioConfig{
		Servers: 10, Users: 60, DataItems: 3, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	st, err := sc.Solve(idde.IDDEG, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(st.Approach, "allocated users:", countAllocated(sc, st))
	// Output:
	// IDDE-G allocated users: 60
}

func countAllocated(sc *idde.Scenario, st *idde.Strategy) int {
	n := 0
	for j := 0; j < sc.Users(); j++ {
		if _, _, ok := st.Assignment(j); ok {
			n++
		}
	}
	return n
}

// ExampleScenario_Compare races all five approaches of the paper's
// evaluation on one interference-heavy scenario and reports the winner.
func ExampleScenario_Compare() {
	sc, err := idde.NewScenario(idde.ScenarioConfig{
		Servers: 15, Users: 150, DataItems: 4, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	sts, err := sc.Compare(1)
	if err != nil {
		log.Fatal(err)
	}
	best := sts[0]
	for _, st := range sts[1:] {
		if st.AvgRateMBps > best.AvgRateMBps {
			best = st
		}
	}
	fmt.Println("highest average data rate:", best.Approach)
	// Output:
	// highest average data rate: IDDE-G
}

// ExampleScenario_Simulate executes a strategy on the discrete-event
// simulator: with arrivals spread far apart there is no queueing, so
// the measured latency equals the analytic Eq. 9 value.
func ExampleScenario_Simulate() {
	sc, err := idde.NewScenario(idde.ScenarioConfig{
		Servers: 10, Users: 60, DataItems: 3, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	st, err := sc.Solve(idde.IDDEG, 1)
	if err != nil {
		log.Fatal(err)
	}
	rep := sc.Simulate(st, 1e6, 1)
	diff := rep.AvgLatencyMs - rep.AnalyticAvgMs
	fmt.Println("uncontended run matches analytic latency:",
		diff < 1e-6 && diff > -1e-6)
	// Output:
	// uncontended run matches analytic latency: true
}

package idde

import (
	"math"
	"reflect"
	"testing"

	"idde/internal/core"
	"idde/internal/experiment"
	"idde/internal/game"
)

// The end-to-end differential suite for the Phase 1 performance work:
// the optimized engine (incremental interference aggregates + dirty-set
// scheduling) must reproduce the literal-Algorithm-1 reference across
// the Table 2 experiment grid — same equilibrium allocation, same
// delivery profile, same Theorem 4 accounting — so every figure CSV is
// unchanged by the optimization.

// sampledParams picks the first, middle and last x value of each Table 2
// set: enough to cover every varying parameter without a full sweep.
func sampledParams(t *testing.T) []experiment.Params {
	t.Helper()
	var ps []experiment.Params
	for id := 1; id <= 4; id++ {
		set, err := experiment.SetByID(id)
		if err != nil {
			t.Fatal(err)
		}
		for _, xi := range []int{0, len(set.Values) / 2, len(set.Values) - 1} {
			ps = append(ps, set.ParamsAt(set.Values[xi]))
		}
	}
	return ps
}

func relDiff(a, b float64) float64 {
	return math.Abs(a-b) / math.Max(1, math.Abs(b))
}

// TestSolveOptimizedMatchesReference compares core.Solve under the
// default (aggregates + dirty-set) configuration against
// core.ReferenceOptions (naive interference + full-scan rounds) on the
// Table 2 grid. The committed dynamics are designed to be identical:
// the dirty-set scheduler only skips provably-unchanged proposals and
// the aggregate cells are maintained drift-free (removals recompute the
// fold), so the equilibrium, the delivery profile and the
// Rounds/Updates/Converged/Frozen stats must match exactly; only
// Evaluations (the point of the optimization) and last-ulp rounding in
// the aggregated rate objective may differ.
func TestSolveOptimizedMatchesReference(t *testing.T) {
	if testing.Short() {
		t.Skip("full-grid differential sweep")
	}
	for _, p := range sampledParams(t) {
		in, err := experiment.BuildInstance(p, 2022)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		opt := core.Solve(in, core.DefaultOptions())
		ref := core.Solve(in, core.ReferenceOptions())

		if !reflect.DeepEqual(opt.Strategy.Alloc, ref.Strategy.Alloc) {
			t.Fatalf("%v: equilibrium allocations diverge", p)
		}
		if !reflect.DeepEqual(opt.Strategy.Delivery, ref.Strategy.Delivery) {
			t.Fatalf("%v: delivery profiles diverge", p)
		}
		if opt.Replicas != ref.Replicas {
			t.Fatalf("%v: replica counts diverge: %d vs %d", p, opt.Replicas, ref.Replicas)
		}
		if opt.Phase1.Rounds != ref.Phase1.Rounds || opt.Phase1.Updates != ref.Phase1.Updates ||
			opt.Phase1.Converged != ref.Phase1.Converged || opt.Phase1.Frozen != ref.Phase1.Frozen {
			t.Fatalf("%v: Phase 1 stats diverge: opt %+v ref %+v", p, opt.Phase1, ref.Phase1)
		}
		if opt.Phase1.Evaluations > ref.Phase1.Evaluations {
			t.Fatalf("%v: dirty-set evaluated more than the full scan: %d vs %d",
				p, opt.Phase1.Evaluations, ref.Phase1.Evaluations)
		}
		if d := relDiff(float64(opt.AvgRate), float64(ref.AvgRate)); d > 1e-9 {
			t.Fatalf("%v: AvgRate diverges beyond rounding: %g vs %g (rel %g)",
				p, opt.AvgRate, ref.AvgRate, d)
		}
		if d := relDiff(float64(opt.AvgLatency), float64(ref.AvgLatency)); d > 1e-9 {
			t.Fatalf("%v: AvgLatency diverges beyond rounding: %g vs %g (rel %g)",
				p, opt.AvgLatency, ref.AvgLatency, d)
		}
	}
}

// TestSolveDirtySetMatchesFullScanExactly isolates the scheduling half
// of the optimization: with the same (aggregate) ledger on both sides,
// dirty-set and full-scan rounds share every floating-point operation
// that reaches a commit, so the entire Result except Evaluations and
// wall-clock must be bit-identical.
func TestSolveDirtySetMatchesFullScanExactly(t *testing.T) {
	for _, p := range []experiment.Params{
		{N: 10, M: 60, K: 4, Density: 1.0},
		{N: 30, M: 200, K: 5, Density: 1.0},
		{N: 20, M: 120, K: 5, Density: 2.0},
	} {
		in, err := experiment.BuildInstance(p, 7)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		dirty := core.Solve(in, core.DefaultOptions())
		full := core.DefaultOptions()
		full.Game.FullScan = true
		ref := core.Solve(in, full)

		if !reflect.DeepEqual(dirty.Strategy, ref.Strategy) {
			t.Fatalf("%v: strategies diverge between dirty-set and full scan", p)
		}
		if dirty.AvgRate != ref.AvgRate || dirty.AvgLatency != ref.AvgLatency {
			t.Fatalf("%v: objectives diverge: (%v,%v) vs (%v,%v)",
				p, dirty.AvgRate, dirty.AvgLatency, ref.AvgRate, ref.AvgLatency)
		}
		if dirty.Phase1.Rounds != ref.Phase1.Rounds || dirty.Phase1.Updates != ref.Phase1.Updates ||
			dirty.Phase1.Converged != ref.Phase1.Converged || dirty.Phase1.Frozen != ref.Phase1.Frozen {
			t.Fatalf("%v: Phase 1 stats diverge: %+v vs %+v", p, dirty.Phase1, ref.Phase1)
		}
	}
}

// TestSolveRoundRobinDirtyMatchesFullScan covers the ablation policy at
// the solve level too.
func TestSolveRoundRobinDirtyMatchesFullScan(t *testing.T) {
	in, err := experiment.BuildInstance(experiment.Params{N: 20, M: 150, K: 5, Density: 1.0}, 11)
	if err != nil {
		t.Fatal(err)
	}
	g := game.DefaultOptions()
	g.Policy = game.RoundRobin
	dirty := core.Solve(in, core.Options{Game: g})
	gf := g
	gf.FullScan = true
	ref := core.Solve(in, core.Options{Game: gf})
	if !reflect.DeepEqual(dirty.Strategy, ref.Strategy) {
		t.Fatal("round-robin dirty-set and full scan strategies diverge")
	}
	if dirty.Phase1.Updates != ref.Phase1.Updates || dirty.Phase1.Rounds != ref.Phase1.Rounds {
		t.Fatalf("round-robin stats diverge: %+v vs %+v", dirty.Phase1, ref.Phase1)
	}
}

// TestPlacementLazyMatchesGreedyAtScale is the Phase 2 bench-guard at
// the default experiment scale (N=30, M=200, K=5): the CELF evaluator
// must commit the identical replica sequence with the identical total
// gain while evaluating strictly fewer candidates than the literal
// re-scan loop.
func TestPlacementLazyMatchesGreedyAtScale(t *testing.T) {
	in, err := experiment.BuildInstance(experiment.Params{N: 30, M: 200, K: 5, Density: 1.0}, 2022)
	if err != nil {
		t.Fatal(err)
	}
	alloc, _ := core.SolvePhase1(in, core.DefaultOptions())

	dLazy, resLazy := core.SolveDelivery(in, alloc, false)
	dNaive, resNaive := core.SolveDelivery(in, alloc, true)

	if !reflect.DeepEqual(resLazy.Chosen, resNaive.Chosen) {
		t.Fatalf("lazy and naive greedy chose different replica sequences:\nlazy  %v\nnaive %v",
			resLazy.Chosen, resNaive.Chosen)
	}
	if !reflect.DeepEqual(dLazy, dNaive) {
		t.Fatal("delivery profiles diverge")
	}
	if resLazy.TotalGain != resNaive.TotalGain {
		t.Fatalf("total gains diverge: %g vs %g", resLazy.TotalGain, resNaive.TotalGain)
	}
	if resLazy.Evaluations >= resNaive.Evaluations {
		t.Fatalf("CELF did not save oracle calls: lazy %d vs naive %d",
			resLazy.Evaluations, resNaive.Evaluations)
	}
}

package idde

import (
	"fmt"

	"idde/internal/mobility"
	"idde/internal/model"
	"idde/internal/rng"
)

// MobilityConfig parametrizes an epoch-based mobility simulation — the
// paper's future-work scenario of moving users and migrating data.
type MobilityConfig struct {
	// Epochs after the initial formulation (default 10).
	Epochs int
	// EpochSeconds is the epoch wall-clock length (default 60).
	EpochSeconds float64
	// SpeedMps is the [min,max] user speed (default pedestrian
	// [0.5,2.0]).
	SpeedMps [2]float64
	// PauseProb is the chance a user rests for an epoch (default 0.2).
	PauseProb float64
	// StickyDelivery freezes the delivery profile after epoch 0,
	// trading latency for zero migration traffic.
	StickyDelivery bool
	// Approach re-formulates the strategy each epoch (default IDDE-G).
	Approach ApproachName
}

// MobilityEpoch reports one epoch of a mobility simulation.
type MobilityEpoch struct {
	Epoch            int
	RateMBps         float64
	LatencyMs        float64
	Handover         int
	Uncovered        int
	MigratedMB       float64
	MigrationSeconds float64
	Replicas         int
}

// SimulateMobility moves the scenario's users under a random-waypoint
// model, re-formulating the strategy each epoch and accounting for the
// data migration between consecutive delivery profiles.
func (sc *Scenario) SimulateMobility(cfg MobilityConfig, seed uint64) ([]MobilityEpoch, error) {
	mc := mobility.DefaultConfig()
	if cfg.Epochs > 0 {
		mc.Epochs = cfg.Epochs
	}
	if cfg.EpochSeconds > 0 {
		mc.EpochSeconds = cfg.EpochSeconds
	}
	if cfg.SpeedMps[1] > 0 {
		mc.Speed = cfg.SpeedMps
	}
	if cfg.PauseProb > 0 {
		mc.Pause = cfg.PauseProb
	}
	mc.StickyDelivery = cfg.StickyDelivery

	name := cfg.Approach
	if name == "" {
		name = IDDEG
	}
	ap, err := sc.approach(name)
	if err != nil {
		return nil, err
	}
	solve := func(in *model.Instance) model.Strategy { return ap.Solve(in, seed) }

	eps, err := mobility.Simulate(sc.in.Top, sc.in.Wl, solve, mc, rng.New(seed))
	if err != nil {
		return nil, fmt.Errorf("idde: mobility simulation: %w", err)
	}
	out := make([]MobilityEpoch, len(eps))
	for i, e := range eps {
		out[i] = MobilityEpoch{
			Epoch:            e.Epoch,
			RateMBps:         e.RateMBps,
			LatencyMs:        e.LatencyMs,
			Handover:         e.Handover,
			Uncovered:        e.Uncovered,
			MigratedMB:       e.MigratedMB,
			MigrationSeconds: e.MigrationSeconds,
			Replicas:         e.Replicas,
		}
	}
	return out, nil
}

package idde

// One benchmark per table/figure of the paper's evaluation, plus
// ablation benches for the design choices called out in DESIGN.md.
// Each figure bench executes a full sweep over the figure's x axis with
// one replica per iteration (the paper averages 50 replicas; use
// cmd/iddebench -reps 50 for the full-budget regeneration) and reports
// the headline aggregate via b.ReportMetric so the figure's shape is
// visible straight from `go test -bench`.

import (
	"fmt"
	"testing"

	"idde/internal/baseline"
	"idde/internal/cloudlat"
	"idde/internal/core"
	"idde/internal/des"
	"idde/internal/experiment"
	"idde/internal/game"
	"idde/internal/mobility"
	"idde/internal/model"
	"idde/internal/online"
	"idde/internal/placement"
	"idde/internal/power"
	"idde/internal/repair"
	"idde/internal/rng"
	"idde/internal/topology"
	"idde/internal/units"
	"idde/internal/vendor"
	"idde/internal/workload"
)

// benchConfig is the reduced-budget harness configuration used by the
// figure benches: one replica, deterministic IDDE-IP at a fixed
// evaluation budget.
func benchConfig() experiment.Config {
	return experiment.Config{
		Reps: 1,
		Seed: 2022,
		Approaches: []baseline.Approach{
			&baseline.IDDEIP{MaxIters: 1500, Anneal: true},
			baseline.NewIDDEG(),
			baseline.NewSAA(),
			baseline.NewCDP(),
			baseline.NewDUPG(),
		},
	}
}

func benchSet(b *testing.B, id int) {
	b.Helper()
	set, err := experiment.SetByID(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchConfig()
	var last *experiment.SetResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sr, err := experiment.RunSet(set, cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = sr
	}
	b.StopTimer()
	// Surface the figure's headline aggregates as custom metrics.
	b.ReportMetric(meanAcross(last, "IDDE-G", experiment.RateMetric), "IDDEG-rate-MBps")
	b.ReportMetric(meanAcross(last, "IDDE-G", experiment.LatencyMetric), "IDDEG-lat-ms")
	b.ReportMetric(last.Advantage("SAA", experiment.RateMetric)*100, "rate-adv-vs-SAA-%")
	b.ReportMetric(last.Advantage("DUP-G", experiment.LatencyMetric)*100, "lat-adv-vs-DUPG-%")
}

func meanAcross(sr *experiment.SetResult, approach string, m experiment.Metric) float64 {
	if sr == nil || len(sr.Points) == 0 {
		return 0
	}
	total := 0.0
	for _, pt := range sr.Points {
		mm := pt.ByApproach[approach]
		switch m {
		case experiment.RateMetric:
			total += mm.Rate.Mean
		case experiment.LatencyMetric:
			total += mm.LatencyMs.Mean
		case experiment.TimeMetric:
			total += mm.TimeSec.Mean
		}
	}
	return total / float64(len(sr.Points))
}

// BenchmarkFig1LatencyProbe regenerates Figure 1: the hourly-for-a-week
// edge vs. cloud latency probe.
func BenchmarkFig1LatencyProbe(b *testing.B) {
	var series []cloudlat.Series
	for i := 0; i < b.N; i++ {
		series = cloudlat.Collect(cloudlat.DefaultTargets(), rng.New(uint64(i)))
	}
	b.StopTimer()
	b.ReportMetric(series[0].Mean.Millis(), "edge-ms")
	b.ReportMetric(series[1].Mean.Millis(), "singapore-ms")
	b.ReportMetric(series[2].Mean.Millis(), "london-ms")
	b.ReportMetric(series[3].Mean.Millis(), "frankfurt-ms")
}

// BenchmarkFig3Set1 regenerates Figure 3 (R_avg and L_avg vs. N).
func BenchmarkFig3Set1(b *testing.B) { benchSet(b, 1) }

// BenchmarkFig4Set2 regenerates Figure 4 (R_avg and L_avg vs. M).
func BenchmarkFig4Set2(b *testing.B) { benchSet(b, 2) }

// BenchmarkFig5Set3 regenerates Figure 5 (R_avg and L_avg vs. K).
func BenchmarkFig5Set3(b *testing.B) { benchSet(b, 3) }

// BenchmarkFig6Set4 regenerates Figure 6 (R_avg and L_avg vs. density).
func BenchmarkFig6Set4(b *testing.B) { benchSet(b, 4) }

// BenchmarkFig7ComputationTime regenerates Figure 7: per-approach
// strategy formulation time at the Set #2 midpoint (N=30, M=200, K=5).
func BenchmarkFig7ComputationTime(b *testing.B) {
	in, err := experiment.BuildInstance(experiment.Params{N: 30, M: 200, K: 5, Density: 1.0}, 2022)
	if err != nil {
		b.Fatal(err)
	}
	for _, ap := range benchConfig().Approaches {
		b.Run(ap.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = ap.Solve(in, uint64(i))
			}
		})
	}
}

// BenchmarkTable2InstanceGeneration measures building the randomized
// instances behind Table 2's largest setting.
func BenchmarkTable2InstanceGeneration(b *testing.B) {
	p := experiment.Params{N: 50, M: 350, K: 8, Density: 3.0}
	for i := 0; i < b.N; i++ {
		if _, err := experiment.BuildInstance(p, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches (DESIGN.md §5 design choices) ---

// BenchmarkAblationGamePolicy compares the paper's winner-takes-all
// update protocol against round-robin best response (same fixed points,
// different convergence cost).
func BenchmarkAblationGamePolicy(b *testing.B) {
	in, err := experiment.BuildInstance(experiment.Params{N: 30, M: 200, K: 5, Density: 1.0}, 7)
	if err != nil {
		b.Fatal(err)
	}
	for _, policy := range []game.Policy{game.WinnerTakesAll, game.RoundRobin} {
		b.Run(policy.String(), func(b *testing.B) {
			opt := core.DefaultOptions()
			opt.Game.Policy = policy
			var updates int
			for i := 0; i < b.N; i++ {
				res := core.Solve(in, opt)
				updates = res.Phase1.Updates
			}
			b.ReportMetric(float64(updates), "updates")
		})
	}
}

// BenchmarkAblationGreedyOracle compares the literal Algorithm 1
// Phase 2 loop against the lazy (CELF) evaluator.
func BenchmarkAblationGreedyOracle(b *testing.B) {
	in, err := experiment.BuildInstance(experiment.Params{N: 40, M: 250, K: 8, Density: 1.5}, 11)
	if err != nil {
		b.Fatal(err)
	}
	alloc := core.Solve(in, core.DefaultOptions()).Strategy.Alloc
	for _, mode := range []struct {
		name  string
		naive bool
	}{{"naive", true}, {"lazy-celf", false}} {
		b.Run(mode.name, func(b *testing.B) {
			var evals int
			for i := 0; i < b.N; i++ {
				_, pres := core.SolveDelivery(in, alloc, mode.naive)
				evals = pres.Evaluations
			}
			b.ReportMetric(float64(evals), "oracle-evals")
		})
	}
}

// BenchmarkAblationParallelScan compares sequential and parallel
// best-response scans in Phase 1.
func BenchmarkAblationParallelScan(b *testing.B) {
	in, err := experiment.BuildInstance(experiment.Params{N: 40, M: 350, K: 5, Density: 1.0}, 13)
	if err != nil {
		b.Fatal(err)
	}
	for _, par := range []struct {
		name string
		on   bool
	}{{"sequential", false}, {"parallel", true}} {
		b.Run(par.name, func(b *testing.B) {
			opt := core.DefaultOptions()
			opt.Game.Parallel = par.on
			for i := 0; i < b.N; i++ {
				core.Solve(in, opt)
			}
		})
	}
}

// BenchmarkLedgerBestResponse measures a single user's best-response
// scan — the inner loop of the IDDE-U game.
func BenchmarkLedgerBestResponse(b *testing.B) {
	in, err := experiment.BuildInstance(experiment.Params{N: 30, M: 300, K: 5, Density: 1.0}, 17)
	if err != nil {
		b.Fatal(err)
	}
	l := model.NewLedger(in, model.NewAllocation(in.M()))
	s := rng.New(3)
	for j := 0; j < in.M(); j++ {
		vs := in.Top.Coverage[j]
		i := vs[s.IntN(len(vs))]
		l.Move(j, model.Alloc{Server: i, Channel: s.IntN(in.Top.Servers[i].Channels)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % in.M()
		for _, sv := range in.Top.Coverage[j] {
			for x := 0; x < in.Top.Servers[sv].Channels; x++ {
				_ = l.Benefit(j, model.Alloc{Server: sv, Channel: x})
			}
		}
	}
}

// BenchmarkLatencyGainOracle measures the Phase 2 marginal-gain oracle.
func BenchmarkLatencyGainOracle(b *testing.B) {
	in, err := experiment.BuildInstance(experiment.Params{N: 30, M: 300, K: 8, Density: 1.0}, 19)
	if err != nil {
		b.Fatal(err)
	}
	ls := model.NewLatencyState(in, model.NewAllocation(in.M()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ls.GainOf(i%in.N(), i%in.K())
	}
}

// BenchmarkAblationPowerControl measures the optional transmit-power
// pass (extension; see internal/power) and reports its rate uplift.
func BenchmarkAblationPowerControl(b *testing.B) {
	in, err := experiment.BuildInstance(experiment.Params{N: 15, M: 150, K: 4, Density: 1.0}, 29)
	if err != nil {
		b.Fatal(err)
	}
	alloc := core.Solve(in, core.DefaultOptions()).Strategy.Alloc
	var res *power.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = power.Tune(in, alloc, power.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(res.AvgRateBefore), "rate-before-MBps")
	b.ReportMetric(float64(res.AvgRateAfter), "rate-after-MBps")
	b.ReportMetric(float64(res.SavedWatts), "saved-W")
}

// BenchmarkMobilityEpochs measures the future-work mobility loop: users
// move, IDDE-G re-solves, replicas migrate.
func BenchmarkMobilityEpochs(b *testing.B) {
	s := rng.New(31)
	top, err := topology.Generate(topology.DefaultGen(15, 100, 1.2), s.Split("top"))
	if err != nil {
		b.Fatal(err)
	}
	wl, err := workload.Generate(workload.DefaultGen(4), 15, 100, s.Split("wl"))
	if err != nil {
		b.Fatal(err)
	}
	solve := func(in *model.Instance) model.Strategy {
		return core.Solve(in, core.DefaultOptions()).Strategy
	}
	cfg := mobility.Config{Epochs: 5, EpochSeconds: 60, Speed: [2]float64{1, 3}}
	var eps []mobility.Epoch
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eps, err = mobility.Simulate(top, wl, solve, cfg, rng.New(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	var mb float64
	for _, ep := range eps {
		mb += ep.MigratedMB
	}
	b.ReportMetric(mb, "migrated-MB")
}

// BenchmarkOnlineJoin measures the incremental cost of one user
// arrival in a loaded online system (extension; see internal/online).
func BenchmarkOnlineJoin(b *testing.B) {
	in, err := experiment.BuildInstance(experiment.Params{N: 15, M: 200, K: 4, Density: 1.0}, 37)
	if err != nil {
		b.Fatal(err)
	}
	sys := online.NewSystem(in, online.DefaultOptions())
	// Preload all but the churn cohort.
	cohort := 32
	for j := cohort; j < in.M(); j++ {
		if _, err := sys.Join(j); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % cohort
		if _, err := sys.Join(j); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if _, err := sys.Leave(j); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// BenchmarkVendorCompetition measures a three-vendor draft round
// (extension; see internal/vendor).
func BenchmarkVendorCompetition(b *testing.B) {
	in, err := experiment.BuildInstance(experiment.Params{N: 15, M: 150, K: 6, Density: 1.0}, 41)
	if err != nil {
		b.Fatal(err)
	}
	assign, err := vendor.RandomAssignment(in, 3, rng.New(42))
	if err != nil {
		b.Fatal(err)
	}
	var res *vendor.Result
	for i := 0; i < b.N; i++ {
		res, err = vendor.Compete(in, assign, vendor.Draft)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if res != nil {
		b.ReportMetric(res.SystemLatencyMs, "system-lat-ms")
		b.ReportMetric(res.JainRate, "jain")
	}
}

// BenchmarkFailureRepair measures failure injection plus incremental
// strategy repair (extension; see internal/repair).
func BenchmarkFailureRepair(b *testing.B) {
	in, err := experiment.BuildInstance(experiment.Params{N: 20, M: 150, K: 5, Density: 1.2}, 43)
	if err != nil {
		b.Fatal(err)
	}
	st := core.Solve(in, core.DefaultOptions()).Strategy
	var rep *repair.Report
	for i := 0; i < b.N; i++ {
		f := i % in.N()
		deg, err := repair.FailServer(in, f)
		if err != nil {
			b.Fatal(err)
		}
		_, rep, err = repair.Repair(in, deg, st, f, repair.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if rep != nil {
		b.ReportMetric(float64(rep.DisplacedUsers), "displaced")
		b.ReportMetric(float64(rep.Moves), "moves")
	}
}

// BenchmarkDESBurst measures discrete-event execution of an IDDE-G
// strategy under a synchronized burst.
func BenchmarkDESBurst(b *testing.B) {
	in, err := experiment.BuildInstance(experiment.Params{N: 30, M: 200, K: 5, Density: 1.0}, 23)
	if err != nil {
		b.Fatal(err)
	}
	st := core.Solve(in, core.DefaultOptions()).Strategy
	b.ResetTimer()
	var rep *des.Report
	for i := 0; i < b.N; i++ {
		rep = des.SimulateStrategy(in, st, units.Seconds(0), rng.New(uint64(i)))
	}
	b.StopTimer()
	b.ReportMetric(rep.Avg.Millis(), "measured-ms")
	b.ReportMetric(rep.AnalyticAvg.Millis(), "analytic-ms")
}

// --- Phase 1 perf-trajectory benches -------------------------------
//
// The tracked baseline lives in BENCH_phase1.json (regenerate with
// `go run ./cmd/iddebench -perfjson BENCH_phase1.json`); the benches
// below cover the same trajectory through `go test -bench` at scales
// that stay CI-friendly: full-scan/naive reference variants only up to
// M=500 (the perfbench ladder measures the M=2000 reference point,
// ~75s per solve on one core).

// perfScale builds the perfbench-ladder instance for M users.
func perfScale(b *testing.B, m int) *model.Instance {
	b.Helper()
	n := m / 20
	if n < 10 {
		n = 10
	}
	in, err := experiment.BuildInstance(experiment.Params{N: n, M: m, K: 5, Density: 1.0}, 2022)
	if err != nil {
		b.Fatal(err)
	}
	return in
}

// BenchmarkLedgerBenefit measures one Eq. 12 benefit evaluation under
// the incremental interference aggregates versus the naive occupancy
// walk, on an identical random profile.
func BenchmarkLedgerBenefit(b *testing.B) {
	for _, m := range []int{100, 500, 2000} {
		in := perfScale(b, m)
		s := rng.New(77)
		l := model.NewLedger(in, model.NewAllocation(in.M()))
		for j := 0; j < in.M(); j++ {
			if vs := in.Top.Coverage[j]; len(vs) > 0 {
				i := vs[s.IntN(len(vs))]
				l.Move(j, model.Alloc{Server: i, Channel: s.IntN(in.Top.Servers[i].Channels)})
			}
		}
		for _, mode := range []struct {
			name  string
			naive bool
		}{{"aggregate", false}, {"naive", true}} {
			b.Run(fmt.Sprintf("%s/M=%d", mode.name, m), func(b *testing.B) {
				l.SetNaiveInterference(mode.naive)
				// Materialize aggregate rows outside the timer.
				for j := 0; j < in.M(); j++ {
					if vs := in.Top.Coverage[j]; len(vs) > 0 {
						_ = l.Benefit(j, model.Alloc{Server: vs[0], Channel: 0})
					}
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					j := i % in.M()
					vs := in.Top.Coverage[j]
					if len(vs) == 0 {
						continue
					}
					sv := vs[i%len(vs)]
					_ = l.Benefit(j, model.Alloc{Server: sv, Channel: i % in.Top.Servers[sv].Channels})
				}
			})
		}
		l.SetNaiveInterference(false)
	}
}

// BenchmarkGameRun measures the full Phase 1 best-response dynamics for
// both policies with and without the dirty-set scheduler (aggregate
// ledger on both sides, so only scheduling differs).
func BenchmarkGameRun(b *testing.B) {
	for _, m := range []int{100, 500} {
		in := perfScale(b, m)
		for _, policy := range []game.Policy{game.WinnerTakesAll, game.RoundRobin} {
			for _, mode := range []struct {
				name     string
				fullScan bool
			}{{"dirty-set", false}, {"full-scan", true}} {
				b.Run(fmt.Sprintf("%s/%s/M=%d", policy, mode.name, m), func(b *testing.B) {
					opt := core.DefaultOptions()
					opt.Game.Policy = policy
					opt.Game.FullScan = mode.fullScan
					var st game.Stats
					for i := 0; i < b.N; i++ {
						_, st = core.SolvePhase1(in, opt)
					}
					b.ReportMetric(float64(st.Updates), "updates")
					b.ReportMetric(float64(st.Evaluations), "evals")
				})
			}
		}
	}
}

// BenchmarkPhase1Solve is the headline trajectory: the optimized engine
// across the perfbench ladder (M=10000 via -perfjson only) against the
// literal-Algorithm-1 reference at the CI-affordable scales.
func BenchmarkPhase1Solve(b *testing.B) {
	cases := []struct {
		name string
		m    int
		opt  core.Options
	}{
		{"optimized/M=100", 100, core.DefaultOptions()},
		{"optimized/M=500", 500, core.DefaultOptions()},
		{"optimized/M=2000", 2000, core.DefaultOptions()},
		{"reference/M=100", 100, core.ReferenceOptions()},
		{"reference/M=500", 500, core.ReferenceOptions()},
	}
	for _, c := range cases {
		in := perfScale(b, c.m)
		b.Run(c.name, func(b *testing.B) {
			var st game.Stats
			for i := 0; i < b.N; i++ {
				_, st = core.SolvePhase1(in, c.opt)
			}
			b.ReportMetric(float64(st.Updates), "updates")
			b.ReportMetric(float64(st.Evaluations), "evals")
		})
	}
}

// --- Phase 2 perf-trajectory benches -------------------------------
//
// The tracked baseline lives in BENCH_phase2.json (regenerate with
// `go run ./cmd/iddebench -perf2json BENCH_phase2.json`); the benches
// below cover the request-heavy ladder (M/N = 40) through
// `go test -bench` at CI-affordable scales.

// perfScale2 builds the Phase 2 ladder instance for M users along with
// its Phase 1 equilibrium allocation (solved outside every timer).
func perfScale2(b *testing.B, m int) (*model.Instance, model.Allocation) {
	b.Helper()
	n := m / 40
	if n < 10 {
		n = 10
	}
	in, err := experiment.BuildInstance(experiment.Params{N: n, M: m, K: 5, Density: 1.0}, 2022)
	if err != nil {
		b.Fatal(err)
	}
	alloc, _ := core.SolvePhase1(in, core.DefaultOptions())
	return in, alloc
}

// BenchmarkLatencyGain measures one Eq. 17 marginal-gain evaluation
// under the cohort-aggregated suffix query versus the per-request
// reference walk, on an identical pre-commit state.
func BenchmarkLatencyGain(b *testing.B) {
	for _, m := range []int{400, 2000} {
		in, alloc := perfScale2(b, m)
		for _, mode := range []struct {
			name string
			ls   model.DeliveryOracle
		}{
			{"cohort", model.NewCohortLatencyState(in, alloc)},
			{"naive", model.NewLatencyState(in, alloc)},
		} {
			b.Run(fmt.Sprintf("%s/M=%d", mode.name, m), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					_ = mode.ls.GainOf(i%in.N(), i%in.K())
				}
			})
		}
	}
}

// BenchmarkPhase2Solve is the Phase 2 headline trajectory: the
// optimized engine (cohort oracle + parallel-seeded CELF) against the
// naive-oracle CELF run and the literal re-scan reference at the
// CI-affordable scales (the M=4000 points live in BENCH_phase2.json).
func BenchmarkPhase2Solve(b *testing.B) {
	seq := placement.NewOptions(placement.Options{})
	cases := []struct {
		name string
		m    int
		opt  core.Options
	}{
		{"optimized/M=400", 400, core.Options{}},
		{"optimized/M=1000", 1000, core.Options{}},
		{"optimized/M=2000", 2000, core.Options{}},
		{"naive-oracle/M=400", 400, core.Options{NaiveLatency: true, Placement: seq}},
		{"naive-oracle/M=1000", 1000, core.Options{NaiveLatency: true, Placement: seq}},
		{"reference/M=400", 400, core.Options{NaiveLatency: true, NaiveGreedy: true, Placement: seq}},
	}
	for _, c := range cases {
		in, alloc := perfScale2(b, c.m)
		b.Run(c.name, func(b *testing.B) {
			var pres placement.Result
			for i := 0; i < b.N; i++ {
				_, pres = core.SolveDeliveryOpt(in, alloc, c.opt)
			}
			b.ReportMetric(float64(len(pres.Chosen)), "replicas")
			b.ReportMetric(float64(pres.Evaluations), "evals")
		})
	}
}

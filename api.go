package idde

import (
	"fmt"
	"time"

	"idde/internal/baseline"
	"idde/internal/core"
	"idde/internal/des"
	"idde/internal/inspect"
	"idde/internal/model"
	"idde/internal/radio"
	"idde/internal/rng"
	"idde/internal/topology"
	"idde/internal/units"
	"idde/internal/workload"
)

// ApproachName identifies a strategy-formulation approach.
type ApproachName string

// The five approaches of the paper's evaluation (§4.1).
const (
	IDDEG  ApproachName = "IDDE-G"
	IDDEIP ApproachName = "IDDE-IP"
	SAA    ApproachName = "SAA"
	CDP    ApproachName = "CDP"
	DUPG   ApproachName = "DUP-G"
)

// Approaches lists every available approach in the paper's legend order.
func Approaches() []ApproachName {
	return []ApproachName{IDDEIP, IDDEG, SAA, CDP, DUPG}
}

// ScenarioConfig describes a synthetic edge storage scenario. The zero
// value of every optional field selects the paper's §4.2 setting.
type ScenarioConfig struct {
	// Servers (N), Users (M) and DataItems (K) are required.
	Servers, Users, DataItems int
	// Density is links-per-server in the inter-server network
	// (default 1.0).
	Density float64
	// Seed makes the scenario reproducible.
	Seed uint64

	// ChannelsPerServer defaults to 3.
	ChannelsPerServer int
	// ChannelBandwidthMBps defaults to 200.
	ChannelBandwidthMBps float64
	// CoverageRadiusM is the [min,max] server radio radius in meters
	// (default [400,800]).
	CoverageRadiusM [2]float64
	// ItemSizesMB are the allowed item sizes (default {30,60,90}).
	ItemSizesMB []float64
	// StorageRangeMB is the [min,max] per-server reservation
	// (default [30,300]).
	StorageRangeMB [2]float64
	// ZipfSkew shapes request popularity (default 0.8; 0 keeps the
	// default — use a tiny positive value for uniform).
	ZipfSkew float64
	// LinkSpeedMBps is the [min,max] wired link speed (default
	// [2000,6000]).
	LinkSpeedMBps [2]float64
	// CloudRateMBps is the cloud delivery speed (default 600).
	CloudRateMBps float64
	// IPBudget caps the IDDE-IP solver per Solve call (default 500ms).
	IPBudget time.Duration
}

// Scenario is a concrete IDDE problem instance: a topology, a workload
// and the radio environment.
type Scenario struct {
	in       *model.Instance
	ipBudget time.Duration
}

// NewScenario generates a scenario from the configuration.
func NewScenario(cfg ScenarioConfig) (*Scenario, error) {
	if cfg.Servers <= 0 || cfg.Users <= 0 || cfg.DataItems <= 0 {
		return nil, fmt.Errorf("idde: Servers, Users and DataItems must be positive")
	}
	if cfg.Density == 0 {
		cfg.Density = 1.0
	}
	tc := topology.DefaultGen(cfg.Servers, cfg.Users, cfg.Density)
	if cfg.ChannelsPerServer > 0 {
		tc.Channels = cfg.ChannelsPerServer
	}
	if cfg.ChannelBandwidthMBps > 0 {
		tc.Bandwidth = units.Rate(cfg.ChannelBandwidthMBps)
	}
	if cfg.CoverageRadiusM[1] > 0 {
		tc.CoverageRadius = [2]units.Meters{units.Meters(cfg.CoverageRadiusM[0]), units.Meters(cfg.CoverageRadiusM[1])}
	}
	if cfg.LinkSpeedMBps[1] > 0 {
		tc.LinkSpeed = [2]units.Rate{units.Rate(cfg.LinkSpeedMBps[0]), units.Rate(cfg.LinkSpeedMBps[1])}
	}
	if cfg.CloudRateMBps > 0 {
		tc.CloudRate = units.Rate(cfg.CloudRateMBps)
	}
	wc := workload.DefaultGen(cfg.DataItems)
	if len(cfg.ItemSizesMB) > 0 {
		wc.SizeChoices = nil
		for _, s := range cfg.ItemSizesMB {
			wc.SizeChoices = append(wc.SizeChoices, units.MegaBytes(s))
		}
	}
	if cfg.StorageRangeMB[1] > 0 {
		wc.Capacity = [2]units.MegaBytes{units.MegaBytes(cfg.StorageRangeMB[0]), units.MegaBytes(cfg.StorageRangeMB[1])}
	}
	if cfg.ZipfSkew > 0 {
		wc.ZipfSkew = cfg.ZipfSkew
	}

	s := rng.New(cfg.Seed)
	top, err := topology.Generate(tc, s.Split("topology"))
	if err != nil {
		return nil, err
	}
	wl, err := workload.Generate(wc, cfg.Servers, cfg.Users, s.Split("workload"))
	if err != nil {
		return nil, err
	}
	in, err := model.New(top, wl, radio.Default())
	if err != nil {
		return nil, err
	}
	budget := cfg.IPBudget
	if budget <= 0 {
		budget = 500 * time.Millisecond
	}
	return &Scenario{in: in, ipBudget: budget}, nil
}

// Servers, Users and DataItems report the scenario dimensions.
func (sc *Scenario) Servers() int   { return sc.in.N() }
func (sc *Scenario) Users() int     { return sc.in.M() }
func (sc *Scenario) DataItems() int { return sc.in.K() }

// TotalStorageMB reports the system-wide reserved storage.
func (sc *Scenario) TotalStorageMB() float64 {
	return float64(sc.in.Wl.TotalCapacity())
}

// Coverage reports the ids of the edge servers covering the user.
func (sc *Scenario) Coverage(user int) []int {
	return append([]int(nil), sc.in.Top.Coverage[user]...)
}

// Replica identifies one delivery decision σ_{i,k}=1.
type Replica struct {
	Server, Item int
}

// Strategy is a formulated IDDE strategy together with its measured
// objectives.
type Strategy struct {
	// Approach that produced the strategy.
	Approach ApproachName
	// AvgRateMBps is objective #1 (Eq. 5).
	AvgRateMBps float64
	// AvgLatencyMs is objective #2 (Eq. 9).
	AvgLatencyMs float64
	// Elapsed is the formulation time.
	Elapsed time.Duration

	raw model.Strategy
	sc  *Scenario
}

// Assignment reports the server and channel serving a user.
func (st *Strategy) Assignment(user int) (server, channel int, allocated bool) {
	a := st.raw.Alloc[user]
	return a.Server, a.Channel, a.Allocated()
}

// Replicas lists the delivery decisions, by server then item.
func (st *Strategy) Replicas() []Replica {
	var out []Replica
	for i := 0; i < st.sc.in.N(); i++ {
		for k := 0; k < st.sc.in.K(); k++ {
			if st.raw.Delivery.Placed(i, k) {
				out = append(out, Replica{Server: i, Item: k})
			}
		}
	}
	return out
}

// UserRateMBps reports one user's achieved data rate (Eqs. 2–4).
func (st *Strategy) UserRateMBps(user int) float64 {
	return float64(st.sc.in.UserRate(st.raw.Alloc, user))
}

// approach resolves an ApproachName to its implementation.
func (sc *Scenario) approach(name ApproachName) (baseline.Approach, error) {
	switch name {
	case IDDEG:
		return baseline.NewIDDEG(), nil
	case IDDEIP:
		ip := baseline.NewIDDEIP()
		ip.Budget = sc.ipBudget
		return ip, nil
	case SAA:
		return baseline.NewSAA(), nil
	case CDP:
		return baseline.NewCDP(), nil
	case DUPG:
		return baseline.NewDUPG(), nil
	default:
		return nil, fmt.Errorf("idde: unknown approach %q", name)
	}
}

// Solve formulates a strategy with the named approach. The seed drives
// the stochastic approaches (SAA, IDDE-IP); deterministic approaches
// ignore it.
func (sc *Scenario) Solve(name ApproachName, seed uint64) (*Strategy, error) {
	ap, err := sc.approach(name)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	raw := ap.Solve(sc.in, seed)
	elapsed := time.Since(t0)
	if err := sc.in.Check(raw); err != nil {
		return nil, fmt.Errorf("idde: %s produced an invalid strategy: %w", name, err)
	}
	rate, lat := sc.in.Evaluate(raw)
	return &Strategy{
		Approach:     name,
		AvgRateMBps:  float64(rate),
		AvgLatencyMs: lat.Millis(),
		Elapsed:      elapsed,
		raw:          raw,
		sc:           sc,
	}, nil
}

// Diagnostics carries IDDE-G's internal instrumentation (the quantities
// Theorems 4–7 reason about).
type Diagnostics struct {
	// GameUpdates is the Phase 1 iteration count (Theorem 4).
	GameUpdates int
	// GameConverged reports whether Phase 1 reached a fixed point.
	GameConverged bool
	// FrozenUsers counts users stopped by the update budget.
	FrozenUsers int
	// Replicas is the number of Phase 2 delivery decisions.
	Replicas int
	// LatencyReductionSec is ΔL(σ) versus all-cloud delivery (Eq. 25).
	LatencyReductionSec float64
}

// SolveIDDEG runs the paper's algorithm and returns its diagnostics
// alongside the strategy.
func (sc *Scenario) SolveIDDEG() (*Strategy, *Diagnostics, error) {
	t0 := time.Now()
	res := core.Solve(sc.in, core.DefaultOptions())
	elapsed := time.Since(t0)
	if err := sc.in.Check(res.Strategy); err != nil {
		return nil, nil, fmt.Errorf("idde: IDDE-G produced an invalid strategy: %w", err)
	}
	st := &Strategy{
		Approach:     IDDEG,
		AvgRateMBps:  float64(res.AvgRate),
		AvgLatencyMs: res.AvgLatency.Millis(),
		Elapsed:      elapsed,
		raw:          res.Strategy,
		sc:           sc,
	}
	diag := &Diagnostics{
		GameUpdates:         res.Phase1.Updates,
		GameConverged:       res.Phase1.Converged,
		FrozenUsers:         res.Phase1.Frozen,
		Replicas:            res.Replicas,
		LatencyReductionSec: float64(res.LatencyReduction),
	}
	return st, diag, nil
}

// SimReport summarizes a discrete-event execution of a strategy.
type SimReport struct {
	// AvgLatencyMs is the measured average over all requests.
	AvgLatencyMs float64
	// AnalyticAvgMs is Eq. 9's prediction for comparison.
	AnalyticAvgMs float64
	// CloudRequests counts requests served from the cloud.
	CloudRequests int
	// MaxInflation is the worst measured/analytic latency ratio
	// (1 = no queueing delay anywhere).
	MaxInflation float64
	// Events is the number of simulation events processed.
	Events int

	// Fault accounting, populated only by SimulateUnreliable: hop
	// retransmissions, abandoned sources, requests that exhausted every
	// edge replica and fell back to the cloud, and injected stalls.
	Retries        int
	Failovers      int
	CloudFallbacks int
	Stalls         int
}

// Simulate executes the strategy's transfers on the discrete-event
// simulator with request arrivals spread uniformly over spreadSeconds
// (0 = synchronized burst).
func (sc *Scenario) Simulate(st *Strategy, spreadSeconds float64, seed uint64) *SimReport {
	rep := des.SimulateStrategy(sc.in, st.raw, units.Seconds(spreadSeconds), rng.New(seed))
	return &SimReport{
		AvgLatencyMs:  rep.Avg.Millis(),
		AnalyticAvgMs: rep.AnalyticAvg.Millis(),
		CloudRequests: rep.CloudRequests,
		MaxInflation:  rep.MaxQueueingInflation(sc.in, st.raw),
		Events:        rep.Events,
	}
}

// FaultProfile configures the unreliable wired-transfer model: each
// store-and-forward hop may lose its payload (detected at the end of
// the attempt, as a checksum would) or stall before starting. Lost hops
// are retried with exponential backoff up to MaxRetries, after which
// the request fails over to its next-best replica and ultimately to the
// cloud, which stays reliable. Over-the-air delivery is unaffected.
type FaultProfile struct {
	// LinkLossProb is the per-hop-attempt loss probability in [0,1).
	LinkLossProb float64
	// StallProb is the per-hop probability of an injected StallMs pause
	// before the transfer starts.
	StallProb float64
	StallMs   float64
	// MaxRetries bounds retransmissions per hop (default 3).
	MaxRetries int
	// BackoffMs is the base retry delay, doubled per attempt
	// (default 2ms).
	BackoffMs float64
}

func (f FaultProfile) raw() des.Faults {
	return des.Faults{
		LossProb:   f.LinkLossProb,
		StallProb:  f.StallProb,
		StallTime:  units.Seconds(f.StallMs / 1e3),
		MaxRetries: f.MaxRetries,
		Backoff:    units.Seconds(f.BackoffMs / 1e3),
	}
}

// SimulateUnreliable executes the strategy on the discrete-event
// simulator with the given fault profile active on every wired link.
// A zero-valued profile reproduces Simulate exactly. The seed drives
// arrivals and every fault draw, so identical seeds give identical
// reports.
func (sc *Scenario) SimulateUnreliable(st *Strategy, spreadSeconds float64, faults FaultProfile, seed uint64) *SimReport {
	rep := des.SimulateStrategyFaulty(sc.in, st.raw, units.Seconds(spreadSeconds), faults.raw(), rng.New(seed))
	return &SimReport{
		AvgLatencyMs:   rep.Avg.Millis(),
		AnalyticAvgMs:  rep.AnalyticAvg.Millis(),
		CloudRequests:  rep.CloudRequests,
		MaxInflation:   rep.MaxQueueingInflation(sc.in, st.raw),
		Events:         rep.Events,
		Retries:        rep.Retries,
		Failovers:      rep.Failovers,
		CloudFallbacks: rep.CloudFallbacks,
		Stalls:         rep.Stalls,
	}
}

// Inspect renders a human-readable summary of the scenario's layout
// and, when st is non-nil, the strategy's spectrum occupancy and rate
// fairness.
func Inspect(sc *Scenario, st *Strategy) string {
	if st == nil {
		return inspect.Report(sc.in, nil)
	}
	return inspect.Report(sc.in, &st.raw)
}

// DOT renders the scenario's edge network (with an optional strategy
// overlay) as a Graphviz graph.
func DOT(sc *Scenario, st *Strategy) string {
	if st == nil {
		return inspect.DOT(sc.in, nil)
	}
	return inspect.DOT(sc.in, &st.raw)
}

// Compare runs every approach on the scenario, in legend order.
func (sc *Scenario) Compare(seed uint64) ([]*Strategy, error) {
	var out []*Strategy
	for _, name := range Approaches() {
		st, err := sc.Solve(name, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
	return out, nil
}

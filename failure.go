package idde

import (
	"fmt"

	"idde/internal/repair"
)

// FailureReport accounts for an injected server failure and its repair.
type FailureReport struct {
	// FailedServer is the failed server's id, or -1 when the report
	// covers a compound (multi-server) failure; FailedCount is the
	// number of servers taken down by the injection.
	FailedServer     int
	FailedCount      int
	DisplacedUsers   int
	StrandedUsers    int
	LostReplicas     int
	ReplacedReplicas int
	Moves            int
	// Rate/latency under the healthy strategy and after the repair on
	// the degraded system.
	RateBeforeMBps, RateAfterMBps   float64
	LatencyBeforeMs, LatencyAfterMs float64
}

// InjectFailure kills one edge server (its users, replicas and wired
// links all go with it), repairs the given strategy incrementally, and
// returns the repaired strategy — bound to the degraded scenario, which
// is also returned for further solving or simulation.
func (sc *Scenario) InjectFailure(st *Strategy, server int) (*Scenario, *Strategy, *FailureReport, error) {
	if st == nil || st.sc != sc {
		return nil, nil, nil, fmt.Errorf("idde: strategy does not belong to this scenario")
	}
	degIn, err := repair.FailServer(sc.in, server)
	if err != nil {
		return nil, nil, nil, err
	}
	degraded := &Scenario{in: degIn, ipBudget: sc.ipBudget}
	repaired, rep, err := repair.Repair(sc.in, degIn, st.raw, server, repair.Options{})
	if err != nil {
		return nil, nil, nil, err
	}
	out := &Strategy{
		Approach:     st.Approach,
		AvgRateMBps:  float64(rep.RateAfter),
		AvgLatencyMs: rep.LatencyAfter.Millis(),
		raw:          repaired,
		sc:           degraded,
	}
	report := &FailureReport{
		FailedServer:     rep.FailedServer,
		FailedCount:      rep.FailedCount,
		DisplacedUsers:   rep.DisplacedUsers,
		StrandedUsers:    rep.StrandedUsers,
		LostReplicas:     rep.LostReplicas,
		ReplacedReplicas: rep.ReplacedReplicas,
		Moves:            rep.Moves,
		RateBeforeMBps:   float64(rep.RateBefore),
		RateAfterMBps:    float64(rep.RateAfter),
		LatencyBeforeMs:  rep.LatencyBefore.Millis(),
		LatencyAfterMs:   rep.LatencyAfter.Millis(),
	}
	return degraded, out, report, nil
}

// InjectFailures kills several edge servers at once — a correlated
// failure — and repairs the strategy against the compound degradation.
// The semantics match InjectFailure applied atomically: users, replicas
// and wired links of every listed server go down together, and the
// repair sees the final degraded topology rather than each intermediate
// one. The returned report has FailedServer = -1 and FailedCount set.
func (sc *Scenario) InjectFailures(st *Strategy, servers []int) (*Scenario, *Strategy, *FailureReport, error) {
	if st == nil || st.sc != sc {
		return nil, nil, nil, fmt.Errorf("idde: strategy does not belong to this scenario")
	}
	degIn, err := repair.FailServers(sc.in, servers)
	if err != nil {
		return nil, nil, nil, err
	}
	degraded := &Scenario{in: degIn, ipBudget: sc.ipBudget}
	repaired, rep, err := repair.RepairDegraded(sc.in, degIn, st.raw, repair.Options{})
	if err != nil {
		return nil, nil, nil, err
	}
	out := &Strategy{
		Approach:     st.Approach,
		AvgRateMBps:  float64(rep.RateAfter),
		AvgLatencyMs: rep.LatencyAfter.Millis(),
		raw:          repaired,
		sc:           degraded,
	}
	report := &FailureReport{
		FailedServer:     rep.FailedServer,
		FailedCount:      rep.FailedCount,
		DisplacedUsers:   rep.DisplacedUsers,
		StrandedUsers:    rep.StrandedUsers,
		LostReplicas:     rep.LostReplicas,
		ReplacedReplicas: rep.ReplacedReplicas,
		Moves:            rep.Moves,
		RateBeforeMBps:   float64(rep.RateBefore),
		RateAfterMBps:    float64(rep.RateAfter),
		LatencyBeforeMs:  rep.LatencyBefore.Millis(),
		LatencyAfterMs:   rep.LatencyAfter.Millis(),
	}
	return degraded, out, report, nil
}

package idde

import (
	"encoding/json"
	"fmt"
	"io"

	"idde/internal/model"
)

// strategyJSON is the deployment artifact: everything an edge
// controller needs to enact a formulated strategy.
type strategyJSON struct {
	Approach ApproachName `json:"approach"`
	Mode     string       `json:"deliveryMode"`
	// Alloc[j] is user j's (server, channel); null for unallocated.
	Alloc []*[2]int `json:"alloc"`
	// Replicas lists σ_{i,k}=1 decisions as [server, item].
	Replicas [][2]int `json:"replicas"`
	// Metrics snapshot for human inspection (recomputed on load).
	AvgRateMBps  float64 `json:"avgRateMBps"`
	AvgLatencyMs float64 `json:"avgLatencyMs"`
}

var modeNames = map[model.DeliveryMode]string{
	model.Collaborative: "collaborative",
	model.CoverageLocal: "coverage-local",
	model.ServerLocal:   "server-local",
}

// Save writes the strategy as indented JSON — the artifact a controller
// would enact (user→channel assignments plus the replica list).
func (st *Strategy) Save(w io.Writer) error {
	out := strategyJSON{
		Approach:     st.Approach,
		Mode:         modeNames[st.raw.Mode],
		Alloc:        make([]*[2]int, len(st.raw.Alloc)),
		AvgRateMBps:  st.AvgRateMBps,
		AvgLatencyMs: st.AvgLatencyMs,
	}
	for j, a := range st.raw.Alloc {
		if a.Allocated() {
			out.Alloc[j] = &[2]int{a.Server, a.Channel}
		}
	}
	for _, r := range st.Replicas() {
		out.Replicas = append(out.Replicas, [2]int{r.Server, r.Item})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// LoadStrategy reads a strategy saved by Save, validates it against
// this scenario's constraints (Eqs. 1 and 6) and re-evaluates both
// objectives. Loading a strategy into a different scenario than it was
// formulated for fails validation rather than silently mis-reporting.
func (sc *Scenario) LoadStrategy(r io.Reader) (*Strategy, error) {
	var in strategyJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("idde: decoding strategy: %w", err)
	}
	if len(in.Alloc) != sc.Users() {
		return nil, fmt.Errorf("idde: strategy has %d users, scenario has %d", len(in.Alloc), sc.Users())
	}
	var mode model.DeliveryMode
	found := false
	for m, name := range modeNames {
		if name == in.Mode {
			mode = m
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("idde: unknown delivery mode %q", in.Mode)
	}
	raw := model.Strategy{
		Alloc:    model.NewAllocation(sc.Users()),
		Delivery: model.NewDelivery(sc.Servers(), sc.DataItems()),
		Mode:     mode,
	}
	for j, a := range in.Alloc {
		if a != nil {
			raw.Alloc[j] = model.Alloc{Server: a[0], Channel: a[1]}
		}
	}
	for _, rep := range in.Replicas {
		i, k := rep[0], rep[1]
		if i < 0 || i >= sc.Servers() || k < 0 || k >= sc.DataItems() {
			return nil, fmt.Errorf("idde: replica (%d,%d) out of range", i, k)
		}
		if raw.Delivery.Placed(i, k) {
			return nil, fmt.Errorf("idde: duplicate replica (%d,%d)", i, k)
		}
		raw.Delivery.Place(i, k, sc.in.Wl.Items[k].Size)
	}
	if err := sc.in.Check(raw); err != nil {
		return nil, fmt.Errorf("idde: loaded strategy invalid for this scenario: %w", err)
	}
	rate, lat := sc.in.Evaluate(raw)
	return &Strategy{
		Approach:     in.Approach,
		AvgRateMBps:  float64(rate),
		AvgLatencyMs: lat.Millis(),
		raw:          raw,
		sc:           sc,
	}, nil
}

package idde

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"
)

func TestStrategySaveLoadRoundTrip(t *testing.T) {
	sc := testScenario(t, 20)
	st, err := sc.Solve(IDDEG, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := sc.LoadStrategy(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Approach != IDDEG {
		t.Errorf("approach = %q", got.Approach)
	}
	if math.Abs(got.AvgRateMBps-st.AvgRateMBps) > 1e-9 ||
		math.Abs(got.AvgLatencyMs-st.AvgLatencyMs) > 1e-9 {
		t.Errorf("re-evaluated metrics differ: %v/%v vs %v/%v",
			got.AvgRateMBps, got.AvgLatencyMs, st.AvgRateMBps, st.AvgLatencyMs)
	}
	for j := 0; j < sc.Users(); j++ {
		s1, c1, ok1 := st.Assignment(j)
		s2, c2, ok2 := got.Assignment(j)
		if s1 != s2 || c1 != c2 || ok1 != ok2 {
			t.Fatalf("assignment differs for user %d", j)
		}
	}
	if len(got.Replicas()) != len(st.Replicas()) {
		t.Error("replica count differs")
	}
}

func TestStrategyRoundTripAllModes(t *testing.T) {
	sc := testScenario(t, 21)
	for _, name := range []ApproachName{IDDEG, SAA, CDP, DUPG} {
		st, err := sc.Solve(name, 3)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := st.Save(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := sc.LoadStrategy(&buf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Mode must survive: latency is mode-dependent.
		if math.Abs(got.AvgLatencyMs-st.AvgLatencyMs) > 1e-9 {
			t.Errorf("%s: latency changed across round trip: %v vs %v",
				name, got.AvgLatencyMs, st.AvgLatencyMs)
		}
	}
}

func TestLoadStrategyRejectsCorruption(t *testing.T) {
	sc := testScenario(t, 22)
	st, err := sc.Solve(IDDEG, 0)
	if err != nil {
		t.Fatal(err)
	}
	save := func() string {
		var buf bytes.Buffer
		if err := st.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	cases := []struct {
		name string
		body string
	}{
		{"garbage", "{"},
		{"wrong mode", strings.Replace(save(), "collaborative", "teleporting", 1)},
		{"oob replica", strings.Replace(save(), `"replicas": [`, `"replicas": [[999,0],`, 1)},
	}
	for _, c := range cases {
		if _, err := sc.LoadStrategy(strings.NewReader(c.body)); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
	// Wrong scenario size.
	other, err := NewScenario(ScenarioConfig{Servers: 5, Users: 20, DataItems: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.LoadStrategy(strings.NewReader(save())); err == nil {
		t.Error("strategy loaded into mismatched scenario")
	}
}

func TestLoadStrategyRejectsDuplicateReplica(t *testing.T) {
	sc := testScenario(t, 23)
	st, err := sc.Solve(IDDEG, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	reps := st.Replicas()
	if len(reps) == 0 {
		t.Skip("no replicas to duplicate")
	}
	dup := strings.Replace(buf.String(), `"replicas": [`,
		// Duplicate the first replica.
		`"replicas": [`+dupEntry(reps[0])+",", 1)
	if _, err := sc.LoadStrategy(strings.NewReader(dup)); err == nil {
		t.Error("duplicate replica accepted")
	}
}

func dupEntry(r Replica) string {
	return fmt.Sprintf("[%d,%d]", r.Server, r.Item)
}

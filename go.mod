module idde

go 1.22

package idde

import (
	"math"
	"strings"
	"testing"
	"time"
)

func testScenario(t *testing.T, seed uint64) *Scenario {
	t.Helper()
	sc, err := NewScenario(ScenarioConfig{
		Servers: 15, Users: 100, DataItems: 4, Seed: seed,
		IPBudget: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewScenario: %v", err)
	}
	return sc
}

func TestNewScenarioValidation(t *testing.T) {
	if _, err := NewScenario(ScenarioConfig{Servers: 0, Users: 10, DataItems: 2}); err == nil {
		t.Error("zero servers accepted")
	}
	if _, err := NewScenario(ScenarioConfig{Servers: 10, Users: 0, DataItems: 2}); err == nil {
		t.Error("zero users accepted")
	}
	if _, err := NewScenario(ScenarioConfig{Servers: 10, Users: 10, DataItems: 0}); err == nil {
		t.Error("zero items accepted")
	}
}

func TestScenarioDimensions(t *testing.T) {
	sc := testScenario(t, 1)
	if sc.Servers() != 15 || sc.Users() != 100 || sc.DataItems() != 4 {
		t.Errorf("dims %d/%d/%d", sc.Servers(), sc.Users(), sc.DataItems())
	}
	if sc.TotalStorageMB() <= 0 {
		t.Error("no storage")
	}
	if len(sc.Coverage(0)) == 0 {
		t.Error("user 0 uncovered")
	}
}

func TestSolveEveryApproach(t *testing.T) {
	sc := testScenario(t, 2)
	for _, name := range Approaches() {
		st, err := sc.Solve(name, 7)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if st.Approach != name {
			t.Errorf("approach label = %q", st.Approach)
		}
		if st.AvgRateMBps <= 0 || st.AvgRateMBps > 250 {
			t.Errorf("%s: rate %v out of band", name, st.AvgRateMBps)
		}
		if st.AvgLatencyMs < 0 || st.AvgLatencyMs > 200 {
			t.Errorf("%s: latency %v out of band", name, st.AvgLatencyMs)
		}
		if st.Elapsed <= 0 {
			t.Errorf("%s: no elapsed time", name)
		}
	}
}

func TestSolveUnknownApproach(t *testing.T) {
	sc := testScenario(t, 3)
	if _, err := sc.Solve("NOPE", 0); err == nil {
		t.Error("unknown approach accepted")
	}
}

func TestStrategyAccessors(t *testing.T) {
	sc := testScenario(t, 4)
	st, err := sc.Solve(IDDEG, 0)
	if err != nil {
		t.Fatal(err)
	}
	allocated := 0
	for j := 0; j < sc.Users(); j++ {
		server, channel, ok := st.Assignment(j)
		if ok {
			allocated++
			if server < 0 || server >= sc.Servers() || channel < 0 {
				t.Fatalf("bad assignment (%d,%d)", server, channel)
			}
			if r := st.UserRateMBps(j); r <= 0 {
				t.Errorf("allocated user %d has rate %v", j, r)
			}
		}
	}
	if allocated != sc.Users() {
		t.Errorf("IDDE-G allocated %d of %d", allocated, sc.Users())
	}
	reps := st.Replicas()
	if len(reps) == 0 {
		t.Error("no replicas placed")
	}
	for _, r := range reps {
		if r.Server < 0 || r.Server >= sc.Servers() || r.Item < 0 || r.Item >= sc.DataItems() {
			t.Errorf("bad replica %+v", r)
		}
	}
}

func TestSolveIDDEGDiagnostics(t *testing.T) {
	sc := testScenario(t, 5)
	st, diag, err := sc.SolveIDDEG()
	if err != nil {
		t.Fatal(err)
	}
	if !diag.GameConverged {
		t.Error("game did not converge")
	}
	if diag.GameUpdates <= 0 || diag.Replicas <= 0 {
		t.Errorf("diagnostics empty: %+v", diag)
	}
	if diag.LatencyReductionSec <= 0 {
		t.Error("no latency reduction")
	}
	if st.AvgRateMBps <= 0 {
		t.Error("no rate")
	}
	// SolveIDDEG and Solve(IDDEG, ·) agree.
	st2, err := sc.Solve(IDDEG, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.AvgRateMBps-st2.AvgRateMBps) > 1e-9 {
		t.Errorf("SolveIDDEG rate %v != Solve rate %v", st.AvgRateMBps, st2.AvgRateMBps)
	}
}

func TestCompareOrderAndHeadline(t *testing.T) {
	sc := testScenario(t, 6)
	sts, err := sc.Compare(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != 5 {
		t.Fatalf("Compare returned %d strategies", len(sts))
	}
	byName := map[ApproachName]*Strategy{}
	for i, st := range sts {
		if st.Approach != Approaches()[i] {
			t.Errorf("order wrong at %d: %s", i, st.Approach)
		}
		byName[st.Approach] = st
	}
	// Headline: IDDE-G has the best rate and latency.
	g := byName[IDDEG]
	for name, st := range byName {
		if name == IDDEG {
			continue
		}
		if g.AvgRateMBps < st.AvgRateMBps {
			t.Errorf("IDDE-G rate %v below %s %v", g.AvgRateMBps, name, st.AvgRateMBps)
		}
		if g.AvgLatencyMs > st.AvgLatencyMs {
			t.Errorf("IDDE-G latency %v above %s %v", g.AvgLatencyMs, name, st.AvgLatencyMs)
		}
	}
}

func TestSimulateThroughAPI(t *testing.T) {
	sc := testScenario(t, 7)
	st, err := sc.Solve(IDDEG, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Uncontended: measured matches analytic.
	calm := sc.Simulate(st, 1e6, 1)
	if math.Abs(calm.AvgLatencyMs-calm.AnalyticAvgMs) > 1e-6*math.Max(1, calm.AnalyticAvgMs) {
		t.Errorf("uncontended sim %v != analytic %v", calm.AvgLatencyMs, calm.AnalyticAvgMs)
	}
	// Burst: only worse.
	burst := sc.Simulate(st, 0, 1)
	if burst.AvgLatencyMs < calm.AvgLatencyMs-1e-9 {
		t.Errorf("burst %v better than calm %v", burst.AvgLatencyMs, calm.AvgLatencyMs)
	}
	if burst.MaxInflation < 1 {
		t.Errorf("inflation %v < 1", burst.MaxInflation)
	}
	if burst.Events == 0 {
		t.Error("no events")
	}
}

func TestCustomScenarioKnobs(t *testing.T) {
	sc, err := NewScenario(ScenarioConfig{
		Servers: 10, Users: 50, DataItems: 3, Seed: 8,
		ChannelsPerServer:    2,
		ChannelBandwidthMBps: 100,
		ItemSizesMB:          []float64{10, 20},
		StorageRangeMB:       [2]float64{20, 40},
		CloudRateMBps:        300,
		Density:              2.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := sc.Solve(IDDEG, 0)
	if err != nil {
		t.Fatal(err)
	}
	// With B=100, no user can exceed ~100·log2(1+SINR_cap)… the R_max
	// cap still applies, so just sanity-check the band moved down.
	if st.AvgRateMBps <= 0 {
		t.Error("no rate")
	}
	if sc.TotalStorageMB() > 40*10 {
		t.Errorf("storage exceeds configured cap: %v", sc.TotalStorageMB())
	}
}

func TestTunePower(t *testing.T) {
	sc := testScenario(t, 10)
	st, err := sc.Solve(IDDEG, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sc.TunePower(st)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AvgRateAfterMBps < rep.AvgRateBeforeMBps-1e-9 {
		t.Errorf("power pass lowered rate: %v -> %v", rep.AvgRateBeforeMBps, rep.AvgRateAfterMBps)
	}
	if rep.SavedWatts < 0 || len(rep.PowersW) != sc.Users() {
		t.Errorf("report malformed: %+v", rep)
	}
	// A strategy from another scenario is rejected.
	other := testScenario(t, 11)
	if _, err := other.TunePower(st); err == nil {
		t.Error("foreign strategy accepted")
	}
	if _, err := sc.TunePower(nil); err == nil {
		t.Error("nil strategy accepted")
	}
}

func TestSimulateMobilityAPI(t *testing.T) {
	sc := testScenario(t, 12)
	eps, err := sc.SimulateMobility(MobilityConfig{
		Epochs: 2, EpochSeconds: 60, SpeedMps: [2]float64{1, 3},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(eps) != 3 {
		t.Fatalf("epochs = %d", len(eps))
	}
	for _, ep := range eps {
		if ep.RateMBps <= 0 || ep.Replicas <= 0 {
			t.Errorf("epoch %d malformed: %+v", ep.Epoch, ep)
		}
	}
	if _, err := sc.SimulateMobility(MobilityConfig{Approach: "NOPE"}, 1); err == nil {
		t.Error("unknown approach accepted")
	}
}

func TestCompeteAPI(t *testing.T) {
	sc := testScenario(t, 13)
	for _, policy := range []CompetitionPolicy{EvenSplit, Proportional, Draft} {
		res, err := sc.Compete(2, policy, 1)
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if len(res.Vendors) != 2 {
			t.Fatalf("%s: %d vendors", policy, len(res.Vendors))
		}
		users := 0
		for _, v := range res.Vendors {
			users += v.Users
		}
		if users != sc.Users() {
			t.Errorf("%s: vendors own %d of %d users", policy, users, sc.Users())
		}
		if res.JainFairness <= 0 || res.JainFairness > 1+1e-9 {
			t.Errorf("%s: Jain %v", policy, res.JainFairness)
		}
	}
	if _, err := sc.Compete(2, "NOPE", 1); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := sc.Compete(0, EvenSplit, 1); err == nil {
		t.Error("zero vendors accepted")
	}
}

func TestInspectAndDOT(t *testing.T) {
	sc := testScenario(t, 14)
	st, err := sc.Solve(IDDEG, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep := Inspect(sc, st)
	for _, want := range []string{"topology:", "allocation:", "rate fairness"} {
		if !contains(rep, want) {
			t.Errorf("Inspect missing %q", want)
		}
	}
	if bare := Inspect(sc, nil); contains(bare, "allocation:") {
		t.Error("bare Inspect has strategy section")
	}
	dot := DOT(sc, st)
	if !contains(dot, "graph edgestorage") || !contains(dot, " -- ") {
		t.Error("DOT output malformed")
	}
	if plain := DOT(sc, nil); contains(plain, "u/") {
		t.Error("plain DOT has overlay")
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && strings.Contains(s, sub)
}

func TestInjectFailureAPI(t *testing.T) {
	sc := testScenario(t, 15)
	st, err := sc.Solve(IDDEG, 0)
	if err != nil {
		t.Fatal(err)
	}
	degraded, repaired, rep, err := sc.InjectFailure(st, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FailedServer != 0 {
		t.Errorf("report names server %d", rep.FailedServer)
	}
	if repaired.AvgRateMBps <= 0 {
		t.Error("repaired strategy has no rate")
	}
	// The repaired strategy belongs to the degraded scenario and can be
	// simulated there.
	sim := degraded.Simulate(repaired, 1e6, 1)
	if sim.Events == 0 {
		t.Error("simulation of repaired strategy did nothing")
	}
	// No user on the failed server.
	for j := 0; j < degraded.Users(); j++ {
		if s, _, ok := repaired.Assignment(j); ok && s == 0 {
			t.Fatalf("user %d still on failed server", j)
		}
	}
	// Foreign/nil strategies rejected.
	if _, _, _, err := sc.InjectFailure(nil, 0); err == nil {
		t.Error("nil strategy accepted")
	}
	if _, _, _, err := degraded.InjectFailure(st, 1); err == nil {
		t.Error("foreign strategy accepted")
	}
	if _, _, _, err := sc.InjectFailure(st, 99); err == nil {
		t.Error("unknown server accepted")
	}
}

func TestScenarioDeterminism(t *testing.T) {
	a := testScenario(t, 9)
	b := testScenario(t, 9)
	sa, err := a.Solve(IDDEG, 0)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.Solve(IDDEG, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sa.AvgRateMBps != sb.AvgRateMBps || sa.AvgLatencyMs != sb.AvgLatencyMs {
		t.Error("identical scenarios solved differently")
	}
}

// Package idde is a Go implementation of interference-aware data
// delivery for edge storage systems, reproducing "Formulating
// Interference-aware Data Delivery Strategies in Edge Storage Systems"
// (Xia et al., ICPP 2022).
//
// An edge storage system is a set of networked edge servers that an app
// vendor rents storage on to serve nearby mobile users. Formulating a
// data delivery strategy means answering two coupled questions:
//
//  1. User allocation — which server and wireless channel serves each
//     user, so that interference between co-channel users does not
//     destroy their data rates (IDDE objective #1: maximize the average
//     data rate), and
//  2. Data delivery — which data is replicated onto which server's
//     reserved storage, so that requests are served from nearby edge
//     servers rather than the remote cloud (IDDE objective #2: minimize
//     the average delivery latency).
//
// The package exposes the paper's proposed two-phase algorithm IDDE-G —
// a potential-game Nash equilibrium for allocation followed by a greedy
// gain-per-MB replica placement — together with the four baselines its
// evaluation compares against (IDDE-IP, SAA, CDP, DUP-G), a synthetic
// EUA-like scenario generator, and a discrete-event transfer simulator
// for validating strategies under contention.
//
// # Quick start
//
//	sc, err := idde.NewScenario(idde.ScenarioConfig{
//		Servers: 30, Users: 200, DataItems: 5, Seed: 1,
//	})
//	if err != nil { ... }
//	st, err := sc.Solve(idde.IDDEG, 1)
//	if err != nil { ... }
//	fmt.Printf("rate %.1f MBps, latency %.2f ms\n", st.AvgRateMBps, st.AvgLatencyMs)
//
// The cmd/iddebench tool regenerates every figure of the paper's
// evaluation; see EXPERIMENTS.md for the measured results.
package idde

package idde

import (
	"reflect"
	"runtime"
	"testing"

	"idde/internal/core"
	"idde/internal/experiment"
	"idde/internal/shard"
)

// The end-to-end differential suite for the geo-sharded solver: a
// single-tile sharded solve must be bit-identical to the global path,
// and multi-tile solves must be deterministic and worker-count
// independent (tiles write disjoint state and merge in tile order; the
// halo exchange runs in fixed tile order).

// shardGrid is the Table 2-flavoured parameter grid the suite runs.
var shardGrid = []struct {
	p    experiment.Params
	seed uint64
}{
	{experiment.Params{N: 12, M: 90, K: 5, Density: 1.0}, 5},
	{experiment.Params{N: 20, M: 150, K: 6, Density: 1.0}, 2022},
	{experiment.Params{N: 25, M: 260, K: 5, Density: 1.0}, 21},
}

// TestShardedSolveSingleTileMatchesGlobal: Shards=1 runs the identical
// arithmetic through the identical code paths (one tile holding every
// server and user, no halo, reconcile finds nothing to add), so the
// whole fingerprint — equilibrium allocation, game stats, replica
// sequence, objectives — must equal the global solver's exactly. Only
// GainEvaluations may grow: the reconcile pass's seed scan re-proves
// that no candidate is left.
func TestShardedSolveSingleTileMatchesGlobal(t *testing.T) {
	for _, g := range shardGrid {
		in, err := experiment.BuildInstance(g.p, g.seed)
		if err != nil {
			t.Fatal(err)
		}
		base := fingerprint(core.Solve(in, core.DefaultOptions()))
		opt := core.DefaultOptions()
		opt.Shards = 1
		res := core.Solve(in, opt)
		if res.Shard == nil || res.Shard.Tiles != 1 {
			t.Fatalf("%v: sharded solve reported no shard stats or wrong tile count: %+v", g.p, res.Shard)
		}
		if res.Shard.HaloUsers != 0 || res.Shard.ReconcileReplicas != 0 {
			t.Fatalf("%v: single tile must have no halo and an empty reconcile: %+v", g.p, *res.Shard)
		}
		got := fingerprint(res)
		if got.Evaluations < base.Evaluations {
			t.Fatalf("%v: sharded solve evaluated less than global (%d < %d)?", g.p, got.Evaluations, base.Evaluations)
		}
		got.Evaluations = base.Evaluations // reconcile seed scan re-proves emptiness
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("%v: Shards=1 diverges from global:\n%+v\nvs\n%+v", g.p, got, base)
		}
	}
}

// TestShardedSolveMultiTileValidAndDeterministic: Shards=4 must produce
// a valid strategy (coverage and capacity constraints hold) and the
// exact same result on repeated runs.
func TestShardedSolveMultiTileValidAndDeterministic(t *testing.T) {
	for _, g := range shardGrid {
		in, err := experiment.BuildInstance(g.p, g.seed)
		if err != nil {
			t.Fatal(err)
		}
		opt := core.DefaultOptions()
		opt.Shards = 4
		base := core.Solve(in, opt)
		if err := in.Check(base.Strategy); err != nil {
			t.Fatalf("%v: sharded strategy invalid: %v", g.p, err)
		}
		if base.Shard.Tiles != 4 {
			t.Fatalf("%v: got %d tiles, want 4", g.p, base.Shard.Tiles)
		}
		if base.AvgRate <= 0 {
			t.Fatalf("%v: non-positive average rate", g.p)
		}
		again := core.Solve(in, opt)
		if !reflect.DeepEqual(fingerprint(again), fingerprint(base)) ||
			!reflect.DeepEqual(*again.Shard, *base.Shard) {
			t.Fatalf("%v: repeated sharded solve diverged", g.p)
		}
	}
}

// TestShardedSolveGomaxprocsInvariance pins the worker-count
// independence of a 4-tile solve: tile workers write disjoint slots
// merged in tile order, the tile games' internal scans merge in index
// order, and the halo exchange is sequential in tile order — so the
// full fingerprint plus the shard stats must be identical under
// GOMAXPROCS ∈ {1, 2, 8}.
func TestShardedSolveGomaxprocsInvariance(t *testing.T) {
	in, err := experiment.BuildInstance(experiment.Params{N: 20, M: 240, K: 6, Density: 1.0}, 2022)
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()
	opt.Shards = 4
	opt.Game.ParallelThreshold = 1

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	var base solveFingerprint
	var baseShard shard.Stats
	for gi, g := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(g)
		res := core.Solve(in, opt)
		fp := fingerprint(res)
		if gi == 0 {
			base, baseShard = fp, *res.Shard
			continue
		}
		if !reflect.DeepEqual(fp, base) {
			t.Fatalf("GOMAXPROCS=%d sharded solve diverges:\n%+v\nvs\n%+v", g, fp, base)
		}
		if *res.Shard != baseShard {
			t.Fatalf("GOMAXPROCS=%d shard stats diverge: %+v vs %+v", g, *res.Shard, baseShard)
		}
	}
}

// TestShardedSolveWorkerCapInvariance: the explicit worker cap must not
// change the outcome either — shard.Solve is invoked directly so the
// cap can be set.
func TestShardedSolveWorkerCapInvariance(t *testing.T) {
	in, err := experiment.BuildInstance(experiment.Params{N: 16, M: 120, K: 5, Density: 1.0}, 7)
	if err != nil {
		t.Fatal(err)
	}
	var base *shard.Result
	for _, w := range []int{1, 2, 5} {
		res := shard.Solve(in, shard.Config{Tiles: 4, Workers: w})
		if base == nil {
			base = res
			continue
		}
		if !reflect.DeepEqual(res.Alloc, base.Alloc) ||
			!reflect.DeepEqual(res.Delivery, base.Delivery) ||
			res.AvgRate != base.AvgRate || res.Phase1 != base.Phase1 ||
			res.Stats != base.Stats {
			t.Fatalf("Workers=%d sharded solve diverged from Workers=1", w)
		}
	}
}

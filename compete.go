package idde

import (
	"fmt"

	"idde/internal/rng"
	"idde/internal/vendor"
)

// CompetitionPolicy selects how contested per-server storage is divided
// among competing app vendors (see internal/vendor).
type CompetitionPolicy string

const (
	// EvenSplit divides every server's reservation equally.
	EvenSplit CompetitionPolicy = "even-split"
	// Proportional divides by each vendor's local demand.
	Proportional CompetitionPolicy = "proportional"
	// Draft lets vendors alternate greedy claims from the shared pool.
	Draft CompetitionPolicy = "draft"
)

// VendorOutcome is one vendor's result in a competition round.
type VendorOutcome struct {
	Vendor     int
	Users      int
	RateMBps   float64
	LatencyMs  float64
	ReservedMB float64
	Replicas   int
}

// CompetitionResult summarizes a multi-vendor round.
type CompetitionResult struct {
	Policy CompetitionPolicy
	// Vendors holds per-vendor outcomes, by vendor id.
	Vendors []VendorOutcome
	// JainFairness is Jain's index over vendor rates (1 = perfectly fair).
	JainFairness float64
	// SystemLatencyMs is the demand-weighted mean latency across all
	// vendors.
	SystemLatencyMs float64
}

// Compete partitions the scenario's users and catalog among `vendors`
// competing app vendors and runs the storage competition under the
// given policy. The wireless allocation game is shared (interference
// does not care about subscriptions); storage is contested.
func (sc *Scenario) Compete(vendors int, policy CompetitionPolicy, seed uint64) (*CompetitionResult, error) {
	var p vendor.SplitPolicy
	switch policy {
	case EvenSplit:
		p = vendor.EvenSplit
	case Proportional:
		p = vendor.Proportional
	case Draft:
		p = vendor.Draft
	default:
		return nil, fmt.Errorf("idde: unknown competition policy %q", policy)
	}
	assign, err := vendor.RandomAssignment(sc.in, vendors, rng.New(seed).Split("assignment"))
	if err != nil {
		return nil, err
	}
	res, err := vendor.Compete(sc.in, assign, p)
	if err != nil {
		return nil, err
	}
	out := &CompetitionResult{
		Policy:          policy,
		JainFairness:    res.JainRate,
		SystemLatencyMs: res.SystemLatencyMs,
	}
	for _, m := range res.PerVendor {
		out.Vendors = append(out.Vendors, VendorOutcome{
			Vendor:     m.Vendor,
			Users:      m.Users,
			RateMBps:   m.RateMBps,
			LatencyMs:  m.LatencyMs,
			ReservedMB: m.ReservedMB,
			Replicas:   m.Replicas,
		})
	}
	return out, nil
}

// Command iddereport runs the complete evaluation and emits the
// paper-vs-measured report behind EXPERIMENTS.md: every figure's data
// plus, for each experiment set, IDDE-G's measured relative advantages
// lined up against the values the paper quotes, with a shape verdict.
//
// Usage:
//
//	iddereport -reps 10 > EXPERIMENTS_data.md
//	iddereport -reps 50 -ip-budget 2s      # closer to the paper's budget
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"idde/internal/baseline"
	"idde/internal/cloudlat"
	"idde/internal/experiment"
	"idde/internal/paper"
	"idde/internal/rng"
)

func main() {
	var (
		reps     = flag.Int("reps", 10, "repetitions per x value (paper: 50)")
		seed     = flag.Uint64("seed", 2022, "master seed")
		ipBudget = flag.Duration("ip-budget", 500*time.Millisecond, "IDDE-IP solver budget")
	)
	flag.Parse()
	if err := run(*reps, *seed, *ipBudget); err != nil {
		fmt.Fprintln(os.Stderr, "iddereport:", err)
		os.Exit(1)
	}
}

func run(reps int, seed uint64, ipBudget time.Duration) error {
	ip := baseline.NewIDDEIP()
	ip.Budget = ipBudget
	cfg := experiment.Config{
		Reps: reps, Seed: seed,
		Approaches: []baseline.Approach{
			ip, baseline.NewIDDEG(), baseline.NewSAA(), baseline.NewCDP(), baseline.NewDUPG(),
		},
	}

	fmt.Printf("# Measured evaluation (reps=%d, seed=%d, IDDE-IP budget %v)\n\n", reps, seed, ipBudget)

	// Figure 1.
	series := cloudlat.Collect(cloudlat.DefaultTargets(), rng.New(seed))
	fmt.Println("## Figure 1")
	fmt.Println()
	fmt.Println(experiment.Fig1Markdown(series))
	fmt.Println("Paper (approximate bar heights):", fmtMap(paper.Fig1ApproxMeansMs))
	fmt.Println()

	// Table 2.
	fmt.Println("## Table 2")
	fmt.Println()
	fmt.Println(experiment.Table2Markdown())

	// Figures 3–6 + 7.
	var srs []*experiment.SetResult
	overall := map[string][2]float64{} // name -> {rateAdvSum, latAdvSum}
	for _, set := range experiment.Sets() {
		fmt.Fprintf(os.Stderr, "running Set #%d...\n", set.ID)
		sr, err := experiment.RunSet(set, cfg)
		if err != nil {
			return err
		}
		srs = append(srs, sr)
		figNo := set.ID + 2
		fmt.Printf("## Figure %d (Set #%d)\n\n", figNo, set.ID)
		fmt.Printf("### (a) %s\n", sr.MarkdownTable(experiment.RateMetric))
		fmt.Printf("### (b) %s\n", sr.MarkdownTable(experiment.LatencyMetric))
		fmt.Println("### Paper-vs-measured shape checks")
		fmt.Println()
		fmt.Println(paper.Markdown(paper.CompareAdvantages(sr)))
		for _, name := range paper.Baselines {
			overall[name] = [2]float64{
				overall[name][0] + sr.Advantage(name, experiment.RateMetric),
				overall[name][1] + sr.Advantage(name, experiment.LatencyMetric),
			}
		}
	}

	fmt.Println("## Figure 7")
	fmt.Println()
	fmt.Println(experiment.TimingMarkdown(srs))
	fmt.Println("Paper means (s):", fmtMap(paper.Fig7MeanSeconds))
	fmt.Println()

	fmt.Println("## Overall advantages (paper §4.5.1 headline)")
	fmt.Println()
	fmt.Println("| Baseline | Paper rate adv | Measured rate adv | Paper latency adv | Measured latency adv |")
	fmt.Println("|---|---|---|---|---|")
	n := float64(len(srs))
	for _, name := range paper.Baselines {
		fmt.Printf("| %s | %.2f%% | %.2f%% | %.2f%% | %.2f%% |\n",
			name,
			paper.Overall.Rate[name], overall[name][0]/n*100,
			paper.Overall.Latency[name], overall[name][1]/n*100)
	}
	return nil
}

func fmtMap(m map[string]float64) string {
	out := ""
	for _, k := range []string{"IDDE-IP", "IDDE-G", "SAA", "CDP", "DUP-G", "Edge", "Singapore", "London", "Frankfurt"} {
		if v, ok := m[k]; ok {
			out += fmt.Sprintf("%s=%.2f ", k, v)
		}
	}
	return out
}

// Command iddetune runs sensitivity sweeps over the design knobs the
// paper holds fixed — channels per server, channel bandwidth, coverage
// radius, popularity skew and cloud rate — using IDDE-G as the
// strategy. Sweeps are paired (same instances at every knob value), so
// differences isolate the knob.
//
// Usage:
//
//	iddetune -knob channels -values 1,2,3,4,6
//	iddetune -knob bandwidth -values 50,100,200,400 -reps 10
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"idde/internal/tuning"
	"idde/internal/viz"
)

func main() {
	var (
		knob    = flag.String("knob", "channels", "knob to sweep: channels, bandwidth, radius, zipf or cloudrate")
		values  = flag.String("values", "1,2,3,4,6", "comma-separated knob values")
		n       = flag.Int("n", 30, "edge servers")
		m       = flag.Int("m", 200, "users")
		k       = flag.Int("k", 5, "data items")
		density = flag.Float64("density", 1.0, "links per server")
		reps    = flag.Int("reps", 5, "repetitions per value")
		seed    = flag.Uint64("seed", 1, "seed")
	)
	flag.Parse()

	var vals []float64
	for _, part := range strings.Split(*values, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			fatal(fmt.Errorf("bad value %q: %w", part, err))
		}
		vals = append(vals, v)
	}

	pts, err := tuning.Sweep(tuning.Config{
		Knob: tuning.Knob(*knob), Values: vals,
		N: *n, M: *m, K: *k, Density: *density,
		Reps: *reps, Seed: *seed,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("IDDE-G sensitivity to %s (N=%d M=%d K=%d, %d reps, paired)\n\n", *knob, *n, *m, *k, *reps)
	fmt.Printf("%-10s  %18s  %18s\n", *knob, "R_avg (MBps)", "L_avg (ms)")
	var rates, lats []float64
	for _, p := range pts {
		fmt.Printf("%-10g  %10.2f ±%5.2f  %10.3f ±%5.3f\n",
			p.X, p.RateMBps.Mean, p.RateMBps.CI95, p.LatencyMs.Mean, p.LatencyMs.CI95)
		rates = append(rates, p.RateMBps.Mean)
		lats = append(lats, p.LatencyMs.Mean)
	}
	fmt.Printf("\nrate     %s\nlatency  %s\n", viz.Sparkline(rates), viz.Sparkline(lats))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "iddetune:", err)
	os.Exit(1)
}

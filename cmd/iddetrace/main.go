// Command iddetrace runs one seeded IDDE-G solve with full telemetry
// enabled and renders the solver's convergence timelines: the Phase 1
// best-response trajectory (average rate, Eq. 13 potential, dirty-set
// size and winner gain per round) and the Phase 2 CELF commit sequence
// (gain, ratio, storage consumed and oracle-call count per iteration).
//
// Usage:
//
//	iddetrace                                # Table 2 fixed config (N=30 M=200 K=5)
//	iddetrace -n 20 -m 100 -k 4 -seed 7      # any instance size
//	iddetrace -out results                   # also write trace + timeline artifacts
//	iddetrace -serve 127.0.0.1:6060          # live pprof/expvar//metrics while running
//	iddetrace -flight flight.jsonl -out DIR  # render a serve flight dump as an
//	                                         # exemplar waterfall (flight.chrome.json)
//
// With -out DIR it writes:
//
//	DIR/trace.jsonl            one JSON event per line (logical ticks; byte-reproducible per seed)
//	DIR/trace.chrome.json      Chrome trace_event format — load in chrome://tracing or Perfetto
//	DIR/phase1_timeline.csv    round, updates, evals, dirty, winner, gain, r_avg[, potential]
//	DIR/phase2_timeline.csv    iter, server, item, gain, ratio, cost, total_gain, evals
//	DIR/metrics.txt            Prometheus text dump of every registered metric
//
// The process exits nonzero if the run recorded no events — the CI
// bench-smoke job uses that as the trace-not-empty check.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"idde/internal/core"
	"idde/internal/experiment"
	"idde/internal/obs"
)

func main() {
	if err := realMain(); err != nil {
		fmt.Fprintln(os.Stderr, "iddetrace:", err)
		os.Exit(1)
	}
}

var phase1Cols = []string{"round", "updates", "evals", "dirty", "winner", "gain", "r_avg", "potential"}
var phase2Cols = []string{"iter", "server", "item", "gain", "ratio", "cost", "total_gain", "evals"}

func realMain() error {
	var (
		n         = flag.Int("n", 30, "edge servers")
		m         = flag.Int("m", 200, "users")
		k         = flag.Int("k", 5, "data items")
		density   = flag.Float64("density", 1.0, "links per server")
		seed      = flag.Uint64("seed", 2022, "instance seed")
		potential = flag.Bool("potential", true, "evaluate the Eq. 13 potential every Phase 1 round (O(M²) per round; disable for big instances)")
		outDir    = flag.String("out", "", "directory for trace + timeline artifacts (optional)")
		stream    = flag.String("stream", "", "stream the trace to this JSONL file incrementally instead of buffering it in memory (for M>=1e5 runs; disables the post-run tables and -out trace artifacts)")
		serveAddr = flag.String("serve", "", "serve live pprof/expvar//metrics on this address while running (optional)")
		maxRows   = flag.Int("rows", 12, "max rows per printed markdown table (head+tail elision; CSVs are always complete)")
		flight    = flag.String("flight", "", "render this serve flight dump (JSONL) as a Chrome-trace exemplar waterfall instead of running a solve")
	)
	flag.Parse()

	if *flight != "" {
		return renderFlight(*flight, *outDir, *maxRows)
	}

	p := experiment.Params{N: *n, M: *m, K: *k, Density: *density}
	in, err := experiment.BuildInstance(p, *seed)
	if err != nil {
		return err
	}

	sc := obs.New()
	if *serveAddr != "" {
		srv, err := obs.Serve(*serveAddr, sc)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "live telemetry on http://%s (/metrics, /debug/vars, /debug/pprof/)\n", srv.Addr())
	}

	tr := sc.Tracer()
	var streamFile *os.File
	if *stream != "" {
		f, err := os.Create(*stream)
		if err != nil {
			return err
		}
		streamFile = f
		if err := tr.StreamTo(f); err != nil {
			f.Close()
			return err
		}
	}

	opt := core.DefaultOptions()
	opt.Obs = sc
	opt.TracePotential = *potential
	res := core.Solve(in, opt)

	if streamFile != nil {
		if err := tr.Err(); err != nil {
			streamFile.Close()
			return fmt.Errorf("streaming trace: %w", err)
		}
		if err := streamFile.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "streamed %d events to %s\n", tr.Len(), *stream)
	}
	if tr.Len() == 0 {
		return fmt.Errorf("solver emitted no trace events (%v, seed %d)", p, *seed)
	}

	fmt.Printf("instance %v seed %d: R_avg=%.3f MBps  L_avg=%.4g ms  replicas=%d\n",
		p, *seed, float64(res.AvgRate), res.AvgLatency.Millis(), res.Replicas)
	fmt.Printf("phase1: rounds=%d updates=%d evaluations=%d converged=%v frozen=%d\n",
		res.Phase1.Rounds, res.Phase1.Updates, res.Phase1.Evaluations, res.Phase1.Converged, res.Phase1.Frozen)
	fmt.Printf("phase2: commits=%d gain_evaluations=%d latency_reduction=%.3f s\n",
		res.Replicas, res.GainEvaluations, float64(res.LatencyReduction))
	fmt.Printf("trace: %d events\n\n", tr.Len())

	if streamFile == nil {
		fmt.Println("## Phase 1 convergence timeline")
		fmt.Println()
		fmt.Print(markdownTimeline(tr, "game", "round", phase1Cols, *maxRows))
		fmt.Println()
		fmt.Println("## Phase 2 commit timeline")
		fmt.Println()
		fmt.Print(markdownTimeline(tr, "placement", "commit", phase2Cols, *maxRows))
	} else {
		fmt.Println("(timelines unavailable in streaming mode — the trace was spilled, not retained)")
	}

	if *outDir == "" {
		return nil
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	if streamFile == nil {
		if err := writeWith(filepath.Join(*outDir, "trace.jsonl"), tr.WriteJSONL); err != nil {
			return err
		}
		if err := writeWith(filepath.Join(*outDir, "trace.chrome.json"), tr.WriteChromeTrace); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(*outDir, "phase1_timeline.csv"),
			[]byte(tr.TimelineCSV("game", "round", phase1Cols)), 0o644); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(*outDir, "phase2_timeline.csv"),
			[]byte(tr.TimelineCSV("placement", "commit", phase2Cols)), 0o644); err != nil {
			return err
		}
	}
	if err := writeWith(filepath.Join(*outDir, "metrics.txt"), sc.Registry().WritePrometheus); err != nil {
		return err
	}
	if streamFile == nil {
		fmt.Fprintf(os.Stderr, "wrote trace.jsonl, trace.chrome.json, phase1_timeline.csv, phase2_timeline.csv, metrics.txt to %s\n", *outDir)
	} else {
		fmt.Fprintf(os.Stderr, "wrote metrics.txt to %s (trace streamed separately)\n", *outDir)
	}
	return nil
}

// renderFlight loads a flight JSONL dump (bare ring or triggered dumps),
// prints an exemplar summary, and writes the Chrome-trace waterfall —
// one process per round, one thread track per sampled request, one span
// per attempt.
func renderFlight(path, outDir string, maxRows int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	recs, headers, err := obs.ReadFlightJSONL(f)
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		return fmt.Errorf("flight dump %s holds no records", path)
	}
	for _, h := range headers {
		fmt.Printf("dump %q at round %d (t=%.3gs): %d records\n", h.Dump, h.Round, h.NowS, h.Records)
	}

	var degraded, cloud, deadline, hedged int
	worst := recs[0]
	for _, r := range recs {
		if r.Degraded {
			degraded++
		}
		if r.Served < 0 {
			cloud++
		}
		if r.DeadlineExceeded {
			deadline++
		}
		if r.Hedged {
			hedged++
		}
		if r.LatencyMs > worst.LatencyMs {
			worst = r
		}
	}
	fmt.Printf("flight: %d exemplars — %d degraded, %d cloud-served, %d deadline-exceeded, %d hedged\n",
		len(recs), degraded, cloud, deadline, hedged)
	fmt.Printf("worst exemplar: round %d idx %d u%d/k%d — %.2f ms over %d attempts (intended s%d, served %s)\n\n",
		worst.Round, worst.Index, worst.User, worst.Item, worst.LatencyMs, len(worst.Attempts),
		worst.Intended, serverLabel(worst.Served))

	shown := len(recs)
	if maxRows > 0 && shown > maxRows {
		shown = maxRows
	}
	fmt.Println("| round | idx | user | item | served | lat(ms) | attempts | chain |")
	fmt.Println("|---|---|---|---|---|---|---|---|")
	for _, r := range recs[:shown] {
		chain := ""
		for i, at := range r.Attempts {
			if i > 0 {
				chain += " → "
			}
			chain += fmt.Sprintf("%s %s", at.Kind, serverLabel(at.Server))
			if at.Breaker != "" && at.Breaker != "closed" {
				chain += fmt.Sprintf("[%s]", at.Breaker)
			}
		}
		fmt.Printf("| %d | %d | %d | %d | %s | %.2f | %d | %s |\n",
			r.Round, r.Index, r.User, r.Item, serverLabel(r.Served), r.LatencyMs, len(r.Attempts), chain)
	}
	if shown < len(recs) {
		fmt.Printf("… (%d more)\n", len(recs)-shown)
	}

	if outDir == "" {
		return nil
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	out := filepath.Join(outDir, "flight.chrome.json")
	if err := writeWith(out, func(w io.Writer) error {
		return obs.WriteFlightChromeTrace(recs, w)
	}); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d exemplar waterfalls)\n", out, len(recs))
	return nil
}

func serverLabel(s int) string {
	if s < 0 {
		return "cloud"
	}
	return fmt.Sprintf("s%d", s)
}

func writeWith(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// markdownTimeline renders the instant events matching (cat, name) as a
// markdown table, eliding the middle when there are more than maxRows
// rows (the CSVs carry the full series).
func markdownTimeline(tr *obs.Tracer, cat, name string, cols []string, maxRows int) string {
	var rows [][]string
	for _, ev := range tr.Events() {
		if ev.Ph != obs.PhaseInstant || ev.Cat != cat || ev.Name != name {
			continue
		}
		row := make([]string, len(cols))
		for i, c := range cols {
			if v, ok := ev.Args[c]; ok {
				row[i] = fmt.Sprintf("%.6g", toFloat(v))
			} else {
				row[i] = "—"
			}
		}
		rows = append(rows, row)
	}
	if len(rows) == 0 {
		return "(no events)\n"
	}
	out := "| "
	for i, c := range cols {
		if i > 0 {
			out += " | "
		}
		out += c
	}
	out += " |\n|"
	for range cols {
		out += "---|"
	}
	out += "\n"
	emit := func(r []string) {
		out += "| "
		for i, c := range r {
			if i > 0 {
				out += " | "
			}
			out += c
		}
		out += " |\n"
	}
	if maxRows <= 0 || len(rows) <= maxRows {
		for _, r := range rows {
			emit(r)
		}
		return out
	}
	head := maxRows / 2
	tail := maxRows - head
	for _, r := range rows[:head] {
		emit(r)
	}
	ell := make([]string, len(cols))
	for i := range ell {
		ell[i] = "…"
	}
	emit(ell)
	for _, r := range rows[len(rows)-tail:] {
		emit(r)
	}
	return out
}

func toFloat(v any) float64 {
	switch x := v.(type) {
	case float64:
		return x
	case int:
		return float64(x)
	case int64:
		return float64(x)
	default:
		return 0
	}
}

// Command iddeserve is the resilient serving data plane: it boots an
// IDDE-G strategy as the routing table for a sustained request soak,
// injects chaos-campaign faults while requests are in flight, and
// survives them with per-server circuit breakers, deadline-budgeted
// retries, hedged requests and a supervised background re-planner that
// heals the placement and atomically swaps the routing table.
//
// Usage:
//
//	iddeserve -n 20 -m 150 -rps 500 -duration 60 -outage auto -json
//	iddeserve -cut auto -at 10 -dur 20 -require-recovery -max-streak 6
//	iddeserve -addr 127.0.0.1:8080 -duration 600        # live mode:
//	  curl -X POST 'localhost:8080/inject?kind=link-cut&link=0,1&duration=10'
//	  curl localhost:8080/state ; curl localhost:8080/metrics
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"idde/internal/chaos"
	"idde/internal/core"
	"idde/internal/des"
	"idde/internal/experiment"
	"idde/internal/model"
	"idde/internal/obs"
	"idde/internal/serve"
	"idde/internal/units"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	var (
		n       = flag.Int("n", 20, "edge servers")
		m       = flag.Int("m", 150, "users")
		k       = flag.Int("k", 5, "data items")
		density = flag.Float64("density", 1.0, "links per server")
		seed    = flag.Uint64("seed", 1, "seed for the instance and every request/loss/probe draw")
		shards  = flag.Int("shards", 0, "solve the boot plan with the geo-sharded solver on this many tiles (0 = global solver)")

		rps        = flag.Int("rps", 500, "sustained requests per virtual second")
		duration   = flag.Float64("duration", 60, "soak length in virtual seconds")
		tick       = flag.Float64("tick", 1, "round length in virtual seconds")
		workers    = flag.Int("workers", 0, "parallel request evaluators (0 = GOMAXPROCS)")
		deadlineMs = flag.Float64("deadline-ms", 2000, "per-request latency budget (ms)")
		retries    = flag.Int("retries", 2, "retries per source before failover")
		backoffMs  = flag.Float64("backoff-ms", 2, "base retry backoff (ms), doubled per attempt")
		jitter     = flag.Float64("jitter", 0.5, "uniform backoff jitter fraction in [0,1]")
		hedgeMs    = flag.Float64("hedge-ms", 0, "hedge threshold (ms); 0 disables hedged requests")

		loss    = flag.Float64("loss", 0.05, "per-hop wired transfer loss probability")
		stall   = flag.Float64("stall", 0.02, "per-hop stall probability")
		stallMs = flag.Float64("stall-ms", 50, "injected stall length (ms)")

		outage   = flag.String("outage", "", "server outage targets: comma-separated ids, or 'auto' for the most-fetched-from server")
		cut      = flag.String("cut", "", "link-cut target: 'U,V', or 'auto' for the busiest wired link")
		brownout = flag.Float64("brownout", 0, "cloud-ingress brownout factor in (0,1); 0 disables")
		at       = flag.Float64("at", 5, "fault onset time (virtual seconds)")
		dur      = flag.Float64("dur", 10, "fault duration in virtual seconds (0 = permanent)")

		failThreshold = flag.Int("break-after", 5, "consecutive failures that trip a breaker")
		openTimeout   = flag.Float64("open-timeout", 2, "open breaker timeout before half-open (virtual s)")
		replanFrac    = flag.Float64("replan-frac", 0.05, "degraded request fraction that triggers a re-plan")
		replanMin     = flag.Float64("replan-min", 2, "minimum virtual seconds between threshold re-plans")
		waves         = flag.Int("waves", 2, "repair re-equilibration waves per re-plan")

		sloOn        = flag.Bool("slo", true, "run the burn-rate SLO engine (availability + latency)")
		sloAvail     = flag.Float64("slo-avail", 0.999, "availability SLO target in (0,1)")
		sloLatTarget = flag.Float64("slo-lat-target", 0.99, "latency SLO target in (0,1)")
		sloLatMs     = flag.Float64("slo-lat-ms", 0, "latency SLO threshold (ms); 0 = deadline/8")
		flightRate   = flag.Float64("flight-rate", 0.05, "flight-recorder sampling rate in [0,1]; 0 disables")
		flightCap    = flag.Int("flight-cap", 256, "flight-recorder exemplar ring capacity")
		flightDump   = flag.String("flightdump", "", "write triggered flight dumps (SLO burns, breaker spikes, recovery-gate failures) to this JSONL file")

		jsonOut         = flag.Bool("json", false, "emit the full soak report as JSON on stdout")
		requireRecovery = flag.Bool("require-recovery", false, "exit non-zero unless breakers opened, the plan healed within -max-streak rounds, and nothing was dropped")
		maxStreak       = flag.Int("max-streak", 6, "heal budget for -require-recovery, in rounds")
		addr            = flag.String("addr", "", "live mode: serve /state, /inject, /metrics, /debug/pprof on this address and pace rounds to the wall clock")
	)
	flag.Parse()

	in, err := experiment.BuildInstance(experiment.Params{N: *n, M: *m, K: *k, Density: *density}, *seed)
	if err != nil {
		return fatal(err)
	}
	sopt := core.DefaultOptions()
	sopt.Shards = *shards
	sres := core.Solve(in, sopt)
	st := sres.Strategy
	rate, lat := in.Evaluate(st)

	faults := des.Faults{
		LossProb:   *loss,
		StallProb:  *stall,
		StallTime:  units.Seconds(*stallMs / 1e3),
		MaxRetries: *retries,
		Backoff:    units.Seconds(*backoffMs / 1e3),
	}
	camp, desc, err := buildCampaign(in, st, *outage, *cut, *brownout, *at, *dur, faults)
	if err != nil {
		return fatal(err)
	}

	opt := serve.Options{
		Seed:               *seed,
		Workers:            *workers,
		RPS:                *rps,
		Tick:               units.Seconds(*tick),
		Duration:           units.Seconds(*duration),
		Deadline:           units.Seconds(*deadlineMs / 1e3),
		MaxRetries:         *retries,
		Backoff:            units.Seconds(*backoffMs / 1e3),
		Jitter:             *jitter,
		Hedge:              units.Seconds(*hedgeMs / 1e3),
		Breaker:            serve.BreakerConfig{FailureThreshold: *failThreshold, OpenTimeout: units.Seconds(*openTimeout)},
		ReplanDegradedFrac: *replanFrac,
		ReplanMinInterval:  units.Seconds(*replanMin),
		Waves:              *waves,
		Faults:             faults,
		Campaign:           camp,
		FlightRate:         *flightRate,
		FlightCap:          *flightCap,
	}
	if *sloOn {
		opt.SLO = serve.SLOOptions{
			Enabled:            true,
			AvailabilityTarget: *sloAvail,
			LatencyTarget:      *sloLatTarget,
			LatencyThreshold:   units.Seconds(*sloLatMs / 1e3),
		}
	}
	var dumpFile *os.File
	if *flightDump != "" {
		f, ferr := os.Create(*flightDump)
		if ferr != nil {
			return fatal(ferr)
		}
		defer f.Close()
		dumpFile = f
		opt.FlightSink = f
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *addr != "" {
		opt.Pace = true
		opt.AsyncReplan = true
		opt.Obs = obs.Metrics()
	}

	eng, err := serve.NewEngine(in, st, opt)
	if err != nil {
		return fatal(err)
	}

	if *addr != "" {
		go func() {
			if err := eng.Serve(*addr); err != nil {
				fmt.Fprintf(os.Stderr, "iddeserve: http: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "serving on http://%s (/state, /inject, /metrics, /debug/pprof/)\n", *addr)
	}

	if !*jsonOut {
		plan := "IDDE-G"
		if sres.Shard != nil {
			plan = fmt.Sprintf("IDDE-G sharded (%d tiles, %d halo users)", sres.Shard.Tiles, sres.Shard.HaloUsers)
		}
		fmt.Printf("booting n=%d m=%d k=%d seed=%d — %s healthy: %.2f MBps, %.3f ms; %s\n",
			*n, *m, *k, *seed, plan, float64(rate), lat.Millis(), desc)
	}

	rep, err := eng.RunSoak(ctx)
	if err != nil && rep == nil {
		return fatal(err)
	}
	if err != nil && !*jsonOut {
		fmt.Fprintf(os.Stderr, "iddeserve: soak interrupted: %v (partial report follows)\n", err)
	}

	if *jsonOut {
		b, jerr := rep.JSON()
		if jerr != nil {
			return fatal(jerr)
		}
		os.Stdout.Write(b)
	} else {
		printSummary(rep)
	}

	if *requireRecovery {
		if msg := checkRecovery(rep, *maxStreak); msg != "" {
			fmt.Fprintf(os.Stderr, "iddeserve: recovery gate FAILED: %s\n", msg)
			if dumpFile != nil {
				// Dump the exemplar ring so the failure ships its own
				// request-level evidence.
				if derr := eng.DumpFlight(dumpFile, "recovery-gate"); derr != nil {
					fmt.Fprintf(os.Stderr, "iddeserve: flight dump: %v\n", derr)
				} else {
					fmt.Fprintf(os.Stderr, "iddeserve: flight recorder dumped to %s\n", *flightDump)
				}
			}
			return 1
		}
		fmt.Fprintln(os.Stderr, "iddeserve: recovery gate passed")
	}
	return 0
}

// buildCampaign assembles the fault timeline from the CLI flags.
func buildCampaign(in *model.Instance, st model.Strategy, outage, cut string, brownout, at, dur float64, faults des.Faults) (*chaos.Campaign, string, error) {
	camp := &chaos.Campaign{Name: "cli", Faults: faults}
	var parts []string
	if outage != "" {
		var servers []int
		if outage == "auto" {
			servers = []int{serve.PopularSource(in, st)}
		} else {
			for _, p := range strings.Split(outage, ",") {
				s, err := strconv.Atoi(strings.TrimSpace(p))
				if err != nil {
					return nil, "", fmt.Errorf("iddeserve: bad -outage %q", outage)
				}
				servers = append(servers, s)
			}
		}
		camp.Events = append(camp.Events, chaos.Event{
			At: units.Seconds(at), Duration: units.Seconds(dur),
			Kind: chaos.ServerOutage, Servers: servers,
		})
		parts = append(parts, fmt.Sprintf("outage %v @%gs+%gs", servers, at, dur))
	}
	if cut != "" {
		var link [2]int
		if cut == "auto" {
			link = serve.PopularLink(in, st)
			if link[0] < 0 {
				return nil, "", fmt.Errorf("iddeserve: -cut auto found no wired link in use")
			}
		} else {
			p := strings.Split(cut, ",")
			if len(p) != 2 {
				return nil, "", fmt.Errorf("iddeserve: -cut wants 'U,V' or 'auto'")
			}
			u, err1 := strconv.Atoi(strings.TrimSpace(p[0]))
			v, err2 := strconv.Atoi(strings.TrimSpace(p[1]))
			if err1 != nil || err2 != nil {
				return nil, "", fmt.Errorf("iddeserve: bad -cut %q", cut)
			}
			link = [2]int{u, v}
		}
		camp.Events = append(camp.Events, chaos.Event{
			At: units.Seconds(at), Duration: units.Seconds(dur),
			Kind: chaos.LinkCut, Link: link,
		})
		parts = append(parts, fmt.Sprintf("link-cut %v @%gs+%gs", link, at, dur))
	}
	if brownout > 0 {
		camp.Events = append(camp.Events, chaos.Event{
			At: units.Seconds(at), Duration: units.Seconds(dur),
			Kind: chaos.CloudBrownout, Factor: brownout,
		})
		parts = append(parts, fmt.Sprintf("brownout %g @%gs+%gs", brownout, at, dur))
	}
	if len(camp.Events) == 0 {
		return nil, "no faults scheduled", nil
	}
	if err := camp.Validate(in); err != nil {
		return nil, "", err
	}
	return camp, strings.Join(parts, ", "), nil
}

// checkRecovery evaluates the CI recovery gate; empty string = pass.
func checkRecovery(rep *serve.SoakReport, maxStreak int) string {
	var fails []string
	if rep.Dropped != 0 {
		fails = append(fails, fmt.Sprintf("%d requests dropped", rep.Dropped))
	}
	if rep.BreakerOpens == 0 {
		fails = append(fails, "no breaker ever opened")
	}
	if rep.Replans == 0 {
		fails = append(fails, "re-planner never ran")
	}
	if rep.MaxDegradedStreak > maxStreak {
		fails = append(fails, fmt.Sprintf("degraded streak %d rounds > budget %d", rep.MaxDegradedStreak, maxStreak))
	}
	if !rep.HealedAtEnd {
		fails = append(fails, "soak ended unhealed")
	}
	if rep.ReplanPanics != 0 {
		fails = append(fails, fmt.Sprintf("%d re-planner panics", rep.ReplanPanics))
	}
	return strings.Join(fails, "; ")
}

func printSummary(rep *serve.SoakReport) {
	fmt.Printf("\nsoak: %d rounds x %d req (%d issued, %d dropped) — %.0f virtual RPS, %.0f wall RPS\n",
		rep.Rounds, rep.PerRound, rep.Issued, rep.Dropped, rep.VirtualRPS, rep.WallRPS)
	fmt.Printf("resilience: %d retries, %d failovers, %d cloud fallbacks, %d hedged, %d degraded (%.1f MB backhaul, %.2fs latency delta)\n",
		rep.Retries, rep.Failovers, rep.CloudFallbacks, rep.Hedged, rep.Degraded, rep.BackhaulMB, rep.LatencyDeltaS)
	fmt.Printf("control: %d re-plans (%d errors, %d panics), final epoch %d, %d breaker opens, heal streak %d rounds, healed=%v\n",
		rep.Replans, rep.ReplanErrors, rep.ReplanPanics, rep.FinalEpoch,
		rep.BreakerOpens, rep.MaxDegradedStreak, rep.HealedAtEnd)
	fmt.Printf("\n%-10s %7s %9s %8s %8s %8s %8s %8s\n",
		"phase", "rounds", "requests", "p50(ms)", "p90(ms)", "p99(ms)", "p999(ms)", "max(ms)")
	for _, ps := range rep.Phases {
		fmt.Printf("%-10s %7d %9d %8.2f %8.2f %8.2f %8.2f %8.2f\n",
			ps.Phase, ps.Rounds, ps.Requests, ps.P50Ms, ps.P90Ms, ps.P99Ms, ps.P999Ms, ps.MaxMs)
	}
	for _, s := range rep.SLOs {
		line := fmt.Sprintf("slo %-12s target %.3f compliance %.5f — max burn fast %.1f / slow %.1f, %d breaches",
			s.Name, s.Target, s.Compliance, s.MaxFastBurn, s.MaxSlowBurn, s.Breaches)
		if s.ThresholdMs > 0 {
			line += fmt.Sprintf(" (<=%.0fms; est p50 %.1f / p99 %.1f / p999 %.1f ms)",
				s.ThresholdMs, s.EstP50Ms, s.EstP99Ms, s.EstP999Ms)
		}
		fmt.Println(line)
	}
	if rep.FlightSampled > 0 || rep.FlightDumps > 0 {
		fmt.Printf("flight: %d exemplars sampled, %d evicted, %d triggered dumps\n",
			rep.FlightSampled, rep.FlightEvicted, rep.FlightDumps)
	}
	fmt.Printf("\noutcome hash %s (seed-stable with hedging off)\n", rep.OutcomeHash)
}

func fatal(err error) int {
	fmt.Fprintf(os.Stderr, "iddeserve: %v\n", err)
	return 1
}

// Command iddegen generates a synthetic EUA-like scenario and writes
// the topology and workload as JSON, so experiments can be pinned to a
// fixed layout or hand-edited.
//
// Usage:
//
//	iddegen -n 30 -m 200 -k 5 -topology top.json -workload wl.json
package main

import (
	"flag"
	"fmt"
	"os"

	"idde/internal/rng"
	"idde/internal/topology"
	"idde/internal/workload"
)

func main() {
	var (
		n       = flag.Int("n", 30, "edge servers (N)")
		m       = flag.Int("m", 200, "users (M)")
		k       = flag.Int("k", 5, "data items (K)")
		density = flag.Float64("density", 1.0, "links per server")
		seed    = flag.Uint64("seed", 1, "generator seed")
		topOut  = flag.String("topology", "topology.json", "topology output path (- for stdout)")
		wlOut   = flag.String("workload", "workload.json", "workload output path (- for stdout)")
	)
	flag.Parse()

	s := rng.New(*seed)
	top, err := topology.Generate(topology.DefaultGen(*n, *m, *density), s.Split("topology"))
	if err != nil {
		fatal(err)
	}
	wl, err := workload.Generate(workload.DefaultGen(*k), *n, *m, s.Split("workload"))
	if err != nil {
		fatal(err)
	}
	if err := writeTo(*topOut, func(f *os.File) error { return top.Save(f) }); err != nil {
		fatal(err)
	}
	if err := writeTo(*wlOut, func(f *os.File) error { return wl.Save(f) }); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (N=%d, %d links) and %s (K=%d, %d requests)\n",
		*topOut, top.N(), top.Net.M(), *wlOut, wl.K(), wl.TotalRequests())
}

func writeTo(path string, save func(*os.File) error) error {
	if path == "-" {
		return save(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return save(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "iddegen:", err)
	os.Exit(1)
}

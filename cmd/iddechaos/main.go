// Command iddechaos runs seeded chaos campaigns against an IDDE-G
// strategy: correlated multi-server outages, wired-link cuts and
// cloud-ingress brownouts, replayed through incremental repair and
// measured on the discrete-event simulator with lossy transfers,
// retries and failover active.
//
// Usage:
//
//	iddechaos -n 20 -m 150 -campaigns 20 -cluster 3 -loss 0.2
//	iddechaos -campaigns 1 -outage 120 -cuts 2 -brownout 0.5 -v
//	iddechaos -json > sweep.json
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"idde/internal/chaos"
	"idde/internal/core"
	"idde/internal/des"
	"idde/internal/experiment"
	"idde/internal/obs"
	"idde/internal/rng"
	"idde/internal/units"
	"idde/internal/viz"
)

func main() {
	var (
		n         = flag.Int("n", 20, "edge servers")
		m         = flag.Int("m", 150, "users")
		k         = flag.Int("k", 5, "data items")
		density   = flag.Float64("density", 1.0, "links per server")
		seed      = flag.Uint64("seed", 1, "seed for the instance, every campaign draw and every fault")
		campaigns = flag.Int("campaigns", 20, "Monte-Carlo campaigns to draw and replay")
		cluster   = flag.Int("cluster", 3, "correlated servers down per campaign")
		outage    = flag.Float64("outage", 120, "outage duration in seconds (0 = permanent)")
		cuts      = flag.Int("cuts", 1, "wired links cut per campaign")
		brownout  = flag.Float64("brownout", 0, "cloud-ingress brownout factor in (0,1); 0 disables")
		brownDur  = flag.Float64("brownout-dur", 0, "brownout duration in seconds (0 = permanent)")
		loss      = flag.Float64("loss", 0.2, "per-hop wired transfer loss probability")
		stall     = flag.Float64("stall", 0.05, "per-hop stall probability")
		stallMs   = flag.Float64("stall-ms", 20, "injected stall length (ms)")
		retries   = flag.Int("retries", 3, "retransmissions per hop before failover")
		backoffMs = flag.Float64("backoff-ms", 2, "base retry backoff (ms), doubled per attempt")
		spread    = flag.Float64("spread", 5, "request arrival window per epoch (s)")
		jsonOut   = flag.Bool("json", false, "emit the full sweep report as JSON on stdout")
		verbose   = flag.Bool("v", false, "print every campaign's per-epoch table")
		obsAddr   = flag.String("obs", "", "serve live pprof/expvar//metrics on this address for the duration of the sweep (e.g. 127.0.0.1:6060)")
	)
	flag.Parse()

	var scope *obs.Scope
	if *obsAddr != "" {
		scope = obs.Metrics()
		srv, err := obs.Serve(*obsAddr, scope)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "live telemetry on http://%s (/metrics, /debug/vars, /debug/pprof/)\n", srv.Addr())
	}

	if *brownout < 0 || *brownout >= 1 {
		if *brownout != 0 {
			fatal(fmt.Errorf("-brownout must be in (0,1), got %g (0 disables)", *brownout))
		}
	}
	if *loss < 0 || *loss >= 1 || *stall < 0 || *stall > 1 {
		fatal(fmt.Errorf("-loss must be in [0,1) and -stall in [0,1]"))
	}

	in, err := experiment.BuildInstance(experiment.Params{N: *n, M: *m, K: *k, Density: *density}, *seed)
	if err != nil {
		fatal(err)
	}
	st := core.Solve(in, core.DefaultOptions()).Strategy
	rate, lat := in.Evaluate(st)
	if !*jsonOut {
		fmt.Printf("instance n=%d m=%d k=%d seed=%d — IDDE-G healthy: %.2f MBps, %.3f ms\n\n",
			*n, *m, *k, *seed, float64(rate), lat.Millis())
	}

	gc := chaos.GenConfig{
		ClusterSize:      *cluster,
		OutageDuration:   units.Seconds(*outage),
		LinkCuts:         *cuts,
		BrownoutFactor:   *brownout,
		BrownoutDuration: units.Seconds(*brownDur),
		Faults: des.Faults{
			LossProb:   *loss,
			StallProb:  *stall,
			StallTime:  units.Seconds(*stallMs / 1e3),
			MaxRetries: *retries,
			Backoff:    units.Seconds(*backoffMs / 1e3),
		},
	}
	gen := func(i int, s *rng.Stream) chaos.Campaign {
		return chaos.Correlated(in, gc, s)
	}
	// Ctrl-C truncates the sweep to the campaigns already replayed
	// instead of discarding the run.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	sw, err := chaos.MonteCarloCtx(ctx, in, st, gen, chaos.SweepConfig{
		Config:    chaos.Config{Seed: *seed, Spread: units.Seconds(*spread), Obs: scope},
		Campaigns: *campaigns,
	})
	if err != nil {
		if !errors.Is(err, context.Canceled) || sw == nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "iddechaos: interrupted — reporting the %d campaigns that completed\n", sw.Campaigns)
	}

	if *jsonOut {
		out, err := sw.JSON()
		if err != nil {
			fatal(err)
		}
		fmt.Println(out)
		return
	}
	if *verbose {
		for _, cr := range sw.Reports {
			fmt.Println(cr.MarkdownTable())
		}
	}
	fmt.Print(sw.MarkdownSummary())
	var stranded, infl []float64
	for _, cr := range sw.Reports {
		stranded = append(stranded, cr.WorstStrandedFrac)
		infl = append(infl, cr.WorstLatencyInflation)
	}
	fmt.Printf("\nstranded by campaign   %s\n", viz.Sparkline(stranded))
	fmt.Printf("inflation by campaign  %s\n", viz.Sparkline(infl))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "iddechaos:", err)
	os.Exit(1)
}

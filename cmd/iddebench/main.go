// Command iddebench regenerates the paper's evaluation: Table 2 and
// Figures 1 and 3–7. Each figure's data is printed as a markdown table
// and optionally written as CSV series for plotting.
//
// Usage:
//
//	iddebench -list                 # print Table 2
//	iddebench -fig 3                # regenerate Figure 3 (Set #1)
//	iddebench -fig 0 -reps 50       # everything, at the paper's budget
//	iddebench -fig 4 -out results/  # also write CSV files
//
// The IDDE-IP baseline's solver budget defaults to 500ms per instance
// (the paper caps CPLEX at 100 s; see DESIGN.md §4); raise it with
// -ip-budget for higher-fidelity IP results, or drop IP entirely with
// -no-ip for quick sweeps.
//
// Performance tracking:
//
//	iddebench -perfjson BENCH_phase1.json            # regenerate the Phase 1 perf baseline
//	iddebench -perf2json BENCH_phase2.json           # regenerate the Phase 2 perf baseline
//	iddebench -memjson BENCH_mem.json                # regenerate the memory/allocation baseline
//	iddebench -servejson BENCH_serve.json            # regenerate the serving-soak baseline
//	iddebench -shardjson BENCH_shard.json            # regenerate the geo-sharded solver baseline
//	iddebench -perfjson out.json -perftime 250ms     # quick CI smoke variant
//	iddebench -fig 4 -cpuprofile cpu.pb.gz           # pprof any run
//	iddebench -fig 0 -reps 50 -obs 127.0.0.1:6060    # live pprof/expvar//metrics while it runs
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"idde/internal/baseline"
	"idde/internal/cloudlat"
	"idde/internal/experiment"
	"idde/internal/obs"
	"idde/internal/perfbench"
	"idde/internal/rng"
	"idde/internal/serve"
	"idde/internal/units"
	"idde/internal/viz"
)

func main() {
	if err := realMain(); err != nil {
		fmt.Fprintln(os.Stderr, "iddebench:", err)
		os.Exit(1)
	}
}

// realMain isolates the error path from os.Exit so the profiling defers
// always flush, even when a run fails.
func realMain() error {
	var (
		fig       = flag.Int("fig", 0, "figure to regenerate: 1, 3, 4, 5, 6 or 7 (0 = all)")
		reps      = flag.Int("reps", 10, "randomized repetitions per x value (paper: 50)")
		seed      = flag.Uint64("seed", 2022, "master seed")
		ipBudget  = flag.Duration("ip-budget", 500*time.Millisecond, "IDDE-IP solver budget per instance")
		noIP      = flag.Bool("no-ip", false, "skip the IDDE-IP baseline")
		outDir    = flag.String("out", "", "directory for CSV output (optional)")
		list      = flag.Bool("list", false, "print Table 2 and exit")
		plot      = flag.Bool("plot", false, "also render terminal plots of each figure")
		perfJSON  = flag.String("perfjson", "", "write the Phase 1 perf baseline to this file and exit (skips the figures)")
		perf2JSON = flag.String("perf2json", "", "write the Phase 2 perf baseline to this file and exit (skips the figures)")
		perfTime  = flag.Duration("perftime", 2*time.Second, "per-case time budget for -perfjson/-perf2json/-memjson")
		perfMaxM  = flag.Int("perfmaxm", 0, "skip perf scales with more than this many users (0 = full ladder; CI smoke uses a low cap)")
		memJSON   = flag.String("memjson", "", "write the memory/allocation baseline to this file and exit (skips the figures; nonzero exit on hot-path alloc regressions)")
		serveJSON = flag.String("servejson", "", "write the serving-soak baseline (sustained RPS + healthy/faulted/recovered tail latency under a chaos outage) to this file and exit")
		serveRPS  = flag.Int("serverps", 500, "sustained virtual RPS for -servejson")
		serveDur  = flag.Float64("servedur", 30, "soak duration in virtual seconds for -servejson")
		serveMaxM = flag.Int("servemaxm", 0, "skip serve-soak scales with more than this many users (0 = full ladder; CI smoke uses a low cap)")
		shardJSON = flag.String("shardjson", "", "write the geo-sharded solver baseline (tile ladder vs global, single-tile identity, hot-path allocs) to this file and exit (nonzero exit on divergence or alloc regressions)")
		shardMaxM = flag.Int("shardmaxm", 0, "skip sharding scales with more than this many users (0 = full ladder; CI smoke uses a low cap)")
		memMaxN   = flag.Int("memmaxn", 0, "skip aggregate-row memory scales with more than this many servers (0 = full ladder)")
		memMaxM   = flag.Int("memmaxm", 0, "skip solve-allocation memory scales with more than this many users (0 = full ladder)")
		instMaxM  = flag.Int("instmaxm", 0, "skip instance-layout memory scales with more than this many users (0 = full ladder; CI smoke caps out the M=100000 rung)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
		obsAddr   = flag.String("obs", "", "serve live pprof/expvar//metrics on this address for the duration of the run (e.g. 127.0.0.1:6060)")
	)
	flag.Parse()

	var scope *obs.Scope
	if *obsAddr != "" {
		scope = obs.Metrics()
		srv, err := obs.Serve(*obsAddr, scope)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "live telemetry on http://%s (/metrics, /debug/vars, /debug/pprof/)\n", srv.Addr())
	}

	if *list {
		fmt.Println(experiment.Table2Markdown())
		return nil
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	var err error
	if *perfJSON != "" {
		err = runPerf(*perfJSON, *perfTime, *seed, *perfMaxM)
	} else if *perf2JSON != "" {
		err = runPerf2(*perf2JSON, *perfTime, *seed, *perfMaxM)
	} else if *memJSON != "" {
		err = runMem(*memJSON, *perfTime, *seed, *memMaxN, *memMaxM, *instMaxM)
	} else if *serveJSON != "" {
		err = runServe(*serveJSON, *seed, *serveRPS, *serveDur, *serveMaxM)
	} else if *shardJSON != "" {
		err = runShard(*shardJSON, *seed, *shardMaxM)
	} else {
		err = run(*fig, *reps, *seed, *ipBudget, *noIP, *outDir, *plot, scope)
	}
	if err == nil && *memProf != "" {
		err = writeHeapProfile(*memProf)
	}
	return err
}

// writeHeapProfile snapshots the heap after a forced GC so the profile
// reflects retained memory, not transient garbage.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.Lookup("heap").WriteTo(f, 0)
}

// runPerf regenerates the tracked Phase 1 performance baseline.
func runPerf(path string, budget time.Duration, seed uint64, maxM int) error {
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	scales := perfbench.Scales()
	if maxM > 0 {
		var kept []experiment.Params
		for _, p := range scales {
			if p.M <= maxM {
				kept = append(kept, p)
			}
		}
		scales = kept
	}
	rep, err := perfbench.RunScales(scales, budget, seed, logf)
	if err != nil {
		return err
	}
	b, err := rep.JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return err
	}
	for _, m := range []int{100, 500, 2000} {
		if s, ok := rep.Speedups[fmt.Sprintf("SolvePhase1/M=%d", m)]; ok {
			fmt.Printf("SolvePhase1 speedup at M=%d: %.1fx\n", m, s)
		}
	}
	fmt.Printf("wrote %s (%d records)\n", path, len(rep.Records))
	return nil
}

// runPerf2 regenerates the tracked Phase 2 performance baseline.
func runPerf2(path string, budget time.Duration, seed uint64, maxM int) error {
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	scales := perfbench.Phase2Scales()
	if maxM > 0 {
		var kept []experiment.Params
		for _, p := range scales {
			if p.M <= maxM {
				kept = append(kept, p)
			}
		}
		scales = kept
	}
	rep, err := perfbench.RunPhase2Scales(scales, budget, seed, logf)
	if err != nil {
		return err
	}
	b, err := rep.JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return err
	}
	for _, p := range scales {
		if s, ok := rep.Speedups[fmt.Sprintf("SolveDelivery/M=%d", p.M)]; ok {
			fmt.Printf("SolveDelivery speedup at M=%d: %.1fx\n", p.M, s)
		}
	}
	fmt.Printf("wrote %s (%d records)\n", path, len(rep.Records))
	return nil
}

// runServe regenerates the tracked serving-soak baseline: the chaos
// acceptance scenario at sustained RPS across the serve scale ladder.
func runServe(path string, seed uint64, rps int, dur float64, maxM int) error {
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	rep, err := perfbench.RunServe(context.Background(), perfbench.ServeConfig{
		Seed:     seed,
		RPS:      rps,
		Duration: units.Seconds(dur),
		MaxM:     maxM,
	}, logf)
	if err != nil {
		return err
	}
	b, err := rep.JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return err
	}
	for _, c := range rep.Cases {
		if f := c.Soak.Phase(serve.PhaseFaulted); f != nil {
			h := c.Soak.Phase(serve.PhaseHealthy)
			fmt.Printf("serve n=%d m=%d: healthy p99 %.2fms, faulted p99 %.2fms, heal %d rounds\n",
				c.Params.N, c.Params.M, h.P99Ms, f.P99Ms, c.Soak.MaxDegradedStreak)
		}
	}
	fmt.Printf("wrote %s (%d cases)\n", path, len(rep.Cases))
	return nil
}

// runShard regenerates the tracked geo-sharded solver baseline. A
// Shards=1 solve that diverges from the global solver, or a tile-view
// hot path that allocates in steady state, is an error (nonzero exit),
// so the CI bench-smoke fails on regressions.
func runShard(path string, seed uint64, maxM int) error {
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	rep, err := perfbench.RunShard(seed, maxM, logf)
	if err != nil {
		return err
	}
	b, err := rep.JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return err
	}
	for _, p := range perfbench.ShardScales() {
		for _, t := range []int{8, 16} {
			if s, ok := rep.Speedups[fmt.Sprintf("ShardSolve/M=%d/tiles=%d", p.M, t)]; ok {
				fmt.Printf("sharded solve speedup at M=%d, %d tiles: %.1fx\n", p.M, t, s)
			}
		}
	}
	fmt.Printf("wrote %s (%d records)\n", path, len(rep.Records))
	return rep.ShardRegression()
}

// runMem regenerates the tracked memory/allocation baseline. A guarded
// hot path that allocates in steady state, a sparse solve diverging
// from the dense reference, or an instance-layout footprint regression
// is an error (nonzero exit), so the CI bench-smoke fails on all three.
func runMem(path string, budget time.Duration, seed uint64, maxN, maxM, instMaxM int) error {
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	rep, err := perfbench.RunMem(budget, seed, maxN, maxM, instMaxM, logf)
	if err != nil {
		return err
	}
	b, err := rep.JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return err
	}
	for _, n := range perfbench.MemScaleNs() {
		if r, ok := rep.Reductions[fmt.Sprintf("AggResidentBytes/N=%d", n)]; ok {
			fmt.Printf("aggregate-row resident bytes at N=%d: %.1fx smaller under budget\n", n, r)
		}
	}
	for _, key := range []string{"SolveDeliveryAllocs/M=4000", "SolveDeliveryAllocs/M=4000/batch"} {
		if r, ok := rep.Reductions[key]; ok {
			fmt.Printf("%s: %.1fx fewer allocs than previous baseline\n", key, r)
		}
	}
	for _, p := range perfbench.InstanceScales() {
		if r, ok := rep.Reductions[fmt.Sprintf("InstanceBytes/M=%d", p.M)]; ok {
			fmt.Printf("instance gain storage at M=%d: %.1fx smaller than the dense-era matrices\n", p.M, r)
		}
	}
	fmt.Printf("wrote %s (%d records)\n", path, len(rep.Records))
	return errors.Join(rep.HotPathRegression(), rep.InstanceRegression())
}

func run(fig, reps int, seed uint64, ipBudget time.Duration, noIP bool, outDir string, plot bool, scope *obs.Scope) error {
	cfg := experiment.Config{Reps: reps, Seed: seed, Obs: scope}
	if noIP {
		cfg.Approaches = baseline.Heuristics()
	} else {
		ip := baseline.NewIDDEIP()
		ip.Budget = ipBudget
		cfg.Approaches = []baseline.Approach{
			ip, baseline.NewIDDEG(), baseline.NewSAA(), baseline.NewCDP(), baseline.NewDUPG(),
		}
	}
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
	}

	wantSet := map[int]int{3: 1, 4: 2, 5: 3, 6: 4} // figure → set
	var timing []*experiment.SetResult

	if fig == 0 || fig == 1 {
		series := cloudlat.Collect(cloudlat.DefaultTargets(), rng.New(seed))
		fmt.Println(experiment.Fig1Markdown(series))
		if plot {
			labels := make([]string, len(series))
			means := make([]float64, len(series))
			for i, s := range series {
				labels[i] = s.Target.Name
				means[i] = s.Mean.Millis()
			}
			fmt.Println(viz.BarChart("Figure 1: mean end-to-end latency (ms)", labels, means, 40))
		}
		if outDir != "" {
			if err := writeFile(filepath.Join(outDir, "fig1.csv"), fig1CSV(series)); err != nil {
				return err
			}
		}
	}
	for f := 3; f <= 6; f++ {
		if fig != 0 && fig != f && fig != 7 {
			continue
		}
		set, err := experiment.SetByID(wantSet[f])
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "running Set #%d (%d reps × %d x-values × %d approaches)...\n",
			set.ID, cfg.Reps, len(set.Values), len(cfg.Approaches))
		sr, err := experiment.RunSet(set, cfg)
		if err != nil {
			return err
		}
		timing = append(timing, sr)
		if fig == 0 || fig == f {
			fmt.Printf("Figure %d(a): %s\n", f, sr.MarkdownTable(experiment.RateMetric))
			fmt.Printf("Figure %d(b): %s\n", f, sr.MarkdownTable(experiment.LatencyMetric))
			if plot {
				for _, m := range []experiment.Metric{experiment.RateMetric, experiment.LatencyMetric} {
					xs, labels, ys := sr.SeriesFor(m)
					series := make([]viz.Series, len(labels))
					for li := range labels {
						series[li] = viz.Series{Label: labels[li], Y: ys[li]}
					}
					fmt.Println(viz.LinePlot(
						fmt.Sprintf("Figure %d: %s", f, m), sr.Set.Vary, xs, series, 60, 14))
				}
			}
			if outDir != "" {
				base := fmt.Sprintf("fig%d", f)
				if err := writeFile(filepath.Join(outDir, base+"a_rate.csv"), sr.CSV(experiment.RateMetric)); err != nil {
					return err
				}
				if err := writeFile(filepath.Join(outDir, base+"b_latency.csv"), sr.CSV(experiment.LatencyMetric)); err != nil {
					return err
				}
			}
		}
	}
	if fig == 0 || fig == 7 {
		fmt.Println(experiment.TimingMarkdown(timing))
		if outDir != "" && len(timing) > 0 {
			var csv string
			for _, sr := range timing {
				csv += fmt.Sprintf("# Set %d\n%s", sr.Set.ID, sr.CSV(experiment.TimeMetric))
			}
			if err := writeFile(filepath.Join(outDir, "fig7_time.csv"), csv); err != nil {
				return err
			}
		}
	}
	return nil
}

func fig1CSV(series []cloudlat.Series) string {
	out := "setting,kind,mean_ms,min_ms,max_ms\n"
	for _, s := range series {
		out += fmt.Sprintf("%s,%s,%.3f,%.3f,%.3f\n",
			s.Target.Name, s.Target.Kind, s.Mean.Millis(), s.Min.Millis(), s.Max.Millis())
	}
	return out
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

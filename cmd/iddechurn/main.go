// Command iddechurn exercises the online extension: it generates (or
// loads) a churn trace — users joining and leaving an edge storage
// system over time — and replays it through the incremental strategy
// maintainer, reporting objective trajectories and per-event work.
//
// Usage:
//
//	iddechurn -n 20 -m 150 -horizon 3600 -arrivals 0.05 -dwell 600
//	iddechurn -gen-only -trace churn.json
//	iddechurn -trace churn.json -replay
package main

import (
	"flag"
	"fmt"
	"os"

	"idde/internal/experiment"
	"idde/internal/online"
	"idde/internal/rng"
	"idde/internal/units"
	"idde/internal/viz"
)

func main() {
	var (
		n        = flag.Int("n", 20, "edge servers")
		m        = flag.Int("m", 150, "user universe size")
		k        = flag.Int("k", 5, "data items")
		density  = flag.Float64("density", 1.0, "links per server")
		seed     = flag.Uint64("seed", 1, "seed")
		horizon  = flag.Float64("horizon", 3600, "trace horizon (s)")
		arrivals = flag.Float64("arrivals", 0.05, "mean joins per second")
		dwell    = flag.Float64("dwell", 600, "mean dwell time (s)")
		tracePth = flag.String("trace", "", "trace file to write (with -gen-only) or read (with -replay)")
		genOnly  = flag.Bool("gen-only", false, "generate the trace and exit")
		replay   = flag.Bool("replay", false, "read the trace from -trace instead of generating")
		every    = flag.Int("sample", 25, "sample objectives every this many events")
	)
	flag.Parse()

	in, err := experiment.BuildInstance(experiment.Params{N: *n, M: *m, K: *k, Density: *density}, *seed)
	if err != nil {
		fatal(err)
	}

	var tr *online.Trace
	if *replay {
		if *tracePth == "" {
			fatal(fmt.Errorf("-replay requires -trace"))
		}
		f, err := os.Open(*tracePth)
		if err != nil {
			fatal(err)
		}
		tr, err = online.LoadTrace(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		tr, err = online.GenTrace(*m, online.GenTraceConfig{
			Horizon:            units.Seconds(*horizon),
			MeanArrivalsPerSec: *arrivals,
			MeanDwellSec:       *dwell,
		}, rng.New(*seed).Split("trace"))
		if err != nil {
			fatal(err)
		}
		if *tracePth != "" {
			f, err := os.Create(*tracePth)
			if err != nil {
				fatal(err)
			}
			if err := tr.Save(f); err != nil {
				f.Close()
				fatal(err)
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "trace with %d events written to %s\n", len(tr.Events), *tracePth)
		}
	}
	if *genOnly {
		return
	}

	samples, sys, err := online.Replay(in, tr, online.DefaultOptions(), *every)
	if err != nil {
		fatal(err)
	}
	st := sys.Stats()
	fmt.Printf("replayed %d events (%d joins, %d leaves): %d allocation moves, %d on-demand placements\n",
		len(tr.Events), st.Joins, st.Leaves, st.Moves, st.Placements)
	fmt.Printf("%-10s %8s %12s %12s\n", "t (s)", "active", "rate (MBps)", "lat (ms)")
	var rates, lats []float64
	for _, s := range samples {
		fmt.Printf("%-10.0f %8d %12.2f %12.3f\n", float64(s.At), s.Active, s.RateMBps, s.LatencyMs)
		rates = append(rates, s.RateMBps)
		lats = append(lats, s.LatencyMs)
	}
	fmt.Printf("\nrate over time     %s\n", viz.Sparkline(rates))
	fmt.Printf("latency over time  %s\n", viz.Sparkline(lats))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "iddechurn:", err)
	os.Exit(1)
}

// Command iddelat regenerates Figure 1: the end-to-end latency
// comparison between edge-to-edge and edge-to-cloud delivery
// (Singapore/London/Frankfurt), sampled hourly over a simulated week.
//
// Usage:
//
//	iddelat
//	iddelat -seed 7 -csv
package main

import (
	"flag"
	"fmt"

	"idde/internal/cloudlat"
	"idde/internal/experiment"
	"idde/internal/rng"
)

func main() {
	var (
		seed = flag.Uint64("seed", 2022, "probe seed")
		csv  = flag.Bool("csv", false, "emit CSV instead of markdown")
	)
	flag.Parse()

	series := cloudlat.Collect(cloudlat.DefaultTargets(), rng.New(*seed))
	if *csv {
		fmt.Print("setting,kind,mean_ms,min_ms,max_ms\n")
		for _, s := range series {
			fmt.Printf("%s,%s,%.3f,%.3f,%.3f\n",
				s.Target.Name, s.Target.Kind, s.Mean.Millis(), s.Min.Millis(), s.Max.Millis())
		}
		return
	}
	fmt.Println(experiment.Fig1Markdown(series))
}

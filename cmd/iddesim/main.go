// Command iddesim formulates and inspects one IDDE strategy on a
// synthetic scenario, optionally executing it on the discrete-event
// simulator.
//
// Usage:
//
//	iddesim -n 30 -m 200 -k 5 -approach IDDE-G
//	iddesim -approach CDP -des -spread 0.5
//	iddesim -compare
package main

import (
	"flag"
	"fmt"
	"os"

	"idde"
)

func main() {
	var (
		n        = flag.Int("n", 30, "edge servers (N)")
		m        = flag.Int("m", 200, "users (M)")
		k        = flag.Int("k", 5, "data items (K)")
		density  = flag.Float64("density", 1.0, "links per server")
		seed     = flag.Uint64("seed", 1, "scenario seed")
		approach = flag.String("approach", "IDDE-G", "approach: IDDE-IP, IDDE-G, SAA, CDP or DUP-G")
		compare  = flag.Bool("compare", false, "run all five approaches")
		runDES   = flag.Bool("des", false, "execute the strategy on the discrete-event simulator")
		spread   = flag.Float64("spread", 0, "request arrival spread in seconds (0 = burst)")
		verbose  = flag.Bool("v", false, "print per-user assignments and replicas")
		saveTo   = flag.String("save", "", "write the formulated strategy as JSON to this path")
		inspectF = flag.Bool("inspect", false, "print topology/occupancy statistics")
		dotTo    = flag.String("dot", "", "write a Graphviz DOT rendering of the network+strategy to this path")
	)
	flag.Parse()

	sc, err := idde.NewScenario(idde.ScenarioConfig{
		Servers: *n, Users: *m, DataItems: *k, Density: *density, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "iddesim:", err)
		os.Exit(1)
	}
	fmt.Printf("scenario: N=%d M=%d K=%d density=%.1f seed=%d (%.0f MB reserved storage)\n",
		*n, *m, *k, *density, *seed, sc.TotalStorageMB())

	if *compare {
		sts, err := sc.Compare(*seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "iddesim:", err)
			os.Exit(1)
		}
		fmt.Printf("%-8s  %12s  %12s  %12s\n", "approach", "R_avg(MBps)", "L_avg(ms)", "time")
		for _, st := range sts {
			fmt.Printf("%-8s  %12.2f  %12.3f  %12v\n", st.Approach, st.AvgRateMBps, st.AvgLatencyMs, st.Elapsed.Round(1e6))
		}
		return
	}

	st, err := sc.Solve(idde.ApproachName(*approach), *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iddesim:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: R_avg = %.2f MBps, L_avg = %.3f ms, formulated in %v\n",
		st.Approach, st.AvgRateMBps, st.AvgLatencyMs, st.Elapsed.Round(1e6))
	fmt.Printf("replicas placed: %d\n", len(st.Replicas()))

	if *verbose {
		for j := 0; j < sc.Users(); j++ {
			server, channel, ok := st.Assignment(j)
			if ok {
				fmt.Printf("  u%-4d -> v%d/c%d  (%.1f MBps)\n", j, server, channel, st.UserRateMBps(j))
			} else {
				fmt.Printf("  u%-4d -> unallocated\n", j)
			}
		}
		for _, r := range st.Replicas() {
			fmt.Printf("  d%d on v%d\n", r.Item, r.Server)
		}
	}

	if *inspectF {
		fmt.Print(idde.Inspect(sc, st))
	}
	if *dotTo != "" {
		if err := os.WriteFile(*dotTo, []byte(idde.DOT(sc, st)), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "iddesim:", err)
			os.Exit(1)
		}
		fmt.Printf("DOT graph written to %s\n", *dotTo)
	}
	if *saveTo != "" {
		f, err := os.Create(*saveTo)
		if err != nil {
			fmt.Fprintln(os.Stderr, "iddesim:", err)
			os.Exit(1)
		}
		if err := st.Save(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "iddesim:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("strategy written to %s\n", *saveTo)
	}

	if *runDES {
		rep := sc.Simulate(st, *spread, *seed)
		fmt.Printf("DES (spread %.2fs): measured L_avg = %.3f ms (analytic %.3f ms), "+
			"%d cloud fetches, worst queueing inflation %.2f×, %d events\n",
			*spread, rep.AvgLatencyMs, rep.AnalyticAvgMs, rep.CloudRequests, rep.MaxInflation, rep.Events)
	}
}

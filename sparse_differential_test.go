package idde

import (
	"reflect"
	"testing"

	"idde/internal/core"
	"idde/internal/experiment"
	"idde/internal/model"
	"idde/internal/units"
)

// The sparse-vs-dense differential suite: the CSR gain layout recomputes
// out-of-support reads from the positions with the exact expression the
// dense matrix stored, so every solver path must produce bit-identical
// results on the two layouts — for the default cutoff (all in-practice
// reads precomputed) and for the tightest legal cutoff (the bare
// coverage radius, which pushes most interference reads through the
// recompute fallback).

var sparseGrid = []struct {
	p    experiment.Params
	seed uint64
}{
	{experiment.Params{N: 12, M: 90, K: 5, Density: 1.0}, 5},
	{experiment.Params{N: 20, M: 150, K: 6, Density: 1.0}, 2022},
	{experiment.Params{N: 25, M: 260, K: 5, Density: 1.0}, 21},
}

// sparseVariants builds the forced-sparse siblings of an instance (the
// compact Table 2 regions are dense enough that model.New auto-densifies,
// so the differential forces the CSR path explicitly).
func sparseVariants(t *testing.T, in *model.Instance) map[string]*model.Instance {
	t.Helper()
	out := make(map[string]*model.Instance)
	for name, cutoff := range map[string]units.Meters{
		"default-cutoff": 0,
		"tight-cutoff":   in.Top.MaxRadius(),
	} {
		sp, err := model.NewSparse(in.Top, in.Wl, in.Radio, cutoff)
		if err != nil {
			t.Fatalf("NewSparse(%s): %v", name, err)
		}
		if !sp.Sparse() {
			t.Fatalf("NewSparse(%s) returned a dense instance", name)
		}
		out[name] = sp
	}
	return out
}

// TestSparseSolveMatchesDense: full two-phase solves on the CSR layout
// must fingerprint-match the dense reference, under both cutoffs, and
// the Options.DenseInstance escape hatch must route a sparse instance
// through the dense path with the same result.
func TestSparseSolveMatchesDense(t *testing.T) {
	for _, g := range sparseGrid {
		in, err := experiment.BuildInstance(g.p, g.seed)
		if err != nil {
			t.Fatal(err)
		}
		dense := in.Densified()
		base := fingerprint(core.Solve(dense, core.DefaultOptions()))
		for name, sp := range sparseVariants(t, in) {
			got := fingerprint(core.Solve(sp, core.DefaultOptions()))
			if !reflect.DeepEqual(got, base) {
				t.Fatalf("%v [%s]: sparse solve diverges from dense:\n%+v\nvs\n%+v", g.p, name, got, base)
			}
			opt := core.DefaultOptions()
			opt.DenseInstance = true
			viaFlag := fingerprint(core.Solve(sp, opt))
			if !reflect.DeepEqual(viaFlag, base) {
				t.Fatalf("%v [%s]: DenseInstance solve diverges from dense", g.p, name)
			}
		}
	}
}

// TestSparsePhase1MatchesDense pins the equilibrium allocation and the
// game dynamics stats alone — the layer where every gain read goes
// through the ledger's GainRow iteration.
func TestSparsePhase1MatchesDense(t *testing.T) {
	for _, g := range sparseGrid {
		in, err := experiment.BuildInstance(g.p, g.seed)
		if err != nil {
			t.Fatal(err)
		}
		baseAlloc, baseStats := core.SolvePhase1(in.Densified(), core.DefaultOptions())
		for name, sp := range sparseVariants(t, in) {
			alloc, stats := core.SolvePhase1(sp, core.DefaultOptions())
			if !reflect.DeepEqual(alloc, baseAlloc) || stats != baseStats {
				t.Fatalf("%v [%s]: sparse Phase 1 diverges from dense", g.p, name)
			}
		}
	}
}

// TestSparseShardedSolveMatchesDense runs the geo-sharded solver on both
// layouts: partition, tile games, halo exchange and reconcile all read
// gains through the row API, so the 4-tile fingerprints and shard stats
// must agree exactly.
func TestSparseShardedSolveMatchesDense(t *testing.T) {
	for _, g := range sparseGrid {
		in, err := experiment.BuildInstance(g.p, g.seed)
		if err != nil {
			t.Fatal(err)
		}
		opt := core.DefaultOptions()
		opt.Shards = 4
		baseRes := core.Solve(in.Densified(), opt)
		base := fingerprint(baseRes)
		for name, sp := range sparseVariants(t, in) {
			res := core.Solve(sp, opt)
			if !reflect.DeepEqual(fingerprint(res), base) || *res.Shard != *baseRes.Shard {
				t.Fatalf("%v [%s]: sparse sharded solve diverges from dense", g.p, name)
			}
		}
	}
}

// TestSparseGainReadsMatchDense sweeps every (server, user) pair — in
// and out of the CSR support — and demands exact equality with the
// dense matrix cell, the contract everything above rests on.
func TestSparseGainReadsMatchDense(t *testing.T) {
	in, err := experiment.BuildInstance(sparseGrid[0].p, sparseGrid[0].seed)
	if err != nil {
		t.Fatal(err)
	}
	dense := in.Densified()
	for name, sp := range sparseVariants(t, in) {
		st := sp.LayoutStats()
		if !st.Sparse || st.NNZ != sp.NNZ() {
			t.Fatalf("[%s] inconsistent layout stats: %+v", name, st)
		}
		for i := 0; i < in.N(); i++ {
			row := sp.GainRow(i)
			for j := 0; j < in.M(); j++ {
				want := dense.GainAt(i, j)
				if got := sp.GainAt(i, j); got != want {
					t.Fatalf("[%s] GainAt(%d,%d) = %v, dense %v", name, i, j, got, want)
				}
				if got := row.At(j); got != want {
					t.Fatalf("[%s] GainRow(%d).At(%d) = %v, dense %v", name, i, j, got, want)
				}
			}
		}
	}
}

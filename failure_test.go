package idde

import (
	"math"
	"testing"
)

// Sequential failure injection: each InjectFailure returns a degraded
// scenario whose own strategies must support further injections, all
// the way down to the last surviving server.
func TestInjectFailureSequential(t *testing.T) {
	sc := testScenario(t, 31)
	st, _, err := sc.SolveIDDEG()
	if err != nil {
		t.Fatal(err)
	}
	cur, curSt := sc, st
	for f := 0; f < 4; f++ {
		deg, rep, frep, err := cur.InjectFailure(curSt, f)
		if err != nil {
			t.Fatalf("failure %d: %v", f, err)
		}
		if frep.FailedServer != f || frep.FailedCount != 1 {
			t.Fatalf("failure %d reported as server %d count %d", f, frep.FailedServer, frep.FailedCount)
		}
		if rep.AvgLatencyMs < 0 || math.IsNaN(rep.AvgLatencyMs) {
			t.Fatalf("failure %d: degenerate latency %v", f, rep.AvgLatencyMs)
		}
		// The repaired strategy must belong to the degraded scenario: a
		// re-injection through the OLD scenario must be rejected...
		if _, _, _, err := cur.InjectFailure(rep, f+1); err == nil {
			t.Fatal("repaired strategy accepted by the pre-failure scenario")
		}
		// ...and the already-failed server must be rejected too.
		if _, _, _, err := deg.InjectFailure(rep, f); err == nil {
			t.Fatalf("server %d accepted for a second failure", f)
		}
		cur, curSt = deg, rep
	}
	// After four sequential failures the survivors still simulate.
	sim := cur.Simulate(curSt, 5, 1)
	if sim.Events == 0 || math.IsNaN(sim.AvgLatencyMs) {
		t.Errorf("post-failure simulation degenerate: %+v", sim)
	}
}

func TestInjectFailuresCorrelated(t *testing.T) {
	sc := testScenario(t, 33)
	st, err := sc.Solve(IDDEG, 0)
	if err != nil {
		t.Fatal(err)
	}
	deg, rep, frep, err := sc.InjectFailures(st, []int{2, 5, 9})
	if err != nil {
		t.Fatal(err)
	}
	if frep.FailedServer != -1 || frep.FailedCount != 3 {
		t.Errorf("compound failure reported as server %d count %d", frep.FailedServer, frep.FailedCount)
	}
	if frep.RateAfterMBps > frep.RateBeforeMBps+1e-9 {
		t.Errorf("rate improved after triple failure: %v -> %v", frep.RateBeforeMBps, frep.RateAfterMBps)
	}
	if rep.AvgRateMBps != frep.RateAfterMBps {
		t.Errorf("strategy rate %v != report rate %v", rep.AvgRateMBps, frep.RateAfterMBps)
	}
	// Validation: duplicate, out-of-range, empty and wrong-scenario.
	if _, _, _, err := sc.InjectFailures(st, []int{1, 1}); err == nil {
		t.Error("duplicate server accepted")
	}
	if _, _, _, err := sc.InjectFailures(st, []int{99}); err == nil {
		t.Error("out-of-range server accepted")
	}
	if _, _, _, err := deg.InjectFailures(st, []int{0}); err == nil {
		t.Error("foreign strategy accepted")
	}
	// Further single injection on the compound-degraded scenario works.
	if _, _, _, err := deg.InjectFailure(rep, 0); err != nil {
		t.Errorf("injection after compound failure: %v", err)
	}
}

func TestSimulateUnreliablePublic(t *testing.T) {
	sc := testScenario(t, 35)
	st, err := sc.Solve(IDDEG, 0)
	if err != nil {
		t.Fatal(err)
	}
	rel := sc.Simulate(st, 5, 3)
	zero := sc.SimulateUnreliable(st, 5, FaultProfile{}, 3)
	if zero.AvgLatencyMs != rel.AvgLatencyMs || zero.Retries != 0 {
		t.Errorf("zero-fault profile diverges from Simulate: %v vs %v", zero.AvgLatencyMs, rel.AvgLatencyMs)
	}
	f := FaultProfile{LinkLossProb: 0.2, StallProb: 0.05, StallMs: 10}
	a := sc.SimulateUnreliable(st, 5, f, 3)
	b := sc.SimulateUnreliable(st, 5, f, 3)
	if a.Retries != b.Retries || a.AvgLatencyMs != b.AvgLatencyMs || a.Failovers != b.Failovers {
		t.Errorf("same seed diverges: %+v vs %+v", a, b)
	}
	if a.Retries == 0 && a.Stalls == 0 {
		t.Error("20% loss + 5% stall produced no recorded faults")
	}
	if a.AvgLatencyMs < rel.AvgLatencyMs-1e-9 {
		t.Errorf("lossy latency %v below reliable %v", a.AvgLatencyMs, rel.AvgLatencyMs)
	}
	if math.IsNaN(a.AvgLatencyMs) || math.IsInf(a.AvgLatencyMs, 0) {
		t.Errorf("degenerate lossy latency %v", a.AvgLatencyMs)
	}
}

func TestChaosSweepPublic(t *testing.T) {
	sc := testScenario(t, 37)
	st, err := sc.Solve(IDDEG, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ChaosConfig{
		Campaigns:     4,
		ClusterSize:   3,
		OutageSeconds: 60,
		LinkCuts:      1,
		Faults:        FaultProfile{LinkLossProb: 0.15},
		SpreadSeconds: 2,
		Seed:          99,
	}
	sum, err := sc.ChaosSweep(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Campaigns != 4 {
		t.Errorf("campaigns = %d", sum.Campaigns)
	}
	if sum.LatencyInflation.Mean < 1 {
		t.Errorf("mean latency inflation %v < 1 under loss", sum.LatencyInflation.Mean)
	}
	if sum.StrandedFrac.Max < 0 || sum.StrandedFrac.Max > 1 {
		t.Errorf("stranded fraction %v outside [0,1]", sum.StrandedFrac.Max)
	}
	if len(sum.Markdown) == 0 || len(sum.JSON) == 0 {
		t.Error("renderings empty")
	}
	sum2, err := sc.ChaosSweep(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sum.JSON != sum2.JSON {
		t.Error("identical configs produced different sweeps")
	}
	if _, err := sc.ChaosSweep(nil, cfg); err == nil {
		t.Error("nil strategy accepted")
	}
}

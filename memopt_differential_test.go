package idde

import (
	"reflect"
	"runtime"
	"testing"

	"idde/internal/core"
	"idde/internal/experiment"
	"idde/internal/model"
	"idde/internal/placement"
	"idde/internal/units"
)

// The end-to-end differential suite for the large-N memory work: the
// bounded aggregate-row ledger, the Commit-batching Phase 2 oracle and
// the worker-pool scans must all reproduce the unbounded single-core
// results exactly — not approximately — across allocation, replica
// sequence and every reported stat.

// deepenBudgets raises every server's storage capacity to at least
// eight mean item sizes, the regime where the greedy loop commits many
// replicas per item and the Commit batcher's deferred suffix-collapses
// actually batch (shallow budgets commit an item at most once or twice
// per server, hiding collapse bugs).
func deepenBudgets(in *model.Instance) {
	var total units.MegaBytes
	for _, it := range in.Wl.Items {
		total += it.Size
	}
	deep := 8 * total / units.MegaBytes(len(in.Wl.Items))
	for i := range in.Wl.Capacity {
		if in.Wl.Capacity[i] < deep {
			in.Wl.Capacity[i] = deep
		}
	}
}

// TestDeliveryBatchOracleOnDeepBudgets pins the Commit-batching oracle
// on deep-budget instances (storage ≥ 8× mean item size): all six
// oracle×engine combinations — including batch with and without the
// parallel seed scan — must commit the identical replica sequence,
// delivery profile and bit-identical total gain.
func TestDeliveryBatchOracleOnDeepBudgets(t *testing.T) {
	for _, seed := range []uint64{5, 21, 2022} {
		in, err := experiment.BuildInstance(experiment.Params{N: 15, M: 200, K: 6, Density: 1.0}, seed)
		if err != nil {
			t.Fatal(err)
		}
		deepenBudgets(in)
		alloc, _ := core.SolvePhase1(in, core.DefaultOptions())
		checkCombosAgree(t, "deep-budget", in, alloc)
	}
}

// solveFingerprint is the worker-count- and budget-independent slice of
// a core.Result: everything except wall-clock.
type solveFingerprint struct {
	Alloc       model.Allocation
	Delivery    *model.Delivery
	Phase1      interface{}
	Replicas    int
	Evaluations int
	Reduction   units.Seconds
	AvgRate     units.Rate
	AvgLatency  units.Seconds
}

func fingerprint(res *core.Result) solveFingerprint {
	return solveFingerprint{
		Alloc:       res.Strategy.Alloc,
		Delivery:    res.Strategy.Delivery,
		Phase1:      res.Phase1,
		Replicas:    res.Replicas,
		Evaluations: res.GainEvaluations,
		Reduction:   res.LatencyReduction,
		AvgRate:     res.AvgRate,
		AvgLatency:  res.AvgLatency,
	}
}

// TestSolveGomaxprocsInvariance pins the parallel scans' determinism:
// the dirty-set best-response scan (worker pool) and the parallel CELF
// seed scan chunk by index and merge in index order, so the full solve
// — equilibrium allocation, game stats, replica sequence and every
// objective — must be exactly identical under GOMAXPROCS ∈ {1, 2, 8}.
func TestSolveGomaxprocsInvariance(t *testing.T) {
	in, err := experiment.BuildInstance(experiment.Params{N: 20, M: 240, K: 6, Density: 1.0}, 2022)
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()
	// Drop both parallel thresholds to 1 so the scans fan out even at
	// this test scale (and even for single-player dirty rounds).
	opt.Game.ParallelThreshold = 1
	opt.Placement = placement.NewOptions(placement.Options{Parallel: true, ParallelThreshold: 1})

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	var base solveFingerprint
	for gi, g := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(g)
		fp := fingerprint(core.Solve(in, opt))
		if gi == 0 {
			base = fp
			continue
		}
		if !reflect.DeepEqual(fp, base) {
			t.Fatalf("GOMAXPROCS=%d solve diverges from GOMAXPROCS=1:\n%+v\nvs\n%+v", g, fp, base)
		}
	}
}

// TestSolveAggRowBudgetMatchesUnbounded pins the bounded-residency
// ledger: capping the resident aggregate rows — all the way down to a
// single row, where almost every evaluation takes the fold fallback or
// a fault-triggered rebuild — must leave the equilibrium allocation and
// the game stats exactly identical to the unbounded ledger, because
// both the fallback and rebuilt rows replay the same left-to-right
// fold the maintained rows hold.
func TestSolveAggRowBudgetMatchesUnbounded(t *testing.T) {
	for _, p := range []experiment.Params{
		{N: 12, M: 90, K: 5, Density: 1.0},
		{N: 25, M: 260, K: 5, Density: 1.0},
	} {
		in, err := experiment.BuildInstance(p, 7)
		if err != nil {
			t.Fatal(err)
		}
		baseAlloc, baseStats := core.SolvePhase1(in, core.DefaultOptions())
		for _, budget := range []int{1, 3, p.N / 4, p.N / 2} {
			if budget < 1 {
				continue
			}
			opt := core.DefaultOptions()
			opt.AggRowBudget = budget
			alloc, stats := core.SolvePhase1(in, opt)
			if !reflect.DeepEqual(alloc, baseAlloc) {
				t.Fatalf("%v budget=%d: equilibrium allocation diverges from unbounded", p, budget)
			}
			if stats != baseStats {
				t.Fatalf("%v budget=%d: game stats diverge: %+v vs %+v", p, budget, stats, baseStats)
			}
		}
	}
}

// TestSolveAggRowBudgetEndToEnd runs the full two-phase solve under a
// tight row budget and checks the complete result fingerprint against
// the unbounded solve — Phase 2 consumes the Phase 1 equilibrium, so
// any budget-induced drift would surface in the delivery profile too.
func TestSolveAggRowBudgetEndToEnd(t *testing.T) {
	in, err := experiment.BuildInstance(experiment.Params{N: 20, M: 200, K: 6, Density: 1.0}, 11)
	if err != nil {
		t.Fatal(err)
	}
	base := fingerprint(core.Solve(in, core.DefaultOptions()))
	opt := core.DefaultOptions()
	opt.AggRowBudget = 5
	opt.CohortBatch = true
	got := fingerprint(core.Solve(in, opt))
	if got.Evaluations >= base.Evaluations {
		t.Fatalf("per-item staleness epochs saved no evaluations: %d vs %d",
			got.Evaluations, base.Evaluations)
	}
	// The oracle-call count legitimately drops under ItemLocalGains (the
	// skipped refreshes are provably identical); everything observable —
	// allocation, profile, stats, objectives — must match exactly.
	got.Evaluations = base.Evaluations
	if !reflect.DeepEqual(got, base) {
		t.Fatalf("budgeted+batch solve diverges from default:\n%+v\nvs\n%+v", got, base)
	}
}

package game

import (
	"reflect"
	"testing"

	"idde/internal/rng"
)

// localCongestion is a Rosenthal singleton congestion game with
// player-specific allowed resource sets: player j picks one resource
// from allowed[j]; the payoff of resource r is weight[r]/(1+others(r)).
// Resource-dependent (not player-specific) payoffs make it an exact
// potential game, so best-response dynamics terminate. It implements
// Localized via the inverted resource→interested-players index, mirroring
// how the IDDE-U adapter uses Top.Covered.
type localCongestion struct {
	allowed    [][]int // player -> candidate resources
	interested [][]int // resource -> players that can use it
	weight     []float64
	choice     []int // player -> current resource (-1 = none)
	load       []int // resource -> occupancy
	aff        []int
}

func newLocalCongestion(players, resources, perPlayer int, s *rng.Stream) *localCongestion {
	g := &localCongestion{
		allowed:    make([][]int, players),
		interested: make([][]int, resources),
		weight:     make([]float64, resources),
		choice:     make([]int, players),
		load:       make([]int, resources),
	}
	for r := range g.weight {
		g.weight[r] = s.Uniform(0.5, 2.0)
	}
	for j := range g.allowed {
		g.choice[j] = -1
		perm := s.Perm(resources)
		k := 1 + s.IntN(perPlayer)
		for _, r := range perm[:min(k, resources)] {
			g.allowed[j] = append(g.allowed[j], r)
			g.interested[r] = append(g.interested[r], j)
		}
	}
	return g
}

func (g *localCongestion) clone() *localCongestion {
	c := *g
	c.choice = append([]int(nil), g.choice...)
	c.load = append([]int(nil), g.load...)
	c.aff = nil
	return &c
}

func (g *localCongestion) NumPlayers() int { return len(g.allowed) }

func (g *localCongestion) payoff(j, r int) float64 {
	others := g.load[r]
	if g.choice[j] == r {
		others--
	}
	return g.weight[r] / float64(1+others)
}

func (g *localCongestion) Best(j int) (int, float64, float64) {
	cur := g.choice[j]
	curB := 0.0
	if cur >= 0 {
		curB = g.payoff(j, cur)
	}
	best, bestB := cur, curB
	for _, r := range g.allowed[j] {
		if r == cur {
			continue
		}
		if b := g.payoff(j, r); b > bestB {
			best, bestB = r, b
		}
	}
	return best, bestB, curB
}

func (g *localCongestion) Apply(j, r int) {
	if g.choice[j] >= 0 {
		g.load[g.choice[j]]--
	}
	g.choice[j] = r
	g.load[r]++
}

// Affected returns the players that can use j's current or destination
// resource — the superset of everyone whose payoff landscape moves.
func (g *localCongestion) Affected(j, r int) []int {
	aff := g.aff[:0]
	if cur := g.choice[j]; cur >= 0 {
		aff = append(aff, g.interested[cur]...)
	}
	if r != g.choice[j] {
		aff = append(aff, g.interested[r]...)
	}
	g.aff = aff
	return aff
}

// recorder wraps a Localized adapter and logs the committed (player,
// decision) sequence. It forwards Affected, so the engine still sees a
// Localized adapter (FullScan mode ignores it anyway).
type recorder struct {
	inner *localCongestion
	log   [][2]int
}

func (a *recorder) NumPlayers() int                    { return a.inner.NumPlayers() }
func (a *recorder) Best(j int) (int, float64, float64) { return a.inner.Best(j) }
func (a *recorder) Affected(j, r int) []int            { return a.inner.Affected(j, r) }
func (a *recorder) Apply(j, r int) {
	a.log = append(a.log, [2]int{j, r})
	a.inner.Apply(j, r)
}

// runBoth plays the same game under the dirty-set scheduler and the
// full-scan reference and asserts bit-identical dynamics.
func runBoth(t *testing.T, g *localCongestion, opt Options) (Stats, Stats) {
	t.Helper()
	dirtyGame := &recorder{inner: g.clone()}
	fullGame := &recorder{inner: g.clone()}

	optDirty := opt
	optDirty.FullScan = false
	optFull := opt
	optFull.FullScan = true

	stDirty := Run[int](dirtyGame, optDirty)
	stFull := Run[int](fullGame, optFull)

	if !reflect.DeepEqual(dirtyGame.log, fullGame.log) {
		t.Fatalf("%v: committed move sequences diverge:\ndirty %v\nfull  %v",
			opt.Policy, dirtyGame.log, fullGame.log)
	}
	if !reflect.DeepEqual(dirtyGame.inner.choice, fullGame.inner.choice) {
		t.Fatalf("%v: final profiles diverge", opt.Policy)
	}
	if stDirty.Rounds != stFull.Rounds || stDirty.Updates != stFull.Updates ||
		stDirty.Converged != stFull.Converged || stDirty.Frozen != stFull.Frozen {
		t.Fatalf("%v: stats diverge: dirty %+v full %+v", opt.Policy, stDirty, stFull)
	}
	if stDirty.Evaluations > stFull.Evaluations {
		t.Fatalf("%v: dirty-set did more evaluations (%d) than the full scan (%d)",
			opt.Policy, stDirty.Evaluations, stFull.Evaluations)
	}
	return stDirty, stFull
}

// TestDirtySetMatchesFullScan is the scheduling differential test: on
// randomized localized potential games both policies must produce the
// identical committed update sequence, equilibrium and Theorem 4
// accounting whether or not the dirty-set scheduler is engaged.
func TestDirtySetMatchesFullScan(t *testing.T) {
	for _, policy := range []Policy{WinnerTakesAll, RoundRobin} {
		for seed := uint64(1); seed <= 8; seed++ {
			s := rng.New(seed * 977)
			g := newLocalCongestion(60+s.IntN(60), 10+s.IntN(10), 4, s)
			runBoth(t, g, Options{Policy: policy, Epsilon: 1e-12})
		}
	}
}

// TestDirtySetSavesEvaluations pins the point of the scheduler: on a
// sparse localized game the dirty-set engine must evaluate strictly less
// than Rounds×players.
func TestDirtySetSavesEvaluations(t *testing.T) {
	s := rng.New(42)
	g := newLocalCongestion(200, 40, 3, s)
	stDirty, stFull := runBoth(t, g, Options{Policy: WinnerTakesAll, Epsilon: 1e-12})
	if stDirty.Evaluations >= stFull.Evaluations {
		t.Fatalf("expected strict evaluation savings, got dirty %d vs full %d",
			stDirty.Evaluations, stFull.Evaluations)
	}
}

// TestDirtySetMatchesUnderKnobs sweeps the option surface: caps, budget
// exhaustion, epsilon thresholds and the parallel scan must all preserve
// the dirty/full equivalence.
func TestDirtySetMatchesUnderKnobs(t *testing.T) {
	cases := []Options{
		{Policy: WinnerTakesAll, Epsilon: 1e-12, PerPlayerCap: 2},
		{Policy: WinnerTakesAll, Epsilon: 1e-12, MaxUpdates: 7},
		{Policy: WinnerTakesAll, Epsilon: 0.05},
		{Policy: WinnerTakesAll, Epsilon: 1e-12, Parallel: true, ParallelThreshold: 1},
		{Policy: RoundRobin, Epsilon: 1e-12, PerPlayerCap: 2},
		{Policy: RoundRobin, Epsilon: 1e-12, MaxUpdates: 7},
		{Policy: RoundRobin, Epsilon: 0.05},
	}
	for ci, opt := range cases {
		for seed := uint64(1); seed <= 4; seed++ {
			s := rng.New(seed*131 + uint64(ci))
			g := newLocalCongestion(80, 12, 4, s)
			runBoth(t, g, opt)
		}
	}
}

// TestDirtySetParallelRace runs the parallel dirty-set scan under -race
// with the threshold forced to 1 so every pending batch fans out.
func TestDirtySetParallelRace(t *testing.T) {
	s := rng.New(7)
	g := newLocalCongestion(300, 25, 5, s)
	opt := Options{Policy: WinnerTakesAll, Epsilon: 1e-12, Parallel: true, ParallelThreshold: 1}
	runBoth(t, g, opt)
}

// TestOptionsSetMarker covers the Set plumbing embedders rely on.
func TestOptionsSetMarker(t *testing.T) {
	if !DefaultOptions().Set {
		t.Fatal("DefaultOptions must carry Set so embedders preserve it")
	}
	if !NewOptions(Options{}).Set {
		t.Fatal("NewOptions must mark the options as explicitly configured")
	}
	if (Options{}).Set {
		t.Fatal("zero-value Options must not claim to be configured")
	}
}

// TestParallelThresholdOption checks that an absurdly high threshold
// (never parallelize) and a threshold of 1 (always parallelize) both
// reproduce the sequential dynamics.
func TestParallelThresholdOption(t *testing.T) {
	for _, thresh := range []int{1, 1 << 20} {
		s := rng.New(99)
		g := newLocalCongestion(120, 15, 4, s)
		seq := &recorder{inner: g.clone()}
		par := &recorder{inner: g.clone()}
		base := Options{Policy: WinnerTakesAll, Epsilon: 1e-12}
		stSeq := Run[int](seq, base)
		withPar := base
		withPar.Parallel = true
		withPar.ParallelThreshold = thresh
		stPar := Run[int](par, withPar)
		if !reflect.DeepEqual(seq.log, par.log) {
			t.Fatalf("threshold %d: parallel scan changed the move sequence", thresh)
		}
		if stSeq != stPar {
			t.Fatalf("threshold %d: stats diverge: %+v vs %+v", thresh, stSeq, stPar)
		}
	}
}

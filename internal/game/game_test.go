package game

import (
	"sync/atomic"
	"testing"
)

// congestion is a minimal singleton congestion game: players pick one of
// R resources; a player's benefit is 1/load(resource). It is an exact
// potential game, so dynamics must converge, and at equilibrium loads
// are balanced within one.
type congestion struct {
	players int
	res     int
	choice  []int
	load    []int
	scans   atomic.Int64
}

func newCongestion(players, res int) *congestion {
	g := &congestion{players: players, res: res, choice: make([]int, players), load: make([]int, res)}
	// Everyone starts on resource 0: maximally congested.
	g.load[0] = players
	return g
}

func (g *congestion) NumPlayers() int { return g.players }

func (g *congestion) benefit(j, r int) float64 {
	load := g.load[r]
	if g.choice[j] != r {
		load++ // hypothetical move adds j's own weight
	}
	return 1 / float64(load)
}

func (g *congestion) Best(j int) (int, float64, float64) {
	g.scans.Add(1)
	best, bestB := g.choice[j], g.benefit(j, g.choice[j])
	for r := 0; r < g.res; r++ {
		if b := g.benefit(j, r); b > bestB {
			best, bestB = r, b
		}
	}
	return best, bestB, g.benefit(j, g.choice[j])
}

func (g *congestion) Apply(j, r int) {
	g.load[g.choice[j]]--
	g.load[r]++
	g.choice[j] = r
}

func (g *congestion) balanced() bool {
	min, max := g.players, 0
	for _, l := range g.load {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	return max-min <= 1
}

func TestWinnerTakesAllConverges(t *testing.T) {
	g := newCongestion(30, 5)
	st := Run[int](g, Options{Policy: WinnerTakesAll, Epsilon: 1e-12})
	if !st.Converged {
		t.Fatal("did not converge")
	}
	if !g.balanced() {
		t.Errorf("equilibrium not balanced: %v", g.load)
	}
	// One commit per round (plus the final all-quiet round).
	if st.Rounds != st.Updates+1 {
		t.Errorf("rounds=%d updates=%d, want rounds=updates+1", st.Rounds, st.Updates)
	}
}

func TestRoundRobinConvergesFaster(t *testing.T) {
	gw := newCongestion(40, 4)
	gr := newCongestion(40, 4)
	sw := Run[int](gw, Options{Policy: WinnerTakesAll, Epsilon: 1e-12})
	sr := Run[int](gr, Options{Policy: RoundRobin, Epsilon: 1e-12})
	if !sw.Converged || !sr.Converged {
		t.Fatal("dynamics did not converge")
	}
	if !gr.balanced() {
		t.Errorf("round-robin equilibrium not balanced: %v", gr.load)
	}
	if sr.Rounds >= sw.Rounds {
		t.Errorf("round-robin rounds %d not fewer than winner rounds %d", sr.Rounds, sw.Rounds)
	}
}

func TestParallelScanMatchesSequential(t *testing.T) {
	// 100 players ≥ the parallel threshold; determinism of the outcome
	// must not depend on the scan mode since Apply is serialized.
	gp := newCongestion(100, 7)
	gs := newCongestion(100, 7)
	sp := Run[int](gp, Options{Policy: WinnerTakesAll, Epsilon: 1e-12, Parallel: true})
	ss := Run[int](gs, Options{Policy: WinnerTakesAll, Epsilon: 1e-12, Parallel: false})
	if sp.Updates != ss.Updates || sp.Rounds != ss.Rounds {
		t.Errorf("parallel (%+v) and sequential (%+v) diverged", sp, ss)
	}
	for r := range gp.load {
		if gp.load[r] != gs.load[r] {
			t.Errorf("final loads differ at resource %d", r)
		}
	}
}

func TestMaxUpdatesCap(t *testing.T) {
	g := newCongestion(50, 5)
	st := Run[int](g, Options{Policy: WinnerTakesAll, Epsilon: 1e-12, MaxUpdates: 3})
	if st.Converged {
		t.Error("reported convergence despite cap")
	}
	if st.Updates != 3 {
		t.Errorf("updates = %d, want 3", st.Updates)
	}
}

func TestEmptyGame(t *testing.T) {
	g := newCongestion(0, 3)
	st := Run[int](g, DefaultOptions())
	if !st.Converged || st.Updates != 0 {
		t.Errorf("empty game stats: %+v", st)
	}
}

func TestAlreadyAtEquilibrium(t *testing.T) {
	g := newCongestion(4, 4)
	// Spread players manually: one per resource.
	for j := 0; j < 4; j++ {
		g.Apply(j, j)
	}
	st := Run[int](g, Options{Policy: WinnerTakesAll, Epsilon: 1e-12})
	if !st.Converged || st.Updates != 0 || st.Rounds != 1 {
		t.Errorf("equilibrium start stats: %+v", st)
	}
}

func TestEpsilonSuppressesMicroMoves(t *testing.T) {
	g := newCongestion(10, 2)
	// With a huge epsilon nothing ever improves "enough".
	st := Run[int](g, Options{Policy: WinnerTakesAll, Epsilon: 10})
	if !st.Converged || st.Updates != 0 {
		t.Errorf("epsilon gate failed: %+v", st)
	}
}

func TestPerPlayerCapFreezesPlayers(t *testing.T) {
	g := newCongestion(20, 4)
	st := Run[int](g, Options{Policy: WinnerTakesAll, Epsilon: 1e-12, PerPlayerCap: 1})
	if !st.Converged {
		t.Fatal("capped dynamics did not converge")
	}
	// Every player moves at most once.
	if st.Updates > 20 {
		t.Errorf("updates = %d with cap 1 over 20 players", st.Updates)
	}
	if st.Frozen > 20 {
		t.Errorf("frozen = %d", st.Frozen)
	}
}

func TestPerPlayerCapZeroMeansUnlimited(t *testing.T) {
	g := newCongestion(20, 4)
	st := Run[int](g, Options{Policy: WinnerTakesAll, Epsilon: 1e-12, PerPlayerCap: 0})
	if !st.Converged || st.Frozen != 0 {
		t.Errorf("uncapped run stats: %+v", st)
	}
}

func TestRoundRobinHonorsCap(t *testing.T) {
	g := newCongestion(30, 3)
	st := Run[int](g, Options{Policy: RoundRobin, Epsilon: 1e-12, PerPlayerCap: 2})
	if !st.Converged {
		t.Fatal("capped round-robin did not converge")
	}
	if st.Updates > 60 {
		t.Errorf("updates = %d exceeds 2×players", st.Updates)
	}
}

func TestPolicyString(t *testing.T) {
	if WinnerTakesAll.String() != "winner-takes-all" || RoundRobin.String() != "round-robin" {
		t.Error("Policy String wrong")
	}
	if Policy(9).String() == "" {
		t.Error("unknown policy String empty")
	}
}

func TestUnknownPolicyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown policy did not panic")
		}
	}()
	Run[int](newCongestion(2, 2), Options{Policy: Policy(42)})
}

// TestImprovementPathProperty: every commit strictly increases the
// mover's benefit — the defining property the Theorem 3 potential
// argument rests on.
func TestImprovementPathProperty(t *testing.T) {
	g := &auditedGame{inner: newCongestion(25, 5), t: t}
	st := Run[int](g, Options{Policy: WinnerTakesAll, Epsilon: 1e-12})
	if !st.Converged {
		t.Fatal("did not converge")
	}
}

type auditedGame struct {
	inner *congestion
	t     *testing.T
}

func (a *auditedGame) NumPlayers() int { return a.inner.NumPlayers() }
func (a *auditedGame) Best(j int) (int, float64, float64) {
	return a.inner.Best(j)
}
func (a *auditedGame) Apply(j, r int) {
	before := a.inner.benefit(j, a.inner.choice[j])
	after := a.inner.benefit(j, r)
	if after <= before {
		a.t.Fatalf("commit for player %d did not improve benefit: %v -> %v", j, before, after)
	}
	a.inner.Apply(j, r)
}

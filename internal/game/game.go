// Package game provides a generic best-response dynamics engine for
// finite strategic games. The IDDE-U user-allocation game of IDDE-G's
// Phase 1 and the DUP-G baseline both run on it.
//
// The engine implements the update protocol of Algorithm 1 (lines 5–21):
// in every round each player computes its best response to the current
// profile and, if it improves on the current decision, submits an update
// request; one winner per round commits its move. For potential games
// this serialization is exactly what makes the Monderer–Shapley finite
// improvement property apply, so the dynamics terminate in a Nash
// equilibrium. A faster round-robin policy (every player commits
// immediately, in sequence) is provided as an ablation — it is also an
// improvement path, hence also terminates on potential games, but it is
// not the paper's protocol.
package game

import (
	"fmt"
	"runtime"
	"sync"
)

// Adapter connects a concrete game to the engine. Decisions are opaque
// values of type D. Best must be safe for concurrent invocation with
// distinct players while the profile is not being mutated; Apply is
// always called from a single goroutine.
type Adapter[D any] interface {
	// NumPlayers reports the number of players.
	NumPlayers() int
	// Best returns player j's best response to the current profile
	// together with its benefit, and the benefit of j's current
	// decision.
	Best(j int) (d D, benefit float64, current float64)
	// Apply commits decision d for player j.
	Apply(j int, d D)
}

// Policy selects the update arbitration.
type Policy int

const (
	// WinnerTakesAll is Algorithm 1's protocol: all players propose,
	// the largest improvement wins, one move commits per round.
	WinnerTakesAll Policy = iota
	// RoundRobin lets every player commit its best response in index
	// order within a round; much faster in wall-clock, identical
	// fixed points.
	RoundRobin
)

func (p Policy) String() string {
	switch p {
	case WinnerTakesAll:
		return "winner-takes-all"
	case RoundRobin:
		return "round-robin"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Options tunes the dynamics.
type Options struct {
	Policy Policy
	// Epsilon is the minimum absolute benefit improvement that counts
	// as an update request; it guards against floating-point livelock.
	Epsilon float64
	// MaxUpdates caps committed moves (0 means 200·players, comfortably
	// above the Theorem 4 bound at the paper's scales).
	MaxUpdates int
	// PerPlayerCap bounds how many updates a single player may commit
	// (0 = unlimited). The IDDE-U game is only a potential game under
	// the uniform-gain assumption of Theorem 3's proof; with
	// heterogeneous gains, best-response dynamics can cycle (a concrete
	// two-player pursuit cycle is exhibited in the core tests). The cap
	// operationalizes Theorem 4's bounded-iteration claim: players that
	// exhaust their budget freeze at their current (already
	// best-responded) decision, and the dynamics terminate in an
	// equilibrium of the remaining players.
	PerPlayerCap int
	// Parallel enables the concurrent best-response scan.
	Parallel bool
}

// DefaultOptions returns the engine configuration used by IDDE-G.
func DefaultOptions() Options {
	return Options{Policy: WinnerTakesAll, Epsilon: 1e-12, PerPlayerCap: 16, Parallel: true}
}

// Stats reports how the dynamics ran.
type Stats struct {
	// Rounds counts full best-response scans.
	Rounds int
	// Updates counts committed decision changes (the "iterations" of
	// Theorem 4).
	Updates int
	// Converged reports whether the dynamics reached a fixed point: no
	// eligible player can improve by more than Epsilon. Frozen players
	// (if any) are reported separately.
	Converged bool
	// Frozen counts players that exhausted PerPlayerCap; their final
	// decisions may admit improving deviations.
	Frozen int
}

// Run executes best-response dynamics until no player can improve or
// the update budget is exhausted.
func Run[D any](a Adapter[D], opt Options) Stats {
	n := a.NumPlayers()
	if opt.MaxUpdates <= 0 {
		opt.MaxUpdates = 200 * n
		if opt.MaxUpdates < 1000 {
			opt.MaxUpdates = 1000
		}
	}
	var st Stats
	if n == 0 {
		st.Converged = true
		return st
	}

	type proposal struct {
		player int
		d      D
		gain   float64
	}
	props := make([]proposal, n)
	moves := make([]int, n)
	eligible := func(j int) bool {
		return opt.PerPlayerCap <= 0 || moves[j] < opt.PerPlayerCap
	}
	countFrozen := func() int {
		if opt.PerPlayerCap <= 0 {
			return 0
		}
		f := 0
		for _, m := range moves {
			if m >= opt.PerPlayerCap {
				f++
			}
		}
		return f
	}

	scan := func() {
		eval := func(j int) {
			if !eligible(j) {
				props[j] = proposal{player: j, gain: 0}
				return
			}
			d, benefit, cur := a.Best(j)
			props[j] = proposal{player: j, d: d, gain: benefit - cur}
		}
		if opt.Parallel && n >= 64 {
			workers := runtime.GOMAXPROCS(0)
			if workers > n {
				workers = n
			}
			var wg sync.WaitGroup
			chunk := (n + workers - 1) / workers
			for w := 0; w < workers; w++ {
				lo := w * chunk
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				if lo >= hi {
					break
				}
				wg.Add(1)
				go func(lo, hi int) {
					defer wg.Done()
					for j := lo; j < hi; j++ {
						eval(j)
					}
				}(lo, hi)
			}
			wg.Wait()
		} else {
			for j := 0; j < n; j++ {
				eval(j)
			}
		}
	}

	switch opt.Policy {
	case WinnerTakesAll:
		for st.Updates < opt.MaxUpdates {
			st.Rounds++
			scan()
			winner := -1
			bestGain := opt.Epsilon
			for j := range props {
				if props[j].gain > bestGain {
					bestGain = props[j].gain
					winner = j
				}
			}
			if winner < 0 {
				st.Converged = true
				st.Frozen = countFrozen()
				return st
			}
			a.Apply(winner, props[winner].d)
			moves[winner]++
			st.Updates++
		}
	case RoundRobin:
		for st.Updates < opt.MaxUpdates {
			st.Rounds++
			moved := false
			for j := 0; j < n && st.Updates < opt.MaxUpdates; j++ {
				if !eligible(j) {
					continue
				}
				d, benefit, cur := a.Best(j)
				if benefit-cur > opt.Epsilon {
					a.Apply(j, d)
					moves[j]++
					st.Updates++
					moved = true
				}
			}
			if !moved {
				st.Converged = true
				st.Frozen = countFrozen()
				return st
			}
		}
	default:
		panic(fmt.Sprintf("game: unknown policy %d", int(opt.Policy)))
	}
	st.Frozen = countFrozen()
	return st
}

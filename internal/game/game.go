// Package game provides a generic best-response dynamics engine for
// finite strategic games. The IDDE-U user-allocation game of IDDE-G's
// Phase 1 and the DUP-G baseline both run on it.
//
// The engine implements the update protocol of Algorithm 1 (lines 5–21):
// in every round each player computes its best response to the current
// profile and, if it improves on the current decision, submits an update
// request; one winner per round commits its move. For potential games
// this serialization is exactly what makes the Monderer–Shapley finite
// improvement property apply, so the dynamics terminate in a Nash
// equilibrium. A faster round-robin policy (every player commits
// immediately, in sequence) is provided as an ablation — it is also an
// improvement path, hence also terminates on potential games, but it is
// not the paper's protocol.
//
// # Dirty-set scheduling
//
// Re-evaluating every player every round is wasted work when a commit
// only perturbs a bounded neighbourhood of the profile — in the IDDE-U
// game a move touches two (server, channel) cells, and only players
// covered by those servers can see their Eq. 12 benefit change. Adapters
// that can enumerate that neighbourhood implement Localized; the engine
// then caches every player's last proposal, invalidates only the
// affected ones after each commit, and keeps the cached gains in an
// indexed max-heap so a winner-takes-all round costs
// O(|affected|·eval + |affected|·log M) instead of O(M·eval). The
// committed move sequence — and therefore the equilibrium and the
// Rounds/Updates accounting of Theorem 4 — is provably identical to the
// full scan: a cached proposal is only reused when the player's payoff
// landscape is untouched, so a fresh evaluation would return the same
// decision bit for bit. Options.FullScan forces the literal protocol for
// differential tests and perf baselines.
package game

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"idde/internal/obs"
)

// Adapter connects a concrete game to the engine. Decisions are opaque
// values of type D. Best must be safe for concurrent invocation with
// distinct players while the profile is not being mutated; Apply is
// always called from a single goroutine.
type Adapter[D any] interface {
	// NumPlayers reports the number of players.
	NumPlayers() int
	// Best returns player j's best response to the current profile
	// together with its benefit, and the benefit of j's current
	// decision.
	Best(j int) (d D, benefit float64, current float64)
	// Apply commits decision d for player j.
	Apply(j int, d D)
}

// Localized is an optional Adapter extension for games where a commit
// perturbs only a bounded neighbourhood of players. Implementing it
// enables the dirty-set scheduler (see the package comment).
type Localized[D any] interface {
	Adapter[D]
	// Affected reports the players whose payoff landscape may change
	// when player j commits decision d. It is called immediately before
	// Apply(j, d), so the adapter can still read j's pre-move state.
	// The result may contain duplicates and need not include j (the
	// engine always re-evaluates the mover), but it MUST be a superset
	// of every player whose payoff for any decision changes — an
	// under-approximation silently serves stale proposals. The returned
	// slice is only read until the next Affected or Apply call, so
	// adapters may reuse one buffer.
	Affected(j int, d D) []int
}

// RoundMetrics is an optional Adapter extension for traced runs: when
// the engine records a round event it asks the adapter for domain-level
// scalars (e.g. the IDDE-U average rate or the Eq. 13 potential) to
// attach alongside the engine's own round/updates/gain attributes. Only
// called when Options.Obs has a tracer attached, so implementations may
// be arbitrarily expensive without taxing production runs.
type RoundMetrics interface {
	// RoundMetrics pushes named per-round metrics through put. It is
	// called from the engine's serialized section after the round's
	// commit (or at convergence), so the adapter sees a quiescent
	// profile.
	RoundMetrics(put func(key string, v float64))
}

// Policy selects the update arbitration.
type Policy int

const (
	// WinnerTakesAll is Algorithm 1's protocol: all players propose,
	// the largest improvement wins, one move commits per round.
	WinnerTakesAll Policy = iota
	// RoundRobin lets every player commit its best response in index
	// order within a round; much faster in wall-clock, identical
	// fixed points.
	RoundRobin
)

func (p Policy) String() string {
	switch p {
	case WinnerTakesAll:
		return "winner-takes-all"
	case RoundRobin:
		return "round-robin"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// DefaultParallelThreshold is the player count below which the parallel
// proposal scan is not worth the goroutine fan-out.
const DefaultParallelThreshold = 64

// Options tunes the dynamics.
type Options struct {
	Policy Policy
	// Epsilon is the minimum absolute benefit improvement that counts
	// as an update request; it guards against floating-point livelock.
	Epsilon float64
	// MaxUpdates caps committed moves (0 means 200·players, comfortably
	// above the Theorem 4 bound at the paper's scales).
	MaxUpdates int
	// PerPlayerCap bounds how many updates a single player may commit
	// (0 = unlimited). The IDDE-U game is only a potential game under
	// the uniform-gain assumption of Theorem 3's proof; with
	// heterogeneous gains, best-response dynamics can cycle (a concrete
	// two-player pursuit cycle is exhibited in the core tests). The cap
	// operationalizes Theorem 4's bounded-iteration claim: players that
	// exhaust their budget freeze at their current (already
	// best-responded) decision, and the dynamics terminate in an
	// equilibrium of the remaining players.
	PerPlayerCap int
	// Parallel enables the concurrent best-response scan.
	Parallel bool
	// ParallelThreshold is the minimum number of players (or, for
	// dirty-set rounds, invalidated players) before the parallel scan
	// kicks in; 0 means DefaultParallelThreshold. Benches force either
	// path by setting it to 1 or disabling Parallel.
	ParallelThreshold int
	// Obs receives the engine's telemetry: per-round trace events (when
	// a tracer is attached), a round-size histogram, and the final
	// Stats cross-wired into counters. nil disables all of it at the
	// cost of one branch per round; the commit sequence and Stats are
	// identical either way. Embedders that resolve a zero-value Options
	// to defaults (core.Solve) inject the scope after resolution, so
	// setting only Obs does not count as "explicitly configured".
	Obs *obs.Scope
	// FullScan forces the literal Algorithm 1 re-evaluation of every
	// player each round even when the adapter is Localized. The commit
	// sequence and the Rounds/Updates/Converged/Frozen stats are
	// identical either way (the dirty-set scheduler only skips provably
	// unchanged proposals); only wall-clock and Evaluations differ.
	// This is the reference mode for differential tests and baselines.
	FullScan bool
	// Set marks the Options as explicitly configured. Embedders (e.g.
	// core.Solve) replace a zero-value Options with their defaults; an
	// intentionally all-zero configuration — sequential winner-takes-all
	// with Epsilon 0 and no caps — must carry Set (use NewOptions) to
	// survive that replacement.
	Set bool
}

// NewOptions marks o as explicitly configured, shielding all-zero
// configurations from default replacement by embedders.
func NewOptions(o Options) Options {
	o.Set = true
	return o
}

// DefaultOptions returns the engine configuration used by IDDE-G.
func DefaultOptions() Options {
	return Options{Policy: WinnerTakesAll, Epsilon: 1e-12, PerPlayerCap: 16, Parallel: true, Set: true}
}

// Stats reports how the dynamics ran.
type Stats struct {
	// Rounds counts full best-response scans.
	Rounds int
	// Updates counts committed decision changes (the "iterations" of
	// Theorem 4).
	Updates int
	// Evaluations counts Adapter.Best calls. The dirty-set scheduler's
	// savings show up here: the full scan performs roughly
	// Rounds×players evaluations, the dirty-set engine only
	// Σ|affected|. Unlike the other fields it is NOT invariant across
	// scheduling modes.
	Evaluations int
	// Converged reports whether the dynamics reached a fixed point: no
	// eligible player can improve by more than Epsilon. Frozen players
	// (if any) are reported separately.
	Converged bool
	// Frozen counts players that exhausted PerPlayerCap; their final
	// decisions may admit improving deviations.
	Frozen int
}

// proposal caches one player's last evaluated best response.
type proposal[D any] struct {
	d    D
	gain float64
}

// runner carries the shared state of one Run invocation.
type runner[D any] struct {
	a      Adapter[D]
	opt    Options
	n      int
	thresh int
	props  []proposal[D]
	moves  []int
	evals  atomic.Int64
	st     Stats

	// Persistent worker pool for the parallel proposal scans: started
	// lazily on the first round that crosses the threshold and fed
	// index spans over per-worker channels, so a steady-state round
	// spawns no goroutines and allocates nothing. parFn is always one
	// of the two closures below, created once per Run; the channel
	// send/receive pairs give the happens-before edges for both the
	// parFn handoff and the workers' result writes.
	workers int
	jobs    []chan idxSpan
	jobDone chan struct{}
	parFn   func(idx int)
	scanFn  func(idx int) // full-scan proposal refresh: eval(idx)
	fillFn  func(idx int) // dirty-round refresh: pending[idx] → scratch[idx]

	// pending lists the players invalidated by the previous commit;
	// scratch receives their fresh proposals so each heap key changes
	// one at a time (a batched overwrite would break the sift
	// invariant).
	pending []int
	scratch []proposal[D]
}

// idxSpan is one worker's half-open index range for a parallel scan.
type idxSpan struct{ lo, hi int }

// Run executes best-response dynamics until no player can improve or
// the update budget is exhausted.
func Run[D any](a Adapter[D], opt Options) Stats {
	n := a.NumPlayers()
	if opt.MaxUpdates <= 0 {
		opt.MaxUpdates = 200 * n
		if opt.MaxUpdates < 1000 {
			opt.MaxUpdates = 1000
		}
	}
	thresh := opt.ParallelThreshold
	if thresh <= 0 {
		thresh = DefaultParallelThreshold
	}
	r := &runner[D]{
		a:      a,
		opt:    opt,
		n:      n,
		thresh: thresh,
		props:  make([]proposal[D], n),
		moves:  make([]int, n),
	}
	if n == 0 {
		r.st.Converged = true
		return r.st
	}
	r.scanFn = func(j int) { r.eval(j) }
	r.fillFn = func(idx int) {
		j := r.pending[idx]
		if !r.eligible(j) {
			r.scratch[idx] = proposal[D]{gain: 0}
			return
		}
		d, benefit, cur := r.a.Best(j)
		r.evals.Add(1)
		r.scratch[idx] = proposal[D]{d: d, gain: benefit - cur}
	}
	defer r.stopPool()
	loc, localized := a.(Localized[D])
	localized = localized && !opt.FullScan

	switch opt.Policy {
	case WinnerTakesAll:
		if localized {
			r.winnerDirty(loc)
		} else {
			r.winnerFullScan()
		}
	case RoundRobin:
		if localized {
			r.roundRobinDirty(loc)
		} else {
			r.roundRobinFullScan()
		}
	default:
		panic(fmt.Sprintf("game: unknown policy %d", int(opt.Policy)))
	}
	r.st.Evaluations = int(r.evals.Load())
	publishStats(opt.Obs, r.st)
	return r.st
}

// publishStats cross-wires the final Stats into the scope's registry.
// Both the returned struct and the counters are written from the same
// values in this one place, so the legacy fields and the metrics can
// never drift.
func publishStats(sc *obs.Scope, st Stats) {
	if !sc.Enabled() {
		return
	}
	sc.Count("game_runs_total", 1)
	sc.Count("game_rounds_total", int64(st.Rounds))
	sc.Count("game_updates_total", int64(st.Updates))
	sc.Count("game_evaluations_total", int64(st.Evaluations))
	if st.Converged {
		sc.Count("game_converged_runs_total", 1)
	}
	sc.SetGauge("game_last_frozen_players", float64(st.Frozen))
}

// traceRound records one dynamics round: a histogram sample of how many
// players were (re-)evaluated, and — when a tracer is attached — an
// instant event carrying the round's engine state plus any adapter
// RoundMetrics. Called from the serialized section of every loop driver
// after the round's commit, so the attributes reflect the profile the
// round produced; winner -1 marks a terminal (non-improving) round.
// With a nil scope this is one branch and zero allocations.
func (r *runner[D]) traceRound(winner int, gain float64, evaluated int) {
	sc := r.opt.Obs
	if sc == nil {
		return
	}
	sc.Observe("game_round_evals", float64(evaluated))
	if !sc.Tracing() {
		return
	}
	args := map[string]any{
		"round":   r.st.Rounds,
		"updates": r.st.Updates,
		"evals":   r.evals.Load(),
		"dirty":   evaluated,
		"winner":  winner,
		"gain":    gain,
	}
	if m, ok := r.a.(RoundMetrics); ok {
		m.RoundMetrics(func(key string, v float64) { args[key] = v })
	}
	sc.Instant("game", "round", args)
}

func (r *runner[D]) eligible(j int) bool {
	return r.opt.PerPlayerCap <= 0 || r.moves[j] < r.opt.PerPlayerCap
}

func (r *runner[D]) countFrozen() int {
	if r.opt.PerPlayerCap <= 0 {
		return 0
	}
	f := 0
	for _, m := range r.moves {
		if m >= r.opt.PerPlayerCap {
			f++
		}
	}
	return f
}

// eval refreshes player j's cached proposal.
func (r *runner[D]) eval(j int) {
	if !r.eligible(j) {
		r.props[j] = proposal[D]{gain: 0}
		return
	}
	d, benefit, cur := r.a.Best(j)
	r.evals.Add(1)
	r.props[j] = proposal[D]{d: d, gain: benefit - cur}
}

// startPool lazily launches the persistent scan workers. The worker
// count is pinned at first use; GOMAXPROCS changes after that point
// affect scheduling but not the chunking (which only has to be
// deterministic, and is — it depends on the count alone).
func (r *runner[D]) startPool() {
	if r.jobs != nil {
		return
	}
	r.workers = runtime.GOMAXPROCS(0)
	if r.workers > r.n {
		r.workers = r.n
	}
	r.jobs = make([]chan idxSpan, r.workers)
	if r.workers < 2 {
		return // forEach falls back to the inline loop
	}
	r.jobDone = make(chan struct{}, r.workers)
	for w := range r.jobs {
		ch := make(chan idxSpan)
		r.jobs[w] = ch
		go func(ch chan idxSpan) {
			for s := range ch {
				fn := r.parFn
				for idx := s.lo; idx < s.hi; idx++ {
					fn(idx)
				}
				r.jobDone <- struct{}{}
			}
		}(ch)
	}
}

// stopPool shuts the scan workers down at the end of Run.
func (r *runner[D]) stopPool() {
	for _, ch := range r.jobs {
		if ch != nil {
			close(ch)
		}
	}
	r.jobs = nil
}

// forEach runs fn over 0..count-1, fanning out to the worker pool when
// the parallel scan is enabled and worthwhile. fn must be one of the
// premade runner closures so steady-state rounds allocate nothing. The
// span partitioning is the same deterministic chunking the historical
// per-round goroutine fan-out used: workers write disjoint result
// slots, and every merge downstream walks index order, so the outcome
// is independent of worker scheduling.
func (r *runner[D]) forEach(count int, fn func(idx int)) {
	if !r.opt.Parallel || count < r.thresh {
		for idx := 0; idx < count; idx++ {
			fn(idx)
		}
		return
	}
	r.startPool()
	workers := r.workers
	if workers < 2 {
		for idx := 0; idx < count; idx++ {
			fn(idx)
		}
		return
	}
	if workers > count {
		workers = count
	}
	r.parFn = fn
	chunk := (count + workers - 1) / workers
	launched := 0
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, count)
		if lo >= hi {
			break
		}
		r.jobs[w] <- idxSpan{lo, hi}
		launched++
	}
	for ; launched > 0; launched-- {
		<-r.jobDone
	}
}

// scanAll refreshes every cached proposal (one full Algorithm 1 scan).
func (r *runner[D]) scanAll() {
	r.forEach(r.n, r.scanFn)
}

// winnerFullScan is the literal Algorithm 1 protocol: every round
// re-evaluates every player and commits the single largest improvement.
func (r *runner[D]) winnerFullScan() {
	for r.st.Updates < r.opt.MaxUpdates {
		r.st.Rounds++
		r.scanAll()
		winner := -1
		bestGain := r.opt.Epsilon
		for j := range r.props {
			if r.props[j].gain > bestGain {
				bestGain = r.props[j].gain
				winner = j
			}
		}
		if winner < 0 {
			r.st.Converged = true
			r.st.Frozen = r.countFrozen()
			r.traceRound(-1, 0, r.n)
			return
		}
		r.a.Apply(winner, r.props[winner].d)
		r.moves[winner]++
		r.st.Updates++
		r.traceRound(winner, bestGain, r.n)
	}
	r.st.Frozen = r.countFrozen()
}

// winnerDirty implements winner-takes-all over cached proposals: after a
// commit only the players the adapter reports as affected are
// re-evaluated, and the cached gains live in an indexed max-heap keyed
// (gain desc, player asc) — the same argmax-with-lowest-index-tie-break
// the full scan computes, so the move sequence is identical.
func (r *runner[D]) winnerDirty(loc Localized[D]) {
	n := r.n
	heapArr := make([]int, n) // player ids in heap order
	heapPos := make([]int, n) // player -> position in heapArr
	less := func(p, q int) bool {
		gp, gq := r.props[p].gain, r.props[q].gain
		if gp != gq {
			return gp > gq
		}
		return p < q
	}
	swap := func(a, b int) {
		heapArr[a], heapArr[b] = heapArr[b], heapArr[a]
		heapPos[heapArr[a]] = a
		heapPos[heapArr[b]] = b
	}
	down := func(pos int) {
		for {
			c := 2*pos + 1
			if c >= n {
				return
			}
			if c+1 < n && less(heapArr[c+1], heapArr[c]) {
				c++
			}
			if !less(heapArr[c], heapArr[pos]) {
				return
			}
			swap(pos, c)
			pos = c
		}
	}
	up := func(pos int) {
		for pos > 0 {
			parent := (pos - 1) / 2
			if !less(heapArr[pos], heapArr[parent]) {
				return
			}
			swap(pos, parent)
			pos = parent
		}
	}

	// seen/stamp dedupe the adapter's affected list into r.pending; the
	// parallel refresh fills r.scratch through the premade fillFn so
	// each heap key still changes one at a time (a batched overwrite
	// would break the sift invariant).
	r.pending = make([]int, 0, n)
	r.scratch = make([]proposal[D], 0, n)
	seen := make([]int, n)
	stamp := 0

	for r.st.Updates < r.opt.MaxUpdates {
		r.st.Rounds++
		evaluated := len(r.pending)
		if r.st.Rounds == 1 {
			evaluated = n
			r.scanAll()
			for j := 0; j < n; j++ {
				heapArr[j] = j
				heapPos[j] = j
			}
			for pos := n/2 - 1; pos >= 0; pos-- {
				down(pos)
			}
		} else {
			r.scratch = r.scratch[:len(r.pending)]
			r.forEach(len(r.pending), r.fillFn)
			for idx, j := range r.pending {
				r.props[j] = r.scratch[idx]
				pos := heapPos[j]
				up(pos)
				down(heapPos[j])
			}
		}
		winner := heapArr[0]
		if !(r.props[winner].gain > r.opt.Epsilon) {
			r.st.Converged = true
			r.st.Frozen = r.countFrozen()
			r.traceRound(-1, 0, evaluated)
			return
		}
		d := r.props[winner].d
		winnerGain := r.props[winner].gain
		stamp++
		r.pending = r.pending[:0]
		r.pending = append(r.pending, winner)
		seen[winner] = stamp
		for _, q := range loc.Affected(winner, d) {
			if q >= 0 && q < n && seen[q] != stamp {
				seen[q] = stamp
				r.pending = append(r.pending, q)
			}
		}
		r.a.Apply(winner, d)
		r.moves[winner]++
		r.st.Updates++
		r.traceRound(winner, winnerGain, evaluated)
	}
	r.st.Frozen = r.countFrozen()
}

// roundRobinFullScan evaluates every eligible player in index order each
// round, committing improvements immediately.
func (r *runner[D]) roundRobinFullScan() {
	for r.st.Updates < r.opt.MaxUpdates {
		r.st.Rounds++
		moved := false
		evaluated := 0
		for j := 0; j < r.n && r.st.Updates < r.opt.MaxUpdates; j++ {
			if !r.eligible(j) {
				continue
			}
			d, benefit, cur := r.a.Best(j)
			r.evals.Add(1)
			evaluated++
			if benefit-cur > r.opt.Epsilon {
				r.a.Apply(j, d)
				r.moves[j]++
				r.st.Updates++
				moved = true
			}
		}
		if !moved {
			r.st.Converged = true
			r.st.Frozen = r.countFrozen()
			r.traceRound(-1, 0, evaluated)
			return
		}
		r.traceRound(-1, 0, evaluated)
	}
	r.st.Frozen = r.countFrozen()
}

// roundRobinDirty skips players whose payoff landscape has not changed
// since their last (non-improving) evaluation. A skipped player would
// have re-evaluated to the same non-improving proposal, so the commit
// sequence, Rounds and Updates match the full scan exactly.
func (r *runner[D]) roundRobinDirty(loc Localized[D]) {
	dirty := make([]bool, r.n)
	for j := range dirty {
		dirty[j] = true
	}
	for r.st.Updates < r.opt.MaxUpdates {
		r.st.Rounds++
		moved := false
		evaluated := 0
		for j := 0; j < r.n && r.st.Updates < r.opt.MaxUpdates; j++ {
			if !r.eligible(j) || !dirty[j] {
				continue
			}
			d, benefit, cur := r.a.Best(j)
			r.evals.Add(1)
			evaluated++
			if benefit-cur > r.opt.Epsilon {
				for _, q := range loc.Affected(j, d) {
					if q >= 0 && q < r.n {
						dirty[q] = true
					}
				}
				r.a.Apply(j, d)
				r.moves[j]++
				r.st.Updates++
				moved = true
			}
			// j just evaluated (and, on a commit, moved to its own best
			// response): clean either way until someone else perturbs it.
			dirty[j] = false
		}
		if !moved {
			r.st.Converged = true
			r.st.Frozen = r.countFrozen()
			r.traceRound(-1, 0, evaluated)
			return
		}
		r.traceRound(-1, 0, evaluated)
	}
	r.st.Frozen = r.countFrozen()
}

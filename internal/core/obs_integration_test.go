package core

import (
	"bytes"
	"reflect"
	"testing"

	"idde/internal/obs"
)

// solveTraced runs one fully traced solve and returns the scope.
func solveTraced(t *testing.T, seed uint64, tracePotential bool) (*obs.Scope, *Result) {
	t.Helper()
	in := genInstance(t, 8, 40, 3, 1.0, seed)
	sc := obs.New()
	opt := DefaultOptions()
	opt.Obs = sc
	opt.TracePotential = tracePotential
	return sc, Solve(in, opt)
}

// TestTraceDeterminism is the observability regression the tooling
// relies on: two solves of the same seeded instance, each with a fresh
// scope, must serialize byte-identical JSONL traces — logical ticks and
// sorted-key JSON leave no room for run-to-run noise.
func TestTraceDeterminism(t *testing.T) {
	scA, _ := solveTraced(t, 7, true)
	scB, _ := solveTraced(t, 7, true)
	var a, b bytes.Buffer
	if err := scA.Tracer().WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := scB.Tracer().WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if a.Len() == 0 {
		t.Fatal("traced solve emitted no events")
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same-seed solves emitted different traces")
	}
}

// TestTraceContent checks the solver actually emits the advertised
// phase events with their domain attributes.
func TestTraceContent(t *testing.T) {
	sc, res := solveTraced(t, 11, true)
	var rounds, commits, begins, ends int
	var sawRAvg, sawPotential, sawDirty bool
	for _, ev := range sc.Tracer().Events() {
		switch {
		case ev.Cat == "solve" && ev.Ph == obs.PhaseBegin:
			begins++
		case ev.Cat == "solve" && ev.Ph == obs.PhaseEnd:
			ends++
		case ev.Cat == "game" && ev.Name == "round":
			rounds++
			if _, ok := ev.Args["r_avg"]; ok {
				sawRAvg = true
			}
			if _, ok := ev.Args["potential"]; ok {
				sawPotential = true
			}
			if _, ok := ev.Args["dirty"]; ok {
				sawDirty = true
			}
		case ev.Cat == "placement" && ev.Name == "commit":
			commits++
		}
	}
	if begins < 2 || ends < 2 {
		t.Errorf("expected phase1+phase2 spans, got %d begins / %d ends", begins, ends)
	}
	if rounds != res.Phase1.Rounds {
		t.Errorf("round events = %d, Phase1.Rounds = %d", rounds, res.Phase1.Rounds)
	}
	if commits != res.Replicas {
		t.Errorf("commit events = %d, Replicas = %d", commits, res.Replicas)
	}
	if !sawRAvg || !sawPotential || !sawDirty {
		t.Errorf("round attributes missing: r_avg=%v potential=%v dirty=%v",
			sawRAvg, sawPotential, sawDirty)
	}

	// Without TracePotential the expensive attribute must not appear.
	sc2, _ := solveTraced(t, 11, false)
	for _, ev := range sc2.Tracer().Events() {
		if ev.Cat == "game" && ev.Name == "round" {
			if _, ok := ev.Args["potential"]; ok {
				t.Fatal("potential recorded with TracePotential off")
			}
		}
	}
}

// TestScopeDoesNotPerturbSolve: attaching telemetry must be purely
// observational — strategy and stats identical to an untraced solve.
func TestScopeDoesNotPerturbSolve(t *testing.T) {
	in := genInstance(t, 8, 40, 3, 1.0, 13)
	plain := Solve(in, DefaultOptions())

	in2 := genInstance(t, 8, 40, 3, 1.0, 13)
	opt := DefaultOptions()
	opt.Obs = obs.New()
	opt.TracePotential = true
	traced := Solve(in2, opt)

	if !reflect.DeepEqual(plain.Strategy, traced.Strategy) {
		t.Fatal("telemetry changed the computed strategy")
	}
	if plain.AvgRate != traced.AvgRate || plain.AvgLatency != traced.AvgLatency ||
		plain.Replicas != traced.Replicas || plain.Phase1 != traced.Phase1 {
		t.Fatalf("telemetry changed reported stats: %+v vs %+v", plain, traced)
	}
}

// TestCrossWiredCounters: the registry metrics are written from the
// same values as the legacy stats structs, so they must agree exactly.
func TestCrossWiredCounters(t *testing.T) {
	sc, res := solveTraced(t, 17, false)
	reg := sc.Registry()
	checks := []struct {
		metric string
		want   int64
	}{
		{"game_rounds_total", int64(res.Phase1.Rounds)},
		{"game_updates_total", int64(res.Phase1.Updates)},
		{"game_evaluations_total", int64(res.Phase1.Evaluations)},
		{"solve_replicas_total", int64(res.Replicas)},
		{"placement_evaluations_total", int64(res.GainEvaluations)},
		{"placement_commits_total", int64(res.Replicas)},
		{"solve_runs_total", 1},
		{"game_runs_total", 1},
	}
	for _, c := range checks {
		if got := reg.Counter(c.metric).Value(); got != c.want {
			t.Errorf("%s = %d, want %d", c.metric, got, c.want)
		}
	}
	if g := reg.Gauge("solve_last_avg_rate_mbps").Value(); g != float64(res.AvgRate) {
		t.Errorf("solve_last_avg_rate_mbps = %g, want %g", g, float64(res.AvgRate))
	}
}

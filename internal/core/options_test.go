package core

import (
	"testing"

	"idde/internal/game"
)

// TestResolveGameOptionsDefaultsZeroValue: an unset zero-value
// game.Options must be replaced by the engine defaults.
func TestResolveGameOptionsDefaultsZeroValue(t *testing.T) {
	got := resolveGameOptions(game.Options{})
	if got != game.DefaultOptions() {
		t.Fatalf("zero-value options resolved to %+v, want DefaultOptions %+v",
			got, game.DefaultOptions())
	}
}

// TestResolveGameOptionsPreservesExplicitZero is the regression test for
// the silent-replacement bug: an intentionally all-zero configuration
// (sequential winner-takes-all, Epsilon 0, no caps) built with
// game.NewOptions must pass through verbatim instead of being swapped
// for the defaults.
func TestResolveGameOptionsPreservesExplicitZero(t *testing.T) {
	explicit := game.NewOptions(game.Options{})
	got := resolveGameOptions(explicit)
	if got != explicit {
		t.Fatalf("explicit all-zero options were replaced: got %+v", got)
	}
	if got.PerPlayerCap != 0 || got.Epsilon != 0 || got.Parallel {
		t.Fatalf("explicit zero configuration mutated: %+v", got)
	}
}

// TestResolveGameOptionsPassesThroughNonZero: any configured options
// survive untouched.
func TestResolveGameOptionsPassesThroughNonZero(t *testing.T) {
	o := game.Options{Policy: game.RoundRobin, Epsilon: 1e-6, MaxUpdates: 5}
	if got := resolveGameOptions(o); got != o {
		t.Fatalf("configured options mutated: got %+v want %+v", got, o)
	}
}

// TestSolveHonorsExplicitZeroGameOptions runs Solve end to end with an
// explicit all-zero game configuration and checks the configuration
// actually took effect: with no PerPlayerCap, no player can be frozen.
func TestSolveHonorsExplicitZeroGameOptions(t *testing.T) {
	in := genInstance(t, 6, 30, 4, 1.0, 3)
	res := Solve(in, Options{Game: game.NewOptions(game.Options{})})
	if res.Phase1.Frozen != 0 {
		t.Fatalf("explicit zero options (no PerPlayerCap) froze %d players — defaults leaked in",
			res.Phase1.Frozen)
	}
	if !res.Phase1.Converged {
		t.Fatalf("dynamics did not converge under explicit zero options: %+v", res.Phase1)
	}
}

// TestReferenceOptionsShape pins down what the reference configuration
// means: literal full-scan rounds over the naive interference evaluator,
// otherwise identical to the defaults.
func TestReferenceOptionsShape(t *testing.T) {
	ref := ReferenceOptions()
	if !ref.Game.FullScan || !ref.NaiveInterference {
		t.Fatalf("ReferenceOptions must force FullScan and NaiveInterference: %+v", ref)
	}
	want := game.DefaultOptions()
	want.FullScan = true
	if ref.Game != want {
		t.Fatalf("ReferenceOptions game config drifted from defaults: %+v", ref.Game)
	}
}

package core

import (
	"idde/internal/model"
	"idde/internal/shard"
)

// solveSharded delegates a Shards>0 solve to internal/shard, mapping
// the Options surface onto shard.Config and the shard.Result back onto
// the core Result. The option resolution (zero-value → defaults, Obs
// injection) happens inside shard.Solve with the same rules as the
// global path, so an explicit all-zero Game/Placement configuration
// behaves identically under both solvers.
func solveSharded(in *model.Instance, opt Options) *Result {
	sc := scopeOf(opt)
	g := opt.Game
	g.Obs = nil // the shard solver threads scopes per tile itself
	cfg := shard.Config{
		Tiles:             opt.Shards,
		HaloRounds:        opt.ShardHaloRounds,
		Game:              g,
		Placement:         opt.Placement,
		NaiveGreedy:       opt.NaiveGreedy,
		NaiveInterference: opt.NaiveInterference,
		NaiveLatency:      opt.NaiveLatency,
		CohortBatch:       opt.CohortBatch,
		AggRowBudget:      opt.AggRowBudget,
		NoSweepSkip:       opt.NoSweepSkip,
		Obs:               sc,
	}
	sres := shard.Solve(in, cfg)
	res := &Result{
		Strategy:         model.Strategy{Alloc: sres.Alloc, Delivery: sres.Delivery},
		AvgRate:          sres.AvgRate,
		AvgLatency:       in.AvgLatency(sres.Alloc, sres.Delivery),
		Phase1:           sres.Phase1,
		Replicas:         sres.Replicas,
		GainEvaluations:  sres.GainEvaluations,
		LatencyReduction: sres.LatencyReduction,
		Shard:            &sres.Stats,
		Phase1Time:       sres.Phase1Time + sres.SweepTime,
		Phase2Time:       sres.Phase2Time + sres.ReconcileTime,
	}
	if sc.Enabled() {
		sc.Count("solve_runs_total", 1)
		sc.Count("solve_replicas_total", int64(res.Replicas))
		sc.SetGauge("solve_last_avg_rate_mbps", float64(res.AvgRate))
		sc.SetGauge("solve_last_avg_latency_ms", res.AvgLatency.Millis())
		sc.SetGauge("solve_last_latency_reduction_s", float64(res.LatencyReduction))
		sc.SetGauge("solve_last_phase1_ms", float64(res.Phase1Time.Milliseconds()))
		sc.SetGauge("solve_last_phase2_ms", float64(res.Phase2Time.Milliseconds()))
	}
	return res
}

package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"idde/internal/model"
)

// TestPropertySolveAlwaysValid: IDDE-G produces a feasible strategy on
// arbitrary generated instances.
func TestPropertySolveAlwaysValid(t *testing.T) {
	f := func(seedRaw uint64, nRaw, mRaw, kRaw uint8) bool {
		n := 5 + int(nRaw)%15
		m := 20 + int(mRaw)%80
		k := 2 + int(kRaw)%5
		in := genInstance(t, n, m, k, 1.0, seedRaw)
		res := Solve(in, DefaultOptions())
		if in.Check(res.Strategy) != nil {
			return false
		}
		if res.AvgRate < 0 || res.AvgLatency < 0 {
			return false
		}
		// Every user with coverage ends up allocated (β(alloc) > 0 =
		// β(unallocated)).
		for j := 0; j < in.M(); j++ {
			if len(in.Top.Coverage[j]) > 0 && !res.Strategy.Alloc[j].Allocated() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestPropertyGreedyFeasiblePrefix: every prefix of the greedy's
// committed replicas is itself feasible — storage accounting never goes
// transiently negative or over budget.
func TestPropertyGreedyFeasiblePrefix(t *testing.T) {
	f := func(seedRaw uint64) bool {
		in := genInstance(t, 10, 50, 4, 1.0, seedRaw)
		res := Solve(in, DefaultOptions())
		// Rebuild the delivery replica by replica; Delivery.Place panics
		// on double placement, CheckDelivery catches over-capacity.
		d := model.NewDelivery(in.N(), in.K())
		for i := 0; i < in.N(); i++ {
			for k := 0; k < in.K(); k++ {
				if res.Strategy.Delivery.Placed(i, k) {
					d.Place(i, k, in.Wl.Items[k].Size)
					if in.CheckDelivery(d) != nil {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestPropertyMoreStorageNeverHurts: scaling every reservation up can
// only reduce (or keep) IDDE-G's average latency — greedy with a larger
// budget dominates, since any feasible profile stays feasible.
func TestPropertyMoreStorageNeverHurts(t *testing.T) {
	f := func(seedRaw uint64) bool {
		in := genInstance(t, 10, 60, 4, 1.0, seedRaw)
		base := Solve(in, DefaultOptions())

		big := *in.Wl
		big.Capacity = append(big.Capacity[:0:0], in.Wl.Capacity...)
		for i := range big.Capacity {
			big.Capacity[i] *= 2
		}
		in2, err := model.New(in.Top, &big, in.Radio)
		if err != nil {
			return false
		}
		bigRes := Solve(in2, DefaultOptions())
		// Allocation is storage-independent, so rates match and latency
		// is monotone.
		if bigRes.AvgRate != base.AvgRate {
			return false
		}
		return bigRes.AvgLatency <= base.AvgLatency+1e-12
	}
	// Greedy is a heuristic: capacity-scaling anomalies are possible in
	// principle, so this property is checked on a pinned sample rather
	// than a time-seeded one.
	cfg := &quick.Config{MaxCount: 8, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

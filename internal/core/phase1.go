package core

import (
	"idde/internal/model"
)

// allocGame adapts the IDDE-U game to the generic engine: player j's
// decision set δ_j is every channel of every covering server (Algorithm
// 1 lines 7–12) plus the current decision, and the payoff is the
// benefit function of Eq. (12). It also implements game.Localized, so
// the engine's dirty-set scheduler re-evaluates only the players a
// commit can actually perturb.
type allocGame struct {
	in *model.Instance
	l  *model.Ledger
	// aff is the reusable Affected buffer (Affected/Apply are
	// serialized by the engine).
	aff []int
	// tracePotential adds the Eq. 13 potential to every traced round
	// (see Options.TracePotential); RoundMetrics is only invoked on
	// traced runs, so the cost never reaches production paths.
	tracePotential bool
}

func (g *allocGame) NumPlayers() int { return g.in.M() }

func (g *allocGame) Best(j int) (model.Alloc, float64, float64) {
	cur := g.l.Current(j)
	curB := g.l.Benefit(j, cur)
	best, bestB := cur, curB
	for _, i := range g.in.Top.Coverage[j] {
		for x := 0; x < g.in.Top.Servers[i].Channels; x++ {
			a := model.Alloc{Server: i, Channel: x}
			if a == cur {
				continue
			}
			if b := g.l.Benefit(j, a); b > bestB {
				best, bestB = a, b
			}
		}
	}
	return best, bestB, curB
}

func (g *allocGame) Apply(j int, a model.Alloc) { g.l.Move(j, a) }

// RoundMetrics implements game.RoundMetrics: every traced round records
// the Eq. 5 average rate of the current profile (the convergence
// quantity Figures 3–6 report) and, under Options.TracePotential, the
// Eq. 13 ordinal potential whose monotone climb is Theorem 3's
// termination argument.
func (g *allocGame) RoundMetrics(put func(key string, v float64)) {
	put("r_avg", float64(g.l.AvgRate()))
	if g.tracePotential {
		put("potential", Potential(g.in, g.l.Alloc()))
	}
}

// Affected implements game.Localized. A commit by user j only mutates
// the two (server, channel) cells it leaves and enters, and player q's
// Eq. 12 benefit for any decision in δ_q reads exclusively channels of
// q's own covering servers (both the intra-channel sum and the
// inter-cell term of Eq. 2 range over V_q). So the players whose payoff
// landscape can change are exactly those covered by the source or the
// destination server — the inverted Coverage index U_i, precomputed as
// Top.Covered.
func (g *allocGame) Affected(j int, a model.Alloc) []int {
	aff := g.aff[:0]
	cur := g.l.Current(j)
	if cur.Allocated() {
		aff = append(aff, g.in.Top.Covered[cur.Server]...)
	}
	if a.Allocated() && (!cur.Allocated() || a.Server != cur.Server) {
		aff = append(aff, g.in.Top.Covered[a.Server]...)
	}
	g.aff = aff
	return aff
}

// Potential evaluates the IDDE-U potential function of Eq. (13) for an
// allocation profile. Following the printed formula (with the benefit
// shorthand b_j = β_{α_{-j}}(α_j) and T_j from Lemma 2):
//
//	π(α) = ½·Σ_j Σ_{q≠j} 1{α_j≠0}·1{α_q≠0}·b_j·b_q
//	       − Σ_j 1{α_j=0}·T_j·Σ_{q≠j} 1{α_q≠0}·b_q
//
// The Theorem 3 proof assumes uniform channel gains, and the function is
// an *ordinal* potential: committed best responses increase it. It is
// exposed for instrumentation and for the Theorem 3/4 empirical tests;
// the algorithm itself never needs to evaluate it.
func Potential(in *model.Instance, alloc model.Allocation) float64 {
	l := model.NewLedger(in, alloc)
	m := in.M()
	b := make([]float64, m)
	allocated := make([]bool, m)
	var sumB float64
	for j := 0; j < m; j++ {
		a := l.Current(j)
		if a.Allocated() {
			allocated[j] = true
			b[j] = l.Benefit(j, a)
			sumB += b[j]
		}
	}
	var pairs float64
	for j := 0; j < m; j++ {
		if allocated[j] {
			pairs += b[j] * (sumB - b[j])
		}
	}
	pi := pairs / 2
	for j := 0; j < m; j++ {
		if !allocated[j] {
			pi -= lemma2T(in, l, j) * sumB
		}
	}
	return pi
}

// lemma2T computes T_j of Lemma 2 for user j: the interference budget
// that still sustains R_{j,min}, the lowest channel rate available to j
// across its decision set under the current profile.
func lemma2T(in *model.Instance, l *model.Ledger, j int) float64 {
	rmin := in.Top.Users[j].MaxRate
	var bestG float64
	var bw = in.Top.Servers[0].Bandwidth
	found := false
	for _, i := range in.Top.Coverage[j] {
		if g := in.GainAt(i, j); g > bestG {
			bestG = g
			bw = in.Top.Servers[i].Bandwidth
		}
		for x := 0; x < in.Top.Servers[i].Channels; x++ {
			if r := l.Rate(j, model.Alloc{Server: i, Channel: x}); r < rmin {
				rmin = r
			}
			found = true
		}
	}
	if !found {
		return 0
	}
	return float64(in.Radio.Lemma2Bound(bestG, in.Top.Users[j].Power, rmin, bw))
}

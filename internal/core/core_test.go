package core

import (
	"math"
	"testing"

	"idde/internal/game"
	"idde/internal/model"
	"idde/internal/radio"
	"idde/internal/rng"
	"idde/internal/topology"
	"idde/internal/workload"
)

func genInstance(t *testing.T, n, m, k int, density float64, seed uint64) *model.Instance {
	t.Helper()
	s := rng.New(seed)
	top, err := topology.Generate(topology.DefaultGen(n, m, density), s.Split("top"))
	if err != nil {
		t.Fatalf("topology: %v", err)
	}
	wl, err := workload.Generate(workload.DefaultGen(k), n, m, s.Split("wl"))
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	in, err := model.New(top, wl, radio.Default())
	if err != nil {
		t.Fatalf("model: %v", err)
	}
	return in
}

func TestSolveProducesValidStrategy(t *testing.T) {
	for _, tc := range []struct{ n, m, k int }{
		{10, 50, 3},
		{20, 120, 5},
		{30, 200, 5},
	} {
		in := genInstance(t, tc.n, tc.m, tc.k, 1.0, uint64(tc.n))
		res := Solve(in, DefaultOptions())
		if err := in.Check(res.Strategy); err != nil {
			t.Fatalf("N=%d M=%d: invalid strategy: %v", tc.n, tc.m, err)
		}
		if !res.Phase1.Converged {
			t.Errorf("N=%d M=%d: Phase 1 did not converge", tc.n, tc.m)
		}
		if res.AvgRate <= 0 {
			t.Errorf("N=%d M=%d: zero average rate", tc.n, tc.m)
		}
		if res.AvgLatency < 0 {
			t.Errorf("negative latency")
		}
	}
}

func TestSolveAllocatesEveryUser(t *testing.T) {
	// β(unallocated)=0 and every user has a covering server, so the
	// equilibrium allocates everyone ("all the users can be allocated
	// in IDDE scenarios", Theorem 5 proof).
	in := genInstance(t, 20, 150, 4, 1.0, 7)
	res := Solve(in, DefaultOptions())
	if got := res.Strategy.Alloc.AllocatedCount(); got != in.M() {
		t.Errorf("allocated %d of %d users", got, in.M())
	}
}

func TestPhase1IterationBound(t *testing.T) {
	// Theorem 4 bounds updates by M(Q²max−Q²min)/(2Qmin) with
	// instance-specific constants; the practical reading is "linear-ish
	// in M". Assert a generous linear envelope.
	for _, m := range []int{50, 150, 300} {
		in := genInstance(t, 25, m, 5, 1.0, uint64(m))
		res := Solve(in, DefaultOptions())
		if !res.Phase1.Converged {
			t.Fatalf("M=%d: did not converge", m)
		}
		if res.Phase1.Updates > 20*m {
			t.Errorf("M=%d: %d updates exceeds 20·M envelope", m, res.Phase1.Updates)
		}
	}
}

func TestNashEquilibriumNoImprovingDeviation(t *testing.T) {
	// With heterogeneous gains the IDDE-U game can cycle (see
	// TestBestResponseCanCycleWithoutCap), so IDDE-G freezes serial
	// cyclers after a bounded update budget. The fixed point is a Nash
	// equilibrium of the non-frozen players: only frozen users may
	// retain improving deviations, and they must be few.
	in := genInstance(t, 15, 100, 4, 1.0, 11)
	res := Solve(in, DefaultOptions())
	l := model.NewLedger(in, res.Strategy.Alloc)
	deviators := 0
	for j := 0; j < in.M(); j++ {
		cur := l.Benefit(j, l.Current(j))
		for _, i := range in.Top.Coverage[j] {
			for x := 0; x < in.Top.Servers[i].Channels; x++ {
				if b := l.Benefit(j, model.Alloc{Server: i, Channel: x}); b > cur+1e-9 {
					deviators++
					x = in.Top.Servers[i].Channels // next user
					break
				}
			}
		}
	}
	if deviators > res.Phase1.Frozen {
		t.Errorf("%d users hold improving deviations but only %d were frozen",
			deviators, res.Phase1.Frozen)
	}
	if res.Phase1.Frozen > in.M()/10 {
		t.Errorf("too many frozen users: %d of %d", res.Phase1.Frozen, in.M())
	}
}

// TestBestResponseCanCycleWithoutCap documents the counterexample to the
// paper's Theorem 3 in the heterogeneous-gain setting: on this instance,
// uncapped winner-takes-all best-response dynamics enter a two-user
// pursuit cycle and never converge, while the capped dynamics terminate.
// (The theorem's proof assumes uniform channel gains.)
func TestBestResponseCanCycleWithoutCap(t *testing.T) {
	in := genInstance(t, 10, 50, 3, 1.0, 10)
	uncapped := DefaultOptions()
	uncapped.Game.PerPlayerCap = 0
	uncapped.Game.MaxUpdates = 5000
	if res := Solve(in, uncapped); res.Phase1.Converged {
		t.Skip("instance no longer cycles; counterexample lost")
	}
	capped := Solve(in, DefaultOptions())
	if !capped.Phase1.Converged {
		t.Error("capped dynamics did not terminate")
	}
	if capped.Phase1.Frozen == 0 {
		t.Error("expected at least one frozen cycler")
	}
}

func TestLazyAndNaiveGreedyIdentical(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		in := genInstance(t, 15, 80, 5, 1.2, seed)
		optLazy := DefaultOptions()
		optNaive := DefaultOptions()
		optNaive.NaiveGreedy = true
		a := Solve(in, optLazy)
		b := Solve(in, optNaive)
		if a.Replicas != b.Replicas {
			t.Fatalf("seed %d: replica counts differ: %d vs %d", seed, a.Replicas, b.Replicas)
		}
		for i := 0; i < in.N(); i++ {
			for k := 0; k < in.K(); k++ {
				if a.Strategy.Delivery.Placed(i, k) != b.Strategy.Delivery.Placed(i, k) {
					t.Fatalf("seed %d: deliveries differ at (%d,%d)", seed, i, k)
				}
			}
		}
		if a.GainEvaluations > b.GainEvaluations {
			t.Errorf("seed %d: lazy used more evaluations (%d) than naive (%d)",
				seed, a.GainEvaluations, b.GainEvaluations)
		}
	}
}

func TestInterferenceAwareBeatsNearestAllocation(t *testing.T) {
	// The point of Phase 1: against a gain-greedy (nearest server,
	// first channel) allocation, the equilibrium achieves a higher
	// average data rate.
	in := genInstance(t, 20, 250, 5, 1.0, 13)
	res := Solve(in, DefaultOptions())
	naive := model.NewAllocation(in.M())
	for j := 0; j < in.M(); j++ {
		best, bestG := -1, -1.0
		for _, i := range in.Top.Coverage[j] {
			if g := in.GainAt(i, j); g > bestG {
				best, bestG = i, g
			}
		}
		naive[j] = model.Alloc{Server: best, Channel: 0}
	}
	naiveRate := in.AvgRate(naive)
	if res.AvgRate <= naiveRate {
		t.Errorf("IDDE-G rate %v not above naive nearest-server rate %v", res.AvgRate, naiveRate)
	}
}

func TestDeliveryImprovesOnAllCloud(t *testing.T) {
	in := genInstance(t, 20, 150, 5, 1.0, 17)
	res := Solve(in, DefaultOptions())
	cloudOnly := in.AvgLatency(res.Strategy.Alloc, model.NewDelivery(in.N(), in.K()))
	if res.AvgLatency >= cloudOnly {
		t.Errorf("delivery latency %v not below all-cloud %v", res.AvgLatency, cloudOnly)
	}
	if res.LatencyReduction <= 0 {
		t.Errorf("no latency reduction recorded")
	}
	// ΔL consistency: reduction ≈ (cloudOnly − final)·requests.
	reqs := float64(in.Wl.TotalRequests())
	gotΔ := float64(res.LatencyReduction)
	wantΔ := (float64(cloudOnly) - float64(res.AvgLatency)) * reqs
	if math.Abs(gotΔ-wantΔ) > 1e-9*math.Max(1, wantΔ) {
		t.Errorf("ΔL = %v, want %v", gotΔ, wantΔ)
	}
}

func TestSolveDeterministic(t *testing.T) {
	in := genInstance(t, 15, 100, 4, 1.0, 19)
	a := Solve(in, DefaultOptions())
	b := Solve(in, DefaultOptions())
	if a.AvgRate != b.AvgRate || a.AvgLatency != b.AvgLatency ||
		a.Phase1.Updates != b.Phase1.Updates || a.Replicas != b.Replicas {
		t.Error("Solve is not deterministic on a fixed instance")
	}
}

func TestRoundRobinReachesEquivalentQuality(t *testing.T) {
	in := genInstance(t, 20, 150, 5, 1.0, 23)
	wta := Solve(in, DefaultOptions())
	rr := DefaultOptions()
	rr.Game.Policy = game.RoundRobin
	fast := Solve(in, rr)
	if !fast.Phase1.Converged {
		t.Fatal("round-robin did not converge")
	}
	// Both are Nash equilibria; allow a modest gap between them.
	lo, hi := float64(wta.AvgRate)*0.85, float64(wta.AvgRate)*1.15
	if got := float64(fast.AvgRate); got < lo || got > hi {
		t.Errorf("round-robin rate %v far from winner-takes-all %v", got, wta.AvgRate)
	}
	if fast.Phase1.Rounds >= wta.Phase1.Rounds {
		t.Errorf("round-robin rounds %d not fewer than winner rounds %d",
			fast.Phase1.Rounds, wta.Phase1.Rounds)
	}
}

func TestPotentialRisesFromEmptyProfile(t *testing.T) {
	in := genInstance(t, 12, 60, 3, 1.0, 29)
	empty := model.NewAllocation(in.M())
	if p := Potential(in, empty); p != 0 {
		t.Errorf("potential of all-unallocated profile = %v, want 0", p)
	}
	res := Solve(in, DefaultOptions())
	if p := Potential(in, res.Strategy.Alloc); p <= 0 {
		t.Errorf("equilibrium potential = %v, want > 0", p)
	}
}

// TestMoverBenefitStrictlyImproves verifies the improvement-path
// property every committed move must satisfy (the premise of the
// Theorem 3 potential argument): the winner's own benefit strictly
// increases at each commit.
func TestMoverBenefitStrictlyImproves(t *testing.T) {
	s := rng.New(31)
	top, err := topology.Generate(topology.DefaultGen(8, 40, 1.0), s.Split("top"))
	if err != nil {
		t.Fatal(err)
	}
	wl, err := workload.Generate(workload.DefaultGen(3), 8, 40, s.Split("wl"))
	if err != nil {
		t.Fatal(err)
	}
	in, err := model.New(top, wl, radio.Default())
	if err != nil {
		t.Fatal(err)
	}
	ledger := model.NewLedger(in, model.NewAllocation(in.M()))
	adapter := &auditedAlloc{inner: &allocGame{in: in, l: ledger}, t: t}
	st := game.Run[model.Alloc](adapter, game.DefaultOptions())
	if !st.Converged {
		t.Fatal("game did not converge")
	}
	if adapter.commits == 0 {
		t.Fatal("no moves committed")
	}
}

type auditedAlloc struct {
	inner   *allocGame
	t       *testing.T
	commits int
}

func (a *auditedAlloc) NumPlayers() int { return a.inner.NumPlayers() }
func (a *auditedAlloc) Best(j int) (model.Alloc, float64, float64) {
	return a.inner.Best(j)
}
func (a *auditedAlloc) Apply(j int, d model.Alloc) {
	before := a.inner.l.Benefit(j, a.inner.l.Current(j))
	a.inner.Apply(j, d)
	after := a.inner.l.Benefit(j, a.inner.l.Current(j))
	if after <= before {
		a.t.Fatalf("move for user %d did not improve benefit: %v -> %v", j, before, after)
	}
	a.commits++
}

func TestSolveDeliveryStandalone(t *testing.T) {
	in := genInstance(t, 12, 60, 4, 1.0, 37)
	alloc := model.NewAllocation(in.M())
	for j := 0; j < in.M(); j++ {
		i := in.Top.Coverage[j][0]
		alloc[j] = model.Alloc{Server: i, Channel: j % in.Top.Servers[i].Channels}
	}
	d, pres := SolveDelivery(in, alloc, false)
	if err := in.CheckDelivery(d); err != nil {
		t.Fatalf("delivery invalid: %v", err)
	}
	if pres.TotalGain <= 0 {
		t.Error("no gain from standalone delivery")
	}
}

func TestPhase2NeverPlacesUselessReplicas(t *testing.T) {
	in := genInstance(t, 15, 80, 5, 1.5, 41)
	res := Solve(in, DefaultOptions())
	// Removing any single replica must increase (or keep) latency:
	// every placed replica was committed with positive gain, and greedy
	// gains are realized.
	base := float64(res.AvgLatency)
	for i := 0; i < in.N(); i++ {
		for k := 0; k < in.K(); k++ {
			if !res.Strategy.Delivery.Placed(i, k) {
				continue
			}
			d := model.NewDelivery(in.N(), in.K())
			for i2 := 0; i2 < in.N(); i2++ {
				for k2 := 0; k2 < in.K(); k2++ {
					if res.Strategy.Delivery.Placed(i2, k2) && !(i2 == i && k2 == k) {
						d.Place(i2, k2, in.Wl.Items[k2].Size)
					}
				}
			}
			if got := float64(in.AvgLatency(res.Strategy.Alloc, d)); got < base-1e-12 {
				t.Fatalf("removing replica (%d,%d) improved latency: %v < %v", i, k, got, base)
			}
		}
	}
}

// Package core implements IDDE-G, the paper's proposed approach
// (Algorithm 1): a two-phase heuristic for the Interference-aware Data
// Delivery at the network Edge problem.
//
// Phase 1 plays the IDDE-U game — every user repeatedly best-responds to
// the benefit function of Eq. (12) over its decision set δ_j (every
// channel of every covering server), with one winning update committed
// per round — until a Nash equilibrium is reached. Theorem 3 shows the
// game is an (ordinal) potential game, so the dynamics terminate;
// Theorem 4 bounds the number of committed updates.
//
// Phase 2 greedily builds the data delivery profile: it repeatedly
// commits the decision σ_{i,k} with the highest ratio of total latency
// reduction over consumed storage (Eq. 17), subject to the Eq. (6)
// reservations, until no feasible decision reduces latency. Theorems 6–7
// bound the gap to the optimal delivery profile.
package core

import (
	"time"

	"idde/internal/game"
	"idde/internal/model"
	"idde/internal/obs"
	"idde/internal/placement"
	"idde/internal/shard"
	"idde/internal/units"
)

// Options tunes IDDE-G.
type Options struct {
	// Game configures the Phase 1 best-response dynamics. The zero
	// value is replaced by game.DefaultOptions(); an intentionally
	// all-zero configuration must carry game.Options.Set (see
	// game.NewOptions) to be preserved.
	Game game.Options
	// NaiveGreedy switches Phase 2 from the lazy (CELF) evaluator to
	// the literal re-scan-everything loop of Algorithm 1; the output is
	// identical, only the oracle-call count differs. Used for
	// differential tests and the ablation bench.
	NaiveGreedy bool
	// NaiveInterference switches the Phase 1 ledger to the O(occupancy)
	// reference scan for the Eq. 2 inter-cell term instead of the
	// incremental aggregates. Results agree up to floating-point
	// summation order; used for differential tests, drift-sensitive
	// debugging and the perf baseline.
	NaiveInterference bool
	// NaiveLatency switches the Phase 2 oracle from the cohort-aggregated
	// suffix queries back to the per-request LatencyState walk. Gains
	// agree up to floating-point summation order and the committed
	// replica sequences are identical; used for differential tests and
	// the Phase 2 perf baseline.
	NaiveLatency bool
	// CohortBatch switches Phase 2 to the Commit-batching oracle
	// (model.BatchCohortLatencyState) and enables per-item staleness
	// epochs in the CELF engine (placement.Options.ItemLocalGains).
	// Gains, totals and committed replica sequences are bit-identical
	// to the default cohort oracle; memory drops from O(requests) to
	// O(cohorts) and deep replica budgets stop paying a per-Commit
	// suffix rebuild. Ignored when NaiveLatency is set (the two select
	// different oracles for the same slot).
	CohortBatch bool
	// AggRowBudget caps how many Phase 1 interference aggregate rows
	// stay resident at once (0 = unlimited). Evaluations against
	// non-resident receivers use a bit-identical per-cell fold, so the
	// equilibrium is unchanged; peak aggregate memory shrinks from
	// O(N²·K̄) toward O(budget·N) at the price of wall-clock on cold
	// receivers. See model.Ledger.SetAggRowBudget.
	AggRowBudget int
	// Placement configures the Phase 2 greedy engine (parallel seed
	// scan). The zero value is replaced by placement.DefaultOptions();
	// an intentionally all-zero configuration must carry
	// placement.Options.Set (see placement.NewOptions) to be preserved.
	Placement placement.Options
	// DenseInstance solves on the dense-materialized sibling of the
	// instance (model.Instance.Densified): every gain read hits an N×M
	// matrix instead of the CSR rows. The arithmetic is identical — the
	// sparse layout recomputes out-of-support gains exactly — so results
	// are bit-identical; this is the reference mode the sparse-vs-dense
	// differential suite pins, and a memory-for-speed escape hatch on
	// small instances.
	DenseInstance bool
	// NoSweepSkip disables the sharded halo-exchange's clean-tile skip
	// (shard.Config.NoSweepSkip). Ignored when Shards is 0.
	NoSweepSkip bool
	// Shards switches Solve to the geo-sharded solver (internal/shard):
	// the instance is partitioned into that many coverage-connected
	// tiles, both phases run per tile on their own worker/ledger/arena,
	// and a bounded deterministic halo-exchange plus a global CELF
	// reconcile pass stitch the boundary back together. 0 (the default)
	// keeps the global path; Shards=1 is bit-identical to it (pinned by
	// shard_differential_test.go). Multi-tile results are deterministic
	// and GOMAXPROCS-independent but approximate near tile boundaries;
	// per-tile row budgets reuse AggRowBudget.
	Shards int
	// ShardHaloRounds caps the halo-exchange sweeps of a sharded solve
	// (0 = shard.DefaultHaloRounds, negative = no exchange). Ignored
	// when Shards is 0.
	ShardHaloRounds int
	// Obs receives the solver's telemetry and is threaded into both
	// phase engines: phase spans, per-round / per-commit trace events,
	// counters cross-wired from game.Stats and placement.Result, and
	// the Ledger's AggMemStats gauges. nil (the default) disables all
	// of it; the solution is identical either way. The scope set here
	// wins over any scope carried inside Game/Placement.
	Obs *obs.Scope
	// TracePotential additionally evaluates the Eq. 13 potential
	// function after every Phase 1 round and attaches it to the round's
	// trace event. Potential is O(M²)-ish per evaluation, so this is
	// for convergence studies on Table 2-sized instances; it is ignored
	// unless Obs has a tracer attached.
	TracePotential bool
}

// DefaultOptions returns the configuration used in the experiments.
func DefaultOptions() Options {
	return Options{Game: game.DefaultOptions()}
}

// ReferenceOptions returns the unoptimized literal-Algorithm-1
// configuration: full-scan rounds (no dirty-set scheduling) over the
// naive O(occupancy) interference evaluator, and the literal Phase 2
// argmax re-scan over the per-request latency walk with sequential
// seeding. It is behavior-identical to DefaultOptions up to
// floating-point summation order and serves as the differential-test
// and perf-baseline reference.
func ReferenceOptions() Options {
	g := game.DefaultOptions()
	g.FullScan = true
	return Options{
		Game:              g,
		NaiveInterference: true,
		NaiveGreedy:       true,
		NaiveLatency:      true,
		Placement:         placement.NewOptions(placement.Options{}),
	}
}

// resolveGameOptions replaces an unset zero-value game.Options with the
// defaults. Explicitly configured options — even all-zero ones, which
// carry game.Options.Set — pass through verbatim. A telemetry scope is
// not configuration: it is stripped before the zero-value comparison
// and re-attached, so Options{Obs: sc} still resolves to the defaults.
func resolveGameOptions(o game.Options) game.Options {
	sc := o.Obs
	o.Obs = nil
	if o == (game.Options{}) {
		o = game.DefaultOptions()
	}
	o.Obs = sc
	return o
}

// resolvePlacementOptions is the placement.Options analogue.
func resolvePlacementOptions(o placement.Options) placement.Options {
	sc := o.Obs
	o.Obs = nil
	if o == (placement.Options{}) {
		o = placement.DefaultOptions()
	}
	o.Obs = sc
	return o
}

// Result carries the strategy and the instrumentation the theorems talk
// about.
type Result struct {
	Strategy model.Strategy

	// AvgRate is objective #1 (Eq. 5) under the strategy.
	AvgRate units.Rate
	// AvgLatency is objective #2 (Eq. 9) under the strategy.
	AvgLatency units.Seconds

	// Phase1 reports the game dynamics: Updates is the iteration count
	// bounded by Theorem 4.
	Phase1 game.Stats
	// Replicas is the number of committed delivery decisions.
	Replicas int
	// GainEvaluations counts Phase 2 oracle calls (CELF efficiency).
	GainEvaluations int
	// LatencyReduction is ΔL(σ) of Eq. 25: total latency saved versus
	// all-cloud delivery. For sharded solves it sums tile-local and
	// reconcile gains (exact at Shards=1; see shard.Result).
	LatencyReduction units.Seconds

	// Shard carries the sharding accounting of a Shards>0 solve: tile
	// balance, frontier/halo sizes, sweep convergence and the reconcile
	// pass. nil for the global path.
	Shard *shard.Stats

	Phase1Time, Phase2Time time.Duration
}

// SolvePhase1 runs Phase 1 alone — the IDDE-U best-response game from
// the all-unallocated profile — and returns the equilibrium allocation
// with the dynamics stats. Perf baselines use it to time Phase 1
// without Phase 2 noise; Solve goes through the same path.
func SolvePhase1(in *model.Instance, opt Options) (model.Allocation, game.Stats) {
	if opt.DenseInstance {
		in = in.Densified()
	}
	opt.Game = resolveGameOptions(opt.Game)
	sc := scopeOf(opt)
	opt.Game.Obs = sc
	ledger := model.NewLedger(in, model.NewAllocation(in.M()))
	if opt.NaiveInterference {
		ledger.SetNaiveInterference(true)
	}
	if opt.AggRowBudget > 0 {
		ledger.SetAggRowBudget(opt.AggRowBudget)
	}
	adapter := &allocGame{in: in, l: ledger, tracePotential: opt.TracePotential}
	sc.Begin("solve", "phase1", nil)
	st := game.Run[model.Alloc](adapter, opt.Game)
	sc.End("solve", "phase1")
	publishAggStats(sc, ledger)
	return ledger.Alloc(), st
}

// scopeOf resolves the solver-level telemetry scope: Options.Obs wins,
// else a scope already carried by the resolved game options (set by a
// caller that configured the engine directly).
func scopeOf(opt Options) *obs.Scope {
	if opt.Obs != nil {
		return opt.Obs
	}
	return opt.Game.Obs
}

// publishAggStats snapshots the ledger's aggregate-row memory
// accounting (model.AggMemStats) into gauges and, when tracing, an
// instant event. Called after Phase 1 returns — a quiescent point, as
// AggMemStats requires.
func publishAggStats(sc *obs.Scope, l *model.Ledger) {
	if !sc.Enabled() {
		return
	}
	st := l.AggMemStats()
	sc.SetGauge("agg_resident_rows", float64(st.ResidentRows))
	sc.SetGauge("agg_ever_built_rows", float64(st.EverBuiltRows))
	sc.SetGauge("agg_row_budget", float64(st.RowBudget))
	sc.SetGauge("agg_arena_bytes", float64(st.ArenaBytes))
	sc.SetGauge("agg_in_use_bytes", float64(st.InUseBytes))
	sc.SetGauge("agg_dense_equiv_bytes", float64(st.DenseEquivBytes))
	sc.Count("agg_evictions_total", st.Evictions)
	sc.Count("agg_fallback_evals_total", st.FallbackEvals)
	if !sc.Tracing() {
		return
	}
	sc.Instant("solve", "agg_mem", map[string]any{
		"resident_rows":     st.ResidentRows,
		"ever_built_rows":   st.EverBuiltRows,
		"row_budget":        st.RowBudget,
		"arena_bytes":       st.ArenaBytes,
		"in_use_bytes":      st.InUseBytes,
		"dense_equiv_bytes": st.DenseEquivBytes,
		"evictions":         st.Evictions,
		"fallback_evals":    st.FallbackEvals,
	})
}

// Solve runs IDDE-G on the instance.
func Solve(in *model.Instance, opt Options) *Result {
	if opt.DenseInstance {
		in = in.Densified()
	}
	if opt.Shards > 0 {
		return solveSharded(in, opt)
	}
	opt.Game = resolveGameOptions(opt.Game)
	sc := scopeOf(opt)
	opt.Game.Obs = sc
	res := &Result{}

	// Phase 1 — IDDE-U game for the user allocation profile.
	t0 := time.Now()
	ledger := model.NewLedger(in, model.NewAllocation(in.M()))
	if opt.NaiveInterference {
		ledger.SetNaiveInterference(true)
	}
	if opt.AggRowBudget > 0 {
		ledger.SetAggRowBudget(opt.AggRowBudget)
	}
	adapter := &allocGame{in: in, l: ledger, tracePotential: opt.TracePotential}
	sc.Begin("solve", "phase1", nil)
	res.Phase1 = game.Run[model.Alloc](adapter, opt.Game)
	sc.End("solve", "phase1")
	publishAggStats(sc, ledger)
	alloc := ledger.Alloc()
	res.Phase1Time = time.Since(t0)

	// Phase 2 — greedy data delivery profile.
	t1 := time.Now()
	delivery, pres := solveDelivery(in, alloc, opt)
	res.Phase2Time = time.Since(t1)

	res.Strategy = model.Strategy{Alloc: alloc, Delivery: delivery}
	res.Replicas = len(pres.Chosen)
	res.GainEvaluations = pres.Evaluations
	res.LatencyReduction = units.Seconds(pres.TotalGain)
	res.AvgRate = ledger.AvgRate()
	res.AvgLatency = in.AvgLatency(alloc, delivery)
	if sc.Enabled() {
		// Cross-wire the Result instrumentation; wall-clock stays out
		// of the trace (logical ticks only) but is fine in gauges.
		sc.Count("solve_runs_total", 1)
		sc.Count("solve_replicas_total", int64(res.Replicas))
		sc.SetGauge("solve_last_avg_rate_mbps", float64(res.AvgRate))
		sc.SetGauge("solve_last_avg_latency_ms", res.AvgLatency.Millis())
		sc.SetGauge("solve_last_latency_reduction_s", float64(res.LatencyReduction))
		sc.SetGauge("solve_last_phase1_ms", float64(res.Phase1Time.Milliseconds()))
		sc.SetGauge("solve_last_phase2_ms", float64(res.Phase2Time.Milliseconds()))
	}
	return res
}

// SolveDelivery exposes Phase 2 alone for a caller-supplied allocation
// (the CDP baseline reuses it with its own allocation rule). The naive
// flag toggles the greedy engine only (literal re-scan vs CELF); both
// run the cohort oracle, so their gains — not just their sequences —
// match exactly. Use SolveDeliveryOpt for full oracle/engine control.
func SolveDelivery(in *model.Instance, alloc model.Allocation, naive bool) (*model.Delivery, placement.Result) {
	return solveDelivery(in, alloc, Options{NaiveGreedy: naive})
}

// SolveDeliveryOpt exposes Phase 2 alone with the full Options surface:
// oracle choice (NaiveLatency), greedy engine (NaiveGreedy) and seed
// scan configuration (Placement).
func SolveDeliveryOpt(in *model.Instance, alloc model.Allocation, opt Options) (*model.Delivery, placement.Result) {
	return solveDelivery(in, alloc, opt)
}

func solveDelivery(in *model.Instance, alloc model.Allocation, opt Options) (*model.Delivery, placement.Result) {
	oracle := &deliveryOracle{
		in: in,
		d:  model.NewDelivery(in.N(), in.K()),
	}
	switch {
	case opt.NaiveLatency:
		oracle.ls = model.NewLatencyState(in, alloc)
	case opt.CohortBatch:
		oracle.ls = model.NewBatchCohortLatencyState(in, alloc)
	default:
		oracle.ls = model.NewCohortLatencyState(in, alloc)
	}
	// Skip items nobody requests: their gain is identically zero, so
	// they can never be committed — no need to seed or re-scan them.
	requested := make([]bool, in.K())
	for _, items := range in.Wl.Requests {
		for _, k := range items {
			requested[k] = true
		}
	}
	cands := make([]placement.Candidate, 0, in.N()*in.K())
	for i := 0; i < in.N(); i++ {
		for k := 0; k < in.K(); k++ {
			if !requested[k] {
				continue
			}
			cands = append(cands, placement.Candidate{Server: i, Item: k})
		}
	}
	sc := scopeOf(opt)
	sc.Begin("solve", "phase2", nil)
	var pres placement.Result
	if opt.NaiveGreedy {
		pres = placement.GreedyOpt(cands, oracle, placement.Options{Obs: sc})
	} else {
		popt := resolvePlacementOptions(opt.Placement)
		if sc != nil {
			popt.Obs = sc
		}
		if opt.CohortBatch && !opt.NaiveLatency {
			// The batch oracle's cohorts are partitioned by item, so a
			// Commit can only move gains of its own item: per-item
			// staleness epochs skip provably identical refreshes.
			popt.ItemLocalGains = true
		}
		pres = placement.LazyGreedyOpt(cands, oracle, popt)
	}
	sc.End("solve", "phase2")
	return oracle.d, pres
}

// deliveryOracle adapts the incremental latency state and the delivery
// profile to the placement engine.
type deliveryOracle struct {
	in *model.Instance
	ls model.DeliveryOracle
	d  *model.Delivery
}

func (o *deliveryOracle) Gain(c placement.Candidate) float64 {
	return float64(o.ls.GainOf(c.Server, c.Item))
}

func (o *deliveryOracle) Cost(c placement.Candidate) float64 {
	return float64(o.in.Wl.Items[c.Item].Size)
}

func (o *deliveryOracle) Feasible(c placement.Candidate) bool {
	if o.d.Placed(c.Server, c.Item) {
		return false
	}
	size := o.in.Wl.Items[c.Item].Size
	return o.d.Used(c.Server)+size <= o.in.Wl.Capacity[c.Server]
}

func (o *deliveryOracle) Commit(c placement.Candidate) float64 {
	o.d.Place(c.Server, c.Item, o.in.Wl.Items[c.Item].Size)
	return float64(o.ls.Commit(c.Server, c.Item))
}

package optimal

import (
	"math"
	"testing"

	"idde/internal/core"
	"idde/internal/model"
	"idde/internal/radio"
	"idde/internal/rng"
	"idde/internal/topology"
	"idde/internal/units"
	"idde/internal/workload"
)

// tinyInstance builds an exhaustively-searchable instance: few users,
// two channels per server, a small catalog.
func tinyInstance(t *testing.T, n, m, k int, seed uint64) *model.Instance {
	t.Helper()
	s := rng.New(seed)
	tc := topology.DefaultGen(n, m, 1.0)
	tc.Channels = 2
	top, err := topology.Generate(tc, s.Split("top"))
	if err != nil {
		t.Fatalf("topology: %v", err)
	}
	wc := workload.DefaultGen(k)
	wc.Capacity = [2]units.MegaBytes{60, 120}
	wl, err := workload.Generate(wc, n, m, s.Split("wl"))
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	in, err := model.New(top, wl, radio.Default())
	if err != nil {
		t.Fatalf("model: %v", err)
	}
	return in
}

func TestBestAllocationDominatesEquilibrium(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		in := tinyInstance(t, 3, 5, 2, seed)
		res := core.Solve(in, core.DefaultOptions())
		_, opt, err := BestAllocation(in)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if float64(res.AvgRate) > float64(opt)+1e-9 {
			t.Errorf("seed %d: equilibrium rate %v exceeds exhaustive optimum %v", seed, res.AvgRate, opt)
		}
	}
}

func TestPriceOfAnarchyTheorem5(t *testing.T) {
	// Theorem 5: ρ ∈ [R_min/R_max, 1]. The lower bound is extremely
	// loose; the empirically interesting content is ρ ≤ 1 with ρ
	// typically close to 1 for IDDE-G equilibria.
	worst := 1.0
	for seed := uint64(1); seed <= 4; seed++ {
		in := tinyInstance(t, 3, 5, 2, seed)
		res := core.Solve(in, core.DefaultOptions())
		rho, opt, err := PriceOfAnarchy(in, res.Strategy.Alloc)
		if err != nil {
			t.Fatal(err)
		}
		if rho > 1+1e-9 {
			t.Errorf("seed %d: ρ = %v > 1 (opt %v)", seed, rho, opt)
		}
		if rho <= 0 {
			t.Errorf("seed %d: ρ = %v", seed, rho)
		}
		if rho < worst {
			worst = rho
		}
	}
	// IDDE-G equilibria should capture most of the optimal rate.
	if worst < 0.5 {
		t.Errorf("worst observed PoA %v is far from the optimum", worst)
	}
}

func TestBestAllocationRefusesHugeSpaces(t *testing.T) {
	in := tinyInstance(t, 10, 40, 3, 9)
	if _, _, err := BestAllocation(in); err == nil {
		t.Error("huge allocation space accepted")
	}
}

func TestGreedyDeliveryWithinTheorem6Bound(t *testing.T) {
	bound := (math.E - 1) / (2 * math.E)
	for seed := uint64(11); seed <= 15; seed++ {
		in := tinyInstance(t, 3, 6, 3, seed)
		res := core.Solve(in, core.DefaultOptions())
		alloc := res.Strategy.Alloc

		_, optLat, err := BestDelivery(in, alloc)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		phi := in.AvgLatency(alloc, model.NewDelivery(in.N(), in.K()))
		greedyLat := in.AvgLatency(alloc, res.Strategy.Delivery)

		if optLat > greedyLat+1e-12 {
			t.Fatalf("seed %d: exhaustive optimum %v worse than greedy %v", seed, optLat, greedyLat)
		}
		// Theorem 6 in reduction form: ΔL_greedy ≥ (e−1)/2e · ΔL_opt.
		dGreedy := float64(phi - greedyLat)
		dOpt := float64(phi - optLat)
		if dOpt > 0 && dGreedy < bound*dOpt-1e-12 {
			t.Errorf("seed %d: greedy reduction %v below (e−1)/2e of optimal %v", seed, dGreedy, dOpt)
		}
		// Theorem 7 in latency form (per-request averages scale both
		// sides of Eq. 31 identically).
		ceiling := Theorem7Bound(in, optLat, phi)
		if greedyLat > ceiling+1e-12 {
			t.Errorf("seed %d: greedy latency %v exceeds Theorem 7 ceiling %v", seed, greedyLat, ceiling)
		}
	}
}

func TestBestDeliveryRespectsCapacity(t *testing.T) {
	in := tinyInstance(t, 3, 6, 3, 21)
	alloc := core.Solve(in, core.DefaultOptions()).Strategy.Alloc
	d, _, err := BestDelivery(in, alloc)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.CheckDelivery(d); err != nil {
		t.Errorf("optimal delivery violates constraints: %v", err)
	}
}

func TestBestDeliveryRefusesHugeSpaces(t *testing.T) {
	in := tinyInstance(t, 6, 10, 6, 22)
	alloc := model.NewAllocation(in.M())
	if _, _, err := BestDelivery(in, alloc); err == nil {
		t.Error("huge delivery space accepted")
	}
}

func TestTheorem7BoundMonotonicity(t *testing.T) {
	in := tinyInstance(t, 3, 6, 3, 23)
	// The ceiling grows with φ and with the optimal latency.
	b1 := Theorem7Bound(in, 0.01, 0.1)
	b2 := Theorem7Bound(in, 0.01, 0.2)
	b3 := Theorem7Bound(in, 0.02, 0.2)
	if b2 <= b1 || b3 < b2 {
		t.Errorf("bound not monotone: %v %v %v", b1, b2, b3)
	}
}

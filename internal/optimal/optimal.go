// Package optimal provides exhaustive-search solvers for tiny IDDE
// instances. They are not part of any practical strategy — the IDDE
// problem is NP-hard (Theorem 1) — but they pin down the true optima
// that the paper's theory compares against, enabling empirical checks
// of the Price-of-Anarchy bound on the allocation game (Theorem 5) and
// the greedy delivery approximation bounds (Theorems 6–7).
package optimal

import (
	"fmt"
	"math"

	"idde/internal/model"
	"idde/internal/units"
)

// MaxAllocationStates bounds the allocation search space; BestAllocation
// refuses instances beyond it rather than running forever.
const MaxAllocationStates = 5_000_000

// BestAllocation exhaustively maximizes the average data rate (Eq. 5)
// over all user allocation profiles, considering every channel of every
// covering server per user (plus "unallocated", which is never optimal
// but keeps the space honest).
func BestAllocation(in *model.Instance) (model.Allocation, units.Rate, error) {
	// Decision sets δ_j.
	decisions := make([][]model.Alloc, in.M())
	states := 1.0
	for j := 0; j < in.M(); j++ {
		ds := []model.Alloc{model.Unallocated}
		for _, i := range in.Top.Coverage[j] {
			for x := 0; x < in.Top.Servers[i].Channels; x++ {
				ds = append(ds, model.Alloc{Server: i, Channel: x})
			}
		}
		decisions[j] = ds
		states *= float64(len(ds))
		if states > MaxAllocationStates {
			return nil, 0, fmt.Errorf("optimal: allocation space ~%g exceeds limit %d", states, MaxAllocationStates)
		}
	}

	cur := model.NewAllocation(in.M())
	var best model.Allocation
	bestRate := units.Rate(-1)
	var rec func(j int)
	rec = func(j int) {
		if j == in.M() {
			if r := in.AvgRate(cur); r > bestRate {
				bestRate = r
				best = cur.Clone()
			}
			return
		}
		for _, d := range decisions[j] {
			cur[j] = d
			rec(j + 1)
		}
		cur[j] = model.Unallocated
	}
	rec(0)
	return best, bestRate, nil
}

// MaxDeliveryDecisions bounds the delivery search (2^decisions leaves).
const MaxDeliveryDecisions = 22

// BestDelivery exhaustively minimizes the average delivery latency
// (Eq. 9) over all feasible delivery profiles for a fixed allocation.
func BestDelivery(in *model.Instance, alloc model.Allocation) (*model.Delivery, units.Seconds, error) {
	type cand struct{ i, k int }
	var cands []cand
	for i := 0; i < in.N(); i++ {
		for k := 0; k < in.K(); k++ {
			// Decisions that can never fit are pruned up front.
			if in.Wl.Items[k].Size <= in.Wl.Capacity[i] {
				cands = append(cands, cand{i: i, k: k})
			}
		}
	}
	if len(cands) > MaxDeliveryDecisions {
		return nil, 0, fmt.Errorf("optimal: %d delivery decisions exceed limit %d", len(cands), MaxDeliveryDecisions)
	}

	used := make([]units.MegaBytes, in.N())
	cur := model.NewDelivery(in.N(), in.K())
	best := cur.Clone()
	bestLat := in.AvgLatency(alloc, cur)

	var rec func(idx int)
	rec = func(idx int) {
		if idx == len(cands) {
			if l := in.AvgLatency(alloc, cur); l < bestLat {
				bestLat = l
				best = cur.Clone()
			}
			return
		}
		c := cands[idx]
		size := in.Wl.Items[c.k].Size
		if used[c.i]+size <= in.Wl.Capacity[c.i] {
			used[c.i] += size
			cur.Place(c.i, c.k, size)
			rec(idx + 1)
			used[c.i] -= size
			cur = removeReplica(in, cur, c.i, c.k)
		}
		rec(idx + 1)
	}
	rec(0)
	return best, bestLat, nil
}

// removeReplica rebuilds a delivery without one replica (Delivery is
// add-only by design; the exhaustive search is the only consumer that
// needs undo, and instance sizes here are tiny).
func removeReplica(in *model.Instance, d *model.Delivery, ri, rk int) *model.Delivery {
	nd := model.NewDelivery(in.N(), in.K())
	for i := 0; i < in.N(); i++ {
		for k := 0; k < in.K(); k++ {
			if d.Placed(i, k) && !(i == ri && k == rk) {
				nd.Place(i, k, in.Wl.Items[k].Size)
			}
		}
	}
	return nd
}

// PriceOfAnarchy reports ρ = R_avg(equilibrium) / R_avg(optimal), the
// Theorem 5 quantity, for a given equilibrium allocation.
func PriceOfAnarchy(in *model.Instance, equilibrium model.Allocation) (rho float64, optRate units.Rate, err error) {
	_, opt, err := BestAllocation(in)
	if err != nil {
		return 0, 0, err
	}
	if opt <= 0 {
		return 1, opt, nil
	}
	eq := in.AvgRate(equilibrium)
	return float64(eq) / float64(opt), opt, nil
}

// Theorem7Bound evaluates the right-hand side of Eq. (31): the
// guaranteed ceiling on greedy's total latency given the optimal
// delivery latency, the all-cloud latency φ, and the capacity
// fragmentation term N·s_max/ΣA_i.
func Theorem7Bound(in *model.Instance, optTotal, phi units.Seconds) units.Seconds {
	frag := float64(in.N()) * float64(in.Wl.MaxItemSize()) / float64(in.Wl.TotalCapacity())
	if frag > 1 {
		frag = 1
	}
	e := math.E
	lead := (e+1)/(2*e) + (e-1)/(2*e)*frag
	tail := (1 - frag) * (e - 1) / (2 * e)
	return units.Seconds(lead*float64(phi) + tail*float64(optTotal))
}

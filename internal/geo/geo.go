// Package geo supplies the planar geometry used by the edge-storage
// topology: points in a metric region, distances, coverage disks and a
// spatial hash grid for efficient "which servers cover this user"
// queries (the V_j and U_i sets of the paper's system model, §2.1).
//
// Coordinates are meters in an arbitrary local frame; the EUA-like
// generator in internal/topology places servers and users in a region a
// few kilometers across, matching the Melbourne CBD extract the paper
// uses.
package geo

import (
	"fmt"
	"math"

	"idde/internal/units"
)

// Point is a position in meters.
type Point struct {
	X, Y float64
}

func (p Point) String() string { return fmt.Sprintf("(%.1f, %.1f)", p.X, p.Y) }

// Dist reports the Euclidean distance between two points.
func Dist(a, b Point) units.Meters {
	dx := a.X - b.X
	dy := a.Y - b.Y
	return units.Meters(math.Hypot(dx, dy))
}

// Dist2 reports the squared Euclidean distance, avoiding the square root
// for comparisons.
func Dist2(a, b Point) float64 {
	dx := a.X - b.X
	dy := a.Y - b.Y
	return dx*dx + dy*dy
}

// Rect is an axis-aligned rectangle.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// Contains reports whether p lies inside r (inclusive bounds).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// Width and Height report the rectangle extents.
func (r Rect) Width() float64  { return r.MaxX - r.MinX }
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Clamp returns p moved to the nearest point inside r.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, r.MinX), r.MaxX),
		Y: math.Min(math.Max(p.Y, r.MinY), r.MaxY),
	}
}

// Disk is a coverage area: an edge server's radio footprint.
type Disk struct {
	Center Point
	Radius units.Meters
}

// Covers reports whether p is within the disk (inclusive).
func (d Disk) Covers(p Point) bool {
	r := float64(d.Radius)
	return Dist2(d.Center, p) <= r*r
}

// Grid is a uniform spatial hash over points, supporting range queries
// in expected O(result) time. It indexes a fixed point set (servers are
// static in IDDE scenarios), mapping each to the caller's integer id.
type Grid struct {
	cell    float64
	origin  Point
	buckets map[[2]int][]entry
}

type entry struct {
	id int
	p  Point
}

// NewGrid builds a grid with the given cell size (meters). Cell size
// should be on the order of the typical query radius.
func NewGrid(cellSize float64) *Grid {
	if cellSize <= 0 {
		panic("geo: NewGrid with non-positive cell size")
	}
	return &Grid{cell: cellSize, buckets: make(map[[2]int][]entry)}
}

func (g *Grid) key(p Point) [2]int {
	return [2]int{
		int(math.Floor((p.X - g.origin.X) / g.cell)),
		int(math.Floor((p.Y - g.origin.Y) / g.cell)),
	}
}

// Insert adds a point with an id.
func (g *Grid) Insert(id int, p Point) {
	k := g.key(p)
	g.buckets[k] = append(g.buckets[k], entry{id: id, p: p})
}

// Len reports the number of indexed points.
func (g *Grid) Len() int {
	n := 0
	for _, b := range g.buckets {
		n += len(b)
	}
	return n
}

// Within returns the ids of all indexed points within radius of q, in
// unspecified order.
func (g *Grid) Within(q Point, radius units.Meters) []int {
	r := float64(radius)
	r2 := r * r
	lo := g.key(Point{q.X - r, q.Y - r})
	hi := g.key(Point{q.X + r, q.Y + r})
	var out []int
	for cx := lo[0]; cx <= hi[0]; cx++ {
		for cy := lo[1]; cy <= hi[1]; cy++ {
			for _, e := range g.buckets[[2]int{cx, cy}] {
				if Dist2(q, e.p) <= r2 {
					out = append(out, e.id)
				}
			}
		}
	}
	return out
}

// Nearest returns the id of the indexed point closest to q and its
// distance. It reports ok=false when the grid is empty. The search
// expands ring by ring, so it stays fast when points are dense near q.
func (g *Grid) Nearest(q Point) (id int, d units.Meters, ok bool) {
	if len(g.buckets) == 0 {
		return 0, 0, false
	}
	best := math.Inf(1)
	bestID := -1
	center := g.key(q)
	for ring := 0; ; ring++ {
		found := false
		for cx := center[0] - ring; cx <= center[0]+ring; cx++ {
			for cy := center[1] - ring; cy <= center[1]+ring; cy++ {
				if ring > 0 && cx > center[0]-ring && cx < center[0]+ring &&
					cy > center[1]-ring && cy < center[1]+ring {
					continue // interior cells were scanned on earlier rings
				}
				b, exists := g.buckets[[2]int{cx, cy}]
				if !exists {
					continue
				}
				found = true
				for _, e := range b {
					if d2 := Dist2(q, e.p); d2 < best {
						best = d2
						bestID = e.id
					}
				}
			}
		}
		// Once a candidate exists, one extra ring guarantees correctness:
		// any closer point must lie within best distance, which fits in
		// the scanned rings after expanding once more past the hit ring.
		if bestID >= 0 && float64(ring)*g.cell >= math.Sqrt(best) {
			return bestID, units.Meters(math.Sqrt(best)), true
		}
		if ring > 1<<20 {
			// Unreachable for non-empty grids; guards infinite loops.
			if bestID >= 0 {
				return bestID, units.Meters(math.Sqrt(best)), true
			}
			return 0, 0, false
		}
		_ = found
	}
}

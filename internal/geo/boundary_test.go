package geo

import (
	"sort"
	"testing"

	"idde/internal/units"
)

// Coverage membership at the exact disk radius and at grid cell borders
// is where tile assignment could silently disagree with the model's
// coverage sets (topology.Finalize uses Dist ≤ Radius inclusively).
// Pythagorean triples give distances that are exactly representable, so
// these tests exercise the == case, not an epsilon away from it.

// TestDiskCoversExactRadius: points at exactly the radius are covered
// (inclusive boundary), and the next representable point outward is not.
func TestDiskCoversExactRadius(t *testing.T) {
	cases := []struct {
		center Point
		radius float64
		onEdge Point
	}{
		{Point{0, 0}, 500, Point{300, 400}},     // 3-4-5
		{Point{100, 200}, 650, Point{350, 800}}, // 5-12-13 scaled: (250,600)
		{Point{-40, -9}, 41, Point{0, 0}},       // 9-40-41 into the origin
		{Point{1000, 1000}, 725, Point{1435, 1580}},
	}
	for _, c := range cases {
		d := Disk{Center: c.center, Radius: units.Meters(c.radius)}
		if Dist2(c.center, c.onEdge) != c.radius*c.radius {
			t.Fatalf("test setup: %v is not exactly at radius %g of %v", c.onEdge, c.radius, c.center)
		}
		if !d.Covers(c.onEdge) {
			t.Errorf("disk %v r=%g must cover the exact-radius point %v", c.center, c.radius, c.onEdge)
		}
		// One ulp-ish outward along x must fall outside.
		out := c.onEdge
		if out.X >= c.center.X {
			out.X += 1e-9
		} else {
			out.X -= 1e-9
		}
		if d.Covers(out) {
			t.Errorf("disk %v r=%g must not cover %v (just outside)", c.center, c.radius, out)
		}
	}
}

// TestDiskCoversAgreesWithDist: Disk.Covers (squared-distance compare)
// and the Dist ≤ r rule topology.Finalize applies must agree on
// exact-radius points — both sides are exactly representable for
// Pythagorean-triple offsets, so any disagreement would be a real
// membership discrepancy between tile assignment and V_j/U_i.
func TestDiskCoversAgreesWithDist(t *testing.T) {
	center := Point{0, 0}
	for _, r := range []float64{5, 25, 500, 1000} {
		d := Disk{Center: center, Radius: units.Meters(r)}
		pts := []Point{
			{r, 0}, {0, r}, {-r, 0}, {0, -r},
			{3 * r / 5, 4 * r / 5}, {-3 * r / 5, 4 * r / 5},
			{r + 1, 0}, {r / 2, r / 2},
		}
		for _, p := range pts {
			byDisk := d.Covers(p)
			byDist := float64(Dist(center, p)) <= r
			if byDisk != byDist {
				t.Errorf("r=%g p=%v: Disk.Covers=%v but Dist≤r=%v", r, p, byDisk, byDist)
			}
		}
	}
}

// bruteWithin is the reference for Grid.Within: scan everything.
func bruteWithin(pts []Point, q Point, radius float64) []int {
	var out []int
	for id, p := range pts {
		if Dist2(q, p) <= radius*radius {
			out = append(out, id)
		}
	}
	return out
}

// TestGridWithinCellBorders indexes points sitting exactly on cell
// boundaries (including negative coordinates, where floor-division
// bucketing is easy to get wrong) and checks Within against the brute
// force for queries whose radius lands exactly on those points.
func TestGridWithinCellBorders(t *testing.T) {
	const cell = 100.0
	pts := []Point{
		{0, 0}, {100, 0}, {200, 0}, {-100, 0}, {-200, 0},
		{0, 100}, {0, -100}, {100, 100}, {-100, -100},
		{300, 400}, {-300, 400}, {300, -400},
		{50, 50}, {-50, -50}, {150, 250},
		{99.999999, 0}, {100.000001, 0},
	}
	g := NewGrid(cell)
	for id, p := range pts {
		g.Insert(id, p)
	}
	if g.Len() != len(pts) {
		t.Fatalf("grid indexed %d points, want %d", g.Len(), len(pts))
	}
	queries := []struct {
		q Point
		r float64
	}{
		{Point{0, 0}, 100},  // hits four exact-radius border points
		{Point{0, 0}, 500},  // hits the 3-4-5 points exactly
		{Point{100, 0}, 0},  // zero radius: the point itself only
		{Point{-100, 0}, 100},
		{Point{-150, -150}, 70.71067811865476}, // ~50√2, near-corner
		{Point{200, 0}, 100},
		{Point{0, 0}, 99.999999},
	}
	for _, qr := range queries {
		got := g.Within(qr.q, units.Meters(qr.r))
		sort.Ints(got)
		want := bruteWithin(pts, qr.q, qr.r)
		if len(got) != len(want) {
			t.Fatalf("q=%v r=%.9g: Within=%v want %v", qr.q, qr.r, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("q=%v r=%.9g: Within=%v want %v", qr.q, qr.r, got, want)
			}
		}
	}
}

// TestGridWithinExactRadiusInclusive: a point exactly at the query
// radius is returned — Within uses the same inclusive ≤ as Disk.Covers
// and topology coverage, so the partition layer sees the same
// membership as the model.
func TestGridWithinExactRadiusInclusive(t *testing.T) {
	g := NewGrid(250)
	g.Insert(0, Point{300, 400}) // exactly 500 from origin
	got := g.Within(Point{0, 0}, 500)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("exact-radius point not returned: %v", got)
	}
	if got := g.Within(Point{0, 0}, 499.9999999); len(got) != 0 {
		t.Fatalf("point inside a shrunk radius: %v", got)
	}
}

package geo

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"idde/internal/rng"
	"idde/internal/units"
)

func TestDist(t *testing.T) {
	if d := Dist(Point{0, 0}, Point{3, 4}); d != 5 {
		t.Errorf("Dist = %v, want 5", d)
	}
	if d := Dist(Point{1, 1}, Point{1, 1}); d != 0 {
		t.Errorf("self distance = %v", d)
	}
}

func TestDistSymmetryAndTriangle(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a := Point{math.Mod(ax, 1e4), math.Mod(ay, 1e4)}
		b := Point{math.Mod(bx, 1e4), math.Mod(by, 1e4)}
		c := Point{math.Mod(cx, 1e4), math.Mod(cy, 1e4)}
		ab, ba := Dist(a, b), Dist(b, a)
		if ab != ba {
			return false
		}
		// Triangle inequality with fp slack.
		return float64(Dist(a, c)) <= float64(ab)+float64(Dist(b, c))+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDist2Consistency(t *testing.T) {
	a, b := Point{2, 3}, Point{-1, 7}
	d := float64(Dist(a, b))
	if math.Abs(Dist2(a, b)-d*d) > 1e-9 {
		t.Errorf("Dist2 inconsistent with Dist²")
	}
}

func TestRect(t *testing.T) {
	r := Rect{0, 0, 10, 5}
	if !r.Contains(Point{5, 2}) || r.Contains(Point{11, 2}) || r.Contains(Point{5, -1}) {
		t.Error("Contains wrong")
	}
	if r.Width() != 10 || r.Height() != 5 {
		t.Error("extent wrong")
	}
	got := r.Clamp(Point{-3, 7})
	if got != (Point{0, 5}) {
		t.Errorf("Clamp = %v", got)
	}
	if p := (Point{4, 4}); r.Clamp(p) != p {
		t.Error("Clamp moved interior point")
	}
}

func TestDiskCovers(t *testing.T) {
	d := Disk{Center: Point{0, 0}, Radius: 100}
	if !d.Covers(Point{60, 80}) { // exactly at radius
		t.Error("boundary point not covered")
	}
	if d.Covers(Point{60, 81}) {
		t.Error("outside point covered")
	}
}

func TestGridWithinMatchesBruteForce(t *testing.T) {
	s := rng.New(77)
	pts := make([]Point, 500)
	g := NewGrid(250)
	for i := range pts {
		pts[i] = Point{s.Uniform(0, 3000), s.Uniform(0, 2000)}
		g.Insert(i, pts[i])
	}
	if g.Len() != 500 {
		t.Fatalf("Len = %d", g.Len())
	}
	for trial := 0; trial < 50; trial++ {
		q := Point{s.Uniform(-100, 3100), s.Uniform(-100, 2100)}
		radius := units.Meters(s.Uniform(50, 900))
		got := g.Within(q, radius)
		sort.Ints(got)
		var want []int
		r2 := float64(radius) * float64(radius)
		for i, p := range pts {
			if Dist2(q, p) <= r2 {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d ids, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: mismatch at %d: %d vs %d", trial, i, got[i], want[i])
			}
		}
	}
}

func TestGridNearestMatchesBruteForce(t *testing.T) {
	s := rng.New(88)
	pts := make([]Point, 300)
	g := NewGrid(200)
	for i := range pts {
		pts[i] = Point{s.Uniform(0, 3000), s.Uniform(0, 2000)}
		g.Insert(i, pts[i])
	}
	for trial := 0; trial < 50; trial++ {
		q := Point{s.Uniform(0, 3000), s.Uniform(0, 2000)}
		id, d, ok := g.Nearest(q)
		if !ok {
			t.Fatal("Nearest reported empty grid")
		}
		bestD := math.Inf(1)
		for _, p := range pts {
			if dd := float64(Dist(q, p)); dd < bestD {
				bestD = dd
			}
		}
		if math.Abs(float64(d)-bestD) > 1e-9 {
			t.Fatalf("trial %d: Nearest returned id %d at %v, brute force found %v", trial, id, d, bestD)
		}
	}
}

func TestGridNearestEmpty(t *testing.T) {
	g := NewGrid(100)
	if _, _, ok := g.Nearest(Point{0, 0}); ok {
		t.Error("empty grid reported a nearest point")
	}
}

func TestGridFarQuery(t *testing.T) {
	g := NewGrid(100)
	g.Insert(1, Point{0, 0})
	id, d, ok := g.Nearest(Point{5000, 5000})
	if !ok || id != 1 {
		t.Fatalf("far Nearest = (%d, %v, %v)", id, d, ok)
	}
	if ids := g.Within(Point{5000, 5000}, 100); len(ids) != 0 {
		t.Errorf("far Within returned %v", ids)
	}
}

func TestNewGridPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewGrid(0) did not panic")
		}
	}()
	NewGrid(0)
}

// Package power implements an optional transmit-power control pass on
// top of a user allocation profile — the third decision axis ("power
// allocation") of the multi-access caching work the paper compares
// against, offered here as an extension to IDDE-G.
//
// The observation: Eq. (4) caps every user's rate at R_{j,max}, and an
// uncongested user's SINR is often orders of magnitude above what the
// cap needs. Such users can shed transmit power without losing a single
// MBps of their own rate, while every co-channel user's interference
// terms (both the intra-cell sum and the inter-cell F of Eq. 2) shrink.
// Iterating this to a fixed point raises the system's average data rate
// and cuts radiated energy, for free.
//
// The pass is conservative: a user's power is only reduced if its own
// rate stays at least what it was before the pass (not merely above
// some target), so no user is ever worse off — the adjustment is a
// Pareto improvement in rates.
package power

import (
	"fmt"

	"idde/internal/model"
	"idde/internal/radio"
	"idde/internal/topology"
	"idde/internal/units"
)

// Options tunes the power-control pass.
type Options struct {
	// MaxRounds bounds the sweep count (default 16).
	MaxRounds int
	// Step is the multiplicative power reduction tried per round
	// (default 0.7, i.e. −1.5 dB steps).
	Step float64
	// MinPower floors the tuned power (default 0.2 W).
	MinPower units.Watts
}

// DefaultOptions returns the configuration used by the benches.
func DefaultOptions() Options {
	return Options{MaxRounds: 16, Step: 0.7, MinPower: 0.2}
}

// Result reports the outcome of a pass.
type Result struct {
	// Powers holds every user's tuned transmit power.
	Powers []units.Watts
	// AvgRateBefore and AvgRateAfter are Eq. 5 under the original and
	// tuned powers (same allocation profile).
	AvgRateBefore, AvgRateAfter units.Rate
	// SavedWatts is the total transmit power shed.
	SavedWatts units.Watts
	// TunedUsers counts users whose power changed.
	TunedUsers int
	// Rounds actually used.
	Rounds int
}

// evaluator computes rates under a mutable power vector, sharing the
// instance's gain rows and allocation registries.
type evaluator struct {
	in     *model.Instance
	alloc  model.Allocation
	powers []units.Watts
	// users[i][x] lists users on channel x of server i.
	users [][][]int
}

func newEvaluator(in *model.Instance, alloc model.Allocation) *evaluator {
	ev := &evaluator{
		in:     in,
		alloc:  alloc.Clone(),
		powers: make([]units.Watts, in.M()),
		users:  make([][][]int, in.N()),
	}
	for j := range ev.powers {
		ev.powers[j] = in.Top.Users[j].Power
	}
	for i := 0; i < in.N(); i++ {
		ev.users[i] = make([][]int, in.Top.Servers[i].Channels)
	}
	for j, a := range ev.alloc {
		if a.Allocated() {
			ev.users[a.Server][a.Channel] = append(ev.users[a.Server][a.Channel], j)
		}
	}
	return ev
}

// rate evaluates Eqs. (2)–(4) for user j under the current powers.
func (ev *evaluator) rate(j int) units.Rate {
	a := ev.alloc[j]
	if !a.Allocated() {
		return 0
	}
	gr := ev.in.GainRow(a.Server)
	g := gr.At(j)
	var intra float64
	for _, t := range ev.users[a.Server][a.Channel] {
		if t != j {
			intra += float64(ev.powers[t])
		}
	}
	var f float64
	for _, o := range ev.in.Top.Coverage[j] {
		if o == a.Server || a.Channel >= len(ev.users[o]) {
			continue
		}
		for _, t := range ev.users[o][a.Channel] {
			if t != j {
				f += gr.At(t) * float64(ev.powers[t])
			}
		}
	}
	sinr := ev.in.Radio.SINR(g, ev.powers[j], units.Watts(intra), units.Watts(f))
	r := radio.ShannonRate(ev.in.Top.Servers[a.Server].Bandwidth, sinr)
	return radio.CapRate(r, ev.in.Top.Users[j].MaxRate)
}

func (ev *evaluator) avgRate() units.Rate {
	if ev.in.M() == 0 {
		return 0
	}
	var sum float64
	for j := 0; j < ev.in.M(); j++ {
		sum += float64(ev.rate(j))
	}
	return units.Rate(sum / float64(ev.in.M()))
}

// Tune runs the power-control pass for the given allocation profile.
func Tune(in *model.Instance, alloc model.Allocation, opt Options) (*Result, error) {
	if err := in.CheckAllocation(alloc); err != nil {
		return nil, fmt.Errorf("power: %w", err)
	}
	if opt.MaxRounds <= 0 {
		opt.MaxRounds = 16
	}
	if opt.Step <= 0 || opt.Step >= 1 {
		return nil, fmt.Errorf("power: Step must lie in (0,1), got %v", opt.Step)
	}
	if opt.MinPower < 0 {
		return nil, fmt.Errorf("power: negative MinPower")
	}

	ev := newEvaluator(in, alloc)
	res := &Result{AvgRateBefore: ev.avgRate()}

	// Each user must keep at least its pre-pass rate.
	floor := make([]units.Rate, in.M())
	for j := range floor {
		floor[j] = ev.rate(j)
	}

	for round := 0; round < opt.MaxRounds; round++ {
		changed := false
		for j := 0; j < in.M(); j++ {
			if !ev.alloc[j].Allocated() {
				continue
			}
			cand := units.Watts(float64(ev.powers[j]) * opt.Step)
			if cand < opt.MinPower {
				cand = opt.MinPower
			}
			if cand >= ev.powers[j] {
				continue
			}
			old := ev.powers[j]
			ev.powers[j] = cand
			// Shedding power never hurts anyone else, so only the
			// user's own rate needs re-checking against its floor.
			if ev.rate(j) < floor[j] {
				ev.powers[j] = old
				continue
			}
			changed = true
		}
		res.Rounds = round + 1
		if !changed {
			break
		}
	}

	res.Powers = ev.powers
	res.AvgRateAfter = ev.avgRate()
	for j := 0; j < in.M(); j++ {
		saved := in.Top.Users[j].Power - ev.powers[j]
		if saved > 0 {
			res.SavedWatts += saved
			res.TunedUsers++
		}
	}
	return res, nil
}

// Apply builds a new instance with the tuned powers, for downstream
// evaluation (delivery, simulation). The topology is copied; the gain
// rows are power-independent and could be shared, but model.New keeps
// ownership simple by recomputing them.
func Apply(in *model.Instance, powers []units.Watts) (*model.Instance, error) {
	if len(powers) != in.M() {
		return nil, fmt.Errorf("power: %d powers for %d users", len(powers), in.M())
	}
	top := *in.Top
	top.Users = append([]topology.User(nil), in.Top.Users...)
	for j := range top.Users {
		if powers[j] <= 0 {
			return nil, fmt.Errorf("power: non-positive power for user %d", j)
		}
		top.Users[j].Power = powers[j]
	}
	if err := top.Finalize(); err != nil {
		return nil, err
	}
	return model.New(&top, in.Wl, in.Radio)
}

package power

import (
	"math"
	"testing"

	"idde/internal/core"
	"idde/internal/model"
	"idde/internal/radio"
	"idde/internal/rng"
	"idde/internal/topology"
	"idde/internal/workload"
)

func genInstance(t *testing.T, n, m, k int, seed uint64) *model.Instance {
	t.Helper()
	s := rng.New(seed)
	top, err := topology.Generate(topology.DefaultGen(n, m, 1.0), s.Split("top"))
	if err != nil {
		t.Fatalf("topology: %v", err)
	}
	wl, err := workload.Generate(workload.DefaultGen(k), n, m, s.Split("wl"))
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	in, err := model.New(top, wl, radio.Default())
	if err != nil {
		t.Fatalf("model: %v", err)
	}
	return in
}

func solveAlloc(in *model.Instance) model.Allocation {
	return core.Solve(in, core.DefaultOptions()).Strategy.Alloc
}

func TestTuneIsParetoOnRates(t *testing.T) {
	in := genInstance(t, 15, 120, 4, 1)
	alloc := solveAlloc(in)
	res, err := Tune(in, alloc, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgRateAfter < res.AvgRateBefore-1e-9 {
		t.Errorf("average rate fell: %v -> %v", res.AvgRateBefore, res.AvgRateAfter)
	}
	// Per-user Pareto check via the full model on the tuned instance.
	tuned, err := Apply(in, res.Powers)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < in.M(); j++ {
		before := in.UserRate(alloc, j)
		after := tuned.UserRate(alloc, j)
		if float64(after) < float64(before)-1e-6*math.Max(1, float64(before)) {
			t.Fatalf("user %d rate fell: %v -> %v", j, before, after)
		}
	}
}

func TestTuneSavesPower(t *testing.T) {
	// At M=60 over 15 servers most users are uncongested and
	// cap-limited, so nearly everyone can shed power.
	in := genInstance(t, 15, 60, 3, 2)
	alloc := solveAlloc(in)
	res, err := Tune(in, alloc, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.SavedWatts <= 0 || res.TunedUsers == 0 {
		t.Errorf("no power saved: %+v", res)
	}
	if res.TunedUsers < in.M()/2 {
		t.Errorf("only %d of %d users tuned in an uncongested system", res.TunedUsers, in.M())
	}
	for j, p := range res.Powers {
		if p < DefaultOptions().MinPower-1e-12 {
			t.Errorf("user %d below MinPower: %v", j, p)
		}
		if p > in.Top.Users[j].Power+1e-12 {
			t.Errorf("user %d power increased: %v > %v", j, p, in.Top.Users[j].Power)
		}
	}
}

func TestTuneImprovesMixedLoadRates(t *testing.T) {
	// The rate gain needs *mixed* load: cap-limited users shed power,
	// their congested co-channel neighbours breathe easier. A fully
	// congested system has no headroom anywhere (nobody sheds), a fully
	// idle one has nobody to help — so test a moderate load and accept
	// the first seed that shows any shedding.
	improved := false
	for seed := uint64(3); seed < 8; seed++ {
		in := genInstance(t, 15, 150, 4, seed)
		alloc := solveAlloc(in)
		res, err := Tune(in, alloc, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if res.AvgRateAfter < res.AvgRateBefore-1e-9 {
			t.Fatalf("seed %d: rate fell: %v -> %v", seed, res.AvgRateBefore, res.AvgRateAfter)
		}
		if res.AvgRateAfter > res.AvgRateBefore+1e-9 {
			improved = true
			break
		}
	}
	if !improved {
		t.Error("no mixed-load instance showed a rate improvement")
	}
}

func TestTuneAgreesWithFullModel(t *testing.T) {
	in := genInstance(t, 12, 100, 3, 4)
	alloc := solveAlloc(in)
	res, err := Tune(in, alloc, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := Apply(in, res.Powers)
	if err != nil {
		t.Fatal(err)
	}
	got := float64(tuned.AvgRate(alloc))
	want := float64(res.AvgRateAfter)
	if math.Abs(got-want) > 1e-6*math.Max(1, want) {
		t.Errorf("internal evaluator %v != full model %v", want, got)
	}
}

func TestTuneDeterministic(t *testing.T) {
	in := genInstance(t, 12, 80, 3, 5)
	alloc := solveAlloc(in)
	a, err := Tune(in, alloc, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Tune(in, alloc, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for j := range a.Powers {
		if a.Powers[j] != b.Powers[j] {
			t.Fatalf("powers differ at user %d", j)
		}
	}
}

func TestTuneValidation(t *testing.T) {
	in := genInstance(t, 10, 40, 3, 6)
	alloc := solveAlloc(in)
	if _, err := Tune(in, model.NewAllocation(3), DefaultOptions()); err == nil {
		t.Error("wrong-length allocation accepted")
	}
	bad := DefaultOptions()
	bad.Step = 1.5
	if _, err := Tune(in, alloc, bad); err == nil {
		t.Error("Step >= 1 accepted")
	}
	bad = DefaultOptions()
	bad.Step = 0
	if _, err := Tune(in, alloc, bad); err == nil {
		t.Error("Step = 0 accepted")
	}
	bad = DefaultOptions()
	bad.MinPower = -1
	if _, err := Tune(in, alloc, bad); err == nil {
		t.Error("negative MinPower accepted")
	}
}

func TestApplyValidation(t *testing.T) {
	in := genInstance(t, 10, 40, 3, 7)
	if _, err := Apply(in, nil); err == nil {
		t.Error("wrong-length powers accepted")
	}
	alloc := solveAlloc(in)
	res, err := Tune(in, alloc, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res.Powers[0] = 0
	if _, err := Apply(in, res.Powers); err == nil {
		t.Error("zero power accepted")
	}
}

func TestApplyDoesNotMutateOriginal(t *testing.T) {
	in := genInstance(t, 10, 40, 3, 8)
	alloc := solveAlloc(in)
	res, err := Tune(in, alloc, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	orig := in.Top.Users[0].Power
	if _, err := Apply(in, res.Powers); err != nil {
		t.Fatal(err)
	}
	if in.Top.Users[0].Power != orig {
		t.Error("Apply mutated the source instance")
	}
}

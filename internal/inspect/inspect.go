// Package inspect provides scenario and strategy introspection for
// operators: summary statistics of a topology (coverage depth, channel
// inventory, link structure), occupancy analysis of an allocation, and
// Graphviz DOT export of the edge network with an overlaid strategy —
// the kind of observability a deployable edge storage system ships with.
package inspect

import (
	"fmt"
	"sort"
	"strings"

	"idde/internal/model"
	"idde/internal/stats"
)

// TopologyStats summarizes a scenario's physical layout.
type TopologyStats struct {
	Servers, Users, Links int
	Channels              int
	// CoverageDepth is the distribution of |V_j| over users.
	CoverageDepth stats.Summary
	// ServerLoad is the distribution of |U_i| over servers.
	ServerLoad stats.Summary
	// Degree is the wired-network degree distribution.
	Degree stats.Summary
	// UncoveredUsers counts users with empty V_j.
	UncoveredUsers int
}

// Topology computes layout statistics for an instance.
func Topology(in *model.Instance) TopologyStats {
	ts := TopologyStats{
		Servers:  in.N(),
		Users:    in.M(),
		Links:    in.Top.Net.M(),
		Channels: in.Top.TotalChannels(),
	}
	var cov, load, deg stats.Acc
	for j := 0; j < in.M(); j++ {
		d := len(in.Top.Coverage[j])
		cov.Add(float64(d))
		if d == 0 {
			ts.UncoveredUsers++
		}
	}
	for i := 0; i < in.N(); i++ {
		load.Add(float64(len(in.Top.Covered[i])))
		deg.Add(float64(in.Top.Net.Degree(i)))
	}
	ts.CoverageDepth = cov.Summary()
	ts.ServerLoad = load.Summary()
	ts.Degree = deg.Summary()
	return ts
}

// OccupancyStats summarizes how an allocation uses the spectrum.
type OccupancyStats struct {
	Allocated int
	// PerChannel is the distribution of users per (server, channel).
	PerChannel stats.Summary
	// BusiestServer and its user count.
	BusiestServer, BusiestCount int
	// EmptyChannels counts unused channels.
	EmptyChannels int
	// RateJain is Jain's fairness index over allocated users' rates.
	RateJain float64
}

// Occupancy analyzes an allocation profile.
func Occupancy(in *model.Instance, alloc model.Allocation) OccupancyStats {
	os := OccupancyStats{BusiestServer: -1}
	perServer := make([]int, in.N())
	perChannel := map[[2]int]int{}
	for j, a := range alloc {
		if !a.Allocated() {
			continue
		}
		os.Allocated++
		perServer[a.Server]++
		perChannel[[2]int{a.Server, a.Channel}]++
		_ = j
	}
	var occ stats.Acc
	total := 0
	for i := 0; i < in.N(); i++ {
		for x := 0; x < in.Top.Servers[i].Channels; x++ {
			n := perChannel[[2]int{i, x}]
			occ.Add(float64(n))
			if n == 0 {
				os.EmptyChannels++
			}
			total++
		}
		if os.BusiestServer < 0 || perServer[i] > os.BusiestCount {
			os.BusiestServer, os.BusiestCount = i, perServer[i]
		}
	}
	os.PerChannel = occ.Summary()

	l := model.NewLedger(in, alloc)
	var sum, sumSq float64
	n := 0
	for j := range alloc {
		if !alloc[j].Allocated() {
			continue
		}
		r := float64(l.CurrentRate(j))
		sum += r
		sumSq += r * r
		n++
	}
	if n > 0 && sumSq > 0 {
		os.RateJain = sum * sum / (float64(n) * sumSq)
	}
	return os
}

// DOT renders the edge network as a Graphviz digraph-free graph, with
// optional strategy overlay: servers become nodes labeled with their
// user and replica counts, wired links become edges labeled with speed.
func DOT(in *model.Instance, st *model.Strategy) string {
	var b strings.Builder
	b.WriteString("graph edgestorage {\n")
	b.WriteString("  layout=neato;\n  node [shape=circle fontsize=10];\n")

	users := make([]int, in.N())
	replicas := make([]int, in.N())
	if st != nil {
		for _, a := range st.Alloc {
			if a.Allocated() {
				users[a.Server]++
			}
		}
		for i := 0; i < in.N(); i++ {
			for k := 0; k < in.K(); k++ {
				if st.Delivery.Placed(i, k) {
					replicas[i]++
				}
			}
		}
	}
	for i := 0; i < in.N(); i++ {
		pos := in.Top.Servers[i].Pos
		label := fmt.Sprintf("v%d", i)
		if st != nil {
			label = fmt.Sprintf("v%d\\n%du/%dr", i, users[i], replicas[i])
		}
		fmt.Fprintf(&b, "  v%d [label=\"%s\" pos=\"%.0f,%.0f\"];\n", i, label, pos.X/10, pos.Y/10)
	}
	edges := in.Top.Net.Edges()
	sort.Slice(edges, func(a, c int) bool {
		if edges[a].U != edges[c].U {
			return edges[a].U < edges[c].U
		}
		return edges[a].V < edges[c].V
	})
	for _, e := range edges {
		fmt.Fprintf(&b, "  v%d -- v%d [label=\"%.0f\"];\n", e.U, e.V, 1/float64(e.Cost))
	}
	b.WriteString("}\n")
	return b.String()
}

// Report renders a human-readable scenario/strategy summary.
func Report(in *model.Instance, st *model.Strategy) string {
	ts := Topology(in)
	var b strings.Builder
	fmt.Fprintf(&b, "topology: %d servers, %d users, %d links, %d channels\n",
		ts.Servers, ts.Users, ts.Links, ts.Channels)
	fmt.Fprintf(&b, "  coverage depth |V_j|: %s\n", ts.CoverageDepth)
	fmt.Fprintf(&b, "  server load |U_i|:    %s\n", ts.ServerLoad)
	fmt.Fprintf(&b, "  wired degree:         %s\n", ts.Degree)
	if ts.UncoveredUsers > 0 {
		fmt.Fprintf(&b, "  WARNING: %d users outside all coverage\n", ts.UncoveredUsers)
	}
	if st != nil {
		os := Occupancy(in, st.Alloc)
		fmt.Fprintf(&b, "allocation: %d/%d users allocated\n", os.Allocated, ts.Users)
		fmt.Fprintf(&b, "  per-channel occupancy: %s (%d empty)\n", os.PerChannel, os.EmptyChannels)
		fmt.Fprintf(&b, "  busiest server: v%d with %d users\n", os.BusiestServer, os.BusiestCount)
		fmt.Fprintf(&b, "  rate fairness (Jain): %.3f\n", os.RateJain)
	}
	return b.String()
}

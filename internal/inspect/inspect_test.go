package inspect

import (
	"strings"
	"testing"

	"idde/internal/core"
	"idde/internal/model"
	"idde/internal/radio"
	"idde/internal/rng"
	"idde/internal/topology"
	"idde/internal/workload"
)

func genInstance(t *testing.T, n, m, k int, seed uint64) *model.Instance {
	t.Helper()
	s := rng.New(seed)
	top, err := topology.Generate(topology.DefaultGen(n, m, 1.2), s.Split("top"))
	if err != nil {
		t.Fatalf("topology: %v", err)
	}
	wl, err := workload.Generate(workload.DefaultGen(k), n, m, s.Split("wl"))
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	in, err := model.New(top, wl, radio.Default())
	if err != nil {
		t.Fatalf("model: %v", err)
	}
	return in
}

func TestTopologyStats(t *testing.T) {
	in := genInstance(t, 12, 80, 4, 1)
	ts := Topology(in)
	if ts.Servers != 12 || ts.Users != 80 || ts.Channels != 36 {
		t.Errorf("dims wrong: %+v", ts)
	}
	if ts.Links != in.Top.Net.M() {
		t.Errorf("links = %d", ts.Links)
	}
	if ts.CoverageDepth.Mean < 1 {
		t.Errorf("coverage depth %v", ts.CoverageDepth.Mean)
	}
	if ts.UncoveredUsers != 0 {
		t.Errorf("uncovered users %d in a generated topology", ts.UncoveredUsers)
	}
	// Handshake: Σ|U_i| == Σ|V_j|.
	if ts.ServerLoad.Mean*float64(ts.Servers) != ts.CoverageDepth.Mean*float64(ts.Users) {
		t.Errorf("coverage handshake violated")
	}
}

func TestOccupancyStats(t *testing.T) {
	in := genInstance(t, 12, 100, 4, 2)
	st := core.Solve(in, core.DefaultOptions()).Strategy
	os := Occupancy(in, st.Alloc)
	if os.Allocated != 100 {
		t.Errorf("allocated = %d", os.Allocated)
	}
	// Mean occupancy × channels == allocated.
	if got := os.PerChannel.Mean * float64(in.Top.TotalChannels()); got < 99.9 || got > 100.1 {
		t.Errorf("occupancy mass = %v", got)
	}
	if os.BusiestServer < 0 || os.BusiestCount <= 0 {
		t.Errorf("busiest server wrong: %+v", os)
	}
	if os.RateJain <= 0 || os.RateJain > 1+1e-9 {
		t.Errorf("Jain = %v", os.RateJain)
	}
	// Empty allocation.
	empty := Occupancy(in, model.NewAllocation(in.M()))
	if empty.Allocated != 0 || empty.RateJain != 0 {
		t.Errorf("empty occupancy wrong: %+v", empty)
	}
}

func TestDOTOutput(t *testing.T) {
	in := genInstance(t, 8, 40, 3, 3)
	st := core.Solve(in, core.DefaultOptions()).Strategy
	dot := DOT(in, &st)
	if !strings.HasPrefix(dot, "graph edgestorage {") || !strings.HasSuffix(strings.TrimSpace(dot), "}") {
		t.Error("DOT framing wrong")
	}
	for i := 0; i < 8; i++ {
		if !strings.Contains(dot, "v"+string(rune('0'+i))) {
			t.Errorf("node v%d missing", i)
		}
	}
	if strings.Count(dot, " -- ") != in.Top.Net.M() {
		t.Errorf("edge count = %d, want %d", strings.Count(dot, " -- "), in.Top.Net.M())
	}
	if !strings.Contains(dot, "u/") {
		t.Error("strategy overlay missing")
	}
	// Without a strategy, plain labels.
	plain := DOT(in, nil)
	if strings.Contains(plain, "u/") {
		t.Error("overlay present without strategy")
	}
}

func TestReport(t *testing.T) {
	in := genInstance(t, 10, 60, 3, 4)
	st := core.Solve(in, core.DefaultOptions()).Strategy
	rep := Report(in, &st)
	for _, want := range []string{"topology:", "coverage depth", "allocation:", "rate fairness"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	bare := Report(in, nil)
	if strings.Contains(bare, "allocation:") {
		t.Error("bare report contains strategy section")
	}
}

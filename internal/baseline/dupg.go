package baseline

import (
	"idde/internal/game"
	"idde/internal/model"
)

// DUPG is the game-theoretical baseline from the paper's §4.1 (after
// Xia et al., "Data, User and Power Allocations for Caching in
// Multi-Access Edge Computing", TPDS 2022): it "aims to maximize users'
// average data rate [and] always finds a Nash equilibrium … by
// allocating each user to the edge server directly covering the user".
// Faithful to that scheme's multi-access model, and in contrast with
// IDDE-G:
//
//   - The allocation game's payoff is the user's data rate under the
//     *single-cell* interference view — the inter-cell term F of Eq. 2
//     is outside the multi-access model, so DUP-G cannot steer around
//     cross-cell interference the way IDDE-G's Eq. 12 benefit does.
//   - Data is then placed per server for the users that actually
//     attached there, and delivery is server-local: the edge servers'
//     ability to collaborate (the paper's point) is ignored, so
//     placement chases the allocation instead of the other way round.
//
// The achieved rate and latency are evaluated under the full IDDE
// model, which is exactly where the evaluation shows the cost of the
// missing pieces.
type DUPG struct {
	Game game.Options
}

// NewDUPG returns the approach with the engine defaults.
func NewDUPG() *DUPG { return &DUPG{Game: game.DefaultOptions()} }

// Name implements Approach.
func (a *DUPG) Name() string { return "DUP-G" }

// Solve implements Approach.
func (a *DUPG) Solve(in *model.Instance, _ uint64) model.Strategy {
	// Phase 1: rate-maximizing allocation game, single-cell payoff.
	l := model.NewLedger(in, model.NewAllocation(in.M()))
	game.Run[model.Alloc](&rateGame{in: in, l: l}, a.Game)
	alloc := l.Alloc()

	// Phase 2: per-server placement for the attached users only.
	d := model.NewDelivery(in.N(), in.K())
	localReqs := make([][]int, in.N())
	for i := range localReqs {
		localReqs[i] = make([]int, in.K())
	}
	for j, al := range alloc {
		if !al.Allocated() {
			continue
		}
		for _, k := range in.Wl.Requests[j] {
			localReqs[al.Server][k]++
		}
	}
	for i := 0; i < in.N(); i++ {
		value := make([]float64, in.K())
		for k := range value {
			value[k] = itemValue(in, k, localReqs[i][k])
		}
		for _, k := range fillServerGreedy(in, i, value) {
			d.Place(i, k, in.Wl.Items[k].Size)
		}
	}
	return model.Strategy{Alloc: alloc, Delivery: d, Mode: model.ServerLocal}
}

// rateGame is the DUP-G allocation game: payoff = achievable data rate
// with the inter-cell interference term dropped. It implements
// game.Localized so the engine's dirty-set scheduler applies: the
// single-cell payoff reads only the intra-channel power of the user's
// own covering servers, so a commit perturbs at most the users covered
// by its source and destination servers.
type rateGame struct {
	in  *model.Instance
	l   *model.Ledger
	aff []int
}

func (g *rateGame) NumPlayers() int { return g.in.M() }

func (g *rateGame) Best(j int) (model.Alloc, float64, float64) {
	cur := g.l.Current(j)
	curR := float64(g.l.RateIgnoringInterCell(j, cur))
	best, bestR := cur, curR
	for _, i := range g.in.Top.Coverage[j] {
		for x := 0; x < g.in.Top.Servers[i].Channels; x++ {
			a := model.Alloc{Server: i, Channel: x}
			if a == cur {
				continue
			}
			if r := float64(g.l.RateIgnoringInterCell(j, a)); r > bestR {
				best, bestR = a, r
			}
		}
	}
	return best, bestR, curR
}

func (g *rateGame) Apply(j int, a model.Alloc) { g.l.Move(j, a) }

// Affected implements game.Localized (see rateGame's comment).
func (g *rateGame) Affected(j int, a model.Alloc) []int {
	aff := g.aff[:0]
	cur := g.l.Current(j)
	if cur.Allocated() {
		aff = append(aff, g.in.Top.Covered[cur.Server]...)
	}
	if a.Allocated() && (!cur.Allocated() || a.Server != cur.Server) {
		aff = append(aff, g.in.Top.Covered[a.Server]...)
	}
	g.aff = aff
	return aff
}

// Package baseline implements the four comparison approaches of the
// paper's evaluation (§4.1) behind a common interface:
//
//   - IDDE-IP — the IDDE model handed to a time-capped exact-style
//     solver (the paper uses IBM CPLEX capped at 100 s; we use the
//     anytime search of internal/solver — see DESIGN.md §4).
//   - SAA — sample average approximation: each edge server chooses its
//     own delivery decisions from sampled demand, maximizing a local
//     storage utility (after Ning et al.).
//   - CDP — centralized data placement: a latency-greedy centralized
//     heuristic over the same communication model (after Liu et al.).
//   - DUP-G — a game-theoretical rate-maximizing user allocation with
//     per-server (non-collaborative) data placement (after Xia et al.).
//
// IDDE-G itself is also wrapped here so the experiment harness can treat
// all five approaches uniformly.
package baseline

import (
	"sort"

	"idde/internal/model"
)

// Approach formulates an IDDE strategy for an instance. Stochastic
// approaches draw all randomness from seed, so runs are reproducible;
// deterministic approaches ignore it.
type Approach interface {
	// Name is the label used in the paper's figures.
	Name() string
	// Solve produces a complete, feasible IDDE strategy.
	Solve(in *model.Instance, seed uint64) model.Strategy
}

// nearestAllocation assigns every user to its strongest-gain covering
// server, picking the currently least-loaded channel there. This is the
// interference-blind allocation used by CDP (and as the IDDE-IP search
// seed): it maximizes signal power but ignores congestion.
func nearestAllocation(in *model.Instance) model.Allocation {
	alloc := model.NewAllocation(in.M())
	load := make([][]int, in.N())
	for i := range load {
		load[i] = make([]int, in.Top.Servers[i].Channels)
	}
	for j := 0; j < in.M(); j++ {
		best, bestG := -1, -1.0
		for _, i := range in.Top.Coverage[j] {
			if g := in.GainAt(i, j); g > bestG {
				best, bestG = i, g
			}
		}
		if best < 0 {
			continue
		}
		ch := 0
		for x := 1; x < len(load[best]); x++ {
			if load[best][x] < load[best][ch] {
				ch = x
			}
		}
		load[best][ch]++
		alloc[j] = model.Alloc{Server: best, Channel: ch}
	}
	return alloc
}

// itemValue ranks item k for server i by the cloud-latency its local
// users would save per MB of storage — the shared currency of the
// per-server placement heuristics.
func itemValue(in *model.Instance, k int, localRequests int) float64 {
	if localRequests == 0 {
		return 0
	}
	return float64(localRequests) * float64(in.CloudLatency(k)) / float64(in.Wl.Items[k].Size)
}

// fillServerGreedy packs items into server i's reservation in
// descending value order, returning the chosen items. Items with
// non-positive value are skipped.
func fillServerGreedy(in *model.Instance, i int, value []float64) []int {
	order := make([]int, len(value))
	for k := range order {
		order[k] = k
	}
	sort.Slice(order, func(a, b int) bool {
		if value[order[a]] != value[order[b]] {
			return value[order[a]] > value[order[b]]
		}
		return order[a] < order[b]
	})
	var chosen []int
	remaining := in.Wl.Capacity[i]
	for _, k := range order {
		if value[k] <= 0 {
			break
		}
		if size := in.Wl.Items[k].Size; size <= remaining {
			chosen = append(chosen, k)
			remaining -= size
		}
	}
	return chosen
}

package baseline

import (
	"idde/internal/model"
	"idde/internal/rng"
)

// SAA is the sample average approximation baseline of §4.1 (after Ning
// et al.): each edge server independently chooses which data to hold by
// maximizing a *local storage utility* — the average, over sampled
// demand subsets from its own coverage area, of the latency saved for
// covered requests plus a coverage bonus for each distinct user served.
// User allocation is interference-blind: each user picks a uniformly
// random covering server and channel, which is why SAA trails every
// other approach on average data rate in the paper's figures.
type SAA struct {
	// Samples is the number of demand subsamples per candidate subset.
	Samples int
	// Candidates is the number of random feasible item subsets scored
	// per server.
	Candidates int
	// SubsampleFraction of local requests kept per demand sample.
	SubsampleFraction float64
	// CoverageBonus rewards each distinct user served locally
	// (seconds-equivalent per user).
	CoverageBonus float64
}

// NewSAA returns the configuration used in the experiments. The
// sampling effort mirrors the original scheme's cost profile: SAA is
// the slowest of the heuristics (the paper's Fig. 7 puts it at roughly
// 2× IDDE-G and DUP-G).
func NewSAA() *SAA {
	return &SAA{Samples: 24, Candidates: 36, SubsampleFraction: 0.6, CoverageBonus: 0.005}
}

// Name implements Approach.
func (a *SAA) Name() string { return "SAA" }

// Solve implements Approach.
func (a *SAA) Solve(in *model.Instance, seed uint64) model.Strategy {
	s := rng.New(seed).Split("saa")

	// Interference-blind random allocation.
	allocStream := s.Split("alloc")
	alloc := model.NewAllocation(in.M())
	for j := 0; j < in.M(); j++ {
		vs := in.Top.Coverage[j]
		if len(vs) == 0 {
			continue
		}
		i := vs[allocStream.IntN(len(vs))]
		alloc[j] = model.Alloc{Server: i, Channel: allocStream.IntN(in.Top.Servers[i].Channels)}
	}

	// Per-server SAA placement over local demand.
	d := model.NewDelivery(in.N(), in.K())
	for i := 0; i < in.N(); i++ {
		subset := a.chooseSubset(in, i, s.SplitN("server", i))
		for _, k := range subset {
			d.Place(i, k, in.Wl.Items[k].Size)
		}
	}
	return model.Strategy{Alloc: alloc, Delivery: d, Mode: model.CoverageLocal}
}

// localRequest is one demand unit visible to a server: a covered user
// requesting an item.
type localRequest struct {
	user, item int
}

func (a *SAA) chooseSubset(in *model.Instance, i int, s *rng.Stream) []int {
	var reqs []localRequest
	for _, j := range in.Top.Covered[i] {
		for _, k := range in.Wl.Requests[j] {
			reqs = append(reqs, localRequest{user: j, item: k})
		}
	}
	if len(reqs) == 0 {
		return nil
	}

	var best []int
	bestUtil := 0.0
	for c := 0; c < a.Candidates; c++ {
		cand := a.randomFeasibleSubset(in, i, s.SplitN("cand", c))
		if len(cand) == 0 {
			continue
		}
		util := a.sampledUtility(in, reqs, cand, s.SplitN("score", c))
		if util > bestUtil {
			bestUtil = util
			best = cand
		}
	}
	return best
}

// randomFeasibleSubset shuffles the catalog and greedily packs items
// into server i's reservation.
func (a *SAA) randomFeasibleSubset(in *model.Instance, i int, s *rng.Stream) []int {
	order := s.Perm(in.K())
	remaining := in.Wl.Capacity[i]
	var subset []int
	for _, k := range order {
		if size := in.Wl.Items[k].Size; size <= remaining {
			subset = append(subset, k)
			remaining -= size
		}
	}
	return subset
}

// sampledUtility averages, over demand subsamples, the cloud-latency
// saved for requests whose item is in the subset, plus the coverage
// bonus for distinct users served.
func (a *SAA) sampledUtility(in *model.Instance, reqs []localRequest, subset []int, s *rng.Stream) float64 {
	inSubset := make(map[int]bool, len(subset))
	for _, k := range subset {
		inSubset[k] = true
	}
	total := 0.0
	for sample := 0; sample < a.Samples; sample++ {
		var util float64
		served := map[int]bool{}
		for _, r := range reqs {
			if !s.Bool(a.SubsampleFraction) {
				continue
			}
			if inSubset[r.item] {
				util += float64(in.CloudLatency(r.item))
				served[r.user] = true
			}
		}
		util += a.CoverageBonus * float64(len(served))
		total += util
	}
	return total / float64(a.Samples)
}

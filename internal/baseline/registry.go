package baseline

// All returns the five approaches in the paper's figure order:
// IDDE-IP, IDDE-G, SAA, CDP, DUP-G.
func All() []Approach {
	return []Approach{NewIDDEIP(), NewIDDEG(), NewSAA(), NewCDP(), NewDUPG()}
}

// Heuristics returns the approaches without the expensive IDDE-IP
// solver, for quick runs.
func Heuristics() []Approach {
	return []Approach{NewIDDEG(), NewSAA(), NewCDP(), NewDUPG()}
}

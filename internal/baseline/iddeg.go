package baseline

import (
	"idde/internal/core"
	"idde/internal/model"
)

// IDDEG wraps the paper's proposed approach (internal/core) behind the
// Approach interface. It is deterministic, so the seed is ignored.
type IDDEG struct {
	Options core.Options
}

// NewIDDEG returns the approach with default options.
func NewIDDEG() *IDDEG { return &IDDEG{Options: core.DefaultOptions()} }

// Name implements Approach.
func (a *IDDEG) Name() string { return "IDDE-G" }

// Solve implements Approach.
func (a *IDDEG) Solve(in *model.Instance, _ uint64) model.Strategy {
	return core.Solve(in, a.Options).Strategy
}

package baseline

import (
	"container/heap"

	"idde/internal/model"
	"idde/internal/rng"
)

// CDP is the centralized data placement baseline of §4.1 (after Liu et
// al., Fog-RAN cache placement): users go to their strongest-gain server
// (interference-blind), and a central controller greedily places the
// replica with the largest absolute latency reduction until reservations
// fill. Like the Fog-RAN model it comes from — and unlike IDDE-G's
// Phase 2 — CDP assumes a request is served either by the user's own
// serving access point or by the cloud, so its placement reasoning
// ignores the edge servers' ability to collaborate (that ability is the
// very thing the paper's evaluation isolates). It also ranks by raw
// gain, not gain-per-MB, so large popular items crowd out the tail.
type CDP struct{}

// NewCDP returns the approach.
func NewCDP() *CDP { return &CDP{} }

// Name implements Approach.
func (a *CDP) Name() string { return "CDP" }

// Solve implements Approach.
func (a *CDP) Solve(in *model.Instance, seed uint64) model.Strategy {
	// Nearest-server attachment with an arbitrary (uniform random)
	// channel: CDP optimizes latency, so the wireless side gets no
	// attention beyond picking the strongest signal.
	s := rng.New(seed).Split("cdp-channels")
	alloc := model.NewAllocation(in.M())
	for j := 0; j < in.M(); j++ {
		best, bestG := -1, -1.0
		for _, i := range in.Top.Coverage[j] {
			if g := in.GainAt(i, j); g > bestG {
				best, bestG = i, g
			}
		}
		if best < 0 {
			continue
		}
		alloc[j] = model.Alloc{Server: best, Channel: s.IntN(in.Top.Servers[best].Channels)}
	}

	// localReqs[i][k]: demand for item k among users served by i.
	localReqs := make([][]int, in.N())
	for i := range localReqs {
		localReqs[i] = make([]int, in.K())
	}
	for j, al := range alloc {
		if !al.Allocated() {
			continue
		}
		for _, k := range in.Wl.Requests[j] {
			localReqs[al.Server][k]++
		}
	}

	// Central greedy: absolute local gain = demand × cloud latency.
	// Local-only gains are independent across decisions, so a single
	// max-heap pass is exact.
	d := model.NewDelivery(in.N(), in.K())
	pq := make(cdpHeap, 0, in.N()*in.K())
	for i := 0; i < in.N(); i++ {
		for k := 0; k < in.K(); k++ {
			if localReqs[i][k] == 0 {
				continue
			}
			gain := float64(localReqs[i][k]) * float64(in.CloudLatency(k))
			pq = append(pq, cdpEntry{server: i, item: k, gain: gain})
		}
	}
	heap.Init(&pq)
	for pq.Len() > 0 {
		e := heap.Pop(&pq).(cdpEntry)
		size := in.Wl.Items[e.item].Size
		if d.Used(e.server)+size <= in.Wl.Capacity[e.server] {
			d.Place(e.server, e.item, size)
		}
	}
	return model.Strategy{Alloc: alloc, Delivery: d, Mode: model.ServerLocal}
}

type cdpEntry struct {
	server, item int
	gain         float64
}

type cdpHeap []cdpEntry

func (h cdpHeap) Len() int { return len(h) }
func (h cdpHeap) Less(i, j int) bool {
	if h[i].gain != h[j].gain {
		return h[i].gain > h[j].gain
	}
	if h[i].server != h[j].server {
		return h[i].server < h[j].server
	}
	return h[i].item < h[j].item
}
func (h cdpHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *cdpHeap) Push(x interface{}) { *h = append(*h, x.(cdpEntry)) }
func (h *cdpHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

package baseline

import (
	"time"

	"idde/internal/model"
	"idde/internal/rng"
	"idde/internal/solver"
)

// IDDEIP is the paper's exact-model baseline: the full IDDE formulation
// of §2.3 handed to a time-capped solver. The paper uses the IBM CPLEX
// CP Optimizer with a 100-second search cap; this implementation hands
// the same joint (α, σ) decision space and objectives to the anytime
// search of internal/solver under a configurable budget (see DESIGN.md
// §4 for the substitution). The two objectives are scalarized with
// Objective #1 dominant, as the paper's ordering implies (IDDE-IP
// tracks IDDE-G on data rate but trails badly on latency):
//
//	score = R_avg / R̄_max − w·L_avg / L̄_cloud,  w = 0.25
//
// (both terms normalized to ≈[0,1]), mirroring a weighted CP model. The characteristic behaviour — far
// more computation for no better, often worse, strategies — is what the
// evaluation exercises.
type IDDEIP struct {
	// Budget caps the search wall-clock (the paper's 100 s, scaled
	// down by default so the full figure sweep stays laptop-friendly).
	Budget time.Duration
	// MaxIters optionally caps evaluations instead (deterministic runs).
	MaxIters int
	// Anneal enables downhill acceptance.
	Anneal bool
}

// NewIDDEIP returns the baseline with the default scaled-down budget.
func NewIDDEIP() *IDDEIP {
	return &IDDEIP{Budget: 500 * time.Millisecond, Anneal: true}
}

// Name implements Approach.
func (a *IDDEIP) Name() string { return "IDDE-IP" }

// Solve implements Approach.
func (a *IDDEIP) Solve(in *model.Instance, seed uint64) model.Strategy {
	p := &ipProblem{in: in, cloudAvg: avgCloudLatency(in), rateCap: avgRateCap(in)}
	res := solver.Maximize[*ipState](p, solver.Options{
		Budget:   a.Budget,
		MaxIters: a.MaxIters,
		Anneal:   a.Anneal,
		Seed:     seed,
	})
	st := res.Best
	return model.Strategy{Alloc: st.alloc, Delivery: st.delivery}
}

func avgCloudLatency(in *model.Instance) float64 {
	total := 0.0
	n := 0
	for _, items := range in.Wl.Requests {
		for _, k := range items {
			total += float64(in.CloudLatency(k))
			n++
		}
	}
	if n == 0 {
		return 1
	}
	return total / float64(n)
}

func avgRateCap(in *model.Instance) float64 {
	if in.M() == 0 {
		return 1
	}
	total := 0.0
	for _, u := range in.Top.Users {
		total += float64(u.MaxRate)
	}
	return total / float64(in.M())
}

// ipState is the joint decision vector the CP model searches over.
type ipState struct {
	alloc    model.Allocation
	delivery *model.Delivery
}

type ipProblem struct {
	in       *model.Instance
	cloudAvg float64
	rateCap  float64
}

func (p *ipProblem) Initial(r *rng.Stream) *ipState {
	// Seed with the interference-blind nearest allocation and an empty
	// delivery profile — feasible, and roughly what a CP solver's first
	// incumbent looks like.
	return &ipState{
		alloc:    nearestAllocation(p.in),
		delivery: model.NewDelivery(p.in.N(), p.in.K()),
	}
}

func (p *ipProblem) Clone(s *ipState) *ipState {
	return &ipState{alloc: s.alloc.Clone(), delivery: s.delivery.Clone()}
}

func (p *ipProblem) Mutate(s *ipState, r *rng.Stream) {
	in := p.in
	if r.Bool(0.5) && in.M() > 0 {
		// Reassign a random user to a random covering channel.
		j := r.IntN(in.M())
		vs := in.Top.Coverage[j]
		if len(vs) == 0 {
			return
		}
		i := vs[r.IntN(len(vs))]
		s.alloc[j] = model.Alloc{Server: i, Channel: r.IntN(in.Top.Servers[i].Channels)}
		return
	}
	// Toggle a random delivery decision, respecting Eq. 6.
	i := r.IntN(in.N())
	k := r.IntN(in.K())
	size := in.Wl.Items[k].Size
	if s.delivery.Placed(i, k) {
		// Rebuild without (i,k): Delivery has no Remove on purpose (the
		// greedy never removes), so the mutation reconstructs.
		nd := model.NewDelivery(in.N(), in.K())
		for i2 := 0; i2 < in.N(); i2++ {
			for k2 := 0; k2 < in.K(); k2++ {
				if s.delivery.Placed(i2, k2) && !(i2 == i && k2 == k) {
					nd.Place(i2, k2, in.Wl.Items[k2].Size)
				}
			}
		}
		s.delivery = nd
		return
	}
	if s.delivery.Used(i)+size <= in.Wl.Capacity[i] {
		s.delivery.Place(i, k, size)
	}
}

// latencyWeight is the scalarization weight w of the latency term.
const latencyWeight = 0.25

func (p *ipProblem) Score(s *ipState) float64 {
	rate, lat := p.in.Evaluate(model.Strategy{Alloc: s.alloc, Delivery: s.delivery})
	return float64(rate)/p.rateCap - latencyWeight*float64(lat)/p.cloudAvg
}

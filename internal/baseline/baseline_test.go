package baseline

import (
	"math"
	"testing"

	"idde/internal/model"
	"idde/internal/radio"
	"idde/internal/rng"
	"idde/internal/topology"
	"idde/internal/units"
	"idde/internal/workload"
)

func genInstance(t *testing.T, n, m, k int, seed uint64) *model.Instance {
	t.Helper()
	s := rng.New(seed)
	top, err := topology.Generate(topology.DefaultGen(n, m, 1.0), s.Split("top"))
	if err != nil {
		t.Fatalf("topology: %v", err)
	}
	wl, err := workload.Generate(workload.DefaultGen(k), n, m, s.Split("wl"))
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	in, err := model.New(top, wl, radio.Default())
	if err != nil {
		t.Fatalf("model: %v", err)
	}
	return in
}

// fastIP returns an IDDE-IP configured for deterministic, quick tests.
func fastIP() *IDDEIP {
	return &IDDEIP{MaxIters: 3000, Anneal: true}
}

func testApproaches() []Approach {
	return []Approach{fastIP(), NewIDDEG(), NewSAA(), NewCDP(), NewDUPG()}
}

func TestEveryApproachProducesValidStrategies(t *testing.T) {
	in := genInstance(t, 15, 100, 4, 1)
	for _, ap := range testApproaches() {
		st := ap.Solve(in, 42)
		if err := in.Check(st); err != nil {
			t.Errorf("%s: invalid strategy: %v", ap.Name(), err)
			continue
		}
		rate, lat := in.Evaluate(st)
		if rate < 0 || math.IsNaN(float64(rate)) || math.IsInf(float64(rate), 0) {
			t.Errorf("%s: bad rate %v", ap.Name(), rate)
		}
		if lat < 0 || math.IsNaN(float64(lat)) {
			t.Errorf("%s: bad latency %v", ap.Name(), lat)
		}
	}
}

func TestApproachNames(t *testing.T) {
	want := map[string]bool{"IDDE-IP": true, "IDDE-G": true, "SAA": true, "CDP": true, "DUP-G": true}
	for _, ap := range All() {
		if !want[ap.Name()] {
			t.Errorf("unexpected approach name %q", ap.Name())
		}
		delete(want, ap.Name())
	}
	if len(want) != 0 {
		t.Errorf("missing approaches: %v", want)
	}
	if len(Heuristics()) != 4 {
		t.Errorf("Heuristics count = %d", len(Heuristics()))
	}
}

func TestStochasticApproachesAreSeedDeterministic(t *testing.T) {
	in := genInstance(t, 12, 80, 4, 3)
	for _, mk := range []func() Approach{
		func() Approach { return NewSAA() },
		func() Approach { return fastIP() },
	} {
		a1, a2 := mk(), mk()
		s1 := a1.Solve(in, 7)
		s2 := a2.Solve(in, 7)
		r1, l1 := in.Evaluate(s1)
		r2, l2 := in.Evaluate(s2)
		if r1 != r2 || l1 != l2 {
			t.Errorf("%s: same seed gave different outcomes (%v/%v vs %v/%v)",
				a1.Name(), r1, l1, r2, l2)
		}
	}
}

func TestSAADiffersAcrossSeeds(t *testing.T) {
	in := genInstance(t, 12, 80, 4, 4)
	a := NewSAA()
	r1, _ := in.Evaluate(a.Solve(in, 1))
	r2, _ := in.Evaluate(a.Solve(in, 2))
	if r1 == r2 {
		t.Skip("seeds happened to coincide; acceptable but unusual")
	}
}

func TestDUPGPlacesOnlyLocallyUsefulItems(t *testing.T) {
	in := genInstance(t, 12, 80, 4, 5)
	st := NewDUPG().Solve(in, 0)
	// Every replica DUP-G places must be requested by at least one user
	// allocated to that server.
	localReq := make(map[[2]int]bool)
	for j, a := range st.Alloc {
		if !a.Allocated() {
			continue
		}
		for _, k := range in.Wl.Requests[j] {
			localReq[[2]int{a.Server, k}] = true
		}
	}
	for i := 0; i < in.N(); i++ {
		for k := 0; k < in.K(); k++ {
			if st.Delivery.Placed(i, k) && !localReq[[2]int{i, k}] {
				t.Errorf("DUP-G placed (%d,%d) with no local demand", i, k)
			}
		}
	}
}

func TestCDPAllocationIsNearestServer(t *testing.T) {
	in := genInstance(t, 12, 60, 3, 6)
	st := NewCDP().Solve(in, 0)
	for j, a := range st.Alloc {
		if !a.Allocated() {
			continue
		}
		for _, i := range in.Top.Coverage[j] {
			if in.GainAt(i, j) > in.GainAt(a.Server, j)+1e-15 {
				t.Errorf("user %d allocated to v%d but v%d has higher gain", j, a.Server, i)
			}
		}
	}
}

func TestIDDEIPImprovesOnItsSeedState(t *testing.T) {
	in := genInstance(t, 12, 80, 4, 8)
	ip := fastIP()
	st := ip.Solve(in, 9)
	rate, lat := in.Evaluate(st)
	// The search starts from nearest-allocation + empty delivery; the
	// incumbent must score at least as well.
	seedRate := in.AvgRate(nearestAllocation(in))
	seedLat := in.AvgLatency(nearestAllocation(in), model.NewDelivery(in.N(), in.K()))
	p := &ipProblem{in: in, cloudAvg: avgCloudLatency(in), rateCap: avgRateCap(in)}
	seedScore := float64(seedRate)/p.rateCap - float64(seedLat)/p.cloudAvg
	gotScore := float64(rate)/p.rateCap - float64(lat)/p.cloudAvg
	if gotScore < seedScore-1e-12 {
		t.Errorf("IP incumbent score %v below seed score %v", gotScore, seedScore)
	}
}

// TestDegenerateScenarios: every approach must stay correct when the
// scenario collapses to its edges — a single item, a near-empty user
// population, more channels than users, or storage too small for any
// replica.
func TestDegenerateScenarios(t *testing.T) {
	cases := []struct {
		name    string
		n, m, k int
	}{
		{"single-item", 10, 60, 1},
		{"few-users", 10, 3, 3},
		{"single-server-worth", 2, 10, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := genInstance(t, tc.n, tc.m, tc.k, 77)
			for _, ap := range testApproaches() {
				st := ap.Solve(in, 1)
				if err := in.Check(st); err != nil {
					t.Errorf("%s: %v", ap.Name(), err)
				}
			}
		})
	}
}

func TestTinyStorageMeansNoReplicas(t *testing.T) {
	// Capacities below the smallest item: nothing can be placed, all
	// deliveries degenerate to cloud-only, and nobody crashes.
	s := rng.New(88)
	top, err := topology.Generate(topology.DefaultGen(8, 40, 1.0), s.Split("top"))
	if err != nil {
		t.Fatal(err)
	}
	wc := workload.DefaultGen(3)
	wc.Capacity = [2]units.MegaBytes{1, 5} // < 30MB min item size
	wl, err := workload.Generate(wc, 8, 40, s.Split("wl"))
	if err != nil {
		t.Fatal(err)
	}
	in, err := model.New(top, wl, radio.Default())
	if err != nil {
		t.Fatal(err)
	}
	for _, ap := range testApproaches() {
		st := ap.Solve(in, 1)
		if err := in.Check(st); err != nil {
			t.Fatalf("%s: %v", ap.Name(), err)
		}
		if st.Delivery.Count() != 0 {
			t.Errorf("%s placed %d replicas into impossible storage", ap.Name(), st.Delivery.Count())
		}
		_, lat := in.Evaluate(st)
		if lat <= 0 {
			t.Errorf("%s: cloud-only latency %v", ap.Name(), lat)
		}
	}
}

// TestHeadlineOrdering reproduces the paper's core comparative claim on
// a small ensemble: IDDE-G achieves the highest average data rate and
// the lowest average delivery latency of the five approaches.
func TestHeadlineOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("ensemble comparison skipped in -short")
	}
	const seeds = 3
	rateSum := map[string]float64{}
	latSum := map[string]float64{}
	for seed := uint64(0); seed < seeds; seed++ {
		in := genInstance(t, 20, 150, 5, 100+seed)
		for _, ap := range testApproaches() {
			st := ap.Solve(in, seed)
			rate, lat := in.Evaluate(st)
			rateSum[ap.Name()] += float64(rate)
			latSum[ap.Name()] += float64(lat)
		}
	}
	for name, r := range rateSum {
		if name == "IDDE-G" {
			continue
		}
		if rateSum["IDDE-G"] < r {
			t.Errorf("IDDE-G mean rate %v below %s %v", rateSum["IDDE-G"]/seeds, name, r/seeds)
		}
		if latSum["IDDE-G"] > latSum[name] {
			t.Errorf("IDDE-G mean latency %v above %s %v", latSum["IDDE-G"]/seeds, name, latSum[name]/seeds)
		}
	}
}

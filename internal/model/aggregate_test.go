package model

import (
	"math"
	"sync"
	"testing"

	"idde/internal/rng"
)

// randomMove draws a random decision for user j: mostly a covering
// (server, channel), occasionally Unallocated.
func randomMove(in *Instance, j int, s *rng.Stream) Alloc {
	if s.Bool(0.1) {
		return Unallocated
	}
	vs := in.Top.Coverage[j]
	if len(vs) == 0 {
		return Unallocated
	}
	i := vs[s.IntN(len(vs))]
	return Alloc{Server: i, Channel: s.IntN(in.Top.Servers[i].Channels)}
}

// TestAggregateInterCellMatchesNaive is the ledger differential test:
// the incremental (receiver, source, channel) aggregates and the naive
// occupancy walk evaluate the same Eq. 2 sum, so after any seeded
// random walk of moves and removals every hypothetical interference,
// SINR and benefit must agree up to summation-order rounding.
func TestAggregateInterCellMatchesNaive(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 7, 2022} {
		in := genInstance(t, 12, 80, 4, seed)
		s := rng.New(seed * 31)
		agg := NewLedger(in, NewAllocation(in.M()))
		ref := NewLedger(in, NewAllocation(in.M()))
		ref.SetNaiveInterference(true)

		for step := 0; step < 25; step++ {
			for b := 0; b < 12; b++ {
				j := s.IntN(in.M())
				a := randomMove(in, j, s)
				agg.Move(j, a)
				ref.Move(j, a)
			}
			// Compare a swath of hypothetical decisions, including
			// out-of-coverage receivers' channels via Coverage walk.
			for probe := 0; probe < 40; probe++ {
				j := s.IntN(in.M())
				vs := in.Top.Coverage[j]
				if len(vs) == 0 {
					continue
				}
				i := vs[s.IntN(len(vs))]
				a := Alloc{Server: i, Channel: s.IntN(in.Top.Servers[i].Channels)}
				fa := float64(agg.interCell(j, a))
				fr := float64(ref.interCell(j, a))
				if math.Abs(fa-fr) > 1e-9*math.Max(1e-30, fr) {
					t.Fatalf("seed %d step %d: interCell(%d,%v) aggregate %g != naive %g",
						seed, step, j, a, fa, fr)
				}
				ba, br := agg.Benefit(j, a), ref.Benefit(j, a)
				if math.Abs(ba-br) > 1e-9*math.Max(1, br) {
					t.Fatalf("seed %d step %d: Benefit(%d,%v) aggregate %g != naive %g",
						seed, step, j, a, ba, br)
				}
				sa, sr := agg.SINR(j, a), ref.SINR(j, a)
				if math.Abs(sa-sr) > 1e-9*math.Max(1, sr) {
					t.Fatalf("seed %d step %d: SINR mismatch %g vs %g", seed, step, sa, sr)
				}
			}
			// Drift guard: the mutated aggregate ledger must also agree
			// with a freshly built one (whose rows are recomputed from
			// the registries, not incrementally maintained).
			fresh := NewLedger(in, agg.Alloc())
			for j := 0; j < in.M(); j++ {
				ri, rf := float64(agg.CurrentRate(j)), float64(fresh.CurrentRate(j))
				if math.Abs(ri-rf) > 1e-9*math.Max(1, rf) {
					t.Fatalf("seed %d step %d: incremental aggregate drifted: rate %g vs fresh %g",
						seed, step, ri, rf)
				}
			}
		}
	}
}

// TestAggregateEmptiedChannelIsExactlyZero pins down the fp-drift
// guard: a channel whose occupants all leave must report exactly zero
// interference (not residual rounding), because empty channels are
// where exact benefit ties occur and residues would flip argmax
// decisions against the reference path.
func TestAggregateEmptiedChannelIsExactlyZero(t *testing.T) {
	in := genInstance(t, 8, 60, 3, 5)
	l := NewLedger(in, NewAllocation(in.M()))
	s := rng.New(17)
	// Churn users on and off channel 0 of their first covering server.
	joined := []int{}
	for j := 0; j < in.M(); j++ {
		if len(in.Top.Coverage[j]) == 0 {
			continue
		}
		i := in.Top.Coverage[j][0]
		l.Move(j, Alloc{Server: i, Channel: 0})
		joined = append(joined, j)
		// Force the aggregate rows to materialize mid-churn.
		l.interCell(j, Alloc{Server: i, Channel: 0})
	}
	s.Shuffle(len(joined), func(a, b int) { joined[a], joined[b] = joined[b], joined[a] })
	for _, j := range joined {
		l.Move(j, Unallocated)
	}
	// Every channel is empty again: every hypothetical decision must see
	// exactly zero inter-cell interference on the aggregate path.
	for _, j := range joined {
		for _, i := range in.Top.Coverage[j] {
			for x := 0; x < in.Top.Servers[i].Channels; x++ {
				if f := float64(l.interCell(j, Alloc{Server: i, Channel: x})); f != 0 {
					t.Fatalf("emptied channel (%d,%d) reports interference %g for user %d", i, x, f, j)
				}
			}
		}
	}
}

// TestAggregateRowsBuildConcurrently exercises the lazy row publication
// under concurrent best-response-style evaluation (run with -race).
func TestAggregateRowsBuildConcurrently(t *testing.T) {
	in := genInstance(t, 10, 120, 3, 9)
	s := rng.New(11)
	l := NewLedger(in, randomValidAllocation(in, s))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := w; j < in.M(); j += 8 {
				for _, i := range in.Top.Coverage[j] {
					for x := 0; x < in.Top.Servers[i].Channels; x++ {
						_ = l.Benefit(j, Alloc{Server: i, Channel: x})
					}
				}
			}
		}(w)
	}
	wg.Wait()
	// Cross-check a few values against the naive path after the builds.
	ref := NewLedger(in, l.Alloc())
	ref.SetNaiveInterference(true)
	for j := 0; j < in.M(); j += 7 {
		for _, i := range in.Top.Coverage[j] {
			a := Alloc{Server: i, Channel: 0}
			ba, br := l.Benefit(j, a), ref.Benefit(j, a)
			if math.Abs(ba-br) > 1e-9*math.Max(1, br) {
				t.Fatalf("post-concurrent-build Benefit mismatch for (%d,%v): %g vs %g", j, a, ba, br)
			}
		}
	}
}

// TestSetNaiveInterferenceRoundTrip: toggling the reference path on and
// off must not serve stale aggregates.
func TestSetNaiveInterferenceRoundTrip(t *testing.T) {
	in := genInstance(t, 8, 50, 3, 13)
	s := rng.New(19)
	l := NewLedger(in, randomValidAllocation(in, s))
	j := 0
	for len(in.Top.Coverage[j]) == 0 {
		j++
	}
	a := Alloc{Server: in.Top.Coverage[j][0], Channel: 0}
	before := float64(l.interCell(j, a)) // builds aggregate rows
	l.SetNaiveInterference(true)
	// Mutate while the aggregates are disabled: rows must not be
	// maintained, and must be rebuilt after re-enabling.
	for step := 0; step < 40; step++ {
		q := s.IntN(in.M())
		l.Move(q, randomMove(in, q, s))
	}
	naive := float64(l.interCell(j, a))
	l.SetNaiveInterference(false)
	rebuilt := float64(l.interCell(j, a))
	if math.Abs(rebuilt-naive) > 1e-9*math.Max(1e-30, naive) {
		t.Fatalf("rebuilt aggregate %g != naive %g (stale rows?)", rebuilt, naive)
	}
	_ = before
}

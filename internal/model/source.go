package model

// BestSource resolves Eq. 8's argmin for request (j,k) under the given
// profiles and delivery mode: the edge server the item should be fetched
// from, or viaEdge=false when the cloud wins (or no edge holder
// qualifies). Ties between an edge holder and the cloud go to the edge,
// matching the simulator's historical behaviour.
//
// The skip predicate (nil = no exclusions) removes candidate sources
// from consideration. The discrete-event simulator's failover path uses
// it to ask for the next-best replica after a source has exhausted its
// retry budget, and chaos tooling uses it to preview degraded routings.
func (in *Instance) BestSource(alloc Allocation, d *Delivery, j, k int, mode DeliveryMode, skip func(server int) bool) (src int, viaEdge bool) {
	a := alloc[j]
	if !a.Allocated() {
		return -1, false
	}
	none := func(int) bool { return false }
	if skip == nil {
		skip = none
	}
	switch mode {
	case Collaborative:
		best := in.CloudLatency(k)
		src = -1
		for o := 0; o < in.N(); o++ {
			if skip(o) || !d.Placed(o, k) {
				continue
			}
			if l := in.EdgeLatency(k, o, a.Server); l < best || (src < 0 && l <= best) {
				best = l
				src = o
			}
		}
		if src < 0 {
			return -1, false
		}
		return src, true
	case CoverageLocal:
		for _, o := range in.Top.Coverage[j] {
			if !skip(o) && d.Placed(o, k) {
				return o, true
			}
		}
	case ServerLocal:
		if !skip(a.Server) && d.Placed(a.Server, k) {
			return a.Server, true
		}
	}
	return -1, false
}

// FailedServers lists the servers marked failed in the topology,
// ascending. Healthy instances return nil.
func (in *Instance) FailedServers() []int {
	var out []int
	for i, sv := range in.Top.Servers {
		if sv.Failed {
			out = append(out, i)
		}
	}
	return out
}

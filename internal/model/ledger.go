package model

import (
	"sync"
	"sync/atomic"

	"idde/internal/radio"
	"idde/internal/units"
)

// Ledger tracks, for a mutable allocation profile, which users occupy
// each (server, channel) and the total transmit power there. It answers
// the per-user quantities of §2.2 — SINR (Eq. 2), achievable rate
// (Eqs. 3–4) and the game benefit (Eq. 12) — for both the current
// decision and hypothetical moves, in time proportional to the coverage
// set of the user involved rather than to M or to channel occupancy.
//
// Two interference evaluators coexist. The default keeps, per (receiver
// server i, source server o, channel x), the gain-weighted power sum
// Σ_{t∈users[o][x]} Gain[i][t]·p_t, so the inter-cell term F of Eq. (2)
// is |V_j| lookups instead of a walk over every co-channel occupant.
// Receiver rows are built lazily (one-shot evaluations never pay for
// them) and maintained in O(built receivers) per Move. The naive
// reference scan remains available via SetNaiveInterference for
// differential tests and drift-sensitive debugging; the two differ only
// in floating-point summation order.
type Ledger struct {
	in    *Instance
	alloc Allocation
	// users[i][x] lists the users on channel x of server i.
	users [][][]int
	// power[i][x] is Σ p_t over those users.
	power [][]units.Watts

	// agg[i] points at the lazily built receiver-i aggregate row:
	// vals[srcOff[o]+x] = Σ_{t∈users[o][x]} Gain[i][t]·p_t, restricted
	// to sources o that co-cover a user with i — the only sources the
	// Eq. 2 Coverage walk can pair with receiver i, so a row costs
	// O(co-covering channels) instead of O(all channels), which is what
	// keeps aggregate memory flat at N≥1000 under local coverage. Rows
	// are published atomically so concurrent best-response scans may
	// fault them in; Move (single-writer by the Adapter contract)
	// updates only rows that exist.
	agg   []atomic.Pointer[aggRowData]
	aggMu sync.Mutex
	// naive switches interCell to the O(occupancy) reference scan.
	naive bool
}

// NewLedger builds a ledger over a copy of the given profile.
func NewLedger(in *Instance, alloc Allocation) *Ledger {
	l := &Ledger{
		in:    in,
		alloc: alloc.Clone(),
		users: make([][][]int, in.N()),
		power: make([][]units.Watts, in.N()),
		agg:   make([]atomic.Pointer[aggRowData], in.N()),
	}
	for i := 0; i < in.N(); i++ {
		c := in.Top.Servers[i].Channels
		l.users[i] = make([][]int, c)
		l.power[i] = make([]units.Watts, c)
	}
	for j, d := range l.alloc {
		if d.Allocated() {
			l.users[d.Server][d.Channel] = append(l.users[d.Server][d.Channel], j)
			l.power[d.Server][d.Channel] += in.Top.Users[j].Power
		}
	}
	return l
}

// SetNaiveInterference toggles the O(occupancy) reference scan for the
// inter-cell interference term of Eq. (2). The aggregate evaluator is a
// pure reassociation of the same sum; results agree up to floating-point
// summation order (the differential tests in this package pin that
// down). The naive path exists for drift-sensitive debugging and as the
// perf-baseline reference.
func (l *Ledger) SetNaiveInterference(on bool) {
	l.naive = on
	// Built rows go stale while the naive path runs (Move stops
	// maintaining them); drop them so re-enabling rebuilds from scratch.
	for i := range l.agg {
		l.agg[i].Store(nil)
	}
}

// Alloc returns a snapshot of the current profile.
func (l *Ledger) Alloc() Allocation { return l.alloc.Clone() }

// Current reports user j's current decision.
func (l *Ledger) Current(j int) Alloc { return l.alloc[j] }

// Occupancy reports how many users share channel x of server i.
func (l *Ledger) Occupancy(i, x int) int { return len(l.users[i][x]) }

// Move reassigns user j to decision a (possibly Unallocated),
// maintaining the channel registries and any built aggregate rows in
// O(built receivers). Move must not race with concurrent evaluations
// (the game engine serializes Apply).
func (l *Ledger) Move(j int, a Alloc) {
	cur := l.alloc[j]
	if cur == a {
		return
	}
	if cur.Allocated() {
		l.remove(j, cur)
	}
	if a.Allocated() {
		l.users[a.Server][a.Channel] = append(l.users[a.Server][a.Channel], j)
		l.power[a.Server][a.Channel] += l.in.Top.Users[j].Power
	}
	l.alloc[j] = a
	l.aggMove(j, cur, a)
}

// aggRowData is one receiver's aggregate row, restricted to the sources
// that can ever be paired with it by the Eq. 2 Coverage walk.
type aggRowData struct {
	// srcOff[o] is the offset of source o's channel block in vals, or
	// -1 when o never co-covers a user with the receiver. Such cells
	// are only reachable through off-coverage hypotheticals, which
	// interCell serves with a single-cell reference walk instead.
	srcOff []int32
	vals   []float64
}

// aggMove folds user j's contribution Gain[i][j]·p_j out of (from) and
// into (to) every built receiver row. Cells outside a row's co-covering
// source set are simply absent and skipped.
func (l *Ledger) aggMove(j int, from, to Alloc) {
	if l.naive {
		return
	}
	// Invariant: a built cell always equals the left-to-right fold of
	// Gain[i][t]·p_t over the current users[o][x] list — exactly what a
	// fresh build computes. Appends extend the fold with one more term;
	// removals recompute the cell from the (typically short) survivor
	// list instead of subtracting, because incremental subtraction
	// leaves residue proportional to the largest *historical* occupant,
	// which can dwarf the remaining sum and flip argmax decisions
	// against the reference path on near-empty channels.
	var fromUsers []int
	if from.Allocated() {
		fromUsers = l.users[from.Server][from.Channel]
	}
	p := float64(l.in.Top.Users[j].Power)
	for i := range l.agg {
		d := l.agg[i].Load()
		if d == nil {
			continue
		}
		gi := l.in.Gain[i]
		if from.Allocated() {
			if off := d.srcOff[from.Server]; off >= 0 {
				var sum float64
				for _, t := range fromUsers {
					sum += gi[t] * float64(l.in.Top.Users[t].Power)
				}
				d.vals[int(off)+from.Channel] = sum
			}
		}
		if to.Allocated() {
			if off := d.srcOff[to.Server]; off >= 0 {
				d.vals[int(off)+to.Channel] += gi[j] * p
			}
		}
	}
}

// aggRow returns the receiver-i aggregate row, building it on first use
// over the co-covering sources only: the union of Coverage[j] across
// users j that server i covers. Safe for concurrent callers between
// Moves.
func (l *Ledger) aggRow(i int) *aggRowData {
	if d := l.agg[i].Load(); d != nil {
		return d
	}
	l.aggMu.Lock()
	defer l.aggMu.Unlock()
	if d := l.agg[i].Load(); d != nil {
		return d
	}
	d := &aggRowData{srcOff: make([]int32, l.in.N())}
	for o := range d.srcOff {
		d.srcOff[o] = -1
	}
	for _, cov := range l.in.Top.Coverage {
		covered := false
		for _, o := range cov {
			if o == i {
				covered = true
				break
			}
		}
		if !covered {
			continue
		}
		for _, o := range cov {
			d.srcOff[o] = 0 // mark; offsets assigned below
		}
	}
	var width int32
	for o := range d.srcOff {
		if d.srcOff[o] < 0 {
			continue
		}
		d.srcOff[o] = width
		width += int32(l.in.Top.Servers[o].Channels)
	}
	d.vals = make([]float64, width)
	gi := l.in.Gain[i]
	for o := range l.users {
		off := d.srcOff[o]
		if off < 0 {
			continue
		}
		for x, us := range l.users[o] {
			var sum float64
			for _, t := range us {
				sum += gi[t] * float64(l.in.Top.Users[t].Power)
			}
			d.vals[int(off)+x] = sum
		}
	}
	l.agg[i].Store(d)
	return d
}

func (l *Ledger) remove(j int, a Alloc) {
	us := l.users[a.Server][a.Channel]
	for idx, u := range us {
		if u == j {
			us[idx] = us[len(us)-1]
			l.users[a.Server][a.Channel] = us[:len(us)-1]
			break
		}
	}
	l.power[a.Server][a.Channel] -= l.in.Top.Users[j].Power
	if l.power[a.Server][a.Channel] < 0 {
		l.power[a.Server][a.Channel] = 0 // guard fp drift
	}
}

// interCell computes F_{i,x,j} of Eq. (2): the interference measured at
// server i on channel x from users allocated to channel x of the *other*
// servers covering user j, under the hypothesis that j itself sits at
// (i,x) (so j never self-interferes). The default path reads one
// pre-aggregated sum per covering server — O(|V_j|) — and subtracts j's
// own contribution where j currently occupies a summed channel.
func (l *Ledger) interCell(j int, a Alloc) units.Watts {
	if l.naive {
		return l.interCellNaive(j, a)
	}
	d := l.aggRow(a.Server)
	cur := l.alloc[j]
	var f float64
	for _, o := range l.in.Top.Coverage[j] {
		if o == a.Server || a.Channel >= len(l.users[o]) {
			continue
		}
		off := d.srcOff[o]
		if off < 0 {
			// Off-coverage hypothetical: a.Server does not cover j (else
			// o would co-cover with it), so the row has no cell for o.
			// Walk the single (o, channel) cell directly; j can't be in
			// it under the game's coverage-constrained moves, but skip
			// it anyway for arbitrary-caller safety.
			gi := l.in.Gain[a.Server]
			for _, t := range l.users[o][a.Channel] {
				if t == j {
					continue
				}
				f += gi[t] * float64(l.in.Top.Users[t].Power)
			}
			continue
		}
		f += d.vals[int(off)+a.Channel]
		if cur.Server == o && cur.Channel == a.Channel {
			f -= l.in.Gain[a.Server][j] * float64(l.in.Top.Users[j].Power)
		}
	}
	if f < 0 {
		f = 0 // guard fp drift from the self-term subtraction
	}
	return units.Watts(f)
}

// interCellNaive is the reference evaluator: walk every co-channel
// occupant of every covering server (O(|V_j|·occupancy)).
func (l *Ledger) interCellNaive(j int, a Alloc) units.Watts {
	var f float64
	for _, o := range l.in.Top.Coverage[j] {
		if o == a.Server || a.Channel >= len(l.users[o]) {
			continue
		}
		for _, t := range l.users[o][a.Channel] {
			if t == j {
				continue
			}
			f += l.in.Gain[a.Server][t] * float64(l.in.Top.Users[t].Power)
		}
	}
	return units.Watts(f)
}

// intraOther computes Σ_{u_t∈U_{i,x}\u_j} p_t under the hypothesis that
// j is (or would be) allocated at a.
func (l *Ledger) intraOther(j int, a Alloc) units.Watts {
	p := l.power[a.Server][a.Channel]
	if l.alloc[j] == a {
		p -= l.in.Top.Users[j].Power
	}
	if p < 0 {
		p = 0
	}
	return p
}

// SINR evaluates Eq. (2) for user j under the hypothetical decision a.
// It reports 0 for Unallocated.
func (l *Ledger) SINR(j int, a Alloc) float64 {
	if !a.Allocated() {
		return 0
	}
	g := l.in.Gain[a.Server][j]
	return l.in.Radio.SINR(g, l.in.Top.Users[j].Power, l.intraOther(j, a), l.interCell(j, a))
}

// Rate evaluates Eqs. (3)–(4) — the Shannon rate capped at R_{j,max} —
// for user j under the hypothetical decision a.
func (l *Ledger) Rate(j int, a Alloc) units.Rate {
	if !a.Allocated() {
		return 0
	}
	b := l.in.Top.Servers[a.Server].Bandwidth
	r := radio.ShannonRate(b, l.SINR(j, a))
	return radio.CapRate(r, l.in.Top.Users[j].MaxRate)
}

// CurrentRate evaluates user j's rate under its current decision.
func (l *Ledger) CurrentRate(j int) units.Rate { return l.Rate(j, l.alloc[j]) }

// RateIgnoringInterCell evaluates Eqs. (3)–(4) with the inter-cell term
// F of Eq. (2) dropped — the simplified single-cell interference view
// some baselines (DUP-G) plan with. The *achieved* rate is still
// evaluated with the full model; this is only their decision payoff.
func (l *Ledger) RateIgnoringInterCell(j int, a Alloc) units.Rate {
	if !a.Allocated() {
		return 0
	}
	g := l.in.Gain[a.Server][j]
	sinr := l.in.Radio.SINR(g, l.in.Top.Users[j].Power, l.intraOther(j, a), 0)
	b := l.in.Top.Servers[a.Server].Bandwidth
	return radio.CapRate(radio.ShannonRate(b, sinr), l.in.Top.Users[j].MaxRate)
}

// Benefit evaluates the game benefit function of Eq. (12) for user j
// under the hypothetical decision a:
//
//	β = g·p_j / (g·Σ_{u_t∈U_{i,x}(α)} p_t + F)
//
// where the intra-channel sum includes u_j itself (the profile α has
// α_j = a). Unallocated yields 0, so any feasible allocation beats
// staying out — matching the paper's premise that all users can be
// allocated in IDDE scenarios.
func (l *Ledger) Benefit(j int, a Alloc) float64 {
	if !a.Allocated() {
		return 0
	}
	g := l.in.Gain[a.Server][j]
	p := float64(l.in.Top.Users[j].Power)
	intra := float64(l.intraOther(j, a)) + p // includes u_j per Eq. 12
	den := g*intra + float64(l.interCell(j, a))
	if den <= 0 {
		return 0
	}
	return g * p / den
}

// AvgRate evaluates Eq. (5) over the current profile: the mean rate over
// all M users (unallocated users contribute 0 per Eq. 4's indicator).
func (l *Ledger) AvgRate() units.Rate {
	if l.in.M() == 0 {
		return 0
	}
	var sum float64
	for j := range l.alloc {
		sum += float64(l.CurrentRate(j))
	}
	return units.Rate(sum / float64(l.in.M()))
}

// AvgRate evaluates Eq. (5) for an allocation profile from scratch.
func (in *Instance) AvgRate(alloc Allocation) units.Rate {
	return NewLedger(in, alloc).AvgRate()
}

// UserRate evaluates Eqs. (2)–(4) for one user from scratch.
func (in *Instance) UserRate(alloc Allocation, j int) units.Rate {
	l := NewLedger(in, alloc)
	return l.CurrentRate(j)
}

package model

import (
	"idde/internal/radio"
	"idde/internal/units"
)

// Ledger tracks, for a mutable allocation profile, which users occupy
// each (server, channel) and the total transmit power there. It answers
// the per-user quantities of §2.2 — SINR (Eq. 2), achievable rate
// (Eqs. 3–4) and the game benefit (Eq. 12) — for both the current
// decision and hypothetical moves, in time proportional to the occupancy
// of the channels involved rather than to M.
type Ledger struct {
	in    *Instance
	alloc Allocation
	// users[i][x] lists the users on channel x of server i.
	users [][][]int
	// power[i][x] is Σ p_t over those users.
	power [][]units.Watts
}

// NewLedger builds a ledger over a copy of the given profile.
func NewLedger(in *Instance, alloc Allocation) *Ledger {
	l := &Ledger{
		in:    in,
		alloc: alloc.Clone(),
		users: make([][][]int, in.N()),
		power: make([][]units.Watts, in.N()),
	}
	for i := 0; i < in.N(); i++ {
		c := in.Top.Servers[i].Channels
		l.users[i] = make([][]int, c)
		l.power[i] = make([]units.Watts, c)
	}
	for j, d := range l.alloc {
		if d.Allocated() {
			l.users[d.Server][d.Channel] = append(l.users[d.Server][d.Channel], j)
			l.power[d.Server][d.Channel] += in.Top.Users[j].Power
		}
	}
	return l
}

// Alloc returns a snapshot of the current profile.
func (l *Ledger) Alloc() Allocation { return l.alloc.Clone() }

// Current reports user j's current decision.
func (l *Ledger) Current(j int) Alloc { return l.alloc[j] }

// Occupancy reports how many users share channel x of server i.
func (l *Ledger) Occupancy(i, x int) int { return len(l.users[i][x]) }

// Move reassigns user j to decision a (possibly Unallocated),
// maintaining the channel registries.
func (l *Ledger) Move(j int, a Alloc) {
	cur := l.alloc[j]
	if cur == a {
		return
	}
	if cur.Allocated() {
		l.remove(j, cur)
	}
	if a.Allocated() {
		l.users[a.Server][a.Channel] = append(l.users[a.Server][a.Channel], j)
		l.power[a.Server][a.Channel] += l.in.Top.Users[j].Power
	}
	l.alloc[j] = a
}

func (l *Ledger) remove(j int, a Alloc) {
	us := l.users[a.Server][a.Channel]
	for idx, u := range us {
		if u == j {
			us[idx] = us[len(us)-1]
			l.users[a.Server][a.Channel] = us[:len(us)-1]
			break
		}
	}
	l.power[a.Server][a.Channel] -= l.in.Top.Users[j].Power
	if l.power[a.Server][a.Channel] < 0 {
		l.power[a.Server][a.Channel] = 0 // guard fp drift
	}
}

// interCell computes F_{i,x,j} of Eq. (2): the interference measured at
// server i on channel x from users allocated to channel x of the *other*
// servers covering user j, under the hypothesis that j itself sits at
// (i,x) (so j never self-interferes).
func (l *Ledger) interCell(j int, a Alloc) units.Watts {
	var f float64
	for _, o := range l.in.Top.Coverage[j] {
		if o == a.Server || a.Channel >= len(l.users[o]) {
			continue
		}
		for _, t := range l.users[o][a.Channel] {
			if t == j {
				continue
			}
			f += l.in.Gain[a.Server][t] * float64(l.in.Top.Users[t].Power)
		}
	}
	return units.Watts(f)
}

// intraOther computes Σ_{u_t∈U_{i,x}\u_j} p_t under the hypothesis that
// j is (or would be) allocated at a.
func (l *Ledger) intraOther(j int, a Alloc) units.Watts {
	p := l.power[a.Server][a.Channel]
	if l.alloc[j] == a {
		p -= l.in.Top.Users[j].Power
	}
	if p < 0 {
		p = 0
	}
	return p
}

// SINR evaluates Eq. (2) for user j under the hypothetical decision a.
// It reports 0 for Unallocated.
func (l *Ledger) SINR(j int, a Alloc) float64 {
	if !a.Allocated() {
		return 0
	}
	g := l.in.Gain[a.Server][j]
	return l.in.Radio.SINR(g, l.in.Top.Users[j].Power, l.intraOther(j, a), l.interCell(j, a))
}

// Rate evaluates Eqs. (3)–(4) — the Shannon rate capped at R_{j,max} —
// for user j under the hypothetical decision a.
func (l *Ledger) Rate(j int, a Alloc) units.Rate {
	if !a.Allocated() {
		return 0
	}
	b := l.in.Top.Servers[a.Server].Bandwidth
	r := radio.ShannonRate(b, l.SINR(j, a))
	return radio.CapRate(r, l.in.Top.Users[j].MaxRate)
}

// CurrentRate evaluates user j's rate under its current decision.
func (l *Ledger) CurrentRate(j int) units.Rate { return l.Rate(j, l.alloc[j]) }

// RateIgnoringInterCell evaluates Eqs. (3)–(4) with the inter-cell term
// F of Eq. (2) dropped — the simplified single-cell interference view
// some baselines (DUP-G) plan with. The *achieved* rate is still
// evaluated with the full model; this is only their decision payoff.
func (l *Ledger) RateIgnoringInterCell(j int, a Alloc) units.Rate {
	if !a.Allocated() {
		return 0
	}
	g := l.in.Gain[a.Server][j]
	sinr := l.in.Radio.SINR(g, l.in.Top.Users[j].Power, l.intraOther(j, a), 0)
	b := l.in.Top.Servers[a.Server].Bandwidth
	return radio.CapRate(radio.ShannonRate(b, sinr), l.in.Top.Users[j].MaxRate)
}

// Benefit evaluates the game benefit function of Eq. (12) for user j
// under the hypothetical decision a:
//
//	β = g·p_j / (g·Σ_{u_t∈U_{i,x}(α)} p_t + F)
//
// where the intra-channel sum includes u_j itself (the profile α has
// α_j = a). Unallocated yields 0, so any feasible allocation beats
// staying out — matching the paper's premise that all users can be
// allocated in IDDE scenarios.
func (l *Ledger) Benefit(j int, a Alloc) float64 {
	if !a.Allocated() {
		return 0
	}
	g := l.in.Gain[a.Server][j]
	p := float64(l.in.Top.Users[j].Power)
	intra := float64(l.intraOther(j, a)) + p // includes u_j per Eq. 12
	den := g*intra + float64(l.interCell(j, a))
	if den <= 0 {
		return 0
	}
	return g * p / den
}

// AvgRate evaluates Eq. (5) over the current profile: the mean rate over
// all M users (unallocated users contribute 0 per Eq. 4's indicator).
func (l *Ledger) AvgRate() units.Rate {
	if l.in.M() == 0 {
		return 0
	}
	var sum float64
	for j := range l.alloc {
		sum += float64(l.CurrentRate(j))
	}
	return units.Rate(sum / float64(l.in.M()))
}

// AvgRate evaluates Eq. (5) for an allocation profile from scratch.
func (in *Instance) AvgRate(alloc Allocation) units.Rate {
	return NewLedger(in, alloc).AvgRate()
}

// UserRate evaluates Eqs. (2)–(4) for one user from scratch.
func (in *Instance) UserRate(alloc Allocation, j int) units.Rate {
	l := NewLedger(in, alloc)
	return l.CurrentRate(j)
}

package model

import (
	"sync"
	"sync/atomic"
	"unsafe"

	"idde/internal/radio"
	"idde/internal/units"
)

// Ledger tracks, for a mutable allocation profile, which users occupy
// each (server, channel) and the total transmit power there. It answers
// the per-user quantities of §2.2 — SINR (Eq. 2), achievable rate
// (Eqs. 3–4) and the game benefit (Eq. 12) — for both the current
// decision and hypothetical moves, in time proportional to the coverage
// set of the user involved rather than to M or to channel occupancy.
//
// Two interference evaluators coexist. The default keeps, per (receiver
// server i, source server o, channel x), the gain-weighted power sum
// Σ_{t∈users[o][x]} Gain[i][t]·p_t, so the inter-cell term F of Eq. (2)
// is |V_j| lookups instead of a walk over every co-channel occupant.
// Receiver rows are built lazily (one-shot evaluations never pay for
// them) and maintained in O(built receivers) per Move. The naive
// reference scan remains available via SetNaiveInterference for
// differential tests and drift-sensitive debugging; the two differ only
// in floating-point summation order.
//
// # Aggregate-row memory
//
// Rows live in a per-ledger span arena (see spanArena): the srcOff and
// vals slices of every row are views carved out of shared backing
// slabs, and evicted rows return their spans to a free list for exact
// reuse. SetAggRowBudget additionally bounds how many rows are resident
// at once: non-resident receivers are served by a per-cell fold that
// reproduces the row arithmetic bit for bit (see interCellFold), so the
// budget trades wall-clock for memory without perturbing a single
// result. Which rows happen to be resident depends on scheduling under
// concurrent scans, but never the values — every evaluator answer is
// identical across budgets, including 0 (unlimited).
type Ledger struct {
	in    *Instance
	alloc Allocation
	// users[i][x] lists the users on channel x of server i.
	users [][][]int
	// power[i][x] is Σ p_t over those users.
	power [][]units.Watts

	// agg[i] points at the lazily built receiver-i aggregate row:
	// vals[srcOff[o]+x] = Σ_{t∈users[o][x]} Gain[i][t]·p_t, restricted
	// to sources o that co-cover a user with i — the only sources the
	// Eq. 2 Coverage walk can pair with receiver i. Rows are published
	// atomically so concurrent best-response scans may fault them in;
	// Move (single-writer by the Adapter contract) updates only rows
	// that exist.
	agg   []atomic.Pointer[aggRowData]
	aggMu sync.Mutex
	// srcSets[i] caches receiver i's co-covering source set as a bitset
	// with the total channel width. It is profile-independent, built at
	// the first row build and kept across evictions, so a rebuild costs
	// O(N + width·occupancy) instead of re-deriving co-coverage from
	// the Covered/Coverage lists (O(|Covered[i]|·|V_j|)).
	srcSets []atomic.Pointer[aggSrcSet]

	// arenaVals/arenaOffs back the row spans; rowPool recycles the row
	// headers. All three are guarded by aggMu.
	arenaVals spanArena[float64]
	arenaOffs spanArena[int32]
	rowPool   []*aggRowData

	// aggBudget caps resident rows (0 = unlimited). aggResident tracks
	// the count; aggClock is the second-chance eviction hand; aggTouch
	// counts row misses per receiver for the promotion threshold;
	// aggGrace holds evicted rows whose spans are recycled only at the
	// next Move — a quiescent point by the Adapter contract — so
	// concurrent readers holding an evicted row keep reading intact
	// (and, between Moves, still current) values.
	aggBudget    int
	aggResident  atomic.Int32
	aggClock     int
	aggTouch     []atomic.Uint32
	aggGrace     []*aggRowData
	aggEvictions int64
	aggFallbacks atomic.Int64

	// everBuilt/everRows/everWidth record which receivers ever had a
	// row, for the dense-equivalent accounting of AggMemStats.
	everBuilt   []bool
	everRows    int
	everWidth   int64
	srcSetBytes int64

	// naive switches interCell to the O(occupancy) reference scan.
	naive bool
}

// NewLedger builds a ledger over a copy of the given profile.
func NewLedger(in *Instance, alloc Allocation) *Ledger {
	l := &Ledger{
		in:        in,
		alloc:     alloc.Clone(),
		users:     make([][][]int, in.N()),
		power:     make([][]units.Watts, in.N()),
		agg:       make([]atomic.Pointer[aggRowData], in.N()),
		srcSets:   make([]atomic.Pointer[aggSrcSet], in.N()),
		everBuilt: make([]bool, in.N()),
	}
	for i := 0; i < in.N(); i++ {
		c := in.Top.Servers[i].Channels
		l.users[i] = make([][]int, c)
		l.power[i] = make([]units.Watts, c)
	}
	for j, d := range l.alloc {
		if d.Allocated() {
			l.users[d.Server][d.Channel] = append(l.users[d.Server][d.Channel], j)
			l.power[d.Server][d.Channel] += in.Top.Users[j].Power
		}
	}
	return l
}

// SetNaiveInterference toggles the O(occupancy) reference scan for the
// inter-cell interference term of Eq. (2). The aggregate evaluator is a
// pure reassociation of the same sum; results agree up to floating-point
// summation order (the differential tests in this package pin that
// down). The naive path exists for drift-sensitive debugging and as the
// perf-baseline reference. Like Move, it must not race with concurrent
// evaluations.
func (l *Ledger) SetNaiveInterference(on bool) {
	l.naive = on
	// Built rows go stale while the naive path runs (Move stops
	// maintaining them); release them so re-enabling rebuilds from
	// scratch out of the recycled spans.
	l.aggMu.Lock()
	defer l.aggMu.Unlock()
	for i := range l.agg {
		if d := l.agg[i].Load(); d != nil {
			l.agg[i].Store(nil)
			l.aggResident.Add(-1)
			l.aggGrace = append(l.aggGrace, d)
		}
	}
	l.drainGraceLocked()
}

// SetAggRowBudget bounds how many aggregate rows may be resident at
// once (0 = unlimited, the default). Evaluations against non-resident
// receivers fall back to a bit-identical per-cell fold, so every result
// is unchanged; only memory and wall-clock trade places. Must be called
// while no concurrent evaluations are in flight (setup time, or between
// game rounds).
func (l *Ledger) SetAggRowBudget(rows int) {
	if rows < 0 {
		rows = 0
	}
	l.aggMu.Lock()
	defer l.aggMu.Unlock()
	l.aggBudget = rows
	if rows > 0 && l.aggTouch == nil {
		l.aggTouch = make([]atomic.Uint32, l.in.N())
	}
	for rows > 0 && int(l.aggResident.Load()) > rows {
		l.evictLocked()
	}
	l.drainGraceLocked()
}

// Alloc returns a snapshot of the current profile.
func (l *Ledger) Alloc() Allocation { return l.alloc.Clone() }

// Current reports user j's current decision.
func (l *Ledger) Current(j int) Alloc { return l.alloc[j] }

// Occupancy reports how many users share channel x of server i.
func (l *Ledger) Occupancy(i, x int) int { return len(l.users[i][x]) }

// Move reassigns user j to decision a (possibly Unallocated),
// maintaining the channel registries and any built aggregate rows in
// O(built receivers). Move must not race with concurrent evaluations
// (the game engine serializes Apply) — which also makes it the
// quiescent point where evicted rows' spans are safe to recycle.
func (l *Ledger) Move(j int, a Alloc) {
	cur := l.alloc[j]
	if cur == a {
		return
	}
	if len(l.aggGrace) > 0 {
		l.aggMu.Lock()
		l.drainGraceLocked()
		l.aggMu.Unlock()
	}
	if cur.Allocated() {
		l.remove(j, cur)
	}
	if a.Allocated() {
		l.users[a.Server][a.Channel] = append(l.users[a.Server][a.Channel], j)
		l.power[a.Server][a.Channel] += l.in.Top.Users[j].Power
	}
	l.alloc[j] = a
	l.aggMove(j, cur, a)
}

// aggRowData is one receiver's aggregate row, restricted to the sources
// that can ever be paired with it by the Eq. 2 Coverage walk. Both
// slices are spans into the ledger's arena, released to its free list
// on eviction.
type aggRowData struct {
	// srcOff[o] is the offset of source o's channel block in vals, or
	// -1 when o never co-covers a user with the receiver. Such cells
	// are only reachable through off-coverage hypotheticals, which
	// interCell serves with a single-cell reference walk instead.
	srcOff []int32
	vals   []float64
	// ref is the second-chance bit read by the eviction clock; readers
	// set it on row hits while a budget is active.
	ref atomic.Bool
}

// aggRowHeaderBytes sizes one row header for the AggMemStats
// accounting.
var aggRowHeaderBytes = int64(unsafe.Sizeof(aggRowData{}))

// aggSrcSet is a receiver's co-covering source set (one bit per source)
// plus the total channel width of those sources.
type aggSrcSet struct {
	bits  []uint64
	width int32
}

func (s *aggSrcSet) has(o int) bool { return s.bits[o>>6]&(1<<(uint(o)&63)) != 0 }

// aggMove folds user j's contribution Gain[i][j]·p_j out of (from) and
// into (to) every built receiver row. Cells outside a row's co-covering
// source set are simply absent and skipped.
func (l *Ledger) aggMove(j int, from, to Alloc) {
	if l.naive {
		return
	}
	// Invariant: a built cell always equals the left-to-right fold of
	// Gain[i][t]·p_t over the current users[o][x] list — exactly what a
	// fresh build computes. Appends extend the fold with one more term;
	// removals recompute the cell from the (typically short) survivor
	// list instead of subtracting, because incremental subtraction
	// leaves residue proportional to the largest *historical* occupant,
	// which can dwarf the remaining sum and flip argmax decisions
	// against the reference path on near-empty channels.
	var fromUsers []int
	if from.Allocated() {
		fromUsers = l.users[from.Server][from.Channel]
	}
	p := float64(l.in.Top.Users[j].Power)
	for i := range l.agg {
		d := l.agg[i].Load()
		if d == nil {
			continue
		}
		gi := l.in.GainRow(i)
		if from.Allocated() {
			if off := d.srcOff[from.Server]; off >= 0 {
				var sum float64
				for _, t := range fromUsers {
					sum += gi.At(t) * float64(l.in.Top.Users[t].Power)
				}
				d.vals[int(off)+from.Channel] = sum
			}
		}
		if to.Allocated() {
			if off := d.srcOff[to.Server]; off >= 0 {
				d.vals[int(off)+to.Channel] += gi.At(j) * p
			}
		}
	}
}

// srcSetLocked returns receiver i's co-covering source set, deriving it
// on first use: the union of Coverage[j] across users j that server i
// covers. Caller holds aggMu.
func (l *Ledger) srcSetLocked(i int) *aggSrcSet {
	if ss := l.srcSets[i].Load(); ss != nil {
		return ss
	}
	ss := &aggSrcSet{bits: make([]uint64, (l.in.N()+63)/64)}
	for _, j := range l.in.Top.Covered[i] {
		for _, o := range l.in.Top.Coverage[j] {
			ss.bits[o>>6] |= 1 << (uint(o) & 63)
		}
	}
	for o := 0; o < l.in.N(); o++ {
		if ss.has(o) {
			ss.width += int32(l.in.Top.Servers[o].Channels)
		}
	}
	l.srcSetBytes += int64(len(ss.bits) * 8)
	l.srcSets[i].Store(ss)
	return ss
}

// buildRowLocked materializes receiver i's row out of the arena,
// filling every cell with the left-to-right fold over the current
// occupant lists (the aggMove invariant), so a rebuild after eviction
// is bit-identical to a row that was maintained all along. Caller holds
// aggMu.
func (l *Ledger) buildRowLocked(i int) *aggRowData {
	ss := l.srcSetLocked(i)
	var d *aggRowData
	if n := len(l.rowPool); n > 0 {
		d = l.rowPool[n-1]
		l.rowPool[n-1] = nil
		l.rowPool = l.rowPool[:n-1]
		d.ref.Store(false)
	} else {
		d = &aggRowData{}
	}
	d.srcOff = l.arenaOffs.alloc(l.in.N())
	d.vals = l.arenaVals.alloc(int(ss.width))
	var off int32
	for o := range d.srcOff {
		if !ss.has(o) {
			d.srcOff[o] = -1
			continue
		}
		d.srcOff[o] = off
		off += int32(l.in.Top.Servers[o].Channels)
	}
	gi := l.in.GainRow(i)
	for o := range l.users {
		off := d.srcOff[o]
		if off < 0 {
			continue
		}
		for x, us := range l.users[o] {
			var sum float64
			for _, t := range us {
				sum += gi.At(t) * float64(l.in.Top.Users[t].Power)
			}
			d.vals[int(off)+x] = sum
		}
	}
	if !l.everBuilt[i] {
		l.everBuilt[i] = true
		l.everRows++
		l.everWidth += int64(ss.width)
	}
	l.aggResident.Add(1)
	l.agg[i].Store(d)
	return d
}

// evictLocked detaches one resident row, chosen by a second-chance
// clock over the receiver indices, onto the grace list. The spans are
// recycled at the next Move, never immediately: a concurrent reader
// that loaded the row before the eviction keeps reading intact — and,
// since no Move has intervened, still current — values. Caller holds
// aggMu.
func (l *Ledger) evictLocked() {
	n := len(l.agg)
	for scanned := 0; scanned < 2*n; scanned++ {
		i := l.aggClock
		if l.aggClock++; l.aggClock == n {
			l.aggClock = 0
		}
		d := l.agg[i].Load()
		if d == nil {
			continue
		}
		if d.ref.Load() {
			d.ref.Store(false)
			continue
		}
		l.agg[i].Store(nil)
		l.aggResident.Add(-1)
		l.aggEvictions++
		l.aggGrace = append(l.aggGrace, d)
		return
	}
}

// drainGraceLocked releases evicted rows' spans back to the arena and
// their headers to the pool. Only called at quiescent points (Move,
// SetNaiveInterference, SetAggRowBudget). Caller holds aggMu.
func (l *Ledger) drainGraceLocked() {
	for idx, d := range l.aggGrace {
		l.arenaOffs.release(d.srcOff)
		l.arenaVals.release(d.vals)
		d.srcOff, d.vals = nil, nil
		l.rowPool = append(l.rowPool, d)
		l.aggGrace[idx] = nil
	}
	l.aggGrace = l.aggGrace[:0]
}

// aggRow returns the receiver-i aggregate row, building it on first use
// (and evicting a victim first when the resident budget is exhausted).
// Safe for concurrent callers between Moves.
func (l *Ledger) aggRow(i int) *aggRowData {
	if d := l.agg[i].Load(); d != nil {
		return d
	}
	l.aggMu.Lock()
	defer l.aggMu.Unlock()
	if d := l.agg[i].Load(); d != nil {
		return d
	}
	if l.aggBudget > 0 && int(l.aggResident.Load()) >= l.aggBudget {
		l.evictLocked()
	}
	return l.buildRowLocked(i)
}

// aggPromoteAfter is the miss count at which a non-resident receiver is
// promoted to a row while the budget is full. Promotion costs a rebuild
// plus an eviction, i.e. many fold-fallback evaluations; the threshold
// keeps a one-off probe from thrashing a hot row out.
const aggPromoteAfter = 4

// aggFault handles a row miss under an active budget: build immediately
// while under budget, otherwise count the touch and promote only once
// the receiver has proven hot. Returns nil when the caller should use
// the fold fallback.
func (l *Ledger) aggFault(i int) *aggRowData {
	if int(l.aggResident.Load()) < l.aggBudget {
		return l.aggRow(i)
	}
	if t := l.aggTouch[i].Add(1); int(t) < aggPromoteAfter {
		return nil
	}
	l.aggTouch[i].Store(0)
	return l.aggRow(i)
}

func (l *Ledger) remove(j int, a Alloc) {
	us := l.users[a.Server][a.Channel]
	for idx, u := range us {
		if u == j {
			us[idx] = us[len(us)-1]
			l.users[a.Server][a.Channel] = us[:len(us)-1]
			break
		}
	}
	l.power[a.Server][a.Channel] -= l.in.Top.Users[j].Power
	if l.power[a.Server][a.Channel] < 0 {
		l.power[a.Server][a.Channel] = 0 // guard fp drift
	}
}

// interCell computes F_{i,x,j} of Eq. (2): the interference measured at
// server i on channel x from users allocated to channel x of the *other*
// servers covering user j, under the hypothesis that j itself sits at
// (i,x) (so j never self-interferes). The default path reads one
// pre-aggregated sum per covering server — O(|V_j|) — and subtracts j's
// own contribution where j currently occupies a summed channel. Under a
// row budget, misses on cold receivers are served by interCellFold
// instead of faulting the row in.
func (l *Ledger) interCell(j int, a Alloc) units.Watts {
	if l.naive {
		return l.interCellNaive(j, a)
	}
	d := l.agg[a.Server].Load()
	if d == nil {
		if l.aggBudget > 0 {
			if d = l.aggFault(a.Server); d == nil {
				return l.interCellFold(j, a)
			}
		} else {
			d = l.aggRow(a.Server)
		}
	} else if l.aggBudget > 0 && !d.ref.Load() {
		d.ref.Store(true)
	}
	return l.interCellRow(j, a, d)
}

// interCellRow reads the Eq. 2 inter-cell term out of a resident row.
func (l *Ledger) interCellRow(j int, a Alloc, d *aggRowData) units.Watts {
	cur := l.alloc[j]
	gr := l.in.GainRow(a.Server)
	var f float64
	for _, o := range l.in.Top.Coverage[j] {
		if o == a.Server || a.Channel >= len(l.users[o]) {
			continue
		}
		off := d.srcOff[o]
		if off < 0 {
			// Off-coverage hypothetical: a.Server does not cover j (else
			// o would co-cover with it), so the row has no cell for o.
			// Walk the single (o, channel) cell directly; j can't be in
			// it under the game's coverage-constrained moves, but skip
			// it anyway for arbitrary-caller safety.
			for _, t := range l.users[o][a.Channel] {
				if t == j {
					continue
				}
				f += gr.At(t) * float64(l.in.Top.Users[t].Power)
			}
			continue
		}
		f += d.vals[int(off)+a.Channel]
		if cur.Server == o && cur.Channel == a.Channel {
			f -= gr.At(j) * float64(l.in.Top.Users[j].Power)
		}
	}
	if f < 0 {
		f = 0 // guard fp drift from the self-term subtraction
	}
	return units.Watts(f)
}

// interCellFold serves a row miss without materializing the row: each
// cell the row path would read is recomputed as the same left-to-right
// fold over users[o][x] that builds (and maintains) row cells, then
// added to the total — reproducing the row path's arithmetic, including
// the self-term subtraction, bit for bit. Every o in Coverage[j]
// co-covers j with a.Server whenever a.Server itself covers j, so the
// in-coverage case (every probe the game issues) maps one-to-one onto
// row cells; the off-coverage corner cannot distinguish present from
// absent cells locally and forces the row in instead.
func (l *Ledger) interCellFold(j int, a Alloc) units.Watts {
	inCov := false
	for _, o := range l.in.Top.Coverage[j] {
		if o == a.Server {
			inCov = true
			break
		}
	}
	if !inCov {
		return l.interCellRow(j, a, l.aggRow(a.Server))
	}
	l.aggFallbacks.Add(1)
	cur := l.alloc[j]
	gi := l.in.GainRow(a.Server)
	var f float64
	for _, o := range l.in.Top.Coverage[j] {
		if o == a.Server || a.Channel >= len(l.users[o]) {
			continue
		}
		var sum float64
		for _, t := range l.users[o][a.Channel] {
			sum += gi.At(t) * float64(l.in.Top.Users[t].Power)
		}
		f += sum
		if cur.Server == o && cur.Channel == a.Channel {
			f -= gi.At(j) * float64(l.in.Top.Users[j].Power)
		}
	}
	if f < 0 {
		f = 0 // guard fp drift from the self-term subtraction
	}
	return units.Watts(f)
}

// interCellNaive is the reference evaluator: walk every co-channel
// occupant of every covering server (O(|V_j|·occupancy)).
func (l *Ledger) interCellNaive(j int, a Alloc) units.Watts {
	gr := l.in.GainRow(a.Server)
	var f float64
	for _, o := range l.in.Top.Coverage[j] {
		if o == a.Server || a.Channel >= len(l.users[o]) {
			continue
		}
		for _, t := range l.users[o][a.Channel] {
			if t == j {
				continue
			}
			f += gr.At(t) * float64(l.in.Top.Users[t].Power)
		}
	}
	return units.Watts(f)
}

// WarmAggregates builds aggregate rows in ascending receiver order up
// to the resident budget (all of them when unlimited), so benchmarks
// and latency-sensitive callers can pay the build cost up front.
func (l *Ledger) WarmAggregates() {
	if l.naive {
		return
	}
	l.aggMu.Lock()
	defer l.aggMu.Unlock()
	for i := range l.agg {
		if l.aggBudget > 0 && int(l.aggResident.Load()) >= l.aggBudget {
			break
		}
		if l.agg[i].Load() != nil {
			continue
		}
		l.buildRowLocked(i)
	}
}

// AggMemStats is a snapshot of the aggregate-row memory accounting.
type AggMemStats struct {
	// ResidentRows counts rows currently materialized; EverBuiltRows
	// counts receivers that had a row at any point (the set the
	// unbounded layout would keep resident).
	ResidentRows  int
	EverBuiltRows int
	// RowBudget echoes SetAggRowBudget (0 = unlimited).
	RowBudget int
	// ArenaBytes is the backing-slab footprint (resident spans plus
	// free-list capacity) including the persistent co-source bitsets
	// and row headers; InUseBytes narrows to spans owned by resident
	// rows. DenseEquivBytes is what the unbounded layout would hold for
	// every ever-built receiver — the baseline the budget is measured
	// against.
	ArenaBytes      int64
	InUseBytes      int64
	DenseEquivBytes int64
	// Evictions counts budget-driven row detachments; FallbackEvals
	// counts interference evaluations served by the fold fallback.
	Evictions     int64
	FallbackEvals int64
}

// AggMemStats reports the aggregate-row memory accounting. It must be
// called at a quiescent point (no concurrent evaluations): like Move,
// it first recycles the spans of evicted rows parked on the grace list,
// so the snapshot reflects what actually stays resident rather than
// eviction churn awaiting its next quiescent point.
func (l *Ledger) AggMemStats() AggMemStats {
	l.aggMu.Lock()
	defer l.aggMu.Unlock()
	l.drainGraceLocked()
	resident := int(l.aggResident.Load())
	headers := int64(resident + len(l.aggGrace) + len(l.rowPool))
	return AggMemStats{
		ResidentRows:  resident,
		EverBuiltRows: l.everRows,
		RowBudget:     l.aggBudget,
		ArenaBytes: int64(l.arenaVals.total)*8 + int64(l.arenaOffs.total)*4 +
			l.srcSetBytes + headers*aggRowHeaderBytes,
		InUseBytes: int64(l.arenaVals.inUse)*8 + int64(l.arenaOffs.inUse)*4 +
			l.srcSetBytes + int64(resident)*aggRowHeaderBytes,
		DenseEquivBytes: int64(l.everRows)*(int64(4*l.in.N())+aggRowHeaderBytes) +
			8*l.everWidth,
		Evictions:     l.aggEvictions,
		FallbackEvals: l.aggFallbacks.Load(),
	}
}

// intraOther computes Σ_{u_t∈U_{i,x}\u_j} p_t under the hypothesis that
// j is (or would be) allocated at a.
func (l *Ledger) intraOther(j int, a Alloc) units.Watts {
	p := l.power[a.Server][a.Channel]
	if l.alloc[j] == a {
		p -= l.in.Top.Users[j].Power
	}
	if p < 0 {
		p = 0
	}
	return p
}

// SINR evaluates Eq. (2) for user j under the hypothetical decision a.
// It reports 0 for Unallocated.
func (l *Ledger) SINR(j int, a Alloc) float64 {
	if !a.Allocated() {
		return 0
	}
	g := l.in.GainAt(a.Server, j)
	return l.in.Radio.SINR(g, l.in.Top.Users[j].Power, l.intraOther(j, a), l.interCell(j, a))
}

// Rate evaluates Eqs. (3)–(4) — the Shannon rate capped at R_{j,max} —
// for user j under the hypothetical decision a.
func (l *Ledger) Rate(j int, a Alloc) units.Rate {
	if !a.Allocated() {
		return 0
	}
	b := l.in.Top.Servers[a.Server].Bandwidth
	r := radio.ShannonRate(b, l.SINR(j, a))
	return radio.CapRate(r, l.in.Top.Users[j].MaxRate)
}

// CurrentRate evaluates user j's rate under its current decision.
func (l *Ledger) CurrentRate(j int) units.Rate { return l.Rate(j, l.alloc[j]) }

// RateIgnoringInterCell evaluates Eqs. (3)–(4) with the inter-cell term
// F of Eq. (2) dropped — the simplified single-cell interference view
// some baselines (DUP-G) plan with. The *achieved* rate is still
// evaluated with the full model; this is only their decision payoff.
func (l *Ledger) RateIgnoringInterCell(j int, a Alloc) units.Rate {
	if !a.Allocated() {
		return 0
	}
	g := l.in.GainAt(a.Server, j)
	sinr := l.in.Radio.SINR(g, l.in.Top.Users[j].Power, l.intraOther(j, a), 0)
	b := l.in.Top.Servers[a.Server].Bandwidth
	return radio.CapRate(radio.ShannonRate(b, sinr), l.in.Top.Users[j].MaxRate)
}

// Benefit evaluates the game benefit function of Eq. (12) for user j
// under the hypothetical decision a:
//
//	β = g·p_j / (g·Σ_{u_t∈U_{i,x}(α)} p_t + F)
//
// where the intra-channel sum includes u_j itself (the profile α has
// α_j = a). Unallocated yields 0, so any feasible allocation beats
// staying out — matching the paper's premise that all users can be
// allocated in IDDE scenarios.
func (l *Ledger) Benefit(j int, a Alloc) float64 {
	if !a.Allocated() {
		return 0
	}
	g := l.in.GainAt(a.Server, j)
	p := float64(l.in.Top.Users[j].Power)
	intra := float64(l.intraOther(j, a)) + p // includes u_j per Eq. 12
	den := g*intra + float64(l.interCell(j, a))
	if den <= 0 {
		return 0
	}
	return g * p / den
}

// AvgRate evaluates Eq. (5) over the current profile: the mean rate over
// all M users (unallocated users contribute 0 per Eq. 4's indicator).
func (l *Ledger) AvgRate() units.Rate {
	if l.in.M() == 0 {
		return 0
	}
	var sum float64
	for j := range l.alloc {
		sum += float64(l.CurrentRate(j))
	}
	return units.Rate(sum / float64(l.in.M()))
}

// AvgRate evaluates Eq. (5) for an allocation profile from scratch.
func (in *Instance) AvgRate(alloc Allocation) units.Rate {
	return NewLedger(in, alloc).AvgRate()
}

// UserRate evaluates Eqs. (2)–(4) for one user from scratch.
func (in *Instance) UserRate(alloc Allocation, j int) units.Rate {
	l := NewLedger(in, alloc)
	return l.CurrentRate(j)
}

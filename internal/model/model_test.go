package model

import (
	"math"
	"testing"

	"idde/internal/geo"
	"idde/internal/graph"
	"idde/internal/radio"
	"idde/internal/rng"
	"idde/internal/topology"
	"idde/internal/units"
	"idde/internal/workload"
)

// tinyInstance builds a hand-checkable 2-server, 3-user, 2-item
// instance:
//
//	v0 at (0,0) r=500, v1 at (600,0) r=450, link speed 3000 MBps
//	u0 at (100,0)  → covered by v0 only
//	u1 at (500,0)  → covered by both
//	u2 at (700,0)  → covered by v1 only
//	items: d0=30MB, d1=90MB; capacities A_0=100, A_1=30
//	requests: u0→{d0}, u1→{d0,d1}, u2→{d1}
func tinyInstance(t *testing.T) *Instance {
	t.Helper()
	top := &topology.Topology{
		Region: geo.Rect{MinX: -100, MinY: -100, MaxX: 1200, MaxY: 100},
		Servers: []topology.Server{
			{ID: 0, Pos: geo.Point{X: 0, Y: 0}, Radius: 500, Channels: 2, Bandwidth: 200},
			{ID: 1, Pos: geo.Point{X: 600, Y: 0}, Radius: 450, Channels: 2, Bandwidth: 200},
		},
		Users: []topology.User{
			{ID: 0, Pos: geo.Point{X: 100, Y: 0}, Power: 2, MaxRate: 200},
			{ID: 1, Pos: geo.Point{X: 500, Y: 0}, Power: 3, MaxRate: 200},
			{ID: 2, Pos: geo.Point{X: 700, Y: 0}, Power: 4, MaxRate: 200},
		},
		Net:       graph.New(2),
		CloudRate: 600,
	}
	top.Net.AddEdge(0, 1, units.PerMB(3000))
	if err := top.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	wl := &workload.Workload{
		Items:    []workload.Item{{ID: 0, Size: 30}, {ID: 1, Size: 90}},
		Requests: [][]int{{0}, {0, 1}, {1}},
		Capacity: []units.MegaBytes{100, 30},
	}
	in, err := New(top, wl, radio.Default())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return in
}

// genInstance builds a generated mid-size instance for property tests.
func genInstance(t *testing.T, n, m, k int, seed uint64) *Instance {
	t.Helper()
	s := rng.New(seed)
	top, err := topology.Generate(topology.DefaultGen(n, m, 1.2), s.Split("top"))
	if err != nil {
		t.Fatalf("topology: %v", err)
	}
	wl, err := workload.Generate(workload.DefaultGen(k), n, m, s.Split("wl"))
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	in, err := New(top, wl, radio.Default())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return in
}

func TestNewValidation(t *testing.T) {
	in := tinyInstance(t)
	if in.N() != 2 || in.M() != 3 || in.K() != 2 {
		t.Fatalf("dims %d/%d/%d", in.N(), in.M(), in.K())
	}
	if _, err := New(nil, in.Wl, radio.Default()); err == nil {
		t.Error("nil topology accepted")
	}
	if _, err := New(in.Top, nil, radio.Default()); err == nil {
		t.Error("nil workload accepted")
	}
	bad := &workload.Workload{Items: in.Wl.Items, Requests: in.Wl.Requests, Capacity: nil}
	if _, err := New(in.Top, bad, radio.Default()); err == nil {
		t.Error("mismatched workload accepted")
	}
}

func TestGainMatrix(t *testing.T) {
	in := tinyInstance(t)
	// GainAt(0,0): distance 100, loss 3 → 1e-6.
	if g := in.GainAt(0, 0); math.Abs(g-1e-6) > 1e-15 {
		t.Errorf("GainAt(0,0) = %v", g)
	}
	// Closer server has higher gain for u1 (equidistant? u1 at 500: 500
	// from v0, 100 from v1).
	if in.GainAt(1, 1) <= in.GainAt(0, 1) {
		t.Error("nearer server should have higher gain")
	}
	// The row view agrees with the point reads, in and out of support.
	for i := 0; i < in.N(); i++ {
		r := in.GainRow(i)
		for j := 0; j < in.M(); j++ {
			if r.At(j) != in.GainAt(i, j) {
				t.Errorf("GainRow(%d).At(%d) = %v, GainAt = %v", i, j, r.At(j), in.GainAt(i, j))
			}
		}
	}
}

func TestLatencyHelpers(t *testing.T) {
	in := tinyInstance(t)
	// Cloud: 30MB at 600MBps = 50ms; 90MB = 150ms.
	if l := in.CloudLatency(0); math.Abs(float64(l)-0.05) > 1e-12 {
		t.Errorf("cloud d0 = %v", l)
	}
	if l := in.CloudLatency(1); math.Abs(float64(l)-0.15) > 1e-12 {
		t.Errorf("cloud d1 = %v", l)
	}
	// Edge: 30MB over a 3000MBps hop = 10ms; same server = 0.
	if l := in.EdgeLatency(0, 0, 1); math.Abs(float64(l)-0.01) > 1e-12 {
		t.Errorf("edge d0 v0→v1 = %v", l)
	}
	if l := in.EdgeLatency(1, 1, 1); l != 0 {
		t.Errorf("local delivery latency = %v", l)
	}
}

func TestAllocationBasics(t *testing.T) {
	a := NewAllocation(3)
	if a.AllocatedCount() != 0 {
		t.Error("fresh allocation not empty")
	}
	if Unallocated.Allocated() {
		t.Error("Unallocated reports allocated")
	}
	if Unallocated.String() != "(unallocated)" || (Alloc{Server: 1, Channel: 0}).String() != "(v1,c0)" {
		t.Error("String formats wrong")
	}
	a[0] = Alloc{Server: 0, Channel: 1}
	c := a.Clone()
	c[0] = Unallocated
	if !a[0].Allocated() {
		t.Error("Clone aliases storage")
	}
	if a.AllocatedCount() != 1 {
		t.Error("AllocatedCount wrong")
	}
}

func TestCheckAllocation(t *testing.T) {
	in := tinyInstance(t)
	a := NewAllocation(3)
	if err := in.CheckAllocation(a); err != nil {
		t.Errorf("empty allocation rejected: %v", err)
	}
	a[0] = Alloc{Server: 0, Channel: 0}
	a[1] = Alloc{Server: 1, Channel: 1}
	if err := in.CheckAllocation(a); err != nil {
		t.Errorf("valid allocation rejected: %v", err)
	}
	// u0 is not covered by v1 → Eq. 1 violation.
	a[0] = Alloc{Server: 1, Channel: 0}
	if in.CheckAllocation(a) == nil {
		t.Error("non-covering allocation accepted")
	}
	a[0] = Alloc{Server: 0, Channel: 5}
	if in.CheckAllocation(a) == nil {
		t.Error("bad channel accepted")
	}
	a[0] = Alloc{Server: 9, Channel: 0}
	if in.CheckAllocation(a) == nil {
		t.Error("bad server accepted")
	}
	if in.CheckAllocation(NewAllocation(2)) == nil {
		t.Error("wrong-length allocation accepted")
	}
}

func TestDeliverySemantics(t *testing.T) {
	in := tinyInstance(t)
	d := NewDelivery(2, 2)
	if d.Count() != 0 || d.Placed(0, 0) {
		t.Error("fresh delivery not empty")
	}
	d.Place(0, 0, 30)
	d.Place(0, 1, 60)
	if !d.Placed(0, 0) || d.Placed(1, 0) {
		t.Error("Placed wrong")
	}
	if d.Used(0) != 90 || d.Used(1) != 0 {
		t.Errorf("Used = %v/%v", d.Used(0), d.Used(1))
	}
	if hs := d.Holders(0); len(hs) != 1 || hs[0] != 0 {
		t.Errorf("Holders = %v", hs)
	}
	c := d.Clone()
	c.Place(1, 0, 30)
	if d.Placed(1, 0) {
		t.Error("Clone aliases storage")
	}
	_ = in
	defer func() {
		if recover() == nil {
			t.Error("double Place did not panic")
		}
	}()
	d.Place(0, 0, 30)
}

func TestCheckDelivery(t *testing.T) {
	in := tinyInstance(t)
	d := NewDelivery(2, 2)
	d.Place(0, 0, 30) // 30 on a 100 MB budget: fine
	if err := in.CheckDelivery(d); err != nil {
		t.Errorf("valid delivery rejected: %v", err)
	}
	// v1 has A=30; the 90MB item must not fit.
	d2 := NewDelivery(2, 2)
	d2.Place(1, 1, 90)
	if in.CheckDelivery(d2) == nil {
		t.Error("over-capacity delivery accepted")
	}
	// Accounting drift: lie about the size.
	d3 := NewDelivery(2, 2)
	d3.Place(0, 0, 10)
	if in.CheckDelivery(d3) == nil {
		t.Error("drifted accounting accepted")
	}
	if in.CheckDelivery(NewDelivery(3, 2)) == nil {
		t.Error("mis-sized delivery accepted")
	}
}

func TestCheckStrategy(t *testing.T) {
	in := tinyInstance(t)
	s := Strategy{Alloc: NewAllocation(3), Delivery: NewDelivery(2, 2)}
	if err := in.Check(s); err != nil {
		t.Errorf("valid strategy rejected: %v", err)
	}
	s.Alloc[0] = Alloc{Server: 1, Channel: 0}
	if in.Check(s) == nil {
		t.Error("invalid strategy accepted")
	}
}

// Package model defines the IDDE problem instance and its two decision
// profiles — the user allocation profile α (Definition 1) and the data
// delivery profile σ (Definition 2) — together with evaluators for the
// two objectives: the users' average data rate R_avg (Eqs. 2–5) and the
// average data delivery latency L_avg (Eqs. 8–9), plus the constraint
// checks of Eqs. (1), (6) and (7)/(8).
//
// Two incremental evaluators make the algorithms fast: Ledger maintains
// per-channel power sums plus per-(receiver, source, channel)
// gain-weighted interference aggregates for O(|V_j|) best-response
// evaluations in the IDDE-U game, and LatencyState maintains per-request
// best latencies for O(requests-of-item) marginal gains in the greedy
// delivery phase.
package model

import (
	"fmt"
	"runtime"
	"sync"

	"idde/internal/geo"
	"idde/internal/radio"
	"idde/internal/topology"
	"idde/internal/units"
	"idde/internal/workload"
)

// Instance is an immutable IDDE problem: a topology, a workload over it
// and the radio propagation model, with the server×user channel gains
// precomputed (both the serving gain g_{i,x,j} and the inter-cell
// interference terms g_{i,x,t} of Eq. 2 read from them).
//
// # Gain storage
//
// The paper's gain depends only on the (server, user) distance, not on
// the channel index, so conceptually a 2-D N×M matrix suffices — but a
// dense matrix is an O(N·M) wall at the M≥10⁵ rungs. Gains are instead
// stored in a CSR spatial layout: per server, a sorted column-index +
// value row holding every user within the interference cutoff radius
// of that server, built from the geo spatial hash. Reads outside a
// row's support fall back to recomputing the gain from the positions —
// the gain is a pure function of the distance, so the fallback is
// bit-identical to what a dense matrix would have stored, and every
// evaluator result is independent of the cutoff. The cutoff only
// decides how much is precomputed (speed) versus recomputed (memory).
//
// New picks whichever layout is smaller for the instance at hand: on
// compact Table 2-scale regions the cutoff disk spans the whole map and
// the dense matrix wins; on region-scaled large instances the CSR rows
// are a few percent of M and the dense matrix never materializes.
type Instance struct {
	Top   *topology.Topology
	Wl    *workload.Workload
	Radio radio.Model

	// CSR gain rows: cols[rowStart[i]:rowStart[i+1]] lists, ascending,
	// the users within cutoff of server i; vals holds their gains.
	rowStart []int64
	cols     []int32
	vals     []float64
	// cutoff is the interference cutoff radius the rows were built
	// with.
	cutoff units.Meters
	// dense is the reference layout: the full N×M matrix. Non-nil
	// exactly when the instance is in dense mode (then the CSR slices
	// are nil).
	dense [][]float64
}

// DefaultCutoffFactor scales the maximum coverage radius into the
// default interference cutoff. Every gain the solvers read in practice
// is for a (server i, user t) pair with d(i,t) ≤ r_i + 2·r_max: the
// receiver covers the probed user j, the interfering source o covers j
// too, and t is covered by o — three hops of at most r_max each beyond
// the receiver's own disk. A cutoff of 3·r_max therefore keeps every
// in-practice read inside the precomputed rows; reads beyond it (only
// reachable through arbitrary-caller hypotheticals) hit the exact
// recompute fallback.
const DefaultCutoffFactor = 3

// New validates the pieces against each other and precomputes gains,
// choosing the smaller of the sparse CSR and dense layouts (see the
// Instance doc). The two layouts are read-for-read identical, so the
// choice is invisible to every consumer.
func New(top *topology.Topology, wl *workload.Workload, rm radio.Model) (*Instance, error) {
	in, err := NewSparse(top, wl, rm, 0)
	if err != nil {
		return nil, err
	}
	// 12 bytes per stored entry (int32 col + float64 val) against 8 per
	// dense cell: densify when the rows would not actually be smaller.
	if 12*in.NNZ() >= 8*int64(top.N())*int64(top.M()) {
		return in.Densified(), nil
	}
	return in, nil
}

// NewSparse builds an instance with the CSR gain layout under an
// explicit interference cutoff radius (0 = DefaultCutoffFactor times
// the maximum coverage radius). A cutoff smaller than the largest
// coverage radius is rejected: serving-link gains must come from the
// precomputed rows. NewSparse never falls back to the dense layout —
// callers that want the automatic choice use New.
func NewSparse(top *topology.Topology, wl *workload.Workload, rm radio.Model, cutoff units.Meters) (*Instance, error) {
	if err := validateInstance(top, wl); err != nil {
		return nil, err
	}
	rmax := top.MaxRadius()
	if cutoff == 0 {
		cutoff = DefaultCutoffFactor * rmax
	}
	if cutoff < rmax {
		return nil, fmt.Errorf("model: interference cutoff %v is smaller than the largest coverage radius %v", cutoff, rmax)
	}
	in := &Instance{Top: top, Wl: wl, Radio: rm, cutoff: cutoff}
	in.buildCSR()
	return in, nil
}

// NewDense builds an instance with the dense N×M reference layout.
func NewDense(top *topology.Topology, wl *workload.Workload, rm radio.Model) (*Instance, error) {
	if err := validateInstance(top, wl); err != nil {
		return nil, err
	}
	in := &Instance{Top: top, Wl: wl, Radio: rm}
	in.dense = denseGains(top, rm)
	return in, nil
}

func validateInstance(top *topology.Topology, wl *workload.Workload) error {
	if top == nil || wl == nil {
		return fmt.Errorf("model: nil topology or workload")
	}
	if err := wl.Validate(top.N(), top.M()); err != nil {
		return err
	}
	if !top.Finalized() {
		return fmt.Errorf("model: topology not finalized")
	}
	return nil
}

// buildCSR fills the CSR rows: per server, the users within cutoff,
// ascending, with their gains. Rows are computed independently (one
// goroutine per slice of servers) and assembled by prefix sum, so the
// result is identical across GOMAXPROCS settings.
func (in *Instance) buildCSR() {
	top := in.Top
	n, m := top.N(), top.M()
	in.rowStart = make([]int64, n+1)
	if n == 0 || m == 0 {
		return
	}
	cell := float64(in.cutoff) / 2
	if cell <= 0 {
		cell = 1
	}
	grid := geo.NewGrid(cell)
	for j := 0; j < m; j++ {
		grid.Insert(j, top.Users[j].Pos)
	}

	// Pass 1: per-row supports, in parallel. Grid.Within compares
	// squared distances; the stored predicate is the same hypot ≤ cutoff
	// that the fallback recompute would see, so a boundary pair is
	// either in the row or served by the fallback — never both, never
	// neither (query with a hair of margin, filter exactly).
	rows := make([][]int32, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				us := grid.Within(top.Servers[i].Pos, in.cutoff+1e-6)
				row := make([]int32, 0, len(us))
				for _, j := range us {
					if float64(top.Distance(i, j)) <= float64(in.cutoff) {
						row = append(row, int32(j))
					}
				}
				sortInt32s(row)
				rows[i] = row
			}
		}(w)
	}
	wg.Wait()

	for i, row := range rows {
		in.rowStart[i+1] = in.rowStart[i] + int64(len(row))
	}
	nnz := in.rowStart[n]
	in.cols = make([]int32, nnz)
	in.vals = make([]float64, nnz)

	// Pass 2: gains, in parallel over the same deterministic rows.
	wg = sync.WaitGroup{}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				off := in.rowStart[i]
				for idx, j := range rows[i] {
					in.cols[off+int64(idx)] = j
					in.vals[off+int64(idx)] = in.Radio.Gain(top.Distance(i, int(j)))
				}
			}
		}(w)
	}
	wg.Wait()
}

// sortInt32s sorts a row support ascending in place — a shell sort, so
// the parallel build makes no per-row closure allocations.
func sortInt32s(a []int32) {
	for gap := len(a) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(a); i++ {
			v := a[i]
			j := i
			for ; j >= gap && a[j-gap] > v; j -= gap {
				a[j] = a[j-gap]
			}
			a[j] = v
		}
	}
}

// denseGains materializes the full N×M gain matrix. The expression is
// the same Radio.Gain ∘ Distance composition the CSR build and the
// sparse fallback use, so every cell is bit-identical across layouts.
func denseGains(top *topology.Topology, rm radio.Model) [][]float64 {
	n, m := top.N(), top.M()
	g := make([][]float64, n)
	flat := make([]float64, n*m)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				row := flat[i*m : (i+1)*m : (i+1)*m]
				for j := 0; j < m; j++ {
					row[j] = rm.Gain(top.Distance(i, j))
				}
				g[i] = row
			}
		}(w)
	}
	wg.Wait()
	return g
}

// Sparse reports whether the instance uses the CSR gain layout.
func (in *Instance) Sparse() bool { return in.dense == nil }

// Cutoff reports the interference cutoff radius of a sparse instance
// (0 for dense instances).
func (in *Instance) Cutoff() units.Meters {
	if in.dense != nil {
		return 0
	}
	return in.cutoff
}

// NNZ reports the number of stored gain entries: Σ_i |row_i| for the
// CSR layout, N·M for the dense one.
func (in *Instance) NNZ() int64 {
	if in.dense != nil {
		return int64(in.N()) * int64(in.M())
	}
	return in.rowStart[len(in.rowStart)-1]
}

// Densified returns an instance with the dense reference layout over
// the same topology, workload and radio model. A dense instance
// returns itself; a sparse one gets a sibling whose matrix holds, for
// every (i, j), exactly the value GainAt would produce — inside the
// cutoff the stored row value, outside it the recomputed fallback,
// which are the same expression.
func (in *Instance) Densified() *Instance {
	if in.dense != nil {
		return in
	}
	out := &Instance{Top: in.Top, Wl: in.Wl, Radio: in.Radio}
	out.dense = denseGains(in.Top, in.Radio)
	return out
}

// GainAt reports the channel gain between server i and user j. Sparse
// reads binary-search the row support and fall back to recomputing the
// gain from the distance on a miss — bit-identical to the dense cell,
// since gain is a pure function of distance.
func (in *Instance) GainAt(i, j int) float64 {
	if in.dense != nil {
		return in.dense[i][j]
	}
	cols := in.cols[in.rowStart[i]:in.rowStart[i+1]]
	lo, hi := 0, len(cols)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if int(cols[mid]) < j {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(cols) && int(cols[lo]) == j {
		return in.vals[in.rowStart[i]+int64(lo)]
	}
	return in.Radio.Gain(in.Top.Distance(i, j))
}

// GainRow is an iterable view of one server's gain row. It is a plain
// value (no allocation to obtain or hold one) shared across layouts:
// dense rows expose the matrix row, sparse rows expose the CSR support
// with an O(log width) point lookup and the exact recompute fallback
// for out-of-support columns.
type GainRow struct {
	in    *Instance
	i     int32
	cols  []int32
	vals  []float64
	dense []float64
}

// GainRow returns server i's gain row.
func (in *Instance) GainRow(i int) GainRow {
	if in.dense != nil {
		return GainRow{in: in, i: int32(i), dense: in.dense[i]}
	}
	return GainRow{
		in:   in,
		i:    int32(i),
		cols: in.cols[in.rowStart[i]:in.rowStart[i+1]],
		vals: in.vals[in.rowStart[i]:in.rowStart[i+1]],
	}
}

// At reports the gain toward user j: O(1) dense, O(log width) sparse
// with the recompute fallback outside the support.
func (r GainRow) At(j int) float64 {
	if r.dense != nil {
		return r.dense[j]
	}
	lo, hi := 0, len(r.cols)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if int(r.cols[mid]) < j {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(r.cols) && r.cols[lo] == int32(j) {
		return r.vals[lo]
	}
	return r.in.Radio.Gain(r.in.Top.Distance(int(r.i), j))
}

// Support reports the stored columns (ascending user ids) and their
// gains. Dense rows report nil columns — every column is stored; use
// Len and At.
func (r GainRow) Support() (cols []int32, vals []float64) { return r.cols, r.vals }

// Len reports the stored-entry count of the row.
func (r GainRow) Len() int {
	if r.dense != nil {
		return len(r.dense)
	}
	return len(r.cols)
}

// LayoutStats describes an instance's gain-storage footprint.
type LayoutStats struct {
	// Sparse reports the active layout; Cutoff the interference cutoff
	// radius of a sparse instance (0 for dense).
	Sparse bool
	Cutoff units.Meters
	// NNZ is the stored entry count; Density its fraction of N·M.
	NNZ     int64
	Density float64
	// Bytes is the gain-storage footprint of the active layout.
	// DenseEquivBytes is what the dense era held for the same instance:
	// the N×M gain matrix plus the N×M distance matrix the topology
	// used to precompute (both float64).
	Bytes           int64
	DenseEquivBytes int64
}

// LayoutStats reports the instance's gain-storage accounting.
func (in *Instance) LayoutStats() LayoutStats {
	nm := int64(in.N()) * int64(in.M())
	st := LayoutStats{
		Sparse:          in.dense == nil,
		NNZ:             in.NNZ(),
		DenseEquivBytes: 16 * nm,
	}
	if nm > 0 {
		st.Density = float64(st.NNZ) / float64(nm)
	}
	if st.Sparse {
		st.Cutoff = in.cutoff
		st.Bytes = 12*st.NNZ + 8*int64(len(in.rowStart))
	} else {
		st.Bytes = 8 * nm
	}
	return st
}

// N, M and K report the instance dimensions.
func (in *Instance) N() int { return in.Top.N() }
func (in *Instance) M() int { return in.Top.M() }
func (in *Instance) K() int { return in.Wl.K() }

// CloudLatency reports the Eq. (8) latency of retrieving item k from
// the remote cloud (the σ_{cloud,k}=1 fallback of Eq. 7).
func (in *Instance) CloudLatency(k int) units.Seconds {
	return in.Top.CloudCost.Times(in.Wl.Items[k].Size)
}

// EdgeLatency reports the Eq. (8) latency of delivering item k from
// server o to server i over the wired edge network.
func (in *Instance) EdgeLatency(k, o, i int) units.Seconds {
	return in.Top.PathCost[o][i].Times(in.Wl.Items[k].Size)
}

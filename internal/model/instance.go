// Package model defines the IDDE problem instance and its two decision
// profiles — the user allocation profile α (Definition 1) and the data
// delivery profile σ (Definition 2) — together with evaluators for the
// two objectives: the users' average data rate R_avg (Eqs. 2–5) and the
// average data delivery latency L_avg (Eqs. 8–9), plus the constraint
// checks of Eqs. (1), (6) and (7)/(8).
//
// Two incremental evaluators make the algorithms fast: Ledger maintains
// per-channel power sums plus per-(receiver, source, channel)
// gain-weighted interference aggregates for O(|V_j|) best-response
// evaluations in the IDDE-U game, and LatencyState maintains per-request
// best latencies for O(requests-of-item) marginal gains in the greedy
// delivery phase.
package model

import (
	"fmt"

	"idde/internal/radio"
	"idde/internal/topology"
	"idde/internal/units"
	"idde/internal/workload"
)

// Instance is an immutable IDDE problem: a topology, a workload over it
// and the radio propagation model, with the server×user gain matrix
// precomputed (both the serving gain g_{i,x,j} and the inter-cell
// interference terms g_{i,x,t} of Eq. 2 read from it).
type Instance struct {
	Top   *topology.Topology
	Wl    *workload.Workload
	Radio radio.Model
	// Gain[i][j] is the channel gain between server i and user j. The
	// paper's gain depends only on (server, user) distance, not on the
	// channel index, so a 2-D matrix suffices.
	Gain [][]float64
}

// New validates the pieces against each other and precomputes gains.
func New(top *topology.Topology, wl *workload.Workload, rm radio.Model) (*Instance, error) {
	if top == nil || wl == nil {
		return nil, fmt.Errorf("model: nil topology or workload")
	}
	if err := wl.Validate(top.N(), top.M()); err != nil {
		return nil, err
	}
	if top.Dist == nil {
		return nil, fmt.Errorf("model: topology not finalized")
	}
	in := &Instance{Top: top, Wl: wl, Radio: rm}
	in.Gain = make([][]float64, top.N())
	for i := range in.Gain {
		in.Gain[i] = make([]float64, top.M())
		for j := range in.Gain[i] {
			in.Gain[i][j] = rm.Gain(top.Dist[i][j])
		}
	}
	return in, nil
}

// N, M and K report the instance dimensions.
func (in *Instance) N() int { return in.Top.N() }
func (in *Instance) M() int { return in.Top.M() }
func (in *Instance) K() int { return in.Wl.K() }

// CloudLatency reports the Eq. (8) latency of retrieving item k from
// the remote cloud (the σ_{cloud,k}=1 fallback of Eq. 7).
func (in *Instance) CloudLatency(k int) units.Seconds {
	return in.Top.CloudCost.Times(in.Wl.Items[k].Size)
}

// EdgeLatency reports the Eq. (8) latency of delivering item k from
// server o to server i over the wired edge network.
func (in *Instance) EdgeLatency(k, o, i int) units.Seconds {
	return in.Top.PathCost[o][i].Times(in.Wl.Items[k].Size)
}

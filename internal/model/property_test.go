package model

import (
	"math"
	"testing"
	"testing/quick"

	"idde/internal/rng"
)

// randomValidAllocation draws a feasible allocation for the instance.
func randomValidAllocation(in *Instance, s *rng.Stream) Allocation {
	a := NewAllocation(in.M())
	for j := 0; j < in.M(); j++ {
		if s.Bool(0.15) {
			continue // leave unallocated
		}
		vs := in.Top.Coverage[j]
		if len(vs) == 0 {
			continue
		}
		i := vs[s.IntN(len(vs))]
		a[j] = Alloc{Server: i, Channel: s.IntN(in.Top.Servers[i].Channels)}
	}
	return a
}

// TestPropertyRatesBounded: for any valid allocation, every user's rate
// lies in [0, R_{j,max}] and the average in [0, max cap].
func TestPropertyRatesBounded(t *testing.T) {
	in := genInstance(t, 10, 60, 3, 101)
	f := func(seed uint64) bool {
		a := randomValidAllocation(in, rng.New(seed))
		if in.CheckAllocation(a) != nil {
			return false
		}
		l := NewLedger(in, a)
		for j := 0; j < in.M(); j++ {
			r := l.CurrentRate(j)
			if r < 0 || r > in.Top.Users[j].MaxRate {
				return false
			}
			if !a[j].Allocated() && r != 0 {
				return false
			}
		}
		avg := float64(l.AvgRate())
		return avg >= 0 && !math.IsNaN(avg) && !math.IsInf(avg, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropertyLatencyMonotoneInDelivery: adding replicas never worsens
// any request's latency, in any delivery mode.
func TestPropertyLatencyMonotoneInDelivery(t *testing.T) {
	in := genInstance(t, 10, 50, 4, 102)
	f := func(seed uint64) bool {
		s := rng.New(seed)
		a := randomValidAllocation(in, s)
		d := NewDelivery(in.N(), in.K())
		prev := map[DeliveryMode]float64{}
		for _, mode := range []DeliveryMode{Collaborative, CoverageLocal, ServerLocal} {
			prev[mode] = float64(in.AvgLatencyMode(a, d, mode))
		}
		for step := 0; step < 12; step++ {
			i, k := s.IntN(in.N()), s.IntN(in.K())
			if d.Placed(i, k) {
				continue
			}
			d.Place(i, k, in.Wl.Items[k].Size)
			for _, mode := range []DeliveryMode{Collaborative, CoverageLocal, ServerLocal} {
				cur := float64(in.AvgLatencyMode(a, d, mode))
				if cur > prev[mode]+1e-12 {
					return false
				}
				prev[mode] = cur
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestPropertyModeOrdering: pointwise, collaborative ≤ coverage-local ≤
// server-local latency for the same profiles (more delivery freedom
// can only help)... except coverage-local serves covering holders at
// zero cost, which collaborative prices as a wired hop — so only the
// server-local relations are universally ordered.
func TestPropertyModeOrdering(t *testing.T) {
	in := genInstance(t, 10, 50, 4, 103)
	f := func(seed uint64) bool {
		s := rng.New(seed)
		a := randomValidAllocation(in, s)
		d := NewDelivery(in.N(), in.K())
		for step := 0; step < 10; step++ {
			i, k := s.IntN(in.N()), s.IntN(in.K())
			if !d.Placed(i, k) {
				d.Place(i, k, in.Wl.Items[k].Size)
			}
		}
		for j, items := range in.Wl.Requests {
			for _, k := range items {
				collab := in.RequestLatencyMode(a, d, j, k, Collaborative)
				covLoc := in.RequestLatencyMode(a, d, j, k, CoverageLocal)
				srvLoc := in.RequestLatencyMode(a, d, j, k, ServerLocal)
				// Server-local is the most restrictive source set.
				if collab > srvLoc+1e-15 {
					return false
				}
				if covLoc > srvLoc+1e-15 && srvLoc != 0 {
					// srvLoc==0 means own server holds it; coverage-local
					// then also serves at 0 (own server covers the user).
					return false
				}
				// Everything is capped by the cloud.
				cloud := in.CloudLatency(k)
				if collab > cloud+1e-15 || covLoc > cloud+1e-15 || srvLoc > cloud+1e-15 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestPropertyLedgerMoveReversible: moving a user away and back
// restores every rate exactly.
func TestPropertyLedgerMoveReversible(t *testing.T) {
	in := genInstance(t, 10, 60, 3, 104)
	f := func(seed uint64) bool {
		s := rng.New(seed)
		a := randomValidAllocation(in, s)
		l := NewLedger(in, a)
		before := make([]float64, in.M())
		for j := range before {
			before[j] = float64(l.CurrentRate(j))
		}
		j := s.IntN(in.M())
		orig := l.Current(j)
		vs := in.Top.Coverage[j]
		if len(vs) == 0 {
			return true
		}
		i := vs[s.IntN(len(vs))]
		l.Move(j, Alloc{Server: i, Channel: s.IntN(in.Top.Servers[i].Channels)})
		l.Move(j, orig)
		for t2 := 0; t2 < in.M(); t2++ {
			if math.Abs(float64(l.CurrentRate(t2))-before[t2]) > 1e-9*math.Max(1, before[t2]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

package model

import (
	"math"
	"testing"

	"idde/internal/rng"
	"idde/internal/units"
)

// allocateNearest gives every user its highest-gain covering server,
// round-robin over channels — a valid allocation for latency tests.
func allocateNearest(in *Instance) Allocation {
	a := NewAllocation(in.M())
	for j := 0; j < in.M(); j++ {
		best, bestG := -1, -1.0
		for _, i := range in.Top.Coverage[j] {
			if g := in.GainAt(i, j); g > bestG {
				best, bestG = i, g
			}
		}
		if best >= 0 {
			a[j] = Alloc{Server: best, Channel: j % in.Top.Servers[best].Channels}
		}
	}
	return a
}

func TestLatencyStateInitialCloudOnly(t *testing.T) {
	in := tinyInstance(t)
	a := allocateNearest(in)
	ls := NewLatencyState(in, a)
	if ls.Requests() != 4 {
		t.Fatalf("Requests = %d, want 4", ls.Requests())
	}
	// All from cloud: u0:d0=50ms, u1:d0=50ms+d1=150ms, u2:d1=150ms.
	want := (0.05 + 0.05 + 0.15 + 0.15) / 4
	if got := float64(ls.Avg()); math.Abs(got-want) > 1e-12 {
		t.Errorf("initial Avg = %v, want %v", got, want)
	}
	// Matches the from-scratch evaluator with an empty delivery.
	d := NewDelivery(2, 2)
	if got, ref := float64(ls.Avg()), float64(in.AvgLatency(a, d)); math.Abs(got-ref) > 1e-12 {
		t.Errorf("state %v != scratch %v", got, ref)
	}
}

func TestGainOfAndCommitKnownValues(t *testing.T) {
	in := tinyInstance(t)
	a := Allocation{
		{Server: 0, Channel: 0}, // u0 → v0
		{Server: 1, Channel: 0}, // u1 → v1
		{Server: 1, Channel: 1}, // u2 → v1
	}
	ls := NewLatencyState(in, a)
	// Placing d0 (30MB) on v0: u0 gets it locally (0ms, saving 50ms);
	// u1 is served at v1, one hop away: 30MB/3000MBps = 10ms (saving
	// 40ms). Total gain 90ms.
	gain := float64(ls.GainOf(0, 0))
	if math.Abs(gain-0.09) > 1e-12 {
		t.Fatalf("GainOf(0,0) = %v, want 0.09", gain)
	}
	realized := float64(ls.Commit(0, 0))
	if math.Abs(realized-gain) > 1e-15 {
		t.Fatalf("Commit returned %v, GainOf said %v", realized, gain)
	}
	// After commit, placing d0 on v1 only improves u1 (10ms → 0).
	gain2 := float64(ls.GainOf(1, 0))
	if math.Abs(gain2-0.01) > 1e-12 {
		t.Errorf("GainOf(1,0) after commit = %v, want 0.01", gain2)
	}
	// d1 on v1: u1 and u2 both local (each saving 150ms).
	if g := float64(ls.GainOf(1, 1)); math.Abs(g-0.30) > 1e-12 {
		t.Errorf("GainOf(1,1) = %v, want 0.30", g)
	}
}

func TestLatencyStateMatchesFromScratch(t *testing.T) {
	in := genInstance(t, 12, 60, 5, 71)
	a := allocateNearest(in)
	ls := NewLatencyState(in, a)
	d := NewDelivery(in.N(), in.K())
	s := rng.New(13)
	for step := 0; step < 25; step++ {
		// Pick an unplaced (i,k) uniformly.
		i, k := s.IntN(in.N()), s.IntN(in.K())
		if d.Placed(i, k) {
			continue
		}
		gain := ls.GainOf(i, k)
		realized := ls.Commit(i, k)
		if math.Abs(float64(gain-realized)) > 1e-15 {
			t.Fatalf("step %d: GainOf %v != Commit %v", step, gain, realized)
		}
		d.Place(i, k, in.Wl.Items[k].Size)
		got, ref := float64(ls.Avg()), float64(in.AvgLatency(a, d))
		if math.Abs(got-ref) > 1e-12*math.Max(1, ref) {
			t.Fatalf("step %d: incremental Avg %v != scratch %v", step, got, ref)
		}
	}
}

func TestLatencyNeverWorseThanCloud(t *testing.T) {
	// The Eq. 8 latency constraint: every request latency is ≤ its
	// cloud latency, whatever the delivery profile.
	in := genInstance(t, 10, 50, 4, 81)
	a := allocateNearest(in)
	d := NewDelivery(in.N(), in.K())
	s := rng.New(14)
	for c := 0; c < 15; c++ {
		i, k := s.IntN(in.N()), s.IntN(in.K())
		if !d.Placed(i, k) {
			d.Place(i, k, in.Wl.Items[k].Size)
		}
	}
	for j, items := range in.Wl.Requests {
		for _, k := range items {
			l := in.RequestLatency(a, d, j, k)
			if l > in.CloudLatency(k)+1e-15 {
				t.Fatalf("request (%d,%d) latency %v worse than cloud %v", j, k, l, in.CloudLatency(k))
			}
			if l < 0 {
				t.Fatalf("negative latency %v", l)
			}
		}
	}
}

func TestUnallocatedUsersFetchFromCloud(t *testing.T) {
	in := tinyInstance(t)
	a := NewAllocation(3) // nobody allocated
	d := NewDelivery(2, 2)
	d.Place(0, 0, 30)
	if l := in.RequestLatency(a, d, 0, 0); math.Abs(float64(l)-0.05) > 1e-12 {
		t.Errorf("unallocated user latency = %v, want cloud 50ms", l)
	}
	ls := NewLatencyState(in, a)
	if g := ls.GainOf(0, 0); g != 0 {
		t.Errorf("replica gain for unallocated users = %v, want 0", g)
	}
}

func TestEvaluateBothObjectives(t *testing.T) {
	in := tinyInstance(t)
	a := Allocation{
		{Server: 0, Channel: 0},
		{Server: 1, Channel: 0},
		{Server: 1, Channel: 1},
	}
	d := NewDelivery(2, 2)
	d.Place(1, 1, 90)
	r, l := in.Evaluate(Strategy{Alloc: a, Delivery: d})
	if r <= 0 || r > 200 {
		t.Errorf("rate = %v", r)
	}
	// u1:d1 and u2:d1 now local; u0:d0 and u1:d0 from cloud.
	want := (0.05 + 0.05 + 0 + 0) / 4
	if math.Abs(float64(l)-want) > 1e-12 {
		t.Errorf("latency = %v, want %v", l, want)
	}
}

func TestDeliveryModes(t *testing.T) {
	in := tinyInstance(t)
	a := Allocation{
		{Server: 0, Channel: 0}, // u0 → v0
		{Server: 1, Channel: 0}, // u1 → v1 (covered by both servers)
		{Server: 1, Channel: 1}, // u2 → v1
	}
	d := NewDelivery(2, 2)
	d.Place(0, 0, 30) // d0 on v0 only

	// u1 requests d0, served at v1.
	// Collaborative: one hop, 30MB/3000MBps = 10ms.
	if l := in.RequestLatencyMode(a, d, 1, 0, Collaborative); math.Abs(float64(l)-0.01) > 1e-12 {
		t.Errorf("collaborative = %v, want 10ms", l)
	}
	// CoverageLocal: v0 covers u1 and holds d0 → direct delivery, 0.
	if l := in.RequestLatencyMode(a, d, 1, 0, CoverageLocal); l != 0 {
		t.Errorf("coverage-local = %v, want 0", l)
	}
	// ServerLocal: v1 does not hold d0 → cloud (50ms).
	if l := in.RequestLatencyMode(a, d, 1, 0, ServerLocal); math.Abs(float64(l)-0.05) > 1e-12 {
		t.Errorf("server-local = %v, want cloud 50ms", l)
	}
	// u2 is NOT covered by v0, so coverage-local cannot use the replica.
	if l := in.RequestLatencyMode(a, d, 2, 0, CoverageLocal); math.Abs(float64(l)-0.05) > 1e-12 {
		t.Errorf("u2 coverage-local = %v, want cloud", l)
	}
	// Latency ordering across modes holds pointwise.
	for j, items := range in.Wl.Requests {
		for _, k := range items {
			lc := in.RequestLatencyMode(a, d, j, k, Collaborative)
			ll := in.RequestLatencyMode(a, d, j, k, ServerLocal)
			if lc > ll+1e-15 {
				t.Errorf("collaborative worse than server-local for (%d,%d)", j, k)
			}
		}
	}
	if Collaborative.String() != "collaborative" || CoverageLocal.String() != "coverage-local" ||
		ServerLocal.String() != "server-local" || DeliveryMode(9).String() == "" {
		t.Error("DeliveryMode String wrong")
	}
}

func TestUnknownModePanics(t *testing.T) {
	in := tinyInstance(t)
	a := Allocation{{Server: 0, Channel: 0}, Unallocated, Unallocated}
	d := NewDelivery(2, 2)
	defer func() {
		if recover() == nil {
			t.Error("unknown mode did not panic")
		}
	}()
	in.RequestLatencyMode(a, d, 0, 0, DeliveryMode(77))
}

func TestAvgLatencyEmptyWorkload(t *testing.T) {
	in := tinyInstance(t)
	// Zero-request workload edge case via a synthetic empty state.
	empty := &LatencyState{in: in}
	if empty.Avg() != 0 {
		t.Error("empty Avg != 0")
	}
	_ = units.Seconds(0)
}

package model

import (
	"math"
	"testing"

	"idde/internal/geo"
	"idde/internal/graph"
	"idde/internal/radio"
	"idde/internal/topology"
	"idde/internal/units"
	"idde/internal/workload"
)

// twoClusterInstance builds a 4-server topology split into two radio
// clusters far apart: servers {0,1} cover users {0,1} and servers {2,3}
// cover users {2,3}. No server pair across the clusters ever co-covers
// a user, so the compact aggregate rows must not allocate cells for the
// cross-cluster sources.
func twoClusterInstance(t *testing.T) *Instance {
	t.Helper()
	top := &topology.Topology{
		Region: geo.Rect{MinX: -100, MinY: -100, MaxX: 6000, MaxY: 100},
		Servers: []topology.Server{
			{ID: 0, Pos: geo.Point{X: 0, Y: 0}, Radius: 500, Channels: 2, Bandwidth: 200},
			{ID: 1, Pos: geo.Point{X: 300, Y: 0}, Radius: 500, Channels: 3, Bandwidth: 200},
			{ID: 2, Pos: geo.Point{X: 5000, Y: 0}, Radius: 500, Channels: 2, Bandwidth: 200},
			{ID: 3, Pos: geo.Point{X: 5300, Y: 0}, Radius: 500, Channels: 2, Bandwidth: 200},
		},
		Users: []topology.User{
			{ID: 0, Pos: geo.Point{X: 100, Y: 0}, Power: 2, MaxRate: 200},
			{ID: 1, Pos: geo.Point{X: 200, Y: 0}, Power: 3, MaxRate: 200},
			{ID: 2, Pos: geo.Point{X: 5100, Y: 0}, Power: 4, MaxRate: 200},
			{ID: 3, Pos: geo.Point{X: 5200, Y: 0}, Power: 2, MaxRate: 200},
		},
		Net:       graph.New(4),
		CloudRate: 600,
	}
	top.Net.AddEdge(0, 1, units.PerMB(3000))
	top.Net.AddEdge(1, 2, units.PerMB(1000))
	top.Net.AddEdge(2, 3, units.PerMB(3000))
	if err := top.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	wl := &workload.Workload{
		Items:    []workload.Item{{ID: 0, Size: 30}, {ID: 1, Size: 90}},
		Requests: [][]int{{0}, {0, 1}, {1}, {0}},
		Capacity: []units.MegaBytes{100, 100, 100, 100},
	}
	in, err := New(top, wl, radio.Default())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return in
}

// TestAggregateRowsSkipOffCoverageSources is the satellite regression
// test: a materialized receiver row must span only the channel blocks
// of co-covering sources — cross-cluster cells are never allocated —
// and un-probed receivers must stay nil (lazy).
func TestAggregateRowsSkipOffCoverageSources(t *testing.T) {
	in := twoClusterInstance(t)
	l := NewLedger(in, NewAllocation(in.M()))
	// Occupy channels in both clusters.
	l.Move(0, Alloc{Server: 0, Channel: 0})
	l.Move(1, Alloc{Server: 1, Channel: 0})
	l.Move(2, Alloc{Server: 2, Channel: 0})
	l.Move(3, Alloc{Server: 3, Channel: 0})

	// Probe receiver 0 only: its row materializes, others stay nil.
	l.interCell(0, Alloc{Server: 0, Channel: 1})
	d := l.agg[0].Load()
	if d == nil {
		t.Fatal("probed receiver row not materialized")
	}
	for i := 1; i < in.N(); i++ {
		if l.agg[i].Load() != nil {
			t.Fatalf("un-probed receiver %d materialized a row", i)
		}
	}
	// Receiver 0 co-covers with servers {0,1} only.
	if d.srcOff[0] < 0 || d.srcOff[1] < 0 {
		t.Fatalf("co-covering sources missing from row: %v", d.srcOff)
	}
	if d.srcOff[2] >= 0 || d.srcOff[3] >= 0 {
		t.Fatalf("off-coverage sources materialized cells: %v", d.srcOff)
	}
	wantWidth := in.Top.Servers[0].Channels + in.Top.Servers[1].Channels
	if len(d.vals) != wantWidth {
		t.Fatalf("row width %d, want %d (co-covering channels only)", len(d.vals), wantWidth)
	}

	// The compact rows must still answer every covered hypothetical
	// identically to the naive walk, and Moves must keep them current.
	ref := NewLedger(in, l.Alloc())
	ref.SetNaiveInterference(true)
	check := func() {
		t.Helper()
		for j := 0; j < in.M(); j++ {
			for _, i := range in.Top.Coverage[j] {
				for x := 0; x < in.Top.Servers[i].Channels; x++ {
					a := Alloc{Server: i, Channel: x}
					fa, fr := float64(l.interCell(j, a)), float64(ref.interCell(j, a))
					if math.Abs(fa-fr) > 1e-9*math.Max(1e-30, fr) {
						t.Fatalf("interCell(%d,%v): compact %g != naive %g", j, a, fa, fr)
					}
				}
			}
		}
	}
	check()
	l.Move(1, Alloc{Server: 0, Channel: 0})
	ref.Move(1, Alloc{Server: 0, Channel: 0})
	check()

	// Off-coverage hypotheticals (receiver in the other cluster) go
	// through the single-cell fallback and must still match the naive
	// walk bit-for-bit — the fallback IS the naive per-cell sum.
	for _, a := range []Alloc{{Server: 2, Channel: 0}, {Server: 3, Channel: 1}} {
		fa, fr := float64(l.interCell(0, a)), float64(ref.interCell(0, a))
		if fa != fr {
			t.Fatalf("off-coverage interCell(0,%v): fallback %g != naive %g", a, fa, fr)
		}
	}
}

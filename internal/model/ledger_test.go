package model

import (
	"math"
	"testing"

	"idde/internal/radio"
	"idde/internal/rng"
	"idde/internal/units"
)

func TestLedgerSoloUserHitsRateCap(t *testing.T) {
	in := tinyInstance(t)
	l := NewLedger(in, NewAllocation(3))
	l.Move(0, Alloc{Server: 0, Channel: 0})
	// Alone on the channel: noise-limited SINR is astronomically large,
	// so the Eq. 4 cap (200 MBps) binds.
	if r := l.CurrentRate(0); r != 200 {
		t.Errorf("solo rate = %v, want cap 200", r)
	}
	if l.CurrentRate(1) != 0 {
		t.Error("unallocated user has non-zero rate")
	}
	if got := l.AvgRate(); math.Abs(float64(got)-200.0/3.0) > 1e-9 {
		t.Errorf("AvgRate = %v, want 200/3", got)
	}
}

func TestLedgerIntraChannelInterference(t *testing.T) {
	in := tinyInstance(t)
	l := NewLedger(in, NewAllocation(3))
	// u1 and u2 share channel 0 on v1.
	l.Move(1, Alloc{Server: 1, Channel: 0})
	l.Move(2, Alloc{Server: 1, Channel: 0})
	// u1: g = 100^-3 = 1e-6; SINR = g·3/(g·4 + ω) ≈ 3/4.
	sinr := l.SINR(1, Alloc{Server: 1, Channel: 0})
	if math.Abs(sinr-0.75) > 1e-6 {
		t.Errorf("u1 SINR = %v, want ≈0.75", sinr)
	}
	// Moving u2 to the other channel removes the interference.
	l.Move(2, Alloc{Server: 1, Channel: 1})
	if s := l.SINR(1, Alloc{Server: 1, Channel: 0}); s < 1e9 {
		t.Errorf("post-separation SINR = %v, should be noise-limited", s)
	}
}

func TestLedgerInterCellInterference(t *testing.T) {
	in := tinyInstance(t)
	l := NewLedger(in, NewAllocation(3))
	// u1 on v0 ch0; u2 on v1 ch0. u1 is covered by both servers, so u2
	// (on another covering server, same channel) interferes per F.
	l.Move(1, Alloc{Server: 0, Channel: 0})
	l.Move(2, Alloc{Server: 1, Channel: 0})
	withF := l.SINR(1, Alloc{Server: 0, Channel: 0})
	// F = Gain[v0][u2]·p2 = 700^-3·4.
	g01 := 1.0 / (500.0 * 500 * 500) // u1 to v0 distance 500
	f := 4.0 / (700.0 * 700 * 700)
	want := g01 * 3 / (f + float64(in.Radio.Noise))
	if math.Abs(withF-want) > 1e-6*want {
		t.Errorf("SINR with F = %v, want %v", withF, want)
	}
	// u0 is covered only by v0, so users on v1 do NOT interfere with it.
	l.Move(0, Alloc{Server: 0, Channel: 1})
	if s := l.SINR(0, Alloc{Server: 0, Channel: 1}); s < 1e9 {
		t.Errorf("u0 should see no inter-cell interference, SINR = %v", s)
	}
}

func TestLedgerMoveBookkeeping(t *testing.T) {
	in := tinyInstance(t)
	l := NewLedger(in, NewAllocation(3))
	a := Alloc{Server: 1, Channel: 0}
	l.Move(1, a)
	l.Move(2, a)
	if l.Occupancy(1, 0) != 2 {
		t.Errorf("occupancy = %d", l.Occupancy(1, 0))
	}
	l.Move(1, Unallocated)
	if l.Occupancy(1, 0) != 1 || l.Current(1).Allocated() {
		t.Error("deallocation bookkeeping wrong")
	}
	l.Move(2, a) // no-op move
	if l.Occupancy(1, 0) != 1 {
		t.Error("no-op move corrupted occupancy")
	}
	snap := l.Alloc()
	snap[2] = Unallocated
	if !l.Current(2).Allocated() {
		t.Error("Alloc snapshot aliases ledger state")
	}
}

func TestLedgerMatchesFromScratchEvaluation(t *testing.T) {
	in := genInstance(t, 12, 60, 4, 21)
	s := rng.New(99)
	l := NewLedger(in, NewAllocation(in.M()))
	// Random walk of moves; after each batch, compare incremental state
	// against a freshly built ledger and the from-scratch evaluators.
	for step := 0; step < 30; step++ {
		for b := 0; b < 10; b++ {
			j := s.IntN(in.M())
			vs := in.Top.Coverage[j]
			if len(vs) == 0 {
				continue
			}
			var a Alloc
			if s.Bool(0.1) {
				a = Unallocated
			} else {
				i := vs[s.IntN(len(vs))]
				a = Alloc{Server: i, Channel: s.IntN(in.Top.Servers[i].Channels)}
			}
			l.Move(j, a)
		}
		fresh := NewLedger(in, l.Alloc())
		for j := 0; j < in.M(); j++ {
			ri, rf := float64(l.CurrentRate(j)), float64(fresh.CurrentRate(j))
			if math.Abs(ri-rf) > 1e-9*math.Max(1, rf) {
				t.Fatalf("step %d: incremental rate %v != fresh %v for user %d", step, ri, rf, j)
			}
		}
		av, fv := float64(l.AvgRate()), float64(in.AvgRate(l.Alloc()))
		if math.Abs(av-fv) > 1e-9*math.Max(1, fv) {
			t.Fatalf("step %d: AvgRate mismatch %v vs %v", step, av, fv)
		}
	}
}

func TestBenefitImprovesWithLessCongestion(t *testing.T) {
	in := genInstance(t, 10, 80, 3, 31)
	l := NewLedger(in, NewAllocation(in.M()))
	// Pile users 1..40 onto channel 0 of their first covering server.
	for j := 1; j <= 40; j++ {
		i := in.Top.Coverage[j][0]
		l.Move(j, Alloc{Server: i, Channel: 0})
	}
	// For user 0, an empty channel on the same server must yield at
	// least the benefit of the crowded channel 0.
	i := in.Top.Coverage[0][0]
	crowded := l.Benefit(0, Alloc{Server: i, Channel: 0})
	empty := l.Benefit(0, Alloc{Server: i, Channel: 1})
	if crowded > empty {
		t.Errorf("crowded channel benefit %v > empty channel %v", crowded, empty)
	}
	if l.Benefit(0, Unallocated) != 0 {
		t.Error("unallocated benefit should be 0")
	}
}

func TestBenefitBoundedByOne(t *testing.T) {
	// β = g·p/(g·(p+others)+F) ≤ g·p/(g·p) = 1.
	in := genInstance(t, 10, 100, 3, 41)
	s := rng.New(5)
	l := NewLedger(in, NewAllocation(in.M()))
	for j := 0; j < in.M(); j++ {
		vs := in.Top.Coverage[j]
		i := vs[s.IntN(len(vs))]
		l.Move(j, Alloc{Server: i, Channel: s.IntN(in.Top.Servers[i].Channels)})
	}
	for j := 0; j < in.M(); j++ {
		for _, i := range in.Top.Coverage[j] {
			for x := 0; x < in.Top.Servers[i].Channels; x++ {
				if b := l.Benefit(j, Alloc{Server: i, Channel: x}); b > 1+1e-12 || b < 0 {
					t.Fatalf("benefit %v out of [0,1]", b)
				}
			}
		}
	}
}

func TestRateCapNeverExceeded(t *testing.T) {
	in := genInstance(t, 15, 120, 4, 51)
	s := rng.New(6)
	l := NewLedger(in, NewAllocation(in.M()))
	for j := 0; j < in.M(); j++ {
		vs := in.Top.Coverage[j]
		i := vs[s.IntN(len(vs))]
		l.Move(j, Alloc{Server: i, Channel: s.IntN(in.Top.Servers[i].Channels)})
	}
	for j := 0; j < in.M(); j++ {
		if r := l.CurrentRate(j); r > in.Top.Users[j].MaxRate {
			t.Fatalf("user %d rate %v exceeds cap %v", j, r, in.Top.Users[j].MaxRate)
		}
		if r := l.CurrentRate(j); r < 0 {
			t.Fatalf("negative rate %v", r)
		}
	}
}

func TestUserRateFromScratchHelper(t *testing.T) {
	in := tinyInstance(t)
	a := NewAllocation(3)
	a[0] = Alloc{Server: 0, Channel: 0}
	if r := in.UserRate(a, 0); r != 200 {
		t.Errorf("UserRate = %v", r)
	}
	if r := in.UserRate(a, 1); r != 0 {
		t.Errorf("unallocated UserRate = %v", r)
	}
}

func TestMoreUsersLowerAverageRate(t *testing.T) {
	// The Fig. 4(a) mechanism: with servers and channels fixed, more
	// users ⇒ more interference ⇒ lower average rate. Verified on
	// crowded allocations produced by a simple nearest-server rule.
	inSmall := genInstance(t, 10, 40, 3, 61)
	inBig := genInstance(t, 10, 240, 3, 61)
	nearest := func(in *Instance) units.Rate {
		l := NewLedger(in, NewAllocation(in.M()))
		for j := 0; j < in.M(); j++ {
			best, bestG := -1, -1.0
			for _, i := range in.Top.Coverage[j] {
				if g := in.GainAt(i, j); g > bestG {
					best, bestG = i, g
				}
			}
			l.Move(j, Alloc{Server: best, Channel: j % in.Top.Servers[best].Channels})
		}
		return l.AvgRate()
	}
	small, big := nearest(inSmall), nearest(inBig)
	if big >= small {
		t.Errorf("average rate did not fall with crowding: %v (M=40) vs %v (M=240)", small, big)
	}
	_ = radio.Default()
}

package model

import (
	"math"
	"testing"

	"idde/internal/rng"
)

// relClose compares two latency sums up to summation-order rounding.
func relClose(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Abs(b))
}

// TestCohortMatchesNaiveOracle is the oracle differential test: on
// seeded random instances with partially unallocated users, the cohort
// state must agree with the per-request LatencyState walk — on every
// GainOf, on every realized Commit gain, and on the running totals —
// across a random interleaved commit schedule. Agreement is exact (==):
// the reference walk shares the cohort fold order by design, and
// anything weaker lets mathematically tied candidates resolve
// differently between the optimized and reference greedy paths.
func TestCohortMatchesNaiveOracle(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 7, 2022} {
		in := genInstance(t, 12, 90, 4, seed)
		s := rng.New(seed * 101)
		alloc := randomValidAllocation(in, s)
		co := NewCohortLatencyState(in, alloc)
		ref := NewLatencyState(in, alloc)

		if co.Requests() != ref.Requests() {
			t.Fatalf("seed %d: request counts diverge: %d vs %d", seed, co.Requests(), ref.Requests())
		}
		committed := NewDelivery(in.N(), in.K())
		for step := 0; step < 30; step++ {
			// Sweep every candidate's marginal gain.
			for i := 0; i < in.N(); i++ {
				for k := 0; k < in.K(); k++ {
					if gc, gr := co.GainOf(i, k), ref.GainOf(i, k); gc != gr {
						t.Fatalf("seed %d step %d: GainOf(%d,%d) cohort %v != naive %v",
							seed, step, i, k, gc, gr)
					}
				}
			}
			if co.Total() != ref.Total() {
				t.Fatalf("seed %d step %d: totals diverge: %v vs %v", seed, step, co.Total(), ref.Total())
			}
			if co.Avg() != ref.Avg() {
				t.Fatalf("seed %d step %d: averages diverge: %v vs %v", seed, step, co.Avg(), ref.Avg())
			}
			// Commit a random not-yet-placed replica on both states.
			i, k := s.IntN(in.N()), s.IntN(in.K())
			if committed.Placed(i, k) {
				continue
			}
			committed.Place(i, k, in.Wl.Items[k].Size)
			if cc, cr := co.Commit(i, k), ref.Commit(i, k); cc != cr {
				t.Fatalf("seed %d step %d: Commit(%d,%d) gain cohort %v != naive %v",
					seed, step, i, k, cc, cr)
			}
		}
	}
}

// TestCohortUnallocatedUsersOnly pins the degenerate corner: with no
// user allocated, no edge replica can serve anyone (Eq. 8's edge option
// is +Inf), so every gain is exactly zero and the total stays at the
// all-cloud latency.
func TestCohortUnallocatedUsersOnly(t *testing.T) {
	in := genInstance(t, 8, 40, 3, 9)
	co := NewCohortLatencyState(in, NewAllocation(in.M()))
	var cloud float64
	for _, items := range in.Wl.Requests {
		for _, k := range items {
			cloud += float64(in.CloudLatency(k))
		}
	}
	if !relClose(float64(co.Total()), cloud) {
		t.Fatalf("all-cloud total %v != %g", co.Total(), cloud)
	}
	for i := 0; i < in.N(); i++ {
		for k := 0; k < in.K(); k++ {
			if g := co.GainOf(i, k); g != 0 {
				t.Fatalf("unallocated users yielded gain %v for (%d,%d)", g, i, k)
			}
			if g := co.Commit(i, k); g != 0 {
				t.Fatalf("unallocated users yielded commit gain %v for (%d,%d)", g, i, k)
			}
		}
	}
	if !relClose(float64(co.Total()), cloud) {
		t.Fatalf("total drifted to %v after zero-gain commits", co.Total())
	}
}

// TestCohortTinyInstanceExact replays the hand-checkable tiny instance:
// with one request per (item, server) cohort there is no summation-order
// freedom, so cohort and naive gains must be bit-identical.
func TestCohortTinyInstanceExact(t *testing.T) {
	in := tinyInstance(t)
	alloc := Allocation{
		{Server: 0, Channel: 0},
		{Server: 1, Channel: 0},
		{Server: 1, Channel: 1},
	}
	co := NewCohortLatencyState(in, alloc)
	ref := NewLatencyState(in, alloc)
	for i := 0; i < in.N(); i++ {
		for k := 0; k < in.K(); k++ {
			if gc, gr := co.GainOf(i, k), ref.GainOf(i, k); gc != gr {
				t.Fatalf("GainOf(%d,%d): cohort %v != naive %v", i, k, gc, gr)
			}
		}
	}
	if gc, gr := co.Commit(0, 0), ref.Commit(0, 0); gc != gr {
		t.Fatalf("commit gains diverge: %v vs %v", gc, gr)
	}
	// After the commit the improved cohorts sit exactly at the replica's
	// edge latency; a re-commit of the same replica must gain zero.
	if g := co.Commit(1, 1); g != ref.Commit(1, 1) {
		t.Fatal("second commit gains diverge")
	}
	if co.Total() != ref.Total() {
		t.Fatalf("totals diverge: %v vs %v", co.Total(), ref.Total())
	}
}

// TestCohortSuffixCollapsePreservesSortedness drives one cohort through
// a descending-threshold commit ladder and checks the multiset invariant
// directly: vals stay ascending and prefix sums stay consistent.
func TestCohortSuffixCollapsePreservesSortedness(t *testing.T) {
	in := genInstance(t, 10, 80, 3, 21)
	s := rng.New(33)
	co := NewCohortLatencyState(in, randomValidAllocation(in, s))
	for step := 0; step < 20; step++ {
		co.Commit(s.IntN(in.N()), s.IntN(in.K()))
	}
	for k := range co.cohorts {
		for ci := range co.cohorts[k] {
			c := &co.cohorts[k][ci]
			if len(c.pre) != len(c.vals)+1 || c.pre[0] != 0 {
				t.Fatalf("item %d cohort %d: malformed prefix sums", k, ci)
			}
			for x := range c.vals {
				if x > 0 && c.vals[x] < c.vals[x-1] {
					t.Fatalf("item %d cohort %d: vals not sorted at %d", k, ci, x)
				}
				if c.pre[x+1] != c.pre[x]+c.vals[x] {
					t.Fatalf("item %d cohort %d: prefix sum drift at %d", k, ci, x)
				}
			}
		}
	}
}

package model

import (
	"reflect"
	"runtime"
	"testing"

	"idde/internal/geo"
	"idde/internal/graph"
	"idde/internal/radio"
	"idde/internal/rng"
	"idde/internal/topology"
	"idde/internal/units"
	"idde/internal/workload"
)

// Edge-case coverage for the CSR gain layout: cutoff validation, users
// covered by nobody, duplicate positions, build determinism across
// GOMAXPROCS, and the automatic sparse/dense layout choice.

// rawInstance finalizes a hand-built topology + single-item workload.
func rawInstance(t *testing.T, servers []topology.Server, users []topology.User) (*topology.Topology, *workload.Workload) {
	t.Helper()
	top := &topology.Topology{
		Region:    geo.Rect{MinX: -10000, MinY: -10000, MaxX: 10000, MaxY: 10000},
		Servers:   servers,
		Users:     users,
		Net:       graph.New(len(servers)),
		CloudRate: 600,
	}
	for i := 1; i < len(servers); i++ {
		top.Net.AddEdge(i-1, i, units.PerMB(3000))
	}
	if err := top.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	reqs := make([][]int, len(users))
	for j := range reqs {
		reqs[j] = []int{0}
	}
	caps := make([]units.MegaBytes, len(servers))
	for i := range caps {
		caps[i] = 100
	}
	wl := &workload.Workload{
		Items:    []workload.Item{{ID: 0, Size: 30}},
		Requests: reqs,
		Capacity: caps,
	}
	return top, wl
}

func TestNewSparseRejectsCutoffBelowCoverageRadius(t *testing.T) {
	in := tinyInstance(t) // max radius 500
	if _, err := NewSparse(in.Top, in.Wl, in.Radio, 499); err == nil {
		t.Fatal("cutoff below the largest coverage radius was accepted")
	}
	// The bare coverage radius is the tightest legal cutoff.
	sp, err := NewSparse(in.Top, in.Wl, in.Radio, 500)
	if err != nil {
		t.Fatalf("cutoff = max radius rejected: %v", err)
	}
	if !sp.Sparse() || sp.Cutoff() != 500 {
		t.Fatalf("unexpected layout: sparse=%v cutoff=%v", sp.Sparse(), sp.Cutoff())
	}
}

func TestSparseUncoveredUserStillReadable(t *testing.T) {
	// u1 sits outside every coverage disk AND outside the cutoff disk:
	// it appears in no CSR row, but reads toward it must still match the
	// dense reference via the recompute fallback.
	top, wl := rawInstance(t,
		[]topology.Server{{ID: 0, Pos: geo.Point{X: 0, Y: 0}, Radius: 400, Channels: 2, Bandwidth: 200}},
		[]topology.User{
			{ID: 0, Pos: geo.Point{X: 100, Y: 0}, Power: 2, MaxRate: 200},
			{ID: 1, Pos: geo.Point{X: 5000, Y: 0}, Power: 2, MaxRate: 200},
		})
	if len(top.Coverage[1]) != 0 {
		t.Fatalf("u1 unexpectedly covered: %v", top.Coverage[1])
	}
	sp, err := NewSparse(top, wl, radio.Default(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := sp.GainRow(0).Len(); got != 1 {
		t.Fatalf("row support = %d, want 1 (only the covered user)", got)
	}
	dense, err := NewDense(top, wl, radio.Default())
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 2; j++ {
		if sp.GainAt(0, j) != dense.GainAt(0, j) {
			t.Fatalf("GainAt(0,%d): sparse %v, dense %v", j, sp.GainAt(0, j), dense.GainAt(0, j))
		}
	}
}

func TestSparseDuplicatePositions(t *testing.T) {
	// Two users on the same point, one of them exactly on the server:
	// both must be stored, with identical gains for the co-located pair
	// and the RefDist clamp for the zero-distance one.
	top, wl := rawInstance(t,
		[]topology.Server{{ID: 0, Pos: geo.Point{X: 0, Y: 0}, Radius: 400, Channels: 2, Bandwidth: 200}},
		[]topology.User{
			{ID: 0, Pos: geo.Point{X: 50, Y: 50}, Power: 2, MaxRate: 200},
			{ID: 1, Pos: geo.Point{X: 50, Y: 50}, Power: 3, MaxRate: 200},
			{ID: 2, Pos: geo.Point{X: 0, Y: 0}, Power: 4, MaxRate: 200},
		})
	sp, err := NewSparse(top, wl, radio.Default(), 0)
	if err != nil {
		t.Fatal(err)
	}
	row := sp.GainRow(0)
	cols, vals := row.Support()
	if !reflect.DeepEqual(cols, []int32{0, 1, 2}) {
		t.Fatalf("support = %v, want [0 1 2]", cols)
	}
	if vals[0] != vals[1] {
		t.Fatalf("co-located users got different gains: %v vs %v", vals[0], vals[1])
	}
	rm := radio.Default()
	if want := rm.Gain(0); vals[2] != want {
		t.Fatalf("zero-distance gain = %v, want RefDist-clamped %v", vals[2], want)
	}
}

func TestSparseBuildDeterministicAcrossGomaxprocs(t *testing.T) {
	in := genInstance(t, 20, 150, 5, 7)
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	type rowdump struct {
		Cols []int32
		Vals []float64
	}
	build := func(procs int) []rowdump {
		runtime.GOMAXPROCS(procs)
		sp, err := NewSparse(in.Top, in.Wl, in.Radio, 0)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]rowdump, sp.N())
		for i := range out {
			c, v := sp.GainRow(i).Support()
			out[i] = rowdump{Cols: c, Vals: v}
		}
		return out
	}
	base := build(1)
	for _, procs := range []int{2, 8} {
		if got := build(procs); !reflect.DeepEqual(got, base) {
			t.Fatalf("CSR rows differ between GOMAXPROCS=1 and %d", procs)
		}
	}
}

func TestNewPicksSmallerLayout(t *testing.T) {
	// Compact Table 2 region: the cutoff disk spans most of the map, the
	// rows are near-dense, New must densify.
	in := genInstance(t, 20, 150, 5, 3)
	if in.Sparse() {
		st := in.LayoutStats()
		t.Fatalf("compact instance kept the CSR layout (density %.2f)", st.Density)
	}

	// Spread the same density over a 4×-per-axis region: rows thin out
	// and New must keep the CSR layout, with a real memory win.
	s := rng.New(41)
	cfg := topology.DefaultGen(20*16, 150*16, 1.0)
	cfg.Region.MaxX = cfg.Region.MinX + cfg.Region.Width()*4
	cfg.Region.MaxY = cfg.Region.MinY + cfg.Region.Height()*4
	top, err := topology.Generate(cfg, s.Split("top"))
	if err != nil {
		t.Fatal(err)
	}
	wl, err := workload.Generate(workload.DefaultGen(5), top.N(), top.M(), s.Split("wl"))
	if err != nil {
		t.Fatal(err)
	}
	big, err := New(top, wl, radio.Default())
	if err != nil {
		t.Fatal(err)
	}
	if !big.Sparse() {
		t.Fatal("region-scaled instance was densified")
	}
	st := big.LayoutStats()
	if st.Bytes*2 >= 8*int64(big.N())*int64(big.M()) {
		t.Fatalf("CSR layout not at least 2× under the dense matrix: %d bytes, density %.3f", st.Bytes, st.Density)
	}
}

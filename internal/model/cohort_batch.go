package model

import "idde/internal/units"

// BatchCohortLatencyState is the Commit-batching Phase 2 oracle for
// deep replica budgets. It exploits an invariant of the factorized
// Eq. 8 latency model: every cohort starts uniform (all requests at the
// item's cloud latency) and every Commit replaces the improved suffix
// with the uniform threshold value, so a cohort's value multiset is
// always n copies of one current value. The per-request vals/pre arrays
// of CohortLatencyState therefore carry no information beyond (n, cur),
// and this oracle drops them entirely: a Commit updates one float per
// improved cohort, and the suffix-collapse — the n-term prefix-sum
// rebuild the eager oracle performs on every Commit — is deferred and
// applied at most once per batch of consecutive commits touching the
// same (item, serving-server) cohorts, when a later evaluation first
// needs the collapsed sum. Memory drops from O(requests) to O(cohorts).
//
// Gains and totals are bit-identical to CohortLatencyState (and hence
// to the LatencyState reference): the lazily materialized sum is the
// same left-to-right fold of n equal values the prefix-sum rebuild
// computes, and the gain expression sum − n·t matches the cohortHot
// fast-path term for term, so the committed replica sequences agree
// exactly (the differential suites pin this down).
//
// Concurrency: GainOf mutates cohort sums when it materializes a
// deferred collapse, so — unlike the eager oracle — concurrent GainOf
// calls are only safe while every sum is materialized. Construction
// materializes all of them and only Commit defers, so the parallel seed
// scan (which runs strictly before the first Commit) is safe; after the
// first Commit all evaluations must be sequential, which is exactly the
// CELF engine's behaviour.
type BatchCohortLatencyState struct {
	in *Instance
	// cohorts[k] lists item k's cohorts ascending by serving server, as
	// views into one shared backing array.
	cohorts  [][]batchCohort
	requests int
	total    float64
}

var _ DeliveryOracle = (*BatchCohortLatencyState)(nil)

// batchCohort is one (item, serving server) cohort: n requests, all at
// the current latency cur. sum caches the left-to-right fold of n
// copies of cur; sumOK is cleared by a deferred collapse.
type batchCohort struct {
	server int32
	n      int32
	sumOK  bool
	cur    float64
	sum    float64
}

// foldUniform computes the left-to-right fold v+v+…+v over n terms —
// bitwise the prefix-sum total the eager oracle rebuilds on a full
// collapse, which n·v (one rounding instead of n−1) is not.
func foldUniform(v float64, n int) float64 {
	var s float64
	for ; n > 0; n-- {
		s += v
	}
	return s
}

// NewBatchCohortLatencyState builds the batching oracle for the given
// allocation with an empty delivery profile, with every cohort sum
// materialized (see the concurrency note on the type).
func NewBatchCohortLatencyState(in *Instance, alloc Allocation) *BatchCohortLatencyState {
	ls := &BatchCohortLatencyState{
		in:      in,
		cohorts: make([][]batchCohort, in.K()),
	}
	counts := cohortCounts(in, alloc, &ls.requests, &ls.total)
	n := in.N()
	totalCohorts := 0
	for _, cnt := range counts {
		if cnt > 0 {
			totalCohorts++
		}
	}
	buf := make([]batchCohort, totalCohorts)
	co := 0
	for k := 0; k < in.K(); k++ {
		row := counts[k*n : (k+1)*n]
		nc := 0
		for _, cnt := range row {
			if cnt > 0 {
				nc++
			}
		}
		if nc == 0 {
			continue
		}
		cloud := float64(in.CloudLatency(k))
		cs := buf[co : co : co+nc]
		co += nc
		for a, cnt := range row {
			if cnt == 0 {
				continue
			}
			cs = append(cs, batchCohort{
				server: int32(a), n: cnt, sumOK: true,
				cur: cloud, sum: foldUniform(cloud, int(cnt)),
			})
		}
		ls.cohorts[k] = cs
	}
	return ls
}

// Requests reports the total request count (the denominator of Eq. 9).
func (ls *BatchCohortLatencyState) Requests() int { return ls.requests }

// Total reports Σ_j Σ_k ζ_{j,k}·L_{j,k}, the numerator of Eq. 9.
func (ls *BatchCohortLatencyState) Total() units.Seconds { return units.Seconds(ls.total) }

// Avg reports Eq. (9), the average data delivery latency.
func (ls *BatchCohortLatencyState) Avg() units.Seconds {
	if ls.requests == 0 {
		return 0
	}
	return units.Seconds(ls.total / float64(ls.requests))
}

// GainOf reports the total latency reduction of adding replica
// σ_{i,k}=1, materializing any deferred collapses of item k's cohorts
// on the way (at most one fold per cohort per commit batch).
func (ls *BatchCohortLatencyState) GainOf(i, k int) units.Seconds {
	row := ls.in.Top.PathCost[i]
	size := float64(ls.in.Wl.Items[k].Size)
	var gain float64
	cs := ls.cohorts[k]
	for ci := range cs {
		c := &cs[ci]
		t := float64(row[c.server]) * size
		if t >= c.cur {
			continue // nothing improves: the cohort is uniform at cur
		}
		if !c.sumOK {
			c.sum = foldUniform(c.cur, int(c.n))
			c.sumOK = true
		}
		gain += c.sum - float64(c.n)*t
	}
	return units.Seconds(gain)
}

// Commit applies replica σ_{i,k}=1: each improved cohort collapses to
// the threshold value in O(1), deferring its fold to the next
// evaluation that needs it. In the CELF flow a Commit immediately
// follows a fresh GainOf of the same candidate, so the sums it reads
// are already materialized and the Commit itself performs no folds.
func (ls *BatchCohortLatencyState) Commit(i, k int) units.Seconds {
	row := ls.in.Top.PathCost[i]
	size := float64(ls.in.Wl.Items[k].Size)
	var gain float64
	cs := ls.cohorts[k]
	for ci := range cs {
		c := &cs[ci]
		t := float64(row[c.server]) * size
		if t >= c.cur {
			continue
		}
		if !c.sumOK {
			c.sum = foldUniform(c.cur, int(c.n))
		}
		gain += c.sum - float64(c.n)*t
		c.cur = t
		c.sumOK = false
	}
	ls.total -= gain
	return units.Seconds(gain)
}

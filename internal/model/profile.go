package model

import (
	"fmt"

	"idde/internal/units"
)

// Alloc is one user's allocation decision α_j = (i, x): the edge server
// and channel serving the user. The zero decision (paper's (0,0)) is
// represented by the Unallocated sentinel.
type Alloc struct {
	Server  int
	Channel int
}

// Unallocated is α_j = (0,0): the user is not served by any edge server.
var Unallocated = Alloc{Server: -1, Channel: -1}

// Allocated reports whether the decision assigns a server.
func (a Alloc) Allocated() bool { return a.Server >= 0 }

func (a Alloc) String() string {
	if !a.Allocated() {
		return "(unallocated)"
	}
	return fmt.Sprintf("(v%d,c%d)", a.Server, a.Channel)
}

// Allocation is the user allocation profile α = {α_1, …, α_M}.
type Allocation []Alloc

// NewAllocation returns an all-unallocated profile for m users
// (Algorithm 1 line 2 initialization).
func NewAllocation(m int) Allocation {
	a := make(Allocation, m)
	for j := range a {
		a[j] = Unallocated
	}
	return a
}

// Clone deep-copies the profile.
func (a Allocation) Clone() Allocation {
	return append(Allocation(nil), a...)
}

// AllocatedCount reports how many users are allocated.
func (a Allocation) AllocatedCount() int {
	n := 0
	for _, d := range a {
		if d.Allocated() {
			n++
		}
	}
	return n
}

// CheckAllocation enforces Eq. (1): an allocated user must be assigned
// to a covering server and an existing channel.
func (in *Instance) CheckAllocation(a Allocation) error {
	if len(a) != in.M() {
		return fmt.Errorf("model: allocation has %d entries for %d users", len(a), in.M())
	}
	for j, d := range a {
		if !d.Allocated() {
			continue
		}
		if d.Server >= in.N() {
			return fmt.Errorf("model: user %d allocated to unknown server %d", j, d.Server)
		}
		if d.Channel < 0 || d.Channel >= in.Top.Servers[d.Server].Channels {
			return fmt.Errorf("model: user %d allocated to unknown channel %d on server %d", j, d.Channel, d.Server)
		}
		if !in.Top.Covers(d.Server, j) {
			return fmt.Errorf("model: user %d allocated to non-covering server %d (violates Eq. 1)", j, d.Server)
		}
	}
	return nil
}

// Delivery is the data delivery profile σ: which items are replicated
// onto which servers, with per-server storage accounting.
type Delivery struct {
	n, k   int
	placed []bool            // [i*k + item]
	used   []units.MegaBytes // per server
}

// NewDelivery returns an empty profile (nothing on any edge server; the
// cloud implicitly holds everything per Eq. 7).
func NewDelivery(n, k int) *Delivery {
	return &Delivery{n: n, k: k, placed: make([]bool, n*k), used: make([]units.MegaBytes, n)}
}

// Placed reports σ_{i,k}.
func (d *Delivery) Placed(i, k int) bool { return d.placed[i*d.k+k] }

// Used reports the storage consumed on server i.
func (d *Delivery) Used(i int) units.MegaBytes { return d.used[i] }

// Count reports the number of placed replicas.
func (d *Delivery) Count() int {
	n := 0
	for _, p := range d.placed {
		if p {
			n++
		}
	}
	return n
}

// Place sets σ_{i,k}=1, charging size MB to server i. Placing an
// already-placed replica panics — callers must guard, since double
// charging storage would corrupt the Eq. 6 accounting.
func (d *Delivery) Place(i, k int, size units.MegaBytes) {
	if d.placed[i*d.k+k] {
		panic(fmt.Sprintf("model: replica (%d,%d) placed twice", i, k))
	}
	d.placed[i*d.k+k] = true
	d.used[i] += size
}

// Holders returns the servers currently holding item k, ascending.
func (d *Delivery) Holders(k int) []int {
	var out []int
	for i := 0; i < d.n; i++ {
		if d.placed[i*d.k+k] {
			out = append(out, i)
		}
	}
	return out
}

// Clone deep-copies the profile.
func (d *Delivery) Clone() *Delivery {
	return &Delivery{
		n: d.n, k: d.k,
		placed: append([]bool(nil), d.placed...),
		used:   append([]units.MegaBytes(nil), d.used...),
	}
}

// CheckDelivery enforces the storage constraint of Eq. (6) and verifies
// the internal accounting.
func (in *Instance) CheckDelivery(d *Delivery) error {
	if d.n != in.N() || d.k != in.K() {
		return fmt.Errorf("model: delivery sized %dx%d for instance %dx%d", d.n, d.k, in.N(), in.K())
	}
	for i := 0; i < in.N(); i++ {
		var vol units.MegaBytes
		for k := 0; k < in.K(); k++ {
			if d.Placed(i, k) {
				vol += in.Wl.Items[k].Size
			}
		}
		if vol != d.used[i] {
			return fmt.Errorf("model: server %d accounting drift: %v recorded vs %v actual", i, d.used[i], vol)
		}
		if vol > in.Wl.Capacity[i] {
			return fmt.Errorf("model: server %d stores %v over capacity %v (violates Eq. 6)", i, vol, in.Wl.Capacity[i])
		}
	}
	return nil
}

// DeliveryMode states how data physically reaches users under a
// strategy. The paper's central argument is that only approaches aware
// of edge-server collaboration can route requests through the wired
// edge network (Eq. 8); the baselines it compares against deliver from
// a narrower set of sources, and their measured latency reflects that.
type DeliveryMode int

const (
	// Collaborative delivery (IDDE-G, IDDE-IP): a request is served
	// from any edge server holding the item, over the cheapest wired
	// path to the user's serving server, or from the cloud (Eq. 8).
	Collaborative DeliveryMode = iota
	// CoverageLocal delivery (SAA): a request is served directly over
	// the air from any *covering* server holding the item, else from
	// the cloud.
	CoverageLocal
	// ServerLocal delivery (CDP, DUP-G): a request is served only when
	// the user's own serving server holds the item, else from the
	// cloud.
	ServerLocal
)

func (m DeliveryMode) String() string {
	switch m {
	case Collaborative:
		return "collaborative"
	case CoverageLocal:
		return "coverage-local"
	case ServerLocal:
		return "server-local"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Strategy is a complete IDDE strategy: both profiles plus the delivery
// mode they are executed under, as returned by Algorithm 1 line 27.
type Strategy struct {
	Alloc    Allocation
	Delivery *Delivery
	// Mode defaults to Collaborative (the paper's system model).
	Mode DeliveryMode
}

// Check validates both profiles against the instance.
func (in *Instance) Check(s Strategy) error {
	if err := in.CheckAllocation(s.Alloc); err != nil {
		return err
	}
	return in.CheckDelivery(s.Delivery)
}

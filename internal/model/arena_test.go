package model

import (
	"testing"

	"idde/internal/rng"
)

// fillRandom walks every user onto a random covering decision.
func fillRandom(in *Instance, l *Ledger, s *rng.Stream) {
	for j := 0; j < in.M(); j++ {
		if vs := in.Top.Coverage[j]; len(vs) > 0 {
			i := vs[s.IntN(len(vs))]
			l.Move(j, Alloc{Server: i, Channel: s.IntN(in.Top.Servers[i].Channels)})
		}
	}
}

// TestSpanArenaRecyclesSpans exercises the backing-slab allocator
// directly: released spans must come back through the free list (inUse
// returns to zero; total stops growing once the working set repeats)
// and allocations must be capacity-clipped so a holder cannot append
// into a neighbouring span.
func TestSpanArenaRecyclesSpans(t *testing.T) {
	var a spanArena[float64]
	sizes := []int{40, 333, 70, 1024, 512}
	var spans [][]float64
	for _, n := range sizes {
		s := a.alloc(n)
		if len(s) != n || cap(s) != n {
			t.Fatalf("alloc(%d): len=%d cap=%d, want exact-capacity span", n, len(s), cap(s))
		}
		spans = append(spans, s)
	}
	inUse := 0
	for _, n := range sizes {
		inUse += n
	}
	if a.inUse != inUse {
		t.Fatalf("inUse=%d after allocs, want %d", a.inUse, inUse)
	}
	for _, s := range spans {
		a.release(s)
	}
	if a.inUse != 0 {
		t.Fatalf("inUse=%d after releasing everything, want 0", a.inUse)
	}
	total := a.total
	// Re-allocating the same working set must be served from the free
	// list without growing the slabs.
	for round := 0; round < 10; round++ {
		spans = spans[:0]
		for _, n := range sizes {
			spans = append(spans, a.alloc(n))
		}
		for _, s := range spans {
			a.release(s)
		}
	}
	if a.total != total {
		t.Fatalf("arena grew from %d to %d re-allocating a repeated working set", total, a.total)
	}
}

// TestBudgetedInterCellBitIdentical is the bounded-residency
// differential: with the row budget forcing constant faults, fold
// fallbacks, second-chance evictions and rebuilds, every hypothetical
// inter-cell interference must equal the unbounded ledger's value
// bit-for-bit — the fallback replays the same left-to-right fold the
// maintained cells hold, and rebuilt rows recompute exactly that fold.
func TestBudgetedInterCellBitIdentical(t *testing.T) {
	for _, seed := range []uint64{2, 9, 2022} {
		in := genInstance(t, 14, 100, 4, seed)
		s := rng.New(seed * 13)
		full := NewLedger(in, NewAllocation(in.M()))
		tight := NewLedger(in, NewAllocation(in.M()))
		tight.SetAggRowBudget(2)

		for step := 0; step < 20; step++ {
			for b := 0; b < 10; b++ {
				j := s.IntN(in.M())
				a := randomMove(in, j, s)
				full.Move(j, a)
				tight.Move(j, a)
			}
			for probe := 0; probe < 60; probe++ {
				j := s.IntN(in.M())
				vs := in.Top.Coverage[j]
				if len(vs) == 0 {
					continue
				}
				i := vs[s.IntN(len(vs))]
				a := Alloc{Server: i, Channel: s.IntN(in.Top.Servers[i].Channels)}
				if fa, fb := full.interCell(j, a), tight.interCell(j, a); fa != fb {
					t.Fatalf("seed %d step %d: interCell(%d,%v) budget=2 %v != unbounded %v",
						seed, step, j, a, fb, fa)
				}
				if ba, bb := full.Benefit(j, a), tight.Benefit(j, a); ba != bb {
					t.Fatalf("seed %d step %d: Benefit(%d,%v) diverges under budget", seed, step, j, a)
				}
			}
		}
		st := tight.AggMemStats()
		if st.ResidentRows > 2 {
			t.Fatalf("resident rows %d exceed budget 2", st.ResidentRows)
		}
		if st.FallbackEvals == 0 {
			t.Fatalf("budget=2 walk never took the fold fallback; the differential exercised nothing")
		}
	}
}

// TestEvictRebuildBitIdentical pins the fold invariant end to end: a
// row's cells, captured while resident, must reappear bit-identically
// after the row is evicted (fold-fallback reads) and again after it is
// rebuilt (budget raised, row re-faulted).
func TestEvictRebuildBitIdentical(t *testing.T) {
	in := genInstance(t, 10, 70, 3, 5)
	s := rng.New(41)
	l := NewLedger(in, NewAllocation(in.M()))
	fillRandom(in, l, s)
	l.WarmAggregates()

	type probe struct {
		j int
		a Alloc
	}
	var probes []probe
	var want []float64
	for len(probes) < 200 {
		j := s.IntN(in.M())
		vs := in.Top.Coverage[j]
		if len(vs) == 0 {
			continue
		}
		i := vs[s.IntN(len(vs))]
		a := Alloc{Server: i, Channel: s.IntN(in.Top.Servers[i].Channels)}
		probes = append(probes, probe{j, a})
		want = append(want, float64(l.interCell(j, a)))
	}

	check := func(label string) {
		t.Helper()
		for pi, p := range probes {
			if got := float64(l.interCell(p.j, p.a)); got != want[pi] {
				t.Fatalf("%s: interCell(%d,%v) = %g, want %g", label, p.j, p.a, got, want[pi])
			}
		}
	}
	l.SetAggRowBudget(1) // evict all but one row
	if st := l.AggMemStats(); st.ResidentRows > 1 || st.Evictions == 0 {
		t.Fatalf("budget=1: resident=%d evictions=%d", st.ResidentRows, st.Evictions)
	}
	check("after eviction (fold fallback)")
	l.SetAggRowBudget(0) // unlimited again
	l.WarmAggregates()   // rebuild every row from the survivor lists
	check("after rebuild")
	if st := l.AggMemStats(); st.ResidentRows != in.N() {
		t.Fatalf("after rebuild: resident=%d, want %d", st.ResidentRows, in.N())
	}
}

// TestAggMemStatsAccounting sanity-checks the memory accounting under
// budget pressure: residency never exceeds the budget, in-use bytes
// never exceed the slab footprint, and the dense-equivalent baseline
// dominates the resident bytes once rows have been evicted.
func TestAggMemStatsAccounting(t *testing.T) {
	in := genInstance(t, 12, 90, 4, 8)
	s := rng.New(77)
	l := NewLedger(in, NewAllocation(in.M()))
	l.SetAggRowBudget(3)
	fillRandom(in, l, s)
	l.WarmAggregates()
	// Uniform probe pressure drives faults past the promotion threshold.
	for probe := 0; probe < 4000; probe++ {
		j := s.IntN(in.M())
		vs := in.Top.Coverage[j]
		if len(vs) == 0 {
			continue
		}
		i := vs[s.IntN(len(vs))]
		_ = l.Benefit(j, Alloc{Server: i, Channel: s.IntN(in.Top.Servers[i].Channels)})
	}
	st := l.AggMemStats()
	if st.ResidentRows > 3 {
		t.Fatalf("resident rows %d exceed budget %d", st.ResidentRows, st.RowBudget)
	}
	if st.InUseBytes > st.ArenaBytes {
		t.Fatalf("in-use bytes %d exceed arena bytes %d", st.InUseBytes, st.ArenaBytes)
	}
	if st.EverBuiltRows <= st.ResidentRows || st.Evictions == 0 {
		t.Fatalf("expected eviction churn: ever=%d resident=%d evictions=%d",
			st.EverBuiltRows, st.ResidentRows, st.Evictions)
	}
	if st.DenseEquivBytes <= st.InUseBytes {
		t.Fatalf("dense-equivalent %d does not dominate resident %d under budget",
			st.DenseEquivBytes, st.InUseBytes)
	}
}

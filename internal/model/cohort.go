package model

import (
	"sort"

	"idde/internal/units"
)

// DeliveryOracle is the Phase 2 marginal-gain oracle contract shared by
// the optimized cohort-aggregated state and the per-request reference
// walk (LatencyState). Both expose Eq. 17 marginal gains and commits
// over a growing delivery profile for a fixed allocation; they differ
// only in evaluation cost and floating-point summation order.
type DeliveryOracle interface {
	// GainOf reports the total latency reduction of adding replica
	// σ_{i,k}=1 (the numerator of Eq. 17).
	GainOf(i, k int) units.Seconds
	// Commit applies replica σ_{i,k}=1 and returns the realized gain.
	Commit(i, k int) units.Seconds
	// Requests reports the total request count (denominator of Eq. 9).
	Requests() int
	// Total reports Σ_j Σ_k ζ_{j,k}·L_{j,k} (numerator of Eq. 9).
	Total() units.Seconds
	// Avg reports Eq. (9) under the committed profile.
	Avg() units.Seconds
}

var (
	_ DeliveryOracle = (*LatencyState)(nil)
	_ DeliveryOracle = (*CohortLatencyState)(nil)
)

// cohort groups the requests for one item that share a serving server a.
// Eq. 8 factorizes as EdgeLatency(k,o,a) = PathCost[o][a]·size_k, so
// every request in the cohort sees the same latency from any replica and
// their current latencies evolve through the same sequence of minima.
// The multiset of current values is kept sorted ascending with prefix
// sums, so a candidate's contribution at threshold t is a suffix query:
// Σ_{cur > t}(cur − t) = suffixSum(t) − suffixCount(t)·t.
type cohort struct {
	// server is the serving server a shared by the cohort's requests.
	server int
	// vals are the current request latencies, sorted ascending.
	vals []float64
	// pre are prefix sums over vals: pre[x] = Σ vals[:x] (len(vals)+1).
	pre []float64
}

// cohortHot is the cache-resident summary the GainOf hot loop reads: in
// the factorized model commits collapse whole suffixes, so cohorts are
// uniform (lo == hi) in practice and a candidate either improves the
// entire cohort or none of it. Both cases resolve from this 32-byte
// record — one threshold compare plus at most one fused multiply-add —
// without touching the multiset; only a genuinely split cohort (lo < t
// < hi) falls back to the binary search over vals/pre.
type cohortHot struct {
	server int32
	n      int32
	lo     float64 // vals[0]
	hi     float64 // vals[n-1]
	sum    float64 // pre[n], copied bitwise so full-cohort gains match
}

// suffixStart returns the first index whose value strictly exceeds t —
// the boundary of the improved suffix for a replica at threshold t. The
// extreme cases are resolved without a search because commits collapse
// the improved suffix to a single value, keeping cohorts near-uniform:
// in the factorized model every cohort is either fully above or fully
// below any threshold, so the binary search is only the general-case
// fallback.
func (c *cohort) suffixStart(t float64) int {
	n := len(c.vals)
	if t >= c.vals[n-1] {
		return n // nothing improves
	}
	if t < c.vals[0] {
		return 0 // the whole cohort improves
	}
	return sort.Search(n, func(x int) bool { return c.vals[x] > t })
}

// CohortLatencyState is the optimized Phase 2 latency oracle: the same
// incremental Eq. 8/Eq. 17 semantics as LatencyState, evaluated in
// O(cohorts-of-item · log requests) per GainOf instead of
// O(requests-of-item). Requests are grouped by (item, serving server);
// unallocated users' requests are pinned at cloud latency forever (the
// edge option of Eq. 8 is +Inf for them) and therefore never enter a
// cohort — they only contribute to the Requests/Total accounting.
//
// Gains are bit-identical to LatencyState's: the reference walk groups
// its per-request fold by serving server in the same ascending order
// and applies the same sum−count·t arithmetic (see the LatencyState
// type comment), so even mathematically tied candidates resolve the
// same way on both paths and the committed replica sequences match
// exactly. The differential suites pin both properties down.
type CohortLatencyState struct {
	in *Instance
	// cohorts[k] lists item k's cohorts, ascending by serving server.
	cohorts [][]cohort
	// hot[k] is the parallel contiguous summary array read by GainOf.
	hot      [][]cohortHot
	requests int
	total    float64
}

// cohortCounts tallies requests per (item, serving server) for
// allocated users into one flat K·N array, accumulating the
// Requests/Total denominators in the same j-order fold as LatencyState
// so the totals agree bitwise. Shared by both cohort oracle
// constructors.
func cohortCounts(in *Instance, alloc Allocation, requests *int, total *float64) []int32 {
	counts := make([]int32, in.K()*in.N())
	n := in.N()
	for j, items := range in.Wl.Requests {
		a := alloc[j]
		for _, k := range items {
			*requests++
			*total += float64(in.CloudLatency(k))
			if !a.Allocated() {
				continue
			}
			counts[k*n+a.Server]++
		}
	}
	return counts
}

// NewCohortLatencyState builds the cohort oracle for the given
// allocation with an empty delivery profile. Every per-item slice is a
// view into one of four shared backing arrays sized in a counting
// pass, so construction costs a fixed handful of allocations
// regardless of the item or cohort count.
func NewCohortLatencyState(in *Instance, alloc Allocation) *CohortLatencyState {
	ls := &CohortLatencyState{
		in:      in,
		cohorts: make([][]cohort, in.K()),
		hot:     make([][]cohortHot, in.K()),
	}
	counts := cohortCounts(in, alloc, &ls.requests, &ls.total)
	n := in.N()
	totalCohorts, totalVals := 0, 0
	for _, cnt := range counts {
		if cnt > 0 {
			totalCohorts++
			totalVals += int(cnt)
		}
	}
	csBuf := make([]cohort, totalCohorts)
	hsBuf := make([]cohortHot, totalCohorts)
	valsBuf := make([]float64, totalVals)
	preBuf := make([]float64, totalVals+totalCohorts)
	co, vo, po := 0, 0, 0
	for k := 0; k < in.K(); k++ {
		row := counts[k*n : (k+1)*n]
		nc := 0
		for _, cnt := range row {
			if cnt > 0 {
				nc++
			}
		}
		if nc == 0 {
			continue
		}
		cloud := float64(in.CloudLatency(k))
		cs := csBuf[co : co : co+nc]
		hs := hsBuf[co : co : co+nc]
		co += nc
		for a, cnt32 := range row {
			cnt := int(cnt32)
			if cnt == 0 {
				continue
			}
			c := cohort{
				server: a,
				vals:   valsBuf[vo : vo+cnt : vo+cnt],
				pre:    preBuf[po : po+cnt+1 : po+cnt+1],
			}
			vo, po = vo+cnt, po+cnt+1
			for x := 0; x < cnt; x++ {
				c.vals[x] = cloud
				c.pre[x+1] = c.pre[x] + cloud
			}
			cs = append(cs, c)
			hs = append(hs, cohortHot{
				server: int32(a), n: int32(cnt),
				lo: cloud, hi: cloud, sum: c.pre[cnt],
			})
		}
		ls.cohorts[k] = cs
		ls.hot[k] = hs
	}
	return ls
}

// Requests reports the total request count (the denominator of Eq. 9).
func (ls *CohortLatencyState) Requests() int { return ls.requests }

// Total reports Σ_j Σ_k ζ_{j,k}·L_{j,k}, the numerator of Eq. 9.
func (ls *CohortLatencyState) Total() units.Seconds { return units.Seconds(ls.total) }

// Avg reports Eq. (9), the average data delivery latency.
func (ls *CohortLatencyState) Avg() units.Seconds {
	if ls.requests == 0 {
		return 0
	}
	return units.Seconds(ls.total / float64(ls.requests))
}

// GainOf reports the total latency reduction of adding replica
// σ_{i,k}=1: for each cohort the threshold t = PathCost[i][a]·size_k is
// one multiplication against the hoisted path-cost row, and the
// improved suffix resolves from the cohortHot summary (whole cohort or
// nothing) with a prefix-sum fallback for split cohorts. Safe for
// concurrent invocation between Commits.
func (ls *CohortLatencyState) GainOf(i, k int) units.Seconds {
	row := ls.in.Top.PathCost[i]
	size := float64(ls.in.Wl.Items[k].Size)
	var gain float64
	hots := ls.hot[k]
	for hi := range hots {
		h := &hots[hi]
		t := float64(row[h.server]) * size
		if t >= h.hi {
			continue // nothing improves
		}
		if t < h.lo {
			gain += h.sum - float64(h.n)*t // the whole cohort improves
			continue
		}
		c := &ls.cohorts[k][hi]
		n := len(c.vals)
		idx := sort.Search(n, func(x int) bool { return c.vals[x] > t })
		gain += (c.pre[n] - c.pre[idx]) - float64(n-idx)*t
	}
	return units.Seconds(gain)
}

// Commit applies replica σ_{i,k}=1, re-bucketing only the improved
// requests: each cohort's suffix above the threshold collapses to the
// threshold value, which preserves sortedness, the prefix sums are
// rebuilt from the collapse point only, and the cohortHot summary is
// refreshed.
func (ls *CohortLatencyState) Commit(i, k int) units.Seconds {
	row := ls.in.Top.PathCost[i]
	size := float64(ls.in.Wl.Items[k].Size)
	var gain float64
	hots := ls.hot[k]
	for hi := range hots {
		h := &hots[hi]
		t := float64(row[h.server]) * size
		if t >= h.hi {
			continue
		}
		c := &ls.cohorts[k][hi]
		n := len(c.vals)
		idx := 0
		if t >= h.lo {
			idx = sort.Search(n, func(x int) bool { return c.vals[x] > t })
		}
		gain += (c.pre[n] - c.pre[idx]) - float64(n-idx)*t
		for x := idx; x < n; x++ {
			c.vals[x] = t
			c.pre[x+1] = c.pre[x] + t
		}
		if idx == 0 {
			h.lo = t
		}
		h.hi = t
		h.sum = c.pre[n]
	}
	ls.total -= gain
	return units.Seconds(gain)
}

package model

import (
	"fmt"

	"idde/internal/units"
)

// request is one (user, item) demand: a single ζ_{j,k}=1 entry.
type request struct {
	j, k int
}

// itemGroup indexes one item's requests that share a serving server —
// the same partition the cohort oracle aggregates over.
type itemGroup struct {
	server int
	reqs   []int // indices into LatencyState.reqs / .cur
}

// LatencyState incrementally tracks, for a fixed allocation profile and
// a growing delivery profile, every request's current best delivery
// latency (Eq. 8) and their sum. It is the per-request reference oracle
// behind the greedy Phase 2 rule (Eq. 17): the marginal latency
// reduction of a candidate replica is computed by walking every request
// for that item, and committing a replica updates the state in the same
// time.
//
// The walk visits requests grouped by serving server, ascending, and
// folds each group's current latencies before subtracting count·t —
// exactly the operations (and order) the cohort oracle's prefix sums
// perform. Within a group every request carries the same current value
// (they share one latency trajectory), so the two evaluators produce
// bit-identical gains: a last-ulp divergence would otherwise flip
// argmax decisions between the optimized and reference paths whenever
// two candidates tie mathematically.
//
// Requests start at their cloud latency (σ_{cloud,k}=1 per Eq. 7), so
// the "latency constraint" — an edge replica is only ever used when it
// beats the cloud — holds by construction of the min.
type LatencyState struct {
	in    *Instance
	alloc Allocation
	reqs  []request
	// groups[k] partitions item k's allocated requests by serving
	// server, ascending. Unallocated users' requests are absent (their
	// Eq. 8 edge option is +Inf, so they never improve); they still
	// count in reqs and total.
	groups [][]itemGroup
	cur    []units.Seconds
	total  float64
}

// NewLatencyState builds the state for the given allocation with an
// empty delivery profile.
func NewLatencyState(in *Instance, alloc Allocation) *LatencyState {
	ls := &LatencyState{
		in:     in,
		alloc:  alloc.Clone(),
		groups: make([][]itemGroup, in.K()),
	}
	byServer := make([][][]int, in.K()) // item → server → request indices
	for j, items := range in.Wl.Requests {
		a := ls.alloc[j]
		for _, k := range items {
			idx := len(ls.reqs)
			ls.reqs = append(ls.reqs, request{j: j, k: k})
			if !a.Allocated() {
				continue
			}
			if byServer[k] == nil {
				byServer[k] = make([][]int, in.N())
			}
			byServer[k][a.Server] = append(byServer[k][a.Server], idx)
		}
	}
	for k := range byServer {
		for a, idxs := range byServer[k] {
			if len(idxs) > 0 {
				ls.groups[k] = append(ls.groups[k], itemGroup{server: a, reqs: idxs})
			}
		}
	}
	ls.cur = make([]units.Seconds, len(ls.reqs))
	for idx, r := range ls.reqs {
		ls.cur[idx] = in.CloudLatency(r.k)
		ls.total += float64(ls.cur[idx])
	}
	return ls
}

// Requests reports the total request count (the denominator of Eq. 9).
func (ls *LatencyState) Requests() int { return len(ls.reqs) }

// Total reports Σ_j Σ_k ζ_{j,k}·L_{j,k}, the numerator of Eq. 9.
func (ls *LatencyState) Total() units.Seconds { return units.Seconds(ls.total) }

// Avg reports Eq. (9), the average data delivery latency (0 when there
// are no requests).
func (ls *LatencyState) Avg() units.Seconds {
	if len(ls.reqs) == 0 {
		return 0
	}
	return units.Seconds(ls.total / float64(len(ls.reqs)))
}

// GainOf reports the total latency reduction (over all requests) of
// adding replica σ_{i,k}=1 to the current delivery profile — the
// numerator of Eq. 17. Per serving-server group: fold the improved
// requests' current latencies, then subtract count·t (see the type
// comment for why the grouping matters).
func (ls *LatencyState) GainOf(i, k int) units.Seconds {
	var gain float64
	for _, g := range ls.groups[k] {
		t := ls.in.EdgeLatency(k, i, g.server)
		var sum float64
		n := 0
		for _, idx := range g.reqs {
			if ls.cur[idx] > t {
				sum += float64(ls.cur[idx])
				n++
			}
		}
		if n > 0 {
			gain += sum - float64(n)*float64(t)
		}
	}
	return units.Seconds(gain)
}

// Commit applies replica σ_{i,k}=1, updating every affected request.
// It returns the realized total latency reduction (equal to a GainOf
// call made immediately before).
func (ls *LatencyState) Commit(i, k int) units.Seconds {
	var gain float64
	for _, g := range ls.groups[k] {
		t := ls.in.EdgeLatency(k, i, g.server)
		var sum float64
		n := 0
		for _, idx := range g.reqs {
			if ls.cur[idx] > t {
				sum += float64(ls.cur[idx])
				n++
				ls.cur[idx] = t
			}
		}
		if n > 0 {
			gain += sum - float64(n)*float64(t)
		}
	}
	ls.total -= gain
	return units.Seconds(gain)
}

// RequestLatency evaluates Eq. (8) from scratch for user j and item k
// under the given profiles with Collaborative delivery: the minimum over
// edge servers holding the item and the cloud.
func (in *Instance) RequestLatency(alloc Allocation, d *Delivery, j, k int) units.Seconds {
	return in.RequestLatencyMode(alloc, d, j, k, Collaborative)
}

// RequestLatencyMode evaluates the delivery latency of request (j,k)
// under the given delivery mode (see DeliveryMode). In every mode the
// cloud remains the fallback, so the Eq. 8 latency constraint (never
// worse than cloud) holds.
func (in *Instance) RequestLatencyMode(alloc Allocation, d *Delivery, j, k int, mode DeliveryMode) units.Seconds {
	best := in.CloudLatency(k)
	a := alloc[j]
	if !a.Allocated() {
		return best
	}
	switch mode {
	case Collaborative:
		for o := 0; o < in.N(); o++ {
			if d.Placed(o, k) {
				if l := in.EdgeLatency(k, o, a.Server); l < best {
					best = l
				}
			}
		}
	case CoverageLocal:
		for _, o := range in.Top.Coverage[j] {
			if d.Placed(o, k) {
				return 0 // direct over-the-air delivery from a covering holder
			}
		}
	case ServerLocal:
		if d.Placed(a.Server, k) {
			return 0
		}
	default:
		panic(fmt.Sprintf("model: unknown delivery mode %d", int(mode)))
	}
	return best
}

// AvgLatency evaluates Eq. (9) from scratch with Collaborative delivery.
func (in *Instance) AvgLatency(alloc Allocation, d *Delivery) units.Seconds {
	return in.AvgLatencyMode(alloc, d, Collaborative)
}

// AvgLatencyMode evaluates Eq. (9) under the given delivery mode.
func (in *Instance) AvgLatencyMode(alloc Allocation, d *Delivery, mode DeliveryMode) units.Seconds {
	total := 0.0
	count := 0
	for j, items := range in.Wl.Requests {
		for _, k := range items {
			total += float64(in.RequestLatencyMode(alloc, d, j, k, mode))
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return units.Seconds(total / float64(count))
}

// Evaluate reports both objectives for a complete strategy under its
// own delivery mode.
func (in *Instance) Evaluate(s Strategy) (units.Rate, units.Seconds) {
	return in.AvgRate(s.Alloc), in.AvgLatencyMode(s.Alloc, s.Delivery, s.Mode)
}

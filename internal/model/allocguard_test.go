//go:build !race

package model

import (
	"testing"

	"idde/internal/rng"
)

// Steady-state zero-allocation guards for the two hot paths the memory
// baseline tracks (BENCH_mem.json): Ledger benefit evaluation with warm
// aggregate rows, and DeliveryOracle.GainOf for both cohort oracles.
// The race detector instruments allocations, so the file is excluded
// from -race runs; the plain tier-1 `go test ./...` always runs it, and
// the CI bench-smoke re-checks the same paths through iddebench
// -memjson.

// guardFixture builds a warm, fully-allocated ledger plus probe batches.
func guardFixture(t *testing.T) (*Ledger, Allocation, []int, []Alloc) {
	t.Helper()
	in := genInstance(t, 12, 90, 5, 3)
	s := rng.New(19)
	l := NewLedger(in, NewAllocation(in.M()))
	fillRandom(in, l, s)
	l.WarmAggregates()
	var js []int
	var as []Alloc
	for len(js) < 64 {
		j := s.IntN(in.M())
		vs := in.Top.Coverage[j]
		if len(vs) == 0 {
			continue
		}
		i := vs[s.IntN(len(vs))]
		js = append(js, j)
		as = append(as, Alloc{Server: i, Channel: s.IntN(in.Top.Servers[i].Channels)})
	}
	return l, l.Alloc(), js, as
}

func TestBenefitSteadyStateZeroAllocs(t *testing.T) {
	l, _, js, as := guardFixture(t)
	var bi int
	if avg := testing.AllocsPerRun(200, func() {
		_ = l.Benefit(js[bi], as[bi])
		bi = (bi + 1) % len(js)
	}); avg != 0 {
		t.Fatalf("Ledger.Benefit allocates %.2f allocs/op in steady state, want 0", avg)
	}
}

// TestBenefitBudgetedResidentHitZeroAllocs pins the budgeted ledger's
// hit path: probing the same resident receiver repeatedly must not
// allocate (only faults that build rows may).
func TestBenefitBudgetedResidentHitZeroAllocs(t *testing.T) {
	l, _, js, as := guardFixture(t)
	l.SetAggRowBudget(4)
	_ = l.Benefit(js[0], as[0]) // fault the row in
	if avg := testing.AllocsPerRun(200, func() {
		_ = l.Benefit(js[0], as[0])
	}); avg != 0 {
		t.Fatalf("budgeted Ledger.Benefit allocates %.2f allocs/op on resident hits, want 0", avg)
	}
}

// TestGainRowZeroAllocs pins the sparse gain accessors at zero
// allocations per read: obtaining a row, binary-searched in-support
// reads, and the out-of-support recompute fallback must all stay off
// the heap — GainRow is a value and the fallback is pure arithmetic.
func TestGainRowZeroAllocs(t *testing.T) {
	in := genInstance(t, 12, 90, 5, 3)
	sp, err := NewSparse(in.Top, in.Wl, in.Radio, in.Top.MaxRadius())
	if err != nil {
		t.Fatal(err)
	}
	cols, _ := sp.GainRow(0).Support()
	if len(cols) == 0 || len(cols) == sp.M() {
		t.Fatalf("tight-cutoff row 0 has trivial support %d of %d", len(cols), sp.M())
	}
	inSupport := int(cols[len(cols)/2])
	outSupport := -1
	seen := make([]bool, sp.M())
	for _, c := range cols {
		seen[c] = true
	}
	for j := range seen {
		if !seen[j] {
			outSupport = j
			break
		}
	}
	if outSupport < 0 {
		t.Fatal("no out-of-support column to probe")
	}
	if avg := testing.AllocsPerRun(200, func() {
		r := sp.GainRow(0)
		_ = r.At(inSupport)
		_ = r.At(outSupport)
		_ = sp.GainAt(1%sp.N(), outSupport)
	}); avg != 0 {
		t.Fatalf("sparse gain reads allocate %.2f allocs/op, want 0", avg)
	}
}

func TestCohortGainOfSteadyStateZeroAllocs(t *testing.T) {
	l, alloc, _, _ := guardFixture(t)
	in := l.in
	s := rng.New(23)
	for _, build := range []func() DeliveryOracle{
		func() DeliveryOracle { return NewCohortLatencyState(in, alloc) },
		func() DeliveryOracle { return NewBatchCohortLatencyState(in, alloc) },
	} {
		ls := build()
		// Commit a couple of replicas so the batch oracle's deferred
		// collapses are in play, then measure the evaluation loop.
		ls.Commit(s.IntN(in.N()), s.IntN(in.K()))
		ls.Commit(s.IntN(in.N()), s.IntN(in.K()))
		var gi int
		is := make([]int, 64)
		ks := make([]int, 64)
		for x := range is {
			is[x], ks[x] = s.IntN(in.N()), s.IntN(in.K())
		}
		if avg := testing.AllocsPerRun(200, func() {
			_ = ls.GainOf(is[gi], ks[gi])
			gi = (gi + 1) % len(is)
		}); avg != 0 {
			t.Fatalf("%T.GainOf allocates %.2f allocs/op in steady state, want 0", ls, avg)
		}
	}
}

package model

// spanArena carves fixed-length spans for the ledger's aggregate rows
// out of geometrically grown backing slabs, recycling released spans
// through a best-fit free list. Rows stop being individual GC objects:
// the collector sees a handful of slabs instead of thousands of
// short-lived slices, and a row eviction/rebuild cycle under a resident
// budget reuses the same backing memory instead of churning the heap.
//
// Spans are handed out with len == cap (three-index sliced), so a
// holder cannot append past its span into a neighbour. Contents are NOT
// zeroed on alloc — every ledger row build overwrites its span in full.
// The arena is not safe for concurrent use; the ledger serializes all
// calls under its aggMu.
type spanArena[T any] struct {
	// cur is the unused tail of the newest slab.
	cur []T
	// free holds released (or retired-tail) spans, len == cap each.
	free [][]T
	// nextSize is the element count of the next slab to allocate.
	nextSize int
	// total counts elements across all slabs ever allocated.
	total int
	// inUse counts elements currently handed out to live spans.
	inUse int
}

const (
	// arenaMinSlab/arenaMaxSlab bound the geometric slab growth.
	arenaMinSlab = 1 << 10
	arenaMaxSlab = 1 << 16
	// arenaMinRecycle is the smallest remainder worth keeping on the
	// free list; smaller shards stay as slab fragmentation (still
	// counted in total, never handed out again).
	arenaMinRecycle = 32
)

// alloc returns a span of exactly n elements with unspecified contents.
func (a *spanArena[T]) alloc(n int) []T {
	if n <= 0 {
		return nil
	}
	a.inUse += n
	// Best fit over the free list (first-fit splits big spans while an
	// exact match sits further down the list, fragmenting a repeated
	// working set); the remainder of an oversized span goes back on the
	// list so deep eviction churn converges to exact reuse instead of
	// accumulating dead shards.
	best := -1
	for idx, s := range a.free {
		if len(s) < n {
			continue
		}
		if best < 0 || len(s) < len(a.free[best]) {
			best = idx
			if len(s) == n {
				break
			}
		}
	}
	if best >= 0 {
		s := a.free[best]
		rem := s[n:]
		if len(rem) >= arenaMinRecycle {
			a.free[best] = rem
		} else {
			last := len(a.free) - 1
			a.free[best] = a.free[last]
			a.free[last] = nil
			a.free = a.free[:last]
		}
		return s[:n:n]
	}
	if len(a.cur) < n {
		if len(a.cur) >= arenaMinRecycle {
			a.free = append(a.free, a.cur)
		}
		size := a.nextSize
		if size < arenaMinSlab {
			size = arenaMinSlab
		}
		if size < n {
			size = n
		}
		if next := size * 2; next <= arenaMaxSlab {
			a.nextSize = next
		} else {
			a.nextSize = arenaMaxSlab
		}
		a.cur = make([]T, size)
		a.total += size
	}
	s := a.cur[:n:n]
	a.cur = a.cur[n:]
	return s
}

// release returns a span obtained from alloc to the free list.
func (a *spanArena[T]) release(s []T) {
	if len(s) == 0 {
		return
	}
	a.inUse -= len(s)
	if len(s) >= arenaMinRecycle {
		a.free = append(a.free, s[:len(s):len(s)])
	}
}

package cloudlat

import (
	"testing"

	"idde/internal/rng"
)

func TestCollectShape(t *testing.T) {
	series := Collect(DefaultTargets(), rng.New(1))
	if len(series) != 4 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		if len(s.Samples) != HoursPerWeek {
			t.Errorf("%s: %d samples", s.Target.Name, len(s.Samples))
		}
		if s.Min > s.Mean || s.Mean > s.Max {
			t.Errorf("%s: min/mean/max out of order: %v %v %v", s.Target.Name, s.Min, s.Mean, s.Max)
		}
		if s.Min <= 0 {
			t.Errorf("%s: non-positive RTT", s.Target.Name)
		}
	}
}

func TestFig1Magnitudes(t *testing.T) {
	series := Collect(DefaultTargets(), rng.New(2))
	byName := map[string]Series{}
	for _, s := range series {
		byName[s.Target.Name] = s
	}
	edge := byName["Edge"].Mean.Millis()
	sing := byName["Singapore"].Mean.Millis()
	lond := byName["London"].Mean.Millis()
	fran := byName["Frankfurt"].Mean.Millis()
	// Figure 1 shape: edge single-digit ms; Singapore ≈100ms; Europe
	// ≈250ms; strict ordering edge < Singapore < London ≤ Frankfurt.
	if edge >= 20 {
		t.Errorf("edge mean %vms too high", edge)
	}
	if !(edge < sing && sing < lond && lond <= fran+5) {
		t.Errorf("ordering violated: %v < %v < %v <= %v", edge, sing, lond, fran)
	}
	if sing < 60 || sing > 150 {
		t.Errorf("Singapore mean %vms outside Fig.1 band", sing)
	}
	if lond < 180 || lond > 300 || fran < 180 || fran > 320 {
		t.Errorf("Europe means %v/%vms outside Fig.1 band", lond, fran)
	}
	// The headline: edge is an order of magnitude below any cloud.
	if sing/edge < 5 {
		t.Errorf("edge advantage only %.1f× over Singapore", sing/edge)
	}
}

func TestKindsAndStrings(t *testing.T) {
	ts := DefaultTargets()
	if ts[0].Kind != EdgeToEdge {
		t.Error("first target should be edge-to-edge")
	}
	for _, tg := range ts[1:] {
		if tg.Kind != EdgeToCloud {
			t.Errorf("%s should be edge-to-cloud", tg.Name)
		}
	}
	if EdgeToEdge.String() != "Edge-to-Edge" || EdgeToCloud.String() != "Edge-to-Cloud" {
		t.Error("Kind String wrong")
	}
}

func TestCollectDeterministic(t *testing.T) {
	a := Collect(DefaultTargets(), rng.New(9))
	b := Collect(DefaultTargets(), rng.New(9))
	for i := range a {
		if a[i].Mean != b[i].Mean {
			t.Fatalf("series %d differs across identical seeds", i)
		}
	}
	c := Collect(DefaultTargets(), rng.New(10))
	if a[0].Mean == c[0].Mean {
		t.Error("different seeds produced identical samples")
	}
}

func TestDiurnalVariation(t *testing.T) {
	series := Collect(DefaultTargets(), rng.New(3))
	s := series[1] // Singapore
	if s.Max-s.Min <= 0 {
		t.Error("no variation over the week")
	}
}

// Package cloudlat reproduces the measurement behind the paper's
// Figure 1: end-to-end network latency from a mobile device to (a) a
// nearby edge server and (b) remote cloud data centers (Amazon
// Singapore, London and Frankfurt), "collected hourly and averaged over
// a week in March 2022".
//
// The original numbers come from live probes out of Australia; since
// this module is offline, the package implements a stochastic RTT model
// with region-dependent propagation bases and diurnal congestion jitter,
// sampled on the same hourly-for-a-week schedule (see DESIGN.md §4).
// The magnitudes follow the figure: edge-to-edge a few ms, Singapore
// ≈90–120 ms, Europe ≈230–280 ms.
package cloudlat

import (
	"math"

	"idde/internal/rng"
	"idde/internal/units"
)

// Kind distinguishes the two bar groups of Figure 1.
type Kind int

const (
	EdgeToEdge Kind = iota
	EdgeToCloud
)

func (k Kind) String() string {
	if k == EdgeToEdge {
		return "Edge-to-Edge"
	}
	return "Edge-to-Cloud"
}

// Target is one latency test setting (x-axis entry of Figure 1).
type Target struct {
	Name string
	Kind Kind
	// Base is the propagation floor of the route.
	Base units.Seconds
	// Congestion is the mean amplitude of load-dependent delay.
	Congestion units.Seconds
}

// DefaultTargets returns the four settings of Figure 1, with bases
// chosen for probes originating in southeastern Australia.
func DefaultTargets() []Target {
	return []Target{
		{Name: "Edge", Kind: EdgeToEdge, Base: 0.004, Congestion: 0.004},
		{Name: "Singapore", Kind: EdgeToCloud, Base: 0.092, Congestion: 0.018},
		{Name: "London", Kind: EdgeToCloud, Base: 0.238, Congestion: 0.030},
		{Name: "Frankfurt", Kind: EdgeToCloud, Base: 0.251, Congestion: 0.032},
	}
}

// Series is the aggregated measurement for one target.
type Series struct {
	Target Target
	// Samples holds the 24×7 hourly RTTs.
	Samples []units.Seconds
	Mean    units.Seconds
	Min     units.Seconds
	Max     units.Seconds
}

// HoursPerWeek is the Fig. 1 sampling schedule: hourly over one week.
const HoursPerWeek = 24 * 7

// Collect simulates the week of hourly probes for every target.
func Collect(targets []Target, s *rng.Stream) []Series {
	out := make([]Series, len(targets))
	for i, tg := range targets {
		st := s.SplitN("target", i)
		ser := Series{Target: tg, Samples: make([]units.Seconds, HoursPerWeek)}
		ser.Min = units.Seconds(math.Inf(1))
		var sum float64
		for h := 0; h < HoursPerWeek; h++ {
			rtt := sampleRTT(tg, h, st)
			ser.Samples[h] = rtt
			sum += float64(rtt)
			if rtt < ser.Min {
				ser.Min = rtt
			}
			if rtt > ser.Max {
				ser.Max = rtt
			}
		}
		ser.Mean = units.Seconds(sum / HoursPerWeek)
		out[i] = ser
	}
	return out
}

// sampleRTT draws one hourly probe: base propagation plus a diurnal
// congestion term (peaking in the evening) plus log-normal-ish jitter.
func sampleRTT(tg Target, hour int, s *rng.Stream) units.Seconds {
	hod := hour % 24
	// Diurnal load: sinusoid peaking at 20:00 local, scaled to [0,1].
	load := 0.5 + 0.5*math.Sin(2*math.Pi*float64(hod-14)/24)
	congestion := float64(tg.Congestion) * load * (0.5 + s.Exp(0.5))
	jitter := float64(tg.Base) * 0.02 * s.Normal(0, 1)
	rtt := float64(tg.Base) + congestion + jitter
	if rtt < float64(tg.Base)*0.9 {
		rtt = float64(tg.Base) * 0.9
	}
	return units.Seconds(rtt)
}

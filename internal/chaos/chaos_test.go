package chaos

import (
	"math"
	"strings"
	"testing"

	"idde/internal/core"
	"idde/internal/des"
	"idde/internal/model"
	"idde/internal/radio"
	"idde/internal/rng"
	"idde/internal/topology"
	"idde/internal/units"
	"idde/internal/workload"
)

func genInstance(t *testing.T, n, m, k int, seed uint64) *model.Instance {
	t.Helper()
	s := rng.New(seed)
	top, err := topology.Generate(topology.DefaultGen(n, m, 1.5), s.Split("top"))
	if err != nil {
		t.Fatalf("topology: %v", err)
	}
	wl, err := workload.Generate(workload.DefaultGen(k), n, m, s.Split("wl"))
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	in, err := model.New(top, wl, radio.Default())
	if err != nil {
		t.Fatalf("model: %v", err)
	}
	return in
}

func TestCampaignValidate(t *testing.T) {
	in := genInstance(t, 8, 40, 3, 1)
	bad := []Campaign{
		{Events: []Event{{At: -1, Kind: ServerOutage, Servers: []int{0}}}},
		{Events: []Event{{Kind: ServerOutage}}},
		{Events: []Event{{Kind: ServerOutage, Servers: []int{99}}}},
		{Events: []Event{{Kind: LinkCut, Link: [2]int{0, 0}}}},
		{Events: []Event{{Kind: CloudBrownout, Factor: 1.5}}},
		{Events: []Event{{Kind: Kind(42)}}},
	}
	for i, c := range bad {
		if err := c.Validate(in); err == nil {
			t.Errorf("bad campaign %d accepted", i)
		}
	}
	ok := Campaign{Events: []Event{
		{At: 0, Kind: ServerOutage, Servers: []int{0, 1}, Duration: 10},
		{At: 5, Kind: CloudBrownout, Factor: 0.5},
	}}
	if err := ok.Validate(in); err != nil {
		t.Errorf("good campaign rejected: %v", err)
	}
}

func TestEpochSlicing(t *testing.T) {
	c := Campaign{Events: []Event{
		{At: 10, Duration: 20, Kind: ServerOutage, Servers: []int{0}},
		{At: 15, Kind: CloudBrownout, Factor: 0.5},
	}}
	got := c.epochs()
	want := []units.Seconds{0, 10, 15, 30}
	if len(got) != len(want) {
		t.Fatalf("epochs %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("epochs %v, want %v", got, want)
		}
	}
	d := c.degradationAt(12)
	if len(d.FailedServers) != 1 || d.CloudFactor != 0 {
		t.Errorf("degradation at 12: %+v", d)
	}
	d = c.degradationAt(20)
	if len(d.FailedServers) != 1 || d.CloudFactor != 0.5 {
		t.Errorf("degradation at 20: %+v", d)
	}
	d = c.degradationAt(30)
	if len(d.FailedServers) != 0 || d.CloudFactor != 0.5 {
		t.Errorf("degradation at 30 (after recovery): %+v", d)
	}
}

func TestRunTransientOutageRecovers(t *testing.T) {
	in := genInstance(t, 10, 60, 4, 3)
	st := core.Solve(in, core.DefaultOptions()).Strategy
	gen := Correlated(in, GenConfig{
		ClusterSize:    3,
		OutageAt:       0,
		OutageDuration: units.Seconds(60),
		Faults:         des.Faults{LossProb: 0.2},
	}, rng.New(5))
	rep, err := Run(in, st, gen, Config{Seed: 9, Spread: units.Seconds(5)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Epochs) != 2 {
		t.Fatalf("expected outage + recovery epochs, got %d", len(rep.Epochs))
	}
	out, rec := rep.Epochs[0], rep.Epochs[1]
	if out.DownServers != 3 {
		t.Errorf("outage epoch has %d down servers", out.DownServers)
	}
	if rec.DownServers != 0 {
		t.Errorf("recovery epoch still has %d down servers", rec.DownServers)
	}
	if out.End != 60 || rec.End != -1 {
		t.Errorf("epoch boundaries wrong: %v, %v", out.End, rec.End)
	}
	// Recovery must re-admit: stranded fraction does not increase.
	if rec.StrandedFrac > out.StrandedFrac+1e-9 {
		t.Errorf("recovery stranded %v worse than outage %v", rec.StrandedFrac, out.StrandedFrac)
	}
	// Degradation metrics are finite and sane.
	for i, e := range rep.Epochs {
		if math.IsNaN(e.LatencyInflation) || math.IsInf(e.LatencyInflation, 0) {
			t.Fatalf("epoch %d inflation degenerate: %v", i, e.LatencyInflation)
		}
		if e.StrandedFrac < 0 || e.StrandedFrac > 1 {
			t.Fatalf("epoch %d stranded fraction %v outside [0,1]", i, e.StrandedFrac)
		}
	}
	if out.Retries == 0 {
		t.Error("20% loss outage epoch recorded no retries")
	}
}

func TestRunIdenticalSeedsIdenticalReports(t *testing.T) {
	in := genInstance(t, 10, 60, 4, 3)
	st := core.Solve(in, core.DefaultOptions()).Strategy
	gen := func() Campaign {
		return Correlated(in, GenConfig{
			ClusterSize:    2,
			OutageDuration: units.Seconds(30),
			LinkCuts:       2,
			BrownoutFactor: 0.5,
			Faults:         des.Faults{LossProb: 0.25, StallProb: 0.05, StallTime: units.Seconds(0.01)},
		}, rng.New(7))
	}
	a, err := Run(in, st, gen(), Config{Seed: 11, Spread: units.Seconds(2)})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(in, st, gen(), Config{Seed: 11, Spread: units.Seconds(2)})
	if err != nil {
		t.Fatal(err)
	}
	aj, err := a.JSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if aj != bj {
		t.Error("identical seeds produced different reports")
	}
}

func TestMonteCarloSweep(t *testing.T) {
	in := genInstance(t, 12, 70, 4, 5)
	st := core.Solve(in, core.DefaultOptions()).Strategy
	gen := func(i int, s *rng.Stream) Campaign {
		return Correlated(in, GenConfig{
			ClusterSize:    3,
			OutageDuration: units.Seconds(45),
			Faults:         des.Faults{LossProb: 0.2},
		}, s)
	}
	sw, err := MonteCarlo(in, st, gen, SweepConfig{
		Config:    Config{Seed: 2022, Spread: units.Seconds(2)},
		Campaigns: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Reports) != 6 {
		t.Fatalf("got %d campaign reports", len(sw.Reports))
	}
	if sw.Stranded.N != 6 {
		t.Errorf("stranded summary over %d campaigns", sw.Stranded.N)
	}
	// Different campaigns hit different epicenters: names must vary
	// across a 6-draw sweep with 12 servers (overwhelmingly likely).
	names := map[string]bool{}
	for _, r := range sw.Reports {
		names[r.Name] = true
	}
	if len(names) < 2 {
		t.Error("every campaign drew the same epicenter — generator not seeded per campaign?")
	}
	if sw.LatencyInflation.Mean < 1 {
		t.Errorf("mean worst latency inflation %v < 1 under 20%% loss", sw.LatencyInflation.Mean)
	}
	// Reproducibility of the whole sweep.
	sw2, err := MonteCarlo(in, st, gen, SweepConfig{
		Config:    Config{Seed: 2022, Spread: units.Seconds(2)},
		Campaigns: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := sw.JSON()
	j2, _ := sw2.JSON()
	if j1 != j2 {
		t.Error("sweep not reproducible under identical seed")
	}
	// Rendering is non-empty and mentions the metrics.
	md := sw.MarkdownSummary()
	if len(md) == 0 || !strings.Contains(md, "stranded users") || !strings.Contains(md, "latency inflation") {
		t.Errorf("summary markdown incomplete:\n%s", md)
	}
	if tbl := sw.Reports[0].MarkdownTable(); !strings.Contains(tbl, "Campaign") {
		t.Errorf("campaign markdown incomplete:\n%s", tbl)
	}
}

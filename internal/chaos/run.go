package chaos

import (
	"context"
	"fmt"

	"idde/internal/des"
	"idde/internal/model"
	"idde/internal/obs"
	"idde/internal/repair"
	"idde/internal/rng"
	"idde/internal/stats"
	"idde/internal/units"
)

// Config controls one campaign replay.
type Config struct {
	// Seed drives the DES arrival order and every fault draw.
	Seed uint64
	// Spread is the request-arrival window per epoch (0 = synchronized
	// burst, the worst case for contention).
	Spread units.Seconds
	// Waves bounds the repair re-equilibration (default 2, as in
	// repair.Options).
	Waves int
	// Obs receives the campaign's telemetry: a span per epoch, an
	// instant event per EpochReport, counters cross-wired from the
	// campaign totals, and — threaded into the DES — the transfer
	// counters and per-request latency histogram. nil disables all of
	// it; reports are identical either way.
	Obs *obs.Scope
}

// EpochReport is the measured state of the system during one span of
// constant fault state.
type EpochReport struct {
	// Start is the epoch's opening time; End is its close, or -1 for
	// the final epoch (open-ended).
	Start units.Seconds `json:"start"`
	End   units.Seconds `json:"end"`
	// DownServers and CutLinks size the active degradation;
	// CloudFactor is 1 when the cloud is healthy.
	DownServers int     `json:"downServers"`
	CutLinks    int     `json:"cutLinks"`
	CloudFactor float64 `json:"cloudFactor"`

	// StrandedFrac is the fraction of the baseline strategy's served
	// users that are unallocated (all-cloud service) this epoch.
	StrandedFrac float64 `json:"strandedFrac"`
	// RateMBps is the analytic R_avg of the repaired strategy on the
	// degraded instance; RateDrop is 1 − RateMBps/healthy.
	RateMBps float64 `json:"rateMBps"`
	RateDrop float64 `json:"rateDrop"`
	// LatencyMs is the DES-measured average delivery latency under the
	// campaign's fault model; LatencyInflation is its ratio to the
	// healthy DES baseline.
	LatencyMs        float64 `json:"latencyMs"`
	LatencyInflation float64 `json:"latencyInflation"`

	// Transfer-level degradation counters from the DES.
	Retries        int `json:"retries"`
	Failovers      int `json:"failovers"`
	CloudFallbacks int `json:"cloudFallbacks"`
	Stalls         int `json:"stalls"`

	// Repair accounting entering this epoch.
	Moves            int `json:"moves"`
	LostReplicas     int `json:"lostReplicas"`
	ReplacedReplicas int `json:"replacedReplicas"`
}

// CampaignReport is one campaign's full accounting.
type CampaignReport struct {
	Name string `json:"name"`
	Seed uint64 `json:"seed"`
	// Healthy baseline: analytic rate and DES-measured latency of the
	// unrepaired strategy on the healthy instance, reliable transfers.
	HealthyRateMBps  float64 `json:"healthyRateMBps"`
	HealthyLatencyMs float64 `json:"healthyLatencyMs"`

	Epochs []EpochReport `json:"epochs"`

	// Worst-epoch and whole-campaign aggregates.
	WorstStrandedFrac     float64 `json:"worstStrandedFrac"`
	WorstLatencyInflation float64 `json:"worstLatencyInflation"`
	WorstRateDrop         float64 `json:"worstRateDrop"`
	TotalRetries          int     `json:"totalRetries"`
	TotalFailovers        int     `json:"totalFailovers"`
	TotalCloudFallbacks   int     `json:"totalCloudFallbacks"`
	TotalMoves            int     `json:"totalMoves"`
	TotalLostReplicas     int     `json:"totalLostReplicas"`
	TotalReplaced         int     `json:"totalReplaced"`
}

// safeRatio reports a/b, with the conventions a ratio needs to stay
// finite and JSON-encodable: 1 when both are ~0, capped when only the
// denominator is.
func safeRatio(a, b float64) float64 {
	const eps = 1e-12
	if b > eps {
		return a / b
	}
	if a <= eps {
		return 1
	}
	return 1e6
}

// Run replays one campaign against the strategy. The instance and
// strategy are the healthy baseline; each epoch degrades the pristine
// instance to that epoch's cumulative fault state, repairs the previous
// epoch's strategy onto it (so failures compound and recoveries
// re-admit), and measures the workload on the DES under the campaign's
// fault model.
func Run(in *model.Instance, st model.Strategy, c Campaign, cfg Config) (*CampaignReport, error) {
	return RunCtx(context.Background(), in, st, c, cfg)
}

// RunCtx is Run under a context. Cancellation is honored at epoch
// boundaries: the report returned alongside ctx.Err() covers every
// epoch that completed (its totals and worst-epoch aggregates are
// consistent with the epochs it holds), and the campaign spawns no
// goroutines, so nothing is left running.
func RunCtx(ctx context.Context, in *model.Instance, st model.Strategy, c Campaign, cfg Config) (*CampaignReport, error) {
	if err := c.Validate(in); err != nil {
		return nil, err
	}
	if err := in.Check(st); err != nil {
		return nil, fmt.Errorf("chaos: baseline strategy invalid: %w", err)
	}
	root := rng.New(cfg.Seed)
	rep := &CampaignReport{Name: c.Name, Seed: cfg.Seed}

	sc := cfg.Obs
	healthyRate, _ := in.Evaluate(st)
	rep.HealthyRateMBps = float64(healthyRate)
	healthySim := des.SimulateStrategyOpt(in, st, des.SimOptions{Spread: cfg.Spread, Obs: sc}, root.Split("healthy"))
	rep.HealthyLatencyMs = healthySim.Avg.Millis()
	baseServed := st.Alloc.AllocatedCount()

	prevIn, prevSt := in, st
	for ei, t := range c.epochs() {
		if err := ctx.Err(); err != nil {
			publishCampaign(sc, rep)
			return rep, err
		}
		if sc.Tracing() {
			sc.Begin("chaos", "epoch", map[string]any{"index": ei, "start_s": float64(t)})
		}
		d := c.degradationAt(t)
		deg, err := repair.Degrade(in, d)
		if err != nil {
			return nil, fmt.Errorf("chaos: epoch at %v: %w", t, err)
		}
		repaired, rrep, err := repair.RepairDegraded(prevIn, deg, prevSt, repair.Options{Waves: cfg.Waves})
		if err != nil {
			return nil, fmt.Errorf("chaos: repair at %v: %w", t, err)
		}

		var sim *des.Report
		epochStream := root.SplitN("epoch", ei)
		simOpt := des.SimOptions{Spread: cfg.Spread, Obs: sc}
		if c.Faults.Enabled() && (len(d.FailedServers) > 0 || len(d.CutLinks) > 0 || d.CloudFactor > 0) {
			f := c.Faults
			simOpt.Faults = &f
		}
		sim = des.SimulateStrategyOpt(deg, repaired, simOpt, epochStream)

		rate, _ := deg.Evaluate(repaired)
		stranded := 0.0
		if baseServed > 0 {
			stranded = 1 - float64(repaired.Alloc.AllocatedCount())/float64(baseServed)
			if stranded < 0 {
				stranded = 0
			}
		}
		cloudFactor := d.CloudFactor
		if cloudFactor == 0 {
			cloudFactor = 1
		}
		er := EpochReport{
			Start:            t,
			End:              -1,
			DownServers:      len(d.FailedServers),
			CutLinks:         len(d.CutLinks),
			CloudFactor:      cloudFactor,
			StrandedFrac:     stranded,
			RateMBps:         float64(rate),
			RateDrop:         1 - safeRatio(float64(rate), rep.HealthyRateMBps),
			LatencyMs:        sim.Avg.Millis(),
			LatencyInflation: safeRatio(sim.Avg.Millis(), rep.HealthyLatencyMs),
			Retries:          sim.Retries,
			Failovers:        sim.Failovers,
			CloudFallbacks:   sim.CloudFallbacks,
			Stalls:           sim.Stalls,
			Moves:            rrep.Moves,
			LostReplicas:     rrep.LostReplicas,
			ReplacedReplicas: rrep.ReplacedReplicas,
		}
		if len(rep.Epochs) > 0 {
			rep.Epochs[len(rep.Epochs)-1].End = t
		}
		rep.Epochs = append(rep.Epochs, er)

		if er.StrandedFrac > rep.WorstStrandedFrac {
			rep.WorstStrandedFrac = er.StrandedFrac
		}
		if er.LatencyInflation > rep.WorstLatencyInflation {
			rep.WorstLatencyInflation = er.LatencyInflation
		}
		if er.RateDrop > rep.WorstRateDrop {
			rep.WorstRateDrop = er.RateDrop
		}
		rep.TotalRetries += er.Retries
		rep.TotalFailovers += er.Failovers
		rep.TotalCloudFallbacks += er.CloudFallbacks
		rep.TotalMoves += er.Moves
		rep.TotalLostReplicas += er.LostReplicas
		rep.TotalReplaced += er.ReplacedReplicas

		if sc.Tracing() {
			sc.Instant("chaos", "epoch.report", map[string]any{
				"index":             ei,
				"start_s":           float64(er.Start),
				"down_servers":      er.DownServers,
				"cut_links":         er.CutLinks,
				"cloud_factor":      er.CloudFactor,
				"stranded_frac":     er.StrandedFrac,
				"rate_mbps":         er.RateMBps,
				"rate_drop":         er.RateDrop,
				"latency_ms":        er.LatencyMs,
				"latency_inflation": er.LatencyInflation,
				"moves":             er.Moves,
				"lost_replicas":     er.LostReplicas,
				"replaced_replicas": er.ReplacedReplicas,
			})
			sc.End("chaos", "epoch")
		}

		prevIn, prevSt = deg, repaired
	}
	publishCampaign(sc, rep)
	return rep, nil
}

// publishCampaign cross-wires the campaign totals into the scope's
// registry; the report fields and the counters are written from the
// same values, so they can never drift.
func publishCampaign(sc *obs.Scope, rep *CampaignReport) {
	if !sc.Enabled() {
		return
	}
	sc.Count("chaos_campaigns_total", 1)
	sc.Count("chaos_epochs_total", int64(len(rep.Epochs)))
	sc.Count("chaos_retries_total", int64(rep.TotalRetries))
	sc.Count("chaos_failovers_total", int64(rep.TotalFailovers))
	sc.Count("chaos_cloud_fallbacks_total", int64(rep.TotalCloudFallbacks))
	sc.Count("chaos_moves_total", int64(rep.TotalMoves))
	sc.Count("chaos_lost_replicas_total", int64(rep.TotalLostReplicas))
	sc.Count("chaos_replaced_replicas_total", int64(rep.TotalReplaced))
	sc.SetGauge("chaos_last_worst_stranded_frac", rep.WorstStrandedFrac)
	sc.SetGauge("chaos_last_worst_latency_inflation", rep.WorstLatencyInflation)
	sc.SetGauge("chaos_last_worst_rate_drop", rep.WorstRateDrop)
}

// Generator draws the i-th campaign of a sweep from its dedicated
// stream.
type Generator func(i int, s *rng.Stream) Campaign

// SweepConfig controls a Monte-Carlo sweep.
type SweepConfig struct {
	Config
	// Campaigns is the number of seeded campaigns to draw and replay
	// (default 20).
	Campaigns int
}

// SweepReport aggregates a Monte-Carlo sweep of campaigns.
type SweepReport struct {
	Campaigns int `json:"campaigns"`
	// Per-campaign worst-epoch metrics, aggregated.
	Stranded         stats.Summary `json:"stranded"`
	LatencyInflation stats.Summary `json:"latencyInflation"`
	RateDrop         stats.Summary `json:"rateDrop"`
	Retries          stats.Summary `json:"retries"`
	Failovers        stats.Summary `json:"failovers"`
	Moves            stats.Summary `json:"moves"`
	ReplicasLost     stats.Summary `json:"replicasLost"`
	ReplicasReplaced stats.Summary `json:"replicasReplaced"`
	// Reports holds every campaign, in sweep order.
	Reports []*CampaignReport `json:"reports"`
}

// MonteCarlo draws cfg.Campaigns campaigns from the generator and
// replays each against the strategy, aggregating worst-epoch
// degradation metrics. Campaign i draws from an independent labeled
// split of the sweep seed, so the whole sweep is reproducible and any
// single campaign can be re-run in isolation with its reported seed.
func MonteCarlo(in *model.Instance, st model.Strategy, gen Generator, cfg SweepConfig) (*SweepReport, error) {
	return MonteCarloCtx(context.Background(), in, st, gen, cfg)
}

// MonteCarloCtx is MonteCarlo under a context. Cancellation is honored
// between campaigns (a campaign mid-replay finishes its current epoch
// and stops): the sweep returned alongside ctx.Err() aggregates only
// fully replayed campaigns, with Campaigns set to that count — a
// truncated but statistically clean sweep.
func MonteCarloCtx(ctx context.Context, in *model.Instance, st model.Strategy, gen Generator, cfg SweepConfig) (*SweepReport, error) {
	if cfg.Campaigns <= 0 {
		cfg.Campaigns = 20
	}
	root := rng.New(cfg.Seed)
	sw := &SweepReport{Campaigns: cfg.Campaigns}
	var stranded, infl, drop, retries, failovers, moves, lost, replaced stats.Acc
	cancelled := false
	for i := 0; i < cfg.Campaigns; i++ {
		if ctx.Err() != nil {
			cancelled = true
			break
		}
		cs := root.SplitN("campaign", i)
		c := gen(i, cs)
		runCfg := cfg.Config
		runCfg.Seed = cs.Split("run").Seed()
		cr, err := RunCtx(ctx, in, st, c, runCfg)
		if err != nil {
			if ctx.Err() != nil {
				// The partial campaign is dropped: a sweep aggregates
				// whole campaigns or nothing.
				cancelled = true
				break
			}
			return nil, fmt.Errorf("chaos: campaign %d (%s): %w", i, c.Name, err)
		}
		sw.Reports = append(sw.Reports, cr)
		stranded.Add(cr.WorstStrandedFrac)
		infl.Add(cr.WorstLatencyInflation)
		drop.Add(cr.WorstRateDrop)
		retries.Add(float64(cr.TotalRetries))
		failovers.Add(float64(cr.TotalFailovers))
		moves.Add(float64(cr.TotalMoves))
		lost.Add(float64(cr.TotalLostReplicas))
		replaced.Add(float64(cr.TotalReplaced))
	}
	sw.Stranded = stranded.Summary()
	sw.LatencyInflation = infl.Summary()
	sw.RateDrop = drop.Summary()
	sw.Retries = retries.Summary()
	sw.Failovers = failovers.Summary()
	sw.Moves = moves.Summary()
	sw.ReplicasLost = lost.Summary()
	sw.ReplicasReplaced = replaced.Summary()
	if cancelled {
		sw.Campaigns = len(sw.Reports)
		return sw, ctx.Err()
	}
	return sw, nil
}

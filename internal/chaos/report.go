package chaos

import (
	"encoding/json"
	"fmt"
	"strings"
)

// MarkdownTable renders the campaign's per-epoch degradation as a
// GitHub-flavored table.
func (cr *CampaignReport) MarkdownTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Campaign %s (seed %d) — healthy: %.2f MBps, %.3f ms\n\n",
		cr.Name, cr.Seed, cr.HealthyRateMBps, cr.HealthyLatencyMs)
	b.WriteString("| epoch (s) | down | cuts | cloud | stranded | rate (MBps) | lat (ms) | inflation | retries | failovers | moves |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|---|---|---|\n")
	for _, e := range cr.Epochs {
		end := "∞"
		if e.End >= 0 {
			end = fmt.Sprintf("%g", float64(e.End))
		}
		fmt.Fprintf(&b, "| %g–%s | %d | %d | ×%.2f | %.1f%% | %.2f | %.3f | ×%.2f | %d | %d | %d |\n",
			float64(e.Start), end, e.DownServers, e.CutLinks, e.CloudFactor,
			100*e.StrandedFrac, e.RateMBps, e.LatencyMs, e.LatencyInflation,
			e.Retries, e.Failovers, e.Moves)
	}
	return b.String()
}

// JSON renders the campaign report as indented JSON.
func (cr *CampaignReport) JSON() (string, error) {
	out, err := json.MarshalIndent(cr, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out), nil
}

// MarkdownSummary renders the sweep's aggregate degradation metrics.
func (sw *SweepReport) MarkdownSummary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Chaos sweep — %d campaigns (worst-epoch metrics, mean ±95%% CI)\n\n", sw.Campaigns)
	b.WriteString("| metric | mean | ±CI | min | max |\n|---|---|---|---|---|\n")
	for _, r := range []struct {
		name              string
		mean, ci, mn, mx  float64
		percent, integral bool
	}{
		{"stranded users", sw.Stranded.Mean, sw.Stranded.CI95, sw.Stranded.Min, sw.Stranded.Max, true, false},
		{"latency inflation", sw.LatencyInflation.Mean, sw.LatencyInflation.CI95, sw.LatencyInflation.Min, sw.LatencyInflation.Max, false, false},
		{"rate drop", sw.RateDrop.Mean, sw.RateDrop.CI95, sw.RateDrop.Min, sw.RateDrop.Max, true, false},
		{"retries", sw.Retries.Mean, sw.Retries.CI95, sw.Retries.Min, sw.Retries.Max, false, true},
		{"failovers", sw.Failovers.Mean, sw.Failovers.CI95, sw.Failovers.Min, sw.Failovers.Max, false, true},
		{"repair moves", sw.Moves.Mean, sw.Moves.CI95, sw.Moves.Min, sw.Moves.Max, false, true},
		{"replicas lost", sw.ReplicasLost.Mean, sw.ReplicasLost.CI95, sw.ReplicasLost.Min, sw.ReplicasLost.Max, false, true},
		{"replicas re-placed", sw.ReplicasReplaced.Mean, sw.ReplicasReplaced.CI95, sw.ReplicasReplaced.Min, sw.ReplicasReplaced.Max, false, true},
	} {
		switch {
		case r.percent:
			fmt.Fprintf(&b, "| %s | %.1f%% | %.1f%% | %.1f%% | %.1f%% |\n",
				r.name, 100*r.mean, 100*r.ci, 100*r.mn, 100*r.mx)
		case r.integral:
			fmt.Fprintf(&b, "| %s | %.1f | %.1f | %.0f | %.0f |\n",
				r.name, r.mean, r.ci, r.mn, r.mx)
		default:
			fmt.Fprintf(&b, "| %s | ×%.3f | %.3f | ×%.3f | ×%.3f |\n",
				r.name, r.mean, r.ci, r.mn, r.mx)
		}
	}
	return b.String()
}

// JSON renders the sweep report as indented JSON.
func (sw *SweepReport) JSON() (string, error) {
	out, err := json.MarshalIndent(sw, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out), nil
}

package chaos

import (
	"fmt"
	"sort"

	"idde/internal/des"
	"idde/internal/geo"
	"idde/internal/model"
	"idde/internal/rng"
	"idde/internal/units"
)

// GenConfig parametrizes a seeded correlated-failure campaign: one
// spatially clustered multi-server outage, optional wired-link cuts
// among the survivors, and an optional cloud brownout, all striking
// together — the shape of a real power or backhaul incident.
type GenConfig struct {
	// ClusterSize is the number of servers in the correlated outage
	// (≥1; clamped to the server count).
	ClusterSize int
	// OutageAt is when the outage strikes (default 0: the campaign
	// opens degraded).
	OutageAt units.Seconds
	// OutageDuration is the transient-recovery time; 0 means the
	// servers stay down for the whole campaign.
	OutageDuration units.Seconds
	// LinkCuts severs this many extra wired links among the surviving
	// servers (clamped to what exists).
	LinkCuts int
	// BrownoutFactor scales the cloud-ingress rate during the
	// brownout; 0 or 1 disables it.
	BrownoutFactor float64
	// BrownoutDuration bounds the brownout; 0 with an active factor
	// means permanent.
	BrownoutDuration units.Seconds
	// Faults is the link-level unreliability in force during the
	// campaign.
	Faults des.Faults
}

// Correlated draws one campaign from the config: an epicenter is chosen
// uniformly among the instance's healthy servers and the ClusterSize
// servers nearest to it fail together, modelling the spatial
// correlation of real outages (a neighbourhood loses power, a conduit
// is cut). All draws come from the stream, so one seed yields one
// campaign, bit-for-bit.
func Correlated(in *model.Instance, cfg GenConfig, s *rng.Stream) Campaign {
	if cfg.ClusterSize < 1 {
		cfg.ClusterSize = 1
	}
	var alive []int
	for i, sv := range in.Top.Servers {
		if !sv.Failed {
			alive = append(alive, i)
		}
	}
	c := Campaign{Faults: cfg.Faults}
	if len(alive) == 0 {
		c.Name = "correlated-empty"
		return c
	}
	if cfg.ClusterSize > len(alive) {
		cfg.ClusterSize = len(alive)
	}
	epicenter := alive[s.IntN(len(alive))]
	center := in.Top.Servers[epicenter].Pos
	byDist := append([]int(nil), alive...)
	sort.Slice(byDist, func(a, b int) bool {
		da := geo.Dist2(center, in.Top.Servers[byDist[a]].Pos)
		db := geo.Dist2(center, in.Top.Servers[byDist[b]].Pos)
		if da != db {
			return da < db
		}
		return byDist[a] < byDist[b]
	})
	cluster := append([]int(nil), byDist[:cfg.ClusterSize]...)
	sort.Ints(cluster)
	c.Name = fmt.Sprintf("correlated-%d@v%d", cfg.ClusterSize, epicenter)
	c.Events = append(c.Events, Event{
		At:       cfg.OutageAt,
		Duration: cfg.OutageDuration,
		Kind:     ServerOutage,
		Servers:  cluster,
	})

	if cfg.LinkCuts > 0 {
		down := map[int]bool{}
		for _, f := range cluster {
			down[f] = true
		}
		var cuttable [][2]int
		for _, e := range in.Top.Net.Edges() {
			if down[e.U] || down[e.V] {
				continue // dies with the cluster anyway
			}
			cuttable = append(cuttable, [2]int{e.U, e.V})
		}
		s.Shuffle(len(cuttable), func(i, j int) { cuttable[i], cuttable[j] = cuttable[j], cuttable[i] })
		n := cfg.LinkCuts
		if n > len(cuttable) {
			n = len(cuttable)
		}
		for _, l := range cuttable[:n] {
			c.Events = append(c.Events, Event{
				At:       cfg.OutageAt,
				Duration: cfg.OutageDuration,
				Kind:     LinkCut,
				Link:     l,
			})
		}
	}

	if cfg.BrownoutFactor > 0 && cfg.BrownoutFactor < 1 {
		c.Events = append(c.Events, Event{
			At:       cfg.OutageAt,
			Duration: cfg.BrownoutDuration,
			Kind:     CloudBrownout,
			Factor:   cfg.BrownoutFactor,
		})
	}
	return c
}

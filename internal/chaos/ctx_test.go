package chaos

import (
	"context"
	"errors"
	"testing"

	"idde/internal/core"
	"idde/internal/des"
	"idde/internal/rng"
	"idde/internal/units"
)

// TestRunCtxPreCancelled returns an empty-but-valid campaign report and
// the context error without replaying a single epoch.
func TestRunCtxPreCancelled(t *testing.T) {
	in := genInstance(t, 10, 60, 4, 3)
	st := core.Solve(in, core.DefaultOptions()).Strategy
	c := Correlated(in, GenConfig{
		ClusterSize:    2,
		OutageAt:       0,
		OutageDuration: units.Seconds(30),
		Faults:         des.Faults{LossProb: 0.1},
	}, rng.New(5))

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := RunCtx(ctx, in, st, c, Config{Seed: 9})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep == nil {
		t.Fatal("no partial report")
	}
	if len(rep.Epochs) != 0 {
		t.Errorf("pre-cancelled campaign replayed %d epochs", len(rep.Epochs))
	}
	// The healthy baseline is measured before the epoch loop, so even an
	// empty report carries it.
	if rep.HealthyRateMBps <= 0 {
		t.Errorf("partial report missing healthy baseline: %v", rep.HealthyRateMBps)
	}
}

// TestMonteCarloCtxCancelMidSweep cancels from inside the generator
// after three campaigns: the sweep must come back truncated to exactly
// the fully replayed campaigns, with the aggregates matching that count.
func TestMonteCarloCtxCancelMidSweep(t *testing.T) {
	in := genInstance(t, 12, 70, 4, 5)
	st := core.Solve(in, core.DefaultOptions()).Strategy
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	gen := func(i int, s *rng.Stream) Campaign {
		if i == 3 {
			cancel()
		}
		return Correlated(in, GenConfig{
			ClusterSize:    3,
			OutageDuration: units.Seconds(45),
			Faults:         des.Faults{LossProb: 0.2},
		}, s)
	}
	sw, err := MonteCarloCtx(ctx, in, st, gen, SweepConfig{
		Config:    Config{Seed: 2022, Spread: units.Seconds(2)},
		Campaigns: 10,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if sw == nil {
		t.Fatal("no partial sweep")
	}
	if len(sw.Reports) != 3 {
		t.Fatalf("partial sweep holds %d campaigns, want 3", len(sw.Reports))
	}
	if sw.Campaigns != 3 {
		t.Errorf("Campaigns = %d, want the completed count 3", sw.Campaigns)
	}
	if sw.Stranded.N != 3 || sw.Retries.N != 3 {
		t.Errorf("aggregates cover %d/%d campaigns, want 3/3", sw.Stranded.N, sw.Retries.N)
	}

	// The truncated prefix must match the same sweep run to completion:
	// cancellation never perturbs the campaigns that did finish.
	fullGen := func(i int, s *rng.Stream) Campaign {
		return Correlated(in, GenConfig{
			ClusterSize:    3,
			OutageDuration: units.Seconds(45),
			Faults:         des.Faults{LossProb: 0.2},
		}, s)
	}
	full, err := MonteCarlo(in, st, fullGen, SweepConfig{
		Config:    Config{Seed: 2022, Spread: units.Seconds(2)},
		Campaigns: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if sw.Reports[i].Name != full.Reports[i].Name ||
			sw.Reports[i].TotalRetries != full.Reports[i].TotalRetries {
			t.Errorf("campaign %d differs between partial and full sweep", i)
		}
	}
}

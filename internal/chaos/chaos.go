// Package chaos turns the one-shot failure injection of internal/repair
// into seeded, scriptable failure campaigns: correlated multi-server
// outages (spatially clustered, as a real power or backhaul failure
// would be), wired-link cuts, transient outages with timed recovery,
// and cloud-ingress brownouts, all replayed against a strategy through
// repair and the discrete-event simulator's unreliable-transfer mode.
//
// The paper motivates edge storage as the answer to the cloud's
// "single-point failures" (§1); this package makes that robustness
// claim measurable *during* degradation, not just after repair. A
// Campaign is a timeline of fault events; the runner slices it into
// epochs of constant fault state, degrades the instance, repairs the
// strategy incrementally epoch over epoch (including re-admission when
// servers recover), executes the workload on the DES with per-link
// loss and retry/backoff/failover semantics, and reports
// availability-style metrics against the healthy baseline. A
// Monte-Carlo sweep aggregates many seeded campaigns into summary
// statistics. Identical seeds reproduce identical reports bit-for-bit.
package chaos

import (
	"fmt"
	"sort"

	"idde/internal/des"
	"idde/internal/model"
	"idde/internal/repair"
	"idde/internal/units"
)

// Kind is the type of a fault event.
type Kind int

const (
	// ServerOutage takes a set of servers down: their users, replicas
	// and wired links go with them.
	ServerOutage Kind = iota
	// LinkCut severs one wired inter-server link without killing its
	// endpoints (a backhaul fibre cut).
	LinkCut
	// CloudBrownout scales the cloud-ingress rate by Factor — the
	// uplink degrades but still delivers.
	CloudBrownout
)

func (k Kind) String() string {
	switch k {
	case ServerOutage:
		return "server-outage"
	case LinkCut:
		return "link-cut"
	case CloudBrownout:
		return "cloud-brownout"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one timed fault in a campaign script.
type Event struct {
	// At is when the fault strikes.
	At units.Seconds `json:"at"`
	// Duration is how long it lasts; 0 means permanent for the rest of
	// the campaign.
	Duration units.Seconds `json:"duration,omitempty"`
	Kind     Kind          `json:"kind"`
	// Servers are the ServerOutage targets.
	Servers []int `json:"servers,omitempty"`
	// Link is the LinkCut target.
	Link [2]int `json:"link,omitempty"`
	// Factor is the CloudBrownout rate multiplier, in (0,1).
	Factor float64 `json:"factor,omitempty"`
}

// active reports whether the event is in force at time t.
func (e Event) active(t units.Seconds) bool {
	if t < e.At {
		return false
	}
	return e.Duration <= 0 || t < e.At+e.Duration
}

// Campaign is a seeded, scriptable failure schedule, plus the
// link-level fault model in force while it runs.
type Campaign struct {
	Name   string  `json:"name"`
	Events []Event `json:"events"`
	// Faults is the unreliable-transfer configuration the DES uses
	// while replaying the campaign (zero value = reliable transfers).
	Faults des.Faults `json:"faults"`
}

// Validate checks the campaign against an instance.
func (c *Campaign) Validate(in *model.Instance) error {
	for ei, e := range c.Events {
		if e.At < 0 {
			return fmt.Errorf("chaos: event %d strikes at negative time %v", ei, e.At)
		}
		if e.Duration < 0 {
			return fmt.Errorf("chaos: event %d has negative duration", ei)
		}
		switch e.Kind {
		case ServerOutage:
			if len(e.Servers) == 0 {
				return fmt.Errorf("chaos: event %d is a server outage with no servers", ei)
			}
			for _, f := range e.Servers {
				if f < 0 || f >= in.N() {
					return fmt.Errorf("chaos: event %d targets unknown server %d", ei, f)
				}
			}
		case LinkCut:
			u, v := e.Link[0], e.Link[1]
			if u < 0 || u >= in.N() || v < 0 || v >= in.N() || u == v {
				return fmt.Errorf("chaos: event %d cuts invalid link (%d,%d)", ei, u, v)
			}
		case CloudBrownout:
			if e.Factor <= 0 || e.Factor >= 1 {
				return fmt.Errorf("chaos: event %d brownout factor %g outside (0,1)", ei, e.Factor)
			}
		default:
			return fmt.Errorf("chaos: event %d has unknown kind %d", ei, int(e.Kind))
		}
	}
	return nil
}

// Boundaries returns the sorted, deduplicated times at which the
// campaign's fault state changes, always starting at 0. The serving data
// plane uses them to rebuild its fault view only when something actually
// changed, and to count "epochs to heal" against a recovery budget.
func (c *Campaign) Boundaries() []units.Seconds { return c.epochs() }

// EpochAt reports the index of the fault epoch containing time t — the
// position of the latest boundary at or before t. Epoch 0 always starts
// at time 0; a nil campaign has the single epoch 0. The serving data
// plane keys its per-epoch SLO accounting on this index.
func (c *Campaign) EpochAt(t units.Seconds) int {
	if c == nil {
		return 0
	}
	ep := 0
	for i, b := range c.epochs() {
		if b > t {
			break
		}
		ep = i
	}
	return ep
}

// DegradationAt assembles the instantaneous fault state at time t — the
// union of failed servers and cut links across active events, and the
// most severe active brownout — as a repair.Degradation ready for
// repair.Degrade. Exported for the live serving loop, which consumes the
// campaign as a fault timeline rather than replaying it epoch by epoch.
func (c *Campaign) DegradationAt(t units.Seconds) repair.Degradation {
	return c.degradationAt(t)
}

// epochs returns the sorted, deduplicated boundary times at which the
// campaign's fault state changes, always starting at 0.
func (c *Campaign) epochs() []units.Seconds {
	set := map[units.Seconds]bool{0: true}
	for _, e := range c.Events {
		set[e.At] = true
		if e.Duration > 0 {
			set[e.At+e.Duration] = true
		}
	}
	out := make([]units.Seconds, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// degradationAt assembles the instantaneous fault state at time t: the
// union of failed servers and cut links across active events, and the
// most severe active brownout.
func (c *Campaign) degradationAt(t units.Seconds) repair.Degradation {
	var d repair.Degradation
	failed := map[int]bool{}
	for _, e := range c.Events {
		if !e.active(t) {
			continue
		}
		switch e.Kind {
		case ServerOutage:
			for _, f := range e.Servers {
				if !failed[f] {
					failed[f] = true
					d.FailedServers = append(d.FailedServers, f)
				}
			}
		case LinkCut:
			d.CutLinks = append(d.CutLinks, e.Link)
		case CloudBrownout:
			if d.CloudFactor == 0 || e.Factor < d.CloudFactor {
				d.CloudFactor = e.Factor
			}
		}
	}
	sort.Ints(d.FailedServers)
	return d
}

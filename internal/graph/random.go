package graph

import (
	"idde/internal/rng"
	"idde/internal/units"
)

// RandomConnected generates a connected random topology with n vertices
// and approximately `edges` links, the construction behind experiment
// Set #4: "Given density and N ... density·N links are generated
// randomly to connect edge servers" (§4.3). Because density starts at
// 1.0 and a connected graph needs at least n−1 links, the generator
// first threads a random spanning tree (guaranteeing connectivity, as an
// edge *storage system* must be able to move data between any two
// servers) and then adds uniformly random extra links until the edge
// budget is met. Link costs are drawn as inverse speeds from
// [minSpeed,maxSpeed] MBps, matching the 2,000–6,000 MBps of §4.2.
//
// If edges < n−1 the spanning tree is still completed; if edges exceeds
// the complete graph size it is clamped.
func RandomConnected(n, edges int, minSpeed, maxSpeed units.Rate, s *rng.Stream) *Graph {
	g := New(n)
	if n <= 1 {
		return g
	}
	maxEdges := n * (n - 1) / 2
	if edges > maxEdges {
		edges = maxEdges
	}
	cost := func() units.SecondsPerMB {
		return units.PerMB(units.Rate(s.Uniform(float64(minSpeed), float64(maxSpeed))))
	}
	// Random spanning tree: connect each vertex (in random order) to a
	// uniformly random already-connected vertex. This yields trees with
	// realistic degree spread rather than a path or a star.
	order := s.Perm(n)
	for i := 1; i < n; i++ {
		u := order[i]
		v := order[s.IntN(i)]
		g.AddEdge(u, v, cost())
	}
	for g.M() < edges {
		u := s.IntN(n)
		v := s.IntN(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.AddEdge(u, v, cost())
	}
	return g
}

// GeometricNeighbors builds a graph connecting each vertex to its k
// nearest peers under the supplied symmetric distance function, a
// common model for wired edge-server meshes where nearby base stations
// are linked. The result may be disconnected for tiny k; callers that
// need connectivity should union with a spanning tree.
func GeometricNeighbors(n, k int, dist func(i, j int) float64, linkCost func(i, j int) units.SecondsPerMB) *Graph {
	g := New(n)
	if n <= 1 || k <= 0 {
		return g
	}
	type cand struct {
		j int
		d float64
	}
	for i := 0; i < n; i++ {
		cands := make([]cand, 0, n-1)
		for j := 0; j < n; j++ {
			if j != i {
				cands = append(cands, cand{j: j, d: dist(i, j)})
			}
		}
		// Partial selection of the k nearest.
		for sel := 0; sel < k && sel < len(cands); sel++ {
			best := sel
			for j := sel + 1; j < len(cands); j++ {
				if cands[j].d < cands[best].d {
					best = j
				}
			}
			cands[sel], cands[best] = cands[best], cands[sel]
			g.AddEdge(i, cands[sel].j, linkCost(i, cands[sel].j))
		}
	}
	return g
}

// Package graph implements the edge-server network substrate: a weighted
// undirected graph whose vertices are edge servers and whose edge weights
// are per-MB transfer costs (inverse link speeds). The paper's system
// model assumes adjacent edge servers communicate over high-speed links
// and that data moves along lowest-latency paths (Eq. 8); this package
// supplies the all-pairs shortest-path machinery behind L_{k,o,i}, the
// random `density·N`-link topologies of experiment Set #4, and the
// spanning-tree algorithms referenced by the NP-hardness proof (minimum
// routing cost spanning trees).
package graph

import (
	"fmt"
	"math"
	"sort"

	"idde/internal/units"
)

// Edge is an undirected link between two vertices with a per-MB cost.
type Edge struct {
	U, V int
	Cost units.SecondsPerMB
}

// Graph is a weighted undirected graph over vertices 0..N-1. Parallel
// edges are merged, keeping the cheaper cost; self-loops are rejected.
type Graph struct {
	n   int
	adj [][]halfEdge
	m   int
}

type halfEdge struct {
	to   int
	cost units.SecondsPerMB
}

// New creates a graph with n isolated vertices.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Graph{n: n, adj: make([][]halfEdge, n)}
}

// N reports the number of vertices.
func (g *Graph) N() int { return g.n }

// M reports the number of (undirected) edges.
func (g *Graph) M() int { return g.m }

// AddEdge inserts an undirected edge. Adding an edge that already exists
// keeps the smaller cost. It panics on self-loops, out-of-range vertices
// or non-positive costs.
func (g *Graph) AddEdge(u, v int, cost units.SecondsPerMB) {
	if u == v {
		panic("graph: self-loop")
	}
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: vertex out of range: (%d,%d) with n=%d", u, v, g.n))
	}
	if cost <= 0 || math.IsInf(float64(cost), 0) || math.IsNaN(float64(cost)) {
		panic("graph: edge cost must be positive and finite")
	}
	for i := range g.adj[u] {
		if g.adj[u][i].to == v {
			if cost < g.adj[u][i].cost {
				g.adj[u][i].cost = cost
				for j := range g.adj[v] {
					if g.adj[v][j].to == u {
						g.adj[v][j].cost = cost
					}
				}
			}
			return
		}
	}
	g.adj[u] = append(g.adj[u], halfEdge{to: v, cost: cost})
	g.adj[v] = append(g.adj[v], halfEdge{to: u, cost: cost})
	g.m++
}

// HasEdge reports whether u and v are adjacent.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return false
	}
	for _, e := range g.adj[u] {
		if e.to == v {
			return true
		}
	}
	return false
}

// Neighbors calls fn for each neighbor of u with the edge cost.
func (g *Graph) Neighbors(u int, fn func(v int, cost units.SecondsPerMB)) {
	for _, e := range g.adj[u] {
		fn(e.to, e.cost)
	}
}

// Degree reports the number of neighbors of u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// Edges returns all edges with U < V, sorted for determinism.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.m)
	for u := 0; u < g.n; u++ {
		for _, e := range g.adj[u] {
			if u < e.to {
				out = append(out, Edge{U: u, V: e.to, Cost: e.cost})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// Connected reports whether the graph is connected (true for n<=1).
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	seen := make([]bool, g.n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.adj[u] {
			if !seen[e.to] {
				seen[e.to] = true
				count++
				stack = append(stack, e.to)
			}
		}
	}
	return count == g.n
}

// Clone returns a deep copy.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	c.m = g.m
	for u := range g.adj {
		c.adj[u] = append([]halfEdge(nil), g.adj[u]...)
	}
	return c
}

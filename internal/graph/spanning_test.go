package graph

import (
	"math"
	"testing"

	"idde/internal/rng"
)

func TestMSTKnown(t *testing.T) {
	// Classic 4-cycle with a diagonal.
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 2)
	g.AddEdge(2, 3, 3)
	g.AddEdge(3, 0, 4)
	g.AddEdge(0, 2, 5)
	edges, total, ok := g.MST()
	if !ok {
		t.Fatal("MST failed on connected graph")
	}
	if len(edges) != 3 || total != 6 {
		t.Errorf("MST total = %v with %d edges, want 6 with 3", total, len(edges))
	}
}

func TestMSTDisconnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	if _, _, ok := g.MST(); ok {
		t.Error("MST succeeded on disconnected graph")
	}
}

func TestMSTIsSpanningTree(t *testing.T) {
	s := rng.New(55)
	for trial := 0; trial < 10; trial++ {
		n := 3 + s.IntN(40)
		g := RandomConnected(n, 3*n, 2000, 6000, s.SplitN("t", trial))
		edges, _, ok := g.MST()
		if !ok {
			t.Fatal("MST failed")
		}
		if len(edges) != n-1 {
			t.Fatalf("MST has %d edges, want %d", len(edges), n-1)
		}
		tree := New(n)
		for _, e := range edges {
			tree.AddEdge(e.U, e.V, e.Cost)
		}
		if !tree.Connected() {
			t.Fatal("MST not connected")
		}
	}
}

func TestRoutingCostLine(t *testing.T) {
	// Path 0-1-2 (unit costs): ordered-pair routing cost = 2*(1+2+1)=8.
	g := line(3)
	if rc := g.RoutingCost(); rc != 8 {
		t.Errorf("RoutingCost = %v, want 8", rc)
	}
}

func TestMRCSApproxWithinFactor2OfTreeEnumeration(t *testing.T) {
	// On small graphs, compare against the best spanning tree found by
	// enumerating all spanning trees via edge subsets.
	s := rng.New(56)
	for trial := 0; trial < 5; trial++ {
		n := 5
		g := RandomConnected(n, 8, 2000, 6000, s.SplitN("t", trial))
		_, approx, ok := g.MRCSApprox()
		if !ok {
			t.Fatal("MRCSApprox failed")
		}
		best := bestSpanningTreeRoutingCost(g)
		if float64(approx) > 2*best+1e-12 {
			t.Errorf("trial %d: approx %v exceeds 2×optimal %v", trial, float64(approx), best)
		}
		if float64(approx) < best-1e-12 {
			t.Errorf("trial %d: approx %v beats optimal %v (enumeration bug?)", trial, float64(approx), best)
		}
	}
}

// bestSpanningTreeRoutingCost enumerates all (n-1)-subsets of edges and
// returns the minimum routing cost over spanning trees. Exponential;
// test-only, for tiny graphs.
func bestSpanningTreeRoutingCost(g *Graph) float64 {
	edges := g.Edges()
	n := g.N()
	best := math.Inf(1)
	var rec func(start int, chosen []Edge)
	rec = func(start int, chosen []Edge) {
		if len(chosen) == n-1 {
			t := New(n)
			for _, e := range chosen {
				t.AddEdge(e.U, e.V, e.Cost)
			}
			if !t.Connected() {
				return
			}
			if c := float64(t.RoutingCost()); c < best {
				best = c
			}
			return
		}
		if start >= len(edges) || len(edges)-start < n-1-len(chosen) {
			return
		}
		rec(start+1, append(chosen, edges[start]))
		rec(start+1, chosen)
	}
	rec(0, nil)
	return best
}

func TestMRCSApproxDisconnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	if _, _, ok := g.MRCSApprox(); ok {
		t.Error("MRCSApprox succeeded on disconnected graph")
	}
}

func TestMRCSApproxEmpty(t *testing.T) {
	tree, cost, ok := New(0).MRCSApprox()
	if !ok || cost != 0 || tree.N() != 0 {
		t.Error("empty graph MRCS wrong")
	}
}

func TestMRCSApproxResultIsSpanningTree(t *testing.T) {
	s := rng.New(57)
	g := RandomConnected(20, 45, 2000, 6000, s)
	tree, _, ok := g.MRCSApprox()
	if !ok {
		t.Fatal("MRCSApprox failed")
	}
	if tree.M() != 19 || !tree.Connected() {
		t.Errorf("result not a spanning tree: M=%d connected=%v", tree.M(), tree.Connected())
	}
	// Every tree edge must exist in the original graph.
	for _, e := range tree.Edges() {
		if !g.HasEdge(e.U, e.V) {
			t.Errorf("tree edge (%d,%d) not in graph", e.U, e.V)
		}
	}
}

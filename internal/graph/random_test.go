package graph

import (
	"math"
	"testing"
	"testing/quick"

	"idde/internal/rng"
	"idde/internal/units"
)

func TestRandomConnectedProperties(t *testing.T) {
	f := func(seed uint64, nRaw, extraRaw uint8) bool {
		n := 2 + int(nRaw)%60
		edges := n - 1 + int(extraRaw)%(2*n)
		g := RandomConnected(n, edges, 2000, 6000, rng.New(seed))
		if !g.Connected() {
			return false
		}
		maxEdges := n * (n - 1) / 2
		want := edges
		if want > maxEdges {
			want = maxEdges
		}
		if g.M() != want {
			return false
		}
		// All edge costs must correspond to speeds in [2000,6000] MBps.
		for _, e := range g.Edges() {
			speed := 1 / float64(e.Cost)
			if speed < 2000-1e-6 || speed > 6000+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRandomConnectedDeterministic(t *testing.T) {
	a := RandomConnected(30, 45, 2000, 6000, rng.New(5))
	b := RandomConnected(30, 45, 2000, 6000, rng.New(5))
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatal("edge counts differ")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, ea[i], eb[i])
		}
	}
}

func TestRandomConnectedSmall(t *testing.T) {
	if g := RandomConnected(0, 5, 2000, 6000, rng.New(1)); g.N() != 0 {
		t.Error("n=0 wrong")
	}
	if g := RandomConnected(1, 5, 2000, 6000, rng.New(1)); g.N() != 1 || g.M() != 0 {
		t.Error("n=1 wrong")
	}
	// edges below n-1 still yields a spanning tree.
	g := RandomConnected(10, 3, 2000, 6000, rng.New(1))
	if !g.Connected() || g.M() != 9 {
		t.Errorf("under-budget graph: connected=%v M=%d", g.Connected(), g.M())
	}
}

func TestRandomConnectedClampsToCompleteGraph(t *testing.T) {
	g := RandomConnected(5, 100, 2000, 6000, rng.New(2))
	if g.M() != 10 {
		t.Errorf("M = %d, want complete graph 10", g.M())
	}
}

func TestGeometricNeighbors(t *testing.T) {
	// Four points on a line at x = 0,1,2,10.
	xs := []float64{0, 1, 2, 10}
	dist := func(i, j int) float64 { return math.Abs(xs[i] - xs[j]) }
	cost := func(i, j int) units.SecondsPerMB { return units.SecondsPerMB(dist(i, j)) }
	g := GeometricNeighbors(4, 1, dist, cost)
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) {
		t.Error("nearest-neighbor edges missing")
	}
	if g.HasEdge(0, 3) {
		t.Error("far edge present at k=1")
	}
	// k=0 and trivial n yield empty graphs.
	if g := GeometricNeighbors(4, 0, dist, cost); g.M() != 0 {
		t.Error("k=0 produced edges")
	}
	if g := GeometricNeighbors(1, 3, dist, cost); g.M() != 0 {
		t.Error("n=1 produced edges")
	}
}

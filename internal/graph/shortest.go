package graph

import (
	"container/heap"
	"math"

	"idde/internal/units"
)

// Dijkstra computes single-source shortest path costs from src.
// Unreachable vertices get +Inf. Costs are per-MB transfer costs, so the
// result, multiplied by a data size, is the lowest delivery latency from
// src (Eq. 8's L_{k,o,i} with d_k of that size).
func (g *Graph) Dijkstra(src int) []units.SecondsPerMB {
	dist := make([]units.SecondsPerMB, g.n)
	for i := range dist {
		dist[i] = units.SecondsPerMB(math.Inf(1))
	}
	dist[src] = 0
	pq := &costHeap{{v: src, d: 0}}
	for pq.Len() > 0 {
		item := heap.Pop(pq).(costItem)
		if item.d > dist[item.v] {
			continue // stale entry
		}
		for _, e := range g.adj[item.v] {
			if nd := item.d + e.cost; nd < dist[e.to] {
				dist[e.to] = nd
				heap.Push(pq, costItem{v: e.to, d: nd})
			}
		}
	}
	return dist
}

// APSP computes all-pairs shortest path per-MB costs by running Dijkstra
// from every vertex (O(N·(M+N)logN), fine at the paper's scales and
// asymptotically better than Floyd–Warshall on the sparse `density·N`
// edge topologies). The result is symmetric for undirected graphs.
func (g *Graph) APSP() [][]units.SecondsPerMB {
	out := make([][]units.SecondsPerMB, g.n)
	for v := 0; v < g.n; v++ {
		out[v] = g.Dijkstra(v)
	}
	return out
}

// FloydWarshall computes the same all-pairs costs with the classic
// O(N³) dynamic program. It is kept as a differential-testing oracle for
// APSP and for dense graphs.
func (g *Graph) FloydWarshall() [][]units.SecondsPerMB {
	inf := units.SecondsPerMB(math.Inf(1))
	d := make([][]units.SecondsPerMB, g.n)
	for i := range d {
		d[i] = make([]units.SecondsPerMB, g.n)
		for j := range d[i] {
			if i != j {
				d[i][j] = inf
			}
		}
	}
	for u := 0; u < g.n; u++ {
		for _, e := range g.adj[u] {
			if e.cost < d[u][e.to] {
				d[u][e.to] = e.cost
			}
		}
	}
	for k := 0; k < g.n; k++ {
		for i := 0; i < g.n; i++ {
			dik := d[i][k]
			if math.IsInf(float64(dik), 1) {
				continue
			}
			for j := 0; j < g.n; j++ {
				if via := dik + d[k][j]; via < d[i][j] {
					d[i][j] = via
				}
			}
		}
	}
	return d
}

// ShortestPath returns the vertex sequence of a cheapest path from src
// to dst (inclusive of both endpoints) and its total cost. It reports
// ok=false when dst is unreachable. Ties break toward lower parent
// indices, so the result is deterministic.
func (g *Graph) ShortestPath(src, dst int) (path []int, cost units.SecondsPerMB, ok bool) {
	dist := make([]units.SecondsPerMB, g.n)
	parent := make([]int, g.n)
	for i := range dist {
		dist[i] = units.SecondsPerMB(math.Inf(1))
		parent[i] = -1
	}
	dist[src] = 0
	pq := &costHeap{{v: src, d: 0}}
	for pq.Len() > 0 {
		item := heap.Pop(pq).(costItem)
		if item.d > dist[item.v] {
			continue
		}
		if item.v == dst {
			break
		}
		for _, e := range g.adj[item.v] {
			nd := item.d + e.cost
			if nd < dist[e.to] || (nd == dist[e.to] && parent[e.to] > item.v) {
				dist[e.to] = nd
				parent[e.to] = item.v
				heap.Push(pq, costItem{v: e.to, d: nd})
			}
		}
	}
	if math.IsInf(float64(dist[dst]), 1) {
		return nil, 0, false
	}
	for v := dst; v != -1; v = parent[v] {
		path = append(path, v)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, dist[dst], true
}

// Hops computes the minimum hop count from src (ignoring weights);
// unreachable vertices get -1.
func (g *Graph) Hops(src int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, e := range g.adj[u] {
			if dist[e.to] < 0 {
				dist[e.to] = dist[u] + 1
				queue = append(queue, e.to)
			}
		}
	}
	return dist
}

type costItem struct {
	v int
	d units.SecondsPerMB
}

type costHeap []costItem

func (h costHeap) Len() int            { return len(h) }
func (h costHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h costHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *costHeap) Push(x interface{}) { *h = append(*h, x.(costItem)) }
func (h *costHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

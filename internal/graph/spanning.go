package graph

import (
	"math"
	"sort"

	"idde/internal/units"
)

// MST computes a minimum spanning tree with Kruskal's algorithm and
// returns its edges. It returns ok=false when the graph is disconnected.
func (g *Graph) MST() (edges []Edge, total units.SecondsPerMB, ok bool) {
	all := g.Edges()
	sort.Slice(all, func(i, j int) bool { return all[i].Cost < all[j].Cost })
	uf := newUnionFind(g.n)
	for _, e := range all {
		if uf.union(e.U, e.V) {
			edges = append(edges, e)
			total += e.Cost
			if len(edges) == g.n-1 {
				break
			}
		}
	}
	if g.n > 0 && len(edges) != g.n-1 {
		return nil, 0, false
	}
	return edges, total, true
}

// RoutingCost reports the total all-pairs routing cost of the graph: the
// sum of shortest-path costs over all ordered vertex pairs. This is the
// objective of the minimum routing cost spanning tree (MRCS) problem the
// paper reduces from in Theorem 1.
func (g *Graph) RoutingCost() units.SecondsPerMB {
	total := units.SecondsPerMB(0)
	for _, row := range g.APSP() {
		for _, c := range row {
			if !math.IsInf(float64(c), 1) {
				total += c
			}
		}
	}
	return total
}

// MRCSApprox computes a 2-approximate minimum routing cost spanning tree
// using the classic shortest-path-tree heuristic: for every vertex r,
// build the shortest-path tree rooted at r and keep the tree with the
// lowest routing cost. (Wong 1980: the best shortest-path tree is within
// a factor 2 of the optimal routing-cost tree.) It returns ok=false on
// disconnected graphs.
func (g *Graph) MRCSApprox() (tree *Graph, cost units.SecondsPerMB, ok bool) {
	if g.n == 0 {
		return New(0), 0, true
	}
	if !g.Connected() {
		return nil, 0, false
	}
	best := units.SecondsPerMB(math.Inf(1))
	var bestTree *Graph
	for r := 0; r < g.n; r++ {
		t := g.shortestPathTree(r)
		if c := t.RoutingCost(); c < best {
			best = c
			bestTree = t
		}
	}
	return bestTree, best, true
}

// shortestPathTree builds the tree of shortest paths from root r
// (deterministic tie-break on parent index).
func (g *Graph) shortestPathTree(r int) *Graph {
	dist := g.Dijkstra(r)
	t := New(g.n)
	for v := 0; v < g.n; v++ {
		if v == r || math.IsInf(float64(dist[v]), 1) {
			continue
		}
		// The parent is a neighbor u with dist[u] + w(u,v) == dist[v].
		bestParent := -1
		var bestCost units.SecondsPerMB
		for _, e := range g.adj[v] {
			if math.Abs(float64(dist[e.to]+e.cost-dist[v])) <= 1e-15*math.Max(1, float64(dist[v])) {
				if bestParent < 0 || e.to < bestParent {
					bestParent = e.to
					bestCost = e.cost
				}
			}
		}
		if bestParent >= 0 {
			t.AddEdge(v, bestParent, bestCost)
		}
	}
	return t
}

type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b int) bool {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return false
	}
	if uf.rank[ra] < uf.rank[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	if uf.rank[ra] == uf.rank[rb] {
		uf.rank[ra]++
	}
	return true
}

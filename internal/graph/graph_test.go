package graph

import (
	"math"
	"testing"

	"idde/internal/rng"
	"idde/internal/units"
)

func line(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1, 1)
	}
	return g
}

func TestAddEdgeBasics(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 2, 3)
	if g.N() != 4 || g.M() != 2 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("undirected edge missing")
	}
	if g.HasEdge(0, 2) {
		t.Error("phantom edge")
	}
	if g.Degree(1) != 2 || g.Degree(3) != 0 {
		t.Error("degrees wrong")
	}
}

func TestAddEdgeMergesParallel(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 5)
	g.AddEdge(0, 1, 3) // cheaper: should replace
	g.AddEdge(1, 0, 9) // more expensive: ignored
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
	d := g.Dijkstra(0)
	if d[1] != 3 {
		t.Errorf("merged cost = %v, want 3", d[1])
	}
}

func TestAddEdgePanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"self-loop", func() { New(3).AddEdge(1, 1, 1) }},
		{"out-of-range", func() { New(3).AddEdge(0, 3, 1) }},
		{"zero-cost", func() { New(3).AddEdge(0, 1, 0) }},
		{"negative-cost", func() { New(3).AddEdge(0, 1, -1) }},
		{"inf-cost", func() { New(3).AddEdge(0, 1, units.SecondsPerMB(math.Inf(1))) }},
		{"negative-n", func() { New(-1) }},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", c.name)
				}
			}()
			c.fn()
		}()
	}
}

func TestEdgesSortedCanonical(t *testing.T) {
	g := New(4)
	g.AddEdge(3, 0, 1)
	g.AddEdge(2, 1, 1)
	g.AddEdge(1, 0, 1)
	es := g.Edges()
	if len(es) != 3 {
		t.Fatalf("Edges len = %d", len(es))
	}
	for i, e := range es {
		if e.U >= e.V {
			t.Errorf("edge %d not canonical: %+v", i, e)
		}
		if i > 0 && (es[i-1].U > e.U || (es[i-1].U == e.U && es[i-1].V > e.V)) {
			t.Errorf("edges not sorted at %d", i)
		}
	}
}

func TestConnected(t *testing.T) {
	if !New(0).Connected() || !New(1).Connected() {
		t.Error("trivial graphs should be connected")
	}
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	if g.Connected() {
		t.Error("two components reported connected")
	}
	g.AddEdge(1, 2, 1)
	if !g.Connected() {
		t.Error("connected graph reported disconnected")
	}
}

func TestDijkstraLine(t *testing.T) {
	g := line(5)
	d := g.Dijkstra(0)
	for i, want := range []float64{0, 1, 2, 3, 4} {
		if float64(d[i]) != want {
			t.Errorf("d[%d] = %v, want %v", i, d[i], want)
		}
	}
}

func TestDijkstraPrefersCheapPath(t *testing.T) {
	// 0-1-2 with costs 1+1 beats the direct 0-2 edge of cost 5.
	g := New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 2, 5)
	if d := g.Dijkstra(0); d[2] != 2 {
		t.Errorf("d[2] = %v, want 2", d[2])
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	d := g.Dijkstra(0)
	if !math.IsInf(float64(d[2]), 1) {
		t.Errorf("unreachable vertex cost = %v", d[2])
	}
}

func TestAPSPMatchesFloydWarshall(t *testing.T) {
	s := rng.New(101)
	for trial := 0; trial < 20; trial++ {
		n := 2 + s.IntN(30)
		edges := n - 1 + s.IntN(2*n)
		g := RandomConnected(n, edges, 2000, 6000, s.SplitN("g", trial))
		a := g.APSP()
		f := g.FloydWarshall()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				ai, fi := float64(a[i][j]), float64(f[i][j])
				if math.IsInf(ai, 1) != math.IsInf(fi, 1) {
					t.Fatalf("trial %d: reachability mismatch at (%d,%d)", trial, i, j)
				}
				if !math.IsInf(ai, 1) && math.Abs(ai-fi) > 1e-12*math.Max(1, fi) {
					t.Fatalf("trial %d: APSP %v != FW %v at (%d,%d)", trial, ai, fi, i, j)
				}
			}
		}
	}
}

func TestAPSPSymmetricAndTriangle(t *testing.T) {
	s := rng.New(102)
	g := RandomConnected(25, 40, 2000, 6000, s)
	d := g.APSP()
	for i := 0; i < 25; i++ {
		if d[i][i] != 0 {
			t.Errorf("d[%d][%d] = %v", i, i, d[i][i])
		}
		for j := 0; j < 25; j++ {
			// Summation order differs per direction, so allow ulp-scale slack.
			if math.Abs(float64(d[i][j])-float64(d[j][i])) > 1e-12*math.Max(1, float64(d[i][j])) {
				t.Errorf("asymmetric at (%d,%d): %v vs %v", i, j, d[i][j], d[j][i])
			}
			for k := 0; k < 25; k++ {
				if float64(d[i][j]) > float64(d[i][k])+float64(d[k][j])+1e-15 {
					t.Fatalf("triangle violated: d[%d][%d] > d via %d", i, j, k)
				}
			}
		}
	}
}

func TestShortestPathKnown(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 2, 5)
	g.AddEdge(2, 3, 1)
	path, cost, ok := g.ShortestPath(0, 3)
	if !ok || cost != 3 {
		t.Fatalf("cost = %v ok=%v", cost, ok)
	}
	want := []int{0, 1, 2, 3}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	// Self path.
	if p, c, ok := g.ShortestPath(2, 2); !ok || c != 0 || len(p) != 1 || p[0] != 2 {
		t.Errorf("self path = %v cost %v", p, c)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	if _, _, ok := g.ShortestPath(0, 2); ok {
		t.Error("unreachable path reported ok")
	}
}

func TestShortestPathMatchesDijkstraCost(t *testing.T) {
	s := rng.New(404)
	g := RandomConnected(25, 50, 2000, 6000, s)
	d := g.Dijkstra(3)
	for v := 0; v < 25; v++ {
		path, cost, ok := g.ShortestPath(3, v)
		if !ok {
			t.Fatalf("no path to %d", v)
		}
		if math.Abs(float64(cost-d[v])) > 1e-12*math.Max(1, float64(d[v])) {
			t.Fatalf("cost to %d: %v vs Dijkstra %v", v, cost, d[v])
		}
		// Path must be a real walk whose edge costs sum to the total.
		var sum units.SecondsPerMB
		for i := 0; i+1 < len(path); i++ {
			if !g.HasEdge(path[i], path[i+1]) {
				t.Fatalf("path step (%d,%d) not an edge", path[i], path[i+1])
			}
			g.Neighbors(path[i], func(to int, c units.SecondsPerMB) {
				if to == path[i+1] {
					sum += c
				}
			})
		}
		if math.Abs(float64(sum-cost)) > 1e-12*math.Max(1, float64(cost)) {
			t.Fatalf("path edge sum %v != cost %v", sum, cost)
		}
	}
}

func TestHops(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1, 10)
	g.AddEdge(1, 2, 10)
	g.AddEdge(0, 2, 10) // direct 1-hop shortcut regardless of weight
	h := g.Hops(0)
	if h[0] != 0 || h[1] != 1 || h[2] != 1 {
		t.Errorf("hops = %v", h)
	}
	if h[4] != -1 {
		t.Errorf("unreachable hop = %d, want -1", h[4])
	}
}

func TestClone(t *testing.T) {
	g := line(4)
	c := g.Clone()
	c.AddEdge(0, 3, 1)
	if g.HasEdge(0, 3) {
		t.Error("Clone shares storage with original")
	}
	if c.M() != g.M()+1 {
		t.Error("clone edge count wrong")
	}
}

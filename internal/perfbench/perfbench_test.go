package perfbench

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"idde/internal/experiment"
)

// TestScalesTrajectory pins the tracked scale ladder.
func TestScalesTrajectory(t *testing.T) {
	ps := Scales()
	if len(ps) != 4 || ps[0].M != 100 || ps[3].M != 10000 {
		t.Fatalf("unexpected scale ladder: %v", ps)
	}
	for _, p := range ps {
		if p.K != 5 || p.Density != 1.0 {
			t.Fatalf("K/density drifted from Table 2 defaults: %v", p)
		}
		if p.N < 10 {
			t.Fatalf("N floor violated: %v", p)
		}
	}
}

// TestRunSmoke verifies the measurement plumbing on tiny instances —
// record shape, game stats, the reference cap and the speedup map. The
// full-budget ladder run happens in cmd/iddebench -perfjson.
func TestRunSmoke(t *testing.T) {
	scales := []experiment.Params{
		{N: 10, M: 40, K: 5, Density: 1.0},
		{N: 10, M: 80, K: 5, Density: 1.0},
	}
	rep, err := RunScales(scales, time.Millisecond, 2022, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ReferenceCapM != ReferenceCapM {
		t.Fatalf("reference cap not recorded: %+v", rep)
	}
	var optimized, reference int
	for _, r := range rep.Records {
		if r.Iters <= 0 || r.NsPerOp <= 0 {
			t.Fatalf("degenerate record %+v", r)
		}
		switch r.Name {
		case "SolvePhase1/optimized":
			optimized++
			if r.Updates <= 0 || r.Rounds <= 0 || r.Evaluations <= 0 {
				t.Fatalf("solve record missing game stats: %+v", r)
			}
		case "SolvePhase1/reference":
			reference++
		}
	}
	if optimized != len(scales) || reference != len(scales) {
		t.Fatalf("expected every variant at every sub-cap scale, got optimized=%d reference=%d",
			optimized, reference)
	}
	for _, p := range scales {
		for _, key := range []string{
			fmt.Sprintf("SolvePhase1/M=%d", p.M),
			fmt.Sprintf("LedgerBenefit/M=%d", p.M),
		} {
			if _, ok := rep.Speedups[key]; !ok {
				t.Fatalf("missing speedup entry %s: %v", key, rep.Speedups)
			}
		}
	}
	b, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if !strings.HasSuffix(string(b), "\n") {
		t.Fatal("committed JSON must end with a newline")
	}
}

// TestReferenceCapSkipsLargeScales checks that reference variants are
// flagged for capping and the optimized variant is not.
func TestReferenceCapSkipsLargeScales(t *testing.T) {
	vs := phase1Variants()
	var refCount int
	for _, v := range vs {
		if v.Name == "optimized" && v.Ref {
			t.Fatal("the optimized variant must run at every scale")
		}
		if v.Ref {
			refCount++
		}
	}
	if refCount == 0 {
		t.Fatal("no variant is subject to the reference cap")
	}
}

package perfbench

import (
	"fmt"
	"runtime"
	"time"

	"idde/internal/core"
	"idde/internal/experiment"
	"idde/internal/model"
	"idde/internal/placement"
	"idde/internal/rng"
)

// This file is the Phase 2 half of the tracked baseline
// (BENCH_phase2.json): it times the Eq. 17 greedy delivery solve for
// the optimized engine (cohort-aggregated oracle + parallel-seeded
// CELF) against the naive per-request oracle and the literal
// Algorithm 1 re-scan, plus a GainOf micro-bench isolating the oracle.
//
// The scales deliberately run request-heavy (M/N = 40, K = 5, with N
// capped at 100 so the top rung runs at M/N = 80): the cohort speedup
// is the requests-per-item over cohorts-per-item ratio, which is the
// regime ROADMAP names as the Phase 2 frontier.

// Phase2Scales is the tracked Phase 2 instance-size trajectory. N grows
// with M but is capped at 100: server fleets grow sublinearly with user
// population, and the cap drives the top rung deeper into the
// requests-per-cohort regime the cohort oracle targets (the per-eval
// ratio is requests-of-item over cohorts-of-item, i.e. ~1.3·M/(K·N)).
func Phase2Scales() []experiment.Params {
	var ps []experiment.Params
	for _, m := range []int{400, 1000, 2000, 4000, 8000} {
		n := m / 40
		if n < 10 {
			n = 10
		}
		if n > 100 {
			n = 100
		}
		ps = append(ps, experiment.Params{N: n, M: m, K: 5, Density: 1.0})
	}
	return ps
}

// phase2Variant is one tracked Phase 2 engine configuration.
type phase2Variant struct {
	Name string
	Opt  core.Options
	Ref  bool // subject to ReferenceCapM
	// Workers pins GOMAXPROCS for the measurement (0 = leave alone).
	// The committed sequence is worker-count independent (the parallel
	// seed scan merges in candidate order), so only wall-clock moves.
	Workers int
}

// phase2Variants enumerates the Phase 2 engine configurations.
// "optimized" is the production default; "batch" adds the
// Commit-batching oracle with per-item staleness epochs; "naive-oracle"
// isolates the cohort oracle (same CELF engine, per-request walk,
// sequential seeding); "reference" is the literal Algorithm 1 re-scan
// over the per-request walk. The multi-core sweep re-measures the
// optimized engine under GOMAXPROCS=1 and GOMAXPROCS=NumCPU with the
// parallel-seed threshold dropped to 1 so the N·K candidate scans
// (≤500 at every tracked rung, below the default threshold) actually
// fan out; the pair collapses to the single-core entry on 1-CPU hosts.
func phase2Variants() []phase2Variant {
	seq := placement.NewOptions(placement.Options{})
	par := placement.NewOptions(placement.Options{Parallel: true, ParallelThreshold: 1})
	vs := []phase2Variant{
		{Name: "optimized", Opt: core.Options{}},
		{Name: "batch", Opt: core.Options{CohortBatch: true}},
		{Name: "naive-oracle", Opt: core.Options{NaiveLatency: true, Placement: seq}},
		{Name: "reference", Opt: core.Options{NaiveLatency: true, NaiveGreedy: true, Placement: seq}, Ref: true},
	}
	workerCounts := []int{1}
	if ncpu := runtime.NumCPU(); ncpu > 1 {
		workerCounts = append(workerCounts, ncpu)
	}
	for _, w := range workerCounts {
		vs = append(vs, phase2Variant{
			Name:    fmt.Sprintf("optimized/workers=%d", w),
			Opt:     core.Options{Placement: par},
			Workers: w,
		})
	}
	return vs
}

// gainProbes draws a deterministic batch of (server, item) candidates
// for the GainOf micro-bench.
func gainProbes(in *model.Instance, s *rng.Stream, count int) (is, ks []int) {
	for len(is) < count {
		is = append(is, s.IntN(in.N()))
		ks = append(ks, s.IntN(in.K()))
	}
	return is, ks
}

// RunPhase2 executes the Phase 2 suite over the tracked Phase2Scales
// ladder with the given per-case time budget.
func RunPhase2(budget time.Duration, seed uint64, logf func(format string, args ...any)) (*Report, error) {
	return RunPhase2Scales(Phase2Scales(), budget, seed, logf)
}

// RunPhase2Scales executes the Phase 2 suite over an explicit scale
// list (tests use tiny instances; the committed baseline uses
// Phase2Scales).
func RunPhase2Scales(scales []experiment.Params, budget time.Duration, seed uint64, logf func(format string, args ...any)) (*Report, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rep := &Report{
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Seed:          seed,
		BudgetPerCase: budget.String(),
		ReferenceCapM: ReferenceCapM,
		Speedups:      map[string]float64{},
	}

	for _, p := range scales {
		in, err := experiment.BuildInstance(p, seed)
		if err != nil {
			return nil, fmt.Errorf("build instance %v: %w", p, err)
		}
		// Phase 2 always runs downstream of a Phase 1 equilibrium; solve
		// it once per scale outside every timer.
		alloc, _ := core.SolvePhase1(in, core.DefaultOptions())

		// GainOf micro-bench: cohort suffix query vs per-request walk
		// over an identical candidate batch on the pre-commit state.
		const batch = 1024
		s := rng.New(seed * 131)
		is, ks := gainProbes(in, s, batch)
		for _, kind := range []string{"cohort", "batch", "naive"} {
			name := "LatencyGain/" + kind
			var ls model.DeliveryOracle
			switch kind {
			case "cohort":
				ls = model.NewCohortLatencyState(in, alloc)
			case "batch":
				ls = model.NewBatchCohortLatencyState(in, alloc)
			case "naive":
				ls = model.NewLatencyState(in, alloc)
			}
			iters, ns, ac, bc := measure(budget/4, batch, func() {
				for bi := range is {
					_ = ls.GainOf(is[bi], ks[bi])
				}
			})
			rep.Records = append(rep.Records, Record{
				Name: name, N: p.N, M: p.M, K: p.K,
				Iters: iters * batch, NsPerOp: ns, AllocsPerOp: ac, BytesPerOp: bc,
			})
			logf("%-28s N=%-4d M=%-6d %12.1f ns/op", name, p.N, p.M, ns)
		}

		// Full Phase 2 solve: one op = oracle construction + greedy run.
		for _, v := range phase2Variants() {
			if v.Ref && p.M > ReferenceCapM {
				logf("%-28s N=%-4d M=%-6d skipped (reference cap M=%d)",
					"SolveDelivery/"+v.Name, p.N, p.M, ReferenceCapM)
				continue
			}
			if v.Workers > 0 {
				runtime.GOMAXPROCS(v.Workers)
			}
			var pres placement.Result
			iters, ns, ac, bc := measure(budget, 1, func() {
				_, pres = core.SolveDeliveryOpt(in, alloc, v.Opt)
			})
			if v.Workers > 0 {
				runtime.GOMAXPROCS(rep.GOMAXPROCS)
			}
			rep.Records = append(rep.Records, Record{
				Name: "SolveDelivery/" + v.Name, N: p.N, M: p.M, K: p.K,
				Iters: iters, NsPerOp: ns, AllocsPerOp: ac, BytesPerOp: bc,
				Evaluations: pres.Evaluations, Replicas: len(pres.Chosen),
				Workers: v.Workers,
			})
			logf("%-28s N=%-4d M=%-6d %12.1f ns/op  (replicas=%d evals=%d)",
				"SolveDelivery/"+v.Name, p.N, p.M, ns, len(pres.Chosen), pres.Evaluations)
		}
	}

	// Headline speedups: the naive-oracle CELF run vs the optimized
	// engine (same greedy policy, oracle swapped) wherever both ran,
	// plus the micro-bench ratio.
	byKey := map[string]Record{}
	for _, r := range rep.Records {
		byKey[fmt.Sprintf("%s/M=%d", r.Name, r.M)] = r
	}
	for _, p := range scales {
		ref, okR := byKey[fmt.Sprintf("SolveDelivery/naive-oracle/M=%d", p.M)]
		opt, okO := byKey[fmt.Sprintf("SolveDelivery/optimized/M=%d", p.M)]
		if okR && okO && opt.NsPerOp > 0 {
			rep.Speedups[fmt.Sprintf("SolveDelivery/M=%d", p.M)] = ref.NsPerOp / opt.NsPerOp
		}
		refG, okR := byKey[fmt.Sprintf("LatencyGain/naive/M=%d", p.M)]
		optG, okO := byKey[fmt.Sprintf("LatencyGain/cohort/M=%d", p.M)]
		if okR && okO && optG.NsPerOp > 0 {
			rep.Speedups[fmt.Sprintf("LatencyGain/M=%d", p.M)] = refG.NsPerOp / optG.NsPerOp
		}
		// Commit-batching oracle vs the eager cohort oracle (same CELF
		// engine, bit-identical sequences).
		bat, okB := byKey[fmt.Sprintf("SolveDelivery/batch/M=%d", p.M)]
		if okB && bat.NsPerOp > 0 && opt.NsPerOp > 0 {
			rep.Speedups[fmt.Sprintf("SolveDelivery/batch/M=%d", p.M)] = opt.NsPerOp / bat.NsPerOp
		}
		// Multi-core seed scan: GOMAXPROCS=1 vs all cores (absent on
		// 1-CPU hosts, where the sweep collapses to a single entry).
		w1, ok1 := byKey[fmt.Sprintf("SolveDelivery/optimized/workers=1/M=%d", p.M)]
		wn, okN := byKey[fmt.Sprintf("SolveDelivery/optimized/workers=%d/M=%d", runtime.NumCPU(), p.M)]
		if ok1 && okN && runtime.NumCPU() > 1 && wn.NsPerOp > 0 {
			rep.Speedups[fmt.Sprintf("SolveDelivery/parallel-seed/M=%d", p.M)] = w1.NsPerOp / wn.NsPerOp
		}
	}
	return rep, nil
}

package perfbench

import (
	"encoding/json"
	"fmt"
	"testing"

	"idde/internal/experiment"
)

// TestShardScalesTrajectory pins the tracked sharding ladder: four
// rungs at the paper's 1:20 server:user ratio — the top one the
// region-scaled M=10⁵ instance only the CSR layout can hold — the full
// tile ladder, and the caps that shape the record set (single-tile
// below the M=10⁴ rung, global reference below the top rung).
func TestShardScalesTrajectory(t *testing.T) {
	ps := ShardScales()
	if len(ps) != 4 || ps[0].M != 2000 || ps[2].M != 10000 || ps[3].M != 100000 {
		t.Fatalf("unexpected shard scale ladder: %v", ps)
	}
	for _, p := range ps {
		if p.N != p.M/20 || p.K != 5 || p.Density != 1.0 {
			t.Fatalf("shard rung drifted from ladder conventions: %v", p)
		}
	}
	if ps[3].RegionScale <= 1 {
		t.Fatalf("top rung must scale the region to keep CBD density: %v", ps[3])
	}
	tiles := ShardTileLadder()
	if len(tiles) == 0 || tiles[0] != 1 || tiles[len(tiles)-1] != 16 {
		t.Fatalf("unexpected tile ladder: %v", tiles)
	}
	if SingleTileCapM >= ps[2].M {
		t.Fatal("single-tile cap must exclude the M=10⁴ rung")
	}
	if GlobalCapM >= ps[3].M || GlobalCapM < ps[2].M {
		t.Fatalf("global cap %d must admit the M=10⁴ rung and exclude the top one", GlobalCapM)
	}
}

// TestRunShardSmoke verifies the sharding suite's plumbing on a tiny
// instance: one record per (scale, tile) configuration plus the global
// one, speedup entries, the single-tile identity witness, and the
// zero-alloc tile-view hot path. The full-budget ladder run happens in
// cmd/iddebench -shardjson.
func TestRunShardSmoke(t *testing.T) {
	scales := []experiment.Params{{N: 12, M: 90, K: 5, Density: 1.0}}
	tiles := []int{1, 3}
	rep, err := RunShardScales(scales, tiles, 2022, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != len(scales)*(len(tiles)+1) {
		t.Fatalf("expected %d records, got %d", len(scales)*(len(tiles)+1), len(rep.Records))
	}
	for _, r := range rep.Records {
		if r.WallNs <= 0 || r.AvgRate <= 0 {
			t.Fatalf("degenerate record %+v", r)
		}
		if r.Tiles == 0 && r.Name != "ShardSolve/global" {
			t.Fatalf("tiles=0 record misnamed: %+v", r)
		}
	}
	for _, tl := range tiles {
		key := fmt.Sprintf("ShardSolve/M=%d/tiles=%d", scales[0].M, tl)
		if s, ok := rep.Speedups[key]; !ok || s <= 0 {
			t.Fatalf("missing or degenerate speedup entry %s: %v", key, rep.Speedups)
		}
	}
	same, ok := rep.SingleTileIdentical[fmt.Sprintf("M=%d", scales[0].M)]
	if !ok {
		t.Fatalf("missing single-tile identity witness: %v", rep.SingleTileIdentical)
	}
	if !same {
		t.Fatal("single-tile sharded solve diverged from the global solver")
	}
	if v := rep.HotPathAllocs["Ledger.Benefit/tile-view"]; v != 0 {
		t.Fatalf("tile-view Benefit allocates: %.2f allocs/op", v)
	}
	layout, ok := rep.InstanceLayouts[fmt.Sprintf("M=%d", scales[0].M)]
	if !ok || layout.NNZ == 0 || layout.DenseEquivBytes == 0 {
		t.Fatalf("missing or degenerate instance layout record: %+v", rep.InstanceLayouts)
	}
	if err := rep.ShardRegression(); err != nil {
		t.Fatalf("unexpected regression: %v", err)
	}
	b, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back ShardReport
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
}

// TestShardRegressionDetection: a diverged single-tile entry or an
// allocating hot path must turn into an error for the CI bench-smoke.
func TestShardRegressionDetection(t *testing.T) {
	rep := &ShardReport{
		SingleTileIdentical: map[string]bool{"M=90": true},
		HotPathAllocs:       map[string]float64{"Ledger.Benefit/tile-view": 0},
	}
	if err := rep.ShardRegression(); err != nil {
		t.Fatalf("clean report flagged: %v", err)
	}
	rep.SingleTileIdentical["M=90"] = false
	if err := rep.ShardRegression(); err == nil {
		t.Fatal("divergence not flagged")
	}
	rep.SingleTileIdentical["M=90"] = true
	rep.HotPathAllocs["Ledger.Benefit/tile-view"] = 2
	if err := rep.ShardRegression(); err == nil {
		t.Fatal("allocating hot path not flagged")
	}
}

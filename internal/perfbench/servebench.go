package perfbench

import (
	"context"
	"encoding/json"
	"runtime"

	"idde/internal/chaos"
	"idde/internal/core"
	"idde/internal/des"
	"idde/internal/experiment"
	"idde/internal/serve"
	"idde/internal/units"
)

// ServeCase is one soaked scale in the serving baseline: the full
// chaos-in-the-loop acceptance scenario (the most-fetched-from server
// dies mid-run and recovers) driven at sustained RPS through the
// resilient data plane, with the healthy/faulted/recovered tail
// latencies and the recovery accounting on record.
type ServeCase struct {
	Params experiment.Params `json:"params"`
	// HealthyMBps / HealthyLatMs are the solver's offline Eq. 16/9 view
	// of the boot strategy, for anchoring the served latencies.
	HealthyMBps  float64           `json:"healthy_mbps"`
	HealthyLatMs float64           `json:"healthy_lat_ms"`
	Soak         *serve.SoakReport `json:"soak"`
}

// ServeReport is the BENCH_serve.json schema.
type ServeReport struct {
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	Seed       uint64      `json:"seed"`
	RPS        int         `json:"rps"`
	DurationS  float64     `json:"duration_s"`
	Cases      []ServeCase `json:"cases"`
}

// ServeScales is the soaked scale ladder. The serving loop's cost per
// round is O(RPS × failover chain), independent of M beyond the request
// mix, so the ladder stresses topology size rather than user count.
func ServeScales() []experiment.Params {
	return []experiment.Params{
		{N: 10, M: 60, K: 4, Density: 1.0},
		{N: 20, M: 150, K: 5, Density: 1.0},
		{N: 40, M: 400, K: 8, Density: 1.0},
	}
}

// ServeConfig tunes the tracked soak.
type ServeConfig struct {
	Seed     uint64
	RPS      int
	Duration units.Seconds
	// MaxM skips scales with more users (0 = full ladder; CI smoke uses
	// a low cap for the reduced artifact).
	MaxM int
}

// RunServe executes the serving soak at every scale and assembles the
// tracked report. Outcomes are deterministic for a fixed seed (hedging
// stays off in the tracked baseline), so diffs in BENCH_serve.json mean
// behaviour changed, not luck.
func RunServe(ctx context.Context, cfg ServeConfig, logf func(string, ...any)) (*ServeReport, error) {
	if cfg.RPS <= 0 {
		cfg.RPS = 500
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 30
	}
	rep := &ServeReport{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Seed:       cfg.Seed,
		RPS:        cfg.RPS,
		DurationS:  float64(cfg.Duration),
	}
	for _, p := range ServeScales() {
		if cfg.MaxM > 0 && p.M > cfg.MaxM {
			logf("serve soak n=%d m=%d: skipped (cap m<=%d)", p.N, p.M, cfg.MaxM)
			continue
		}
		in, err := experiment.BuildInstance(p, cfg.Seed)
		if err != nil {
			return nil, err
		}
		st := core.Solve(in, core.DefaultOptions()).Strategy
		rate, lat := in.Evaluate(st)

		onset := cfg.Duration / 4
		faults := des.Faults{LossProb: 0.05, StallProb: 0.02, StallTime: units.Seconds(0.05), MaxRetries: 2}
		camp := &chaos.Campaign{
			Name: "bench-outage",
			Events: []chaos.Event{{
				At:       onset,
				Duration: cfg.Duration / 2,
				Kind:     chaos.ServerOutage,
				Servers:  []int{serve.PopularSource(in, st)},
			}},
			Faults: faults,
		}
		// SLO accounting rides along in the tracked baseline (flight
		// sampling stays off — exemplar capture is a CLI/CI concern, and
		// the soak numbers must measure the bare request path).
		soak, err := serve.Run(ctx, in, st, serve.Options{
			Seed:     cfg.Seed,
			RPS:      cfg.RPS,
			Duration: cfg.Duration,
			Faults:   faults,
			Campaign: camp,
			SLO:      serve.SLOOptions{Enabled: true},
		})
		if err != nil {
			return nil, err
		}
		soak.Timeline = nil // keep the tracked artifact compact
		rep.Cases = append(rep.Cases, ServeCase{
			Params:       p,
			HealthyMBps:  float64(rate),
			HealthyLatMs: lat.Millis(),
			Soak:         soak,
		})
		logf("serve soak n=%d m=%d k=%d: %d req, %d degraded, %d opens, %d replans, heal %d rounds, wall %.0f RPS",
			p.N, p.M, p.K, soak.Issued, soak.Degraded, soak.BreakerOpens,
			soak.Replans, soak.MaxDegradedStreak, soak.WallRPS)
	}
	return rep, nil
}

// JSON renders the report for BENCH_serve.json.
func (r *ServeReport) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

package perfbench

import (
	"encoding/json"
	"fmt"
	"math"
	"reflect"
	"runtime"
	"testing"
	"time"

	"idde/internal/core"
	"idde/internal/experiment"
	"idde/internal/model"
	"idde/internal/rng"
	"idde/internal/shard"
)

// This file is the sharding dimension of the tracked baseline
// (BENCH_shard.json): end-to-end Phase 1 + Phase 2 wall time of the
// geo-sharded solver across the tile ladder versus the global solver on
// the same instances, the rate/latency cost of the boundary
// approximation, the single-tile identity check (Shards=1 must commit
// the exact global strategy), and a zero-alloc guard on the tile games'
// interior hot path (Ledger.Benefit over a restricted tile view).

// SingleTileCapM bounds the instance size at which the single-tile
// sharded solve is still measured: it exists only to witness
// bit-identity with the global path and costs a full global solve, so
// the top rung — where the global solver alone runs for minutes — skips
// it. The cap is recorded in the report so the asymmetry is explicit.
const SingleTileCapM = 4000

// GlobalCapM bounds the instance size at which the global (tiles=0)
// reference solve is still measured. Above it — the M=10⁵ rung — only
// the sharded solver runs: that rung exists precisely because the
// global solver cannot complete there in bench time, so the Speedups
// entries stop at this cap and the record set above it is sharded-only.
const GlobalCapM = 10000

// ShardMinTilesAboveGlobalCap is the smallest tile count measured on
// rungs past GlobalCapM: small tile counts approach the global solver's
// cost and would dominate the suite's wall time without adding a
// datapoint the lower rungs don't already have.
const ShardMinTilesAboveGlobalCap = 8

// ShardScales is the tracked instance ladder for the sharding
// dimension; N tracks M at the paper's ~1:20 ratio like the Phase 1
// ladder. The top rung rides the CSR gain layout: its region grows by
// sqrt(N/125) per axis (the paper's CBD density held constant, see
// perfbench.InstanceScales) because the dense-era matrices at
// N=5000×M=10⁵ would need 8 GB before the first move evaluation.
func ShardScales() []experiment.Params {
	var ps []experiment.Params
	for _, m := range []int{2000, 4000, 10000} {
		ps = append(ps, experiment.Params{N: m / 20, M: m, K: 5, Density: 1.0})
	}
	ps = append(ps, experiment.Params{
		N: 5000, M: 100000, K: 5, Density: 1.0,
		RegionScale: math.Sqrt(5000.0 / 125),
	})
	return ps
}

// ShardTileLadder is the tracked tile-count ladder (the global solver,
// tiles=0, is always measured alongside it).
func ShardTileLadder() []int { return []int{1, 2, 4, 8, 16} }

// ShardRecord is one measured (scale, tile-count) configuration. Each
// solve runs once — the top rung's global solve is far too slow to
// repeat — so WallNs is a single-shot wall clock, and the game stats
// attached to it carry the structural story (where the evals went).
type ShardRecord struct {
	// Name is "ShardSolve/global" or "ShardSolve/tiles=<t>".
	Name string `json:"name"`
	N    int    `json:"n"`
	M    int    `json:"m"`
	K    int    `json:"k"`
	// Tiles is the requested tile count (0 = global solver).
	Tiles int `json:"tiles"`
	// WallNs is the end-to-end Phase 1 + Phase 2 solve time.
	WallNs float64 `json:"wall_ns"`
	// Stage wall times. For sharded records Phase1Ns includes the halo
	// sweeps and Phase2Ns includes the reconcile pass, mirroring how
	// core folds the stages.
	Phase1Ns float64 `json:"phase1_ns,omitempty"`
	Phase2Ns float64 `json:"phase2_ns,omitempty"`
	// Solution quality under the committed strategy.
	AvgRate      float64 `json:"avg_rate"`
	AvgLatencyMs float64 `json:"avg_latency_ms"`
	Replicas     int     `json:"replicas"`
	// Phase 1 dynamics (tile games only for sharded records).
	Updates     int `json:"updates"`
	Evaluations int `json:"evaluations"`
	// Halo-exchange accounting (sharded records with >1 tile).
	SweepRounds       int  `json:"sweep_rounds,omitempty"`
	SweepUpdates      int  `json:"sweep_updates,omitempty"`
	SweepEvaluations  int  `json:"sweep_evaluations,omitempty"`
	SweepSkippedTiles int  `json:"sweep_skipped_tiles,omitempty"`
	HaloConverged     bool `json:"halo_converged,omitempty"`
	HaloUsers         int  `json:"halo_users,omitempty"`
	FrontierServers   int  `json:"frontier_servers,omitempty"`
}

// ShardInstanceLayout records the gain storage a rung's solves ran on
// (see model.LayoutStats); the top rung is only representable sparse.
type ShardInstanceLayout struct {
	Sparse          bool    `json:"sparse"`
	CutoffMeters    float64 `json:"cutoff_meters,omitempty"`
	NNZ             int64   `json:"nnz"`
	Density         float64 `json:"density"`
	Bytes           int64   `json:"bytes"`
	DenseEquivBytes int64   `json:"dense_equiv_bytes"`
}

// ShardReport is the BENCH_shard.json schema.
type ShardReport struct {
	GoVersion      string        `json:"go_version"`
	GOOS           string        `json:"goos"`
	GOARCH         string        `json:"goarch"`
	GOMAXPROCS     int           `json:"gomaxprocs"`
	Seed           uint64        `json:"seed"`
	HaloRounds     int           `json:"halo_rounds"`
	SingleTileCapM int           `json:"single_tile_cap_m"`
	GlobalCapM     int           `json:"global_cap_m"`
	Records        []ShardRecord `json:"records"`
	// InstanceLayouts maps "M=<m>" to the gain layout the rung's solves
	// ran on.
	InstanceLayouts map[string]ShardInstanceLayout `json:"instance_layouts"`
	// Speedups maps "ShardSolve/M=<m>/tiles=<t>" to global-ns over
	// sharded-ns on the same instance.
	Speedups map[string]float64 `json:"speedups"`
	// SingleTileIdentical maps "M=<m>" to whether the Shards=1 solve
	// committed the exact global strategy (allocation, delivery, rate).
	// Any false entry is a regression: the single-tile path must be the
	// global algorithm, not an approximation of it.
	SingleTileIdentical map[string]bool `json:"single_tile_identical"`
	// HotPathAllocs reports testing.AllocsPerRun for the tile games'
	// interior hot path; the CI bench-smoke fails on any nonzero entry.
	HotPathAllocs map[string]float64 `json:"hot_path_allocs"`
}

// JSON renders the report with stable indentation for committing.
func (r *ShardReport) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// ShardRegression returns an error if the single-tile solve diverged
// from the global solver anywhere, or if a guarded hot path allocates;
// cmd/iddebench turns it into a nonzero exit for the CI bench-smoke.
func (r *ShardReport) ShardRegression() error {
	for key, same := range r.SingleTileIdentical {
		if !same {
			return fmt.Errorf("sharded solve at Shards=1 diverged from the global solver at %s", key)
		}
	}
	for k, v := range r.HotPathAllocs {
		if v > 0 {
			return fmt.Errorf("hot path %s allocates (%.2f allocs/op, want 0)", k, v)
		}
	}
	return nil
}

// shardRecordOf maps one core.Solve result onto the record schema.
func shardRecordOf(p experiment.Params, tiles int, wall time.Duration, res *core.Result) ShardRecord {
	name := "ShardSolve/global"
	if tiles > 0 {
		name = fmt.Sprintf("ShardSolve/tiles=%d", tiles)
	}
	rec := ShardRecord{
		Name: name, N: p.N, M: p.M, K: p.K, Tiles: tiles,
		WallNs:       float64(wall.Nanoseconds()),
		Phase1Ns:     float64(res.Phase1Time.Nanoseconds()),
		Phase2Ns:     float64(res.Phase2Time.Nanoseconds()),
		AvgRate:      float64(res.AvgRate),
		AvgLatencyMs: res.AvgLatency.Millis(),
		Replicas:     res.Replicas,
		Updates:      res.Phase1.Updates,
		Evaluations:  res.Phase1.Evaluations,
	}
	if st := res.Shard; st != nil {
		rec.SweepRounds = st.SweepRounds
		rec.SweepUpdates = st.SweepUpdates
		rec.SweepEvaluations = st.SweepEvaluations
		rec.SweepSkippedTiles = st.SweepSkippedTiles
		rec.HaloConverged = st.HaloConverged
		rec.HaloUsers = st.HaloUsers
		rec.FrontierServers = st.FrontierServers
	}
	return rec
}

// RunShard executes the sharding suite over every tracked scale with
// M ≤ maxM (0 = full ladder) and the full tile ladder. Progress lines
// go through logf (may be nil).
func RunShard(seed uint64, maxM int, logf func(format string, args ...any)) (*ShardReport, error) {
	return RunShardScales(ShardScales(), ShardTileLadder(), seed, maxM, logf)
}

// RunShardScales executes the sharding suite over explicit scale and
// tile ladders (tests use tiny instances; the committed baseline uses
// ShardScales and ShardTileLadder).
func RunShardScales(scales []experiment.Params, tiles []int, seed uint64, maxM int, logf func(format string, args ...any)) (*ShardReport, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rep := &ShardReport{
		GoVersion:           runtime.Version(),
		GOOS:                runtime.GOOS,
		GOARCH:              runtime.GOARCH,
		GOMAXPROCS:          runtime.GOMAXPROCS(0),
		Seed:                seed,
		HaloRounds:          shard.DefaultHaloRounds,
		SingleTileCapM:      SingleTileCapM,
		GlobalCapM:          GlobalCapM,
		InstanceLayouts:     map[string]ShardInstanceLayout{},
		Speedups:            map[string]float64{},
		SingleTileIdentical: map[string]bool{},
		HotPathAllocs:       map[string]float64{},
	}

	for _, p := range scales {
		if maxM > 0 && p.M > maxM {
			logf("%-24s N=%-4d M=%-6d skipped (max M=%d)", "ShardSolve", p.N, p.M, maxM)
			continue
		}
		in, err := experiment.BuildInstance(p, seed)
		if err != nil {
			return nil, fmt.Errorf("build instance %v: %w", p, err)
		}
		ls := in.LayoutStats()
		rep.InstanceLayouts[fmt.Sprintf("M=%d", p.M)] = ShardInstanceLayout{
			Sparse: ls.Sparse, CutoffMeters: float64(ls.Cutoff),
			NNZ: ls.NNZ, Density: ls.Density,
			Bytes: ls.Bytes, DenseEquivBytes: ls.DenseEquivBytes,
		}

		var global *core.Result
		var gWall time.Duration
		if p.M <= GlobalCapM {
			start := time.Now()
			global = core.Solve(in, core.DefaultOptions())
			gWall = time.Since(start)
			rep.Records = append(rep.Records, shardRecordOf(p, 0, gWall, global))
			logf("%-24s N=%-4d M=%-6d %10.2fs  rate=%.3f lat=%.2fms evals=%d",
				"ShardSolve/global", p.N, p.M, gWall.Seconds(),
				float64(global.AvgRate), global.AvgLatency.Millis(), global.Phase1.Evaluations)
		} else {
			logf("%-24s N=%-4d M=%-6d skipped (global cap M=%d)",
				"ShardSolve/global", p.N, p.M, GlobalCapM)
		}

		for _, t := range tiles {
			if t == 1 && p.M > SingleTileCapM {
				logf("%-24s N=%-4d M=%-6d skipped (single-tile cap M=%d)",
					"ShardSolve/tiles=1", p.N, p.M, SingleTileCapM)
				continue
			}
			if p.M > GlobalCapM && t < ShardMinTilesAboveGlobalCap {
				logf("%-24s N=%-4d M=%-6d skipped (tiles<%d above global cap)",
					fmt.Sprintf("ShardSolve/tiles=%d", t), p.N, p.M, ShardMinTilesAboveGlobalCap)
				continue
			}
			opt := core.DefaultOptions()
			opt.Shards = t
			start := time.Now()
			res := core.Solve(in, opt)
			wall := time.Since(start)
			rep.Records = append(rep.Records, shardRecordOf(p, t, wall, res))
			speedup := 0.0
			if global != nil {
				speedup = gWall.Seconds() / wall.Seconds()
				rep.Speedups[fmt.Sprintf("ShardSolve/M=%d/tiles=%d", p.M, t)] = speedup
			}
			logf("%-24s N=%-4d M=%-6d %10.2fs  rate=%.3f lat=%.2fms evals=%d sweeps=%d (%.1fx)",
				fmt.Sprintf("ShardSolve/tiles=%d", t), p.N, p.M, wall.Seconds(),
				float64(res.AvgRate), res.AvgLatency.Millis(), res.Phase1.Evaluations,
				res.Shard.SweepRounds, speedup)
			if t == 1 {
				same := reflect.DeepEqual(res.Strategy, global.Strategy) &&
					res.AvgRate == global.AvgRate && res.AvgLatency == global.AvgLatency
				rep.SingleTileIdentical[fmt.Sprintf("M=%d", p.M)] = same
				if !same {
					logf("%-24s N=%-4d M=%-6d DIVERGED from global", "ShardSolve/tiles=1", p.N, p.M)
				}
			}
		}
	}

	// Interior hot-path guard: the tile games spend their time in
	// Ledger.Benefit over a restricted tile view; a warm evaluation must
	// not allocate, or tile solves would churn the heap at scale.
	gp := experiment.Params{N: 24, M: 200, K: 5, Density: 1.0}
	gin, err := experiment.BuildInstance(gp, seed)
	if err != nil {
		return nil, fmt.Errorf("build instance %v: %w", gp, err)
	}
	view := shard.Views(gin, 4)[0]
	s := rng.New(seed * 77)
	l := model.NewLedger(view, model.NewAllocation(view.M()))
	for j := 0; j < view.M(); j++ {
		if vs := view.Top.Coverage[j]; len(vs) > 0 {
			i := vs[s.IntN(len(vs))]
			l.Move(j, model.Alloc{Server: i, Channel: s.IntN(view.Top.Servers[i].Channels)})
		}
	}
	l.WarmAggregates()
	js, as := benefitProbes(view, s, 64)
	var bi int
	rep.HotPathAllocs["Ledger.Benefit/tile-view"] = testing.AllocsPerRun(100, func() {
		_ = l.Benefit(js[bi], as[bi])
		bi = (bi + 1) % len(js)
	})
	for k, v := range rep.HotPathAllocs {
		logf("%-36s %.2f allocs/op", "AllocsPerRun/"+k, v)
	}
	return rep, nil
}

package perfbench

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"idde/internal/experiment"
)

// TestPhase2ScalesTrajectory pins the tracked Phase 2 scale ladder:
// request-heavy instances (M/N = 40, N capped at 100 so the top rung
// deepens the requests-per-cohort ratio) at the Table 2 K and density.
func TestPhase2ScalesTrajectory(t *testing.T) {
	ps := Phase2Scales()
	if len(ps) != 5 || ps[0].M != 400 || ps[4].M != 8000 {
		t.Fatalf("unexpected scale ladder: %v", ps)
	}
	for _, p := range ps {
		if p.K != 5 || p.Density != 1.0 {
			t.Fatalf("K/density drifted from Table 2 defaults: %v", p)
		}
		if p.N < 10 || p.N > 100 {
			t.Fatalf("N outside the [10,100] trajectory band: %v", p)
		}
	}
	if ps[4].N != 100 || ps[3].N != 100 {
		t.Fatalf("top rungs should sit at the N cap: %v", ps)
	}
}

// TestRunPhase2Smoke verifies the Phase 2 measurement plumbing on tiny
// instances — record shape, replica/evaluation stats, the reference cap
// and the speedup map. The full-budget ladder run happens in
// cmd/iddebench -perf2json.
func TestRunPhase2Smoke(t *testing.T) {
	scales := []experiment.Params{
		{N: 10, M: 40, K: 5, Density: 1.0},
		{N: 10, M: 80, K: 5, Density: 1.0},
	}
	rep, err := RunPhase2Scales(scales, time.Millisecond, 2022, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ReferenceCapM != ReferenceCapM {
		t.Fatalf("reference cap not recorded: %+v", rep)
	}
	byKey := map[string]Record{}
	var optimized, reference int
	for _, r := range rep.Records {
		if r.Iters <= 0 || r.NsPerOp <= 0 {
			t.Fatalf("degenerate record %+v", r)
		}
		if r.K != 5 {
			t.Fatalf("Phase 2 record missing K: %+v", r)
		}
		byKey[fmt.Sprintf("%s/M=%d", r.Name, r.M)] = r
		switch r.Name {
		case "SolveDelivery/optimized":
			optimized++
			if r.Replicas <= 0 || r.Evaluations <= 0 {
				t.Fatalf("solve record missing delivery stats: %+v", r)
			}
		case "SolveDelivery/reference":
			reference++
		}
	}
	if optimized != len(scales) || reference != len(scales) {
		t.Fatalf("expected every variant at every sub-cap scale, got optimized=%d reference=%d",
			optimized, reference)
	}
	// All engines commit the same sequence, so the replica counts must
	// agree across variants at each scale.
	for _, p := range scales {
		opt := byKey[fmt.Sprintf("SolveDelivery/optimized/M=%d", p.M)]
		ref := byKey[fmt.Sprintf("SolveDelivery/reference/M=%d", p.M)]
		if opt.Replicas != ref.Replicas {
			t.Fatalf("M=%d: replica counts diverge across variants: %d vs %d",
				p.M, opt.Replicas, ref.Replicas)
		}
		for _, key := range []string{
			fmt.Sprintf("SolveDelivery/M=%d", p.M),
			fmt.Sprintf("LatencyGain/M=%d", p.M),
		} {
			if _, ok := rep.Speedups[key]; !ok {
				t.Fatalf("missing speedup entry %s: %v", key, rep.Speedups)
			}
		}
	}
	b, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if !strings.HasSuffix(string(b), "\n") {
		t.Fatal("committed JSON must end with a newline")
	}
}

// TestPhase2ReferenceCapFlags checks the cap wiring mirrors Phase 1:
// only the literal re-scan reference is capped.
func TestPhase2ReferenceCapFlags(t *testing.T) {
	var refCount int
	for _, v := range phase2Variants() {
		if v.Name == "optimized" && v.Ref {
			t.Fatal("the optimized variant must run at every scale")
		}
		if v.Ref {
			refCount++
		}
	}
	if refCount == 0 {
		t.Fatal("no variant is subject to the reference cap")
	}
}

// Package perfbench is the tracked performance baseline for the Phase 1
// engine (BENCH_phase1.json): a small self-contained measurement
// harness plus the suite that times Ledger.Benefit and core.SolvePhase1
// across instance scales, for the optimized engine (incremental
// interference aggregates + dirty-set scheduling) against the
// literal-Algorithm-1 reference (naive interference + full-scan
// rounds).
//
// The harness deliberately avoids testing.Benchmark so it can run from
// cmd/iddebench with a configurable time budget and attach game stats
// (updates, rounds, evaluations) to each record; `go test -bench` in
// the repo root covers the same ground through the standard tooling.
package perfbench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"idde/internal/core"
	"idde/internal/experiment"
	"idde/internal/game"
	"idde/internal/model"
	"idde/internal/rng"
)

// ReferenceCapM bounds the instance size at which the full-scan/naive
// reference variants are still measured: a full scan at M=10000 costs
// ~rounds×M×|δ_j| naive evaluations (order 10^9 ledger walks per
// solve), which is exactly the regime the optimization exists to avoid.
// The cap is recorded in the report so the asymmetry is explicit.
const ReferenceCapM = 2000

// Record is one measured configuration.
type Record struct {
	// Name identifies the benchmark, e.g. "LedgerBenefit/aggregate".
	Name string `json:"name"`
	// N, M describe the instance scale (density=1.0 throughout). K is
	// recorded by the Phase 2 suite; the Phase 1 suite fixes K=5 and
	// omits it.
	N int `json:"n"`
	M int `json:"m"`
	K int `json:"k,omitempty"`
	// Iters is the number of timed operations.
	Iters int `json:"iters"`
	// NsPerOp is wall-clock per operation (one Benefit evaluation, or
	// one full Phase 1 solve).
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp / BytesPerOp are heap costs per operation.
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// Updates/Rounds/Evaluations carry the game stats of the last solve
	// for Phase 1 records (zero for ledger micro-benches). Updates and
	// Rounds are invariant across engine variants at a given scale;
	// Evaluations is the dirty-set savings metric. The Phase 2 suite
	// reuses Evaluations for oracle Gain calls (the CELF metric).
	Updates     int `json:"updates,omitempty"`
	Rounds      int `json:"rounds,omitempty"`
	Evaluations int `json:"evaluations,omitempty"`
	// Replicas is the committed delivery-decision count of the last
	// solve (Phase 2 records only); invariant across variants at a
	// given scale because all engines commit the same sequence.
	Replicas int `json:"replicas,omitempty"`
	// Workers is the GOMAXPROCS the record was measured under, set only
	// by the Phase 2 multi-core sweep (0 = the process default). The
	// committed sequences are identical across worker counts; only
	// wall-clock moves.
	Workers int `json:"workers,omitempty"`
}

// Report is the BENCH_phase1.json schema.
type Report struct {
	GoVersion     string   `json:"go_version"`
	GOOS          string   `json:"goos"`
	GOARCH        string   `json:"goarch"`
	GOMAXPROCS    int      `json:"gomaxprocs"`
	Seed          uint64   `json:"seed"`
	BudgetPerCase string   `json:"budget_per_case"`
	ReferenceCapM int      `json:"reference_cap_m"`
	Records       []Record `json:"records"`
	// Speedups maps "SolvePhase1/M=<m>" to reference-ns / optimized-ns
	// for every scale where both variants were measured.
	Speedups map[string]float64 `json:"speedups"`
}

// Scales is the tracked instance-size trajectory: N tracks M at the
// paper's ~1:20 server:user ratio, K and density stay at the Table 2
// defaults.
func Scales() []experiment.Params {
	var ps []experiment.Params
	for _, m := range []int{100, 500, 2000, 10000} {
		n := m / 20
		if n < 10 {
			n = 10
		}
		ps = append(ps, experiment.Params{N: n, M: m, K: 5, Density: 1.0})
	}
	return ps
}

// measure times fn — which must perform batch operations per call —
// until budget elapses (at least once), returning iterations, ns/op and
// allocs/op.
func measure(budget time.Duration, batch int, fn func()) (iters int, nsPerOp, allocsPerOp, bytesPerOp float64) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for {
		fn()
		iters++
		if time.Since(start) >= budget {
			break
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	ops := float64(iters * batch)
	nsPerOp = float64(elapsed.Nanoseconds()) / ops
	allocsPerOp = float64(after.Mallocs-before.Mallocs) / ops
	bytesPerOp = float64(after.TotalAlloc-before.TotalAlloc) / ops
	return iters, nsPerOp, allocsPerOp, bytesPerOp
}

// benefitProbes draws a deterministic batch of hypothetical decisions
// for the Benefit micro-bench.
func benefitProbes(in *model.Instance, s *rng.Stream, count int) (js []int, as []model.Alloc) {
	for len(js) < count {
		j := s.IntN(in.M())
		vs := in.Top.Coverage[j]
		if len(vs) == 0 {
			continue
		}
		i := vs[s.IntN(len(vs))]
		js = append(js, j)
		as = append(as, model.Alloc{Server: i, Channel: s.IntN(in.Top.Servers[i].Channels)})
	}
	return js, as
}

// phase1Variants enumerates the engine configurations the baseline
// tracks. "optimized" is the production default; "reference" is the
// literal Algorithm 1; the middle variants isolate each optimization.
func phase1Variants() []struct {
	Name string
	Opt  core.Options
	Ref  bool // subject to ReferenceCapM
} {
	fullScan := func(naive bool) core.Options {
		g := game.DefaultOptions()
		g.FullScan = true
		return core.Options{Game: g, NaiveInterference: naive}
	}
	return []struct {
		Name string
		Opt  core.Options
		Ref  bool
	}{
		{Name: "optimized", Opt: core.DefaultOptions()},
		{Name: "fullscan+aggregate", Opt: fullScan(false), Ref: true},
		{Name: "reference", Opt: core.ReferenceOptions(), Ref: true},
	}
}

// Run executes the suite over the tracked Scales ladder with the given
// per-case time budget. Progress lines go through logf (may be nil).
func Run(budget time.Duration, seed uint64, logf func(format string, args ...any)) (*Report, error) {
	return RunScales(Scales(), budget, seed, logf)
}

// RunScales executes the suite over an explicit scale list (tests use
// tiny instances; the committed baseline uses Scales).
func RunScales(scales []experiment.Params, budget time.Duration, seed uint64, logf func(format string, args ...any)) (*Report, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rep := &Report{
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Seed:          seed,
		BudgetPerCase: budget.String(),
		ReferenceCapM: ReferenceCapM,
		Speedups:      map[string]float64{},
	}

	for _, p := range scales {
		in, err := experiment.BuildInstance(p, seed)
		if err != nil {
			return nil, fmt.Errorf("build instance %v: %w", p, err)
		}

		// Ledger.Benefit micro-bench: aggregate vs naive evaluator over
		// an identical probe batch on an identical random profile.
		const batch = 4096
		s := rng.New(seed * 77)
		alloc := model.NewAllocation(in.M())
		l := model.NewLedger(in, alloc)
		for j := 0; j < in.M(); j++ {
			if vs := in.Top.Coverage[j]; len(vs) > 0 {
				i := vs[s.IntN(len(vs))]
				l.Move(j, model.Alloc{Server: i, Channel: s.IntN(in.Top.Servers[i].Channels)})
			}
		}
		js, as := benefitProbes(in, s, batch)
		for _, naive := range []bool{false, true} {
			name := "LedgerBenefit/aggregate"
			if naive {
				name = "LedgerBenefit/naive"
			}
			l.SetNaiveInterference(naive)
			probe := func() {
				for bi := range js {
					_ = l.Benefit(js[bi], as[bi])
				}
			}
			probe() // warm-up: materialize aggregate rows outside the timer
			iters, ns, ac, bc := measure(budget/4, batch, probe)
			rep.Records = append(rep.Records, Record{
				Name: name, N: p.N, M: p.M,
				Iters: iters * batch, NsPerOp: ns, AllocsPerOp: ac, BytesPerOp: bc,
			})
			logf("%-28s N=%-4d M=%-6d %12.1f ns/op", name, p.N, p.M, ns)
		}
		l.SetNaiveInterference(false)

		// Phase 1 solve: one op = one full best-response game from the
		// empty profile.
		for _, v := range phase1Variants() {
			if v.Ref && p.M > ReferenceCapM {
				logf("%-28s N=%-4d M=%-6d skipped (reference cap M=%d)",
					"SolvePhase1/"+v.Name, p.N, p.M, ReferenceCapM)
				continue
			}
			var st game.Stats
			iters, ns, ac, bc := measure(budget, 1, func() {
				_, st = core.SolvePhase1(in, v.Opt)
			})
			rep.Records = append(rep.Records, Record{
				Name: "SolvePhase1/" + v.Name, N: p.N, M: p.M,
				Iters: iters, NsPerOp: ns, AllocsPerOp: ac, BytesPerOp: bc,
				Updates: st.Updates, Rounds: st.Rounds, Evaluations: st.Evaluations,
			})
			logf("%-28s N=%-4d M=%-6d %12.1f ns/op  (updates=%d rounds=%d evals=%d)",
				"SolvePhase1/"+v.Name, p.N, p.M, ns, st.Updates, st.Rounds, st.Evaluations)
		}
	}

	// Headline speedups: reference vs optimized wherever both ran.
	byKey := map[string]Record{}
	for _, r := range rep.Records {
		byKey[fmt.Sprintf("%s/M=%d", r.Name, r.M)] = r
	}
	for _, p := range scales {
		ref, okR := byKey[fmt.Sprintf("SolvePhase1/reference/M=%d", p.M)]
		opt, okO := byKey[fmt.Sprintf("SolvePhase1/optimized/M=%d", p.M)]
		if okR && okO && opt.NsPerOp > 0 {
			rep.Speedups[fmt.Sprintf("SolvePhase1/M=%d", p.M)] = ref.NsPerOp / opt.NsPerOp
		}
		refB, okR := byKey[fmt.Sprintf("LedgerBenefit/naive/M=%d", p.M)]
		optB, okO := byKey[fmt.Sprintf("LedgerBenefit/aggregate/M=%d", p.M)]
		if okR && okO && optB.NsPerOp > 0 {
			rep.Speedups[fmt.Sprintf("LedgerBenefit/M=%d", p.M)] = refB.NsPerOp / optB.NsPerOp
		}
	}
	return rep, nil
}

// JSON renders the report with stable indentation for committing.
func (r *Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

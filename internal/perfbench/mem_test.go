package perfbench

import (
	"encoding/json"
	"math"
	"testing"
	"time"
)

// TestInstanceScalesTrajectory pins the instance-layout ladder: the
// paper's 1:20 server:user ratio, the M=10⁵ top rung, and the
// density-preserving sqrt(N/125) region growth.
func TestInstanceScalesTrajectory(t *testing.T) {
	ps := InstanceScales()
	if len(ps) != 3 || ps[0].M != 10000 || ps[2].M != 100000 {
		t.Fatalf("unexpected instance-layout ladder: %v", ps)
	}
	for _, p := range ps {
		if p.N != p.M/20 || p.K != 5 || p.Density != 1.0 {
			t.Fatalf("instance rung drifted from ladder conventions: %v", p)
		}
		want := math.Sqrt(float64(p.N) / 125)
		if math.Abs(p.RegionScale-want) > 1e-12 {
			t.Fatalf("rung N=%d region scale %v, want sqrt(N/125)=%v", p.N, p.RegionScale, want)
		}
	}
}

// TestRunMemSparseDifferentialSmoke runs the memory suite with every
// ladder capped out, leaving exactly the pieces the CI bench-smoke
// gates on: the sparse-vs-dense solve differential and the zero-alloc
// hot-path guards. The full-budget ladder run happens in cmd/iddebench
// -memjson.
func TestRunMemSparseDifferentialSmoke(t *testing.T) {
	rep, err := RunMem(time.Millisecond, 2022, 1, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.SparseDenseIdentical) != 2 {
		t.Fatalf("expected default + tight cutoff differential entries, got %v", rep.SparseDenseIdentical)
	}
	for key, same := range rep.SparseDenseIdentical {
		if !same {
			t.Fatalf("sparse solve diverged from the dense reference at %s", key)
		}
	}
	if v, ok := rep.HotPathAllocs["GainRow.At"]; !ok || v != 0 {
		t.Fatalf("sparse gain-read guard missing or allocating: %v (present=%v)", v, ok)
	}
	if err := rep.InstanceRegression(); err != nil {
		t.Fatalf("unexpected instance regression: %v", err)
	}
	if err := rep.HotPathRegression(); err != nil {
		t.Fatalf("unexpected hot-path regression: %v", err)
	}
	b, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back MemReport
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
}

// TestInstanceRegressionDetection: a diverged differential, a densified
// scaling rung, and a top rung below the footprint gate must each turn
// into an error for the CI bench-smoke.
func TestInstanceRegressionDetection(t *testing.T) {
	rep := &MemReport{
		SparseDenseIdentical: map[string]bool{"M=800/default-cutoff": true},
		Reductions:           map[string]float64{"InstanceBytes/M=100000": 20},
		Records: []MemRecord{
			{Name: "InstanceLayout", N: 5000, M: 100000, SparseLayout: true},
		},
	}
	if err := rep.InstanceRegression(); err != nil {
		t.Fatalf("clean report flagged: %v", err)
	}
	rep.SparseDenseIdentical["M=800/default-cutoff"] = false
	if err := rep.InstanceRegression(); err == nil {
		t.Fatal("differential divergence not flagged")
	}
	rep.SparseDenseIdentical["M=800/default-cutoff"] = true
	rep.Records[0].SparseLayout = false
	if err := rep.InstanceRegression(); err == nil {
		t.Fatal("densified scaling rung not flagged")
	}
	rep.Records[0].SparseLayout = true
	rep.Reductions["InstanceBytes/M=100000"] = 3
	if err := rep.InstanceRegression(); err == nil {
		t.Fatal("footprint below the gate not flagged")
	}
}

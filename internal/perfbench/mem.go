package perfbench

import (
	"encoding/json"
	"fmt"
	"math"
	"reflect"
	"runtime"
	"testing"
	"time"

	"idde/internal/core"
	"idde/internal/experiment"
	"idde/internal/model"
	"idde/internal/rng"
	"idde/internal/units"
)

// This file is the memory/allocation dimension of the tracked baseline
// (BENCH_mem.json): it measures the resident footprint of the Phase 1
// interference aggregate rows with and without a row budget, the heap
// allocations of a full Phase 2 solve for the eager and Commit-batching
// oracles, the CSR gain-layout footprint on the region-scaled instance
// ladder (with a sparse-vs-dense full-solve differential), and pins the
// guarded hot paths — Ledger benefit evaluation, DeliveryOracle.GainOf
// and the sparse GainRow reads — at zero steady-state allocations via
// testing.AllocsPerRun.

// PrevSolveAllocsM4000 is the allocs-per-solve of the optimized Phase 2
// engine at the M=4000 rung in the previous committed baseline
// (BENCH_phase2.json as of the Phase 2 perf PR: 37 allocs/op at every
// rung, dominated by the per-item cohort slices of the eager oracle
// constructor). The Reductions entry divides it by the current count.
const PrevSolveAllocsM4000 = 37

// MemScaleNs is the tracked receiver-count ladder for the aggregate-row
// records; M tracks N at the 1:10 ratio of the Phase 1 density probe.
func MemScaleNs() []int { return []int{200, 500, 1000} }

// InstanceScales is the tracked ladder for the instance gain-layout
// records: M tracks N at the paper's ~1:20 ratio and the region grows
// by sqrt(N/125) per axis — the paper's 125-server CBD density held
// constant as the deployment scales out — so coverage disks thin out
// against the map and the CSR rows stay sparse. The top rung is the
// M=10⁵ target the dense [][]float64 era could not represent (its
// gain+distance matrices alone would be 8 GB).
func InstanceScales() []experiment.Params {
	var ps []experiment.Params
	for _, n := range []int{500, 1000, 5000} {
		ps = append(ps, experiment.Params{
			N: n, M: 20 * n, K: 5, Density: 1.0,
			RegionScale: math.Sqrt(float64(n) / 125),
		})
	}
	return ps
}

// MinInstanceBytesReduction is the gate on the top InstanceScales rung:
// the CSR layout must hold the gain storage in at least this many times
// fewer bytes than the dense-era matrices, or InstanceRegression fails
// the bench-smoke.
const MinInstanceBytesReduction = 5.0

// memRowBudget is the tracked resident-row budget at receiver count n:
// an eighth of the fleet, the regime the ROADMAP names for N≥1000
// (rows are O(N·ΣK) per receiver; bounding residency caps the
// quadratic term while the fold fallback keeps results bit-identical).
// A resident row costs what a dense row costs, so the reduction tracks
// everRows/budget minus the persistent co-source bitset overhead —
// n/8 lands ~7× at N=1000.
func memRowBudget(n int) int {
	b := n / 8
	if b < 8 {
		b = 8
	}
	return b
}

// MemRecord is one measured memory configuration.
type MemRecord struct {
	// Name identifies the record, e.g. "AggRows/budget" or
	// "SolveDelivery/batch".
	Name string `json:"name"`
	N    int    `json:"n"`
	M    int    `json:"m"`
	K    int    `json:"k,omitempty"`
	// Budget is the aggregate-row budget in force (0 = unlimited).
	Budget int `json:"budget,omitempty"`
	// Aggregate-row accounting (AggRows records), from
	// model.Ledger.AggMemStats after a fill + warm + probe-sweep
	// workload.
	ResidentRows    int   `json:"resident_rows,omitempty"`
	EverBuiltRows   int   `json:"ever_built_rows,omitempty"`
	ResidentBytes   int64 `json:"resident_bytes,omitempty"`
	ArenaBytes      int64 `json:"arena_bytes,omitempty"`
	DenseEquivBytes int64 `json:"dense_equiv_bytes,omitempty"`
	Evictions       int64 `json:"evictions,omitempty"`
	FallbackEvals   int64 `json:"fallback_evals,omitempty"`
	// NsPerOp times one Benefit probe (AggRows records: the price of
	// budget-driven faults and fold fallbacks versus warm rows) or one
	// full Phase 2 solve.
	NsPerOp float64 `json:"ns_per_op,omitempty"`
	// Heap cost per operation (SolveDelivery records).
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	Replicas    int     `json:"replicas,omitempty"`
	// Instance gain-layout accounting (InstanceLayout records), from
	// model.Instance.LayoutStats on the region-scaled ladder; NsPerOp
	// times the full topology+workload+CSR build there, and
	// DenseEquivBytes is what the dense era held for the same instance.
	SparseLayout bool    `json:"sparse_layout,omitempty"`
	CutoffMeters float64 `json:"cutoff_meters,omitempty"`
	NNZ          int64   `json:"nnz,omitempty"`
	GainDensity  float64 `json:"gain_density,omitempty"`
	LayoutBytes  int64   `json:"layout_bytes,omitempty"`
}

// MemReport is the BENCH_mem.json schema.
type MemReport struct {
	GoVersion     string      `json:"go_version"`
	GOOS          string      `json:"goos"`
	GOARCH        string      `json:"goarch"`
	GOMAXPROCS    int         `json:"gomaxprocs"`
	Seed          uint64      `json:"seed"`
	BudgetPerCase string      `json:"budget_per_case"`
	Records       []MemRecord `json:"records"`
	// HotPathAllocs reports testing.AllocsPerRun for the guarded
	// steady-state paths; the CI bench-smoke fails when any entry is
	// above zero.
	HotPathAllocs map[string]float64 `json:"hot_path_allocs"`
	// Reductions maps "AggResidentBytes/N=<n>" to the unbounded dense
	// footprint over the budgeted resident bytes,
	// "SolveDeliveryAllocs/M=4000[/batch]" to the previous baseline's
	// allocs-per-solve (PrevSolveAllocsM4000) over the current count,
	// and "InstanceBytes/M=<m>" to the dense-era gain+distance footprint
	// over the CSR layout's bytes at each InstanceScales rung.
	Reductions map[string]float64 `json:"reductions"`
	// SparseDenseIdentical maps "M=<m>/<variant>" to whether a full
	// solve on the CSR layout committed the exact strategy of the dense
	// reference (allocation, delivery, rate, latency). The tight-cutoff
	// variant pushes every interference read through the recompute
	// fallback. Any false entry is a regression: the layouts are
	// read-for-read identical by construction.
	SparseDenseIdentical map[string]bool `json:"sparse_dense_identical"`
}

// JSON renders the report with stable indentation for committing.
func (r *MemReport) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// memFill assigns every coverable user a deterministic random decision.
func memFill(in *model.Instance, l *model.Ledger, s *rng.Stream) {
	for j := 0; j < in.M(); j++ {
		if vs := in.Top.Coverage[j]; len(vs) > 0 {
			i := vs[s.IntN(len(vs))]
			l.Move(j, model.Alloc{Server: i, Channel: s.IntN(in.Top.Servers[i].Channels)})
		}
	}
}

// RunMem executes the memory suite: aggregate-row records for every
// tracked N ≤ maxN (0 = no cap), Phase 2 solve-allocation records at
// M ∈ {400, 4000} with M ≤ maxM (0 = no cap), instance gain-layout
// records for every InstanceScales rung with M ≤ instMaxM (0 = no cap;
// the CI smoke caps out the M=10⁵ rung), the sparse-vs-dense solve
// differential, and the zero-alloc hot-path guards. budget is the
// per-case time budget of the solve records.
func RunMem(budget time.Duration, seed uint64, maxN, maxM, instMaxM int, logf func(format string, args ...any)) (*MemReport, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rep := &MemReport{
		GoVersion:            runtime.Version(),
		GOOS:                 runtime.GOOS,
		GOARCH:               runtime.GOARCH,
		GOMAXPROCS:           runtime.GOMAXPROCS(0),
		Seed:                 seed,
		BudgetPerCase:        budget.String(),
		HotPathAllocs:        map[string]float64{},
		Reductions:           map[string]float64{},
		SparseDenseIdentical: map[string]bool{},
	}

	// Aggregate-row residency: for each N, run the same workload — fill
	// a random profile, warm the rows, sweep Benefit probes — once
	// unbounded (the pre-budget behaviour: every ever-probed receiver
	// stays resident) and once under the tracked budget (faults,
	// second-chance evictions and fold fallbacks engaged).
	const probeBatch = 8192
	for _, n := range MemScaleNs() {
		if maxN > 0 && n > maxN {
			logf("%-28s N=%-5d skipped (max N=%d)", "AggRows", n, maxN)
			continue
		}
		p := experiment.Params{N: n, M: 10 * n, K: 5, Density: 1.0}
		in, err := experiment.BuildInstance(p, seed)
		if err != nil {
			return nil, fmt.Errorf("build instance %v: %w", p, err)
		}
		var unbounded model.AggMemStats
		for _, b := range []int{0, memRowBudget(n)} {
			name := "AggRows/unbounded"
			if b > 0 {
				name = "AggRows/budget"
			}
			s := rng.New(seed * 77)
			l := model.NewLedger(in, model.NewAllocation(in.M()))
			if b > 0 {
				l.SetAggRowBudget(b)
			}
			memFill(in, l, s)
			l.WarmAggregates()
			js, as := benefitProbes(in, s, probeBatch)
			start := time.Now()
			for bi := range js {
				_ = l.Benefit(js[bi], as[bi])
			}
			ns := float64(time.Since(start).Nanoseconds()) / probeBatch
			st := l.AggMemStats()
			if b == 0 {
				unbounded = st
			}
			rep.Records = append(rep.Records, MemRecord{
				Name: name, N: p.N, M: p.M, K: p.K, Budget: b,
				ResidentRows: st.ResidentRows, EverBuiltRows: st.EverBuiltRows,
				ResidentBytes: st.InUseBytes, ArenaBytes: st.ArenaBytes,
				DenseEquivBytes: st.DenseEquivBytes,
				Evictions:       st.Evictions, FallbackEvals: st.FallbackEvals,
				NsPerOp: ns,
			})
			logf("%-28s N=%-5d budget=%-5d resident=%d/%d  %.2f MB (dense-equiv %.2f MB)  %.0f ns/probe",
				name, n, b, st.ResidentRows, st.EverBuiltRows,
				float64(st.InUseBytes)/1e6, float64(st.DenseEquivBytes)/1e6, ns)
			if b > 0 && st.InUseBytes > 0 {
				// The headline: what the unbounded layout holds for the
				// same workload over what stays resident under budget.
				rep.Reductions[fmt.Sprintf("AggResidentBytes/N=%d", n)] =
					float64(unbounded.DenseEquivBytes) / float64(st.InUseBytes)
			}
		}
	}

	// Phase 2 solve allocations: the eager flat-packed cohort oracle and
	// the Commit-batching oracle against the previous baseline's
	// constructor-dominated count.
	for _, m := range []int{400, 4000} {
		if maxM > 0 && m > maxM {
			logf("%-28s M=%-5d skipped (max M=%d)", "SolveDelivery", m, maxM)
			continue
		}
		n := m / 40
		if n < 10 {
			n = 10
		}
		p := experiment.Params{N: n, M: m, K: 5, Density: 1.0}
		in, err := experiment.BuildInstance(p, seed)
		if err != nil {
			return nil, fmt.Errorf("build instance %v: %w", p, err)
		}
		alloc, _ := core.SolvePhase1(in, core.DefaultOptions())
		for _, batch := range []bool{false, true} {
			name := "SolveDelivery/optimized"
			opt := core.Options{}
			if batch {
				name = "SolveDelivery/batch"
				opt.CohortBatch = true
			}
			var replicas int
			iters, ns, ac, bc := measure(budget, 1, func() {
				_, pres := core.SolveDeliveryOpt(in, alloc, opt)
				replicas = len(pres.Chosen)
			})
			_ = iters
			rep.Records = append(rep.Records, MemRecord{
				Name: name, N: p.N, M: p.M, K: p.K,
				NsPerOp: ns, AllocsPerOp: ac, BytesPerOp: bc, Replicas: replicas,
			})
			logf("%-28s N=%-4d M=%-6d %10.1f allocs/op  %12.1f B/op", name, p.N, p.M, ac, bc)
			if m == 4000 && ac > 0 {
				key := "SolveDeliveryAllocs/M=4000"
				if batch {
					key += "/batch"
				}
				rep.Reductions[key] = PrevSolveAllocsM4000 / ac
			}
		}
	}

	// Instance gain-layout ladder: build the region-scaled rungs and
	// record the CSR footprint against the dense-era matrices. Build
	// only — solve wall times at these scales are the sharding
	// dimension's story (BENCH_shard.json).
	for _, p := range InstanceScales() {
		if instMaxM > 0 && p.M > instMaxM {
			logf("%-28s N=%-5d M=%-6d skipped (max M=%d)", "InstanceLayout", p.N, p.M, instMaxM)
			continue
		}
		start := time.Now()
		in, err := experiment.BuildInstance(p, seed)
		if err != nil {
			return nil, fmt.Errorf("build instance %v: %w", p, err)
		}
		buildNs := float64(time.Since(start).Nanoseconds())
		st := in.LayoutStats()
		rep.Records = append(rep.Records, MemRecord{
			Name: "InstanceLayout", N: p.N, M: p.M, K: p.K,
			SparseLayout: st.Sparse, CutoffMeters: float64(st.Cutoff),
			NNZ: st.NNZ, GainDensity: st.Density,
			LayoutBytes: st.Bytes, DenseEquivBytes: st.DenseEquivBytes,
			NsPerOp: buildNs,
		})
		red := 0.0
		if st.Bytes > 0 {
			red = float64(st.DenseEquivBytes) / float64(st.Bytes)
			rep.Reductions[fmt.Sprintf("InstanceBytes/M=%d", p.M)] = red
		}
		logf("%-28s N=%-5d M=%-6d %8.2f MB (dense-equiv %8.2f MB, %5.1fx)  density %.3f  build %.2fs",
			"InstanceLayout", p.N, p.M, float64(st.Bytes)/1e6,
			float64(st.DenseEquivBytes)/1e6, red, st.Density, buildNs/1e9)
	}

	// Sparse/dense differential: a full solve on the CSR layout — at the
	// default cutoff and at the tightest legal one, where every
	// interference read goes through the recompute fallback — must
	// commit the exact strategy of the dense reference.
	dp := experiment.Params{N: 40, M: 800, K: 5, Density: 1.0, RegionScale: 2}
	din, err := experiment.BuildInstance(dp, seed)
	if err != nil {
		return nil, fmt.Errorf("build instance %v: %w", dp, err)
	}
	dres := core.Solve(din.Densified(), core.DefaultOptions())
	for _, v := range []struct {
		name   string
		cutoff units.Meters
	}{
		{"default-cutoff", 0},
		{"tight-cutoff", din.Top.MaxRadius()},
	} {
		sp, err := model.NewSparse(din.Top, din.Wl, din.Radio, v.cutoff)
		if err != nil {
			return nil, fmt.Errorf("sparse instance %v (%s): %w", dp, v.name, err)
		}
		sres := core.Solve(sp, core.DefaultOptions())
		same := reflect.DeepEqual(sres.Strategy, dres.Strategy) &&
			sres.AvgRate == dres.AvgRate && sres.AvgLatency == dres.AvgLatency
		key := fmt.Sprintf("M=%d/%s", dp.M, v.name)
		rep.SparseDenseIdentical[key] = same
		verdict := "identical"
		if !same {
			verdict = "DIVERGED"
		}
		logf("%-28s %s sparse vs dense solve: %s", "SparseDenseDifferential", key, verdict)
	}

	// Hot-path zero-alloc guards on a small warm instance. These mirror
	// the tier-1 tests; the CI bench-smoke fails on any nonzero entry.
	gp := experiment.Params{N: 20, M: 150, K: 6, Density: 1.0}
	gin, err := experiment.BuildInstance(gp, seed)
	if err != nil {
		return nil, fmt.Errorf("build instance %v: %w", gp, err)
	}
	s := rng.New(seed * 77)
	gl := model.NewLedger(gin, model.NewAllocation(gin.M()))
	memFill(gin, gl, s)
	gl.WarmAggregates()
	js, as := benefitProbes(gin, s, 64)
	var bi int
	rep.HotPathAllocs["Ledger.Benefit"] = testing.AllocsPerRun(100, func() {
		_ = gl.Benefit(js[bi], as[bi])
		bi = (bi + 1) % len(js)
	})
	galloc := gl.Alloc()
	is, ks := gainProbes(gin, s, 64)
	cohort := model.NewCohortLatencyState(gin, galloc)
	var gi int
	rep.HotPathAllocs["CohortLatencyState.GainOf"] = testing.AllocsPerRun(100, func() {
		_ = cohort.GainOf(is[gi], ks[gi])
		gi = (gi + 1) % len(is)
	})
	batch := model.NewBatchCohortLatencyState(gin, galloc)
	gi = 0
	rep.HotPathAllocs["BatchCohortLatencyState.GainOf"] = testing.AllocsPerRun(100, func() {
		_ = batch.GainOf(is[gi], ks[gi])
		gi = (gi + 1) % len(is)
	})
	// Sparse gain reads: obtaining a row, a binary-searched in-support
	// read, and the out-of-support recompute fallback must all stay off
	// the heap, or Phase 1's interference loops would churn at scale.
	// The tight cutoff keeps the fallback reachable on the compact map.
	sp, err := model.NewSparse(gin.Top, gin.Wl, gin.Radio, gin.Top.MaxRadius())
	if err != nil {
		return nil, fmt.Errorf("sparse guard instance %v: %w", gp, err)
	}
	cols, _ := sp.GainRow(0).Support()
	inSupport, outSupport := 0, 0
	if len(cols) > 0 {
		inSupport = int(cols[len(cols)/2])
	}
	seen := make([]bool, sp.M())
	for _, c := range cols {
		seen[c] = true
	}
	for j := range seen {
		if !seen[j] {
			outSupport = j
			break
		}
	}
	rep.HotPathAllocs["GainRow.At"] = testing.AllocsPerRun(100, func() {
		r := sp.GainRow(0)
		_ = r.At(inSupport)
		_ = r.At(outSupport)
	})
	for k, v := range rep.HotPathAllocs {
		logf("%-36s %.2f allocs/op", "AllocsPerRun/"+k, v)
	}
	return rep, nil
}

// InstanceRegression returns an error when the sparse instance layout
// regressed: a differential solve diverged from the dense reference, a
// scaling rung fell back to the dense layout, or the top rung's
// footprint reduction dropped below MinInstanceBytesReduction. Rungs
// skipped by the instMaxM cap are not judged, so the CI smoke gates
// only what it measured.
func (r *MemReport) InstanceRegression() error {
	for key, same := range r.SparseDenseIdentical {
		if !same {
			return fmt.Errorf("sparse solve diverged from the dense reference at %s", key)
		}
	}
	for _, rec := range r.Records {
		if rec.Name != "InstanceLayout" {
			continue
		}
		if !rec.SparseLayout {
			return fmt.Errorf("scaling rung N=%d M=%d fell back to the dense gain layout", rec.N, rec.M)
		}
		if red := r.Reductions[fmt.Sprintf("InstanceBytes/M=%d", rec.M)]; rec.M >= 100000 && red < MinInstanceBytesReduction {
			return fmt.Errorf("instance gain bytes at M=%d reduced only %.1fx over dense (want ≥%.0fx)",
				rec.M, red, MinInstanceBytesReduction)
		}
	}
	return nil
}

// HotPathRegression returns an error naming every guarded hot path
// whose steady state allocates; cmd/iddebench turns it into a nonzero
// exit so the CI bench-smoke fails on regressions.
func (r *MemReport) HotPathRegression() error {
	for k, v := range r.HotPathAllocs {
		if v > 0 {
			return fmt.Errorf("hot path %s allocates (%.2f allocs/op, want 0)", k, v)
		}
	}
	return nil
}

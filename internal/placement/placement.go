// Package placement implements budgeted greedy maximization for data
// delivery profiles: the naive argmax loop of Algorithm 1 Phase 2
// (Eq. 17), an accelerated lazy-greedy (CELF-style) variant that
// exploits the submodularity of latency reduction, and an exhaustive
// optimal search for tiny instances used to verify the Theorem 6/7
// approximation bounds empirically.
//
// The oracle abstraction decouples the greedy from the IDDE latency
// model, so the CDP baseline and the core algorithm share one engine.
package placement

import (
	"math"
	"runtime"
	"sync"

	"idde/internal/obs"
)

// Candidate identifies a delivery decision σ_{i,k}: put item Item on
// server Server.
type Candidate struct {
	Server, Item int
}

// Oracle exposes the marginal structure of a placement problem.
// Gains must be monotone non-increasing as decisions commit
// (submodularity) for LazyGreedy to match Greedy. When the parallel
// seed scan is enabled (Options.Parallel), Gain, Cost and Feasible must
// additionally be safe for concurrent invocation while no Commit is in
// flight — true for read-only evaluators like the model latency states.
type Oracle interface {
	// Gain reports the total objective reduction of committing c now.
	Gain(c Candidate) float64
	// Cost reports the storage consumed by c (s_k).
	Cost(c Candidate) float64
	// Feasible reports whether c currently fits (Eq. 6). Feasibility
	// must be monotone: once infeasible, always infeasible.
	Feasible(c Candidate) bool
	// Commit applies c and returns the realized gain.
	Commit(c Candidate) float64
}

// Result summarizes a greedy run.
type Result struct {
	Chosen []Candidate
	// TotalGain is the realized objective reduction ΔL(σ).
	TotalGain float64
	// Evaluations counts oracle Gain calls (the CELF speedup metric).
	Evaluations int
}

// DefaultParallelThreshold is the candidate count below which the
// parallel seed scan is not worth the goroutine fan-out.
const DefaultParallelThreshold = 512

// Options tunes the greedy engines. The zero value is the historical
// behaviour (sequential seeding); embedders replace an unset zero value
// with DefaultOptions (see Set).
type Options struct {
	// Parallel enables the concurrent LazyGreedy seed scan. The initial
	// gains are evaluated against the empty delivery profile, so they
	// are commit-independent; workers fan out over disjoint candidate
	// ranges and the results are merged back in candidate order, making
	// the seeded heap — and therefore the committed sequence —
	// bit-identical to the sequential scan. Requires an Oracle whose
	// read methods tolerate concurrent calls (see Oracle).
	Parallel bool
	// ParallelThreshold is the minimum candidate count before the
	// parallel scan kicks in; 0 means DefaultParallelThreshold.
	ParallelThreshold int
	// ItemLocalGains declares that a Commit only changes the gains of
	// candidates sharing its Item — true for the IDDE delivery oracles,
	// whose cohorts are partitioned by item (feasibility may still
	// change across items; it is re-checked at every pop). LazyGreedy
	// then tracks staleness per item instead of globally, skipping
	// refresh evaluations whose result is provably the cached ratio.
	// The pop — and therefore commit — sequence is bit-identical; only
	// Result.Evaluations drops (the same argument as the game engine's
	// dirty-set scheduler).
	ItemLocalGains bool
	// MaxCommits caps the number of committed decisions (0 =
	// unlimited). The greedy stops as soon as the cap is reached; the
	// committed prefix is identical to the uncapped run's first
	// MaxCommits decisions. The sharded solver's reconcile pass uses it
	// to bound the final global re-commit sweep.
	MaxCommits int
	// Obs receives the engine's telemetry: per-commit trace events
	// (when a tracer is attached), a commit-gain histogram, and the
	// final Result cross-wired into counters. nil disables all of it;
	// the committed sequence and Result are identical either way.
	// Embedders that resolve a zero-value Options to defaults
	// (core.Solve) inject the scope after resolution, mirroring
	// game.Options.Obs.
	Obs *obs.Scope
	// Set marks the Options as explicitly configured, shielding an
	// intentionally all-zero configuration from default replacement by
	// embedders (mirrors game.Options.Set).
	Set bool
}

// NewOptions marks o as explicitly configured.
func NewOptions(o Options) Options {
	o.Set = true
	return o
}

// DefaultOptions returns the configuration used by IDDE-G's Phase 2.
func DefaultOptions() Options {
	return Options{Parallel: true, Set: true}
}

// Greedy runs the literal Algorithm 1 Phase 2 loop: every round,
// re-evaluate every remaining feasible candidate and commit the one
// with the highest gain-per-cost ratio; stop when nothing feasible has
// positive gain. Committed candidates are swap-removed from the working
// set (no tombstones to re-scan) and infeasible candidates are dropped
// permanently (the Oracle contract makes infeasibility monotone); exact
// ratio ties are broken by original candidate index, so the committed
// sequence is independent of the resulting scan order and identical to
// the historical tombstone loop and to LazyGreedy.
func Greedy(cands []Candidate, o Oracle) Result {
	return GreedyOpt(cands, o, Options{})
}

// GreedyOpt is Greedy with an Options surface; the naive engine ignores
// every knob except Obs (the re-scan loop is inherently sequential),
// which lets the reference path emit the same telemetry as LazyGreedy.
func GreedyOpt(cands []Candidate, o Oracle, opt Options) Result {
	res := Result{Chosen: make([]Candidate, 0, len(cands))}
	remaining := append([]Candidate(nil), cands...)
	orig := make([]int, len(cands))
	for idx := range orig {
		orig[idx] = idx
	}
	for {
		bestIdx, bestOrig := -1, -1
		bestRatio := 0.0
		w := 0
		for idx := 0; idx < len(remaining); idx++ {
			c := remaining[idx]
			if !o.Feasible(c) {
				continue // capacity shrank; gone forever
			}
			remaining[w], orig[w] = c, orig[idx]
			g := o.Gain(c)
			res.Evaluations++
			if g > 0 {
				cost := o.Cost(c)
				ratio := g / math.Max(cost, 1e-12)
				if ratio > bestRatio || (ratio == bestRatio && bestIdx >= 0 && orig[w] < bestOrig) {
					bestRatio, bestIdx, bestOrig = ratio, w, orig[w]
				}
			}
			w++
		}
		remaining, orig = remaining[:w], orig[:w]
		if bestIdx < 0 {
			publishResult(opt.Obs, &res)
			return res
		}
		c := remaining[bestIdx]
		realized := o.Commit(c)
		res.TotalGain += realized
		res.Chosen = append(res.Chosen, c)
		traceCommit(opt.Obs, o, &res, c, realized, bestRatio)
		if opt.MaxCommits > 0 && len(res.Chosen) >= opt.MaxCommits {
			publishResult(opt.Obs, &res)
			return res
		}
		last := len(remaining) - 1
		remaining[bestIdx], orig[bestIdx] = remaining[last], orig[last]
		remaining, orig = remaining[:last], orig[:last]
	}
}

// LazyGreedy runs the same policy with a lazy priority queue and the
// zero-value Options (sequential seeding); see LazyGreedyOpt.
func LazyGreedy(cands []Candidate, o Oracle) Result {
	return LazyGreedyOpt(cands, o, Options{})
}

// LazyGreedyOpt runs the Eq. 17 policy with a lazy priority queue:
// stale upper bounds are refreshed only when a candidate reaches the
// top. For submodular gains the output matches Greedy while evaluating
// far fewer candidates. The seed scan — the N·K initial gain
// evaluations against the empty profile — optionally fans out to
// GOMAXPROCS workers (Options.Parallel); the merge happens in candidate
// order, so the result is bit-deterministic either way.
func LazyGreedyOpt(cands []Candidate, o Oracle, opt Options) Result {
	var res Result
	pq := seedHeap(cands, o, opt, &res)
	pq.init()
	res.Chosen = make([]Candidate, 0, len(pq))
	// With ItemLocalGains the staleness epoch is tracked per item: a
	// commit bumps only its own item's epoch, so candidates of other
	// items keep their provably unchanged cached ratios.
	var itemRound []int
	if opt.ItemLocalGains {
		maxItem := -1
		for _, c := range cands {
			if c.Item > maxItem {
				maxItem = c.Item
			}
		}
		itemRound = make([]int, maxItem+1)
	}
	round := 0
	for len(pq) > 0 {
		top := pq[0]
		if !o.Feasible(top.c) {
			pq.popTop() // capacity shrank; gone forever
			continue
		}
		epoch := round
		if itemRound != nil {
			epoch = itemRound[top.c.Item]
		}
		if top.round != epoch {
			// Stale bound: refresh and reposition. Submodularity means the
			// refreshed ratio never rises, so sifting down from the root is
			// the complete repositioning.
			g := o.Gain(top.c)
			res.Evaluations++
			if g <= 0 {
				pq.popTop()
				continue
			}
			pq[0].ratio = g / math.Max(o.Cost(top.c), 1e-12)
			pq[0].round = epoch
			pq.siftDown(0)
			continue
		}
		pq.popTop()
		realized := o.Commit(top.c)
		res.TotalGain += realized
		res.Chosen = append(res.Chosen, top.c)
		traceCommit(opt.Obs, o, &res, top.c, realized, top.ratio)
		if opt.MaxCommits > 0 && len(res.Chosen) >= opt.MaxCommits {
			break
		}
		round++
		if itemRound != nil {
			itemRound[top.c.Item]++
		}
	}
	publishResult(opt.Obs, &res)
	return res
}

// publishResult cross-wires the final Result into the scope's registry;
// the struct fields and the counters are written from the same values,
// so they can never drift.
func publishResult(sc *obs.Scope, res *Result) {
	if !sc.Enabled() {
		return
	}
	sc.Count("placement_runs_total", 1)
	sc.Count("placement_commits_total", int64(len(res.Chosen)))
	sc.Count("placement_evaluations_total", int64(res.Evaluations))
	sc.SetGauge("placement_last_total_gain", res.TotalGain)
}

// traceCommit records one committed delivery decision: a histogram
// sample of the realized gain and — when a tracer is attached — an
// instant event with the CELF iteration state. Called from the
// serialized commit section of both engines; with a nil scope this is
// one branch and zero allocations.
func traceCommit(sc *obs.Scope, o Oracle, res *Result, c Candidate, realized, ratio float64) {
	if sc == nil {
		return
	}
	sc.Observe("placement_commit_gain", realized)
	if !sc.Tracing() {
		return
	}
	sc.Instant("placement", "commit", map[string]any{
		"iter":       len(res.Chosen) - 1,
		"server":     c.Server,
		"item":       c.Item,
		"gain":       realized,
		"ratio":      ratio,
		"cost":       o.Cost(c),
		"total_gain": res.TotalGain,
		"evals":      res.Evaluations,
	})
}

// seedHeap evaluates every candidate's initial gain and assembles the
// un-heapified seed slice. With Options.Parallel and enough candidates
// the evaluations fan out to GOMAXPROCS workers over disjoint index
// ranges; every candidate is evaluated exactly once in both modes and
// the merge walks ascending candidate order, so the returned slice —
// and Result.Evaluations — are identical to the sequential scan.
func seedHeap(cands []Candidate, o Oracle, opt Options, res *Result) lazyHeap {
	thresh := opt.ParallelThreshold
	if thresh <= 0 {
		thresh = DefaultParallelThreshold
	}
	workers := runtime.GOMAXPROCS(0)
	if !opt.Parallel || len(cands) < thresh || workers < 2 {
		pq := make(lazyHeap, 0, len(cands))
		for idx, c := range cands {
			if !o.Feasible(c) {
				continue
			}
			g := o.Gain(c)
			res.Evaluations++
			if g <= 0 {
				continue
			}
			pq = append(pq, lazyEntry{c: c, idx: idx, ratio: g / math.Max(o.Cost(c), 1e-12)})
		}
		return pq
	}

	sp, _ := seedPool.Get().(*[]seed)
	if sp == nil {
		sp = new([]seed)
	}
	seeds := *sp
	if cap(seeds) < len(cands) {
		seeds = make([]seed, len(cands))
	} else {
		// Recycled scratch: workers skip infeasible candidates, so stale
		// entries from the previous scan must be cleared first.
		seeds = seeds[:len(cands)]
		clear(seeds)
	}
	if workers > len(cands) {
		workers = len(cands)
	}
	var wg sync.WaitGroup
	chunk := (len(cands) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(cands))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for idx := lo; idx < hi; idx++ {
				c := cands[idx]
				if !o.Feasible(c) {
					continue
				}
				g := o.Gain(c)
				seeds[idx].evaluated = true
				if g <= 0 {
					continue
				}
				seeds[idx].positive = true
				seeds[idx].ratio = g / math.Max(o.Cost(c), 1e-12)
			}
		}(lo, hi)
	}
	wg.Wait()
	pq := make(lazyHeap, 0, len(cands))
	for idx := range seeds {
		if seeds[idx].evaluated {
			res.Evaluations++
		}
		if seeds[idx].positive {
			pq = append(pq, lazyEntry{c: cands[idx], idx: idx, ratio: seeds[idx].ratio})
		}
	}
	*sp = seeds
	seedPool.Put(sp)
	return pq
}

// seed is one parallel seed-scan result slot; the slices live in
// seedPool so repeated solves reuse one scratch buffer.
type seed struct {
	ratio     float64
	evaluated bool
	positive  bool
}

var seedPool sync.Pool

type lazyEntry struct {
	c     Candidate
	idx   int // position in the original cands slice
	ratio float64
	round int
}

// lazyHeap is a hand-rolled binary max-heap: the CELF loop performs one
// pop or root-fix per evaluation, and going through container/heap's
// interface costs a dynamic Less/Swap dispatch per sift level — the
// dominant Phase 2 engine overhead once the oracle itself is cheap.
// The ordering (ratio descending, exact ties by original candidate
// index ascending — the same first-max-wins rule the literal Greedy
// re-scan applies) is a strict total order, so the pop sequence is a
// function of the heap's contents alone and the committed sequence is
// independent of the internal element arrangement.
type lazyHeap []lazyEntry

func (h lazyHeap) less(i, j int) bool {
	if h[i].ratio != h[j].ratio {
		return h[i].ratio > h[j].ratio
	}
	return h[i].idx < h[j].idx
}

// siftDown restores the heap property below i.
func (h lazyHeap) siftDown(i int) {
	n := len(h)
	for {
		child := 2*i + 1
		if child >= n {
			return
		}
		if r := child + 1; r < n && h.less(r, child) {
			child = r
		}
		if !h.less(child, i) {
			return
		}
		h[i], h[child] = h[child], h[i]
		i = child
	}
}

// init heapifies in O(n).
func (h lazyHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

// popTop removes the maximum element.
func (h *lazyHeap) popTop() {
	old := *h
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	if n > 0 {
		(*h).siftDown(0)
	}
}

// SearchOracle extends Oracle with the rollback needed for exhaustive
// search. Only tiny test instances implement it.
type SearchOracle interface {
	Oracle
	// Uncommit reverses the most recent Commit.
	Uncommit(c Candidate)
}

// ExhaustiveBest finds the subset of candidates with the maximum total
// gain subject to feasibility by depth-first enumeration. Exponential in
// len(cands); it exists to measure greedy's empirical approximation
// ratio on small instances (Theorems 6–7).
func ExhaustiveBest(cands []Candidate, o SearchOracle) (best []Candidate, bestGain float64) {
	var cur []Candidate
	var curGain float64
	var rec func(idx int)
	rec = func(idx int) {
		if curGain > bestGain {
			bestGain = curGain
			best = append([]Candidate(nil), cur...)
		}
		if idx >= len(cands) {
			return
		}
		// Branch 1: take cands[idx] if feasible.
		c := cands[idx]
		if o.Feasible(c) {
			g := o.Commit(c)
			cur = append(cur, c)
			curGain += g
			rec(idx + 1)
			curGain -= g
			cur = cur[:len(cur)-1]
			o.Uncommit(c)
		}
		// Branch 2: skip.
		rec(idx + 1)
	}
	rec(0)
	return best, bestGain
}

// Package placement implements budgeted greedy maximization for data
// delivery profiles: the naive argmax loop of Algorithm 1 Phase 2
// (Eq. 17), an accelerated lazy-greedy (CELF-style) variant that
// exploits the submodularity of latency reduction, and an exhaustive
// optimal search for tiny instances used to verify the Theorem 6/7
// approximation bounds empirically.
//
// The oracle abstraction decouples the greedy from the IDDE latency
// model, so the CDP baseline and the core algorithm share one engine.
package placement

import (
	"container/heap"
	"math"
)

// Candidate identifies a delivery decision σ_{i,k}: put item Item on
// server Server.
type Candidate struct {
	Server, Item int
}

// Oracle exposes the marginal structure of a placement problem.
// Gains must be monotone non-increasing as decisions commit
// (submodularity) for LazyGreedy to match Greedy.
type Oracle interface {
	// Gain reports the total objective reduction of committing c now.
	Gain(c Candidate) float64
	// Cost reports the storage consumed by c (s_k).
	Cost(c Candidate) float64
	// Feasible reports whether c currently fits (Eq. 6). Feasibility
	// must be monotone: once infeasible, always infeasible.
	Feasible(c Candidate) bool
	// Commit applies c and returns the realized gain.
	Commit(c Candidate) float64
}

// Result summarizes a greedy run.
type Result struct {
	Chosen []Candidate
	// TotalGain is the realized objective reduction ΔL(σ).
	TotalGain float64
	// Evaluations counts oracle Gain calls (the CELF speedup metric).
	Evaluations int
}

// Greedy runs the literal Algorithm 1 Phase 2 loop: every round,
// re-evaluate every remaining feasible candidate and commit the one
// with the highest gain-per-cost ratio; stop when nothing feasible has
// positive gain.
func Greedy(cands []Candidate, o Oracle) Result {
	res := Result{Chosen: make([]Candidate, 0, len(cands))}
	remaining := append([]Candidate(nil), cands...)
	for {
		bestIdx := -1
		bestRatio := 0.0
		for idx, c := range remaining {
			if c.Server < 0 || !o.Feasible(c) {
				continue
			}
			g := o.Gain(c)
			res.Evaluations++
			if g <= 0 {
				continue
			}
			cost := o.Cost(c)
			ratio := g / math.Max(cost, 1e-12)
			if ratio > bestRatio {
				bestRatio = ratio
				bestIdx = idx
			}
		}
		if bestIdx < 0 {
			return res
		}
		c := remaining[bestIdx]
		res.TotalGain += o.Commit(c)
		res.Chosen = append(res.Chosen, c)
		remaining[bestIdx].Server = -1 // tombstone
	}
}

// LazyGreedy runs the same policy with a lazy priority queue: stale
// upper bounds are refreshed only when a candidate reaches the top.
// For submodular gains the output matches Greedy while evaluating far
// fewer candidates.
func LazyGreedy(cands []Candidate, o Oracle) Result {
	var res Result
	pq := make(lazyHeap, 0, len(cands))
	for idx, c := range cands {
		if !o.Feasible(c) {
			continue
		}
		g := o.Gain(c)
		res.Evaluations++
		if g <= 0 {
			continue
		}
		pq = append(pq, lazyEntry{c: c, idx: idx, ratio: g / math.Max(o.Cost(c), 1e-12)})
	}
	heap.Init(&pq)
	res.Chosen = make([]Candidate, 0, pq.Len())
	round := 0
	for pq.Len() > 0 {
		top := pq[0]
		if !o.Feasible(top.c) {
			heap.Pop(&pq) // capacity shrank; gone forever
			continue
		}
		if top.round != round {
			// Stale bound: refresh and reposition.
			g := o.Gain(top.c)
			res.Evaluations++
			if g <= 0 {
				heap.Pop(&pq)
				continue
			}
			pq[0].ratio = g / math.Max(o.Cost(top.c), 1e-12)
			pq[0].round = round
			heap.Fix(&pq, 0)
			continue
		}
		heap.Pop(&pq)
		res.TotalGain += o.Commit(top.c)
		res.Chosen = append(res.Chosen, top.c)
		round++
	}
	return res
}

type lazyEntry struct {
	c     Candidate
	idx   int // position in the original cands slice
	ratio float64
	round int
}

type lazyHeap []lazyEntry

func (h lazyHeap) Len() int { return len(h) }

// Less orders by ratio descending, breaking exact ties by original
// candidate index ascending — the same first-max-wins rule the literal
// Greedy re-scan applies, so the two evaluators commit identical
// sequences even when distinct candidates tie exactly.
func (h lazyHeap) Less(i, j int) bool {
	if h[i].ratio != h[j].ratio {
		return h[i].ratio > h[j].ratio
	}
	return h[i].idx < h[j].idx
}
func (h lazyHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *lazyHeap) Push(x any)   { *h = append(*h, x.(lazyEntry)) }
func (h *lazyHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// SearchOracle extends Oracle with the rollback needed for exhaustive
// search. Only tiny test instances implement it.
type SearchOracle interface {
	Oracle
	// Uncommit reverses the most recent Commit.
	Uncommit(c Candidate)
}

// ExhaustiveBest finds the subset of candidates with the maximum total
// gain subject to feasibility by depth-first enumeration. Exponential in
// len(cands); it exists to measure greedy's empirical approximation
// ratio on small instances (Theorems 6–7).
func ExhaustiveBest(cands []Candidate, o SearchOracle) (best []Candidate, bestGain float64) {
	var cur []Candidate
	var curGain float64
	var rec func(idx int)
	rec = func(idx int) {
		if curGain > bestGain {
			bestGain = curGain
			best = append([]Candidate(nil), cur...)
		}
		if idx >= len(cands) {
			return
		}
		// Branch 1: take cands[idx] if feasible.
		c := cands[idx]
		if o.Feasible(c) {
			g := o.Commit(c)
			cur = append(cur, c)
			curGain += g
			rec(idx + 1)
			curGain -= g
			cur = cur[:len(cur)-1]
			o.Uncommit(c)
		}
		// Branch 2: skip.
		rec(idx + 1)
	}
	rec(0)
	return best, bestGain
}

package placement

import (
	"math"
	"reflect"
	"runtime"
	"testing"

	"idde/internal/rng"
)

// coverOracle is a miniature facility-location-style problem mirroring
// the IDDE delivery structure: req[r] has a current latency cur[r] and
// requests item item[r]; committing candidate (i,k) moves every request
// of item k down to via[i][r] if that is lower. Budgets are per server.
// It recomputes state from scratch on Commit/Uncommit, making it a
// valid SearchOracle for differential tests.
type coverOracle struct {
	items  []int       // item requested by each request
	cloud  []float64   // initial latency per request
	via    [][]float64 // via[server][request]
	cost   []float64   // per item
	budget []float64   // per server
	placed map[Candidate]bool
}

func (o *coverOracle) cur(r int) float64 {
	best := o.cloud[r]
	for c := range o.placed {
		if c.Item == o.items[r] && o.via[c.Server][r] < best {
			best = o.via[c.Server][r]
		}
	}
	return best
}

func (o *coverOracle) used(i int) float64 {
	u := 0.0
	for c := range o.placed {
		if c.Server == i {
			u += o.cost[c.Item]
		}
	}
	return u
}

func (o *coverOracle) Gain(c Candidate) float64 {
	if o.placed[c] {
		return 0
	}
	g := 0.0
	for r := range o.items {
		if o.items[r] != c.Item {
			continue
		}
		if v := o.via[c.Server][r]; v < o.cur(r) {
			g += o.cur(r) - v
		}
	}
	return g
}

func (o *coverOracle) Cost(c Candidate) float64 { return o.cost[c.Item] }

func (o *coverOracle) Feasible(c Candidate) bool {
	return !o.placed[c] && o.used(c.Server)+o.cost[c.Item] <= o.budget[c.Server]+1e-12
}

func (o *coverOracle) Commit(c Candidate) float64 {
	g := o.Gain(c)
	o.placed[c] = true
	return g
}

func (o *coverOracle) Uncommit(c Candidate) { delete(o.placed, c) }

func randomOracle(seed uint64, servers, items, reqs int) (*coverOracle, []Candidate) {
	s := rng.New(seed)
	o := &coverOracle{
		items:  make([]int, reqs),
		cloud:  make([]float64, reqs),
		via:    make([][]float64, servers),
		cost:   make([]float64, items),
		budget: make([]float64, servers),
		placed: map[Candidate]bool{},
	}
	for r := 0; r < reqs; r++ {
		o.items[r] = s.IntN(items)
		o.cloud[r] = s.Uniform(50, 150)
	}
	for i := range o.via {
		o.via[i] = make([]float64, reqs)
		for r := range o.via[i] {
			o.via[i][r] = s.Uniform(0, 60)
		}
	}
	for k := range o.cost {
		o.cost[k] = []float64{30, 60, 90}[s.IntN(3)]
	}
	for i := range o.budget {
		o.budget[i] = s.Uniform(30, 200)
	}
	var cands []Candidate
	for i := 0; i < servers; i++ {
		for k := 0; k < items; k++ {
			cands = append(cands, Candidate{Server: i, Item: k})
		}
	}
	return o, cands
}

func clone(o *coverOracle) *coverOracle {
	c := *o
	c.placed = map[Candidate]bool{}
	return &c
}

func TestGreedyRespectsBudgets(t *testing.T) {
	o, cands := randomOracle(1, 4, 3, 40)
	res := Greedy(cands, o)
	for i := range o.budget {
		if o.used(i) > o.budget[i]+1e-9 {
			t.Errorf("server %d over budget: %v > %v", i, o.used(i), o.budget[i])
		}
	}
	if res.TotalGain <= 0 {
		t.Error("greedy achieved no gain on a gainful instance")
	}
	seen := map[Candidate]bool{}
	for _, c := range res.Chosen {
		if seen[c] {
			t.Errorf("candidate %v chosen twice", c)
		}
		seen[c] = true
	}
}

func TestGreedyPicksRatioNotRawGain(t *testing.T) {
	// Two candidates, budget fits only one: a 90-cost item saving 100,
	// versus a 30-cost item saving 60. Ratio rule must take the latter
	// (2.0 > 1.11).
	o := &coverOracle{
		items:  []int{0, 1},
		cloud:  []float64{100, 60},
		via:    [][]float64{{0, 0}},
		cost:   []float64{90, 30},
		budget: []float64{90},
		placed: map[Candidate]bool{},
	}
	cands := []Candidate{{Server: 0, Item: 0}, {Server: 0, Item: 1}}
	res := Greedy(cands, o)
	if len(res.Chosen) == 0 || res.Chosen[0] != (Candidate{Server: 0, Item: 1}) {
		t.Fatalf("first pick = %v, want the high-ratio small item", res.Chosen)
	}
}

func TestLazyGreedyMatchesGreedy(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		oa, cands := randomOracle(seed, 5, 4, 60)
		ob := clone(oa)
		ra := Greedy(cands, oa)
		rb := LazyGreedy(cands, ob)
		if math.Abs(ra.TotalGain-rb.TotalGain) > 1e-9*math.Max(1, ra.TotalGain) {
			t.Fatalf("seed %d: gains differ: %v vs %v", seed, ra.TotalGain, rb.TotalGain)
		}
		if len(ra.Chosen) != len(rb.Chosen) {
			t.Fatalf("seed %d: chose %d vs %d", seed, len(ra.Chosen), len(rb.Chosen))
		}
		// CELF must not evaluate more than the naive loop.
		if rb.Evaluations > ra.Evaluations {
			t.Errorf("seed %d: lazy did %d evals, naive %d", seed, rb.Evaluations, ra.Evaluations)
		}
	}
}

func TestLazyGreedySavesEvaluations(t *testing.T) {
	oa, cands := randomOracle(3, 8, 6, 150)
	ob := clone(oa)
	ra := Greedy(cands, oa)
	rb := LazyGreedy(cands, ob)
	if ra.Evaluations <= rb.Evaluations {
		t.Skipf("instance too easy to demonstrate CELF savings: %d vs %d", ra.Evaluations, rb.Evaluations)
	}
}

// tombstoneGreedy is the historical Greedy implementation (commit marks
// the candidate with Server=-1 and every round rescans the full slice).
// It is kept here as the behavioural reference for the swap-remove
// rewrite: the committed sequences must be identical.
func tombstoneGreedy(cands []Candidate, o Oracle) Result {
	res := Result{Chosen: make([]Candidate, 0, len(cands))}
	remaining := append([]Candidate(nil), cands...)
	for {
		bestIdx := -1
		bestRatio := 0.0
		for idx, c := range remaining {
			if c.Server < 0 || !o.Feasible(c) {
				continue
			}
			g := o.Gain(c)
			res.Evaluations++
			if g <= 0 {
				continue
			}
			ratio := g / math.Max(o.Cost(c), 1e-12)
			if ratio > bestRatio {
				bestRatio = ratio
				bestIdx = idx
			}
		}
		if bestIdx < 0 {
			return res
		}
		c := remaining[bestIdx]
		res.TotalGain += o.Commit(c)
		res.Chosen = append(res.Chosen, c)
		remaining[bestIdx].Server = -1
	}
}

// TestGreedySwapRemoveMatchesTombstone asserts the swap-remove rewrite
// commits exactly the sequence the historical tombstone loop committed,
// with the same realized gains, while never evaluating more candidates.
func TestGreedySwapRemoveMatchesTombstone(t *testing.T) {
	for seed := uint64(1); seed <= 15; seed++ {
		oa, cands := randomOracle(seed, 6, 5, 80)
		ob := clone(oa)
		got := Greedy(cands, oa)
		ref := tombstoneGreedy(cands, ob)
		if !reflect.DeepEqual(got.Chosen, ref.Chosen) {
			t.Fatalf("seed %d: sequences diverge:\nswap-remove %v\ntombstone   %v", seed, got.Chosen, ref.Chosen)
		}
		if got.TotalGain != ref.TotalGain {
			t.Fatalf("seed %d: gains diverge: %v vs %v", seed, got.TotalGain, ref.TotalGain)
		}
		if got.Evaluations > ref.Evaluations {
			t.Fatalf("seed %d: swap-remove evaluated more: %d vs %d", seed, got.Evaluations, ref.Evaluations)
		}
	}
}

// TestGreedyTieBreakSurvivesSwapRemove forces exact gain-per-cost ties
// between candidates whose scan positions the swap-remove loop scrambles
// and checks the original-index tie-break still wins: the committed
// order must be ascending candidate index among the tied group, matching
// both the tombstone loop and LazyGreedy.
func TestGreedyTieBreakSurvivesSwapRemove(t *testing.T) {
	// Four servers, one item each of identical cost; every candidate
	// saves exactly 70 for its own private request. All ratios tie.
	o := &coverOracle{
		items: []int{0, 1, 2, 3},
		cloud: []float64{100, 100, 100, 100},
		via: [][]float64{
			{30, 100, 100, 100},
			{100, 30, 100, 100},
			{100, 100, 30, 100},
			{100, 100, 100, 30},
		},
		cost:   []float64{30, 30, 30, 30},
		budget: []float64{30, 30, 30, 30},
		placed: map[Candidate]bool{},
	}
	var cands []Candidate
	for i := 0; i < 4; i++ {
		cands = append(cands, Candidate{Server: i, Item: i})
	}
	got := Greedy(cands, clone(o))
	want := cands // ascending index order
	if !reflect.DeepEqual(got.Chosen, want) {
		t.Fatalf("tied candidates committed out of index order: %v", got.Chosen)
	}
	lazy := LazyGreedy(cands, clone(o))
	if !reflect.DeepEqual(lazy.Chosen, want) {
		t.Fatalf("LazyGreedy broke the tie differently: %v", lazy.Chosen)
	}
	ref := tombstoneGreedy(cands, clone(o))
	if !reflect.DeepEqual(ref.Chosen, want) {
		t.Fatalf("tombstone reference broke the tie differently: %v", ref.Chosen)
	}
}

// TestParallelSeedScanBitIdentical pins the determinism contract of the
// parallel seed scan: with the fan-out forced on (threshold 1 and
// several workers), LazyGreedyOpt must produce the same committed
// sequence, total gain and evaluation count as the sequential scan.
func TestParallelSeedScanBitIdentical(t *testing.T) {
	prev := runtime.GOMAXPROCS(4) // force a real fan-out even on 1 CPU
	defer runtime.GOMAXPROCS(prev)
	for seed := uint64(1); seed <= 10; seed++ {
		oa, cands := randomOracle(seed*13, 7, 5, 120)
		ob := clone(oa)
		seq := LazyGreedyOpt(cands, oa, Options{})
		par := LazyGreedyOpt(cands, ob, Options{Parallel: true, ParallelThreshold: 1, Set: true})
		if !reflect.DeepEqual(seq.Chosen, par.Chosen) {
			t.Fatalf("seed %d: parallel seeding changed the sequence:\nseq %v\npar %v", seed, seq.Chosen, par.Chosen)
		}
		if seq.TotalGain != par.TotalGain {
			t.Fatalf("seed %d: gains diverge: %v vs %v", seed, seq.TotalGain, par.TotalGain)
		}
		if seq.Evaluations != par.Evaluations {
			t.Fatalf("seed %d: evaluation counts diverge: %d vs %d", seed, seq.Evaluations, par.Evaluations)
		}
	}
}

func TestGreedyStopsOnZeroGain(t *testing.T) {
	// Edge replicas that never beat the cloud yield zero gain and must
	// not be placed.
	o := &coverOracle{
		items:  []int{0},
		cloud:  []float64{10},
		via:    [][]float64{{50}}, // worse than cloud
		cost:   []float64{30},
		budget: []float64{300},
		placed: map[Candidate]bool{},
	}
	res := Greedy([]Candidate{{Server: 0, Item: 0}}, o)
	if len(res.Chosen) != 0 || res.TotalGain != 0 {
		t.Errorf("placed a useless replica: %+v", res)
	}
}

func TestGreedyWithinApproxBoundOfExhaustive(t *testing.T) {
	// Theorem 6: greedy's reduction ≥ (e−1)/2e ≈ 0.316 of optimal.
	// Empirically greedy is far better; assert the theorem's bound.
	bound := (math.E - 1) / (2 * math.E)
	for seed := uint64(20); seed < 30; seed++ {
		og, cands := randomOracle(seed, 2, 3, 8)
		oe := clone(og)
		rg := Greedy(cands, og)
		_, opt := ExhaustiveBest(cands, oe)
		if opt == 0 {
			continue
		}
		if rg.TotalGain < bound*opt-1e-9 {
			t.Errorf("seed %d: greedy gain %v below bound %v of optimal %v", seed, rg.TotalGain, bound, opt)
		}
		if rg.TotalGain > opt+1e-9 {
			t.Errorf("seed %d: greedy gain %v exceeds optimal %v", seed, rg.TotalGain, opt)
		}
	}
}

func TestExhaustiveBestHandlesEmpty(t *testing.T) {
	o, _ := randomOracle(5, 2, 2, 5)
	best, gain := ExhaustiveBest(nil, o)
	if len(best) != 0 || gain != 0 {
		t.Errorf("empty search returned %v/%v", best, gain)
	}
}

func TestExhaustiveRestoresState(t *testing.T) {
	o, cands := randomOracle(6, 2, 2, 10)
	ExhaustiveBest(cands, o)
	if len(o.placed) != 0 {
		t.Errorf("search left %d placements behind", len(o.placed))
	}
}

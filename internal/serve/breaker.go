package serve

import (
	"fmt"
	"sync"

	"idde/internal/units"
)

// BreakerState is one of the three circuit-breaker states.
type BreakerState int

const (
	// Closed admits every request (the healthy state).
	Closed BreakerState = iota
	// Open rejects every request until the open timeout elapses.
	Open
	// HalfOpen admits a seeded fraction of requests as probes; enough
	// consecutive probe successes close the breaker, one probe failure
	// re-opens it.
	HalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// BreakerConfig tunes the per-server circuit breakers.
type BreakerConfig struct {
	// FailureThreshold is the number of consecutive failed attempts that
	// trips a closed breaker open (default 5).
	FailureThreshold int
	// OpenTimeout is how long an open breaker rejects before moving to
	// half-open, in virtual seconds (default 2s).
	OpenTimeout units.Seconds
	// ProbeFraction is the fraction of requests admitted as probes while
	// half-open, decided by a seeded per-request draw so admission is
	// deterministic and order-free (default 0.2).
	ProbeFraction float64
	// ProbeSuccesses is the number of consecutive successful probes that
	// closes a half-open breaker (default 3).
	ProbeSuccesses int
}

// withDefaults fills the zero fields.
func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.OpenTimeout <= 0 {
		c.OpenTimeout = 2
	}
	if c.ProbeFraction <= 0 || c.ProbeFraction > 1 {
		c.ProbeFraction = 0.2
	}
	if c.ProbeSuccesses <= 0 {
		c.ProbeSuccesses = 3
	}
	return c
}

// Breaker is one server's circuit breaker. It runs on the engine's
// virtual clock: state transitions depend only on the sequence of
// recorded outcomes and the times they are recorded at, which is what
// keeps the whole data plane deterministic for a fixed seed. Methods are
// mutex-guarded so the live (wall-clock) front-end can share breakers
// with the soak loop.
type Breaker struct {
	cfg BreakerConfig

	mu          sync.Mutex
	state       BreakerState
	consecFail  int
	probeOK     int
	openedAt    units.Seconds
	transitions int64
	opens       int64
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// State reports the breaker's state at virtual time now, applying the
// open→half-open timeout transition if it is due.
func (b *Breaker) State(now units.Seconds) BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tick(now)
	return b.state
}

// tick applies time-driven transitions. Callers hold b.mu.
func (b *Breaker) tick(now units.Seconds) {
	if b.state == Open && now >= b.openedAt+b.cfg.OpenTimeout {
		b.state = HalfOpen
		b.probeOK = 0
		b.transitions++
	}
}

// Admit reports whether a request may use this server at virtual time
// now. probeDraw is the request's seeded uniform draw in [0,1): while
// half-open, only requests with probeDraw < ProbeFraction are admitted
// (as probes). Closed admits everyone; open admits no one.
func (b *Breaker) Admit(now units.Seconds, probeDraw float64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tick(now)
	switch b.state {
	case Closed:
		return true
	case HalfOpen:
		return probeDraw < b.cfg.ProbeFraction
	default:
		return false
	}
}

// Record folds one attempt outcome into the breaker at virtual time now.
// The soak loop replays outcomes in deterministic request order at each
// round barrier; the live front-end records as requests complete.
func (b *Breaker) Record(now units.Seconds, success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tick(now)
	if success {
		b.consecFail = 0
		if b.state == HalfOpen {
			b.probeOK++
			if b.probeOK >= b.cfg.ProbeSuccesses {
				b.state = Closed
				b.transitions++
			}
		}
		return
	}
	b.consecFail++
	switch b.state {
	case Closed:
		if b.consecFail >= b.cfg.FailureThreshold {
			b.open(now)
		}
	case HalfOpen:
		b.open(now)
	case Open:
		// Late failure from an in-flight attempt; stay open, refresh the
		// timeout so a failing server is not probed immediately.
		b.openedAt = now
	}
}

// open trips the breaker. Callers hold b.mu.
func (b *Breaker) open(now units.Seconds) {
	b.state = Open
	b.openedAt = now
	b.probeOK = 0
	b.transitions++
	b.opens++
}

// Transitions reports the number of state changes so far.
func (b *Breaker) Transitions() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.transitions
}

// Opens reports how many times the breaker tripped open.
func (b *Breaker) Opens() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}

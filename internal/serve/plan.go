package serve

import (
	"sync/atomic"

	"idde/internal/model"
)

// Plan is one immutable generation of the routing table: the (α, σ)
// strategy and the instance it is valid on (the degraded view the
// re-planner last repaired onto, or the healthy instance at boot).
// Requests route against a Plan snapshot; the re-planner publishes a new
// generation with an atomic pointer swap, so the data plane never sees a
// half-updated table.
type Plan struct {
	// Epoch counts plan generations, starting at 0 for the boot plan.
	Epoch int
	// In is the instance the strategy was validated against.
	In *model.Instance
	// Strategy is the (α, σ) pair requests route by.
	Strategy model.Strategy
}

// planHolder is the atomically swappable current plan.
type planHolder struct {
	p atomic.Pointer[Plan]
}

func (h *planHolder) load() *Plan      { return h.p.Load() }
func (h *planHolder) store(plan *Plan) { h.p.Store(plan) }

package serve

import (
	"context"
	"errors"
	"testing"

	"idde/internal/chaos"
	"idde/internal/core"
	"idde/internal/des"
	"idde/internal/model"
	"idde/internal/radio"
	"idde/internal/repair"
	"idde/internal/rng"
	"idde/internal/topology"
	"idde/internal/units"
	"idde/internal/workload"
)

func genInstance(t *testing.T, n, m, k int, seed uint64) *model.Instance {
	t.Helper()
	s := rng.New(seed)
	top, err := topology.Generate(topology.DefaultGen(n, m, 1.0), s.Split("top"))
	if err != nil {
		t.Fatalf("topology: %v", err)
	}
	wl, err := workload.Generate(workload.DefaultGen(k), n, m, s.Split("wl"))
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	in, err := model.New(top, wl, radio.Default())
	if err != nil {
		t.Fatalf("model: %v", err)
	}
	return in
}

func solved(t *testing.T, in *model.Instance) model.Strategy {
	t.Helper()
	return core.Solve(in, core.DefaultOptions()).Strategy
}

func testOptions(seed uint64) Options {
	return Options{
		Seed:     seed,
		RPS:      100,
		Tick:     1,
		Duration: 20,
		Faults:   des.Faults{LossProb: 0.02, MaxRetries: 2},
	}
}

func TestSoakHealthyBaseline(t *testing.T) {
	in := genInstance(t, 10, 60, 4, 11)
	st := solved(t, in)
	rep, err := Run(context.Background(), in, st, testOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dropped != 0 {
		t.Errorf("dropped = %d, want 0", rep.Dropped)
	}
	if rep.Issued != int64(rep.Rounds*rep.PerRound) {
		t.Errorf("issued = %d, want %d", rep.Issued, rep.Rounds*rep.PerRound)
	}
	if rep.Degraded != 0 {
		t.Errorf("healthy soak degraded %d requests", rep.Degraded)
	}
	if rep.BreakerOpens != 0 {
		t.Errorf("healthy soak opened %d breakers", rep.BreakerOpens)
	}
	if len(rep.Phases) != 1 || rep.Phases[0].Phase != PhaseHealthy {
		t.Errorf("phases = %+v, want single healthy phase", rep.Phases)
	}
	hp := rep.Phase(PhaseHealthy)
	// p50 can legitimately be 0 (a replica at the attachment server has
	// no wired hop), but the tail must be ordered and non-degenerate.
	if hp.P999Ms < hp.P99Ms || hp.P99Ms < hp.P50Ms || hp.MaxMs <= 0 {
		t.Errorf("implausible percentiles: p50=%g p99=%g p999=%g max=%g",
			hp.P50Ms, hp.P99Ms, hp.P999Ms, hp.MaxMs)
	}
	if rep.VirtualRPS != float64(rep.RPS) {
		t.Errorf("virtual RPS = %g, want %d", rep.VirtualRPS, rep.RPS)
	}
}

// TestSoakDeterministicAcrossWorkers is the determinism contract: with
// hedging off, a fixed seed produces bit-identical outcomes for any
// worker count.
func TestSoakDeterministicAcrossWorkers(t *testing.T) {
	in := genInstance(t, 10, 60, 4, 11)
	st := solved(t, in)
	camp := outageCampaign(in, st)

	run := func(workers int) *SoakReport {
		opt := testOptions(7)
		opt.Workers = workers
		opt.Campaign = camp
		rep, err := Run(context.Background(), in, st, opt)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(1), run(8)
	if a.OutcomeHash != b.OutcomeHash {
		t.Errorf("outcome hash differs across worker counts: %s vs %s", a.OutcomeHash, b.OutcomeHash)
	}
	if a.Degraded != b.Degraded || a.Retries != b.Retries || a.Replans != b.Replans {
		t.Errorf("aggregates differ across worker counts: %+v vs %+v", a, b)
	}

	opt := testOptions(8) // different seed must not collide
	opt.Campaign = camp
	c, err := Run(context.Background(), in, st, opt)
	if err != nil {
		t.Fatal(err)
	}
	if c.OutcomeHash == a.OutcomeHash {
		t.Error("different seeds produced identical outcome hashes")
	}
}

// outageCampaign scripts the acceptance scenario: the most-fetched-from
// server dies mid-run and comes back later.
func outageCampaign(in *model.Instance, st model.Strategy) *chaos.Campaign {
	target := PopularSource(in, st)
	return &chaos.Campaign{
		Name: "test-outage",
		Events: []chaos.Event{
			{At: 5, Duration: 8, Kind: chaos.ServerOutage, Servers: []int{target}},
		},
		Faults: des.Faults{LossProb: 0.02, MaxRetries: 2},
	}
}

// TestSoakRecoversFromOutage is the chaos-in-the-loop acceptance test:
// a mid-run correlated outage must keep every request terminating, trip
// the dead server's breaker, heal the placement through the re-planner
// within a bounded number of rounds, and classify all three phases.
func TestSoakRecoversFromOutage(t *testing.T) {
	in := genInstance(t, 10, 60, 4, 11)
	st := solved(t, in)
	opt := testOptions(3)
	opt.Campaign = outageCampaign(in, st)
	rep, err := Run(context.Background(), in, st, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dropped != 0 {
		t.Errorf("dropped = %d, want 0 (no request may be dropped forever)", rep.Dropped)
	}
	if rep.BreakerOpens == 0 {
		t.Error("outage never tripped a breaker")
	}
	if rep.Replans == 0 {
		t.Error("re-planner never ran")
	}
	if rep.Degraded == 0 {
		t.Error("outage produced no degraded requests — fault view not in force?")
	}
	// The heal bound: onset round + threshold re-plans + half-open
	// probe windows. Observed 5 rounds for this seed; 6 is the budget.
	if rep.MaxDegradedStreak > 6 {
		t.Errorf("degraded streak %d rounds exceeds heal budget", rep.MaxDegradedStreak)
	}
	if !rep.HealedAtEnd {
		t.Error("soak ended unhealed")
	}
	if rep.FinalEpoch == 0 {
		t.Error("plan epoch never advanced")
	}
	for _, want := range []string{PhaseHealthy, PhaseFaulted, PhaseRecovered} {
		if rep.Phase(want) == nil {
			t.Errorf("missing phase %q in %+v", want, rep.Phases)
		}
	}
	if f := rep.Phase(PhaseFaulted); f != nil && f.BackhaulMB == 0 && f.LatencyDeltaS == 0 {
		t.Error("faulted phase recorded no degradation cost")
	}
}

// TestSoakReplanPanicIsolated proves the supervisor contract: a
// panicking re-planner must not take the data plane down, and the old
// plan must stay in force.
func TestSoakReplanPanicIsolated(t *testing.T) {
	in := genInstance(t, 10, 60, 4, 11)
	st := solved(t, in)
	opt := testOptions(3)
	opt.Campaign = outageCampaign(in, st)
	opt.repairFn = func(ref, degraded *model.Instance, s model.Strategy, o repair.Options) (model.Strategy, *repair.Report, error) {
		panic("injected repair bug")
	}
	rep, err := Run(context.Background(), in, st, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ReplanPanics == 0 {
		t.Error("panic was not recorded")
	}
	if rep.FinalEpoch != 0 {
		t.Errorf("plan swapped despite panicking repair (epoch %d)", rep.FinalEpoch)
	}
	if rep.Dropped != 0 {
		t.Errorf("dropped = %d, want 0 even with a broken re-planner", rep.Dropped)
	}
}

func TestSoakContextCancel(t *testing.T) {
	in := genInstance(t, 10, 60, 4, 11)
	st := solved(t, in)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := Run(ctx, in, st, testOptions(1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep == nil {
		t.Fatal("cancelled soak must still return a partial report")
	}
	if rep.Issued != 0 {
		t.Errorf("pre-cancelled soak issued %d requests", rep.Issued)
	}
}

// TestSoakHedgingReducesTail checks that hedging is wired through: with
// stall faults on, hedged requests appear and the hedged run's p999 is
// no worse than the unhedged run's.
func TestSoakHedgingReducesTail(t *testing.T) {
	in := genInstance(t, 10, 60, 4, 11)
	st := solved(t, in)
	base := testOptions(5)
	base.Faults = des.Faults{LossProb: 0.05, StallProb: 0.10, StallTime: units.Seconds(0.25), MaxRetries: 2}

	plain, err := Run(context.Background(), in, st, base)
	if err != nil {
		t.Fatal(err)
	}
	hedged := base
	hedged.Hedge = units.Seconds(0.05)
	h, err := Run(context.Background(), in, st, hedged)
	if err != nil {
		t.Fatal(err)
	}
	if h.Hedged == 0 {
		t.Error("hedging enabled but no request hedged")
	}
	pp, hp := plain.Phase(PhaseHealthy), h.Phase(PhaseHealthy)
	if pp == nil || hp == nil {
		t.Fatal("missing healthy phase")
	}
	if hp.P999Ms > pp.P999Ms*1.05 {
		t.Errorf("hedged p999 %.3fms worse than unhedged %.3fms", hp.P999Ms, pp.P999Ms)
	}
}

// TestInjectLiveFault drives the engine's chaos hook (the path the HTTP
// /inject endpoint uses) instead of a pre-scripted campaign.
func TestInjectLiveFault(t *testing.T) {
	in := genInstance(t, 10, 60, 4, 11)
	st := solved(t, in)
	e, err := NewEngine(in, st, testOptions(9))
	if err != nil {
		t.Fatal(err)
	}
	target := PopularSource(in, st)
	if err := e.Inject(chaos.Event{At: 5, Duration: 8, Kind: chaos.ServerOutage, Servers: []int{target}}); err != nil {
		t.Fatal(err)
	}
	rep, err := e.RunSoak(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.BreakerOpens == 0 || rep.Replans == 0 || !rep.HealedAtEnd {
		t.Errorf("injected fault not survived: opens=%d replans=%d healed=%v",
			rep.BreakerOpens, rep.Replans, rep.HealedAtEnd)
	}
}

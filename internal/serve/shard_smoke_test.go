package serve

import (
	"context"
	"testing"

	"idde/internal/core"
)

// TestSoakShardedPlanRecoversFromOutage is the geo-sharded serving
// smoke test: a strategy produced by the 4-tile sharded solver must
// boot the data plane, survive a mid-run correlated outage of its
// most-fetched-from server, and pass the same recovery gate the global
// plan does — nothing dropped, breaker tripped, re-planner healed the
// placement within the streak budget.
func TestSoakShardedPlanRecoversFromOutage(t *testing.T) {
	in := genInstance(t, 12, 80, 4, 11)
	opt := core.DefaultOptions()
	opt.Shards = 4
	res := core.Solve(in, opt)
	if res.Shard == nil || res.Shard.Tiles != 4 {
		t.Fatalf("expected a 4-tile sharded solve, got %+v", res.Shard)
	}
	if err := in.Check(res.Strategy); err != nil {
		t.Fatalf("sharded strategy invalid: %v", err)
	}
	st := res.Strategy

	sopt := testOptions(3)
	sopt.Campaign = outageCampaign(in, st)
	rep, err := Run(context.Background(), in, st, sopt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dropped != 0 {
		t.Errorf("dropped = %d, want 0", rep.Dropped)
	}
	if rep.BreakerOpens == 0 {
		t.Error("outage never tripped a breaker")
	}
	if rep.Replans == 0 {
		t.Error("re-planner never ran")
	}
	if rep.MaxDegradedStreak > 8 {
		t.Errorf("degraded streak %d rounds exceeds heal budget", rep.MaxDegradedStreak)
	}
	if !rep.HealedAtEnd {
		t.Error("soak ended unhealed")
	}
}

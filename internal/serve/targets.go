package serve

import "idde/internal/model"

// PopularSource returns the server the most requests fetch from under
// the strategy, excluding requests it serves as their own attachment
// point. It is the most disruptive single outage target for chaos
// drills: killing a server by attachment count mostly produces direct
// cloud routing for its own users, which never exercises a breaker.
func PopularSource(in *model.Instance, st model.Strategy) int {
	counts := make([]int, in.N())
	for j, items := range in.Wl.Requests {
		for _, k := range items {
			if src, viaEdge := in.BestSource(st.Alloc, st.Delivery, j, k, st.Mode, nil); viaEdge {
				if a := st.Alloc[j]; a.Allocated() && a.Server != src {
					counts[src]++
				}
			}
		}
	}
	best := 0
	for i, c := range counts {
		if c > counts[best] {
			best = i
		}
	}
	return best
}

// PopularLink returns the (source, attachment) pair carrying the most
// wired transfers under the strategy — the most disruptive single
// link-cut target. Returns {-1,-1} if no request crosses a wire.
func PopularLink(in *model.Instance, st model.Strategy) [2]int {
	counts := map[[2]int]int{}
	for j, items := range in.Wl.Requests {
		for _, k := range items {
			src, viaEdge := in.BestSource(st.Alloc, st.Delivery, j, k, st.Mode, nil)
			if !viaEdge {
				continue
			}
			a := st.Alloc[j]
			if !a.Allocated() || a.Server == src {
				continue
			}
			l := [2]int{src, a.Server}
			if l[0] > l[1] {
				l[0], l[1] = l[1], l[0]
			}
			counts[l]++
		}
	}
	best, bestN := [2]int{-1, -1}, 0
	for l, c := range counts {
		if c > bestN || (c == bestN && best[0] >= 0 && (l[0] < best[0] || (l[0] == best[0] && l[1] < best[1]))) {
			best, bestN = l, c
		}
	}
	return best
}

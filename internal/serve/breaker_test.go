package serve

import "testing"

func TestBreakerStateMachine(t *testing.T) {
	b := NewBreaker(BreakerConfig{
		FailureThreshold: 3,
		OpenTimeout:      2,
		ProbeFraction:    0.5,
		ProbeSuccesses:   2,
	})
	if s := b.State(0); s != Closed {
		t.Fatalf("new breaker state = %v, want closed", s)
	}
	if !b.Admit(0, 0.99) {
		t.Fatal("closed breaker must admit everyone")
	}

	// Two failures: still closed. Third: open.
	b.Record(0, false)
	b.Record(0, false)
	if s := b.State(0); s != Closed {
		t.Fatalf("state after 2 failures = %v, want closed", s)
	}
	b.Record(0, false)
	if s := b.State(0); s != Open {
		t.Fatalf("state after 3 failures = %v, want open", s)
	}
	if b.Admit(1, 0.0) {
		t.Fatal("open breaker must reject")
	}
	if got := b.Opens(); got != 1 {
		t.Fatalf("opens = %d, want 1", got)
	}

	// A success resets the consecutive-failure streak while closed.
	b2 := NewBreaker(BreakerConfig{FailureThreshold: 3, OpenTimeout: 2})
	b2.Record(0, false)
	b2.Record(0, false)
	b2.Record(0, true)
	b2.Record(0, false)
	b2.Record(0, false)
	if s := b2.State(0); s != Closed {
		t.Fatalf("streak should reset on success; state = %v", s)
	}

	// Open -> half-open after the timeout; probe admission is the draw.
	if s := b.State(2.5); s != HalfOpen {
		t.Fatalf("state after open timeout = %v, want half-open", s)
	}
	if b.Admit(2.5, 0.6) {
		t.Fatal("half-open must reject draws >= probe fraction")
	}
	if !b.Admit(2.5, 0.4) {
		t.Fatal("half-open must admit draws < probe fraction")
	}

	// One probe failure re-opens immediately.
	b.Record(2.5, false)
	if s := b.State(2.5); s != Open {
		t.Fatalf("state after probe failure = %v, want open", s)
	}
	if got := b.Opens(); got != 2 {
		t.Fatalf("opens = %d, want 2", got)
	}

	// Next half-open: enough consecutive probe successes close it.
	if s := b.State(5); s != HalfOpen {
		t.Fatalf("state = %v, want half-open", s)
	}
	b.Record(5, true)
	if s := b.State(5); s != HalfOpen {
		t.Fatalf("one probe success should not close; state = %v", s)
	}
	b.Record(5, true)
	if s := b.State(5); s != Closed {
		t.Fatalf("state after probe successes = %v, want closed", s)
	}
}

func TestBreakerOpenFailureRefreshesTimeout(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, OpenTimeout: 2})
	b.Record(0, false) // opens at t=0
	if s := b.State(1); s != Open {
		t.Fatalf("state = %v, want open", s)
	}
	b.Record(1.5, false) // late failure refreshes openedAt
	if s := b.State(2.5); s != Open {
		t.Fatalf("timeout should have been refreshed; state = %v", s)
	}
	if s := b.State(3.6); s != HalfOpen {
		t.Fatalf("state = %v, want half-open", s)
	}
}

func TestBreakerDefaults(t *testing.T) {
	c := BreakerConfig{}.withDefaults()
	if c.FailureThreshold <= 0 || c.OpenTimeout <= 0 ||
		c.ProbeFraction <= 0 || c.ProbeFraction > 1 || c.ProbeSuccesses <= 0 {
		t.Fatalf("defaults not filled: %+v", c)
	}
	if Closed.String() != "closed" || Open.String() != "open" || HalfOpen.String() != "half-open" {
		t.Fatal("state names changed")
	}
}

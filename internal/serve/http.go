package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"idde/internal/chaos"
	"idde/internal/obs"
	"idde/internal/units"
)

// stateView is the JSON shape of GET /state.
type stateView struct {
	Now          float64  `json:"now_s"`
	PlanEpoch    int      `json:"plan_epoch"`
	Breakers     []string `json:"breakers"`
	BreakersOpen int      `json:"breakers_open"`
	Health       []string `json:"health"`
	Replans      int64    `json:"replans"`
	ReplanPanics int64    `json:"replan_panics"`
	ReplanErrors int64    `json:"replan_errors"`
}

// Handler exposes the engine's live control surface:
//
//	GET  /state   — virtual clock, plan epoch, breaker states, health
//	GET  /slo     — burn-rate snapshots of every configured SLO
//	GET  /flight  — the flight recorder's exemplar ring as JSONL
//	POST /inject  — append a fault event to the live campaign at the
//	                current virtual time (the chaos hook):
//	                  kind=link-cut&link=U,V[&duration=S]
//	                  kind=outage&servers=A,B[&duration=S]
//	                  kind=brownout&factor=F[&duration=S]
//
// Mount it next to obs.Handler so /metrics sits on the same mux.
func (e *Engine) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/state", func(w http.ResponseWriter, r *http.Request) {
		now := e.Now()
		states := e.BreakerStates(now)
		sv := stateView{Now: float64(now), PlanEpoch: e.plan.load().Epoch}
		for _, s := range states {
			sv.Breakers = append(sv.Breakers, s.String())
			if s == Open {
				sv.BreakersOpen++
			}
		}
		e.mu.Lock()
		for _, h := range e.health {
			sv.Health = append(sv.Health, fmt.Sprintf("%.2f", h))
		}
		sv.Replans = e.stats.replans
		sv.ReplanPanics = e.stats.replanPanics
		sv.ReplanErrors = e.stats.replanErrors
		e.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(sv)
	})
	mux.HandleFunc("/slo", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(e.SLOSnapshots())
	})
	mux.HandleFunc("/flight", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if err := e.flight.WriteJSONL(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/inject", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		ev, err := parseInject(r, e.Now())
		if err == nil {
			err = e.Inject(ev)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		fmt.Fprintf(w, "injected %s at %.3gs\n", ev.Kind, float64(ev.At))
	})
	return mux
}

// Serve mounts the engine's control surface plus the observability
// endpoints (/metrics, /debug/vars, /debug/pprof) on addr. It blocks,
// like http.ListenAndServe.
func (e *Engine) Serve(addr string) error {
	mux := http.NewServeMux()
	h := e.Handler()
	mux.Handle("/state", h)
	mux.Handle("/slo", h)
	mux.Handle("/flight", h)
	mux.Handle("/inject", h)
	mux.Handle("/", obs.Handler(e.sc))
	return http.ListenAndServe(addr, mux)
}

// parseInject turns an /inject request into a chaos.Event striking at
// the engine's current virtual time.
func parseInject(r *http.Request, now units.Seconds) (chaos.Event, error) {
	q := r.URL.Query()
	ev := chaos.Event{At: now}
	if d := q.Get("duration"); d != "" {
		f, err := strconv.ParseFloat(d, 64)
		if err != nil || f < 0 {
			return ev, fmt.Errorf("serve: bad duration %q", d)
		}
		ev.Duration = units.Seconds(f)
	}
	switch kind := q.Get("kind"); kind {
	case "link-cut":
		parts := strings.Split(q.Get("link"), ",")
		if len(parts) != 2 {
			return ev, fmt.Errorf("serve: link-cut needs link=U,V")
		}
		u, err1 := strconv.Atoi(strings.TrimSpace(parts[0]))
		v, err2 := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err1 != nil || err2 != nil {
			return ev, fmt.Errorf("serve: bad link %q", q.Get("link"))
		}
		ev.Kind = chaos.LinkCut
		ev.Link = [2]int{u, v}
	case "outage":
		for _, p := range strings.Split(q.Get("servers"), ",") {
			s, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				return ev, fmt.Errorf("serve: bad servers %q", q.Get("servers"))
			}
			ev.Servers = append(ev.Servers, s)
		}
		ev.Kind = chaos.ServerOutage
	case "brownout":
		f, err := strconv.ParseFloat(q.Get("factor"), 64)
		if err != nil {
			return ev, fmt.Errorf("serve: bad factor %q", q.Get("factor"))
		}
		ev.Kind = chaos.CloudBrownout
		ev.Factor = f
	default:
		return ev, fmt.Errorf("serve: unknown kind %q", kind)
	}
	return ev, nil
}

// Package serve is the resilient serving data plane in front of the
// IDDE solver: a concurrent request loop that routes every user request
// to a replica according to the current (α, σ) strategy, wrapped in the
// resilience stack a production edge store needs — per-server circuit
// breakers (closed/open/half-open with seeded probe admission),
// deadline-budgeted retries with jittered exponential backoff, optional
// hedged second requests, per-server health scoring, and graceful
// degradation that falls back to the next-best replica and ultimately
// the cloud while recording the Eq. 17 latency/backhaul cost of every
// downgrade. A supervised background re-planner consumes degradation
// reports and heals the placement with repair.RepairDegraded (bounded
// re-equilibration waves plus bounded CELF re-commits), atomically
// swapping the routing plan.
//
// The engine runs on a virtual clock in rounds (ticks): each round's
// requests are evaluated in parallel against an immutable snapshot
// (plan generation, breaker states, fault view), and all mutable state
// — breakers, health scores, degradation accounting, re-plan triggers —
// is folded at the round barrier in request order. Because every
// request outcome is a pure function of the snapshot and a per-request
// labeled rng split, outcomes are bit-identical for a fixed seed
// regardless of worker count; wall-clock only ever appears in
// throughput accounting, never in an outcome.
//
// Fault injection is chaos-in-the-loop: a chaos.Campaign acts as the
// live fault timeline. Crossing one of its boundaries rebuilds the
// "fault view" — the degraded instance reality the attempts execute
// against — while the routing plan keeps pointing wherever it pointed,
// exactly the window in which breakers, retries and failover have to
// carry the traffic until the re-planner catches up.
package serve

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"runtime"
	"strings"
	"sync"
	"time"

	"idde/internal/chaos"
	"idde/internal/des"
	"idde/internal/model"
	"idde/internal/obs"
	"idde/internal/repair"
	"idde/internal/rng"
	"idde/internal/units"
)

// Options configures the serving engine.
type Options struct {
	// Seed drives every request draw, loss draw and probe draw.
	Seed uint64
	// Workers bounds the parallel request evaluators per round
	// (default GOMAXPROCS). Outcomes are identical for any value.
	Workers int
	// RPS is the sustained request rate per virtual second (default 500).
	RPS int
	// Tick is the round length in virtual seconds (default 1).
	Tick units.Seconds
	// Duration is the soak length in virtual seconds (default 60).
	Duration units.Seconds
	// Deadline is the per-request latency budget; once a request's
	// accumulated virtual latency exceeds it, the request stops retrying
	// edges and finishes from the cloud (default 2s).
	Deadline units.Seconds
	// MaxRetries bounds retries per source visit after the first attempt
	// (default 2).
	MaxRetries int
	// Backoff is the base retry delay, doubling per attempt (default 2ms).
	Backoff units.Seconds
	// Jitter is the uniform jitter fraction applied to every backoff
	// delay, in [0,1] (default 0.5).
	Jitter float64
	// Hedge enables hedged requests: when the primary resolution's
	// latency exceeds this threshold, a second request to the next-best
	// replica is scored and the faster of the two wins. 0 disables
	// hedging (the deterministic-outcome reference mode).
	Hedge units.Seconds
	// Breaker tunes the per-server circuit breakers.
	Breaker BreakerConfig
	// ReplanDegradedFrac is the fraction of a round's requests that must
	// be degraded to trigger a re-plan between fault boundaries
	// (default 0.05).
	ReplanDegradedFrac float64
	// ReplanMinInterval is the bounded-staleness floor between
	// threshold-triggered re-plans, in virtual seconds (default 2).
	ReplanMinInterval units.Seconds
	// Waves bounds the repair re-equilibration (repair.Options.Waves).
	Waves int
	// Faults is the wired-hop loss/stall model in force during the soak.
	// When a Campaign is set, its Faults field is used instead unless
	// this one is explicitly non-zero.
	Faults des.Faults
	// Campaign is the fault timeline (nil = healthy soak).
	Campaign *chaos.Campaign
	// AsyncReplan moves repair off the round loop onto a supervised
	// background goroutine. Swap timing then depends on wall clock, so
	// outcome determinism is waived; the live front-end uses it, the
	// soak benchmarks keep the default synchronous barrier re-plan.
	AsyncReplan bool
	// Pace sleeps each round to approximately real time (live mode).
	Pace bool
	// Obs receives the data plane's telemetry. nil disables all of it;
	// outcomes are identical either way.
	Obs *obs.Scope
	// SLO configures the burn-rate engine (availability + latency
	// objectives evaluated at every round barrier and per chaos epoch).
	// Disabled by default; outcomes are identical either way.
	SLO SLOOptions
	// FlightRate samples requests into the flight recorder with this
	// probability (deterministic, label-derived — see obs.FlightRecorder).
	// 0 disables the recorder entirely; outcomes and OutcomeHash are
	// identical at any rate.
	FlightRate float64
	// FlightCap bounds the flight recorder's exemplar ring (default 256).
	FlightCap int
	// FlightSink receives triggered flight dumps as JSONL (SLO burn-rate
	// crossings and breaker-open spikes). nil disables triggered dumps;
	// the ring remains readable via Engine.DumpFlight and GET /flight.
	FlightSink io.Writer

	// repairFn overrides repair.RepairDegraded in tests (panic
	// isolation, failure injection into the re-planner itself).
	repairFn func(ref, degraded *model.Instance, st model.Strategy, opt repair.Options) (model.Strategy, *repair.Report, error)
}

// withDefaults fills the zero fields.
func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.RPS <= 0 {
		o.RPS = 500
	}
	if o.Tick <= 0 {
		o.Tick = 1
	}
	if o.Duration <= 0 {
		o.Duration = 60
	}
	if o.Deadline <= 0 {
		o.Deadline = 2
	}
	if o.MaxRetries <= 0 {
		o.MaxRetries = 2
	}
	if o.Backoff <= 0 {
		o.Backoff = units.Seconds(0.002)
	}
	if o.Jitter < 0 || o.Jitter > 1 {
		o.Jitter = 0.5
	}
	o.Breaker = o.Breaker.withDefaults()
	if o.ReplanDegradedFrac <= 0 {
		o.ReplanDegradedFrac = 0.05
	}
	if o.ReplanMinInterval <= 0 {
		o.ReplanMinInterval = 2
	}
	if o.Waves <= 0 {
		o.Waves = 2
	}
	if o.Campaign != nil && !o.Faults.Enabled() {
		o.Faults = o.Campaign.Faults
	}
	o.SLO = o.SLO.withDefaults(o.Deadline)
	if o.FlightCap <= 0 {
		o.FlightCap = 256
	}
	if o.repairFn == nil {
		o.repairFn = repair.RepairDegraded
	}
	return o
}

// RequestOutcome is one request's fully resolved result: where it was
// served from, what it cost, and how far it strayed from the plan.
type RequestOutcome struct {
	User, Item int
	// Served is the serving edge server, or -1 for the cloud.
	Served int
	// Intended is the plan's Eq. 8 choice, or -1 for the cloud.
	Intended int
	// Latency is the virtual completion latency, retries and backoff
	// included.
	Latency units.Seconds
	// Retries counts lost attempts that were re-sent; Failovers counts
	// sources abandoned after their retry budget.
	Retries, Failovers int
	Hedged             bool
	// CloudFallback marks a request that began on an edge source and
	// ended at the cloud; DeadlineExceeded marks a request that burned
	// its whole latency budget first.
	CloudFallback, DeadlineExceeded bool
	// Degraded marks any deviation from the plan's intent. LatencyDelta
	// is the Eq. 17-style cost of the downgrade: measured latency minus
	// the plan's intended latency. BackhaulMB is the cloud backhaul
	// traffic the downgrade caused (EDD-NSTE's cost of every
	// fallback-to-cloud decision).
	Degraded     bool
	LatencyDelta units.Seconds
	BackhaulMB   units.MegaBytes

	// visits holds (server, success) per source visit, folded into the
	// breakers in deterministic order at the round barrier.
	visits []visit
}

type visit struct {
	server int
	ok     bool
}

// view is the immutable per-round snapshot requests evaluate against.
type view struct {
	plan    *Plan
	fv      *model.Instance // fault view: the degraded reality
	brState []BreakerState
	opt     *Options
}

// Engine is the serving data plane. Create with NewEngine, drive with
// RunSoak (virtual-time, deterministic) or the HTTP front-end (live).
type Engine struct {
	opt     Options
	healthy *model.Instance
	plan    planHolder
	breaker []*Breaker
	sc      *obs.Scope

	// Flight recorder + SLO engine. flight is nil when FlightRate is 0
	// (the allocation-free disabled state); slos is empty when SLO is
	// disabled. sloMu guards slos/latHist/epoch accounting against the
	// live front-end's /slo reads racing the round barrier's writes.
	flight      *obs.FlightRecorder
	flightSink  io.Writer
	sloMu       sync.Mutex
	slos        []*obs.SLO // [0] availability, [1] latency
	latHist     *obs.Histogram
	epochStarts []units.Seconds
	epochCells  [][]epochCell // [slo][epoch]
	prevOpen    int
	flightDumps int64

	mu           sync.Mutex // guards campaign, fv, now, health, stats
	campaign     *chaos.Campaign
	fv           *model.Instance
	fvEmpty      bool
	lastDeg      repair.Degradation
	lastBoundary units.Seconds
	now          units.Seconds
	health       []float64
	stats        engineStats
	lastPlanT    units.Seconds
}

// engineStats accumulates engine-lifetime counters (guarded by e.mu).
type engineStats struct {
	replans      int64
	replanPanics int64
	replanErrors int64
}

// NewEngine validates the boot strategy and builds the data plane.
func NewEngine(healthy *model.Instance, st model.Strategy, opt Options) (*Engine, error) {
	if err := healthy.Check(st); err != nil {
		return nil, fmt.Errorf("serve: boot strategy invalid: %w", err)
	}
	opt = opt.withDefaults()
	if opt.Campaign != nil {
		if err := opt.Campaign.Validate(healthy); err != nil {
			return nil, err
		}
	}
	e := &Engine{
		opt:     opt,
		healthy: healthy,
		sc:      opt.Obs,
		fv:      healthy,
		fvEmpty: true,
		health:  make([]float64, healthy.N()),
	}
	for i := range e.health {
		e.health[i] = 1
	}
	e.breaker = make([]*Breaker, healthy.N())
	for i := range e.breaker {
		e.breaker[i] = NewBreaker(opt.Breaker)
	}
	if opt.FlightRate > 0 {
		e.flight = obs.NewFlightRecorder(opt.Workers, opt.FlightCap, opt.FlightRate, opt.Seed)
	}
	e.flightSink = opt.FlightSink
	if opt.SLO.Enabled {
		e.slos = []*obs.SLO{
			obs.NewSLO(obs.SLOConfig{
				Name: "availability", Target: opt.SLO.AvailabilityTarget,
				FastWindow: opt.SLO.FastWindow, SlowWindow: opt.SLO.SlowWindow,
				FastBurn: opt.SLO.FastBurn, SlowBurn: opt.SLO.SlowBurn,
			}),
			obs.NewSLO(obs.SLOConfig{
				Name: "latency", Target: opt.SLO.LatencyTarget,
				FastWindow: opt.SLO.FastWindow, SlowWindow: opt.SLO.SlowWindow,
				FastBurn: opt.SLO.FastBurn, SlowBurn: opt.SLO.SlowBurn,
			}),
		}
		e.latHist = &obs.Histogram{}
		e.epochCells = make([][]epochCell, len(e.slos))
		if opt.Campaign != nil {
			e.epochStarts = opt.Campaign.Boundaries()
		} else {
			e.epochStarts = []units.Seconds{0}
		}
	}
	e.campaign = opt.Campaign
	e.plan.store(&Plan{Epoch: 0, In: healthy, Strategy: st})
	return e, nil
}

// Plan returns the current routing plan generation.
func (e *Engine) Plan() *Plan { return e.plan.load() }

// Now reports the engine's virtual clock.
func (e *Engine) Now() units.Seconds {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.now
}

// BreakerStates reports every server's breaker state at virtual time
// now.
func (e *Engine) BreakerStates(now units.Seconds) []BreakerState {
	out := make([]BreakerState, len(e.breaker))
	for i, b := range e.breaker {
		out[i] = b.State(now)
	}
	return out
}

// Inject appends fault events to the live campaign at the engine's
// current virtual time. The soak loop picks the new boundary up at its
// next round. Used by the HTTP front-end's chaos hook.
func (e *Engine) Inject(evs ...chaos.Event) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	c := &chaos.Campaign{Name: "live"}
	if e.campaign != nil {
		c.Name = e.campaign.Name
		c.Faults = e.campaign.Faults
		c.Events = append(c.Events, e.campaign.Events...)
	}
	c.Events = append(c.Events, evs...)
	if err := c.Validate(e.healthy); err != nil {
		return err
	}
	e.campaign = c
	e.fv = nil // force a fault-view rebuild at the next boundary check
	return nil
}

// snapshotLocked rebuilds the fault view if the campaign's fault state
// changed since the last call, and returns the round's immutable view.
// recovered reports whether the change lifted any fault — the one fault
// transition the control plane is told about directly (a server
// re-registering), as opposed to onsets, which the data plane must
// discover through failures. Callers hold e.mu.
func (e *Engine) snapshotLocked(now units.Seconds) (v *view, recovered bool, err error) {
	if e.fv == nil || e.fvStale(now) {
		d := repair.Degradation{}
		if e.campaign != nil {
			d = e.campaign.DegradationAt(now)
		}
		recovered = faultLifted(e.lastDeg, d)
		if degradationEmpty(d) {
			e.fv = e.healthy
			e.fvEmpty = true
		} else {
			fv, derr := repair.Degrade(e.healthy, d)
			if derr != nil {
				return nil, false, fmt.Errorf("serve: fault view at %v: %w", now, derr)
			}
			e.fv = fv
			e.fvEmpty = false
		}
		e.lastDeg = d
		e.lastBoundary = boundaryAt(e.campaign, now)
	}
	v = &view{
		plan:    e.plan.load(),
		fv:      e.fv,
		brState: e.BreakerStates(now),
		opt:     &e.opt,
	}
	return v, recovered, nil
}

// faultLifted reports whether any fault present in old is gone in new:
// a failed server back up, a cut link restored, or a brownout eased.
func faultLifted(old, new repair.Degradation) bool {
	up := map[int]bool{}
	for _, s := range new.FailedServers {
		up[s] = true
	}
	for _, s := range old.FailedServers {
		if !up[s] {
			return true
		}
	}
	cut := map[[2]int]bool{}
	for _, l := range new.CutLinks {
		cut[l] = true
		cut[[2]int{l[1], l[0]}] = true
	}
	for _, l := range old.CutLinks {
		if !cut[l] {
			return true
		}
	}
	if old.CloudFactor != 0 && old.CloudFactor != 1 {
		if new.CloudFactor == 0 || new.CloudFactor == 1 || new.CloudFactor > old.CloudFactor {
			return true
		}
	}
	return false
}

// degradationEmpty reports whether d injects nothing.
func degradationEmpty(d repair.Degradation) bool {
	return len(d.FailedServers) == 0 && len(d.CutLinks) == 0 &&
		(d.CloudFactor == 0 || d.CloudFactor == 1)
}

// boundaryAt reports the latest campaign boundary at or before t (0 for
// a nil campaign).
func boundaryAt(c *chaos.Campaign, t units.Seconds) units.Seconds {
	if c == nil {
		return 0
	}
	last := units.Seconds(0)
	for _, b := range c.Boundaries() {
		if b <= t && b > last {
			last = b
		}
	}
	return last
}

// fvStale reports whether a campaign boundary was crossed since the
// fault view was built. Callers hold e.mu.
func (e *Engine) fvStale(now units.Seconds) bool {
	return e.campaign != nil && boundaryAt(e.campaign, now) != e.lastBoundary
}

// evalRequest resolves one request against the snapshot. It is a pure
// function of (v, j, k, s): no shared state is read or written, which
// is what makes outcomes independent of worker interleaving. The draw
// order within the stream is part of the determinism contract — do not
// reorder draws without regenerating baselines.
//
// rec, when non-nil, receives the request's flight record: the full
// attempt chain with the breaker state observed at each admission, the
// retries burned and deadline budget remaining per hop, hedge raced/won,
// and the Eq. 17 degradation pricing. Every instrumentation append is
// gated on rec, so the rec==nil path (sampling off, or an unsampled
// request) does exactly the work it did before the recorder existed.
func evalRequest(v *view, j, k int, s *rng.Stream, rec *obs.FlightRecord) RequestOutcome {
	opt := v.opt
	plan := v.plan
	st := plan.Strategy
	out := RequestOutcome{User: j, Item: k, Served: -1, Intended: -1}

	// The plan's intent, under the plan's own world view.
	intendedSrc, intendedEdge := plan.In.BestSource(st.Alloc, st.Delivery, j, k, st.Mode, nil)
	intendedLat := plan.In.RequestLatencyMode(st.Alloc, st.Delivery, j, k, st.Mode)
	if intendedEdge {
		out.Intended = intendedSrc
	}

	probeDraw := s.Float64() // one probe-admission draw per request

	a := st.Alloc[j]
	size := v.fv.Wl.Items[k].Size
	var latency units.Seconds

	// A dead attachment point means the user's wireless leg is gone in
	// reality: the request can only be served over the cloud path until
	// the re-planner re-attaches the user.
	attachmentDown := a.Allocated() && v.fv.Top.Servers[a.Server].Failed

	admit := func(o int) bool {
		switch v.brState[o] {
		case Closed:
			return true
		case HalfOpen:
			return probeDraw < opt.Breaker.ProbeFraction
		default:
			return false
		}
	}

	tried := map[int]bool{}
	skip := func(o int) bool { return tried[o] || !admit(o) }

	// hop appends one attempt to the flight record (no-op when the
	// request is unsampled). Call it after latency has absorbed the hop,
	// so BudgetMs is the deadline budget remaining once the hop is done.
	hop := func(server int, kind string, retries int, hopLat units.Seconds, ok bool) {
		if rec == nil {
			return
		}
		br := ""
		if server >= 0 {
			br = v.brState[server].String()
		}
		rec.Attempts = append(rec.Attempts, obs.FlightAttempt{
			Server: server, Kind: kind, Breaker: br, Retries: retries,
			LatencyMs: hopLat.Millis(), BudgetMs: (opt.Deadline - latency).Millis(), OK: ok,
		})
	}
	// hopKind classifies an edge hop: the first source visited is the
	// plan's Eq. 8 primary, every later one is an Eq. 8 failover hop.
	hopKind := func() string {
		if len(tried) > 0 {
			return "failover"
		}
		return "edge"
	}

	serveCloud := func() {
		cl := v.fv.CloudLatency(k)
		latency += cl
		out.Served = -1
		if len(tried) > 0 {
			out.CloudFallback = true
		}
		hop(-1, "cloud", 0, cl, true)
	}

	if !a.Allocated() || attachmentDown {
		serveCloud()
		out.Latency = latency
		finishOutcome(&out, intendedEdge, intendedLat, size, attachmentDown)
		fillFlight(rec, &out)
		return out
	}

	dst := a.Server
	servedEdge := false
	for !servedEdge {
		src, viaEdge := plan.In.BestSource(st.Alloc, st.Delivery, j, k, st.Mode, skip)
		if !viaEdge {
			serveCloud()
			break
		}
		kind := hopKind()
		if src == dst || st.Mode != model.Collaborative {
			// Replica at the attachment server (or over-the-air
			// delivery): no wired hop, so the wired fault model does not
			// apply — but the holder itself may be dead in reality.
			if v.fv.Top.Servers[src].Failed {
				out.visits = append(out.visits, visit{server: src, ok: false})
				out.Failovers++
				latency += opt.Backoff // connection-refused detection cost
				hop(src, kind, 0, opt.Backoff, false)
				tried[src] = true
				continue
			}
			out.Served = src
			servedEdge = true
			out.visits = append(out.visits, visit{server: src, ok: true})
			hop(src, kind, 0, 0, true)
			break
		}

		// Wired transfer src→dst under the fault view.
		edgeLat := v.fv.EdgeLatency(k, src, dst)
		if v.fv.Top.Servers[src].Failed || math.IsInf(float64(edgeLat), 1) {
			// Dead source or unreachable path: fail fast, as a router
			// does on connection-refused / no-route — one failed visit,
			// no retries.
			out.visits = append(out.visits, visit{server: src, ok: false})
			out.Failovers++
			latency += opt.Backoff
			hop(src, kind, 0, opt.Backoff, false)
			tried[src] = true
			continue
		}
		hopStart, retriesBefore := latency, out.Retries
		ok := false
		for attempt := 0; attempt <= opt.MaxRetries; attempt++ {
			attemptLat := edgeLat
			if opt.Faults.StallProb > 0 && s.Bool(opt.Faults.StallProb) {
				attemptLat += opt.Faults.StallTime
			}
			if !s.Bool(opt.Faults.LossProb) {
				latency += attemptLat
				ok = true
				break
			}
			// Loss detected at the end of the attempt: the time is spent
			// either way, then jittered exponential backoff.
			out.Retries++
			backoff := units.Seconds(float64(opt.Backoff) * math.Pow(2, float64(attempt)))
			backoff = units.Seconds(float64(backoff) * (1 + opt.Jitter*s.Float64()))
			latency += attemptLat + backoff
			if latency > opt.Deadline {
				out.DeadlineExceeded = true
				break
			}
		}
		hop(src, kind, out.Retries-retriesBefore, latency-hopStart, ok)
		if ok {
			out.Served = src
			servedEdge = true
			out.visits = append(out.visits, visit{server: src, ok: true})
			break
		}
		out.visits = append(out.visits, visit{server: src, ok: false})
		out.Failovers++
		tried[src] = true
		if out.DeadlineExceeded {
			serveCloud()
			break
		}
	}

	// Hedging: when the resolved latency is already past the hedge
	// threshold, score a single shadow attempt at the next-best source
	// and take the faster outcome.
	if opt.Hedge > 0 && servedEdge && latency > opt.Hedge {
		tried[out.Served] = true
		if hsrc, viaEdge := plan.In.BestSource(st.Alloc, st.Delivery, j, k, st.Mode, skip); viaEdge {
			hLat := v.fv.EdgeLatency(k, hsrc, dst)
			if !v.fv.Top.Servers[hsrc].Failed && !math.IsInf(float64(hLat), 1) {
				if opt.Faults.StallProb > 0 && s.Bool(opt.Faults.StallProb) {
					hLat += opt.Faults.StallTime
				}
				won := false
				if !s.Bool(opt.Faults.LossProb) {
					total := opt.Hedge + hLat
					if total < latency {
						latency = total
						out.Served = hsrc
						out.Hedged = true
						won = true
						out.visits = append(out.visits, visit{server: hsrc, ok: true})
					}
				}
				if rec != nil {
					rec.Hedged = true // a shadow attempt was actually raced
					hop(hsrc, "hedge", 0, hLat, won)
				}
			}
		}
	}

	out.Latency = latency
	finishOutcome(&out, intendedEdge, intendedLat, size, attachmentDown)
	fillFlight(rec, &out)
	return out
}

// fillFlight copies the resolved outcome into the request's flight
// record. Round and Index were stamped by the sampler; Hedged/Attempts
// were accumulated along the way.
func fillFlight(rec *obs.FlightRecord, o *RequestOutcome) {
	if rec == nil {
		return
	}
	rec.User, rec.Item = o.User, o.Item
	rec.Intended, rec.Served = o.Intended, o.Served
	rec.Retries, rec.Failovers = o.Retries, o.Failovers
	if o.Hedged {
		rec.Hedged, rec.HedgeWon = true, true
	}
	rec.CloudFallback = o.CloudFallback
	rec.DeadlineExceeded = o.DeadlineExceeded
	rec.Degraded = o.Degraded
	rec.LatencyMs = o.Latency.Millis()
	rec.LatencyDeltaMs = o.LatencyDelta.Millis()
	rec.BackhaulMB = float64(o.BackhaulMB)
}

// finishOutcome derives the degradation accounting shared by every exit
// path: any deviation from the plan's intent is a degradation, priced by
// the latency delta over the plan's expectation plus the backhaul MB of
// an unplanned cloud fetch.
func finishOutcome(out *RequestOutcome, intendedEdge bool, intendedLat units.Seconds, size units.MegaBytes, attachmentDown bool) {
	servedCloud := out.Served < 0
	deviates := out.Served != out.Intended
	out.Degraded = deviates || out.CloudFallback || out.DeadlineExceeded || attachmentDown
	if out.Degraded {
		if d := out.Latency - intendedLat; d > 0 {
			out.LatencyDelta = d
		}
		if servedCloud && intendedEdge {
			out.BackhaulMB = size
		}
	}
}

// requestPairs flattens the workload's request matrix.
func requestPairs(in *model.Instance) [][2]int {
	var out [][2]int
	for j, items := range in.Wl.Requests {
		for _, k := range items {
			out = append(out, [2]int{j, k})
		}
	}
	return out
}

// Run builds an engine and executes the soak in one call — the main
// entry point for benchmarks, tests and the CLI's soak mode.
func Run(ctx context.Context, healthy *model.Instance, st model.Strategy, opt Options) (*SoakReport, error) {
	e, err := NewEngine(healthy, st, opt)
	if err != nil {
		return nil, err
	}
	return e.RunSoak(ctx)
}

// RunSoak drives the engine's round loop for Options.Duration of
// virtual time, returning the full soak accounting. Cancelling the
// context stops the soak at the next round barrier and returns the
// partial report with ctx's error; no goroutines are leaked either way.
func (e *Engine) RunSoak(ctx context.Context) (*SoakReport, error) {
	opt := e.opt
	pairs := requestPairs(e.healthy)
	if len(pairs) == 0 {
		return nil, fmt.Errorf("serve: workload has no requests")
	}
	root := rng.New(opt.Seed)
	rounds := int(float64(opt.Duration) / float64(opt.Tick))
	if rounds < 1 {
		rounds = 1
	}
	perRound := int(float64(opt.RPS) * float64(opt.Tick))
	if perRound < 1 {
		perRound = 1
	}

	rep := newSoakReport(&opt, rounds, perRound)
	hash := fnv.New64a()
	outcomes := make([]RequestOutcome, perRound)
	reqs := make([][2]int, perRound)

	var replanner *asyncReplanner
	if opt.AsyncReplan {
		replanner = startAsyncReplanner(e)
		defer replanner.stop()
	}

	e.sc.Begin("serve", "soak", map[string]any{
		"rounds": rounds, "per_round": perRound, "rps": opt.RPS,
	})
	defer e.sc.End("serve", "soak")
	wallStart := time.Now()

	var ctxErr error
	for r := 0; r < rounds; r++ {
		if err := ctx.Err(); err != nil {
			ctxErr = err
			break
		}
		now := units.Seconds(float64(r) * float64(opt.Tick))
		e.mu.Lock()
		e.now = now
		v, recovered, err := e.snapshotLocked(now)
		fvEmpty := e.fvEmpty
		e.mu.Unlock()
		if err != nil {
			return nil, err
		}

		// Recovery is the one fault transition the control plane hears
		// about directly (a server re-registering): re-plan to re-admit.
		// Fault *onsets* are deliberately not pushed — the data plane
		// discovers them through failures, breakers carry the traffic,
		// and the degraded-fraction trigger below heals the plan.
		if recovered && r > 0 {
			e.requestReplan(replanner, now, v.fv)
			if !opt.AsyncReplan {
				// The plan changed: rebuild the snapshot so this round
				// already routes on the re-admitted table.
				v = &view{plan: e.plan.load(), fv: v.fv, brState: v.brState, opt: v.opt}
			}
		}

		// Draw the round's request mix, then evaluate in parallel.
		rs := root.SplitN("round", r)
		for i := range reqs {
			reqs[i] = pairs[rs.IntN(len(pairs))]
		}
		base := r * perRound
		var wg sync.WaitGroup
		chunk := (perRound + opt.Workers - 1) / opt.Workers
		for w := 0; w < opt.Workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > perRound {
				hi = perRound
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				sh := e.flight.Shard(w)
				for i := lo; i < hi; i++ {
					s := root.SplitN("req", base+i)
					// The sampling decision hashes the stream's seed — a
					// pure function of the global request index — so the
					// sampled set is identical at any worker count and no
					// rng draw is consumed (outcomes are unchanged).
					var rec *obs.FlightRecord
					if e.flight.Sample(s.Seed()) {
						rec = &obs.FlightRecord{Round: r, Index: i}
					}
					outcomes[i] = evalRequest(v, reqs[i][0], reqs[i][1], s, rec)
					if rec != nil {
						sh.Add(*rec)
					}
				}
			}(w, lo, hi)
		}
		wg.Wait()

		// Barrier fold, in request order: breakers, health, metrics,
		// degradation accounting, hash, flight merge, SLO burn rates.
		agg := e.foldRound(r, now, outcomes, hash, rep)

		// Threshold-triggered re-plan under bounded staleness.
		if agg.degraded > 0 &&
			float64(agg.degraded)/float64(perRound) >= opt.ReplanDegradedFrac &&
			now-e.lastPlanTime() >= opt.ReplanMinInterval {
			e.requestReplan(replanner, now, v.fv)
		}

		rep.observeRound(r, now, agg, fvEmpty, e.plan.load().Epoch)

		if opt.Pace {
			elapsed := time.Since(wallStart)
			target := time.Duration(float64(r+1) * float64(opt.Tick) * float64(time.Second))
			if sleep := target - elapsed; sleep > 0 {
				select {
				case <-time.After(sleep):
				case <-ctx.Done():
				}
			}
		}
	}
	rep.finish(e, time.Since(wallStart), hash)
	return rep, ctxErr
}

// roundAgg is the deterministic fold of one round's outcomes.
type roundAgg struct {
	requests, degraded, retries, failovers int
	cloudFallbacks, deadlineExceeded       int
	hedged, cloudServed                    int
	open                                   int
	latencyOK                              int // requests at or under the latency SLO threshold
	latencySum                             float64
	latencyDeltaS                          float64
	backhaulMB                             float64
}

// foldRound folds the round's outcomes into the engine and report in
// request order. The fold is the only writer of breaker and health
// state during a soak, so the whole data plane stays deterministic.
func (e *Engine) foldRound(r int, now units.Seconds, outcomes []RequestOutcome, hash hashWriter, rep *SoakReport) roundAgg {
	const healthGamma = 0.05
	var agg roundAgg
	end := now + e.opt.Tick
	for i := range outcomes {
		o := &outcomes[i]
		agg.requests++
		agg.latencySum += float64(o.Latency)
		agg.retries += o.Retries
		agg.failovers += o.Failovers
		if o.CloudFallback {
			agg.cloudFallbacks++
		}
		if o.DeadlineExceeded {
			agg.deadlineExceeded++
		}
		if o.Hedged {
			agg.hedged++
		}
		if o.Served < 0 {
			agg.cloudServed++
		}
		if o.Latency <= e.opt.SLO.LatencyThreshold {
			agg.latencyOK++
		}
		if o.Degraded {
			agg.degraded++
			agg.latencyDeltaS += float64(o.LatencyDelta)
			agg.backhaulMB += float64(o.BackhaulMB)
		}
		for _, vs := range o.visits {
			e.breaker[vs.server].Record(end, vs.ok)
			h := e.health[vs.server]
			target := 0.0
			if vs.ok {
				target = 1
			}
			e.health[vs.server] = (1-healthGamma)*h + healthGamma*target
		}
		e.observeLatencySLO(o.Latency)
		rep.observeOutcome(o)
		writeOutcomeHash(hash, r, i, o)
	}
	for _, b := range e.breaker {
		if b.State(end) == Open {
			agg.open++
		}
	}

	// Flight merge + SLO burn rates, then triggered dumps. The merge is
	// the only point records enter the ring (and the only point eviction
	// happens), so the retained exemplar set is worker-count-independent.
	e.flight.MergeRound()
	reasons := e.observeSLOs(now, agg)
	if agg.open > e.prevOpen {
		reasons = append(reasons, "breaker-spike")
	}
	e.prevOpen = agg.open
	if len(reasons) > 0 && e.flight != nil && e.flightSink != nil {
		if err := e.flight.WriteDump(e.flightSink, strings.Join(reasons, "+"), r, float64(now)); err == nil {
			e.flightDumps++
		}
	}

	if sc := e.sc; sc.Enabled() {
		sc.Count("serve_requests_total", int64(agg.requests))
		sc.Count("serve_retries_total", int64(agg.retries))
		sc.Count("serve_failovers_total", int64(agg.failovers))
		sc.Count("serve_cloud_fallbacks_total", int64(agg.cloudFallbacks))
		sc.Count("serve_deadline_exceeded_total", int64(agg.deadlineExceeded))
		sc.Count("serve_hedges_total", int64(agg.hedged))
		sc.Count("serve_degraded_total", int64(agg.degraded))
		for i := range outcomes {
			sc.Observe("serve_request_latency_ms", outcomes[i].Latency.Millis())
		}
		sc.SetGauge("serve_breakers_open", float64(agg.open))
		sc.SetGauge("serve_plan_epoch", float64(e.plan.load().Epoch))
		minH := 1.0
		for _, h := range e.health {
			if h < minH {
				minH = h
			}
		}
		sc.SetGauge("serve_health_min", minH)
		if sc.Tracing() {
			sc.Instant("serve", "round", map[string]any{
				"round":     r,
				"requests":  agg.requests,
				"degraded":  agg.degraded,
				"retries":   agg.retries,
				"failovers": agg.failovers,
				"open":      agg.open,
			})
		}
	}
	return agg
}

// hashWriter is the subset of hash.Hash64 the outcome fingerprint needs.
type hashWriter interface {
	Write(p []byte) (int, error)
	Sum64() uint64
}

// writeOutcomeHash folds one outcome into the determinism fingerprint.
func writeOutcomeHash(h hashWriter, round, idx int, o *RequestOutcome) {
	var buf [8]byte
	put := func(v uint64) {
		for b := 0; b < 8; b++ {
			buf[b] = byte(v >> (8 * b))
		}
		h.Write(buf[:])
	}
	put(uint64(round))
	put(uint64(idx))
	put(uint64(int64(o.Served)))
	put(math.Float64bits(float64(o.Latency)))
	put(uint64(o.Retries)<<32 | uint64(o.Failovers))
	flags := uint64(0)
	if o.Hedged {
		flags |= 1
	}
	if o.CloudFallback {
		flags |= 2
	}
	if o.DeadlineExceeded {
		flags |= 4
	}
	if o.Degraded {
		flags |= 8
	}
	put(flags)
}

// lastPlanTime reports when the plan last changed (virtual time).
func (e *Engine) lastPlanTime() units.Seconds {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.lastPlanT
}

package serve

import (
	"fmt"
	"sync"

	"idde/internal/model"
	"idde/internal/repair"
	"idde/internal/units"
)

// requestReplan heals the routing plan onto the given fault view. In
// synchronous mode (replanner == nil) the repair runs inline at the
// round barrier — deterministic, since repair itself is deterministic.
// In async mode the fault view is handed to the supervised background
// goroutine; if a repair is already in flight the request is coalesced
// into the pending slot (only the newest view matters).
func (e *Engine) requestReplan(replanner *asyncReplanner, now units.Seconds, fv *model.Instance) {
	if replanner != nil {
		replanner.submit(replanJob{now: now, fv: fv})
		return
	}
	e.replanOnce(now, fv)
}

// replanOnce runs one supervised repair pass and, on success, swaps the
// plan. A panicking or failing repair never takes the data plane down:
// the old plan stays in force and the incident is counted — exactly the
// contract a control-plane component owes its data plane.
func (e *Engine) replanOnce(now units.Seconds, fv *model.Instance) {
	old := e.plan.load()
	st, repRep, err := e.supervisedRepair(old, fv)
	e.mu.Lock()
	defer e.mu.Unlock()
	switch {
	case err != nil:
		e.stats.replanErrors++
		e.sc.Count("serve_replan_errors_total", 1)
		if e.sc.Tracing() {
			e.sc.Instant("serve", "replan-failed", map[string]any{
				"epoch": old.Epoch, "err": err.Error(),
			})
		}
	default:
		e.plan.store(&Plan{Epoch: old.Epoch + 1, In: fv, Strategy: st})
		e.lastPlanT = now
		e.stats.replans++
		e.sc.Count("serve_replans_total", 1)
		if e.sc.Tracing() {
			args := map[string]any{"epoch": old.Epoch + 1}
			if repRep != nil {
				args["moves"] = repRep.Moves
				args["replaced"] = repRep.ReplacedReplicas
			}
			e.sc.Instant("serve", "replan", args)
		}
	}
}

// supervisedRepair runs repair.RepairDegraded with panic isolation.
func (e *Engine) supervisedRepair(old *Plan, fv *model.Instance) (st model.Strategy, rep *repair.Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			e.mu.Lock()
			e.stats.replanPanics++
			e.mu.Unlock()
			e.sc.Count("serve_replan_panics_total", 1)
			err = fmt.Errorf("serve: re-planner panicked: %v", r)
		}
	}()
	e.sc.Begin("serve", "repair", map[string]any{"epoch": old.Epoch})
	defer e.sc.End("serve", "repair")
	return e.opt.repairFn(old.In, fv, old.Strategy, repair.Options{Waves: e.opt.Waves})
}

// replanJob is one queued repair request.
type replanJob struct {
	now units.Seconds
	fv  *model.Instance
}

// asyncReplanner is the background re-planner used in live mode: a
// single supervised worker goroutine with a one-deep coalescing queue
// (bounded staleness: at most one stale repair runs before the newest
// fault view is honoured). stop() joins the worker — no goroutine
// outlives the soak.
type asyncReplanner struct {
	e *Engine

	mu      sync.Mutex
	pending *replanJob
	closed  bool
	kick    chan struct{}
	done    chan struct{}
}

func startAsyncReplanner(e *Engine) *asyncReplanner {
	r := &asyncReplanner{
		e:    e,
		kick: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	go r.loop()
	return r
}

// submit coalesces the job into the pending slot and wakes the worker.
func (r *asyncReplanner) submit(j replanJob) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.pending = &j
	r.mu.Unlock()
	select {
	case r.kick <- struct{}{}:
	default:
	}
}

func (r *asyncReplanner) loop() {
	defer close(r.done)
	for range r.kick {
		for {
			r.mu.Lock()
			j := r.pending
			r.pending = nil
			r.mu.Unlock()
			if j == nil {
				break
			}
			r.e.replanOnce(j.now, j.fv)
		}
	}
}

// stop shuts the worker down and waits for it to exit.
func (r *asyncReplanner) stop() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.mu.Unlock()
	close(r.kick)
	<-r.done
}

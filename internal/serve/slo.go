package serve

import (
	"io"

	"idde/internal/obs"
	"idde/internal/units"
)

// SLOOptions configures the serving data plane's burn-rate engine: two
// objectives — availability (a request is good when it was served as
// planned, i.e. not Degraded) and latency (good when its virtual latency
// is at or under LatencyThreshold) — evaluated at every round barrier
// with the multi-window fast/slow burn-rate rule, and accounted per
// chaos epoch so a campaign's fault windows can be compared against its
// healthy ones. Everything runs on the virtual clock, so burn-rate
// trajectories (and dump triggers) are deterministic for a fixed seed.
type SLOOptions struct {
	// Enabled turns the engine on; all other fields default when zero.
	Enabled bool
	// AvailabilityTarget is the availability objective (default 0.999).
	AvailabilityTarget float64
	// LatencyTarget is the latency objective (default 0.99).
	LatencyTarget float64
	// LatencyThreshold is the "good request" latency bound
	// (default Deadline/8 — generous against a healthy edge hit, tight
	// against retry storms and cloud fallbacks).
	LatencyThreshold units.Seconds
	// FastWindow/SlowWindow (rounds) and FastBurn/SlowBurn pass through
	// to obs.SLOConfig (defaults 5/30 and 14.4/6).
	FastWindow, SlowWindow int
	FastBurn, SlowBurn     float64
}

// withDefaults resolves the zero fields against the request deadline.
func (s SLOOptions) withDefaults(deadline units.Seconds) SLOOptions {
	if !s.Enabled {
		return s
	}
	if s.AvailabilityTarget <= 0 || s.AvailabilityTarget >= 1 {
		s.AvailabilityTarget = 0.999
	}
	if s.LatencyTarget <= 0 || s.LatencyTarget >= 1 {
		s.LatencyTarget = 0.99
	}
	if s.LatencyThreshold <= 0 {
		s.LatencyThreshold = deadline / 8
	}
	return s
}

// epochCell accumulates one SLO's good/total counts inside one chaos
// epoch.
type epochCell struct {
	good, total int64
}

// EpochSLO is one chaos epoch's slice of an SLO's accounting.
type EpochSLO struct {
	Epoch      int     `json:"epoch"`
	StartS     float64 `json:"start_s"`
	Good       int64   `json:"good"`
	Total      int64   `json:"total"`
	Compliance float64 `json:"compliance"`
}

// SLOReport is one SLO's final accounting in the soak report: the
// cumulative snapshot, the per-chaos-epoch breakdown, and — for the
// latency SLO — the threshold plus streaming quantile estimates from the
// engine's log2-bucket histogram (factor-of-2 error bound; the exact
// per-phase percentiles live in Phases).
type SLOReport struct {
	obs.SLOSnapshot
	ThresholdMs float64    `json:"threshold_ms,omitempty"`
	EstP50Ms    float64    `json:"est_p50_ms,omitempty"`
	EstP99Ms    float64    `json:"est_p99_ms,omitempty"`
	EstP999Ms   float64    `json:"est_p999_ms,omitempty"`
	Epochs      []EpochSLO `json:"epochs,omitempty"`
}

// observeSLOs folds one round into the SLO engine at the barrier:
// latency histogram, both objectives' burn rates, and the per-epoch
// cells. It returns the dump-trigger reasons the round raised (burn-rate
// breaches). No-op (nil) when SLOs are disabled.
func (e *Engine) observeSLOs(now units.Seconds, agg roundAgg) []string {
	if len(e.slos) == 0 {
		return nil
	}
	e.mu.Lock()
	c := e.campaign
	e.mu.Unlock()
	ep := c.EpochAt(now)

	e.sloMu.Lock()
	defer e.sloMu.Unlock()
	total := int64(agg.requests)
	goods := [2]int64{total - int64(agg.degraded), int64(agg.latencyOK)}
	var reasons []string
	for i, s := range e.slos {
		if st := s.Observe(goods[i], total); st.Breach {
			reasons = append(reasons, "slo-burn:"+s.Config().Name)
		}
		for len(e.epochCells[i]) <= ep {
			e.epochCells[i] = append(e.epochCells[i], epochCell{})
		}
		e.epochCells[i][ep].good += goods[i]
		e.epochCells[i][ep].total += total
	}
	return reasons
}

// observeLatencySLO feeds one outcome's latency into the streaming
// histogram backing the latency SLO's quantile estimates.
func (e *Engine) observeLatencySLO(lat units.Seconds) {
	if e.latHist != nil {
		e.latHist.Observe(lat.Millis())
	}
}

// SLOSnapshots reports the current state of every configured SLO — the
// GET /slo payload. Empty when SLOs are disabled.
func (e *Engine) SLOSnapshots() []obs.SLOSnapshot {
	e.sloMu.Lock()
	defer e.sloMu.Unlock()
	out := make([]obs.SLOSnapshot, 0, len(e.slos))
	for _, s := range e.slos {
		out = append(out, s.Snapshot())
	}
	return out
}

// sloReports seals the per-SLO accounting for the soak report.
func (e *Engine) sloReports() []SLOReport {
	e.sloMu.Lock()
	defer e.sloMu.Unlock()
	out := make([]SLOReport, 0, len(e.slos))
	for i, s := range e.slos {
		r := SLOReport{SLOSnapshot: s.Snapshot()}
		if s.Config().Name == "latency" {
			r.ThresholdMs = e.opt.SLO.LatencyThreshold.Millis()
			r.EstP50Ms = e.latHist.Quantile(0.50)
			r.EstP99Ms = e.latHist.Quantile(0.99)
			r.EstP999Ms = e.latHist.Quantile(0.999)
		}
		for ep, cell := range e.epochCells[i] {
			es := EpochSLO{Epoch: ep, Good: cell.good, Total: cell.total}
			if ep < len(e.epochStarts) {
				es.StartS = float64(e.epochStarts[ep])
			}
			if cell.total > 0 {
				es.Compliance = float64(cell.good) / float64(cell.total)
			}
			r.Epochs = append(r.Epochs, es)
		}
		out = append(out, r)
	}
	return out
}

// DumpFlight writes a triggered flight dump (header + the retained
// exemplar ring as JSONL) to w, stamped with the engine's current round
// and virtual time. Used by the recovery gate and the live front-end;
// a disabled recorder writes nothing.
func (e *Engine) DumpFlight(w io.Writer, reason string) error {
	if e.flight == nil {
		return nil
	}
	e.mu.Lock()
	now := e.now
	e.mu.Unlock()
	round := int(float64(now) / float64(e.opt.Tick))
	return e.flight.WriteDump(w, reason, round, float64(now))
}

// Flight exposes the engine's flight recorder (nil when FlightRate is
// 0) — the GET /flight payload and the test seam for the ring.
func (e *Engine) Flight() *obs.FlightRecorder { return e.flight }

// Alloc guard for the flight recorder's sampling-off request path. The
// race detector instruments allocations, so this only runs in the plain
// tier-1 `go test ./...` pass.
//
//go:build !race

package serve

import (
	"testing"

	"idde/internal/obs"
	"idde/internal/rng"
)

// TestSamplingOffPathZeroAllocs pins the tentpole's overhead contract:
// the per-request cost of the flight recorder when a request is NOT
// sampled — the Sample gate plus the rec==nil instrumentation gates
// inside evalRequest — is exactly zero additional allocations.
func TestSamplingOffPathZeroAllocs(t *testing.T) {
	in := genInstance(t, 10, 60, 4, 11)
	st := solved(t, in)
	e, err := NewEngine(in, st, testOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	e.mu.Lock()
	v, _, err := e.snapshotLocked(0)
	e.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	pairs := requestPairs(in)
	root := rng.New(1)

	// Baseline: the request path with no recorder in the build at all.
	measure := func(f *obs.FlightRecorder) float64 {
		i := 0
		return testing.AllocsPerRun(2000, func() {
			s := root.SplitN("req", i)
			if f.Sample(s.Seed()) {
				t.Fatal("rate-0 recorder sampled")
			}
			p := pairs[i%len(pairs)]
			evalRequest(v, p[0], p[1], s, nil)
			i++
		})
	}
	baseline := measure(nil)
	gated := measure(obs.NewFlightRecorder(4, 64, 0, 1))
	if gated != baseline {
		t.Fatalf("sampling-off gate costs %.2f allocs/op (baseline %.2f), want 0 extra", gated, baseline)
	}
}

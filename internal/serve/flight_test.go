package serve

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"idde/internal/obs"
)

// flightRun executes an outage soak with the flight recorder + SLO
// engine on and returns the engine, report, and triggered-dump sink.
func flightRun(t *testing.T, workers int, rate float64) (*Engine, *SoakReport, *bytes.Buffer) {
	t.Helper()
	in := genInstance(t, 10, 60, 4, 11)
	st := solved(t, in)
	sink := &bytes.Buffer{}
	opt := testOptions(7)
	opt.Workers = workers
	opt.Campaign = outageCampaign(in, st)
	opt.SLO = SLOOptions{Enabled: true}
	opt.FlightRate = rate
	opt.FlightCap = 512
	opt.FlightSink = sink
	e, err := NewEngine(in, st, opt)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.RunSoak(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return e, rep, sink
}

// TestFlightDumpDeterministicAcrossWorkers is the tentpole acceptance
// contract: same-seed runs produce byte-identical flight rings — and so
// byte-identical dumps — at any worker count, with the OutcomeHash
// unchanged.
func TestFlightDumpDeterministicAcrossWorkers(t *testing.T) {
	e1, rep1, sink1 := flightRun(t, 1, 0.2)
	e8, rep8, sink8 := flightRun(t, 8, 0.2)

	if rep1.OutcomeHash != rep8.OutcomeHash {
		t.Errorf("outcome hash differs across worker counts: %s vs %s", rep1.OutcomeHash, rep8.OutcomeHash)
	}
	var b1, b8 bytes.Buffer
	if err := e1.Flight().WriteJSONL(&b1); err != nil {
		t.Fatal(err)
	}
	if err := e8.Flight().WriteJSONL(&b8); err != nil {
		t.Fatal(err)
	}
	if b1.Len() == 0 {
		t.Fatal("flight ring is empty")
	}
	if !bytes.Equal(b1.Bytes(), b8.Bytes()) {
		t.Error("flight ring JSONL differs across worker counts")
	}
	if !bytes.Equal(sink1.Bytes(), sink8.Bytes()) {
		t.Error("triggered flight dumps differ across worker counts")
	}
	if rep1.FlightSampled != rep8.FlightSampled || rep1.FlightSampled == 0 {
		t.Errorf("flight sampled %d vs %d, want equal and > 0", rep1.FlightSampled, rep8.FlightSampled)
	}
}

// TestOutcomeHashUnchangedBySampling: turning the flight recorder on
// must not consume rng draws or perturb outcomes in any way.
func TestOutcomeHashUnchangedBySampling(t *testing.T) {
	_, repOff, _ := flightRun(t, 4, 0)
	_, repOn, _ := flightRun(t, 4, 0.3)
	if repOff.OutcomeHash != repOn.OutcomeHash {
		t.Errorf("sampling changed the outcome hash: %s vs %s", repOff.OutcomeHash, repOn.OutcomeHash)
	}
	if repOff.Degraded != repOn.Degraded || repOff.Retries != repOn.Retries {
		t.Error("sampling changed aggregate outcomes")
	}
	if repOff.FlightSampled != 0 {
		t.Errorf("rate 0 sampled %d records", repOff.FlightSampled)
	}
}

// TestSLOBreachTriggersDump: the scripted outage must burn the error
// budget fast enough to breach, and the breach (or the breaker-open
// spike accompanying it) must dump the exemplar ring to the sink with
// records that carry full attempt chains.
func TestSLOBreachTriggersDump(t *testing.T) {
	_, rep, sink := flightRun(t, 4, 0.2)

	if len(rep.SLOs) != 2 {
		t.Fatalf("report has %d SLOs, want 2", len(rep.SLOs))
	}
	avail := rep.SLOs[0]
	if avail.Name != "availability" || avail.Target != 0.999 {
		t.Fatalf("SLO[0] = %+v, want availability@0.999", avail.SLOSnapshot)
	}
	if avail.MaxFastBurn <= 1 {
		t.Errorf("outage never burned the availability budget (max fast burn %g)", avail.MaxFastBurn)
	}
	if avail.Breaches == 0 {
		t.Error("outage never breached the availability SLO")
	}
	if len(avail.Epochs) < 3 {
		t.Errorf("epoch accounting has %d epochs, want >= 3 (healthy/outage/recovered)", len(avail.Epochs))
	} else if avail.Epochs[1].Compliance >= avail.Epochs[0].Compliance {
		t.Errorf("outage epoch compliance %g not worse than healthy epoch %g",
			avail.Epochs[1].Compliance, avail.Epochs[0].Compliance)
	}
	lat := rep.SLOs[1]
	if lat.Name != "latency" || lat.ThresholdMs <= 0 {
		t.Fatalf("SLO[1] = %+v, want latency with a threshold", lat)
	}
	if lat.EstP999Ms < lat.EstP50Ms {
		t.Errorf("histogram estimates out of order: p50 %g > p999 %g", lat.EstP50Ms, lat.EstP999Ms)
	}

	if rep.FlightDumps == 0 {
		t.Fatal("no flight dumps were triggered")
	}
	recs, headers, err := obs.ReadFlightJSONL(bytes.NewReader(sink.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(headers)) != rep.FlightDumps {
		t.Errorf("sink has %d dump headers, report says %d", len(headers), rep.FlightDumps)
	}
	sawBurn := false
	for _, h := range headers {
		if strings.Contains(h.Dump, "slo-burn:") || strings.Contains(h.Dump, "breaker-spike") {
			sawBurn = true
		}
	}
	if !sawBurn {
		t.Errorf("no dump carried a burn/breaker reason: %+v", headers)
	}
	if len(recs) == 0 {
		t.Fatal("dumps carried no records")
	}
	sawChain := false
	for _, rec := range recs {
		if len(rec.Attempts) > 0 && rec.Attempts[0].Breaker != "" {
			sawChain = true
			break
		}
	}
	if !sawChain {
		t.Error("no dumped record carries an attempt chain with a breaker state")
	}
}

// TestServeSLOFlightEndpoints smoke-tests the live control surface.
func TestServeSLOFlightEndpoints(t *testing.T) {
	e, _, _ := flightRun(t, 2, 0.2)
	h := e.Handler()

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/slo", nil))
	body := rr.Body.String()
	if rr.Code != 200 || !strings.Contains(body, `"availability"`) || !strings.Contains(body, `"fast_burn"`) {
		t.Errorf("/slo = %d %q", rr.Code, body)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/flight", nil))
	if rr.Code != 200 || !strings.Contains(rr.Body.String(), `"attempts"`) {
		t.Errorf("/flight = %d (%d bytes)", rr.Code, rr.Body.Len())
	}

	var buf bytes.Buffer
	if err := e.DumpFlight(&buf, "recovery-gate"); err != nil {
		t.Fatal(err)
	}
	_, headers, err := obs.ReadFlightJSONL(&buf)
	if err != nil || len(headers) != 1 || headers[0].Dump != "recovery-gate" {
		t.Errorf("DumpFlight: err=%v headers=%+v", err, headers)
	}
}

package serve

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"idde/internal/units"
)

// Phase names for the soak accounting. Phases follow the fault
// timeline: a round is "faulted" while the campaign injects faults,
// "recovered" once the faults lift, and "healthy" before the first
// fault. Degradation from background loss (or from half-open breakers
// throttling a re-admitted server) is accounted inside whatever phase
// it lands in — the recovered phase's tail latency is exactly where the
// cost of cautious re-admission shows up.
const (
	PhaseHealthy   = "healthy"
	PhaseFaulted   = "faulted"
	PhaseRecovered = "recovered"
)

// PhaseStats aggregates the rounds classified into one phase.
type PhaseStats struct {
	Phase    string `json:"phase"`
	Rounds   int    `json:"rounds"`
	Requests int64  `json:"requests"`
	Degraded int64  `json:"degraded"`

	Retries          int64 `json:"retries"`
	Failovers        int64 `json:"failovers"`
	CloudFallbacks   int64 `json:"cloud_fallbacks"`
	DeadlineExceeded int64 `json:"deadline_exceeded"`
	Hedged           int64 `json:"hedged"`
	CloudServed      int64 `json:"cloud_served"`

	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MaxMs  float64 `json:"max_ms"`

	// LatencyDeltaS and BackhaulMB price the phase's degradations:
	// measured-minus-intended latency (Eq. 17's term under downgrade)
	// and unplanned cloud backhaul traffic.
	LatencyDeltaS float64 `json:"latency_delta_s"`
	BackhaulMB    float64 `json:"backhaul_mb"`

	latencies []float64
}

// RoundStat is one row of the compact per-round timeline.
type RoundStat struct {
	Round    int     `json:"round"`
	Phase    string  `json:"phase"`
	Epoch    int     `json:"epoch"`
	Degraded int     `json:"degraded"`
	Open     int     `json:"open"`
	MeanMs   float64 `json:"mean_ms"`
}

// SoakReport is the full accounting of one serving soak.
type SoakReport struct {
	Seed      uint64  `json:"seed"`
	RPS       int     `json:"rps"`
	TickS     float64 `json:"tick_s"`
	DurationS float64 `json:"duration_s"`
	Rounds    int     `json:"rounds"`
	PerRound  int     `json:"per_round"`
	HedgeOn   bool    `json:"hedge_on"`

	// Issued == Served always (every request terminates, at worst at the
	// cloud); Dropped is kept explicit so the no-dropped-forever claim is
	// checkable, not implicit.
	Issued  int64 `json:"issued"`
	Served  int64 `json:"served"`
	Dropped int64 `json:"dropped"`

	Retries          int64 `json:"retries"`
	Failovers        int64 `json:"failovers"`
	CloudFallbacks   int64 `json:"cloud_fallbacks"`
	DeadlineExceeded int64 `json:"deadline_exceeded"`
	Hedged           int64 `json:"hedged"`
	CloudServed      int64 `json:"cloud_served"`
	Degraded         int64 `json:"degraded"`

	LatencyDeltaS float64 `json:"latency_delta_s"`
	BackhaulMB    float64 `json:"backhaul_mb"`

	Replans      int64 `json:"replans"`
	ReplanPanics int64 `json:"replan_panics"`
	ReplanErrors int64 `json:"replan_errors"`
	FinalEpoch   int   `json:"final_epoch"`

	BreakerOpens       int64 `json:"breaker_opens"`
	BreakerTransitions int64 `json:"breaker_transitions"`

	// MaxDegradedStreak is the longest run of consecutive rounds with at
	// least one degraded request — the measured heal bound, in rounds.
	MaxDegradedStreak int  `json:"max_degraded_streak"`
	HealedAtEnd       bool `json:"healed_at_end"`

	// SLOs is the burn-rate engine's final accounting (availability,
	// latency), per chaos epoch; empty when Options.SLO is disabled.
	SLOs []SLOReport `json:"slos,omitempty"`
	// FlightSampled/FlightEvicted/FlightDumps account the flight
	// recorder: exemplars merged into the ring, exemplars the capacity
	// bound dropped again, and triggered dumps written to the sink.
	FlightSampled int64 `json:"flight_sampled,omitempty"`
	FlightEvicted int64 `json:"flight_evicted,omitempty"`
	FlightDumps   int64 `json:"flight_dumps,omitempty"`

	// OutcomeHash fingerprints every request outcome in fold order;
	// equal seeds (with hedging off) must produce equal hashes for any
	// worker count, with flight sampling on or off.
	OutcomeHash string `json:"outcome_hash"`

	WallSeconds float64 `json:"wall_seconds"`
	// VirtualRPS is the sustained rate in virtual time (== RPS by
	// construction); WallRPS is the evaluator's real throughput.
	VirtualRPS float64 `json:"virtual_rps"`
	WallRPS    float64 `json:"wall_rps"`

	Phases   []*PhaseStats `json:"phases"`
	Timeline []RoundStat   `json:"timeline,omitempty"`

	phaseIdx     map[string]*PhaseStats
	everFaulted  bool
	streak       int
	roundLatMs   []float64
	roundLatSum  float64
	lastDegraded int
}

func newSoakReport(opt *Options, rounds, perRound int) *SoakReport {
	return &SoakReport{
		Seed:       opt.Seed,
		RPS:        opt.RPS,
		TickS:      float64(opt.Tick),
		DurationS:  float64(opt.Duration),
		Rounds:     rounds,
		PerRound:   perRound,
		HedgeOn:    opt.Hedge > 0,
		phaseIdx:   map[string]*PhaseStats{},
		roundLatMs: make([]float64, 0, perRound),
	}
}

// observeOutcome accumulates one outcome into the round scratch buffer
// (called from the fold, in request order).
func (sr *SoakReport) observeOutcome(o *RequestOutcome) {
	ms := o.Latency.Millis()
	sr.roundLatMs = append(sr.roundLatMs, ms)
	sr.roundLatSum += ms
}

// observeRound classifies the finished round into a phase and merges
// the round's aggregate in.
func (sr *SoakReport) observeRound(r int, now units.Seconds, agg roundAgg, fvEmpty bool, epoch int) {
	phase := PhaseHealthy
	switch {
	case !fvEmpty:
		phase = PhaseFaulted
		sr.everFaulted = true
	case sr.everFaulted:
		phase = PhaseRecovered
	}

	ps := sr.phaseIdx[phase]
	if ps == nil {
		ps = &PhaseStats{Phase: phase}
		sr.phaseIdx[phase] = ps
		sr.Phases = append(sr.Phases, ps)
	}
	ps.Rounds++
	ps.Requests += int64(agg.requests)
	ps.Degraded += int64(agg.degraded)
	ps.Retries += int64(agg.retries)
	ps.Failovers += int64(agg.failovers)
	ps.CloudFallbacks += int64(agg.cloudFallbacks)
	ps.DeadlineExceeded += int64(agg.deadlineExceeded)
	ps.Hedged += int64(agg.hedged)
	ps.CloudServed += int64(agg.cloudServed)
	ps.LatencyDeltaS += agg.latencyDeltaS
	ps.BackhaulMB += agg.backhaulMB
	ps.latencies = append(ps.latencies, sr.roundLatMs...)

	sr.Issued += int64(agg.requests)
	sr.Served += int64(agg.requests)
	sr.Retries += int64(agg.retries)
	sr.Failovers += int64(agg.failovers)
	sr.CloudFallbacks += int64(agg.cloudFallbacks)
	sr.DeadlineExceeded += int64(agg.deadlineExceeded)
	sr.Hedged += int64(agg.hedged)
	sr.CloudServed += int64(agg.cloudServed)
	sr.Degraded += int64(agg.degraded)
	sr.LatencyDeltaS += agg.latencyDeltaS
	sr.BackhaulMB += agg.backhaulMB

	if agg.degraded > 0 {
		sr.streak++
		if sr.streak > sr.MaxDegradedStreak {
			sr.MaxDegradedStreak = sr.streak
		}
	} else {
		sr.streak = 0
	}
	sr.lastDegraded = agg.degraded

	mean := 0.0
	if agg.requests > 0 {
		mean = sr.roundLatSum / float64(agg.requests)
	}
	sr.Timeline = append(sr.Timeline, RoundStat{
		Round: r, Phase: phase, Epoch: epoch,
		Degraded: agg.degraded, Open: agg.open, MeanMs: mean,
	})

	sr.roundLatMs = sr.roundLatMs[:0]
	sr.roundLatSum = 0
}

// finish seals the report: percentiles per phase, breaker and
// re-planner totals, throughput, determinism fingerprint.
func (sr *SoakReport) finish(e *Engine, wall time.Duration, hash hashWriter) {
	for _, ps := range sr.Phases {
		sort.Float64s(ps.latencies)
		n := len(ps.latencies)
		if n > 0 {
			sum := 0.0
			for _, v := range ps.latencies {
				sum += v
			}
			ps.MeanMs = sum / float64(n)
			ps.P50Ms = quantile(ps.latencies, 0.50)
			ps.P90Ms = quantile(ps.latencies, 0.90)
			ps.P99Ms = quantile(ps.latencies, 0.99)
			ps.P999Ms = quantile(ps.latencies, 0.999)
			ps.MaxMs = ps.latencies[n-1]
		}
		ps.latencies = nil
	}
	for _, b := range e.breaker {
		sr.BreakerOpens += b.Opens()
		sr.BreakerTransitions += b.Transitions()
	}
	e.mu.Lock()
	sr.Replans = e.stats.replans
	sr.ReplanPanics = e.stats.replanPanics
	sr.ReplanErrors = e.stats.replanErrors
	e.mu.Unlock()
	sr.FinalEpoch = e.plan.load().Epoch
	sr.SLOs = e.sloReports()
	sr.FlightSampled = e.flight.Sampled()
	sr.FlightEvicted = e.flight.Evicted()
	sr.FlightDumps = e.flightDumps
	sr.HealedAtEnd = sr.lastDegraded == 0
	sr.Dropped = sr.Issued - sr.Served
	sr.OutcomeHash = fmt.Sprintf("%016x", hash.Sum64())
	sr.WallSeconds = wall.Seconds()
	if virt := float64(sr.Rounds) * sr.TickS; virt > 0 {
		sr.VirtualRPS = float64(sr.Issued) / virt
	}
	if sr.WallSeconds > 0 {
		sr.WallRPS = float64(sr.Issued) / sr.WallSeconds
	}
}

// Phase returns the named phase's stats, or nil.
func (sr *SoakReport) Phase(name string) *PhaseStats {
	for _, ps := range sr.Phases {
		if ps.Phase == name {
			return ps
		}
	}
	return nil
}

// JSON renders the report.
func (sr *SoakReport) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(sr, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// quantile returns the q-quantile of sorted (ascending) samples using
// the nearest-rank method.
func quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	idx := int(q*float64(n)+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return sorted[idx]
}

package shard

import (
	"reflect"
	"testing"

	"idde/internal/geo"
	"idde/internal/graph"
	"idde/internal/model"
	"idde/internal/radio"
	"idde/internal/topology"
	"idde/internal/units"
	"idde/internal/workload"
)

// lineInstance builds a chain of overlapping servers at x = 0, 600,
// 1200, … (radius 400, so neighbouring disks overlap into one coverage
// component) with counts[i] users placed just beside server i — each
// user covered by its own server only, so ownership equals placement.
func lineInstance(t *testing.T, counts []int) *model.Instance {
	t.Helper()
	n := len(counts)
	top := &topology.Topology{
		Region:    geo.Rect{MinX: -500, MinY: -500, MaxX: 600 * float64(n), MaxY: 500},
		Net:       graph.New(n),
		CloudRate: 600,
	}
	for i := 0; i < n; i++ {
		top.Servers = append(top.Servers, topology.Server{
			ID: i, Pos: geo.Point{X: 600 * float64(i), Y: 0},
			Radius: 400, Channels: 3, Bandwidth: 200,
		})
		if i > 0 {
			top.Net.AddEdge(i-1, i, units.PerMB(3000))
		}
	}
	id := 0
	for i, c := range counts {
		for u := 0; u < c; u++ {
			top.Users = append(top.Users, topology.User{
				ID: id, Pos: geo.Point{X: 600*float64(i) + float64(u%10), Y: float64(u / 10)},
				Power: 2, MaxRate: 200,
			})
			id++
		}
	}
	if err := top.Finalize(); err != nil {
		t.Fatal(err)
	}
	reqs := make([][]int, id)
	for j := range reqs {
		reqs[j] = []int{0}
	}
	caps := make([]units.MegaBytes, n)
	for i := range caps {
		caps[i] = 100
	}
	wl := &workload.Workload{
		Items:    []workload.Item{{ID: 0, Size: 30}},
		Requests: reqs,
		Capacity: caps,
	}
	in, err := model.New(top, wl, radio.Default())
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestWeightedSplitBalancesOwnedUsers: with the users piled onto one end
// of the chain, the split must cut at the owned-user weighted median —
// isolating the heavy server — instead of halving the server list
// (which would leave a 92-vs-4 user imbalance here).
func TestWeightedSplitBalancesOwnedUsers(t *testing.T) {
	in := lineInstance(t, []int{90, 2, 2, 2})
	p := MakePartition(in, 2)
	if len(p.Tiles) != 2 {
		t.Fatalf("got %d tiles", len(p.Tiles))
	}
	if !reflect.DeepEqual(p.Tiles[0].Servers, []int{0}) ||
		!reflect.DeepEqual(p.Tiles[1].Servers, []int{1, 2, 3}) {
		t.Fatalf("split servers %v / %v, want [0] / [1 2 3]",
			p.Tiles[0].Servers, p.Tiles[1].Servers)
	}
	st := statsOf(p)
	if st.MaxTileUsers != 90 || st.MinTileUsers != 6 {
		t.Fatalf("tile user balance %d/%d, want 90/6", st.MaxTileUsers, st.MinTileUsers)
	}
}

// TestWeightedSplitUniformWeightsMatchesBisection: with one user per
// server the weighted median degenerates to the old server-count
// bisection, so legacy partition shapes are preserved.
func TestWeightedSplitUniformWeightsMatchesBisection(t *testing.T) {
	in := lineInstance(t, []int{2, 2, 2, 2})
	p := MakePartition(in, 2)
	if !reflect.DeepEqual(p.Tiles[0].Servers, []int{0, 1}) ||
		!reflect.DeepEqual(p.Tiles[1].Servers, []int{2, 3}) {
		t.Fatalf("split servers %v / %v, want [0 1] / [2 3]",
			p.Tiles[0].Servers, p.Tiles[1].Servers)
	}
}

// TestWeightedSplitInvariant: every two-way split of a single coverage
// component lands within the weighted-median guarantee — the heavier
// side exceeds half the component's owned users by at most the load of
// one indivisible server (the server straddling the median).
func TestWeightedSplitInvariant(t *testing.T) {
	for _, seed := range []uint64{3, 7, 21} {
		in := buildInstance(t, params{N: 24, M: 300, K: 5}, seed)
		owner := nearestCoveringServers(in)
		weight := make([]int, in.N())
		for _, s := range owner {
			if s >= 0 {
				weight[int(s)]++
			}
		}
		comps := coverageComponents(in)
		for ci, comp := range comps {
			if len(comp) < 2 {
				continue
			}
			total, wmax := 0, 0
			for _, i := range comp {
				total += weight[i]
				if weight[i] > wmax {
					wmax = weight[i]
				}
			}
			a, b := splitComponent(in, comp, weight)
			if len(a) == 0 || len(b) == 0 {
				t.Fatalf("seed %d comp %d: empty split side", seed, ci)
			}
			wa := 0
			for _, i := range a {
				wa += weight[i]
			}
			heavier := wa
			if total-wa > heavier {
				heavier = total - wa
			}
			if 2*(heavier-wmax) > total {
				t.Fatalf("seed %d comp %d: heavier side %d of %d exceeds median bound (wmax %d)",
					seed, ci, heavier, total, wmax)
			}
		}
	}
}

// Package shard partitions an IDDE instance into coverage-connected
// spatial tiles and solves both phases per tile — Phase 1 dirty-set
// best-response and Phase 2 CELF on each tile's own worker, ledger,
// arena rows and tracer shard — followed by a bounded deterministic
// halo-exchange stage that re-equilibrates cross-tile interference and
// a final global CELF reconcile pass for boundary replicas.
//
// The decomposition is sound because interference is spatially local:
// user j's Eq. 12 benefit depends only on the occupants of channels of
// servers in V_j (its coverage set), so users whose whole interference
// neighbourhood lives inside one tile are untouched by other tiles'
// moves. Users and servers near tile boundaries are not independent —
// they are exactly the frontier/halo sets the exchange stage sweeps.
//
// Determinism contract: the partition is a pure function of the
// topology and the tile count (no map iteration, no scheduling
// dependence); tile solves write disjoint state and merge in tile
// order; the halo sweeps run in fixed tile order; and every candidate
// enumeration is ascending. A single-tile sharded solve is bit-identical
// to the global solver, and multi-tile results are independent of
// GOMAXPROCS and the worker cap (pinned by shard_differential_test.go
// at the repo root).
package shard

import (
	"sort"

	"idde/internal/geo"
	"idde/internal/model"
	"idde/internal/units"
)

// Tile is one partition cell: a set of servers plus the users it owns.
type Tile struct {
	ID int
	// Servers lists the tile's server ids, ascending. Tiles partition
	// the server set.
	Servers []int
	// Users lists the user ids owned by the tile, ascending. A user is
	// owned by the tile of its nearest covering server (ties by server
	// id); users covered by nobody fall to tile 0 — they can never move
	// in Phase 1 and request latencies independent of ownership.
	Users []int
}

// Partition is a deterministic tiling of an instance.
type Partition struct {
	Tiles []Tile
	// ServerTile[i] is the tile owning server i.
	ServerTile []int32
	// Owner[j] is the tile owning user j.
	Owner []int32
	// Frontier[i] reports whether server i's footprint crosses the
	// tiling: it covers at least one user owned by another tile.
	Frontier []bool
	// Halo lists, ascending, every user covered by a frontier server —
	// the users whose interference neighbourhood straddles a boundary.
	Halo []int
}

// NumFrontier counts frontier servers.
func (p *Partition) NumFrontier() int {
	n := 0
	for _, f := range p.Frontier {
		if f {
			n++
		}
	}
	return n
}

// MakePartition tiles the instance into (at most) the requested number
// of tiles. Servers whose coverage disks overlap are grouped into
// connected components via the geo spatial hash; components are then
// deterministically merged (smallest first) or split (largest first,
// along the longer bounding-box axis) until the target count is reached.
// Requesting more tiles than servers yields one tile per server.
func MakePartition(in *model.Instance, tiles int) *Partition {
	n := in.N()
	if tiles < 1 {
		tiles = 1
	}
	if tiles > n {
		tiles = n
	}

	comps := coverageComponents(in)
	comps = adjustComponents(in, comps, tiles)

	// Canonical tile order: ascending minimum server id. Each
	// component's server list is sorted ascending.
	sort.Slice(comps, func(a, b int) bool { return comps[a][0] < comps[b][0] })

	p := &Partition{
		Tiles:      make([]Tile, len(comps)),
		ServerTile: make([]int32, n),
		Owner:      make([]int32, in.M()),
		Frontier:   make([]bool, n),
	}
	for t, servers := range comps {
		p.Tiles[t] = Tile{ID: t, Servers: servers}
		for _, i := range servers {
			p.ServerTile[i] = int32(t)
		}
	}

	// Ownership: nearest covering server, ties by server id. Coverage
	// lists are ascending, so strict < keeps the lowest id on ties.
	top := in.Top
	for j := 0; j < in.M(); j++ {
		cov := top.Coverage[j]
		if len(cov) == 0 {
			p.Owner[j] = 0
			continue
		}
		best := cov[0]
		for _, i := range cov[1:] {
			if top.Dist[i][j] < top.Dist[best][j] {
				best = i
			}
		}
		p.Owner[j] = p.ServerTile[best]
	}
	for j := 0; j < in.M(); j++ {
		t := p.Owner[j]
		p.Tiles[t].Users = append(p.Tiles[t].Users, j)
	}

	// Frontier servers and the halo they induce.
	for i := 0; i < n; i++ {
		ti := p.ServerTile[i]
		for _, j := range top.Covered[i] {
			if p.Owner[j] != ti {
				p.Frontier[i] = true
				break
			}
		}
	}
	if len(p.Tiles) > 1 {
		inHalo := make([]bool, in.M())
		for i := 0; i < n; i++ {
			if !p.Frontier[i] {
				continue
			}
			for _, j := range top.Covered[i] {
				inHalo[j] = true
			}
		}
		for j, h := range inHalo {
			if h {
				p.Halo = append(p.Halo, j)
			}
		}
	}
	return p
}

// coverageComponents unions servers whose coverage disks overlap
// (center distance ≤ r_a + r_b) into connected components, using the
// spatial hash for the neighbour queries. Returned components hold
// ascending server ids and are themselves ordered by minimum id.
func coverageComponents(in *model.Instance) [][]int {
	top := in.Top
	n := in.N()
	var rmax float64
	for i := 0; i < n; i++ {
		if r := float64(top.Servers[i].Radius); r > rmax {
			rmax = r
		}
	}
	cell := rmax
	if cell <= 0 {
		cell = 1
	}
	grid := geo.NewGrid(cell)
	for i := 0; i < n; i++ {
		grid.Insert(i, top.Servers[i].Pos)
	}

	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(x int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if ra > rb {
				ra, rb = rb, ra
			}
			parent[rb] = ra // lower root wins: canonical representatives
		}
	}
	for i := 0; i < n; i++ {
		near := grid.Within(top.Servers[i].Pos, top.Servers[i].Radius+units.Meters(rmax))
		sort.Ints(near) // Grid.Within order is unspecified
		for _, o := range near {
			if o <= i {
				continue
			}
			if geo.Dist(top.Servers[i].Pos, top.Servers[o].Pos) <= top.Servers[i].Radius+top.Servers[o].Radius {
				union(i, o)
			}
		}
	}

	members := make(map[int][]int, n)
	var roots []int
	for i := 0; i < n; i++ {
		r := find(i)
		if len(members[r]) == 0 {
			roots = append(roots, r)
		}
		members[r] = append(members[r], i)
	}
	sort.Ints(roots)
	comps := make([][]int, 0, len(roots))
	for _, r := range roots {
		comps = append(comps, members[r]) // ascending: appended in id order
	}
	return comps
}

// adjustComponents merges or splits components to hit the target count.
// Merging folds the smallest component (ties by min id) into the next
// smallest; splitting cuts the largest component at the coordinate
// median of its longer bounding-box axis. Both loops are deterministic.
func adjustComponents(in *model.Instance, comps [][]int, target int) [][]int {
	for len(comps) > target {
		sortComps(comps)
		merged := append(append([]int(nil), comps[0]...), comps[1]...)
		sort.Ints(merged)
		comps = append([][]int{merged}, comps[2:]...)
	}
	for len(comps) < target {
		// Split the largest splittable component.
		idx := -1
		for c := range comps {
			if len(comps[c]) < 2 {
				continue
			}
			if idx < 0 || len(comps[c]) > len(comps[idx]) ||
				(len(comps[c]) == len(comps[idx]) && comps[c][0] < comps[idx][0]) {
				idx = c
			}
		}
		if idx < 0 {
			break // nothing splittable: fewer tiles than requested
		}
		a, b := splitComponent(in, comps[idx])
		comps = append(comps[:idx], comps[idx+1:]...)
		comps = append(comps, a, b)
	}
	return comps
}

// sortComps orders components by (size asc, min id asc).
func sortComps(comps [][]int) {
	sort.Slice(comps, func(a, b int) bool {
		if len(comps[a]) != len(comps[b]) {
			return len(comps[a]) < len(comps[b])
		}
		return comps[a][0] < comps[b][0]
	})
}

// splitComponent bisects a component's servers at the median of the
// longer bounding-box axis, ties broken by the other coordinate then by
// id — a total order, so the cut is unique.
func splitComponent(in *model.Instance, servers []int) (a, b []int) {
	top := in.Top
	minX, maxX := top.Servers[servers[0]].Pos.X, top.Servers[servers[0]].Pos.X
	minY, maxY := top.Servers[servers[0]].Pos.Y, top.Servers[servers[0]].Pos.Y
	for _, i := range servers[1:] {
		p := top.Servers[i].Pos
		minX, maxX = minf(minX, p.X), maxf(maxX, p.X)
		minY, maxY = minf(minY, p.Y), maxf(maxY, p.Y)
	}
	byX := maxX-minX >= maxY-minY
	order := append([]int(nil), servers...)
	sort.Slice(order, func(u, v int) bool {
		pu, pv := top.Servers[order[u]].Pos, top.Servers[order[v]].Pos
		ku, kv := pu.X, pv.X
		su, sv := pu.Y, pv.Y
		if !byX {
			ku, kv, su, sv = pu.Y, pv.Y, pu.X, pv.X
		}
		if ku != kv {
			return ku < kv
		}
		if su != sv {
			return su < sv
		}
		return order[u] < order[v]
	})
	half := (len(order) + 1) / 2
	a = append([]int(nil), order[:half]...)
	b = append([]int(nil), order[half:]...)
	sort.Ints(a)
	sort.Ints(b)
	return a, b
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

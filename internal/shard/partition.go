// Package shard partitions an IDDE instance into coverage-connected
// spatial tiles and solves both phases per tile — Phase 1 dirty-set
// best-response and Phase 2 CELF on each tile's own worker, ledger,
// arena rows and tracer shard — followed by a bounded deterministic
// halo-exchange stage that re-equilibrates cross-tile interference and
// a final global CELF reconcile pass for boundary replicas.
//
// The decomposition is sound because interference is spatially local:
// user j's Eq. 12 benefit depends only on the occupants of channels of
// servers in V_j (its coverage set), so users whose whole interference
// neighbourhood lives inside one tile are untouched by other tiles'
// moves. Users and servers near tile boundaries are not independent —
// they are exactly the frontier/halo sets the exchange stage sweeps.
//
// Determinism contract: the partition is a pure function of the
// topology and the tile count (no map iteration, no scheduling
// dependence); tile solves write disjoint state and merge in tile
// order; the halo sweeps run in fixed tile order; and every candidate
// enumeration is ascending. A single-tile sharded solve is bit-identical
// to the global solver, and multi-tile results are independent of
// GOMAXPROCS and the worker cap (pinned by shard_differential_test.go
// at the repo root).
package shard

import (
	"sort"

	"idde/internal/geo"
	"idde/internal/model"
	"idde/internal/units"
)

// Tile is one partition cell: a set of servers plus the users it owns.
type Tile struct {
	ID int
	// Servers lists the tile's server ids, ascending. Tiles partition
	// the server set.
	Servers []int
	// Users lists the user ids owned by the tile, ascending. A user is
	// owned by the tile of its nearest covering server (ties by server
	// id); users covered by nobody fall to tile 0 — they can never move
	// in Phase 1 and request latencies independent of ownership.
	Users []int
}

// Partition is a deterministic tiling of an instance.
type Partition struct {
	Tiles []Tile
	// ServerTile[i] is the tile owning server i.
	ServerTile []int32
	// Owner[j] is the tile owning user j.
	Owner []int32
	// Frontier[i] reports whether server i's footprint crosses the
	// tiling: it covers at least one user owned by another tile.
	Frontier []bool
	// Halo lists, ascending, every user covered by a frontier server —
	// the users whose interference neighbourhood straddles a boundary.
	Halo []int
}

// NumFrontier counts frontier servers.
func (p *Partition) NumFrontier() int {
	n := 0
	for _, f := range p.Frontier {
		if f {
			n++
		}
	}
	return n
}

// MakePartition tiles the instance into (at most) the requested number
// of tiles. Servers whose coverage disks overlap are grouped into
// connected components via the geo spatial hash; components are then
// deterministically merged (smallest first) or split (heaviest first by
// owned-user count, at the owned-user weighted median of the longer
// bounding-box axis — a coordinate-median cut leaves ~2× user imbalance
// on clustered layouts) until the target count is reached. Requesting
// more tiles than servers yields one tile per server.
func MakePartition(in *model.Instance, tiles int) *Partition {
	n := in.N()
	if tiles < 1 {
		tiles = 1
	}
	if tiles > n {
		tiles = n
	}

	// Ownership is decided before tiling: a user belongs to its nearest
	// covering server (ties by lowest id), a pure function of the
	// topology. The per-server owned-user counts are the weights the
	// split balancing works with.
	ownerServer := nearestCoveringServers(in)
	weight := make([]int, n)
	for _, s := range ownerServer {
		if s >= 0 {
			weight[s]++
		}
	}

	comps := coverageComponents(in)
	comps = adjustComponents(in, comps, tiles, weight)

	// Canonical tile order: ascending minimum server id. Each
	// component's server list is sorted ascending.
	sort.Slice(comps, func(a, b int) bool { return comps[a][0] < comps[b][0] })

	p := &Partition{
		Tiles:      make([]Tile, len(comps)),
		ServerTile: make([]int32, n),
		Owner:      make([]int32, in.M()),
		Frontier:   make([]bool, n),
	}
	for t, servers := range comps {
		p.Tiles[t] = Tile{ID: t, Servers: servers}
		for _, i := range servers {
			p.ServerTile[i] = int32(t)
		}
	}

	// Ownership: nearest covering server, ties by server id (computed
	// above). Users covered by nobody fall to tile 0.
	top := in.Top
	for j := 0; j < in.M(); j++ {
		if s := ownerServer[j]; s >= 0 {
			p.Owner[j] = p.ServerTile[s]
		} else {
			p.Owner[j] = 0
		}
	}
	for j := 0; j < in.M(); j++ {
		t := p.Owner[j]
		p.Tiles[t].Users = append(p.Tiles[t].Users, j)
	}

	// Frontier servers and the halo they induce.
	for i := 0; i < n; i++ {
		ti := p.ServerTile[i]
		for _, j := range top.Covered[i] {
			if p.Owner[j] != ti {
				p.Frontier[i] = true
				break
			}
		}
	}
	if len(p.Tiles) > 1 {
		inHalo := make([]bool, in.M())
		for i := 0; i < n; i++ {
			if !p.Frontier[i] {
				continue
			}
			for _, j := range top.Covered[i] {
				inHalo[j] = true
			}
		}
		for j, h := range inHalo {
			if h {
				p.Halo = append(p.Halo, j)
			}
		}
	}
	return p
}

// nearestCoveringServers maps every user to its nearest covering server
// (ties by lowest server id, matching the ascending Coverage order with
// a strict < comparison), or −1 for users covered by nobody. The rule is
// a pure function of the topology, so ownership — and with it the whole
// partition — is deterministic.
func nearestCoveringServers(in *model.Instance) []int32 {
	top := in.Top
	owner := make([]int32, in.M())
	for j := 0; j < in.M(); j++ {
		cov := top.Coverage[j]
		if len(cov) == 0 {
			owner[j] = -1
			continue
		}
		best := cov[0]
		for _, i := range cov[1:] {
			if top.Distance(i, j) < top.Distance(best, j) {
				best = i
			}
		}
		owner[j] = int32(best)
	}
	return owner
}

// coverageComponents unions servers whose coverage disks overlap
// (center distance ≤ r_a + r_b) into connected components, using the
// spatial hash for the neighbour queries. Returned components hold
// ascending server ids and are themselves ordered by minimum id.
func coverageComponents(in *model.Instance) [][]int {
	top := in.Top
	n := in.N()
	var rmax float64
	for i := 0; i < n; i++ {
		if r := float64(top.Servers[i].Radius); r > rmax {
			rmax = r
		}
	}
	cell := rmax
	if cell <= 0 {
		cell = 1
	}
	grid := geo.NewGrid(cell)
	for i := 0; i < n; i++ {
		grid.Insert(i, top.Servers[i].Pos)
	}

	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(x int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if ra > rb {
				ra, rb = rb, ra
			}
			parent[rb] = ra // lower root wins: canonical representatives
		}
	}
	for i := 0; i < n; i++ {
		near := grid.Within(top.Servers[i].Pos, top.Servers[i].Radius+units.Meters(rmax))
		sort.Ints(near) // Grid.Within order is unspecified
		for _, o := range near {
			if o <= i {
				continue
			}
			if geo.Dist(top.Servers[i].Pos, top.Servers[o].Pos) <= top.Servers[i].Radius+top.Servers[o].Radius {
				union(i, o)
			}
		}
	}

	members := make(map[int][]int, n)
	var roots []int
	for i := 0; i < n; i++ {
		r := find(i)
		if len(members[r]) == 0 {
			roots = append(roots, r)
		}
		members[r] = append(members[r], i)
	}
	sort.Ints(roots)
	comps := make([][]int, 0, len(roots))
	for _, r := range roots {
		comps = append(comps, members[r]) // ascending: appended in id order
	}
	return comps
}

// adjustComponents merges or splits components to hit the target count.
// Merging folds the smallest component (ties by min id) into the next
// smallest; splitting cuts the heaviest component — by total owned-user
// weight, ties by server count then min id — at the weighted median of
// its longer bounding-box axis. Both loops are deterministic.
func adjustComponents(in *model.Instance, comps [][]int, target int, weight []int) [][]int {
	for len(comps) > target {
		sortComps(comps)
		merged := append(append([]int(nil), comps[0]...), comps[1]...)
		sort.Ints(merged)
		comps = append([][]int{merged}, comps[2:]...)
	}
	compWeight := func(c []int) int {
		w := 0
		for _, i := range c {
			w += weight[i]
		}
		return w
	}
	for len(comps) < target {
		// Split the heaviest splittable component. Weight is the
		// owned-user count: splitting for server count alone can leave a
		// dense tile holding most of the users (and most of the solve
		// time) while empty tiles idle.
		idx, idxW := -1, -1
		for c := range comps {
			if len(comps[c]) < 2 {
				continue
			}
			w := compWeight(comps[c])
			if idx < 0 || w > idxW ||
				(w == idxW && (len(comps[c]) > len(comps[idx]) ||
					(len(comps[c]) == len(comps[idx]) && comps[c][0] < comps[idx][0]))) {
				idx, idxW = c, w
			}
		}
		if idx < 0 {
			break // nothing splittable: fewer tiles than requested
		}
		a, b := splitComponent(in, comps[idx], weight)
		comps = append(comps[:idx], comps[idx+1:]...)
		comps = append(comps, a, b)
	}
	return comps
}

// sortComps orders components by (size asc, min id asc).
func sortComps(comps [][]int) {
	sort.Slice(comps, func(a, b int) bool {
		if len(comps[a]) != len(comps[b]) {
			return len(comps[a]) < len(comps[b])
		}
		return comps[a][0] < comps[b][0]
	})
}

// splitComponent bisects a component's servers at the owned-user
// weighted median of the longer bounding-box axis: servers are ordered
// by that axis (ties by the other coordinate then by id — a total
// order, so the cut is unique) and the cut falls after the first prefix
// holding at least half the component's owned users, clamped so both
// halves are non-empty. With uniform weights this degenerates to the
// old coordinate-median bisection.
func splitComponent(in *model.Instance, servers []int, weight []int) (a, b []int) {
	top := in.Top
	minX, maxX := top.Servers[servers[0]].Pos.X, top.Servers[servers[0]].Pos.X
	minY, maxY := top.Servers[servers[0]].Pos.Y, top.Servers[servers[0]].Pos.Y
	for _, i := range servers[1:] {
		p := top.Servers[i].Pos
		minX, maxX = minf(minX, p.X), maxf(maxX, p.X)
		minY, maxY = minf(minY, p.Y), maxf(maxY, p.Y)
	}
	byX := maxX-minX >= maxY-minY
	order := append([]int(nil), servers...)
	sort.Slice(order, func(u, v int) bool {
		pu, pv := top.Servers[order[u]].Pos, top.Servers[order[v]].Pos
		ku, kv := pu.X, pv.X
		su, sv := pu.Y, pv.Y
		if !byX {
			ku, kv, su, sv = pu.Y, pv.Y, pu.X, pv.X
		}
		if ku != kv {
			return ku < kv
		}
		if su != sv {
			return su < sv
		}
		return order[u] < order[v]
	})
	total := 0
	for _, i := range order {
		total += weight[i]
	}
	cut := (len(order) + 1) / 2 // unweighted bisection when no users are owned
	if total > 0 {
		cum := 0
		for c, i := range order {
			cum += weight[i]
			if 2*cum >= total {
				cut = c + 1
				break
			}
		}
	}
	if cut < 1 {
		cut = 1
	}
	if cut > len(order)-1 {
		cut = len(order) - 1
	}
	a = append([]int(nil), order[:cut]...)
	b = append([]int(nil), order[cut:]...)
	sort.Ints(a)
	sort.Ints(b)
	return a, b
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

package shard

import (
	"reflect"
	"testing"
)

// TestSweepSkipDifferential pins the halo-exchange early exit: skipping
// clean tiles must not change a single committed move, so the full
// result — allocation, delivery, objectives, sweep dynamics — matches
// the NoSweepSkip reference exactly; only the skip counter may differ.
func TestSweepSkipDifferential(t *testing.T) {
	skippedSomewhere := false
	for _, seed := range []uint64{7, 21, 2022} {
		in := buildInstance(t, params{N: 24, M: 300, K: 5}, seed)
		for _, tiles := range []int{2, 4, 6} {
			// Extra rounds make the later (usually quiet) sweeps visible
			// to the skip logic.
			fast := Solve(in, Config{Tiles: tiles, HaloRounds: 4})
			ref := Solve(in, Config{Tiles: tiles, HaloRounds: 4, NoSweepSkip: true})
			if ref.Stats.SweepSkippedTiles != 0 {
				t.Fatalf("seed %d tiles=%d: NoSweepSkip run reported skips", seed, tiles)
			}
			got, want := fast.Stats, ref.Stats
			got.SweepSkippedTiles, want.SweepSkippedTiles = 0, 0
			// A skipped tile is exactly a saved no-op scan: commits are
			// identical, evaluations drop.
			if got.SweepEvaluations > want.SweepEvaluations {
				t.Fatalf("seed %d tiles=%d: skip run evaluated more (%d > %d)",
					seed, tiles, got.SweepEvaluations, want.SweepEvaluations)
			}
			got.SweepEvaluations, want.SweepEvaluations = 0, 0
			if !reflect.DeepEqual(fast.Alloc, ref.Alloc) ||
				!reflect.DeepEqual(fast.Delivery, ref.Delivery) ||
				fast.AvgRate != ref.AvgRate ||
				fast.Phase1 != ref.Phase1 ||
				got != want {
				t.Fatalf("seed %d tiles=%d: sweep skip changed the solve", seed, tiles)
			}
			if fast.Stats.SweepSkippedTiles > 0 {
				skippedSomewhere = true
			}
		}
	}
	if !skippedSomewhere {
		t.Fatal("no configuration ever skipped a tile — the early exit is dead code")
	}
}

package shard

import (
	"runtime"
	"sync"
	"time"

	"idde/internal/game"
	"idde/internal/model"
	"idde/internal/obs"
	"idde/internal/placement"
	"idde/internal/rng"
	"idde/internal/units"
)

// DefaultHaloRounds bounds the halo-exchange stage: at most this many
// full fixed-order sweeps over the tiles before the exchange stops,
// converged or not. The sweeps are bounded boundary repair, not a
// second solve: the first pass recovers nearly all of the rate gap the
// isolated tile games leave at tile boundaries and the second closes
// most of the remainder, while each extra pass costs a full
// best-response scan of every player against the global ledger. Two
// passes is the measured knee of that cost/quality curve; raise
// Config.HaloRounds when boundary quality matters more than wall time.
const DefaultHaloRounds = 2

// Config tunes the sharded solver. Game and Placement follow the same
// resolution rules as core.Options: a zero value (ignoring Obs) is
// replaced by the engine defaults, an explicitly configured all-zero
// value carries Set and passes through.
type Config struct {
	// Tiles is the target tile count (values < 1 mean 1; capped at N).
	Tiles int
	// HaloRounds caps the halo-exchange sweeps (0 = DefaultHaloRounds,
	// negative = no exchange at all).
	HaloRounds int
	// ReconcileCommits bounds the final global CELF re-commit pass (0 =
	// unlimited, negative = skip the extra pass; the replica replay that
	// rebuilds the oracle state always runs).
	ReconcileCommits int
	// NoSweepSkip disables the halo-exchange early exit that skips a
	// tile's repair sweep when no cross-tile commit since its last run
	// could have perturbed any of its players. The skip preserves the
	// fixpoint exactly (see runExchange); the flag exists for the
	// differential tests that pin that claim.
	NoSweepSkip bool
	// Workers caps concurrent tile workers (0 = GOMAXPROCS). The result
	// is independent of the cap: tiles write disjoint state and merge in
	// tile order.
	Workers int
	// Seed roots the per-tile rng streams (Tile t gets
	// rng.New(Seed).SplitN("tile", t)); the deterministic solver itself
	// draws nothing, the streams exist for stochastic per-tile policies
	// layered on top (and are exercised by the tests).
	Seed uint64

	// Game, Placement and the oracle/evaluator toggles mirror
	// core.Options and select the same code paths per tile.
	Game              game.Options
	Placement         placement.Options
	NaiveGreedy       bool
	NaiveInterference bool
	NaiveLatency      bool
	CohortBatch       bool
	// AggRowBudget is the per-tile ledger aggregate-row budget (0 =
	// unlimited). Each tile owns its own arena and budget, so total
	// resident rows scale with tiles × budget.
	AggRowBudget int

	// Obs receives the solver telemetry. When a tracer is attached,
	// tile workers emit into per-worker tracer shards that are merged
	// deterministically into the main tracer after the workers join.
	Obs *obs.Scope
}

// Stats reports the sharding-specific accounting of one solve.
type Stats struct {
	// Tiles is the realized tile count (≤ the requested count when the
	// instance has fewer servers or indivisible components).
	Tiles int
	// MinTileServers/MaxTileServers and MinTileUsers/MaxTileUsers
	// describe the balance of the partition.
	MinTileServers, MaxTileServers int
	MinTileUsers, MaxTileUsers     int
	// FrontierServers counts servers whose footprint crosses a tile
	// boundary; HaloUsers counts users covered by at least one of them.
	FrontierServers int
	HaloUsers       int
	// SweepRounds counts executed halo-exchange passes; SweepUpdates
	// and SweepEvaluations aggregate the moves and Best calls they
	// committed. HaloConverged reports whether a full pass committed no
	// update (a block-coordinate fixpoint over all players) before the
	// round cap.
	SweepRounds      int
	SweepUpdates     int
	SweepEvaluations int
	HaloConverged    bool
	// SweepSkippedTiles counts tile repair runs the exchange skipped
	// because the tile was clean: it converged on its previous run and no
	// cross-tile commit since then touched a server covering any of its
	// players.
	SweepSkippedTiles int
	// ReconcileReplicas and ReconcileGain report the final global CELF
	// re-commit pass (zero for a single tile: the tile solve is already
	// globally greedy-optimal, so no candidate has positive gain).
	ReconcileReplicas int
	ReconcileGain     float64
}

// Result is a sharded solve outcome. For Tiles=1 every field that the
// global solver also produces is bit-identical to core.Solve's (pinned
// by the differential suite); GainEvaluations additionally counts the
// reconcile pass's seed scan.
type Result struct {
	Alloc    model.Allocation
	Delivery *model.Delivery
	// AvgRate is Eq. 5 under the final allocation, read from the
	// post-exchange ledger.
	AvgRate units.Rate
	// Phase1 aggregates the tile games (sweep dynamics are reported
	// separately in Stats, so a single-tile run's Phase1 matches the
	// global solver's exactly).
	Phase1 game.Stats
	// Replicas counts committed delivery decisions, tile passes plus
	// reconcile; GainEvaluations counts oracle calls the same way.
	Replicas        int
	GainEvaluations int
	// LatencyReduction sums the tile-local CELF gains and the reconcile
	// gains. Tile gains value a replica only for the tile's own users,
	// so for multi-tile runs this is an accounting of the greedy's own
	// objective, not the exact global ΔL — Eq. 9 quality is what
	// AvgLatency (computed by the caller from Alloc/Delivery) reports.
	LatencyReduction units.Seconds
	Stats            Stats

	// Stage wall-clock: tile Phase 1 workers, halo-exchange sweeps,
	// tile Phase 2 workers, reconcile pass.
	Phase1Time, SweepTime, Phase2Time, ReconcileTime time.Duration
}

// TileStream derives the labeled per-tile rng stream for tile t under
// the config's seed — the substrate for stochastic per-tile policies.
func (c Config) TileStream(t int) *rng.Stream {
	return rng.New(c.Seed).SplitN("tile", t)
}

// resolveGame mirrors core's resolution: zero value → engine defaults,
// Obs stripped from the comparison.
func resolveGame(o game.Options) game.Options {
	sc := o.Obs
	o.Obs = nil
	if o == (game.Options{}) {
		o = game.DefaultOptions()
	}
	o.Obs = sc
	return o
}

func resolvePlacement(o placement.Options) placement.Options {
	sc := o.Obs
	o.Obs = nil
	if o == (placement.Options{}) {
		o = placement.DefaultOptions()
	}
	o.Obs = sc
	return o
}

// tileGame adapts one tile's slice of the IDDE-U game to the generic
// engine: players are the tile's owned users (ascending), decisions and
// benefits are evaluated on the given ledger, and the dirty-set
// neighbourhood is the Covered lists filtered to the tile's players.
// cov holds the per-user decision lists Best enumerates — the full
// Coverage lists for a single tile (making that run bit-identical to
// the global solver), the tile-restricted lists for T>1 (users only
// consider their own tile's servers; ownership is nearest-covering, so
// those are exactly the high-gain ones).
type tileGame struct {
	in      *model.Instance
	l       *model.Ledger
	players []int
	// cov[j] lists the servers user j may allocate to.
	cov [][]int
	// local maps a global user id to its player index + 1 (0 = not a
	// player of this game). Shared read-only across the run.
	local []int32
	aff   []int
}

func (g *tileGame) NumPlayers() int { return len(g.players) }

func (g *tileGame) Best(p int) (model.Alloc, float64, float64) {
	j := g.players[p]
	cur := g.l.Current(j)
	curB := g.l.Benefit(j, cur)
	best, bestB := cur, curB
	for _, i := range g.cov[j] {
		for x := 0; x < g.in.Top.Servers[i].Channels; x++ {
			a := model.Alloc{Server: i, Channel: x}
			if a == cur {
				continue
			}
			if b := g.l.Benefit(j, a); b > bestB {
				best, bestB = a, b
			}
		}
	}
	return best, bestB, curB
}

func (g *tileGame) Apply(p int, a model.Alloc) { g.l.Move(g.players[p], a) }

// Affected filters the perturbed-user sets (covered by the source and
// destination servers) down to this game's players, preserving the
// global order — with all users as players the pending sequence matches
// core's allocGame bit for bit.
func (g *tileGame) Affected(p int, a model.Alloc) []int {
	aff := g.aff[:0]
	j := g.players[p]
	cur := g.l.Current(j)
	if cur.Allocated() {
		for _, q := range g.in.Top.Covered[cur.Server] {
			if li := g.local[q]; li > 0 {
				aff = append(aff, int(li-1))
			}
		}
	}
	if a.Allocated() && (!cur.Allocated() || a.Server != cur.Server) {
		for _, q := range g.in.Top.Covered[a.Server] {
			if li := g.local[q]; li > 0 {
				aff = append(aff, int(li-1))
			}
		}
	}
	g.aff = aff
	return aff
}

// RoundMetrics reports the tile ledger's Eq. 5 average rate on traced
// rounds (over all M users; unowned users are unallocated in a tile
// ledger and contribute zero).
func (g *tileGame) RoundMetrics(put func(key string, v float64)) {
	put("r_avg", float64(g.l.AvgRate()))
}

// restrictedCoverage filters every user's Coverage list down to the
// servers of the user's own tile — the decision sets of the sharded
// Phase 1 and of the halo-exchange sweeps. Ownership is
// nearest-covering-server, so the restricted list always contains the
// user's best-gain server (and is empty exactly when the user is
// covered by nobody and can never allocate anyway).
func restrictedCoverage(in *model.Instance, p *Partition) [][]int {
	cov := make([][]int, in.M())
	for j := 0; j < in.M(); j++ {
		t := p.Owner[j]
		full := in.Top.Coverage[j]
		keep := make([]int, 0, len(full))
		for _, i := range full {
			if p.ServerTile[i] == t {
				keep = append(keep, i)
			}
		}
		cov[j] = keep
	}
	return cov
}

// tileView is a shallow sub-instance for one tile's Phase 1: the
// topology's Coverage lists are replaced by the tile-restricted ones
// (empty for users the tile does not own) and the Covered lists are
// filtered to the tile's own users. Positions, distances, gains, radio
// and workload are shared with the full instance, so every quantity the
// tile game evaluates is arithmetically identical to evaluating it on
// the full instance — out-of-tile servers hold no occupants in a tile
// ledger, so skipping their (all-zero) interference cells changes no
// sum, it only stops paying O(|V_j|) for terms that are identically
// zero. The aggregate rows of a ledger over this view shrink the same
// way: row width covers in-tile sources only.
func tileView(in *model.Instance, p *Partition, t int, restricted [][]int) *model.Instance {
	top := *in.Top
	top.Coverage = make([][]int, in.M())
	for _, j := range p.Tiles[t].Users {
		top.Coverage[j] = restricted[j]
	}
	top.Covered = make([][]int, in.N())
	for _, i := range p.Tiles[t].Servers {
		full := in.Top.Covered[i]
		keep := make([]int, 0, len(full))
		for _, j := range full {
			if p.Owner[j] == int32(t) {
				keep = append(keep, j)
			}
		}
		top.Covered[i] = keep
	}
	in2 := *in
	in2.Top = &top
	return &in2
}

// Views materializes the restricted sub-instances the tile phase solves
// over, in tile order. The perf baseline uses them to pin the tile
// games' interior hot path — Ledger.Benefit over a tile view — at zero
// steady-state allocations; tests use them to inspect what a tile
// actually sees.
func Views(in *model.Instance, tiles int) []*model.Instance {
	p := MakePartition(in, tiles)
	restricted := restrictedCoverage(in, p)
	out := make([]*model.Instance, len(p.Tiles))
	for t := range p.Tiles {
		out[t] = tileView(in, p, t, restricted)
	}
	return out
}

// Solve runs the sharded two-phase solver.
func Solve(in *model.Instance, cfg Config) *Result {
	cfg.Game = resolveGame(cfg.Game)
	cfg.Placement = resolvePlacement(cfg.Placement)
	sc := cfg.Obs
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	p := MakePartition(in, cfg.Tiles)
	T := len(p.Tiles)
	res := &Result{Stats: statsOf(p)}

	// local[q] = player index within q's owning tile, +1.
	local := make([]int32, in.M())
	for _, tile := range p.Tiles {
		for idx, j := range tile.Users {
			local[j] = int32(idx + 1)
		}
	}

	// Per-tile tracer shards: workers emit into their own tracer, the
	// merge is deterministic (tick, shard) order after the join.
	var shards *obs.TracerShards
	if sc.Tracing() {
		shards = obs.NewTracerShards(T)
	}
	tileScope := func(t int) *obs.Scope {
		if shards != nil {
			return sc.WithTracer(shards.Shard(t))
		}
		return sc.WithTracer(nil) // metrics-only: shared atomic registry
	}

	// ---- Phase 1: per-tile best-response games on per-tile ledgers.
	// For T>1 each tile runs on its restricted sub-instance view: moves
	// are confined to own-tile servers and every evaluation walks only
	// in-tile coverage — the out-of-tile interference terms a full walk
	// would add are identically zero on an isolated tile ledger, so the
	// view changes no arithmetic, only the per-evaluation cost (and the
	// aggregate-row footprint) by roughly the squared in-tile coverage
	// fraction. A single tile runs on the instance itself, bit-identical
	// to the global solver.
	var restricted [][]int
	if T > 1 {
		restricted = restrictedCoverage(in, p)
	}
	sc.Begin("solve", "phase1", nil)
	t0 := time.Now()
	ledgers := make([]*model.Ledger, T)
	stats := make([]game.Stats, T)
	runTiles(T, workers, func(t int) {
		tsc := tileScope(t)
		view := in
		if T > 1 {
			view = tileView(in, p, t, restricted)
		}
		l := model.NewLedger(view, model.NewAllocation(in.M()))
		if cfg.NaiveInterference {
			l.SetNaiveInterference(true)
		}
		if cfg.AggRowBudget > 0 {
			l.SetAggRowBudget(cfg.AggRowBudget)
		}
		ledgers[t] = l
		if tsc.Tracing() {
			tsc.Begin("shard", "tile_phase1", map[string]any{
				"tile": t, "servers": len(p.Tiles[t].Servers), "users": len(p.Tiles[t].Users),
			})
		}
		opt := cfg.Game
		opt.Obs = tsc
		stats[t] = game.Run[model.Alloc](&tileGame{
			in: view, l: l, players: p.Tiles[t].Users, cov: view.Top.Coverage, local: local,
		}, opt)
		if tsc.Tracing() {
			tsc.End("shard", "tile_phase1")
		}
	})
	for _, st := range stats {
		res.Phase1.Rounds += st.Rounds
		res.Phase1.Updates += st.Updates
		res.Phase1.Evaluations += st.Evaluations
		res.Phase1.Frozen += st.Frozen
	}
	res.Phase1.Converged = true
	for _, st := range stats {
		res.Phase1.Converged = res.Phase1.Converged && st.Converged
	}
	res.Phase1Time = time.Since(t0)
	if shards != nil {
		shards.MergeInto(sc.Tracer())
		shards = nil
	}
	sc.End("solve", "phase1")

	// ---- Halo exchange: merge the tile equilibria onto one global
	// ledger and re-equilibrate in fixed tile order until a full pass
	// commits nothing (block-coordinate fixpoint) or the round cap.
	t1 := time.Now()
	var haloLedger *model.Ledger
	if T == 1 {
		// The single tile's ledger is already global state — reusing it
		// keeps AvgRate bit-identical to the unsharded solver.
		haloLedger = ledgers[0]
		res.Stats.HaloConverged = true
	} else {
		merged := model.NewAllocation(in.M())
		for t, l := range ledgers {
			for _, j := range p.Tiles[t].Users {
				merged[j] = l.Current(j)
			}
		}
		haloLedger = model.NewLedger(in, merged)
		if cfg.NaiveInterference {
			haloLedger.SetNaiveInterference(true)
		}
		if cfg.AggRowBudget > 0 {
			haloLedger.SetAggRowBudget(cfg.AggRowBudget)
		}
		ledgers = nil // tile ledgers (arenas, rows) are dead: release
		res.Stats.HaloConverged = runExchange(in, p, haloLedger, restricted, cfg, sc, &res.Stats)
	}
	res.SweepTime = time.Since(t1)
	res.Alloc = haloLedger.Alloc()
	res.AvgRate = haloLedger.AvgRate()

	// ---- Phase 2: per-tile CELF over tile servers × items requested
	// by tile users, against the frozen global allocation.
	sc.Begin("solve", "phase2", nil)
	t2 := time.Now()
	if sc.Tracing() {
		shards = obs.NewTracerShards(T)
	}
	deliveries := make([]*model.Delivery, T)
	presults := make([]placement.Result, T)
	runTiles(T, workers, func(t int) {
		tsc := tileScope(t)
		if tsc.Tracing() {
			tsc.Begin("shard", "tile_phase2", map[string]any{"tile": t})
		}
		deliveries[t], presults[t] = solveTileDelivery(in, p.Tiles[t], res.Alloc, cfg, tsc)
		if tsc.Tracing() {
			tsc.End("shard", "tile_phase2")
		}
	})
	delivery := model.NewDelivery(in.N(), in.K())
	for t, d := range deliveries {
		for _, i := range p.Tiles[t].Servers {
			for k := 0; k < in.K(); k++ {
				if d.Placed(i, k) {
					delivery.Place(i, k, in.Wl.Items[k].Size)
				}
			}
		}
		res.Replicas += len(presults[t].Chosen)
		res.GainEvaluations += presults[t].Evaluations
		res.LatencyReduction += units.Seconds(presults[t].TotalGain)
	}
	res.Phase2Time = time.Since(t2)
	if shards != nil {
		shards.MergeInto(sc.Tracer())
	}

	// ---- Reconcile: rebuild the oracle state globally (replaying the
	// merged replicas in ascending (server, item) order) and run one
	// bounded CELF pass over every remaining candidate, catching
	// replicas whose value is spread across tiles.
	t3 := time.Now()
	if cfg.ReconcileCommits >= 0 {
		rres := reconcile(in, res.Alloc, delivery, cfg, sc)
		res.Replicas += len(rres.Chosen)
		res.GainEvaluations += rres.Evaluations
		res.LatencyReduction += units.Seconds(rres.TotalGain)
		res.Stats.ReconcileReplicas = len(rres.Chosen)
		res.Stats.ReconcileGain = rres.TotalGain
	}
	res.ReconcileTime = time.Since(t3)
	sc.End("solve", "phase2")

	res.Delivery = delivery
	publishShardStats(sc, res)
	return res
}

// runTiles executes fn(t) for every tile on up to `workers` concurrent
// goroutines. Each tile writes only its own result slots, so the merge
// (in tile order, by the caller) is scheduling-independent.
func runTiles(tiles, workers int, fn func(t int)) {
	if workers < 1 {
		workers = 1
	}
	if workers == 1 || tiles == 1 {
		for t := 0; t < tiles; t++ {
			fn(t)
		}
		return
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for t := 0; t < tiles; t++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(t int) {
			defer wg.Done()
			fn(t)
			<-sem
		}(t)
	}
	wg.Wait()
}

// runExchange performs the halo-exchange sweeps: for each pass, every
// tile's players best-respond on the shared global ledger in tile
// order. Evaluations here see the true global occupancy (the full
// instance backs the ledger, so cross-tile interference enters every
// benefit), while decisions stay restricted to each user's own-tile
// servers — the same strategy space the tile games solved over. The
// first pass surfaces exactly the deviations induced by the cross-tile
// interference the isolated tile games could not see; subsequent passes
// propagate the ripples until a whole pass commits nothing — a
// fixpoint: no player can improve within its tile's servers — or the
// round cap hits. Reports whether the fixpoint was reached.
//
// The sweeps run under the engine's round-robin policy regardless of
// the configured Phase 1 policy: this is a repair stage, not the
// paper's Algorithm 1, and round-robin reaches the same fixed points (a
// converged pass means no player can improve) without paying the
// winner-takes-all cascade — one commit per round re-evaluating the
// whole perturbed neighbourhood — that would otherwise cost more than
// the tile solves saved.
// The early exit: a tile is "clean" when its last repair run reached the
// engine's fixpoint and no commit since then moved a user onto or off a
// server covering any of the tile's players — player q's Eq. 12 benefit
// reads only occupancy of servers in V_q, so such a tile would
// best-respond to an unchanged landscape and commit nothing. Skipping it
// drops the (large) no-op evaluation scan without changing a single
// commit, so the committed move sequence — and therefore the fixpoint —
// is bit-identical to the unskipped exchange (pinned by the differential
// tests; Config.NoSweepSkip forces the unskipped path). Dirty marking is
// conservative: after each tile run, every user whose allocation changed
// marks the owning tiles of all users covered by its old and new servers.
func runExchange(in *model.Instance, p *Partition, l *model.Ledger, restricted [][]int, cfg Config, sc *obs.Scope, st *Stats) bool {
	rounds := cfg.HaloRounds
	if rounds == 0 {
		rounds = DefaultHaloRounds
	}
	if rounds < 0 {
		return false
	}
	local := make([]int32, in.M())
	dirty := make([]bool, len(p.Tiles))
	for t := range dirty {
		dirty[t] = true
	}
	prev := make([]model.Alloc, 0, in.M())
	markCovered := func(s int, self int) {
		for _, q := range in.Top.Covered[s] {
			if t := p.Owner[q]; int(t) != self {
				dirty[t] = true
			}
		}
	}
	for sweep := 0; sweep < rounds; sweep++ {
		st.SweepRounds++
		updates := 0
		for ti, tile := range p.Tiles {
			if !dirty[ti] && !cfg.NoSweepSkip {
				st.SweepSkippedTiles++
				continue
			}
			for idx, j := range tile.Users {
				local[j] = int32(idx + 1)
			}
			prev = prev[:0]
			for _, j := range tile.Users {
				prev = append(prev, l.Current(j))
			}
			opt := cfg.Game
			opt.Policy = game.RoundRobin
			opt.Obs = sc
			gs := game.Run[model.Alloc](&tileGame{
				in: in, l: l, players: tile.Users, cov: restricted, local: local,
			}, opt)
			updates += gs.Updates
			st.SweepUpdates += gs.Updates
			st.SweepEvaluations += gs.Evaluations
			// Clean only on a true fixpoint: a run that "converged" with
			// frozen players (engine per-player move caps) is not one —
			// the next run hands those players fresh budgets and they
			// move again, so such a tile must stay dirty.
			dirty[ti] = !gs.Converged || gs.Frozen > 0
			for idx, j := range tile.Users {
				cur := l.Current(j)
				if cur == prev[idx] {
					continue
				}
				if prev[idx].Allocated() {
					markCovered(prev[idx].Server, ti)
				}
				if cur.Allocated() && (!prev[idx].Allocated() || cur.Server != prev[idx].Server) {
					markCovered(cur.Server, ti)
				}
			}
			for _, j := range tile.Users {
				local[j] = 0
			}
		}
		if sc.Tracing() {
			sc.Instant("shard", "sweep", map[string]any{
				"sweep": sweep, "updates": updates, "halo_users": len(p.Halo),
			})
		}
		if updates == 0 {
			// Ran tiles committed nothing and skipped tiles were clean —
			// by the skip argument every player is best-responding, a
			// block-coordinate fixpoint.
			return true
		}
	}
	return false
}

// solveTileDelivery runs Phase 2 for one tile: the same oracle and
// engine selection as the global solver, but over a shallow instance
// whose requests are filtered to the tile's users, with candidates
// restricted to the tile's servers. Tiles partition the servers, so
// capacity conflicts across tiles are impossible by construction.
func solveTileDelivery(in *model.Instance, tile Tile, alloc model.Allocation, cfg Config, sc *obs.Scope) (*model.Delivery, placement.Result) {
	in2 := tileInstance(in, tile)
	oracle := &deliveryOracle{in: in2, d: model.NewDelivery(in.N(), in.K())}
	switch {
	case cfg.NaiveLatency:
		oracle.ls = model.NewLatencyState(in2, alloc)
	case cfg.CohortBatch:
		oracle.ls = model.NewBatchCohortLatencyState(in2, alloc)
	default:
		oracle.ls = model.NewCohortLatencyState(in2, alloc)
	}
	requested := make([]bool, in.K())
	for _, j := range tile.Users {
		for _, k := range in.Wl.Requests[j] {
			requested[k] = true
		}
	}
	cands := make([]placement.Candidate, 0, len(tile.Servers)*in.K())
	for _, i := range tile.Servers {
		for k := 0; k < in.K(); k++ {
			if requested[k] {
				cands = append(cands, placement.Candidate{Server: i, Item: k})
			}
		}
	}
	if cfg.NaiveGreedy {
		return oracle.d, placement.GreedyOpt(cands, oracle, placement.Options{Obs: sc})
	}
	popt := cfg.Placement
	popt.Obs = sc
	if cfg.CohortBatch && !cfg.NaiveLatency {
		popt.ItemLocalGains = true
	}
	return oracle.d, placement.LazyGreedyOpt(cands, oracle, popt)
}

// tileInstance is a shallow view of the instance with the request lists
// of users the tile does not own blanked out: topology, gains, items
// and capacities are shared, so latency arithmetic is bit-identical to
// the global oracle's for the tile's own users.
func tileInstance(in *model.Instance, tile Tile) *model.Instance {
	reqs := make([][]int, in.M())
	for _, j := range tile.Users {
		reqs[j] = in.Wl.Requests[j]
	}
	wl := *in.Wl
	wl.Requests = reqs
	in2 := *in
	in2.Wl = &wl
	return &in2
}

// reconcile rebuilds a global oracle over the merged delivery — the
// replicas replay in ascending (server, item) order, a canonical order
// independent of which tile placed them — and runs one bounded CELF
// pass over all remaining candidates. For a single tile the replayed
// profile is exactly the tile greedy's output, so no remaining
// candidate has positive gain and the pass commits nothing.
func reconcile(in *model.Instance, alloc model.Allocation, d *model.Delivery, cfg Config, sc *obs.Scope) placement.Result {
	oracle := &deliveryOracle{in: in, d: d}
	switch {
	case cfg.NaiveLatency:
		oracle.ls = model.NewLatencyState(in, alloc)
	case cfg.CohortBatch:
		oracle.ls = model.NewBatchCohortLatencyState(in, alloc)
	default:
		oracle.ls = model.NewCohortLatencyState(in, alloc)
	}
	for i := 0; i < in.N(); i++ {
		for k := 0; k < in.K(); k++ {
			if d.Placed(i, k) {
				oracle.ls.Commit(i, k)
			}
		}
	}
	requested := make([]bool, in.K())
	for _, items := range in.Wl.Requests {
		for _, k := range items {
			requested[k] = true
		}
	}
	cands := make([]placement.Candidate, 0, in.N()*in.K())
	for i := 0; i < in.N(); i++ {
		for k := 0; k < in.K(); k++ {
			if requested[k] && !d.Placed(i, k) {
				cands = append(cands, placement.Candidate{Server: i, Item: k})
			}
		}
	}
	if sc.Tracing() {
		sc.Instant("shard", "reconcile", map[string]any{"candidates": len(cands)})
	}
	if cfg.NaiveGreedy {
		popt := placement.Options{Obs: sc, MaxCommits: cfg.ReconcileCommits}
		return placement.GreedyOpt(cands, oracle, popt)
	}
	popt := cfg.Placement
	popt.Obs = sc
	popt.MaxCommits = cfg.ReconcileCommits
	if cfg.CohortBatch && !cfg.NaiveLatency {
		popt.ItemLocalGains = true
	}
	return placement.LazyGreedyOpt(cands, oracle, popt)
}

// deliveryOracle mirrors core's Phase 2 oracle: incremental latency
// state plus the delivery profile under construction.
type deliveryOracle struct {
	in *model.Instance
	ls model.DeliveryOracle
	d  *model.Delivery
}

func (o *deliveryOracle) Gain(c placement.Candidate) float64 {
	return float64(o.ls.GainOf(c.Server, c.Item))
}

func (o *deliveryOracle) Cost(c placement.Candidate) float64 {
	return float64(o.in.Wl.Items[c.Item].Size)
}

func (o *deliveryOracle) Feasible(c placement.Candidate) bool {
	if o.d.Placed(c.Server, c.Item) {
		return false
	}
	size := o.in.Wl.Items[c.Item].Size
	return o.d.Used(c.Server)+size <= o.in.Wl.Capacity[c.Server]
}

func (o *deliveryOracle) Commit(c placement.Candidate) float64 {
	o.d.Place(c.Server, c.Item, o.in.Wl.Items[c.Item].Size)
	return float64(o.ls.Commit(c.Server, c.Item))
}

// statsOf summarizes a partition into the Stats shell.
func statsOf(p *Partition) Stats {
	st := Stats{Tiles: len(p.Tiles)}
	for t, tile := range p.Tiles {
		if t == 0 || len(tile.Servers) < st.MinTileServers {
			st.MinTileServers = len(tile.Servers)
		}
		if len(tile.Servers) > st.MaxTileServers {
			st.MaxTileServers = len(tile.Servers)
		}
		if t == 0 || len(tile.Users) < st.MinTileUsers {
			st.MinTileUsers = len(tile.Users)
		}
		if len(tile.Users) > st.MaxTileUsers {
			st.MaxTileUsers = len(tile.Users)
		}
	}
	st.FrontierServers = p.NumFrontier()
	st.HaloUsers = len(p.Halo)
	return st
}

// publishShardStats cross-wires the shard accounting into the scope's
// registry, mirroring the engines' publish helpers.
func publishShardStats(sc *obs.Scope, res *Result) {
	if !sc.Enabled() {
		return
	}
	sc.Count("shard_solves_total", 1)
	sc.SetGauge("shard_last_tiles", float64(res.Stats.Tiles))
	sc.SetGauge("shard_last_halo_users", float64(res.Stats.HaloUsers))
	sc.SetGauge("shard_last_frontier_servers", float64(res.Stats.FrontierServers))
	sc.Count("shard_sweep_rounds_total", int64(res.Stats.SweepRounds))
	sc.Count("shard_sweep_updates_total", int64(res.Stats.SweepUpdates))
	sc.Count("shard_sweep_skipped_tiles_total", int64(res.Stats.SweepSkippedTiles))
	sc.Count("shard_reconcile_replicas_total", int64(res.Stats.ReconcileReplicas))
	if res.Stats.HaloConverged {
		sc.Count("shard_halo_converged_total", 1)
	}
}

package shard

import (
	"reflect"
	"testing"

	"idde/internal/model"
	"idde/internal/radio"
	"idde/internal/rng"
	"idde/internal/topology"
	"idde/internal/workload"
)

// params mirrors experiment.Params; the experiment package cannot be
// imported here (it pulls in core, which imports this package).
type params struct {
	N, M, K int
}

func buildInstance(t *testing.T, p params, seed uint64) *model.Instance {
	t.Helper()
	s := rng.New(seed)
	top, err := topology.Generate(topology.DefaultGen(p.N, p.M, 1.0), s.Split("topology"))
	if err != nil {
		t.Fatal(err)
	}
	wl, err := workload.Generate(workload.DefaultGen(p.K), p.N, p.M, s.Split("workload"))
	if err != nil {
		t.Fatal(err)
	}
	in, err := model.New(top, wl, radio.Default())
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestMakePartitionInvariants checks the structural contract for a range
// of tile counts: servers and users are each partitioned exactly once,
// tiles are ordered by minimum server id with ascending member lists,
// ownership points at a covering server's tile (or tile 0 when nobody
// covers the user), and the frontier/halo sets match their definitions.
func TestMakePartitionInvariants(t *testing.T) {
	in := buildInstance(t, params{N: 25, M: 260, K: 5}, 21)
	for _, tiles := range []int{1, 2, 3, 4, 7, 8, 16, 25, 40} {
		p := MakePartition(in, tiles)
		want := tiles
		if want > in.N() {
			want = in.N()
		}
		if len(p.Tiles) != want {
			t.Fatalf("tiles=%d: got %d tiles, want %d", tiles, len(p.Tiles), want)
		}

		seenServer := make([]bool, in.N())
		seenUser := make([]bool, in.M())
		prevMin := -1
		for ti, tile := range p.Tiles {
			if tile.ID != ti {
				t.Fatalf("tiles=%d: tile %d has ID %d", tiles, ti, tile.ID)
			}
			if len(tile.Servers) == 0 {
				t.Fatalf("tiles=%d: tile %d has no servers", tiles, ti)
			}
			if tile.Servers[0] <= prevMin {
				t.Fatalf("tiles=%d: tiles not ordered by min server id", tiles)
			}
			prevMin = tile.Servers[0]
			last := -1
			for _, i := range tile.Servers {
				if i <= last {
					t.Fatalf("tiles=%d: tile %d servers not ascending", tiles, ti)
				}
				last = i
				if seenServer[i] {
					t.Fatalf("tiles=%d: server %d in two tiles", tiles, i)
				}
				seenServer[i] = true
				if p.ServerTile[i] != int32(ti) {
					t.Fatalf("tiles=%d: ServerTile[%d]=%d, want %d", tiles, i, p.ServerTile[i], ti)
				}
			}
			last = -1
			for _, j := range tile.Users {
				if j <= last {
					t.Fatalf("tiles=%d: tile %d users not ascending", tiles, ti)
				}
				last = j
				if seenUser[j] {
					t.Fatalf("tiles=%d: user %d owned twice", tiles, j)
				}
				seenUser[j] = true
				if p.Owner[j] != int32(ti) {
					t.Fatalf("tiles=%d: Owner[%d]=%d, want %d", tiles, j, p.Owner[j], ti)
				}
			}
		}
		for i, s := range seenServer {
			if !s {
				t.Fatalf("tiles=%d: server %d unassigned", tiles, i)
			}
		}
		for j, s := range seenUser {
			if !s {
				t.Fatalf("tiles=%d: user %d unowned", tiles, j)
			}
		}

		// Ownership must sit with a covering server's tile.
		for j := 0; j < in.M(); j++ {
			cov := in.Top.Coverage[j]
			if len(cov) == 0 {
				if p.Owner[j] != 0 {
					t.Fatalf("tiles=%d: uncovered user %d owned by tile %d", tiles, j, p.Owner[j])
				}
				continue
			}
			ok := false
			for _, i := range cov {
				if p.ServerTile[i] == p.Owner[j] {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("tiles=%d: user %d owned by tile %d with no covering server", tiles, j, p.Owner[j])
			}
		}

		// Frontier and halo by definition.
		inHalo := make(map[int]bool)
		for i := 0; i < in.N(); i++ {
			frontier := false
			for _, j := range in.Top.Covered[i] {
				if p.Owner[j] != p.ServerTile[i] {
					frontier = true
					break
				}
			}
			if frontier != p.Frontier[i] {
				t.Fatalf("tiles=%d: Frontier[%d]=%v, want %v", tiles, i, p.Frontier[i], frontier)
			}
			if frontier && len(p.Tiles) > 1 {
				for _, j := range in.Top.Covered[i] {
					inHalo[j] = true
				}
			}
		}
		if len(p.Halo) != len(inHalo) {
			t.Fatalf("tiles=%d: halo size %d, want %d", tiles, len(p.Halo), len(inHalo))
		}
		lastHalo := -1
		for _, j := range p.Halo {
			if !inHalo[j] || j <= lastHalo {
				t.Fatalf("tiles=%d: bad halo entry %d", tiles, j)
			}
			lastHalo = j
		}
		if len(p.Tiles) == 1 && (len(p.Halo) != 0 || p.NumFrontier() != 0) {
			t.Fatalf("single tile must have empty frontier and halo")
		}
	}
}

// TestMakePartitionDeterministic: the partition is a pure function of
// the topology and the tile count.
func TestMakePartitionDeterministic(t *testing.T) {
	in := buildInstance(t, params{N: 20, M: 150, K: 6}, 2022)
	for _, tiles := range []int{1, 4, 8} {
		a := MakePartition(in, tiles)
		for r := 0; r < 5; r++ {
			b := MakePartition(in, tiles)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("tiles=%d: partition not deterministic", tiles)
			}
		}
	}
}

// TestMakePartitionNearestOwnership: each user's owner tile is the tile
// of its nearest covering server (ties to the lowest id).
func TestMakePartitionNearestOwnership(t *testing.T) {
	in := buildInstance(t, params{N: 16, M: 120, K: 5}, 7)
	p := MakePartition(in, 4)
	for j := 0; j < in.M(); j++ {
		cov := in.Top.Coverage[j]
		if len(cov) == 0 {
			continue
		}
		best := cov[0]
		for _, i := range cov[1:] {
			if in.Top.Distance(i, j) < in.Top.Distance(best, j) {
				best = i
			}
		}
		if p.Owner[j] != p.ServerTile[best] {
			t.Fatalf("user %d owned by tile %d, nearest covering server %d is in tile %d",
				j, p.Owner[j], best, p.ServerTile[best])
		}
	}
}

// TestTileStreamLabels: per-tile rng streams are distinct and stable.
func TestTileStreamLabels(t *testing.T) {
	cfg := Config{Seed: 42}
	a0 := cfg.TileStream(0).Seed()
	a1 := cfg.TileStream(1).Seed()
	if a0 == a1 {
		t.Fatal("tile streams 0 and 1 collide")
	}
	if again := cfg.TileStream(0).Seed(); again != a0 {
		t.Fatalf("tile stream not stable: %d vs %d", again, a0)
	}
}

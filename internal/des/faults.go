package des

import (
	"math"

	"idde/internal/units"
)

// Faults is the unreliable-transfer mode of the simulator: each wired
// hop attempt can be lost (detected at the end of the attempt, as a
// checksum failure would be) or stalled, lost attempts are retried with
// exponential backoff, and a transfer that exhausts its retry budget at
// any hop abandons its source and fails over to the next-best replica
// per Eq. 8 — or to the cloud when no edge source remains.
//
// Over-the-air delivery (coverage-local and server-local modes) and the
// cloud ingress are not subject to loss: wired backhaul is where
// correlated outages bite, and cloud degradation is modelled separately
// as an ingress-rate brownout. This keeps every simulation terminating
// by construction — each request tries each distinct edge source at
// most once, each hop at most 1+MaxRetries times, and the cloud always
// completes.
type Faults struct {
	// LossProb is the per-hop attempt loss probability on wired links,
	// in [0,1).
	LossProb float64
	// StallProb is the per-hop attempt stall probability; a stalled
	// attempt completes StallTime late but is not lost.
	StallProb float64
	// StallTime is the extra latency of a stalled attempt.
	StallTime units.Seconds
	// MaxRetries bounds retries per hop after the first attempt
	// (default 3).
	MaxRetries int
	// Backoff is the base delay before the first retry, doubling on
	// every subsequent one (default 2ms).
	Backoff units.Seconds
}

// normalized returns the config with defaults applied and probabilities
// clamped to sane ranges.
func (f Faults) normalized() Faults {
	if f.MaxRetries <= 0 {
		f.MaxRetries = 3
	}
	if f.Backoff <= 0 {
		f.Backoff = units.Seconds(0.002)
	}
	f.LossProb = clamp01(f.LossProb)
	f.StallProb = clamp01(f.StallProb)
	if f.StallTime < 0 {
		f.StallTime = 0
	}
	return f
}

// Enabled reports whether the config injects any faults at all.
func (f Faults) Enabled() bool {
	return f.LossProb > 0 || f.StallProb > 0
}

// retryDelay is the backoff before retry number attempt+1 (0-based).
func (f Faults) retryDelay(attempt int) units.Seconds {
	return units.Seconds(float64(f.Backoff) * math.Pow(2, float64(attempt)))
}

func clamp01(p float64) float64 {
	switch {
	case math.IsNaN(p), p < 0:
		return 0
	case p >= 1:
		// A loss probability of exactly 1 would make every retry
		// pointless but still terminates; cap just below to keep
		// expected retry math finite.
		return 0.999999
	default:
		return p
	}
}

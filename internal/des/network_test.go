package des

import (
	"math"
	"testing"

	"idde/internal/baseline"
	"idde/internal/core"
	"idde/internal/model"
	"idde/internal/radio"
	"idde/internal/rng"
	"idde/internal/topology"
	"idde/internal/units"
	"idde/internal/workload"
)

func genInstance(t *testing.T, n, m, k int, seed uint64) *model.Instance {
	t.Helper()
	s := rng.New(seed)
	top, err := topology.Generate(topology.DefaultGen(n, m, 1.2), s.Split("top"))
	if err != nil {
		t.Fatalf("topology: %v", err)
	}
	wl, err := workload.Generate(workload.DefaultGen(k), n, m, s.Split("wl"))
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	in, err := model.New(top, wl, radio.Default())
	if err != nil {
		t.Fatalf("model: %v", err)
	}
	return in
}

func TestUncontendedSimulationMatchesAnalytic(t *testing.T) {
	in := genInstance(t, 15, 80, 4, 1)
	st := core.Solve(in, core.DefaultOptions()).Strategy
	// A very wide arrival spread leaves every resource idle on arrival,
	// so measured latency equals the analytic Eq. 8 value per request.
	rep := SimulateStrategy(in, st, units.Seconds(1e6), rng.New(2))
	idx := 0
	for j, items := range in.Wl.Requests {
		for _, k := range items {
			analytic := in.RequestLatencyMode(st.Alloc, st.Delivery, j, k, st.Mode)
			got := rep.PerRequest[idx]
			if math.Abs(float64(got-analytic)) > 1e-9*math.Max(1, float64(analytic)) {
				t.Fatalf("request (%d,%d): measured %v != analytic %v", j, k, got, analytic)
			}
			idx++
		}
	}
	if math.Abs(float64(rep.Avg-rep.AnalyticAvg)) > 1e-9 {
		t.Errorf("avg %v != analytic avg %v", rep.Avg, rep.AnalyticAvg)
	}
	if infl := rep.MaxQueueingInflation(in, st); math.Abs(infl-1) > 1e-6 {
		t.Errorf("uncontended inflation = %v", infl)
	}
}

func TestBurstArrivalsOnlyAddDelay(t *testing.T) {
	in := genInstance(t, 15, 120, 5, 3)
	st := core.Solve(in, core.DefaultOptions()).Strategy
	rep := SimulateStrategy(in, st, 0, rng.New(4)) // synchronized burst
	idx := 0
	for j, items := range in.Wl.Requests {
		for _, k := range items {
			analytic := in.RequestLatencyMode(st.Alloc, st.Delivery, j, k, st.Mode)
			if rep.PerRequest[idx] < analytic-1e-12 {
				t.Fatalf("measured %v beat analytic %v for (%d,%d)", rep.PerRequest[idx], analytic, j, k)
			}
			idx++
		}
	}
	if rep.Avg < rep.AnalyticAvg-1e-12 {
		t.Errorf("burst average %v below analytic %v", rep.Avg, rep.AnalyticAvg)
	}
	if infl := rep.MaxQueueingInflation(in, st); infl < 1 {
		t.Errorf("inflation = %v < 1", infl)
	}
}

func TestSimulationCountsCloudRequests(t *testing.T) {
	in := genInstance(t, 12, 60, 4, 5)
	// Empty delivery: everything comes from the cloud.
	st := model.Strategy{
		Alloc:    model.NewAllocation(in.M()),
		Delivery: model.NewDelivery(in.N(), in.K()),
	}
	rep := SimulateStrategy(in, st, units.Seconds(1e6), rng.New(6))
	if rep.CloudRequests != in.Wl.TotalRequests() {
		t.Errorf("cloud requests = %d, want %d", rep.CloudRequests, in.Wl.TotalRequests())
	}
	// With the huge spread, each cloud fetch is uncontended: latency =
	// cloud latency of the item.
	idx := 0
	for _, items := range in.Wl.Requests {
		for _, k := range items {
			want := in.CloudLatency(k)
			if math.Abs(float64(rep.PerRequest[idx]-want)) > 1e-9 {
				t.Fatalf("cloud fetch latency %v != %v", rep.PerRequest[idx], want)
			}
			idx++
		}
	}
}

func TestNonCollaborativeModesBypassWiredNetwork(t *testing.T) {
	in := genInstance(t, 12, 80, 4, 7)
	st := baseline.NewCDP().Solve(in, 0)
	rep := SimulateStrategy(in, st, 0, rng.New(8))
	// Server-local hits are instantaneous; only cloud fetches take time.
	idx := 0
	for j, items := range in.Wl.Requests {
		for _, k := range items {
			a := st.Alloc[j]
			if a.Allocated() && st.Delivery.Placed(a.Server, k) {
				if rep.PerRequest[idx] != 0 {
					t.Fatalf("local hit took %v", rep.PerRequest[idx])
				}
			}
			idx++
		}
	}
}

func TestUtilizationAccounting(t *testing.T) {
	in := genInstance(t, 12, 100, 4, 11)
	st := core.Solve(in, core.DefaultOptions()).Strategy
	rep := SimulateStrategy(in, st, 0, rng.New(12))
	if rep.Makespan() <= 0 {
		t.Fatal("zero makespan on a busy run")
	}
	lus := rep.LinkUtilizations()
	if len(lus) != in.Top.Net.M() {
		t.Fatalf("link rows = %d, want %d", len(lus), in.Top.Net.M())
	}
	// Sorted busiest-first; utilization within [0,1] (a FIFO link can
	// never be busy longer than the makespan).
	for i, lu := range lus {
		if i > 0 && lu.BusyTime > lus[i-1].BusyTime {
			t.Fatal("links not sorted by busy time")
		}
		if lu.Utilization < 0 || lu.Utilization > 1+1e-9 {
			t.Fatalf("utilization %v out of range", lu.Utilization)
		}
		if lu.Served == 0 && lu.BusyTime != 0 {
			t.Fatal("idle link with busy time")
		}
	}
	// Cloud rows cover every server; total served across links+cloud
	// must at least cover cloud requests.
	cloud := rep.CloudUtilizations()
	if len(cloud) != in.N() {
		t.Fatalf("cloud rows = %d", len(cloud))
	}
	servedCloud := 0
	for _, cu := range cloud {
		servedCloud += cu.Served
	}
	if servedCloud != rep.CloudRequests {
		t.Errorf("cloud served %d != cloud requests %d", servedCloud, rep.CloudRequests)
	}
}

func TestSimulationDeterministic(t *testing.T) {
	in := genInstance(t, 12, 60, 4, 9)
	st := core.Solve(in, core.DefaultOptions()).Strategy
	a := SimulateStrategy(in, st, 0.1, rng.New(10))
	b := SimulateStrategy(in, st, 0.1, rng.New(10))
	if a.Avg != b.Avg || a.Events != b.Events {
		t.Error("simulation not deterministic under a fixed seed")
	}
}

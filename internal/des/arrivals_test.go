package des

import (
	"math"
	"testing"

	"idde/internal/core"
	"idde/internal/rng"
	"idde/internal/units"
)

func TestUniformArrivals(t *testing.T) {
	u := Uniform{Window: 10}
	ts := u.Times(1000, rng.New(1))
	if len(ts) != 1000 {
		t.Fatalf("n = %d", len(ts))
	}
	for _, v := range ts {
		if v < 0 || v >= 10 {
			t.Fatalf("arrival %v outside window", v)
		}
	}
	if u.Name() == "" {
		t.Error("empty name")
	}
	// Zero window: synchronized burst.
	for _, v := range (Uniform{}).Times(10, rng.New(2)) {
		if v != 0 {
			t.Fatal("zero-window arrival not at 0")
		}
	}
}

func TestPoissonArrivals(t *testing.T) {
	p := Poisson{RatePerSec: 50}
	ts := p.Times(5000, rng.New(3))
	sorted := sortedCopy(ts)
	// Mean inter-arrival ≈ 1/λ.
	gaps := 0.0
	for i := 1; i < len(sorted); i++ {
		if sorted[i] < sorted[i-1] {
			t.Fatal("sortedCopy not sorted")
		}
		gaps += float64(sorted[i] - sorted[i-1])
	}
	mean := gaps / float64(len(sorted)-1)
	if math.Abs(mean-1.0/50) > 0.002 {
		t.Errorf("mean inter-arrival = %v, want ≈0.02", mean)
	}
	// Degenerate rate yields a burst.
	for _, v := range (Poisson{}).Times(5, rng.New(4)) {
		if v != 0 {
			t.Fatal("zero-rate arrival not at 0")
		}
	}
	if p.Name() == "" {
		t.Error("empty name")
	}
}

func TestDiurnalArrivalsShape(t *testing.T) {
	d := Diurnal{BasePerSec: 1, Amplitude: 0.9, Window: units.Seconds(daySeconds)}
	ts := d.Times(20000, rng.New(5))
	if len(ts) != 20000 {
		t.Fatalf("n = %d", len(ts))
	}
	// Bucket arrivals by 6-hour bins: the peak (around hour 6, where
	// sin is maximal) must exceed the trough (around hour 18).
	var bins [4]int
	for _, v := range ts {
		if v < 0 || float64(v) > daySeconds {
			t.Fatalf("arrival %v outside window", v)
		}
		bins[int(float64(v)/daySeconds*4)%4]++
	}
	if bins[0]+bins[1] <= bins[2]+bins[3] {
		t.Errorf("diurnal profile flat or inverted: %v", bins)
	}
	if d.Name() == "" {
		t.Error("empty name")
	}
	// Degenerate config yields a burst of the right length.
	if got := (Diurnal{}).Times(7, rng.New(6)); len(got) != 7 {
		t.Fatalf("degenerate diurnal n = %d", len(got))
	}
}

func TestDiurnalAmplitudeClamped(t *testing.T) {
	d := Diurnal{BasePerSec: 5, Amplitude: 3, Window: 1000}
	ts := d.Times(500, rng.New(7))
	if len(ts) != 500 {
		t.Fatalf("n = %d", len(ts))
	}
}

func TestSimulateWithArrivalsMatchesUniform(t *testing.T) {
	in := genInstance(t, 12, 60, 4, 31)
	st := core.Solve(in, core.DefaultOptions()).Strategy
	// A very slow Poisson process (huge gaps) behaves like the
	// uncontended uniform run: measured == analytic.
	rep := SimulateWithArrivals(in, st, Poisson{RatePerSec: 1e-4}, rng.New(8))
	if math.Abs(float64(rep.Avg-rep.AnalyticAvg)) > 1e-9 {
		t.Errorf("slow Poisson avg %v != analytic %v", rep.Avg, rep.AnalyticAvg)
	}
	// A very fast process behaves like a burst: only worse.
	fast := SimulateWithArrivals(in, st, Poisson{RatePerSec: 1e9}, rng.New(9))
	if fast.Avg < fast.AnalyticAvg-1e-12 {
		t.Errorf("fast Poisson avg %v beat analytic %v", fast.Avg, fast.AnalyticAvg)
	}
}

func TestSimulateWithArrivalsDeterministic(t *testing.T) {
	in := genInstance(t, 10, 50, 3, 32)
	st := core.Solve(in, core.DefaultOptions()).Strategy
	a := SimulateWithArrivals(in, st, Poisson{RatePerSec: 100}, rng.New(10))
	b := SimulateWithArrivals(in, st, Poisson{RatePerSec: 100}, rng.New(10))
	if a.Avg != b.Avg {
		t.Error("arrival-model simulation not deterministic")
	}
}

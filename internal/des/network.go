package des

import (
	"fmt"
	"math"
	"sort"

	"idde/internal/model"
	"idde/internal/obs"
	"idde/internal/rng"
	"idde/internal/units"
)

// Network executes an IDDE strategy's transfers over the topology's
// wired links with FIFO contention. Each undirected link is one shared
// resource (half-duplex, as microwave backhaul typically is); each
// server additionally owns a cloud-ingress resource at the topology's
// cloud rate.
type Network struct {
	in    *model.Instance
	links map[[2]int]*Resource
	cloud []*Resource
}

// NewNetwork builds the contention model for an instance.
func NewNetwork(in *model.Instance) *Network {
	n := &Network{in: in, links: map[[2]int]*Resource{}, cloud: make([]*Resource, in.N())}
	for _, e := range in.Top.Net.Edges() {
		n.links[[2]int{e.U, e.V}] = &Resource{Rate: units.Rate(1 / float64(e.Cost))}
	}
	for i := range n.cloud {
		n.cloud[i] = &Resource{Rate: in.Top.CloudRate}
	}
	return n
}

func (n *Network) link(u, v int) *Resource {
	if u > v {
		u, v = v, u
	}
	return n.links[[2]int{u, v}]
}

// Report aggregates a simulated execution.
type Report struct {
	// PerRequest holds the measured completion latency of every
	// (user, item) request, in workload order.
	PerRequest []units.Seconds
	// Avg is the measured analogue of Eq. 9.
	Avg units.Seconds
	// AnalyticAvg is Eq. 9 itself, for comparison.
	AnalyticAvg units.Seconds
	// CloudRequests counts requests served from the cloud.
	CloudRequests int
	// Events is the number of simulation events executed.
	Events int
	// Retries counts lost hop attempts that were re-sent (unreliable
	// mode only).
	Retries int
	// Failovers counts sources abandoned after a hop exhausted its
	// retry budget; the request restarted from the next-best replica
	// or the cloud.
	Failovers int
	// CloudFallbacks counts requests that began on an edge source and
	// ended up served by the cloud after exhausting every edge source.
	CloudFallbacks int
	// Stalls counts hop attempts that hit a stall.
	Stalls int
	// net retains the contention state for utilization queries.
	net *Network
	// makespan is the completion time of the last transfer.
	makespan units.Seconds
}

// LinkUtilization summarizes one wired link's contention.
type LinkUtilization struct {
	U, V     int
	Served   int
	BusyTime units.Seconds
	// Utilization is BusyTime over the run's makespan (0 for an idle
	// run).
	Utilization float64
}

// Makespan reports when the last transfer completed.
func (rep *Report) Makespan() units.Seconds { return rep.makespan }

// LinkUtilizations reports per-link contention, busiest first. Links
// that served nothing are included with zero counts so capacity
// planning can spot dead links.
func (rep *Report) LinkUtilizations() []LinkUtilization {
	if rep.net == nil {
		return nil
	}
	var out []LinkUtilization
	for key, res := range rep.net.links {
		lu := LinkUtilization{U: key[0], V: key[1], Served: res.Served(), BusyTime: res.BusyTime()}
		if rep.makespan > 0 {
			lu.Utilization = float64(res.BusyTime()) / float64(rep.makespan)
		}
		out = append(out, lu)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].BusyTime != out[b].BusyTime {
			return out[a].BusyTime > out[b].BusyTime
		}
		if out[a].U != out[b].U {
			return out[a].U < out[b].U
		}
		return out[a].V < out[b].V
	})
	return out
}

// CloudUtilizations reports per-server cloud-ingress contention, in
// server order.
func (rep *Report) CloudUtilizations() []LinkUtilization {
	if rep.net == nil {
		return nil
	}
	out := make([]LinkUtilization, len(rep.net.cloud))
	for i, res := range rep.net.cloud {
		out[i] = LinkUtilization{U: -1, V: i, Served: res.Served(), BusyTime: res.BusyTime()}
		if rep.makespan > 0 {
			out[i].Utilization = float64(res.BusyTime()) / float64(rep.makespan)
		}
	}
	return out
}

// countRequests reports the workload's total request count.
func countRequests(in *model.Instance) int {
	return in.Wl.TotalRequests()
}

// SimulateStrategy runs every request of the workload as a
// store-and-forward flow along its Eq. 8 serving path. Requests arrive
// uniformly over the spread window (spread = 0 means a synchronized
// burst, the worst case for contention); arrival order is drawn from
// the stream.
func SimulateStrategy(in *model.Instance, st model.Strategy, spread units.Seconds, s *rng.Stream) *Report {
	return SimulateStrategyOpt(in, st, SimOptions{Spread: spread}, s)
}

// SimOptions bundles the simulation knobs for SimulateStrategyOpt.
type SimOptions struct {
	// Spread is the request-arrival window (0 = synchronized burst).
	Spread units.Seconds
	// Faults enables the unreliable-transfer mode (nil = reliable).
	Faults *Faults
	// Obs receives the run's telemetry: a run span, transfer-outcome
	// counters cross-wired from the Report, and a per-request latency
	// histogram. nil disables all of it; the Report is identical
	// either way (rng splits are label-derived, so attaching a scope
	// never perturbs the draws).
	Obs *obs.Scope
}

// SimulateStrategyOpt is SimulateStrategy/SimulateStrategyFaulty behind
// one options surface, with optional telemetry.
func SimulateStrategyOpt(in *model.Instance, st model.Strategy, opt SimOptions, s *rng.Stream) *Report {
	arrivals := Uniform{Window: opt.Spread}.Times(countRequests(in), s.Split("arrivals"))
	var f *Faults
	var fs *rng.Stream
	if opt.Faults != nil {
		nf := opt.Faults.normalized()
		f = &nf
		fs = s.Split("faults")
	}
	return simulateObs(in, st, arrivals, s.Split("order"), f, fs, opt.Obs)
}

// SimulateStrategyFaulty is SimulateStrategy in the unreliable-transfer
// mode: wired hops are lost with f.LossProb, stalled with f.StallProb,
// retried with exponential backoff and failed over per Eq. 8 when a
// hop's retry budget is exhausted. All fault draws come from a
// dedicated split of the stream, so a given seed reproduces the exact
// same degradation bit-for-bit.
func SimulateStrategyFaulty(in *model.Instance, st model.Strategy, spread units.Seconds, f Faults, s *rng.Stream) *Report {
	return SimulateStrategyOpt(in, st, SimOptions{Spread: spread, Faults: &f}, s)
}

// simulateObs wraps simulate with the run span and the Report→metrics
// cross-wiring; both are written from the same Report fields, so the
// struct and the counters can never drift.
func simulateObs(in *model.Instance, st model.Strategy, arrivals []units.Seconds, s *rng.Stream, faults *Faults, fs *rng.Stream, sc *obs.Scope) *Report {
	sc.Begin("des", "run", nil)
	rep := simulate(in, st, arrivals, s, faults, fs)
	if sc.Enabled() {
		sc.Count("des_runs_total", 1)
		sc.Count("des_requests_total", int64(len(rep.PerRequest)))
		sc.Count("des_events_total", int64(rep.Events))
		sc.Count("des_cloud_requests_total", int64(rep.CloudRequests))
		sc.Count("des_retries_total", int64(rep.Retries))
		sc.Count("des_failovers_total", int64(rep.Failovers))
		sc.Count("des_cloud_fallbacks_total", int64(rep.CloudFallbacks))
		sc.Count("des_stalls_total", int64(rep.Stalls))
		for _, l := range rep.PerRequest {
			sc.Observe("des_request_latency_ms", l.Millis())
		}
		if sc.Tracing() {
			sc.Instant("des", "report", map[string]any{
				"requests":        len(rep.PerRequest),
				"events":          rep.Events,
				"avg_ms":          rep.Avg.Millis(),
				"analytic_ms":     rep.AnalyticAvg.Millis(),
				"makespan_ms":     rep.makespan.Millis(),
				"cloud_requests":  rep.CloudRequests,
				"retries":         rep.Retries,
				"failovers":       rep.Failovers,
				"cloud_fallbacks": rep.CloudFallbacks,
				"stalls":          rep.Stalls,
			})
		}
	}
	sc.End("des", "run")
	return rep
}

// simulate executes the workload's transfers with the given per-request
// arrival offsets (workload request order). A nil faults config runs
// the reliable mode.
func simulate(in *model.Instance, st model.Strategy, arrivals []units.Seconds, s *rng.Stream, faults *Faults, fs *rng.Stream) *Report {
	net := NewNetwork(in)
	sim := &Sim{}
	rep := &Report{AnalyticAvg: in.AvgLatencyMode(st.Alloc, st.Delivery, st.Mode)}

	type reqRef struct {
		j, k int
		idx  int
	}
	var reqs []reqRef
	for j, items := range in.Wl.Requests {
		for _, k := range items {
			reqs = append(reqs, reqRef{j: j, k: k, idx: len(reqs)})
		}
	}
	if len(arrivals) != len(reqs) {
		panic(fmt.Sprintf("des: %d arrivals for %d requests", len(arrivals), len(reqs)))
	}
	rep.PerRequest = make([]units.Seconds, len(reqs))

	// Schedule in arrival order; simultaneous arrivals tie-break by a
	// seeded permutation so no request index is privileged.
	order := s.Perm(len(reqs))
	sort.SliceStable(order, func(a, b int) bool { return arrivals[order[a]] < arrivals[order[b]] })

	for _, oi := range order {
		r := reqs[oi]
		at := arrivals[oi]
		j, k, idx := r.j, r.k, r.idx
		sim.Schedule(at, func() {
			if faults != nil {
				x := &xfer{sim: sim, net: net, rep: rep, in: in, st: st,
					f: faults, s: fs, j: j, k: k, idx: idx, start: sim.Now()}
				x.launch()
				return
			}
			src, viaEdge := servingReplica(in, st, j, k)
			if !viaEdge {
				rep.CloudRequests++
				target := 0
				if a := st.Alloc[j]; a.Allocated() {
					target = a.Server
				}
				done := net.cloud[target].Acquire(sim.Now(), in.Wl.Items[k].Size)
				start := sim.Now()
				sim.Schedule(done, func() { rep.PerRequest[idx] = sim.Now() - start })
				return
			}
			if st.Mode != model.Collaborative {
				// Coverage-local and server-local delivery happen over
				// the air from the holder, without touching the wired
				// network: completion is immediate on the Eq. 8 scale.
				rep.PerRequest[idx] = 0
				return
			}
			dst := st.Alloc[j].Server
			path, _, ok := in.Top.Net.ShortestPath(src, dst)
			if !ok {
				path = []int{src}
			}
			start := sim.Now()
			forwardHop(sim, net, rep, idx, path, 0, in.Wl.Items[k].Size, start)
		})
	}
	rep.makespan = sim.Run()
	rep.net = net
	var total float64
	for _, l := range rep.PerRequest {
		total += float64(l)
	}
	if len(rep.PerRequest) > 0 {
		rep.Avg = units.Seconds(total / float64(len(rep.PerRequest)))
	}
	rep.Events = sim.Steps()
	return rep
}

// forwardHop moves the item across path[i]→path[i+1], store-and-forward.
func forwardHop(sim *Sim, n *Network, rep *Report, idx int, path []int, i int, size units.MegaBytes, start units.Seconds) {
	if i+1 >= len(path) {
		rep.PerRequest[idx] = sim.Now() - start
		return
	}
	res := n.link(path[i], path[i+1])
	if res == nil {
		// Link vanished (cannot happen for Eq. 8 paths); treat as done.
		rep.PerRequest[idx] = sim.Now() - start
		return
	}
	done := res.Acquire(sim.Now(), size)
	sim.Schedule(done, func() { forwardHop(sim, n, rep, idx, path, i+1, size, start) })
}

// xfer is one request's transfer under the unreliable mode: a state
// machine over (source, hop, attempt) that retries lost hops with
// exponential backoff and fails over to the next-best replica — then
// the cloud — when a hop exhausts its budget.
type xfer struct {
	sim   *Sim
	net   *Network
	rep   *Report
	in    *model.Instance
	st    model.Strategy
	f     *Faults
	s     *rng.Stream
	j, k  int
	idx   int
	start units.Seconds
	// tried marks edge sources abandoned after retry exhaustion.
	tried map[int]bool
}

func (x *xfer) size() units.MegaBytes { return x.in.Wl.Items[x.k].Size }

// launch resolves the best remaining source per Eq. 8 and starts (or
// restarts, after a failover) the transfer.
func (x *xfer) launch() {
	skip := func(o int) bool { return x.tried[o] }
	src, viaEdge := x.in.BestSource(x.st.Alloc, x.st.Delivery, x.j, x.k, x.st.Mode, skip)
	if !viaEdge {
		if len(x.tried) > 0 {
			x.rep.CloudFallbacks++
		}
		x.cloud()
		return
	}
	if x.st.Mode != model.Collaborative {
		// Over-the-air delivery from a covering holder: the wired
		// fault model does not apply.
		x.rep.PerRequest[x.idx] = x.sim.Now() - x.start
		return
	}
	dst := x.st.Alloc[x.j].Server
	path, _, ok := x.in.Top.Net.ShortestPath(src, dst)
	if !ok {
		path = []int{src}
	}
	x.hop(src, path, 0, 0)
}

// cloud serves the request from the cloud ingress (reliable; brownouts
// degrade its rate, not its delivery).
func (x *xfer) cloud() {
	x.rep.CloudRequests++
	target := 0
	if a := x.st.Alloc[x.j]; a.Allocated() {
		target = a.Server
	}
	done := x.net.cloud[target].Acquire(x.sim.Now(), x.size())
	x.sim.Schedule(done, func() { x.rep.PerRequest[x.idx] = x.sim.Now() - x.start })
}

// hop attempts the transfer across path[i]→path[i+1]. The attempt
// occupies the link for the full service time; loss is detected at the
// end (as a checksum failure would be), so lost attempts still congest
// the link — exactly why loss storms inflate latency system-wide.
func (x *xfer) hop(src int, path []int, i, attempt int) {
	if i+1 >= len(path) {
		x.rep.PerRequest[x.idx] = x.sim.Now() - x.start
		return
	}
	res := x.net.link(path[i], path[i+1])
	if res == nil {
		// The link is gone under this degradation: abandon the source
		// immediately, as a router would on an unreachable next hop.
		x.abandon(src)
		return
	}
	done := res.Acquire(x.sim.Now(), x.size())
	if x.f.StallProb > 0 && x.s.Bool(x.f.StallProb) {
		x.rep.Stalls++
		done += x.f.StallTime
	}
	lost := x.s.Bool(x.f.LossProb)
	x.sim.Schedule(done, func() {
		if !lost {
			x.hop(src, path, i+1, 0)
			return
		}
		x.rep.Retries++
		if attempt < x.f.MaxRetries {
			retryAt := x.sim.Now() + x.f.retryDelay(attempt)
			x.sim.Schedule(retryAt, func() { x.hop(src, path, i, attempt+1) })
			return
		}
		x.abandon(src)
	})
}

// abandon marks the source exhausted and fails over.
func (x *xfer) abandon(src int) {
	x.rep.Failovers++
	if x.tried == nil {
		x.tried = make(map[int]bool)
	}
	x.tried[src] = true
	x.launch()
}

// servingReplica resolves Eq. 8's argmin for request (j,k) under the
// strategy's delivery mode: the edge server the item is fetched from,
// or viaEdge=false for the cloud.
func servingReplica(in *model.Instance, st model.Strategy, j, k int) (src int, viaEdge bool) {
	return in.BestSource(st.Alloc, st.Delivery, j, k, st.Mode, nil)
}

// MaxQueueingInflation reports max over requests of measured/analytic
// latency (1 = no queueing anywhere). Requests with zero analytic
// latency are skipped.
func (rep *Report) MaxQueueingInflation(in *model.Instance, st model.Strategy) float64 {
	worst := 1.0
	idx := 0
	for j, items := range in.Wl.Requests {
		for _, k := range items {
			analytic := in.RequestLatencyMode(st.Alloc, st.Delivery, j, k, st.Mode)
			if analytic > 0 {
				if ratio := float64(rep.PerRequest[idx]) / float64(analytic); ratio > worst && !math.IsInf(ratio, 0) {
					worst = ratio
				}
			}
			idx++
		}
	}
	return worst
}

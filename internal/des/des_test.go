package des

import (
	"math"
	"testing"

	"idde/internal/units"
)

func TestSimRunsInTimeOrder(t *testing.T) {
	var sim Sim
	var got []int
	sim.Schedule(3, func() { got = append(got, 3) })
	sim.Schedule(1, func() { got = append(got, 1) })
	sim.Schedule(2, func() { got = append(got, 2) })
	end := sim.Run()
	if end != 3 {
		t.Errorf("end time = %v", end)
	}
	for i, v := range []int{1, 2, 3} {
		if got[i] != v {
			t.Fatalf("order = %v", got)
		}
	}
}

func TestSimFIFOTieBreak(t *testing.T) {
	var sim Sim
	var got []int
	for i := 0; i < 5; i++ {
		sim.Schedule(1, func() { got = append(got, i) })
	}
	sim.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("simultaneous events reordered: %v", got)
		}
	}
}

func TestSimNestedScheduling(t *testing.T) {
	var sim Sim
	hits := 0
	sim.Schedule(1, func() {
		hits++
		sim.Schedule(sim.Now()+1, func() { hits++ })
	})
	if end := sim.Run(); end != 2 || hits != 2 {
		t.Errorf("end=%v hits=%d", end, hits)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	var sim Sim
	sim.Schedule(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("past scheduling did not panic")
			}
		}()
		sim.Schedule(1, func() {})
	})
	sim.Run()
}

func TestResourceFIFO(t *testing.T) {
	r := Resource{Rate: 100} // 100 MBps
	// First transfer: 50MB at t=0 → done at 0.5.
	if done := r.Acquire(0, 50); done != 0.5 {
		t.Errorf("first done = %v", done)
	}
	// Second arrives at 0.2, must queue until 0.5 → done at 1.0.
	if done := r.Acquire(0.2, 50); done != 1.0 {
		t.Errorf("queued done = %v", done)
	}
	// Third arrives after idle gap: starts immediately.
	if done := r.Acquire(2.0, 100); done != 3.0 {
		t.Errorf("idle-start done = %v", done)
	}
	if r.Served() != 3 {
		t.Errorf("served = %d", r.Served())
	}
	if math.Abs(float64(r.BusyTime())-2.0) > 1e-12 {
		t.Errorf("busy time = %v", r.BusyTime())
	}
}

func TestResourceZeroRate(t *testing.T) {
	r := Resource{Rate: 0}
	if done := r.Acquire(0, 10); !math.IsInf(float64(done), 1) {
		t.Errorf("zero-rate done = %v", done)
	}
	_ = units.Seconds(0)
}

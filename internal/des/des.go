// Package des is a discrete-event simulator for the data transfers an
// IDDE strategy implies. The paper evaluates latency analytically
// (Eq. 8 assumes every transfer sees the full link bandwidth); this
// simulator executes the same transfers on an event calendar with
// FIFO link contention, so the analytic numbers can be validated and
// the strategy's behaviour under burst load studied — the kind of
// system-level check a deployable edge storage system needs.
//
// The core is a conventional event calendar (binary heap on virtual
// time); on top of it, Network models each wired inter-server link and
// each server's cloud ingress as a FIFO store-and-forward resource.
package des

import (
	"container/heap"
	"fmt"

	"idde/internal/units"
)

// Sim is an event calendar. The zero value is ready to use.
type Sim struct {
	now units.Seconds
	pq  eventHeap
	seq int
}

// Now reports the current virtual time.
func (s *Sim) Now() units.Seconds { return s.now }

// Schedule enqueues fn to run at time at. Scheduling in the past
// panics — it would silently reorder causality.
func (s *Sim) Schedule(at units.Seconds, fn func()) {
	if at < s.now {
		panic(fmt.Sprintf("des: scheduling at %v before now %v", at, s.now))
	}
	heap.Push(&s.pq, event{at: at, seq: s.seq, fn: fn})
	s.seq++
}

// Run executes events in time order until the calendar is empty,
// returning the final virtual time.
func (s *Sim) Run() units.Seconds {
	for s.pq.Len() > 0 {
		ev := heap.Pop(&s.pq).(event)
		s.now = ev.at
		ev.fn()
	}
	return s.now
}

// Steps reports how many events have been scheduled so far.
func (s *Sim) Steps() int { return s.seq }

type event struct {
	at  units.Seconds
	seq int // FIFO tie-break for simultaneous events
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// Resource is a FIFO store-and-forward server (a wired link direction
// or a cloud ingress): requests are serviced one at a time in arrival
// order at a fixed rate.
type Resource struct {
	Rate      units.Rate
	busyUntil units.Seconds
	served    int
	busyTime  units.Seconds
}

// Acquire reserves the resource for moving size bytes starting no
// earlier than at, returning the completion time.
func (r *Resource) Acquire(at units.Seconds, size units.MegaBytes) units.Seconds {
	start := at
	if r.busyUntil > start {
		start = r.busyUntil
	}
	d := units.TransferTime(size, r.Rate)
	r.busyUntil = start + d
	r.served++
	r.busyTime += d
	return r.busyUntil
}

// Served reports the number of transfers processed.
func (r *Resource) Served() int { return r.served }

// BusyTime reports the cumulative service time.
func (r *Resource) BusyTime() units.Seconds { return r.busyTime }

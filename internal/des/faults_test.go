package des

import (
	"math"
	"testing"

	"idde/internal/core"
	"idde/internal/rng"
	"idde/internal/units"
)

func TestFaultyZeroConfigMatchesReliable(t *testing.T) {
	in := genInstance(t, 12, 70, 4, 11)
	st := core.Solve(in, core.DefaultOptions()).Strategy
	rel := SimulateStrategy(in, st, units.Seconds(10), rng.New(3))
	fau := SimulateStrategyFaulty(in, st, units.Seconds(10), Faults{}, rng.New(3))
	if len(rel.PerRequest) != len(fau.PerRequest) {
		t.Fatalf("request counts differ: %d vs %d", len(rel.PerRequest), len(fau.PerRequest))
	}
	for i := range rel.PerRequest {
		if math.Abs(float64(rel.PerRequest[i]-fau.PerRequest[i])) > 1e-12 {
			t.Fatalf("request %d: reliable %v != zero-fault %v", i, rel.PerRequest[i], fau.PerRequest[i])
		}
	}
	if fau.Retries != 0 || fau.Failovers != 0 || fau.Stalls != 0 || fau.CloudFallbacks != 0 {
		t.Errorf("zero-fault run reported faults: %+v", fau)
	}
}

// The acceptance-criterion test: at 20% per-hop link loss the
// simulation terminates, panics nowhere, degrades latency gracefully
// (never below the reliable run, inflated but finite) and accounts for
// its retries.
func TestTwentyPercentLossDegradesGracefully(t *testing.T) {
	in := genInstance(t, 12, 70, 4, 11)
	st := core.Solve(in, core.DefaultOptions()).Strategy
	rel := SimulateStrategy(in, st, units.Seconds(5), rng.New(4))
	f := Faults{LossProb: 0.2}
	fau := SimulateStrategyFaulty(in, st, units.Seconds(5), f, rng.New(4))

	if fau.Retries == 0 {
		t.Error("20% loss produced zero retries")
	}
	if float64(fau.Avg) < float64(rel.Avg)-1e-9 {
		t.Errorf("lossy avg %v below reliable avg %v", fau.Avg, rel.Avg)
	}
	for i, l := range fau.PerRequest {
		if math.IsInf(float64(l), 0) || math.IsNaN(float64(l)) || l < 0 {
			t.Fatalf("request %d has degenerate latency %v", i, l)
		}
	}
	// Every request completed: the makespan is finite and the event
	// count is bounded.
	if math.IsInf(float64(fau.Makespan()), 0) {
		t.Error("lossy run never completed")
	}
}

func TestFaultyDeterministicUnderSeed(t *testing.T) {
	in := genInstance(t, 10, 60, 3, 5)
	st := core.Solve(in, core.DefaultOptions()).Strategy
	f := Faults{LossProb: 0.3, StallProb: 0.1, StallTime: units.Seconds(0.01)}
	a := SimulateStrategyFaulty(in, st, units.Seconds(2), f, rng.New(7))
	b := SimulateStrategyFaulty(in, st, units.Seconds(2), f, rng.New(7))
	if a.Retries != b.Retries || a.Failovers != b.Failovers || a.Stalls != b.Stalls ||
		a.CloudRequests != b.CloudRequests || a.CloudFallbacks != b.CloudFallbacks {
		t.Fatalf("counters differ under same seed: %+v vs %+v", a, b)
	}
	for i := range a.PerRequest {
		if a.PerRequest[i] != b.PerRequest[i] {
			t.Fatalf("request %d latency differs under same seed", i)
		}
	}
	c := SimulateStrategyFaulty(in, st, units.Seconds(2), f, rng.New(8))
	same := true
	for i := range a.PerRequest {
		if a.PerRequest[i] != c.PerRequest[i] {
			same = false
			break
		}
	}
	if same && a.Retries == c.Retries {
		t.Error("different seeds produced identical fault traces")
	}
}

// Near-certain loss exhausts every edge source; the cloud fallback must
// absorb the traffic and every request must still complete.
func TestRetryExhaustionFailsOverToCloud(t *testing.T) {
	in := genInstance(t, 10, 60, 3, 9)
	st := core.Solve(in, core.DefaultOptions()).Strategy
	f := Faults{LossProb: 0.999999, MaxRetries: 1, Backoff: units.Seconds(0.001)}
	fau := SimulateStrategyFaulty(in, st, units.Seconds(5), f, rng.New(2))
	if fau.Failovers == 0 {
		t.Error("near-certain loss produced no failovers")
	}
	if fau.CloudFallbacks == 0 {
		t.Error("edge-origin requests never fell back to the cloud")
	}
	for i, l := range fau.PerRequest {
		if math.IsInf(float64(l), 0) || math.IsNaN(float64(l)) {
			t.Fatalf("request %d degenerate latency under total loss", i)
		}
	}
	// More loss means strictly more measured latency than the 20% run.
	mild := SimulateStrategyFaulty(in, st, units.Seconds(5), Faults{LossProb: 0.2}, rng.New(2))
	if float64(fau.Avg) < float64(mild.Avg) {
		t.Errorf("total-loss avg %v below 20%%-loss avg %v", fau.Avg, mild.Avg)
	}
}

func TestStallsInflateLatency(t *testing.T) {
	in := genInstance(t, 10, 60, 3, 13)
	st := core.Solve(in, core.DefaultOptions()).Strategy
	base := SimulateStrategyFaulty(in, st, units.Seconds(5), Faults{}, rng.New(6))
	stalled := SimulateStrategyFaulty(in, st, units.Seconds(5),
		Faults{StallProb: 0.5, StallTime: units.Seconds(0.05)}, rng.New(6))
	if stalled.Stalls == 0 {
		t.Fatal("50% stall probability produced no stalls")
	}
	if float64(stalled.Avg) <= float64(base.Avg) {
		t.Errorf("stalls did not inflate latency: %v vs %v", stalled.Avg, base.Avg)
	}
}

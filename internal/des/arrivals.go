package des

import (
	"fmt"
	"math"
	"sort"

	"idde/internal/model"
	"idde/internal/rng"
	"idde/internal/units"
)

// ArrivalModel generates request arrival times for a simulation run —
// the temporal dimension the analytic Eq. 9 abstracts away. Uniform is
// the spread used by SimulateStrategy; Poisson and Diurnal model open
// workloads and daily load swings.
type ArrivalModel interface {
	// Times draws n arrival offsets (seconds ≥ 0), unsorted.
	Times(n int, s *rng.Stream) []units.Seconds
	// Name labels the model in reports.
	Name() string
}

// Uniform spreads arrivals evenly over a window; Window 0 degenerates
// to a synchronized burst.
type Uniform struct {
	Window units.Seconds
}

func (u Uniform) Name() string { return fmt.Sprintf("uniform(%v)", u.Window) }

func (u Uniform) Times(n int, s *rng.Stream) []units.Seconds {
	out := make([]units.Seconds, n)
	if u.Window <= 0 {
		return out
	}
	for i := range out {
		out[i] = units.Seconds(s.Uniform(0, float64(u.Window)))
	}
	return out
}

// Poisson draws arrivals from a homogeneous Poisson process with the
// given mean rate (requests per second); the window is implied by n/λ.
type Poisson struct {
	RatePerSec float64
}

func (p Poisson) Name() string { return fmt.Sprintf("poisson(%.3g/s)", p.RatePerSec) }

func (p Poisson) Times(n int, s *rng.Stream) []units.Seconds {
	out := make([]units.Seconds, n)
	if p.RatePerSec <= 0 {
		return out
	}
	t := 0.0
	for i := range out {
		t += s.Exp(1 / p.RatePerSec)
		out[i] = units.Seconds(t)
	}
	// Arrival order should not correlate with request index.
	s.Shuffle(n, func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// Diurnal modulates a Poisson process with a sinusoidal daily profile:
// rate(t) = base·(1 + Amplitude·sin(2πt/day − phase)), thinned from the
// peak rate. Window is the covered span.
type Diurnal struct {
	BasePerSec float64
	Amplitude  float64 // in [0,1)
	Window     units.Seconds
}

func (d Diurnal) Name() string {
	return fmt.Sprintf("diurnal(%.3g/s ±%.0f%%)", d.BasePerSec, d.Amplitude*100)
}

const daySeconds = 24 * 3600.0

// Times uses thinning: candidates from the peak-rate process are kept
// with probability rate(t)/peak.
func (d Diurnal) Times(n int, s *rng.Stream) []units.Seconds {
	out := make([]units.Seconds, 0, n)
	if d.BasePerSec <= 0 || d.Window <= 0 {
		return make([]units.Seconds, n)
	}
	amp := d.Amplitude
	if amp < 0 {
		amp = 0
	}
	if amp >= 1 {
		amp = 0.999
	}
	peak := d.BasePerSec * (1 + amp)
	t := 0.0
	for len(out) < n {
		t += s.Exp(1 / peak)
		if t > float64(d.Window) {
			t = math.Mod(t, float64(d.Window)) // wrap: keep density profile
		}
		rate := d.BasePerSec * (1 + amp*math.Sin(2*math.Pi*t/daySeconds))
		if s.Float64() < rate/peak {
			out = append(out, units.Seconds(t))
		}
	}
	s.Shuffle(n, func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// SimulateWithArrivals runs SimulateStrategy's transfer execution with
// arrival offsets drawn from the model instead of a uniform window.
// See SimulateStrategy for the delivery semantics.
func SimulateWithArrivals(in *model.Instance, st model.Strategy, am ArrivalModel, s *rng.Stream) *Report {
	arr := am.Times(countRequests(in), s.Split("arrivals"))
	return simulate(in, st, arr, s.Split("order"), nil, nil)
}

// sortedCopy returns the arrival times ascending (test helper exported
// for the des tests).
func sortedCopy(ts []units.Seconds) []units.Seconds {
	out := append([]units.Seconds(nil), ts...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

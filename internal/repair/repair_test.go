package repair

import (
	"math"
	"testing"

	"idde/internal/core"
	"idde/internal/model"
	"idde/internal/radio"
	"idde/internal/rng"
	"idde/internal/topology"
	"idde/internal/workload"
)

func genInstance(t *testing.T, n, m, k int, seed uint64) *model.Instance {
	t.Helper()
	s := rng.New(seed)
	top, err := topology.Generate(topology.DefaultGen(n, m, 1.0), s.Split("top"))
	if err != nil {
		t.Fatalf("topology: %v", err)
	}
	wl, err := workload.Generate(workload.DefaultGen(k), n, m, s.Split("wl"))
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	in, err := model.New(top, wl, radio.Default())
	if err != nil {
		t.Fatalf("model: %v", err)
	}
	return in
}

// busiestServer finds the server with the most allocated users.
func busiestServer(in *model.Instance, st model.Strategy) int {
	counts := make([]int, in.N())
	for _, a := range st.Alloc {
		if a.Allocated() {
			counts[a.Server]++
		}
	}
	best := 0
	for i, c := range counts {
		if c > counts[best] {
			best = i
		}
	}
	return best
}

func TestFailServerDegradesInstance(t *testing.T) {
	in := genInstance(t, 12, 80, 4, 1)
	deg, err := FailServer(in, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !deg.Top.Servers[3].Failed {
		t.Error("server not marked failed")
	}
	if deg.Wl.Capacity[3] != 0 {
		t.Error("failed server kept capacity")
	}
	for j := 0; j < deg.M(); j++ {
		for _, i := range deg.Top.Coverage[j] {
			if i == 3 {
				t.Fatalf("failed server still covers user %d", j)
			}
		}
	}
	if deg.Top.Net.Degree(3) != 0 {
		t.Error("failed server kept wired links")
	}
	// Original instance untouched.
	if in.Top.Servers[3].Failed || in.Wl.Capacity[3] == 0 {
		t.Error("FailServer mutated the healthy instance")
	}
}

func TestFailServerValidation(t *testing.T) {
	in := genInstance(t, 10, 40, 3, 2)
	if _, err := FailServer(in, -1); err == nil {
		t.Error("negative id accepted")
	}
	if _, err := FailServer(in, 99); err == nil {
		t.Error("out-of-range id accepted")
	}
	deg, err := FailServer(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FailServer(deg, 0); err == nil {
		t.Error("double failure accepted")
	}
}

func TestRepairProducesValidEffectiveStrategy(t *testing.T) {
	in := genInstance(t, 15, 120, 4, 3)
	st := core.Solve(in, core.DefaultOptions()).Strategy
	f := busiestServer(in, st)
	deg, err := FailServer(in, f)
	if err != nil {
		t.Fatal(err)
	}
	repaired, rep, err := Repair(in, deg, st, f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DisplacedUsers == 0 {
		t.Error("busiest server had no users?")
	}
	// No user remains on the failed server.
	for j, a := range repaired.Alloc {
		if a.Allocated() && a.Server == f {
			t.Fatalf("user %d still on failed server", j)
		}
	}
	// Displaced but coverable users were re-homed.
	rehomed := 0
	for _, a := range repaired.Alloc {
		if a.Allocated() {
			rehomed++
		}
	}
	if rehomed+rep.StrandedUsers < st.Alloc.AllocatedCount() {
		t.Errorf("users went missing: %d rehomed + %d stranded < %d before",
			rehomed, rep.StrandedUsers, st.Alloc.AllocatedCount())
	}
	// The degraded system is worse than healthy, but far better than
	// unrepaired: compare with the naive strategy (displaced users
	// dropped, lost replicas not replaced).
	if float64(rep.RateAfter) > float64(rep.RateBefore)*1.2 {
		t.Errorf("rate improved after failure?! %v -> %v", rep.RateBefore, rep.RateAfter)
	}
	if rep.LatencyAfter < 0 {
		t.Error("negative latency")
	}
}

func TestRepairBeatsNaiveDegradation(t *testing.T) {
	in := genInstance(t, 15, 120, 4, 5)
	st := core.Solve(in, core.DefaultOptions()).Strategy
	f := busiestServer(in, st)
	deg, err := FailServer(in, f)
	if err != nil {
		t.Fatal(err)
	}
	repaired, rep, err := Repair(in, deg, st, f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Naive: drop the failed server's users and replicas, change
	// nothing else.
	naiveAlloc := st.Alloc.Clone()
	for j, a := range naiveAlloc {
		if a.Allocated() && a.Server == f {
			naiveAlloc[j] = model.Unallocated
		}
	}
	naiveDeliv := model.NewDelivery(deg.N(), deg.K())
	for i := 0; i < deg.N(); i++ {
		if i == f {
			continue
		}
		for k := 0; k < deg.K(); k++ {
			if st.Delivery.Placed(i, k) {
				naiveDeliv.Place(i, k, deg.Wl.Items[k].Size)
			}
		}
	}
	naiveRate, naiveLat := deg.Evaluate(model.Strategy{Alloc: naiveAlloc, Delivery: naiveDeliv, Mode: st.Mode})
	repRate, repLat := deg.Evaluate(repaired)
	if float64(repRate) < float64(naiveRate)-1e-9 {
		t.Errorf("repair rate %v below naive %v", repRate, naiveRate)
	}
	if float64(repLat) > float64(naiveLat)+1e-9 {
		t.Errorf("repair latency %v above naive %v", repLat, naiveLat)
	}
	_ = rep
	// Repair must strictly help on at least one axis (it re-homes
	// users who otherwise idle at zero rate).
	if math.Abs(float64(repRate-naiveRate)) < 1e-12 && math.Abs(float64(repLat-naiveLat)) < 1e-12 {
		t.Error("repair achieved nothing over naive degradation")
	}
}

func TestRepairOnPartitionedNetwork(t *testing.T) {
	// Density 1.0 networks often have cut vertices; failing one must
	// still work (cloud fallback for unreachable pairs). Find a cut
	// vertex if any exists; otherwise any server exercises the path.
	in := genInstance(t, 12, 60, 3, 7)
	st := core.Solve(in, core.DefaultOptions()).Strategy
	for f := 0; f < in.N(); f++ {
		deg, err := FailServer(in, f)
		if err != nil {
			t.Fatalf("fail %d: %v", f, err)
		}
		repaired, _, err := Repair(in, deg, st, f, Options{})
		if err != nil {
			t.Fatalf("repair %d: %v", f, err)
		}
		if err := deg.Check(repaired); err != nil {
			t.Fatalf("repair %d invalid: %v", f, err)
		}
	}
}

func TestRepairDeterministic(t *testing.T) {
	in := genInstance(t, 12, 80, 3, 9)
	st := core.Solve(in, core.DefaultOptions()).Strategy
	deg, err := FailServer(in, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, a, err := Repair(in, deg, st, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := Repair(in, deg, st, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Error("repair not deterministic")
	}
}

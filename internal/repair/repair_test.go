package repair

import (
	"math"
	"testing"

	"idde/internal/core"
	"idde/internal/graph"
	"idde/internal/model"
	"idde/internal/radio"
	"idde/internal/rng"
	"idde/internal/topology"
	"idde/internal/units"
	"idde/internal/workload"
)

func genInstance(t *testing.T, n, m, k int, seed uint64) *model.Instance {
	t.Helper()
	s := rng.New(seed)
	top, err := topology.Generate(topology.DefaultGen(n, m, 1.0), s.Split("top"))
	if err != nil {
		t.Fatalf("topology: %v", err)
	}
	wl, err := workload.Generate(workload.DefaultGen(k), n, m, s.Split("wl"))
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	in, err := model.New(top, wl, radio.Default())
	if err != nil {
		t.Fatalf("model: %v", err)
	}
	return in
}

// busiestServer finds the server with the most allocated users.
func busiestServer(in *model.Instance, st model.Strategy) int {
	counts := make([]int, in.N())
	for _, a := range st.Alloc {
		if a.Allocated() {
			counts[a.Server]++
		}
	}
	best := 0
	for i, c := range counts {
		if c > counts[best] {
			best = i
		}
	}
	return best
}

func TestFailServerDegradesInstance(t *testing.T) {
	in := genInstance(t, 12, 80, 4, 1)
	deg, err := FailServer(in, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !deg.Top.Servers[3].Failed {
		t.Error("server not marked failed")
	}
	if deg.Wl.Capacity[3] != 0 {
		t.Error("failed server kept capacity")
	}
	for j := 0; j < deg.M(); j++ {
		for _, i := range deg.Top.Coverage[j] {
			if i == 3 {
				t.Fatalf("failed server still covers user %d", j)
			}
		}
	}
	if deg.Top.Net.Degree(3) != 0 {
		t.Error("failed server kept wired links")
	}
	// Original instance untouched.
	if in.Top.Servers[3].Failed || in.Wl.Capacity[3] == 0 {
		t.Error("FailServer mutated the healthy instance")
	}
}

func TestFailServerValidation(t *testing.T) {
	in := genInstance(t, 10, 40, 3, 2)
	if _, err := FailServer(in, -1); err == nil {
		t.Error("negative id accepted")
	}
	if _, err := FailServer(in, 99); err == nil {
		t.Error("out-of-range id accepted")
	}
	deg, err := FailServer(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FailServer(deg, 0); err == nil {
		t.Error("double failure accepted")
	}
}

func TestRepairProducesValidEffectiveStrategy(t *testing.T) {
	in := genInstance(t, 15, 120, 4, 3)
	st := core.Solve(in, core.DefaultOptions()).Strategy
	f := busiestServer(in, st)
	deg, err := FailServer(in, f)
	if err != nil {
		t.Fatal(err)
	}
	repaired, rep, err := Repair(in, deg, st, f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DisplacedUsers == 0 {
		t.Error("busiest server had no users?")
	}
	// No user remains on the failed server.
	for j, a := range repaired.Alloc {
		if a.Allocated() && a.Server == f {
			t.Fatalf("user %d still on failed server", j)
		}
	}
	// Displaced but coverable users were re-homed.
	rehomed := 0
	for _, a := range repaired.Alloc {
		if a.Allocated() {
			rehomed++
		}
	}
	if rehomed+rep.StrandedUsers < st.Alloc.AllocatedCount() {
		t.Errorf("users went missing: %d rehomed + %d stranded < %d before",
			rehomed, rep.StrandedUsers, st.Alloc.AllocatedCount())
	}
	// The degraded system is worse than healthy, but far better than
	// unrepaired: compare with the naive strategy (displaced users
	// dropped, lost replicas not replaced).
	if float64(rep.RateAfter) > float64(rep.RateBefore)*1.2 {
		t.Errorf("rate improved after failure?! %v -> %v", rep.RateBefore, rep.RateAfter)
	}
	if rep.LatencyAfter < 0 {
		t.Error("negative latency")
	}
}

func TestRepairBeatsNaiveDegradation(t *testing.T) {
	in := genInstance(t, 15, 120, 4, 5)
	st := core.Solve(in, core.DefaultOptions()).Strategy
	f := busiestServer(in, st)
	deg, err := FailServer(in, f)
	if err != nil {
		t.Fatal(err)
	}
	repaired, rep, err := Repair(in, deg, st, f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Naive: drop the failed server's users and replicas, change
	// nothing else.
	naiveAlloc := st.Alloc.Clone()
	for j, a := range naiveAlloc {
		if a.Allocated() && a.Server == f {
			naiveAlloc[j] = model.Unallocated
		}
	}
	naiveDeliv := model.NewDelivery(deg.N(), deg.K())
	for i := 0; i < deg.N(); i++ {
		if i == f {
			continue
		}
		for k := 0; k < deg.K(); k++ {
			if st.Delivery.Placed(i, k) {
				naiveDeliv.Place(i, k, deg.Wl.Items[k].Size)
			}
		}
	}
	naiveRate, naiveLat := deg.Evaluate(model.Strategy{Alloc: naiveAlloc, Delivery: naiveDeliv, Mode: st.Mode})
	repRate, repLat := deg.Evaluate(repaired)
	if float64(repRate) < float64(naiveRate)-1e-9 {
		t.Errorf("repair rate %v below naive %v", repRate, naiveRate)
	}
	if float64(repLat) > float64(naiveLat)+1e-9 {
		t.Errorf("repair latency %v above naive %v", repLat, naiveLat)
	}
	_ = rep
	// Repair must strictly help on at least one axis (it re-homes
	// users who otherwise idle at zero rate).
	if math.Abs(float64(repRate-naiveRate)) < 1e-12 && math.Abs(float64(repLat-naiveLat)) < 1e-12 {
		t.Error("repair achieved nothing over naive degradation")
	}
}

func TestRepairOnPartitionedNetwork(t *testing.T) {
	// Density 1.0 networks often have cut vertices; failing one must
	// still work (cloud fallback for unreachable pairs). Find a cut
	// vertex if any exists; otherwise any server exercises the path.
	in := genInstance(t, 12, 60, 3, 7)
	st := core.Solve(in, core.DefaultOptions()).Strategy
	for f := 0; f < in.N(); f++ {
		deg, err := FailServer(in, f)
		if err != nil {
			t.Fatalf("fail %d: %v", f, err)
		}
		repaired, _, err := Repair(in, deg, st, f, Options{})
		if err != nil {
			t.Fatalf("repair %d: %v", f, err)
		}
		if err := deg.Check(repaired); err != nil {
			t.Fatalf("repair %d invalid: %v", f, err)
		}
	}
}

// Failing every server, one at a time down to the last survivor and
// then the last survivor itself, must degrade gracefully to all-cloud
// service instead of erroring.
func TestFailLastSurvivingServer(t *testing.T) {
	in := genInstance(t, 4, 30, 3, 11)
	st := core.Solve(in, core.DefaultOptions()).Strategy
	cur, curSt := in, st
	for f := 0; f < in.N(); f++ {
		deg, err := FailServer(cur, f)
		if err != nil {
			t.Fatalf("fail %d: %v", f, err)
		}
		repaired, _, err := RepairDegraded(cur, deg, curSt, Options{})
		if err != nil {
			t.Fatalf("repair after failing %d: %v", f, err)
		}
		if err := deg.Check(repaired); err != nil {
			t.Fatalf("repaired strategy invalid after failing %d: %v", f, err)
		}
		cur, curSt = deg, repaired
	}
	// All servers down: everyone is unallocated and every request is
	// served from the cloud at exactly the cloud latency.
	for j, a := range curSt.Alloc {
		if a.Allocated() {
			t.Fatalf("user %d still allocated with every server down", j)
		}
	}
	rate, lat := cur.Evaluate(curSt)
	if rate != 0 {
		t.Errorf("all-failed system has rate %v", rate)
	}
	var cloudTotal float64
	n := 0
	for _, items := range cur.Wl.Requests {
		for _, k := range items {
			cloudTotal += float64(cur.CloudLatency(k))
			n++
		}
	}
	wantAvg := cloudTotal / float64(n)
	if diff := float64(lat) - wantAvg; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("all-failed latency %v != all-cloud %v", float64(lat), wantAvg)
	}
}

// Failing a server whose removal partitions the wired graph must not
// error: unreachable pairs fall back to the cloud per Eq. 8. A line
// topology makes every interior server a cut vertex, so this test
// guarantees the partition path is exercised (the random-topology loop
// in TestRepairOnPartitionedNetwork only does so probabilistically).
func TestFailCutVertexPartitionsGracefully(t *testing.T) {
	in := genInstance(t, 8, 50, 3, 13)
	// Rebuild the wired net as a line 0-1-2-...-7; server 3 is a cut
	// vertex whose removal splits {0,1,2} from {4,...,7}.
	top := &topology.Topology{
		Region:    in.Top.Region,
		Servers:   append([]topology.Server(nil), in.Top.Servers...),
		Users:     append([]topology.User(nil), in.Top.Users...),
		CloudRate: in.Top.CloudRate,
	}
	top.Net = graph.New(in.N())
	for i := 0; i+1 < in.N(); i++ {
		top.Net.AddEdge(i, i+1, units.PerMB(3000))
	}
	if err := top.Finalize(); err != nil {
		t.Fatal(err)
	}
	lin, err := model.New(top, in.Wl, in.Radio)
	if err != nil {
		t.Fatal(err)
	}
	st := core.Solve(lin, core.DefaultOptions()).Strategy
	deg, err := FailServer(lin, 3)
	if err != nil {
		t.Fatalf("failing a cut vertex errored: %v", err)
	}
	if !math.IsInf(float64(deg.Top.PathCost[0][7]), 1) {
		t.Error("expected servers 0 and 7 to be disconnected")
	}
	repaired, _, err := Repair(lin, deg, st, 3, Options{})
	if err != nil {
		t.Fatalf("repair across a partition errored: %v", err)
	}
	if err := deg.Check(repaired); err != nil {
		t.Fatalf("repaired strategy invalid: %v", err)
	}
	// Latency stays finite: cross-partition requests fall back to the
	// cloud instead of riding an infinite path cost.
	_, lat := deg.Evaluate(repaired)
	if math.IsInf(float64(lat), 0) {
		t.Error("partitioned system evaluated to infinite latency")
	}
}

func TestDegradeCompound(t *testing.T) {
	in := genInstance(t, 10, 60, 3, 15)
	edges := in.Top.Net.Edges()
	deg, err := Degrade(in, Degradation{
		FailedServers: []int{1, 2},
		CutLinks:      [][2]int{{edges[0].U, edges[0].V}},
		CloudFactor:   0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !deg.Top.Servers[1].Failed || !deg.Top.Servers[2].Failed {
		t.Error("servers not failed")
	}
	if got, want := float64(deg.Top.CloudRate), float64(in.Top.CloudRate)*0.5; got != want {
		t.Errorf("brownout cloud rate %v, want %v", got, want)
	}
	if deg.Top.Net.HasEdge(edges[0].U, edges[0].V) && !deg.Top.Servers[edges[0].U].Failed && !deg.Top.Servers[edges[0].V].Failed {
		t.Error("cut link survived")
	}
	// Degrading again with the same set is idempotent-tolerant.
	if _, err := Degrade(deg, Degradation{FailedServers: []int{1}}); err != nil {
		t.Errorf("re-degrading an already-failed server errored: %v", err)
	}
	// Validation still bites.
	if _, err := Degrade(in, Degradation{FailedServers: []int{99}}); err == nil {
		t.Error("unknown server accepted")
	}
	if _, err := Degrade(in, Degradation{CutLinks: [][2]int{{0, 0}}}); err == nil {
		t.Error("self-loop cut accepted")
	}
	if _, err := Degrade(in, Degradation{CloudFactor: 1.5}); err == nil {
		t.Error("cloud factor > 1 accepted")
	}
}

func TestFailServersValidation(t *testing.T) {
	in := genInstance(t, 6, 30, 3, 17)
	if _, err := FailServers(in, []int{0, 0}); err == nil {
		t.Error("duplicate id accepted")
	}
	if _, err := FailServers(in, []int{0, 9}); err == nil {
		t.Error("out-of-range id accepted")
	}
	deg, err := FailServers(in, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FailServers(deg, []int{1}); err == nil {
		t.Error("already-failed id accepted")
	}
}

// Property: repair is deterministic under a fixed seed and idempotent —
// repairing an already-repaired strategy with no new failure makes zero
// moves and places zero replicas, leaving the strategy unchanged.
func TestRepairDeterministicAndIdempotent(t *testing.T) {
	for seed := uint64(21); seed < 26; seed++ {
		in := genInstance(t, 12, 80, 4, seed)
		st := core.Solve(in, core.DefaultOptions()).Strategy
		f := busiestServer(in, st)
		deg, err := FailServer(in, f)
		if err != nil {
			t.Fatal(err)
		}
		r1, rep1, err := RepairDegraded(in, deg, st, Options{})
		if err != nil {
			t.Fatal(err)
		}
		r2, rep2, err := RepairDegraded(in, deg, st, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if *rep1 != *rep2 {
			t.Fatalf("seed %d: repair reports differ: %+v vs %+v", seed, rep1, rep2)
		}
		for j := range r1.Alloc {
			if r1.Alloc[j] != r2.Alloc[j] {
				t.Fatalf("seed %d: allocations differ at user %d", seed, j)
			}
		}
		// Idempotence: re-repair with no new failure.
		r3, rep3, err := RepairDegraded(deg, deg, r1, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if rep3.Moves != 0 || rep3.ReplacedReplicas != 0 || rep3.LostReplicas != 0 || rep3.DisplacedUsers != 0 {
			t.Fatalf("seed %d: re-repair did work: %+v", seed, rep3)
		}
		for j := range r1.Alloc {
			if r1.Alloc[j] != r3.Alloc[j] {
				t.Fatalf("seed %d: idempotent repair moved user %d", seed, j)
			}
		}
		for i := 0; i < deg.N(); i++ {
			for k := 0; k < deg.K(); k++ {
				if r1.Delivery.Placed(i, k) != r3.Delivery.Placed(i, k) {
					t.Fatalf("seed %d: idempotent repair changed replica (%d,%d)", seed, i, k)
				}
			}
		}
	}
}

func TestRepairDeterministic(t *testing.T) {
	in := genInstance(t, 12, 80, 3, 9)
	st := core.Solve(in, core.DefaultOptions()).Strategy
	deg, err := FailServer(in, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, a, err := Repair(in, deg, st, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := Repair(in, deg, st, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Error("repair not deterministic")
	}
}

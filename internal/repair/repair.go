// Package repair implements failure injection and strategy repair for
// edge storage systems: when an edge server dies, its users lose their
// wireless attachment, its replicas vanish, and the wired paths through
// it disappear. Repair patches an existing strategy instead of
// re-formulating from scratch — displaced users best-respond into the
// surviving spectrum (with a bounded re-equilibration wave, as in the
// online extension), and lost replicas are re-placed by the same
// Eq. 17 greedy rule within the surviving reservations.
//
// The paper's system model treats the edge storage system as the
// answer to the cloud's "single-point failures" (§1); this package is
// what makes that robustness claim operational.
package repair

import (
	"fmt"

	"idde/internal/graph"
	"idde/internal/model"
	"idde/internal/placement"
	"idde/internal/topology"
	"idde/internal/units"
)

// Report accounts for a failure and its repair.
type Report struct {
	FailedServer int
	// DisplacedUsers were attached to the failed server.
	DisplacedUsers int
	// StrandedUsers ended up outside all surviving coverage (they fall
	// back to the cloud entirely).
	StrandedUsers int
	// LostReplicas were stored on the failed server.
	LostReplicas int
	// ReplacedReplicas were re-placed during repair (not necessarily
	// the same items on the same servers).
	ReplacedReplicas int
	// Moves counts allocation changes (displaced users + ripples).
	Moves int
	// Before/After metrics under the healthy and repaired systems.
	RateBefore, RateAfter       units.Rate
	LatencyBefore, LatencyAfter units.Seconds
}

// FailServer builds the degraded instance: server f covers nobody,
// stores nothing and forwards nothing. The wired network may partition;
// unreachable pairs fall back to the cloud per Eq. 8.
func FailServer(in *model.Instance, f int) (*model.Instance, error) {
	if f < 0 || f >= in.N() {
		return nil, fmt.Errorf("repair: unknown server %d", f)
	}
	if in.Top.Servers[f].Failed {
		return nil, fmt.Errorf("repair: server %d already failed", f)
	}
	top := &topology.Topology{
		Region:         in.Top.Region,
		Servers:        append([]topology.Server(nil), in.Top.Servers...),
		Users:          append([]topology.User(nil), in.Top.Users...),
		CloudRate:      in.Top.CloudRate,
		AllowPartition: true,
	}
	top.Servers[f].Failed = true
	top.Net = graph.New(in.N())
	for _, e := range in.Top.Net.Edges() {
		if e.U == f || e.V == f {
			continue
		}
		top.Net.AddEdge(e.U, e.V, e.Cost)
	}
	if err := top.Finalize(); err != nil {
		return nil, err
	}
	// The failed server's reservation is gone.
	wl := *in.Wl
	wl.Capacity = append([]units.MegaBytes(nil), in.Wl.Capacity...)
	wl.Capacity[f] = 0
	return model.New(top, &wl, in.Radio)
}

// Options bounds the repair work.
type Options struct {
	// Waves of neighbourhood re-equilibration after displacement
	// (default 2).
	Waves int
}

// Repair patches a strategy formulated on the healthy instance so it is
// valid and effective on the degraded one. It returns the repaired
// strategy and the accounting report.
func Repair(healthy, degraded *model.Instance, st model.Strategy, f int, opt Options) (model.Strategy, *Report, error) {
	if opt.Waves <= 0 {
		opt.Waves = 2
	}
	if degraded.N() != healthy.N() || degraded.M() != healthy.M() || degraded.K() != healthy.K() {
		return model.Strategy{}, nil, fmt.Errorf("repair: instance dimensions differ")
	}
	rep := &Report{FailedServer: f}
	rep.RateBefore, rep.LatencyBefore = healthy.Evaluate(st)

	// Phase A: displace and re-equilibrate users.
	alloc := st.Alloc.Clone()
	var displaced []int
	for j, a := range alloc {
		if a.Allocated() && a.Server == f {
			displaced = append(displaced, j)
			alloc[j] = model.Unallocated
		}
	}
	rep.DisplacedUsers = len(displaced)
	ledger := model.NewLedger(degraded, alloc)
	for _, j := range displaced {
		if bestRespond(degraded, ledger, j) {
			rep.Moves++
		} else if len(degraded.Top.Coverage[j]) == 0 {
			rep.StrandedUsers++
		}
	}
	// Ripple waves: neighbours of the displaced may improve.
	for wave := 0; wave < opt.Waves; wave++ {
		moved := false
		for _, j := range neighbourhood(degraded, displaced) {
			if bestRespond(degraded, ledger, j) {
				rep.Moves++
				moved = true
			}
		}
		if !moved {
			break
		}
	}
	newAlloc := ledger.Alloc()

	// Phase B: rebuild the delivery profile — survivors keep their
	// slots, the greedy re-places into what storage remains.
	delivery := model.NewDelivery(degraded.N(), degraded.K())
	ls := model.NewLatencyState(degraded, newAlloc)
	for i := 0; i < degraded.N(); i++ {
		for k := 0; k < degraded.K(); k++ {
			if !st.Delivery.Placed(i, k) {
				continue
			}
			if i == f {
				rep.LostReplicas++
				continue
			}
			delivery.Place(i, k, degraded.Wl.Items[k].Size)
			ls.Commit(i, k)
		}
	}
	oracle := &repairOracle{in: degraded, ls: ls, d: delivery}
	var cands []placement.Candidate
	for i := 0; i < degraded.N(); i++ {
		if i == f {
			continue
		}
		for k := 0; k < degraded.K(); k++ {
			if !delivery.Placed(i, k) {
				cands = append(cands, placement.Candidate{Server: i, Item: k})
			}
		}
	}
	pres := placement.LazyGreedy(cands, oracle)
	rep.ReplacedReplicas = len(pres.Chosen)

	repaired := model.Strategy{Alloc: newAlloc, Delivery: delivery, Mode: st.Mode}
	if err := degraded.Check(repaired); err != nil {
		return model.Strategy{}, nil, fmt.Errorf("repair: produced invalid strategy: %w", err)
	}
	rep.RateAfter, rep.LatencyAfter = degraded.Evaluate(repaired)
	return repaired, rep, nil
}

// bestRespond moves j to its Eq. 12 best response; reports movement.
func bestRespond(in *model.Instance, l *model.Ledger, j int) bool {
	cur := l.Current(j)
	curB := l.Benefit(j, cur)
	best, bestB := cur, curB
	for _, i := range in.Top.Coverage[j] {
		for x := 0; x < in.Top.Servers[i].Channels; x++ {
			a := model.Alloc{Server: i, Channel: x}
			if a == cur {
				continue
			}
			if b := l.Benefit(j, a); b > bestB {
				best, bestB = a, b
			}
		}
	}
	if best != cur && bestB > curB+1e-12 {
		l.Move(j, best)
		return true
	}
	return false
}

// neighbourhood collects users sharing coverage with any displaced user.
func neighbourhood(in *model.Instance, displaced []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, j := range displaced {
		for _, i := range in.Top.Coverage[j] {
			for _, t := range in.Top.Covered[i] {
				if !seen[t] {
					seen[t] = true
					out = append(out, t)
				}
			}
		}
	}
	return out
}

type repairOracle struct {
	in *model.Instance
	ls *model.LatencyState
	d  *model.Delivery
}

func (o *repairOracle) Gain(c placement.Candidate) float64 {
	return float64(o.ls.GainOf(c.Server, c.Item))
}

func (o *repairOracle) Cost(c placement.Candidate) float64 {
	return float64(o.in.Wl.Items[c.Item].Size)
}

func (o *repairOracle) Feasible(c placement.Candidate) bool {
	if o.d.Placed(c.Server, c.Item) {
		return false
	}
	size := o.in.Wl.Items[c.Item].Size
	return o.d.Used(c.Server)+size <= o.in.Wl.Capacity[c.Server]
}

func (o *repairOracle) Commit(c placement.Candidate) float64 {
	o.d.Place(c.Server, c.Item, o.in.Wl.Items[c.Item].Size)
	return float64(o.ls.Commit(c.Server, c.Item))
}

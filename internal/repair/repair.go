// Package repair implements failure injection and strategy repair for
// edge storage systems: when an edge server dies, its users lose their
// wireless attachment, its replicas vanish, and the wired paths through
// it disappear. Repair patches an existing strategy instead of
// re-formulating from scratch — displaced users best-respond into the
// surviving spectrum (with a bounded re-equilibration wave, as in the
// online extension), and lost replicas are re-placed by the same
// Eq. 17 greedy rule within the surviving reservations.
//
// The paper's system model treats the edge storage system as the
// answer to the cloud's "single-point failures" (§1); this package is
// what makes that robustness claim operational.
package repair

import (
	"fmt"
	"sort"

	"idde/internal/graph"
	"idde/internal/model"
	"idde/internal/placement"
	"idde/internal/topology"
	"idde/internal/units"
)

// Report accounts for a failure and its repair.
type Report struct {
	// FailedServer is the single injected failure, or -1 when the
	// repair covered a compound degradation (see FailedCount).
	FailedServer int
	// FailedCount is the number of servers down in the degraded
	// instance that were up in the reference instance.
	FailedCount int
	// DisplacedUsers were attached to the failed server.
	DisplacedUsers int
	// StrandedUsers ended up outside all surviving coverage (they fall
	// back to the cloud entirely).
	StrandedUsers int
	// LostReplicas were stored on the failed server.
	LostReplicas int
	// ReplacedReplicas were re-placed during repair (not necessarily
	// the same items on the same servers).
	ReplacedReplicas int
	// Moves counts allocation changes (displaced users + ripples).
	Moves int
	// Before/After metrics under the healthy and repaired systems.
	RateBefore, RateAfter       units.Rate
	LatencyBefore, LatencyAfter units.Seconds
}

// Degradation is a set of concurrently active faults to apply on top of
// an instance: servers down, wired links cut and a cloud-ingress
// brownout. It is the instantaneous fault state a chaos campaign holds
// between two of its event boundaries.
type Degradation struct {
	// FailedServers are down: they cover nobody, store nothing and
	// forward nothing. Ids already failed in the base instance are
	// tolerated (idempotent), so cumulative fault sets can be replayed
	// from the pristine instance every epoch.
	FailedServers []int
	// CutLinks are wired links severed without their endpoints dying
	// (a backhaul fibre cut). Missing links are tolerated.
	CutLinks [][2]int
	// CloudFactor scales the cloud-ingress rate, modelling a brownout
	// of the uplink. 0 or 1 means healthy; values in (0,1) slow the
	// cloud down.
	CloudFactor float64
}

// Degrade builds the instance obtained by applying the degradation to
// the given (healthy or already-degraded) instance. Any resulting
// partition of the wired network — including the extreme of every
// server down — degrades gracefully: unreachable pairs fall back to
// the cloud per Eq. 8, and an all-failed system serves everyone from
// the cloud.
func Degrade(in *model.Instance, d Degradation) (*model.Instance, error) {
	failed := make([]bool, in.N())
	for _, f := range d.FailedServers {
		if f < 0 || f >= in.N() {
			return nil, fmt.Errorf("repair: unknown server %d", f)
		}
		failed[f] = true
	}
	for _, l := range d.CutLinks {
		if l[0] < 0 || l[0] >= in.N() || l[1] < 0 || l[1] >= in.N() || l[0] == l[1] {
			return nil, fmt.Errorf("repair: invalid link (%d,%d)", l[0], l[1])
		}
	}
	cloudRate := in.Top.CloudRate
	if d.CloudFactor > 0 && d.CloudFactor < 1 {
		cloudRate = units.Rate(float64(cloudRate) * d.CloudFactor)
	} else if d.CloudFactor < 0 || d.CloudFactor > 1 {
		return nil, fmt.Errorf("repair: cloud factor %g outside [0,1]", d.CloudFactor)
	}
	cut := make(map[[2]int]bool, len(d.CutLinks))
	for _, l := range d.CutLinks {
		u, v := l[0], l[1]
		if u > v {
			u, v = v, u
		}
		cut[[2]int{u, v}] = true
	}
	top := &topology.Topology{
		Region:         in.Top.Region,
		Servers:        append([]topology.Server(nil), in.Top.Servers...),
		Users:          append([]topology.User(nil), in.Top.Users...),
		CloudRate:      cloudRate,
		AllowPartition: true,
	}
	for f, down := range failed {
		if down {
			top.Servers[f].Failed = true
		}
	}
	top.Net = graph.New(in.N())
	for _, e := range in.Top.Net.Edges() {
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		if failed[e.U] || failed[e.V] || cut[[2]int{u, v}] {
			continue
		}
		top.Net.AddEdge(e.U, e.V, e.Cost)
	}
	if err := top.Finalize(); err != nil {
		return nil, err
	}
	// The failed servers' reservations are gone.
	wl := *in.Wl
	wl.Capacity = append([]units.MegaBytes(nil), in.Wl.Capacity...)
	for f, down := range failed {
		if down {
			wl.Capacity[f] = 0
		}
	}
	return model.New(top, &wl, in.Radio)
}

// FailServer builds the degraded instance: server f covers nobody,
// stores nothing and forwards nothing. The wired network may partition
// — even down to the last surviving server — and unreachable pairs fall
// back to the cloud per Eq. 8. Failing an already-failed server errors,
// so callers notice double injection.
func FailServer(in *model.Instance, f int) (*model.Instance, error) {
	if f < 0 || f >= in.N() {
		return nil, fmt.Errorf("repair: unknown server %d", f)
	}
	if in.Top.Servers[f].Failed {
		return nil, fmt.Errorf("repair: server %d already failed", f)
	}
	return Degrade(in, Degradation{FailedServers: []int{f}})
}

// FailServers fails a set of servers at once (a correlated outage).
// Duplicate and already-failed ids error, as in FailServer.
func FailServers(in *model.Instance, fs []int) (*model.Instance, error) {
	seen := make(map[int]bool, len(fs))
	for _, f := range fs {
		if f < 0 || f >= in.N() {
			return nil, fmt.Errorf("repair: unknown server %d", f)
		}
		if in.Top.Servers[f].Failed {
			return nil, fmt.Errorf("repair: server %d already failed", f)
		}
		if seen[f] {
			return nil, fmt.Errorf("repair: server %d listed twice", f)
		}
		seen[f] = true
	}
	return Degrade(in, Degradation{FailedServers: fs})
}

// Options bounds the repair work.
type Options struct {
	// Waves of neighbourhood re-equilibration after displacement
	// (default 2).
	Waves int
}

// Repair patches a strategy formulated on the healthy instance so it is
// valid and effective on the degraded one, where server f died. It
// returns the repaired strategy and the accounting report.
func Repair(healthy, degraded *model.Instance, st model.Strategy, f int, opt Options) (model.Strategy, *Report, error) {
	repaired, rep, err := RepairDegraded(healthy, degraded, st, opt)
	if err != nil {
		return model.Strategy{}, nil, err
	}
	rep.FailedServer = f
	return repaired, rep, nil
}

// RepairDegraded patches a strategy that was valid on the reference
// instance so it is valid and effective on the degraded one, whatever
// the degradation — a single dead server, a correlated multi-server
// outage, cut links, or a partial recovery (servers up in degraded
// that were down when the strategy was last repaired).
//
// Users allocated to now-dead servers are displaced and best-respond
// into the surviving spectrum (with a bounded re-equilibration wave);
// unallocated users that now have coverage again are re-admitted the
// same way; replicas on dead servers are dropped and re-placed by the
// Eq. 17 greedy within the surviving reservations. The repair is
// deterministic and idempotent: with no new failure it makes zero
// moves and places zero replicas.
func RepairDegraded(ref, degraded *model.Instance, st model.Strategy, opt Options) (model.Strategy, *Report, error) {
	if opt.Waves <= 0 {
		opt.Waves = 2
	}
	if degraded.N() != ref.N() || degraded.M() != ref.M() || degraded.K() != ref.K() {
		return model.Strategy{}, nil, fmt.Errorf("repair: instance dimensions differ")
	}
	rep := &Report{FailedServer: -1}
	for i := 0; i < degraded.N(); i++ {
		if degraded.Top.Servers[i].Failed && !ref.Top.Servers[i].Failed {
			rep.FailedCount++
		}
	}
	rep.RateBefore, rep.LatencyBefore = ref.Evaluate(st)

	down := func(i int) bool { return degraded.Top.Servers[i].Failed }

	// Phase A: displace users of dead servers, re-admit users that
	// regained coverage, and re-equilibrate.
	alloc := st.Alloc.Clone()
	var displaced []int
	for j, a := range alloc {
		if a.Allocated() && (down(a.Server) || !degraded.Top.Covers(a.Server, j)) {
			displaced = append(displaced, j)
			alloc[j] = model.Unallocated
		}
	}
	rep.DisplacedUsers = len(displaced)
	var wavefront []int
	wavefront = append(wavefront, displaced...)
	for j, a := range alloc {
		if !a.Allocated() && len(degraded.Top.Coverage[j]) > 0 {
			wavefront = append(wavefront, j)
		}
	}
	sort.Ints(wavefront)
	ledger := model.NewLedger(degraded, alloc)
	for _, j := range wavefront {
		if bestRespond(degraded, ledger, j) {
			rep.Moves++
		}
	}
	for _, j := range displaced {
		if len(degraded.Top.Coverage[j]) == 0 {
			rep.StrandedUsers++
		}
	}
	// Ripple waves: neighbours of the wavefront may improve.
	for wave := 0; wave < opt.Waves; wave++ {
		moved := false
		for _, j := range neighbourhood(degraded, wavefront) {
			if bestRespond(degraded, ledger, j) {
				rep.Moves++
				moved = true
			}
		}
		if !moved {
			break
		}
	}
	newAlloc := ledger.Alloc()

	// Phase B: rebuild the delivery profile — survivors keep their
	// slots, the greedy re-places into what storage remains.
	delivery := model.NewDelivery(degraded.N(), degraded.K())
	ls := model.NewLatencyState(degraded, newAlloc)
	for i := 0; i < degraded.N(); i++ {
		for k := 0; k < degraded.K(); k++ {
			if !st.Delivery.Placed(i, k) {
				continue
			}
			if down(i) {
				rep.LostReplicas++
				continue
			}
			delivery.Place(i, k, degraded.Wl.Items[k].Size)
			ls.Commit(i, k)
		}
	}
	oracle := &repairOracle{in: degraded, ls: ls, d: delivery}
	var cands []placement.Candidate
	for i := 0; i < degraded.N(); i++ {
		if down(i) {
			continue
		}
		for k := 0; k < degraded.K(); k++ {
			if !delivery.Placed(i, k) {
				cands = append(cands, placement.Candidate{Server: i, Item: k})
			}
		}
	}
	pres := placement.LazyGreedy(cands, oracle)
	rep.ReplacedReplicas = len(pres.Chosen)

	repaired := model.Strategy{Alloc: newAlloc, Delivery: delivery, Mode: st.Mode}
	if err := degraded.Check(repaired); err != nil {
		return model.Strategy{}, nil, fmt.Errorf("repair: produced invalid strategy: %w", err)
	}
	rep.RateAfter, rep.LatencyAfter = degraded.Evaluate(repaired)
	return repaired, rep, nil
}

// bestRespond moves j to its Eq. 12 best response; reports movement.
func bestRespond(in *model.Instance, l *model.Ledger, j int) bool {
	cur := l.Current(j)
	curB := l.Benefit(j, cur)
	best, bestB := cur, curB
	for _, i := range in.Top.Coverage[j] {
		for x := 0; x < in.Top.Servers[i].Channels; x++ {
			a := model.Alloc{Server: i, Channel: x}
			if a == cur {
				continue
			}
			if b := l.Benefit(j, a); b > bestB {
				best, bestB = a, b
			}
		}
	}
	if best != cur && bestB > curB+1e-12 {
		l.Move(j, best)
		return true
	}
	return false
}

// neighbourhood collects users sharing coverage with any displaced user.
func neighbourhood(in *model.Instance, displaced []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, j := range displaced {
		for _, i := range in.Top.Coverage[j] {
			for _, t := range in.Top.Covered[i] {
				if !seen[t] {
					seen[t] = true
					out = append(out, t)
				}
			}
		}
	}
	return out
}

type repairOracle struct {
	in *model.Instance
	ls *model.LatencyState
	d  *model.Delivery
}

func (o *repairOracle) Gain(c placement.Candidate) float64 {
	return float64(o.ls.GainOf(c.Server, c.Item))
}

func (o *repairOracle) Cost(c placement.Candidate) float64 {
	return float64(o.in.Wl.Items[c.Item].Size)
}

func (o *repairOracle) Feasible(c placement.Candidate) bool {
	if o.d.Placed(c.Server, c.Item) {
		return false
	}
	size := o.in.Wl.Items[c.Item].Size
	return o.d.Used(c.Server)+size <= o.in.Wl.Capacity[c.Server]
}

func (o *repairOracle) Commit(c placement.Candidate) float64 {
	o.d.Place(c.Server, c.Item, o.in.Wl.Items[c.Item].Size)
	return float64(o.ls.Commit(c.Server, c.Item))
}

package repair

import (
	"testing"

	"idde/internal/core"
	"idde/internal/model"
	"idde/internal/rng"
)

// randDegradation draws a compound fault state: one or two servers
// down, up to two wired links cut, and an occasional cloud brownout.
func randDegradation(in *model.Instance, s *rng.Stream) Degradation {
	var d Degradation
	perm := s.Perm(in.N())
	for _, f := range perm[:1+s.IntN(2)] {
		d.FailedServers = append(d.FailedServers, f)
	}
	edges := in.Top.Net.Edges()
	if len(edges) > 0 {
		for c := 0; c < s.IntN(3); c++ {
			e := edges[s.IntN(len(edges))]
			d.CutLinks = append(d.CutLinks, [2]int{e.U, e.V})
		}
	}
	if s.Bool(0.3) {
		d.CloudFactor = 0.5
	}
	return d
}

// unionDeg overlays b on a: the compound fault state when b lands while
// a is still active. Duplicates are fine — Degrade tolerates them.
func unionDeg(a, b Degradation) Degradation {
	var u Degradation
	u.FailedServers = append(append([]int(nil), a.FailedServers...), b.FailedServers...)
	u.CutLinks = append(append([][2]int(nil), a.CutLinks...), b.CutLinks...)
	u.CloudFactor = a.CloudFactor
	if b.CloudFactor != 0 && (u.CloudFactor == 0 || b.CloudFactor < u.CloudFactor) {
		u.CloudFactor = b.CloudFactor
	}
	return u
}

func strategiesEqual(in *model.Instance, a, b model.Strategy) bool {
	for j := range a.Alloc {
		if a.Alloc[j] != b.Alloc[j] {
			return false
		}
	}
	for i := 0; i < in.N(); i++ {
		for k := 0; k < in.K(); k++ {
			if a.Delivery.Placed(i, k) != b.Delivery.Placed(i, k) {
				return false
			}
		}
	}
	return true
}

// assertFixpoint re-repairs st on its own instance (no new failure) and
// requires a clean no-op: zero moves, zero replica churn, identical
// strategy. This is the convergence property — one repair pass reaches
// a state further passes cannot improve.
func assertFixpoint(t *testing.T, label string, deg *model.Instance, st model.Strategy) {
	t.Helper()
	again, rep, err := RepairDegraded(deg, deg, st, Options{})
	if err != nil {
		t.Fatalf("%s: fixpoint re-repair failed: %v", label, err)
	}
	if rep.Moves != 0 || rep.ReplacedReplicas != 0 || rep.LostReplicas != 0 || rep.DisplacedUsers != 0 {
		t.Fatalf("%s: re-repair was not a no-op: %+v", label, rep)
	}
	if !strategiesEqual(deg, st, again) {
		t.Fatalf("%s: re-repair changed the strategy", label)
	}
}

// TestRepairConvergesUnderOverlappingDegradations is the property test
// behind the serving loop's degradation→repair→swap contract: random
// compound degradations land in overlapping sequence — a second fault
// set arrives while the first is still being carried, then the first
// lifts, then everything recovers — with each repair patching the
// previous repair's output rather than the pristine strategy. At every
// stage the repaired strategy must be valid (RepairDegraded checks
// internally) and a fixpoint, and full recovery must re-admit every
// user the healthy solution served.
func TestRepairConvergesUnderOverlappingDegradations(t *testing.T) {
	const trials = 6
	for trial := 0; trial < trials; trial++ {
		s := rng.New(uint64(300 + trial))
		in := genInstance(t, 12, 80, 4, uint64(40+trial))
		st := core.Solve(in, core.DefaultOptions()).Strategy
		baseAllocated := st.Alloc.AllocatedCount()

		d1 := randDegradation(in, s.Split("d1"))
		d2 := randDegradation(in, s.Split("d2"))
		// The overlap sequence: d1 lands; d2 lands on top of d1; d1
		// lifts leaving d2; d2 lifts. Every stage's fault state is
		// expressed cumulatively against the pristine instance, as the
		// chaos and serving planes do.
		stages := []struct {
			name string
			d    Degradation
		}{
			{"onset d1", d1},
			{"overlap d1+d2", unionDeg(d1, d2)},
			{"partial recovery d2", d2},
			{"full recovery", Degradation{}},
		}

		ref, cur := in, st
		for _, stage := range stages {
			deg, err := Degrade(in, stage.d)
			if err != nil {
				t.Fatalf("trial %d %s: degrade: %v", trial, stage.name, err)
			}
			next, _, err := RepairDegraded(ref, deg, cur, Options{})
			if err != nil {
				t.Fatalf("trial %d %s: repair: %v", trial, stage.name, err)
			}
			assertFixpoint(t, stage.name, deg, next)
			ref, cur = deg, next
		}

		// Convergence across paths: the stepwise chain and a direct
		// repair from the healthy strategy need not agree replica for
		// replica, but both must be fixpoints of the same fault state.
		d12, err := Degrade(in, unionDeg(d1, d2))
		if err != nil {
			t.Fatal(err)
		}
		direct, _, err := RepairDegraded(in, d12, st, Options{})
		if err != nil {
			t.Fatalf("trial %d: direct compound repair: %v", trial, err)
		}
		assertFixpoint(t, "direct d1+d2", d12, direct)

		// Full recovery re-admits everyone the healthy solution served.
		if got := cur.Alloc.AllocatedCount(); got < baseAllocated {
			t.Errorf("trial %d: recovery allocated %d users, healthy baseline had %d", trial, got, baseAllocated)
		}
		rep, err2 := func() (*Report, error) {
			_, r, e := RepairDegraded(ref, in, cur, Options{})
			return r, e
		}()
		if err2 != nil {
			t.Fatal(err2)
		}
		if rep.StrandedUsers != 0 {
			t.Errorf("trial %d: %d users stranded after full recovery", trial, rep.StrandedUsers)
		}
	}
}

// TestRepairRepeatedSameDegradationMidRepair replays the same
// degradation repeatedly against successive repair outputs — the
// "degradation re-reported mid-repair" case the serving loop's
// threshold replanner can produce — and requires the second and every
// later application to be a strict no-op.
func TestRepairRepeatedSameDegradationMidRepair(t *testing.T) {
	for trial := 0; trial < 4; trial++ {
		s := rng.New(uint64(900 + trial))
		in := genInstance(t, 10, 60, 3, uint64(70+trial))
		st := core.Solve(in, core.DefaultOptions()).Strategy
		d := randDegradation(in, s)
		deg, err := Degrade(in, d)
		if err != nil {
			t.Fatal(err)
		}
		cur, _, err := RepairDegraded(in, deg, st, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for rerun := 0; rerun < 3; rerun++ {
			next, rep, err := RepairDegraded(deg, deg, cur, Options{})
			if err != nil {
				t.Fatalf("trial %d rerun %d: %v", trial, rerun, err)
			}
			if rep.Moves != 0 || rep.ReplacedReplicas != 0 {
				t.Fatalf("trial %d rerun %d: repeated degradation did work: %+v", trial, rerun, rep)
			}
			if !strategiesEqual(deg, cur, next) {
				t.Fatalf("trial %d rerun %d: repeated degradation changed the strategy", trial, rerun)
			}
			cur = next
		}
	}
}

package online

import (
	"testing"

	"idde/internal/core"
	"idde/internal/model"
	"idde/internal/radio"
	"idde/internal/rng"
	"idde/internal/topology"
	"idde/internal/workload"
)

func genInstance(t *testing.T, n, m, k int, seed uint64) *model.Instance {
	t.Helper()
	s := rng.New(seed)
	top, err := topology.Generate(topology.DefaultGen(n, m, 1.0), s.Split("top"))
	if err != nil {
		t.Fatalf("topology: %v", err)
	}
	wl, err := workload.Generate(workload.DefaultGen(k), n, m, s.Split("wl"))
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	in, err := model.New(top, wl, radio.Default())
	if err != nil {
		t.Fatalf("model: %v", err)
	}
	return in
}

func TestJoinLeaveBasics(t *testing.T) {
	in := genInstance(t, 12, 80, 4, 1)
	sys := NewSystem(in, DefaultOptions())
	if sys.ActiveCount() != 0 {
		t.Fatal("fresh system not empty")
	}
	moves, err := sys.Join(5)
	if err != nil {
		t.Fatal(err)
	}
	if moves < 1 {
		t.Error("join committed no moves")
	}
	if !sys.Active(5) || sys.ActiveCount() != 1 {
		t.Error("activation bookkeeping wrong")
	}
	if !sys.Allocation()[5].Allocated() {
		t.Error("joined user not allocated")
	}
	if _, err := sys.Join(5); err == nil {
		t.Error("double join accepted")
	}
	if _, err := sys.Leave(5); err != nil {
		t.Fatal(err)
	}
	if sys.Active(5) || sys.Allocation()[5].Allocated() {
		t.Error("leave bookkeeping wrong")
	}
	if _, err := sys.Leave(5); err == nil {
		t.Error("double leave accepted")
	}
	if _, err := sys.Join(-1); err == nil {
		t.Error("bad id accepted")
	}
	st := sys.Stats()
	if st.Joins != 1 || st.Leaves != 1 {
		t.Errorf("stats wrong: %+v", st)
	}
}

func TestSequentialJoinsApproachBatchQuality(t *testing.T) {
	in := genInstance(t, 15, 120, 4, 2)
	sys := NewSystem(in, DefaultOptions())
	for j := 0; j < in.M(); j++ {
		if _, err := sys.Join(j); err != nil {
			t.Fatal(err)
		}
	}
	onlineRate, onlineLat := sys.Metrics()

	batch := core.Solve(in, core.DefaultOptions())
	if float64(onlineRate) < 0.8*float64(batch.AvgRate) {
		t.Errorf("online rate %v far below batch IDDE-G %v", onlineRate, batch.AvgRate)
	}
	// The online delivery is conservative (threshold + no eviction), so
	// allow a factor over batch latency but demand big gains vs cloud.
	var cloudSum float64
	reqs := 0
	for _, items := range in.Wl.Requests {
		for _, k := range items {
			cloudSum += float64(in.CloudLatency(k))
			reqs++
		}
	}
	cloudAvg := cloudSum / float64(reqs)
	if float64(onlineLat) > 0.6*cloudAvg {
		t.Errorf("online latency %v barely better than all-cloud %v", onlineLat, cloudAvg)
	}
	_ = batch
}

func TestIncrementalWorkIsBounded(t *testing.T) {
	in := genInstance(t, 15, 150, 4, 3)
	sys := NewSystem(in, DefaultOptions())
	maxMoves := 0
	total := 0
	for j := 0; j < in.M(); j++ {
		moves, err := sys.Join(j)
		if err != nil {
			t.Fatal(err)
		}
		total += moves
		if moves > maxMoves {
			maxMoves = moves
		}
	}
	// The selling point: events touch a neighbourhood, not the system.
	if avg := float64(total) / float64(in.M()); avg > 10 {
		t.Errorf("average %.1f moves per join — not incremental", avg)
	}
	if maxMoves > 60 {
		t.Errorf("worst join caused %d moves", maxMoves)
	}
}

func TestLeaveFreesSpectrum(t *testing.T) {
	in := genInstance(t, 10, 100, 3, 4)
	sys := NewSystem(in, DefaultOptions())
	for j := 0; j < in.M(); j++ {
		if _, err := sys.Join(j); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := sys.Metrics()
	// Remove a third of the crowd.
	for j := 0; j < in.M(); j += 3 {
		if _, err := sys.Leave(j); err != nil {
			t.Fatal(err)
		}
	}
	after, _ := sys.Metrics()
	if after <= before {
		t.Errorf("rate did not improve after departures: %v -> %v", before, after)
	}
}

func TestDeliveryPatchingServesJoiners(t *testing.T) {
	in := genInstance(t, 12, 80, 3, 5)
	sys := NewSystem(in, DefaultOptions())
	for j := 0; j < in.M(); j++ {
		if _, err := sys.Join(j); err != nil {
			t.Fatal(err)
		}
	}
	if sys.Stats().Placements == 0 {
		t.Error("no on-demand placements happened")
	}
	if err := in.CheckDelivery(sys.Delivery()); err != nil {
		t.Errorf("patched delivery invalid: %v", err)
	}
	// The allocation must remain valid throughout.
	if err := in.CheckAllocation(sys.Allocation()); err != nil {
		t.Errorf("allocation invalid: %v", err)
	}
}

func TestOnlineDeterministic(t *testing.T) {
	in := genInstance(t, 10, 60, 3, 6)
	run := func() (float64, float64, Stats) {
		sys := NewSystem(in, DefaultOptions())
		for j := 0; j < in.M(); j++ {
			sys.Join(j)
		}
		for j := 0; j < in.M(); j += 4 {
			sys.Leave(j)
		}
		r, l := sys.Metrics()
		return float64(r), float64(l), sys.Stats()
	}
	r1, l1, s1 := run()
	r2, l2, s2 := run()
	if r1 != r2 || l1 != l2 || s1 != s2 {
		t.Error("online system not deterministic")
	}
}

func TestMetricsEmptySystem(t *testing.T) {
	in := genInstance(t, 8, 30, 2, 7)
	sys := NewSystem(in, DefaultOptions())
	r, l := sys.Metrics()
	if r != 0 || l != 0 {
		t.Errorf("empty metrics = %v/%v", r, l)
	}
}

package online

import (
	"bytes"
	"testing"

	"idde/internal/rng"
	"idde/internal/units"
)

func defaultTraceConfig() GenTraceConfig {
	return GenTraceConfig{Horizon: 3600, MeanArrivalsPerSec: 0.05, MeanDwellSec: 600}
}

func TestGenTraceWellFormed(t *testing.T) {
	tr, err := GenTrace(100, defaultTraceConfig(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) == 0 {
		t.Fatal("empty trace")
	}
	active := make([]bool, 100)
	var prev units.Seconds
	for i, e := range tr.Events {
		if e.At < prev {
			t.Fatalf("event %d out of order", i)
		}
		prev = e.At
		if e.At < 0 || e.At >= 3600 {
			t.Fatalf("event %d outside horizon: %v", i, e.At)
		}
		switch e.Kind {
		case JoinEvent:
			if active[e.User] {
				t.Fatalf("double join of user %d at event %d", e.User, i)
			}
			active[e.User] = true
		case LeaveEvent:
			if !active[e.User] {
				t.Fatalf("leave of inactive user %d at event %d", e.User, i)
			}
			active[e.User] = false
		default:
			t.Fatalf("unknown kind %q", e.Kind)
		}
	}
}

func TestGenTraceValidation(t *testing.T) {
	if _, err := GenTrace(0, defaultTraceConfig(), rng.New(1)); err == nil {
		t.Error("empty universe accepted")
	}
	bad := defaultTraceConfig()
	bad.Horizon = 0
	if _, err := GenTrace(10, bad, rng.New(1)); err == nil {
		t.Error("zero horizon accepted")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	tr, err := GenTrace(50, defaultTraceConfig(), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != len(tr.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(got.Events), len(tr.Events))
	}
	for i := range got.Events {
		if got.Events[i] != tr.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
	if _, err := LoadTrace(bytes.NewBufferString("{")); err == nil {
		t.Error("garbage trace accepted")
	}
}

func TestReplayTrace(t *testing.T) {
	in := genInstance(t, 12, 80, 4, 8)
	tr, err := GenTrace(in.M(), defaultTraceConfig(), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	samples, sys, err := Replay(in, tr, DefaultOptions(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	final := samples[len(samples)-1]
	if final.Active != sys.ActiveCount() {
		t.Errorf("final sample active %d != system %d", final.Active, sys.ActiveCount())
	}
	if final.Active > 0 && final.RateMBps <= 0 {
		t.Error("active system with zero rate")
	}
	if err := in.CheckAllocation(sys.Allocation()); err != nil {
		t.Errorf("post-replay allocation invalid: %v", err)
	}
	if err := in.CheckDelivery(sys.Delivery()); err != nil {
		t.Errorf("post-replay delivery invalid: %v", err)
	}
}

func TestReplayRejectsBadTraces(t *testing.T) {
	in := genInstance(t, 8, 30, 3, 9)
	bad := &Trace{Events: []Event{{At: 1, Kind: JoinEvent, User: 999}}}
	if _, _, err := Replay(in, bad, DefaultOptions(), 0); err == nil {
		t.Error("unknown user accepted")
	}
	bad2 := &Trace{Events: []Event{{At: 1, Kind: "teleport", User: 0}}}
	if _, _, err := Replay(in, bad2, DefaultOptions(), 0); err == nil {
		t.Error("unknown kind accepted")
	}
	bad3 := &Trace{Events: []Event{{At: 1, Kind: LeaveEvent, User: 0}}}
	if _, _, err := Replay(in, bad3, DefaultOptions(), 0); err == nil {
		t.Error("leave-before-join accepted")
	}
}

func TestReplayDeterministic(t *testing.T) {
	in := genInstance(t, 10, 50, 3, 10)
	tr, err := GenTrace(in.M(), defaultTraceConfig(), rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := Replay(in, tr, DefaultOptions(), 5)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Replay(in, tr, DefaultOptions(), 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs", i)
		}
	}
}

package online

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"idde/internal/model"
	"idde/internal/rng"
	"idde/internal/units"
)

// EventKind distinguishes churn events.
type EventKind string

const (
	JoinEvent  EventKind = "join"
	LeaveEvent EventKind = "leave"
)

// Event is one churn occurrence at a virtual time.
type Event struct {
	At   units.Seconds `json:"at"`
	Kind EventKind     `json:"kind"`
	User int           `json:"user"`
}

// Trace is a replayable churn schedule, sorted by time.
type Trace struct {
	Events []Event `json:"events"`
}

// GenTraceConfig parametrizes synthetic churn generation.
type GenTraceConfig struct {
	// Horizon is the trace length in seconds.
	Horizon units.Seconds
	// MeanArrivalsPerSec is the Poisson join rate (inactive users join
	// uniformly at random).
	MeanArrivalsPerSec float64
	// MeanDwellSec is the exponential mean of a user's stay.
	MeanDwellSec float64
}

// GenTrace synthesizes a churn trace over a universe of m users:
// Poisson arrivals, exponential dwell times, truncated to the horizon.
func GenTrace(m int, cfg GenTraceConfig, s *rng.Stream) (*Trace, error) {
	if m <= 0 {
		return nil, fmt.Errorf("online: empty universe")
	}
	if cfg.Horizon <= 0 || cfg.MeanArrivalsPerSec <= 0 || cfg.MeanDwellSec <= 0 {
		return nil, fmt.Errorf("online: non-positive trace parameters")
	}
	tr := &Trace{}
	active := make([]bool, m)
	t := 0.0
	for {
		t += s.Exp(1 / cfg.MeanArrivalsPerSec)
		if t >= float64(cfg.Horizon) {
			break
		}
		// Pick an inactive user uniformly (bounded retry; if the whole
		// universe is active, the arrival is lost — a full system).
		j := -1
		for try := 0; try < 4*m; try++ {
			cand := s.IntN(m)
			if !active[cand] {
				j = cand
				break
			}
		}
		if j < 0 {
			continue
		}
		active[j] = true
		tr.Events = append(tr.Events, Event{At: units.Seconds(t), Kind: JoinEvent, User: j})
		if leave := t + s.Exp(cfg.MeanDwellSec); leave < float64(cfg.Horizon) {
			tr.Events = append(tr.Events, Event{At: units.Seconds(leave), Kind: LeaveEvent, User: j})
		}
		// Note: the user may receive another join after its leave; the
		// sort below interleaves correctly, and Replay validates order.
	}
	sort.SliceStable(tr.Events, func(a, b int) bool { return tr.Events[a].At < tr.Events[b].At })
	// Drop joins for already-active users caused by overlapping dwell
	// windows (a user drawn again before its scheduled leave).
	tr.Events = sanitize(tr.Events, m)
	return tr, nil
}

// sanitize removes events that would double-join or leave-inactive.
func sanitize(events []Event, m int) []Event {
	active := make([]bool, m)
	out := events[:0]
	for _, e := range events {
		switch e.Kind {
		case JoinEvent:
			if active[e.User] {
				continue
			}
			active[e.User] = true
		case LeaveEvent:
			if !active[e.User] {
				continue
			}
			active[e.User] = false
		}
		out = append(out, e)
	}
	return out
}

// Save writes the trace as JSON.
func (tr *Trace) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tr)
}

// LoadTrace reads a trace from JSON.
func LoadTrace(r io.Reader) (*Trace, error) {
	var tr Trace
	if err := json.NewDecoder(r).Decode(&tr); err != nil {
		return nil, err
	}
	return &tr, nil
}

// ReplaySample is the system state after one event.
type ReplaySample struct {
	At        units.Seconds
	Active    int
	RateMBps  float64
	LatencyMs float64
	Moves     int
}

// Replay drives a fresh System through the trace, sampling the
// objectives every sampleEvery events (0 = only at the end).
func Replay(in *model.Instance, tr *Trace, opt Options, sampleEvery int) ([]ReplaySample, *System, error) {
	sys := NewSystem(in, opt)
	var samples []ReplaySample
	for idx, e := range tr.Events {
		if e.User < 0 || e.User >= in.M() {
			return nil, nil, fmt.Errorf("online: trace references unknown user %d", e.User)
		}
		var moves int
		var err error
		switch e.Kind {
		case JoinEvent:
			moves, err = sys.Join(e.User)
		case LeaveEvent:
			moves, err = sys.Leave(e.User)
		default:
			return nil, nil, fmt.Errorf("online: unknown event kind %q", e.Kind)
		}
		if err != nil {
			return nil, nil, fmt.Errorf("online: replaying event %d: %w", idx, err)
		}
		if sampleEvery > 0 && (idx+1)%sampleEvery == 0 {
			r, l := sys.Metrics()
			samples = append(samples, ReplaySample{
				At: e.At, Active: sys.ActiveCount(),
				RateMBps: float64(r), LatencyMs: l.Millis(), Moves: moves,
			})
		}
	}
	r, l := sys.Metrics()
	samples = append(samples, ReplaySample{
		At:     lastAt(tr),
		Active: sys.ActiveCount(), RateMBps: float64(r), LatencyMs: l.Millis(),
	})
	return samples, sys, nil
}

func lastAt(tr *Trace) units.Seconds {
	if len(tr.Events) == 0 {
		return 0
	}
	return tr.Events[len(tr.Events)-1].At
}

// Package online maintains a live IDDE strategy under user churn —
// the operational reality behind the paper's static formulation (and a
// sibling of the authors' own OL-MEDC online-caching line of work).
// Users join and leave the area at run time; re-running IDDE-G from
// scratch on every arrival would cost O(N·M·K) per event, so the System
// applies *incremental* updates:
//
//   - Join: the newcomer best-responds once (Eq. 12), then a bounded
//     re-equilibration wave lets only the users it can actually have
//     disturbed (co-coverage neighbours) adjust.
//   - Leave: the seat frees instantly; neighbours may re-optimize into
//     the vacated channel on the next wave.
//   - Delivery: replicas are patched on demand — when the joining
//     user's items justify a placement under the same
//     gain-per-MB rule as Phase 2 (Eq. 17), storage permitting.
//     Replicas are never evicted (reservations are prepaid; stale
//     replicas cost nothing under Eq. 6).
//
// The value proposition is measured, not assumed: Stats tracks moves
// per event, and the tests compare the steady-state objectives against
// a from-scratch IDDE-G run on the same active set.
package online

import (
	"fmt"

	"idde/internal/model"
	"idde/internal/units"
)

// Options bounds the incremental work per event.
type Options struct {
	// Waves is the number of neighbourhood re-equilibration sweeps
	// after a join/leave (default 2).
	Waves int
	// Epsilon is the minimum benefit improvement for a move.
	Epsilon float64
	// PlaceThreshold is the minimum latency-gain-per-MB (s/MB) for an
	// on-demand replica placement, as a fraction of the cloud per-MB
	// cost (default 0.25: a replica must recover at least a quarter of
	// a cloud fetch per stored MB).
	PlaceThreshold float64
}

// DefaultOptions returns the tuning used in tests and benches.
func DefaultOptions() Options {
	return Options{Waves: 2, Epsilon: 1e-12, PlaceThreshold: 0.25}
}

// Stats accumulates incremental-work accounting.
type Stats struct {
	Joins, Leaves int
	// Moves counts allocation changes committed across all events
	// (including the joiners' own first allocations).
	Moves int
	// Placements counts on-demand replicas.
	Placements int
}

// System is a live strategy over a fixed universe of potential users.
type System struct {
	in     *model.Instance
	opt    Options
	active []bool
	ledger *model.Ledger
	deliv  *model.Delivery
	stats  Stats
}

// NewSystem starts with no active users and an empty delivery profile.
func NewSystem(in *model.Instance, opt Options) *System {
	if opt.Waves <= 0 {
		opt.Waves = 2
	}
	if opt.PlaceThreshold <= 0 {
		opt.PlaceThreshold = 0.25
	}
	return &System{
		in:     in,
		opt:    opt,
		active: make([]bool, in.M()),
		ledger: model.NewLedger(in, model.NewAllocation(in.M())),
		deliv:  model.NewDelivery(in.N(), in.K()),
	}
}

// Active reports whether user j is present.
func (s *System) Active(j int) bool { return s.active[j] }

// ActiveCount reports the number of present users.
func (s *System) ActiveCount() int {
	n := 0
	for _, a := range s.active {
		if a {
			n++
		}
	}
	return n
}

// Stats returns the accumulated event accounting.
func (s *System) Stats() Stats { return s.stats }

// Allocation snapshots the current profile (inactive users are
// Unallocated).
func (s *System) Allocation() model.Allocation { return s.ledger.Alloc() }

// Delivery snapshots the current delivery profile.
func (s *System) Delivery() *model.Delivery { return s.deliv.Clone() }

// Join activates user j, allocates it and re-equilibrates its
// neighbourhood. It returns the number of allocation moves committed.
func (s *System) Join(j int) (int, error) {
	if j < 0 || j >= s.in.M() {
		return 0, fmt.Errorf("online: unknown user %d", j)
	}
	if s.active[j] {
		return 0, fmt.Errorf("online: user %d already active", j)
	}
	s.active[j] = true
	s.stats.Joins++
	moves := 0
	if s.bestRespond(j) {
		moves++
	}
	moves += s.requilibrate(j)
	s.stats.Moves += moves
	s.patchDelivery(j)
	return moves, nil
}

// Leave deactivates user j and lets its neighbourhood re-optimize into
// the vacated spectrum.
func (s *System) Leave(j int) (int, error) {
	if j < 0 || j >= s.in.M() {
		return 0, fmt.Errorf("online: unknown user %d", j)
	}
	if !s.active[j] {
		return 0, fmt.Errorf("online: user %d not active", j)
	}
	s.active[j] = false
	s.stats.Leaves++
	s.ledger.Move(j, model.Unallocated)
	moves := s.requilibrate(j)
	s.stats.Moves += moves
	return moves, nil
}

// bestRespond moves j to its best decision; reports whether it moved.
func (s *System) bestRespond(j int) bool {
	cur := s.ledger.Current(j)
	curB := s.ledger.Benefit(j, cur)
	best, bestB := cur, curB
	for _, i := range s.in.Top.Coverage[j] {
		for x := 0; x < s.in.Top.Servers[i].Channels; x++ {
			a := model.Alloc{Server: i, Channel: x}
			if a == cur {
				continue
			}
			if b := s.ledger.Benefit(j, a); b > bestB {
				best, bestB = a, b
			}
		}
	}
	if bestB-curB > s.opt.Epsilon && best != cur {
		s.ledger.Move(j, best)
		return true
	}
	return false
}

// neighbours returns the active users that share coverage with j (the
// only users whose payoffs j's decision can influence).
func (s *System) neighbours(j int) []int {
	seen := map[int]bool{}
	var out []int
	for _, i := range s.in.Top.Coverage[j] {
		for _, t := range s.in.Top.Covered[i] {
			if t != j && s.active[t] && !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		}
	}
	return out
}

// requilibrate runs bounded best-response waves over j's neighbourhood.
func (s *System) requilibrate(j int) int {
	moves := 0
	for wave := 0; wave < s.opt.Waves; wave++ {
		moved := false
		for _, t := range s.neighbours(j) {
			if s.bestRespond(t) {
				moves++
				moved = true
			}
		}
		if !moved {
			break
		}
	}
	return moves
}

// patchDelivery places replicas for the joining user's items when the
// Eq. 17 ratio over the *active* demand clears the threshold.
func (s *System) patchDelivery(j int) {
	a := s.ledger.Current(j)
	if !a.Allocated() {
		return
	}
	threshold := s.opt.PlaceThreshold * float64(s.in.Top.CloudCost)
	for _, k := range s.in.Wl.Requests[j] {
		size := s.in.Wl.Items[k].Size
		i := a.Server
		if s.deliv.Placed(i, k) {
			continue
		}
		if s.deliv.Used(i)+size > s.in.Wl.Capacity[i] {
			continue
		}
		gain := s.replicaGain(i, k)
		if gain/float64(size) >= threshold {
			s.deliv.Place(i, k, size)
			s.stats.Placements++
		}
	}
}

// replicaGain computes the total latency reduction of σ_{i,k}=1 over
// the active demand.
func (s *System) replicaGain(i, k int) float64 {
	alloc := s.ledger.Alloc()
	gain := 0.0
	for j, items := range s.in.Wl.Requests {
		if !s.active[j] {
			continue
		}
		for _, kk := range items {
			if kk != k {
				continue
			}
			cur := s.in.RequestLatency(alloc, s.deliv, j, k)
			a := alloc[j]
			if !a.Allocated() {
				continue
			}
			if nl := s.in.EdgeLatency(k, i, a.Server); nl < cur {
				gain += float64(cur - nl)
			}
		}
	}
	return gain
}

// Metrics evaluates the two IDDE objectives over the *active*
// population: the mean rate over active users and the mean latency over
// active requests.
func (s *System) Metrics() (units.Rate, units.Seconds) {
	alloc := s.ledger.Alloc()
	n := 0
	var rateSum float64
	for j := range s.active {
		if !s.active[j] {
			continue
		}
		n++
		rateSum += float64(s.ledger.CurrentRate(j))
	}
	var latSum float64
	reqs := 0
	for j, items := range s.in.Wl.Requests {
		if !s.active[j] {
			continue
		}
		for _, k := range items {
			latSum += float64(s.in.RequestLatency(alloc, s.deliv, j, k))
			reqs++
		}
	}
	var rate units.Rate
	var lat units.Seconds
	if n > 0 {
		rate = units.Rate(rateSum / float64(n))
	}
	if reqs > 0 {
		lat = units.Seconds(latSum / float64(reqs))
	}
	return rate, lat
}

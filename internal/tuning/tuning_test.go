package tuning

import (
	"testing"
)

// smallSweep keeps test scenarios light.
func smallSweep(knob Knob, values []float64) Config {
	return Config{Knob: knob, Values: values, N: 10, M: 80, K: 3, Density: 1.0, Reps: 2, Seed: 1}
}

func TestChannelsSweepRaisesRates(t *testing.T) {
	pts, err := Sweep(smallSweep(Channels, []float64{1, 3, 6}))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// More channels → less co-channel interference → higher rates.
	if pts[2].RateMBps.Mean <= pts[0].RateMBps.Mean {
		t.Errorf("rates did not rise with channels: %v -> %v",
			pts[0].RateMBps.Mean, pts[2].RateMBps.Mean)
	}
}

func TestBandwidthSweepRaisesRates(t *testing.T) {
	pts, err := Sweep(smallSweep(Bandwidth, []float64{50, 200}))
	if err != nil {
		t.Fatal(err)
	}
	if pts[1].RateMBps.Mean <= pts[0].RateMBps.Mean {
		t.Errorf("rates did not rise with bandwidth: %v -> %v",
			pts[0].RateMBps.Mean, pts[1].RateMBps.Mean)
	}
}

func TestCloudRateSweepLowersLatency(t *testing.T) {
	pts, err := Sweep(smallSweep(CloudRate, []float64{150, 1200}))
	if err != nil {
		t.Fatal(err)
	}
	// A faster cloud lowers the latency of whatever still misses the
	// edge.
	if pts[1].LatencyMs.Mean > pts[0].LatencyMs.Mean+1e-9 {
		t.Errorf("latency did not fall with cloud rate: %v -> %v",
			pts[0].LatencyMs.Mean, pts[1].LatencyMs.Mean)
	}
}

func TestRadiusSweepRuns(t *testing.T) {
	pts, err := Sweep(smallSweep(Radius, []float64{450, 900}))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.RateMBps.Mean <= 0 || p.RateMBps.N != 2 {
			t.Errorf("malformed point %+v", p)
		}
	}
}

func TestZipfSweepRuns(t *testing.T) {
	pts, err := Sweep(smallSweep(Zipf, []float64{0.2, 1.5}))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
}

func TestSweepValidation(t *testing.T) {
	if _, err := Sweep(Config{Knob: Channels}); err == nil {
		t.Error("empty values accepted")
	}
	if _, err := Sweep(smallSweep("warp", []float64{1})); err == nil {
		t.Error("unknown knob accepted")
	}
	if _, err := Sweep(smallSweep(Channels, []float64{0})); err == nil {
		t.Error("zero channels accepted")
	}
	if _, err := Sweep(smallSweep(Bandwidth, []float64{-1})); err == nil {
		t.Error("negative bandwidth accepted")
	}
	if _, err := Sweep(smallSweep(CloudRate, []float64{0})); err == nil {
		t.Error("zero cloud rate accepted")
	}
	if _, err := Sweep(smallSweep(Radius, []float64{0})); err == nil {
		t.Error("zero radius accepted")
	}
	if _, err := Sweep(smallSweep(Zipf, []float64{0})); err == nil {
		t.Error("zero skew accepted")
	}
}

func TestSweepDeterministic(t *testing.T) {
	cfg := smallSweep(Channels, []float64{2})
	a, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a[0].RateMBps.Mean != b[0].RateMBps.Mean {
		t.Error("sweep not deterministic")
	}
}

func TestKnobsList(t *testing.T) {
	if len(Knobs()) != 5 {
		t.Errorf("knobs = %v", Knobs())
	}
}

// Package tuning provides sensitivity sweeps over the design knobs the
// paper's Table 2 holds fixed — channels per server, channel bandwidth,
// coverage radius, request skew and cloud rate — answering the
// deployment questions a vendor faces after adopting IDDE-G ("would a
// fourth channel help more than wider coverage?"). Each sweep runs
// IDDE-G over randomized instances and aggregates both objectives.
package tuning

import (
	"fmt"

	"idde/internal/core"
	"idde/internal/model"
	"idde/internal/radio"
	"idde/internal/rng"
	"idde/internal/stats"
	"idde/internal/topology"
	"idde/internal/units"
	"idde/internal/workload"
)

// Knob identifies a tunable scenario parameter.
type Knob string

const (
	// Channels sweeps the per-server channel count |C_i|.
	Channels Knob = "channels"
	// Bandwidth sweeps the per-channel bandwidth B (MBps).
	Bandwidth Knob = "bandwidth"
	// Radius sweeps the mean coverage radius (m), keeping the paper's
	// ±33% spread.
	Radius Knob = "radius"
	// Zipf sweeps the request popularity skew.
	Zipf Knob = "zipf"
	// CloudRate sweeps the cloud delivery speed (MBps).
	CloudRate Knob = "cloudrate"
)

// Knobs lists the supported sweep dimensions.
func Knobs() []Knob { return []Knob{Channels, Bandwidth, Radius, Zipf, CloudRate} }

// Config describes one sweep.
type Config struct {
	Knob   Knob
	Values []float64
	// N, M, K and Density fix the scenario size (defaults 30/200/5/1.0).
	N, M, K int
	Density float64
	Reps    int
	Seed    uint64
}

// Point is the aggregated outcome at one knob value.
type Point struct {
	X         float64
	RateMBps  stats.Summary
	LatencyMs stats.Summary
}

// Sweep runs IDDE-G across the knob values.
func Sweep(cfg Config) ([]Point, error) {
	if len(cfg.Values) == 0 {
		return nil, fmt.Errorf("tuning: no values")
	}
	if cfg.Reps <= 0 {
		cfg.Reps = 5
	}
	if cfg.N <= 0 {
		cfg.N = 30
	}
	if cfg.M <= 0 {
		cfg.M = 200
	}
	if cfg.K <= 0 {
		cfg.K = 5
	}
	if cfg.Density <= 0 {
		cfg.Density = 1.0
	}
	known := false
	for _, k := range Knobs() {
		if k == cfg.Knob {
			known = true
		}
	}
	if !known {
		return nil, fmt.Errorf("tuning: unknown knob %q", cfg.Knob)
	}

	out := make([]Point, len(cfg.Values))
	for vi, v := range cfg.Values {
		var rate, lat stats.Acc
		for rep := 0; rep < cfg.Reps; rep++ {
			// Paired design: the same rep index draws the same topology
			// and workload randomness at every knob value, so the sweep
			// isolates the knob instead of instance-to-instance noise.
			seed := rng.New(cfg.Seed).SplitN("rep", rep).Seed()
			in, err := buildInstance(cfg, v, seed)
			if err != nil {
				return nil, err
			}
			res := core.Solve(in, core.DefaultOptions())
			rate.Add(float64(res.AvgRate))
			lat.Add(res.AvgLatency.Millis())
		}
		out[vi] = Point{X: v, RateMBps: rate.Summary(), LatencyMs: lat.Summary()}
	}
	return out, nil
}

func buildInstance(cfg Config, v float64, seed uint64) (*model.Instance, error) {
	tc := topology.DefaultGen(cfg.N, cfg.M, cfg.Density)
	wc := workload.DefaultGen(cfg.K)
	switch cfg.Knob {
	case Channels:
		if v < 1 {
			return nil, fmt.Errorf("tuning: channels must be ≥ 1")
		}
		tc.Channels = int(v)
	case Bandwidth:
		if v <= 0 {
			return nil, fmt.Errorf("tuning: bandwidth must be positive")
		}
		tc.Bandwidth = units.Rate(v)
	case Radius:
		if v <= 0 {
			return nil, fmt.Errorf("tuning: radius must be positive")
		}
		tc.CoverageRadius = [2]units.Meters{units.Meters(v * 2 / 3), units.Meters(v * 4 / 3)}
	case Zipf:
		if v <= 0 {
			return nil, fmt.Errorf("tuning: skew must be positive")
		}
		wc.ZipfSkew = v
	case CloudRate:
		if v <= 0 {
			return nil, fmt.Errorf("tuning: cloud rate must be positive")
		}
		tc.CloudRate = units.Rate(v)
	}
	s := rng.New(seed)
	top, err := topology.Generate(tc, s.Split("topology"))
	if err != nil {
		return nil, err
	}
	wl, err := workload.Generate(wc, cfg.N, cfg.M, s.Split("workload"))
	if err != nil {
		return nil, err
	}
	return model.New(top, wl, radio.Default())
}

package topology

import (
	"bytes"
	"math"
	"testing"

	"idde/internal/geo"
	"idde/internal/graph"
	"idde/internal/rng"
	"idde/internal/units"
)

func genDefault(t *testing.T, n, m int, density float64, seed uint64) *Topology {
	t.Helper()
	top, err := Generate(DefaultGen(n, m, density), rng.New(seed))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return top
}

func TestGenerateBasicShape(t *testing.T) {
	top := genDefault(t, 30, 200, 1.0, 1)
	if top.N() != 30 || top.M() != 200 {
		t.Fatalf("N=%d M=%d", top.N(), top.M())
	}
	if top.TotalChannels() != 90 {
		t.Errorf("TotalChannels = %d, want 90", top.TotalChannels())
	}
	if top.Net.M() != 30 { // density 1.0 → 30 links
		t.Errorf("links = %d, want 30", top.Net.M())
	}
	if !top.Net.Connected() {
		t.Error("network not connected")
	}
}

func TestGenerateEveryUserCovered(t *testing.T) {
	top := genDefault(t, 25, 300, 1.4, 2)
	for j := 0; j < top.M(); j++ {
		if len(top.Coverage[j]) == 0 {
			t.Errorf("user %d has empty V_j", j)
		}
	}
}

func TestCoverageConsistency(t *testing.T) {
	top := genDefault(t, 20, 150, 1.0, 3)
	// V_j and U_i must be mutually consistent and match Covers().
	for j, vs := range top.Coverage {
		for _, i := range vs {
			if !top.Covers(i, j) {
				t.Fatalf("Coverage says %d covers %d but Covers disagrees", i, j)
			}
			found := false
			for _, u := range top.Covered[i] {
				if u == j {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("user %d in V_j of server %d but missing from U_i", j, i)
			}
		}
	}
	for i := range top.Servers {
		for _, j := range top.Covered[i] {
			if float64(top.Distance(i, j)) > float64(top.Servers[i].Radius) {
				t.Fatalf("covered user %d outside radius of server %d", j, i)
			}
		}
	}
}

func TestGenerateParameterRanges(t *testing.T) {
	top := genDefault(t, 40, 250, 2.0, 4)
	for _, sv := range top.Servers {
		if sv.Radius < 400 || sv.Radius > 800 {
			t.Errorf("server radius %v out of range", sv.Radius)
		}
		if sv.Channels != 3 || sv.Bandwidth != 200 {
			t.Errorf("server channels/bandwidth wrong: %+v", sv)
		}
		if !top.Region.Contains(sv.Pos) {
			t.Errorf("server outside region: %v", sv.Pos)
		}
	}
	for _, u := range top.Users {
		if u.Power < 1 || u.Power > 5 {
			t.Errorf("user power %v out of range", u.Power)
		}
		if u.MaxRate < 150 || u.MaxRate > 250 {
			t.Errorf("user max rate %v out of range", u.MaxRate)
		}
		if !top.Region.Contains(u.Pos) {
			t.Errorf("user outside region: %v", u.Pos)
		}
	}
	for _, e := range top.Net.Edges() {
		speed := 1 / float64(e.Cost)
		if speed < 2000-1e-6 || speed > 6000+1e-6 {
			t.Errorf("link speed %v out of range", speed)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := genDefault(t, 30, 200, 1.0, 7)
	b := genDefault(t, 30, 200, 1.0, 7)
	for i := range a.Servers {
		if a.Servers[i] != b.Servers[i] {
			t.Fatalf("server %d differs", i)
		}
	}
	for j := range a.Users {
		if a.Users[j] != b.Users[j] {
			t.Fatalf("user %d differs", j)
		}
	}
}

func TestGenerateSeedSensitive(t *testing.T) {
	a := genDefault(t, 30, 200, 1.0, 7)
	b := genDefault(t, 30, 200, 1.0, 8)
	same := 0
	for i := range a.Servers {
		if a.Servers[i].Pos == b.Servers[i].Pos {
			same++
		}
	}
	if same == len(a.Servers) {
		t.Error("different seeds produced identical server layout")
	}
}

func TestPathCostProperties(t *testing.T) {
	top := genDefault(t, 30, 100, 1.2, 9)
	n := top.N()
	for o := 0; o < n; o++ {
		if top.PathCost[o][o] != 0 {
			t.Errorf("self path cost %v", top.PathCost[o][o])
		}
		for i := 0; i < n; i++ {
			c := float64(top.PathCost[o][i])
			if math.IsInf(c, 1) {
				t.Fatalf("unreachable pair (%d,%d) in connected topology", o, i)
			}
			// Any path is at least as cheap as one max-speed hop and at
			// most the cloud would still dominate per Eq. 8 semantics
			// handled in model; here just check positivity.
			if o != i && c <= 0 {
				t.Errorf("non-positive path cost at (%d,%d)", o, i)
			}
		}
	}
	if top.CloudCost != units.PerMB(600) {
		t.Errorf("cloud cost %v", top.CloudCost)
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(DefaultGen(0, 10, 1), rng.New(1)); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := Generate(DefaultGen(10, -1, 1), rng.New(1)); err == nil {
		t.Error("M<0 accepted")
	}
	cfg := DefaultGen(10, 10, 1)
	cfg.Density = -1
	if _, err := Generate(cfg, rng.New(1)); err == nil {
		t.Error("negative density accepted")
	}
}

func TestFinalizeValidation(t *testing.T) {
	mk := func() *Topology {
		return &Topology{
			Region:    geo.Rect{MaxX: 100, MaxY: 100},
			Servers:   []Server{{ID: 0, Pos: geo.Point{X: 50, Y: 50}, Radius: 100, Channels: 2, Bandwidth: 200}},
			Users:     []User{{ID: 0, Pos: geo.Point{X: 60, Y: 50}, Power: 2, MaxRate: 200}},
			Net:       graph.New(1),
			CloudRate: 600,
		}
	}
	if err := mk().Finalize(); err != nil {
		t.Fatalf("valid topology rejected: %v", err)
	}
	bad := mk()
	bad.Net = nil
	if err := bad.Finalize(); err == nil {
		t.Error("nil net accepted")
	}
	bad = mk()
	bad.Net = graph.New(2)
	if err := bad.Finalize(); err == nil {
		t.Error("vertex-count mismatch accepted")
	}
	bad = mk()
	bad.Servers[0].Channels = 0
	if err := bad.Finalize(); err == nil {
		t.Error("zero channels accepted")
	}
	bad = mk()
	bad.Users[0].Power = 0
	if err := bad.Finalize(); err == nil {
		t.Error("zero power accepted")
	}
	bad = mk()
	bad.CloudRate = 0
	if err := bad.Finalize(); err == nil {
		t.Error("zero cloud rate accepted")
	}
	bad = mk()
	bad.Servers[0].ID = 5
	if err := bad.Finalize(); err == nil {
		t.Error("bad server id accepted")
	}
	// Disconnected network must be rejected.
	disc := &Topology{
		Region: geo.Rect{MaxX: 100, MaxY: 100},
		Servers: []Server{
			{ID: 0, Pos: geo.Point{X: 10, Y: 10}, Radius: 100, Channels: 1, Bandwidth: 200},
			{ID: 1, Pos: geo.Point{X: 90, Y: 90}, Radius: 100, Channels: 1, Bandwidth: 200},
		},
		Users:     nil,
		Net:       graph.New(2),
		CloudRate: 600,
	}
	if err := disc.Finalize(); err == nil {
		t.Error("disconnected network accepted")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	top := genDefault(t, 12, 40, 1.5, 11)
	var buf bytes.Buffer
	if err := top.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.N() != top.N() || got.M() != top.M() {
		t.Fatalf("round trip sizes differ")
	}
	for i := range top.Servers {
		if got.Servers[i] != top.Servers[i] {
			t.Errorf("server %d differs after round trip", i)
		}
	}
	for j := range top.Users {
		if got.Users[j] != top.Users[j] {
			t.Errorf("user %d differs after round trip", j)
		}
	}
	if got.Net.M() != top.Net.M() {
		t.Errorf("links differ: %d vs %d", got.Net.M(), top.Net.M())
	}
	// Derived state must be rebuilt identically (up to fp noise).
	for o := 0; o < top.N(); o++ {
		for i := 0; i < top.N(); i++ {
			a, b := float64(top.PathCost[o][i]), float64(got.PathCost[o][i])
			if math.Abs(a-b) > 1e-9*math.Max(1, a) {
				t.Fatalf("path cost differs at (%d,%d)", o, i)
			}
		}
	}
}

func TestFailedServerSemantics(t *testing.T) {
	top := genDefault(t, 10, 60, 1.0, 31)
	// Fail server 0 and refinalize with partition allowed.
	top.Servers[0].Failed = true
	top.AllowPartition = true
	if err := top.Finalize(); err != nil {
		t.Fatalf("Finalize with failed server: %v", err)
	}
	for j := 0; j < top.M(); j++ {
		if top.Covers(0, j) {
			t.Fatalf("failed server covers user %d", j)
		}
		for _, i := range top.Coverage[j] {
			if i == 0 {
				t.Fatalf("failed server in V_%d", j)
			}
		}
	}
	if len(top.Covered[0]) != 0 {
		t.Error("failed server has covered users")
	}
	// Failure flag survives JSON round trips.
	var buf bytes.Buffer
	if err := top.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Round trip may fail Finalize if partitioned; tolerate that by
	// checking the flag in the raw JSON instead.
	if !bytes.Contains(buf.Bytes(), []byte(`"failed": true`)) {
		t.Error("failed flag not serialized")
	}
}

func TestAllowPartition(t *testing.T) {
	top := &Topology{
		Region: geo.Rect{MaxX: 100, MaxY: 100},
		Servers: []Server{
			{ID: 0, Pos: geo.Point{X: 10, Y: 10}, Radius: 100, Channels: 1, Bandwidth: 200},
			{ID: 1, Pos: geo.Point{X: 90, Y: 90}, Radius: 100, Channels: 1, Bandwidth: 200},
		},
		Net:            graph.New(2),
		CloudRate:      600,
		AllowPartition: true,
	}
	if err := top.Finalize(); err != nil {
		t.Fatalf("partitioned topology rejected despite AllowPartition: %v", err)
	}
	if !math.IsInf(float64(top.PathCost[0][1]), 1) {
		t.Error("unreachable pair should cost +Inf")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("{")); err == nil {
		t.Error("garbage accepted")
	}
	// Valid JSON, invalid topology (no servers, nil graph vertices).
	if _, err := Load(bytes.NewBufferString(`{"servers":[],"users":[],"cloudRate":0,"links":[]}`)); err == nil {
		t.Error("invalid topology accepted")
	}
}

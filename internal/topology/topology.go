// Package topology models the physical layout of an edge storage
// system: edge servers with coverage disks and wireless channels, mobile
// users with transmit powers, and the wired inter-server network. It
// stands in for the EUA dataset the paper samples (125 servers and 816
// users in the Melbourne CBD) — see DESIGN.md §4 for the substitution
// rationale — and precomputes the coverage sets V_j / U_i and the
// all-pairs path costs that every IDDE algorithm consumes.
package topology

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"idde/internal/geo"
	"idde/internal/graph"
	"idde/internal/units"
)

// Server is an edge server v_i: a base station with storage, wireless
// channels and a radio footprint.
type Server struct {
	ID       int          `json:"id"`
	Pos      geo.Point    `json:"pos"`
	Radius   units.Meters `json:"radius"`
	Channels int          `json:"channels"`
	// Bandwidth is the per-channel bandwidth B_{i,x} (all channels of a
	// server share it, as in §4.2's "3 channels, each with a bandwidth
	// of 200MBps").
	Bandwidth units.Rate `json:"bandwidth"`
	// Failed marks a server that is down: it covers no users, serves no
	// replicas and forwards no traffic. Failure-injection scenarios set
	// it (internal/repair); generators never do.
	Failed bool `json:"failed,omitempty"`
}

// User is a mobile user u_j with a device transmit power p_j and the
// Shannon-constraint rate cap R_{j,max} of Eq. (4).
type User struct {
	ID      int         `json:"id"`
	Pos     geo.Point   `json:"pos"`
	Power   units.Watts `json:"power"`
	MaxRate units.Rate  `json:"maxRate"`
}

// Topology is an immutable scenario layout. Build one with the
// Generator or assemble the fields manually and call Finalize.
type Topology struct {
	Region  geo.Rect `json:"region"`
	Servers []Server `json:"servers"`
	Users   []User   `json:"users"`
	// Links carries the inter-server network; it is serialized as an
	// edge list.
	Net *graph.Graph `json:"-"`
	// CloudRate is the delivery speed from the remote cloud to any edge
	// server (600 MBps in §4.2).
	CloudRate units.Rate `json:"cloudRate"`
	// AllowPartition permits a disconnected wired network: unreachable
	// server pairs get +Inf path cost and Eq. 8 falls back to the
	// cloud. Failure-injection sets it; healthy topologies are rejected
	// when disconnected, since that indicates a generator bug.
	AllowPartition bool `json:"-"`

	// Derived state, populated by Finalize:

	// Coverage[j] lists the servers covering user j (the paper's V_j),
	// ascending by id.
	Coverage [][]int `json:"-"`
	// Covered[i] lists the users inside server i's footprint (U_i).
	Covered [][]int `json:"-"`
	// PathCost[o][i] is the cheapest per-MB transfer cost between
	// servers o and i over the wired network (the basis of Eq. 8's
	// L_{k,o,i}); +Inf when unreachable.
	PathCost [][]units.SecondsPerMB `json:"-"`
	// CloudCost is the per-MB cost of delivering from the cloud.
	CloudCost units.SecondsPerMB `json:"-"`

	// finalized records that Finalize ran since the last structural
	// mutation. Distances are not stored: an N×M matrix is the O(N·M)
	// wall that kept instances off the M≥10⁵ rungs, and Distance
	// recomputes the same geo.Dist expression on demand.
	finalized bool
}

// N reports the number of edge servers; M the number of users.
func (t *Topology) N() int { return len(t.Servers) }
func (t *Topology) M() int { return len(t.Users) }

// Finalized reports whether Finalize has validated this topology.
func (t *Topology) Finalized() bool { return t.finalized }

// Distance reports the server-user distance d(v_i, u_j) — the quantity
// channel gains are computed from (both the serving link g_{i,x,j} and
// the interference terms g_{i,x,t} of Eq. 2 need arbitrary server×user
// pairs). It is a pure function of the two positions, so computing it
// on demand is bit-identical to reading the dense matrix earlier
// revisions stored.
func (t *Topology) Distance(i, j int) units.Meters {
	return geo.Dist(t.Servers[i].Pos, t.Users[j].Pos)
}

// MaxRadius reports the largest server coverage radius (0 when there
// are no servers) — the reach bound sparse gain layouts derive their
// interference cutoff from.
func (t *Topology) MaxRadius() units.Meters {
	var rmax units.Meters
	for _, sv := range t.Servers {
		if sv.Radius > rmax {
			rmax = sv.Radius
		}
	}
	return rmax
}

// Finalize computes the derived state (coverage sets, path costs) and
// validates the layout. It must be called after any structural
// mutation.
func (t *Topology) Finalize() error {
	t.finalized = false
	if t.Net == nil {
		return errors.New("topology: nil network graph")
	}
	if t.Net.N() != len(t.Servers) {
		return fmt.Errorf("topology: network has %d vertices for %d servers", t.Net.N(), len(t.Servers))
	}
	if t.CloudRate <= 0 {
		return errors.New("topology: non-positive cloud rate")
	}
	for i, sv := range t.Servers {
		if sv.ID != i {
			return fmt.Errorf("topology: server %d has id %d", i, sv.ID)
		}
		if sv.Channels <= 0 {
			return fmt.Errorf("topology: server %d has %d channels", i, sv.Channels)
		}
		if sv.Bandwidth <= 0 || sv.Radius <= 0 {
			return fmt.Errorf("topology: server %d has non-positive bandwidth or radius", i)
		}
	}
	for j, u := range t.Users {
		if u.ID != j {
			return fmt.Errorf("topology: user %d has id %d", j, u.ID)
		}
		if u.Power <= 0 || u.MaxRate <= 0 {
			return fmt.Errorf("topology: user %d has non-positive power or max rate", j)
		}
	}

	// Coverage via the spatial hash: O(N·query) instead of the O(N·M)
	// scan. Each server asks the grid for the users inside its radius;
	// the inclusive boundary (≤ r) matches Covers and the old dense
	// scan. Covered lists are sorted ascending (Grid.Within order is
	// unspecified) and Coverage lists inherit ascending server order
	// from the outer loop.
	n, m := t.N(), t.M()
	t.Coverage = make([][]int, m)
	t.Covered = make([][]int, n)
	if m > 0 {
		cell := float64(t.MaxRadius())
		if cell <= 0 {
			cell = 1
		}
		grid := geo.NewGrid(cell)
		for j := 0; j < m; j++ {
			grid.Insert(j, t.Users[j].Pos)
		}
		for i := 0; i < n; i++ {
			if t.Servers[i].Failed {
				continue
			}
			// Within compares squared distances; Covers (and the old
			// dense scan) compare the hypot. Query with a hair of
			// margin and re-check with the exact Covers predicate so
			// boundary users land on the same side either way.
			us := grid.Within(t.Servers[i].Pos, t.Servers[i].Radius+1e-6)
			sort.Ints(us)
			kept := us[:0]
			for _, j := range us {
				if float64(t.Distance(i, j)) <= float64(t.Servers[i].Radius) {
					kept = append(kept, j)
				}
			}
			t.Covered[i] = kept
			for _, j := range kept {
				t.Coverage[j] = append(t.Coverage[j], i)
			}
		}
	}

	t.PathCost = t.Net.APSP()
	t.CloudCost = units.PerMB(t.CloudRate)
	if !t.AllowPartition {
		for o := range t.PathCost {
			for i := range t.PathCost[o] {
				if math.IsInf(float64(t.PathCost[o][i]), 1) {
					return fmt.Errorf("topology: servers %d and %d are disconnected", o, i)
				}
			}
		}
	}
	t.finalized = true
	return nil
}

// CoverageOf reports the servers covering user j (V_j).
func (t *Topology) CoverageOf(j int) []int { return t.Coverage[j] }

// Covers reports whether server i covers user j (failed servers cover
// nobody).
func (t *Topology) Covers(i, j int) bool {
	if t.Servers[i].Failed {
		return false
	}
	return float64(t.Distance(i, j)) <= float64(t.Servers[i].Radius)
}

// TotalChannels reports Σ_i |C_i|, the system's channel inventory.
func (t *Topology) TotalChannels() int {
	total := 0
	for _, sv := range t.Servers {
		total += sv.Channels
	}
	return total
}

// jsonTopology is the wire format: the graph becomes an edge list.
type jsonTopology struct {
	Region    geo.Rect   `json:"region"`
	Servers   []Server   `json:"servers"`
	Users     []User     `json:"users"`
	CloudRate units.Rate `json:"cloudRate"`
	Links     []jsonLink `json:"links"`
}

type jsonLink struct {
	U int `json:"u"`
	V int `json:"v"`
	// SpeedMBps is the link speed; stored as speed (not cost) for
	// human-editable files.
	SpeedMBps float64 `json:"speedMBps"`
}

// MarshalJSON encodes the topology including its link list.
func (t *Topology) MarshalJSON() ([]byte, error) {
	jt := jsonTopology{
		Region:    t.Region,
		Servers:   t.Servers,
		Users:     t.Users,
		CloudRate: t.CloudRate,
	}
	if t.Net != nil {
		for _, e := range t.Net.Edges() {
			jt.Links = append(jt.Links, jsonLink{U: e.U, V: e.V, SpeedMBps: 1 / float64(e.Cost)})
		}
	}
	return json.Marshal(jt)
}

// UnmarshalJSON decodes a topology and finalizes it.
func (t *Topology) UnmarshalJSON(data []byte) error {
	var jt jsonTopology
	if err := json.Unmarshal(data, &jt); err != nil {
		return err
	}
	t.Region = jt.Region
	t.Servers = jt.Servers
	t.Users = jt.Users
	t.CloudRate = jt.CloudRate
	t.Net = graph.New(len(jt.Servers))
	for _, l := range jt.Links {
		t.Net.AddEdge(l.U, l.V, units.PerMB(units.Rate(l.SpeedMBps)))
	}
	return t.Finalize()
}

// Save writes the topology as JSON.
func (t *Topology) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// Load reads a topology from JSON and finalizes it.
func Load(r io.Reader) (*Topology, error) {
	var t Topology
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, err
	}
	return &t, nil
}

package topology

import (
	"fmt"
	"math"

	"idde/internal/geo"
	"idde/internal/graph"
	"idde/internal/rng"
	"idde/internal/units"
)

// GenConfig parametrizes the synthetic EUA-like layout generator. The
// defaults mirror the paper's experimental settings (§4.2–§4.3): edge
// servers scattered over a CBD-scale region, each with 3 channels of
// 200 MBps; users with powers in [1,5] W; inter-server link speeds in
// [2000,6000] MBps; cloud delivery at 600 MBps; density·N random links.
type GenConfig struct {
	Servers int     // N
	Users   int     // M
	Density float64 // links = round(Density·N), clamped to keep connectivity

	Region geo.Rect // deployment area (meters)

	CoverageRadius [2]units.Meters // per-server radius, uniform range
	Channels       int             // |C_i| for every server
	Bandwidth      units.Rate      // B_{i,x}

	UserPower [2]units.Watts // p_j, uniform range
	MaxRate   [2]units.Rate  // R_{j,max}, uniform range

	// ClusterFraction of users are dropped inside a random server's
	// footprint (hot spots around base stations, as in urban EUA data);
	// the rest are uniform over the region but resampled until covered
	// by at least one server, since EUA users lie within coverage.
	ClusterFraction float64

	LinkSpeed [2]units.Rate // inter-server link speeds
	CloudRate units.Rate    // edge↔cloud delivery speed
}

// DefaultGen returns the §4.2 configuration for a given problem size.
// The region is sized so that average server spacing stays realistic as
// N varies (the paper subsamples a fixed 125-server region; we emulate
// that by keeping the region fixed at the full EUA-like extent).
func DefaultGen(servers, users int, density float64) GenConfig {
	return GenConfig{
		Servers:         servers,
		Users:           users,
		Density:         density,
		Region:          geo.Rect{MinX: 0, MinY: 0, MaxX: 3500, MaxY: 2500},
		CoverageRadius:  [2]units.Meters{400, 800},
		Channels:        3,
		Bandwidth:       200,
		UserPower:       [2]units.Watts{1, 5},
		MaxRate:         [2]units.Rate{150, 250},
		ClusterFraction: 0.6,
		LinkSpeed:       [2]units.Rate{2000, 6000},
		CloudRate:       600,
	}
}

// Generate builds a finalized topology from cfg using the stream s. All
// draws come from labeled sub-streams, so e.g. enlarging the user count
// does not reshuffle server positions.
func Generate(cfg GenConfig, s *rng.Stream) (*Topology, error) {
	if cfg.Servers <= 0 || cfg.Users < 0 {
		return nil, fmt.Errorf("topology: invalid sizes N=%d M=%d", cfg.Servers, cfg.Users)
	}
	if cfg.Density < 0 {
		return nil, fmt.Errorf("topology: negative density %v", cfg.Density)
	}
	t := &Topology{
		Region:    cfg.Region,
		CloudRate: cfg.CloudRate,
	}

	placeServers(t, cfg, s.Split("servers"))
	if err := placeUsers(t, cfg, s.Split("users")); err != nil {
		return nil, err
	}

	links := int(math.Round(cfg.Density * float64(cfg.Servers)))
	t.Net = graph.RandomConnected(cfg.Servers, links, cfg.LinkSpeed[0], cfg.LinkSpeed[1], s.Split("links"))

	if err := t.Finalize(); err != nil {
		return nil, err
	}
	return t, nil
}

// placeServers drops servers on a jittered grid: cell centers perturbed
// by up to 40% of the cell pitch, which reproduces the quasi-regular
// base-station layouts of urban datasets while avoiding degenerate
// co-located servers.
func placeServers(t *Topology, cfg GenConfig, s *rng.Stream) {
	n := cfg.Servers
	w, h := cfg.Region.Width(), cfg.Region.Height()
	cols := int(math.Ceil(math.Sqrt(float64(n) * w / h)))
	if cols < 1 {
		cols = 1
	}
	rows := (n + cols - 1) / cols
	cellW, cellH := w/float64(cols), h/float64(rows)
	cells := s.Perm(cols * rows)
	t.Servers = make([]Server, n)
	for i := 0; i < n; i++ {
		c := cells[i]
		cx := cfg.Region.MinX + (float64(c%cols)+0.5)*cellW
		cy := cfg.Region.MinY + (float64(c/cols)+0.5)*cellH
		jx := s.Uniform(-0.4, 0.4) * cellW
		jy := s.Uniform(-0.4, 0.4) * cellH
		t.Servers[i] = Server{
			ID:        i,
			Pos:       cfg.Region.Clamp(geo.Point{X: cx + jx, Y: cy + jy}),
			Radius:    units.Meters(s.Uniform(float64(cfg.CoverageRadius[0]), float64(cfg.CoverageRadius[1]))),
			Channels:  cfg.Channels,
			Bandwidth: cfg.Bandwidth,
		}
	}
}

// placeUsers mixes clustered and uniform user positions, guaranteeing
// every user lies inside at least one coverage disk. The covered checks
// run against a spatial hash of the server centers — an existence test,
// so the grid's unspecified neighbour order cannot perturb the draw
// sequence — keeping placement O(M) instead of O(N·M) at the scaling
// rungs.
func placeUsers(t *Topology, cfg GenConfig, s *rng.Stream) error {
	var rmax float64
	for _, sv := range t.Servers {
		if r := float64(sv.Radius); r > rmax {
			rmax = r
		}
	}
	cell := rmax
	if cell <= 0 {
		cell = 1
	}
	grid := geo.NewGrid(cell)
	for i, sv := range t.Servers {
		grid.Insert(i, sv.Pos)
	}
	covered := func(p geo.Point) bool {
		for _, i := range grid.Within(p, units.Meters(rmax)) {
			sv := t.Servers[i]
			if (geo.Disk{Center: sv.Pos, Radius: sv.Radius}).Covers(p) {
				return true
			}
		}
		return false
	}

	m := cfg.Users
	t.Users = make([]User, m)
	const maxTries = 10000
	for j := 0; j < m; j++ {
		var pos geo.Point
		if s.Bool(cfg.ClusterFraction) {
			// Hot-spot user: uniform within a random server's disk.
			sv := t.Servers[s.IntN(len(t.Servers))]
			r := float64(sv.Radius) * math.Sqrt(s.Float64()) // area-uniform
			theta := s.Uniform(0, 2*math.Pi)
			pos = cfg.Region.Clamp(geo.Point{
				X: sv.Pos.X + r*math.Cos(theta),
				Y: sv.Pos.Y + r*math.Sin(theta),
			})
			// Clamping can push the point outside every disk in corner
			// cases; fall through to the covered check below.
			if !covered(pos) {
				pos = sv.Pos // degenerate but always covered
			}
		} else {
			ok := false
			for try := 0; try < maxTries; try++ {
				pos = geo.Point{
					X: s.Uniform(cfg.Region.MinX, cfg.Region.MaxX),
					Y: s.Uniform(cfg.Region.MinY, cfg.Region.MaxY),
				}
				if covered(pos) {
					ok = true
					break
				}
			}
			if !ok {
				return fmt.Errorf("topology: could not place covered user %d (coverage too sparse)", j)
			}
		}
		t.Users[j] = User{
			ID:      j,
			Pos:     pos,
			Power:   units.Watts(s.Uniform(float64(cfg.UserPower[0]), float64(cfg.UserPower[1]))),
			MaxRate: units.Rate(s.Uniform(float64(cfg.MaxRate[0]), float64(cfg.MaxRate[1]))),
		}
	}
	return nil
}

// Package viz renders the evaluation's figures as plain-text charts so
// the CLI tools can show a figure's *shape* directly in the terminal —
// no plotting stack required. Line plots cover Figures 3–6, bar charts
// Figures 1 and 7, and sparklines decorate tables.
package viz

import (
	"fmt"
	"math"
	"strings"
)

// Series is one labeled line of a plot.
type Series struct {
	Label string
	Y     []float64
}

// markers distinguish series in a line plot, in legend order.
var markers = []rune{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// LinePlot renders series sharing the x axis into a width×height
// character grid with y-axis labels and a legend. Non-finite values are
// skipped. It panics if a series length differs from len(xs).
func LinePlot(title, xLabel string, xs []float64, series []Series, width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	for _, s := range series {
		if len(s.Y) != len(xs) {
			panic(fmt.Sprintf("viz: series %q has %d points for %d x values", s.Label, len(s.Y), len(xs)))
		}
	}

	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, v := range s.Y {
			if !finite(v) {
				continue
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if math.IsInf(lo, 1) { // nothing plottable
		lo, hi = 0, 1
	}
	if hi == lo {
		hi = lo + 1
	}

	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	xAt := func(i int) int {
		if len(xs) == 1 {
			return 0
		}
		return int(math.Round(float64(i) / float64(len(xs)-1) * float64(width-1)))
	}
	yAt := func(v float64) int {
		frac := (v - lo) / (hi - lo)
		return (height - 1) - int(math.Round(frac*float64(height-1)))
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for i, v := range s.Y {
			if !finite(v) {
				continue
			}
			grid[yAt(v)][xAt(i)] = m
		}
	}

	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	yLab := func(row int) string {
		frac := float64(height-1-row) / float64(height-1)
		return fmt.Sprintf("%10.2f", lo+frac*(hi-lo))
	}
	for r := 0; r < height; r++ {
		fmt.Fprintf(&b, "%s |%s|\n", yLab(r), string(grid[r]))
	}
	fmt.Fprintf(&b, "%10s +%s+\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%10s  %-*g%*g  (%s)\n", "", width/2, xs[0], width-width/2, xs[len(xs)-1], xLabel)
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Label))
	}
	fmt.Fprintf(&b, "%10s  %s\n", "", strings.Join(legend, "   "))
	return b.String()
}

// BarChart renders one bar per label, scaled to width characters.
// Negative and non-finite values render as empty bars.
func BarChart(title string, labels []string, values []float64, width int) string {
	if len(labels) != len(values) {
		panic(fmt.Sprintf("viz: %d labels for %d values", len(labels), len(values)))
	}
	if width < 8 {
		width = 8
	}
	maxV := 0.0
	labW := 0
	for i, v := range values {
		if finite(v) && v > maxV {
			maxV = v
		}
		if len(labels[i]) > labW {
			labW = len(labels[i])
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for i, v := range values {
		n := 0
		if maxV > 0 && finite(v) && v > 0 {
			n = int(math.Round(v / maxV * float64(width)))
		}
		fmt.Fprintf(&b, "%-*s |%-*s| %.4g\n", labW, labels[i], width, strings.Repeat("█", n), v)
	}
	return b.String()
}

// sparkRunes are eight fill levels.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a compact bar string; empty input yields
// an empty string, non-finite values render as spaces.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if finite(v) {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if math.IsInf(lo, 1) {
		return strings.Repeat(" ", len(values))
	}
	out := make([]rune, len(values))
	for i, v := range values {
		if !finite(v) {
			out[i] = ' '
			continue
		}
		frac := 1.0
		if hi > lo {
			frac = (v - lo) / (hi - lo)
		}
		idx := int(frac * float64(len(sparkRunes)-1))
		out[i] = sparkRunes[idx]
	}
	return string(out)
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

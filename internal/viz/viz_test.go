package viz

import (
	"math"
	"strings"
	"testing"
)

func TestLinePlotBasics(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	out := LinePlot("test plot", "N", xs, []Series{
		{Label: "up", Y: []float64{1, 2, 3, 4}},
		{Label: "down", Y: []float64{4, 3, 2, 1}},
	}, 40, 10)
	if !strings.Contains(out, "test plot") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "* up") || !strings.Contains(out, "o down") {
		t.Error("legend missing")
	}
	if !strings.Contains(out, "(N)") {
		t.Error("x label missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + height rows + axis + xlabels + legend
	if len(lines) != 1+10+3 {
		t.Errorf("line count = %d", len(lines))
	}
	// The increasing series puts a '*' in the top row (max) and the
	// decreasing an 'o' there too (its max is at x=0).
	top := lines[1]
	if !strings.Contains(top, "*") || !strings.Contains(top, "o") {
		t.Errorf("top row missing extremes: %q", top)
	}
}

func TestLinePlotMonotoneGeometry(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5}
	ys := []float64{0, 1, 2, 3, 4, 5}
	out := LinePlot("", "x", xs, []Series{{Label: "s", Y: ys}}, 30, 8)
	lines := strings.Split(out, "\n")
	// For an increasing series, marker columns must increase with row
	// depth reversed: find per-row marker column.
	prevCol := 1 << 30
	for _, ln := range lines[:8] {
		idx := strings.IndexRune(ln, '*')
		if idx < 0 {
			continue
		}
		if idx >= prevCol {
			t.Fatalf("increasing series not monotone in plot:\n%s", out)
		}
		prevCol = idx
	}
}

func TestLinePlotHandlesDegenerates(t *testing.T) {
	// Constant series, NaN and Inf values must not panic.
	out := LinePlot("", "x", []float64{1, 2, 3}, []Series{
		{Label: "const", Y: []float64{5, 5, 5}},
		{Label: "bad", Y: []float64{math.NaN(), math.Inf(1), 5}},
	}, 20, 5)
	if out == "" {
		t.Fatal("empty output")
	}
	// Single point.
	if LinePlot("", "x", []float64{1}, []Series{{Label: "p", Y: []float64{2}}}, 16, 4) == "" {
		t.Fatal("single point failed")
	}
	// All-NaN series.
	if LinePlot("", "x", []float64{1, 2}, []Series{{Label: "n", Y: []float64{math.NaN(), math.NaN()}}}, 16, 4) == "" {
		t.Fatal("all-NaN failed")
	}
}

func TestLinePlotPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	LinePlot("", "x", []float64{1, 2}, []Series{{Label: "s", Y: []float64{1}}}, 20, 5)
}

func TestBarChart(t *testing.T) {
	out := BarChart("times", []string{"IDDE-IP", "IDDE-G"}, []float64{1.0, 0.5}, 20)
	if !strings.Contains(out, "times") || !strings.Contains(out, "IDDE-IP") {
		t.Error("labels missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	barLen := func(s string) int { return strings.Count(s, "█") }
	if barLen(lines[1]) != 20 {
		t.Errorf("max bar = %d, want 20", barLen(lines[1]))
	}
	if barLen(lines[2]) != 10 {
		t.Errorf("half bar = %d, want 10", barLen(lines[2]))
	}
}

func TestBarChartDegenerates(t *testing.T) {
	out := BarChart("", []string{"a", "b"}, []float64{0, math.NaN()}, 10)
	if strings.Count(out, "█") != 0 {
		t.Error("zero/NaN values drew bars")
	}
	defer func() {
		if recover() == nil {
			t.Error("no panic on mismatch")
		}
	}()
	BarChart("", []string{"a"}, []float64{1, 2}, 10)
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Fatalf("length = %d", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[3] != '█' {
		t.Errorf("extremes wrong: %q", s)
	}
	if Sparkline(nil) != "" {
		t.Error("empty input should yield empty string")
	}
	if got := Sparkline([]float64{5, 5}); got != "██" {
		t.Errorf("constant sparkline = %q", got)
	}
	if got := Sparkline([]float64{math.NaN(), 1}); []rune(got)[0] != ' ' {
		t.Errorf("NaN sparkline = %q", got)
	}
}

// Package mobility implements the paper's stated future work (§6):
// "the dynamics of user movements and data migrations in IDDE
// scenarios". It advances a scenario through epochs of a random-waypoint
// mobility model, re-formulates the IDDE strategy each epoch, and
// accounts for the data migration the changing delivery profile implies
// — the volume shipped between edge servers and the wall-clock cost of
// shipping it over the same wired links Eq. 8 routes over.
package mobility

import (
	"fmt"
	"math"

	"idde/internal/geo"
	"idde/internal/model"
	"idde/internal/radio"
	"idde/internal/rng"
	"idde/internal/topology"
	"idde/internal/workload"
)

// Config parametrizes an epoch simulation.
type Config struct {
	// Epochs is the number of re-formulation rounds after the initial
	// one.
	Epochs int
	// EpochSeconds is the wall-clock length of one epoch.
	EpochSeconds float64
	// Speed is the [min,max] user speed in m/s (pedestrians ≈ 0.5–2,
	// vehicles ≈ 5–20).
	Speed [2]float64
	// Pause is the probability a user rests for a whole epoch.
	Pause float64
	// StickyDelivery freezes the delivery profile after epoch 0: only
	// the user allocation re-runs, trading delivery latency for zero
	// migration traffic. The default re-solves both phases each epoch.
	StickyDelivery bool
}

// DefaultConfig is a pedestrian scenario with one-minute epochs.
func DefaultConfig() Config {
	return Config{Epochs: 10, EpochSeconds: 60, Speed: [2]float64{0.5, 2.0}, Pause: 0.2}
}

// Epoch reports one epoch's outcome.
type Epoch struct {
	Epoch int
	// RateMBps and LatencyMs are the two IDDE objectives this epoch.
	RateMBps  float64
	LatencyMs float64
	// Handover counts users whose serving server changed since the
	// previous epoch.
	Handover int
	// Uncovered counts users outside every server's footprint (they
	// fetch from the cloud until they wander back).
	Uncovered int
	// MigratedMB is the replica volume shipped between edge servers or
	// from the cloud to realize this epoch's delivery profile.
	MigratedMB float64
	// MigrationSeconds is the time to ship that volume over the
	// cheapest paths (transfers in parallel; this is the max, i.e. the
	// reconfiguration makespan).
	MigrationSeconds float64
	// Replicas is the delivery profile size this epoch.
	Replicas int
}

// Solver formulates a strategy for an instance (typically IDDE-G, but
// any baseline fits).
type Solver func(in *model.Instance) model.Strategy

// waypoint is per-user random-waypoint state.
type waypoint struct {
	target geo.Point
	speed  float64
	pause  bool
}

// Simulate runs the epoch loop. The topology's users move; servers,
// links and the workload stay fixed. The returned slice has
// cfg.Epochs+1 entries (epoch 0 is the initial formulation).
func Simulate(top *topology.Topology, wl *workload.Workload, solve Solver, cfg Config, s *rng.Stream) ([]Epoch, error) {
	if cfg.Epochs < 0 {
		return nil, fmt.Errorf("mobility: negative epoch count")
	}
	if cfg.EpochSeconds <= 0 {
		return nil, fmt.Errorf("mobility: non-positive epoch length")
	}
	if cfg.Speed[1] < cfg.Speed[0] || cfg.Speed[0] < 0 {
		return nil, fmt.Errorf("mobility: bad speed range %v", cfg.Speed)
	}

	cur := cloneTopology(top)
	if err := cur.Finalize(); err != nil {
		return nil, err
	}
	move := s.Split("waypoints")
	wps := make([]waypoint, len(cur.Users))
	for j := range wps {
		wps[j] = newWaypoint(cur.Region, cfg, move.SplitN("user", j))
	}

	var out []Epoch
	var prev model.Strategy
	var prevAlloc model.Allocation
	havePrev := false

	for e := 0; e <= cfg.Epochs; e++ {
		if e > 0 {
			for j := range cur.Users {
				wps[j].step(&cur.Users[j].Pos, cur.Region, cfg, move.SplitN("step", e*len(wps)+j))
			}
			if err := cur.Finalize(); err != nil {
				return nil, err
			}
		}
		in, err := model.New(cur, wl, radio.Default())
		if err != nil {
			return nil, err
		}

		var st model.Strategy
		if cfg.StickyDelivery && havePrev {
			st = solve(in)
			st.Delivery = prev.Delivery // freeze σ from epoch 0
		} else {
			st = solve(in)
		}

		ep := Epoch{Epoch: e, Replicas: st.Delivery.Count()}
		rate, lat := in.Evaluate(st)
		ep.RateMBps = float64(rate)
		ep.LatencyMs = lat.Millis()
		for j := range cur.Users {
			if len(cur.Coverage[j]) == 0 {
				ep.Uncovered++
			}
		}
		if havePrev {
			ep.Handover = countHandovers(prevAlloc, st.Alloc)
			ep.MigratedMB, ep.MigrationSeconds = migrationCost(in, prev.Delivery, st.Delivery)
		}
		out = append(out, ep)
		prev = st
		prevAlloc = st.Alloc.Clone()
		havePrev = true
	}
	return out, nil
}

// cloneTopology deep-copies the mutable parts of a topology (user
// positions change every epoch); the wired network is immutable across
// epochs and is shared.
func cloneTopology(top *topology.Topology) *topology.Topology {
	return &topology.Topology{
		Region:         top.Region,
		Servers:        append([]topology.Server(nil), top.Servers...),
		Users:          append([]topology.User(nil), top.Users...),
		Net:            top.Net,
		CloudRate:      top.CloudRate,
		AllowPartition: top.AllowPartition,
	}
}

func newWaypoint(region geo.Rect, cfg Config, s *rng.Stream) waypoint {
	return waypoint{
		target: geo.Point{X: s.Uniform(region.MinX, region.MaxX), Y: s.Uniform(region.MinY, region.MaxY)},
		speed:  s.Uniform(cfg.Speed[0], cfg.Speed[1]),
		pause:  s.Bool(cfg.Pause),
	}
}

// step advances a user toward its waypoint for one epoch; on arrival a
// fresh waypoint (and speed) is drawn.
func (w *waypoint) step(pos *geo.Point, region geo.Rect, cfg Config, s *rng.Stream) {
	if w.pause {
		w.pause = s.Bool(cfg.Pause)
		return
	}
	budget := w.speed * cfg.EpochSeconds
	for budget > 0 {
		dx := w.target.X - pos.X
		dy := w.target.Y - pos.Y
		dist := math.Hypot(dx, dy)
		if dist <= budget {
			*pos = w.target
			budget -= dist
			w.target = geo.Point{X: s.Uniform(region.MinX, region.MaxX), Y: s.Uniform(region.MinY, region.MaxY)}
			w.speed = s.Uniform(cfg.Speed[0], cfg.Speed[1])
			if s.Bool(cfg.Pause) {
				w.pause = true
				return
			}
			continue
		}
		pos.X += dx / dist * budget
		pos.Y += dy / dist * budget
		budget = 0
	}
	*pos = region.Clamp(*pos)
}

func countHandovers(prev, next model.Allocation) int {
	n := 0
	for j := range next {
		if prev[j].Server != next[j].Server {
			n++
		}
	}
	return n
}

// migrationCost computes what realizing `next` from `prev` ships: every
// replica present in next but not in prev moves from the nearest
// previous holder of the item (or the cloud if no edge server held it).
// Transfers run in parallel; the reported time is the slowest one.
func migrationCost(in *model.Instance, prev, next *model.Delivery) (mb float64, seconds float64) {
	for i := 0; i < in.N(); i++ {
		for k := 0; k < in.K(); k++ {
			if !next.Placed(i, k) || prev.Placed(i, k) {
				continue
			}
			size := in.Wl.Items[k].Size
			mb += float64(size)
			best := in.CloudLatency(k)
			for o := 0; o < in.N(); o++ {
				if prev.Placed(o, k) {
					if l := in.EdgeLatency(k, o, i); l < best {
						best = l
					}
				}
			}
			if float64(best) > seconds {
				seconds = float64(best)
			}
		}
	}
	return mb, seconds
}

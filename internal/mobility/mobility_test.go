package mobility

import (
	"testing"

	"idde/internal/core"
	"idde/internal/geo"
	"idde/internal/model"
	"idde/internal/rng"
	"idde/internal/topology"
	"idde/internal/workload"
)

func scenario(t *testing.T, n, m, k int, seed uint64) (*topology.Topology, *workload.Workload) {
	t.Helper()
	s := rng.New(seed)
	top, err := topology.Generate(topology.DefaultGen(n, m, 1.2), s.Split("top"))
	if err != nil {
		t.Fatalf("topology: %v", err)
	}
	wl, err := workload.Generate(workload.DefaultGen(k), n, m, s.Split("wl"))
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	return top, wl
}

func iddegSolver(in *model.Instance) model.Strategy {
	return core.Solve(in, core.DefaultOptions()).Strategy
}

func TestSimulateEpochShape(t *testing.T) {
	top, wl := scenario(t, 12, 60, 4, 1)
	eps, err := Simulate(top, wl, iddegSolver, Config{
		Epochs: 4, EpochSeconds: 60, Speed: [2]float64{1, 3}, Pause: 0.1,
	}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(eps) != 5 {
		t.Fatalf("epochs = %d", len(eps))
	}
	for i, ep := range eps {
		if ep.Epoch != i {
			t.Errorf("epoch %d labeled %d", i, ep.Epoch)
		}
		if ep.RateMBps <= 0 {
			t.Errorf("epoch %d: no rate", i)
		}
		if ep.LatencyMs < 0 {
			t.Errorf("epoch %d: negative latency", i)
		}
		if ep.Replicas <= 0 {
			t.Errorf("epoch %d: no replicas", i)
		}
	}
	// Epoch 0 has no predecessor, so no handovers or migration.
	if eps[0].Handover != 0 || eps[0].MigratedMB != 0 {
		t.Errorf("epoch 0 reports churn: %+v", eps[0])
	}
}

func TestMovementCausesChurn(t *testing.T) {
	top, wl := scenario(t, 12, 80, 4, 3)
	// Vehicle speeds over long epochs: users cross multiple cells, so
	// some handover must occur across 5 epochs.
	eps, err := Simulate(top, wl, iddegSolver, Config{
		Epochs: 5, EpochSeconds: 120, Speed: [2]float64{10, 20},
	}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	totalHandover := 0
	for _, ep := range eps[1:] {
		totalHandover += ep.Handover
	}
	if totalHandover == 0 {
		t.Error("fast movement produced zero handovers")
	}
}

func TestImmobileUsersNoChurn(t *testing.T) {
	top, wl := scenario(t, 10, 50, 3, 5)
	eps, err := Simulate(top, wl, iddegSolver, Config{
		Epochs: 3, EpochSeconds: 60, Speed: [2]float64{0, 0},
	}, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	for _, ep := range eps[1:] {
		if ep.Handover != 0 {
			t.Errorf("epoch %d: handovers without movement", ep.Epoch)
		}
		if ep.MigratedMB != 0 {
			t.Errorf("epoch %d: migration without movement (%v MB)", ep.Epoch, ep.MigratedMB)
		}
	}
}

func TestStickyDeliveryEliminatesMigration(t *testing.T) {
	top, wl := scenario(t, 12, 80, 4, 7)
	cfg := Config{Epochs: 4, EpochSeconds: 120, Speed: [2]float64{5, 15}}
	resolved, err := Simulate(top, wl, iddegSolver, cfg, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	cfg.StickyDelivery = true
	sticky, err := Simulate(top, wl, iddegSolver, cfg, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	var stickyMB, resolvedLat, stickyLat float64
	for i := range sticky[1:] {
		stickyMB += sticky[i+1].MigratedMB
		resolvedLat += resolved[i+1].LatencyMs
		stickyLat += sticky[i+1].LatencyMs
	}
	if stickyMB != 0 {
		t.Errorf("sticky delivery migrated %v MB", stickyMB)
	}
	// Freezing σ cannot beat re-solving on latency (same allocation
	// dynamics, strictly fewer degrees of freedom).
	if stickyLat < resolvedLat-1e-9 {
		t.Errorf("sticky latency %v beat re-solved %v", stickyLat, resolvedLat)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	top, wl := scenario(t, 10, 40, 3, 9)
	cfg := DefaultConfig()
	cfg.Epochs = 3
	a, err := Simulate(top, wl, iddegSolver, cfg, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(top, wl, iddegSolver, cfg, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("epoch %d differs across identical runs", i)
		}
	}
}

func TestSimulateDoesNotMutateInput(t *testing.T) {
	top, wl := scenario(t, 10, 40, 3, 11)
	before := make([]geo.Point, len(top.Users))
	for j, u := range top.Users {
		before[j] = u.Pos
	}
	if _, err := Simulate(top, wl, iddegSolver, DefaultConfig(), rng.New(12)); err != nil {
		t.Fatal(err)
	}
	for j, u := range top.Users {
		if u.Pos != before[j] {
			t.Fatalf("user %d position mutated", j)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	top, wl := scenario(t, 8, 20, 2, 13)
	if _, err := Simulate(top, wl, iddegSolver, Config{Epochs: -1, EpochSeconds: 1, Speed: [2]float64{0, 1}}, rng.New(1)); err == nil {
		t.Error("negative epochs accepted")
	}
	if _, err := Simulate(top, wl, iddegSolver, Config{Epochs: 1, EpochSeconds: 0, Speed: [2]float64{0, 1}}, rng.New(1)); err == nil {
		t.Error("zero epoch length accepted")
	}
	if _, err := Simulate(top, wl, iddegSolver, Config{Epochs: 1, EpochSeconds: 1, Speed: [2]float64{5, 1}}, rng.New(1)); err == nil {
		t.Error("inverted speed range accepted")
	}
}

func TestUsersStayInRegion(t *testing.T) {
	top, wl := scenario(t, 10, 60, 3, 15)
	region := top.Region
	solve := func(in *model.Instance) model.Strategy {
		for _, u := range in.Top.Users {
			if !region.Contains(u.Pos) {
				t.Fatalf("user left the region: %v", u.Pos)
			}
		}
		return iddegSolver(in)
	}
	if _, err := Simulate(top, wl, solve, Config{
		Epochs: 5, EpochSeconds: 300, Speed: [2]float64{10, 20},
	}, rng.New(16)); err != nil {
		t.Fatal(err)
	}
}

// Package vendor models the storage competition the paper's
// introduction motivates: multiple app vendors (Facebook, Nintendo, …)
// rent slices of the same edge storage system, so no vendor can assume
// "there will always be adequate storage resources on edge servers for
// hire". Users are partitioned among vendors (each vendor serves its own
// subscribers with its own catalog); the wireless side is shared — every
// vendor's users interfere with everyone — while the storage side is
// contested per server.
//
// Three reservation-splitting policies are provided:
//
//   - EvenSplit:     each server's reservation is divided equally.
//   - Proportional:  divided in proportion to each vendor's demand from
//     the server's coverage area.
//   - Draft:         vendors alternate claiming their current best
//     replica (highest Eq. 17 gain-per-MB) out of the
//     shared pool until nothing fits — a greedy auction.
//
// The user allocation game runs once, globally (interference does not
// care who a user subscribes to); each vendor then receives its own
// delivery profile and per-vendor objectives.
package vendor

import (
	"fmt"

	"idde/internal/core"
	"idde/internal/model"
	"idde/internal/rng"
	"idde/internal/units"
)

// SplitPolicy selects how contested per-server storage is divided.
type SplitPolicy int

const (
	EvenSplit SplitPolicy = iota
	Proportional
	Draft
)

func (p SplitPolicy) String() string {
	switch p {
	case EvenSplit:
		return "even-split"
	case Proportional:
		return "proportional"
	case Draft:
		return "draft"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Assignment partitions an instance's users and items among vendors.
type Assignment struct {
	// Vendors is the number of competing vendors V.
	Vendors int
	// UserOwner[j] ∈ [0,V) is user j's vendor.
	UserOwner []int
	// ItemOwner[k] ∈ [0,V) is item k's vendor; users only request their
	// own vendor's items for the assignment to be coherent.
	ItemOwner []int
}

// RandomAssignment partitions users uniformly and derives item owners
// from majority demand; requests crossing vendors are reported as an
// error since real vendor catalogs are disjoint. Use SplitInstance for
// a guaranteed-coherent partition.
func RandomAssignment(in *model.Instance, vendors int, s *rng.Stream) (*Assignment, error) {
	if vendors <= 0 {
		return nil, fmt.Errorf("vendor: need at least one vendor")
	}
	a := &Assignment{
		Vendors:   vendors,
		UserOwner: make([]int, in.M()),
		ItemOwner: make([]int, in.K()),
	}
	// Assign items round-robin, then users to the vendor owning their
	// first requested item (guaranteeing coherence for single-item
	// users; multi-item users keep only coherent requests in scoring).
	for k := 0; k < in.K(); k++ {
		a.ItemOwner[k] = k % vendors
	}
	for j := 0; j < in.M(); j++ {
		reqs := in.Wl.Requests[j]
		if len(reqs) == 0 {
			a.UserOwner[j] = s.IntN(vendors)
			continue
		}
		a.UserOwner[j] = a.ItemOwner[reqs[s.IntN(len(reqs))]]
	}
	return a, nil
}

// VendorMetrics reports one vendor's outcome.
type VendorMetrics struct {
	Vendor int
	Users  int
	// RateMBps is the mean rate over the vendor's users.
	RateMBps float64
	// LatencyMs is the mean latency over the vendor's coherent requests
	// (requests for its own items).
	LatencyMs float64
	// ReservedMB is the storage the policy granted the vendor.
	ReservedMB float64
	// Replicas the vendor placed.
	Replicas int
}

// Result is the outcome of a competition round.
type Result struct {
	Policy    SplitPolicy
	PerVendor []VendorMetrics
	// JainRate is Jain's fairness index over vendor rates (1 = fair).
	JainRate float64
	// SystemLatencyMs is the demand-weighted mean latency.
	SystemLatencyMs float64
}

// Compete runs the shared allocation game and the chosen storage split.
func Compete(in *model.Instance, a *Assignment, policy SplitPolicy) (*Result, error) {
	if err := validate(in, a); err != nil {
		return nil, err
	}
	alloc := core.Solve(in, core.DefaultOptions()).Strategy.Alloc

	shares, err := splitCapacity(in, a, policy, alloc)
	if err != nil {
		return nil, err
	}

	res := &Result{Policy: policy, PerVendor: make([]VendorMetrics, a.Vendors)}
	deliveries := make([]*model.Delivery, a.Vendors)
	switch policy {
	case Draft:
		deliveries, err = draftDeliveries(in, a, alloc)
		if err != nil {
			return nil, err
		}
	default:
		for v := 0; v < a.Vendors; v++ {
			deliveries[v] = greedyWithin(in, a, v, alloc, shares[v])
		}
	}

	totalLat, totalReqs := 0.0, 0
	for v := 0; v < a.Vendors; v++ {
		m := &res.PerVendor[v]
		m.Vendor = v
		m.Replicas = deliveries[v].Count()
		for i := 0; i < in.N(); i++ {
			m.ReservedMB += float64(sharesOrUsed(shares, deliveries, policy, v, i))
		}
		rateSum := 0.0
		for j := 0; j < in.M(); j++ {
			if a.UserOwner[j] != v {
				continue
			}
			m.Users++
			rateSum += float64(in.UserRate(alloc, j))
		}
		if m.Users > 0 {
			m.RateMBps = rateSum / float64(m.Users)
		}
		latSum, reqs := 0.0, 0
		for j, items := range in.Wl.Requests {
			if a.UserOwner[j] != v {
				continue
			}
			for _, k := range items {
				if a.ItemOwner[k] != v {
					continue // incoherent request; not this vendor's traffic
				}
				latSum += float64(in.RequestLatency(alloc, deliveries[v], j, k))
				reqs++
			}
		}
		if reqs > 0 {
			m.LatencyMs = latSum / float64(reqs) * 1e3
		}
		totalLat += latSum
		totalReqs += reqs
	}
	if totalReqs > 0 {
		res.SystemLatencyMs = totalLat / float64(totalReqs) * 1e3
	}
	res.JainRate = jain(res.PerVendor)
	return res, nil
}

func validate(in *model.Instance, a *Assignment) error {
	if a == nil || a.Vendors <= 0 {
		return fmt.Errorf("vendor: empty assignment")
	}
	if len(a.UserOwner) != in.M() || len(a.ItemOwner) != in.K() {
		return fmt.Errorf("vendor: assignment sized %d/%d for instance %d/%d",
			len(a.UserOwner), len(a.ItemOwner), in.M(), in.K())
	}
	for j, v := range a.UserOwner {
		if v < 0 || v >= a.Vendors {
			return fmt.Errorf("vendor: user %d has owner %d", j, v)
		}
	}
	for k, v := range a.ItemOwner {
		if v < 0 || v >= a.Vendors {
			return fmt.Errorf("vendor: item %d has owner %d", k, v)
		}
	}
	return nil
}

// splitCapacity computes shares[v][i] MB for the static policies; Draft
// ignores it.
func splitCapacity(in *model.Instance, a *Assignment, policy SplitPolicy, alloc model.Allocation) ([][]units.MegaBytes, error) {
	shares := make([][]units.MegaBytes, a.Vendors)
	for v := range shares {
		shares[v] = make([]units.MegaBytes, in.N())
	}
	switch policy {
	case EvenSplit, Draft:
		for i := 0; i < in.N(); i++ {
			per := in.Wl.Capacity[i] / units.MegaBytes(a.Vendors)
			for v := 0; v < a.Vendors; v++ {
				shares[v][i] = per
			}
		}
	case Proportional:
		for i := 0; i < in.N(); i++ {
			weights := make([]float64, a.Vendors)
			total := 0.0
			for _, j := range in.Top.Covered[i] {
				for _, k := range in.Wl.Requests[j] {
					if a.ItemOwner[k] == a.UserOwner[j] {
						weights[a.UserOwner[j]]++
						total++
					}
				}
			}
			for v := 0; v < a.Vendors; v++ {
				if total > 0 {
					shares[v][i] = units.MegaBytes(float64(in.Wl.Capacity[i]) * weights[v] / total)
				} else {
					shares[v][i] = in.Wl.Capacity[i] / units.MegaBytes(a.Vendors)
				}
			}
		}
	default:
		return nil, fmt.Errorf("vendor: unknown policy %v", policy)
	}
	return shares, nil
}

// greedyWithin runs the Eq. 17 greedy for vendor v inside its share.
func greedyWithin(in *model.Instance, a *Assignment, v int, alloc model.Allocation, share []units.MegaBytes) *model.Delivery {
	d := model.NewDelivery(in.N(), in.K())
	ls := newVendorLatency(in, a, v, alloc)
	for {
		bestI, bestK, bestRatio := -1, -1, 0.0
		for i := 0; i < in.N(); i++ {
			for k := 0; k < in.K(); k++ {
				if a.ItemOwner[k] != v || d.Placed(i, k) {
					continue
				}
				size := in.Wl.Items[k].Size
				if d.Used(i)+size > share[i] {
					continue
				}
				if g := ls.gain(i, k); g > 0 {
					if ratio := g / float64(size); ratio > bestRatio {
						bestRatio, bestI, bestK = ratio, i, k
					}
				}
			}
		}
		if bestI < 0 {
			return d
		}
		d.Place(bestI, bestK, in.Wl.Items[bestK].Size)
		ls.commit(bestI, bestK)
	}
}

// draftDeliveries lets vendors alternate picks from the *shared* pool.
func draftDeliveries(in *model.Instance, a *Assignment, alloc model.Allocation) ([]*model.Delivery, error) {
	used := make([]units.MegaBytes, in.N())
	deliveries := make([]*model.Delivery, a.Vendors)
	states := make([]*vendorLatency, a.Vendors)
	for v := 0; v < a.Vendors; v++ {
		deliveries[v] = model.NewDelivery(in.N(), in.K())
		states[v] = newVendorLatency(in, a, v, alloc)
	}
	done := make([]bool, a.Vendors)
	remaining := a.Vendors
	for turn := 0; remaining > 0; turn = (turn + 1) % a.Vendors {
		v := turn
		if done[v] {
			continue
		}
		bestI, bestK, bestRatio := -1, -1, 0.0
		for i := 0; i < in.N(); i++ {
			for k := 0; k < in.K(); k++ {
				if a.ItemOwner[k] != v || deliveries[v].Placed(i, k) {
					continue
				}
				size := in.Wl.Items[k].Size
				if used[i]+size > in.Wl.Capacity[i] {
					continue
				}
				if g := states[v].gain(i, k); g > 0 {
					if ratio := g / float64(size); ratio > bestRatio {
						bestRatio, bestI, bestK = ratio, i, k
					}
				}
			}
		}
		if bestI < 0 {
			done[v] = true
			remaining--
			continue
		}
		size := in.Wl.Items[bestK].Size
		used[bestI] += size
		deliveries[v].Place(bestI, bestK, size)
		states[v].commit(bestI, bestK)
	}
	return deliveries, nil
}

func sharesOrUsed(shares [][]units.MegaBytes, deliveries []*model.Delivery, policy SplitPolicy, v, i int) units.MegaBytes {
	if policy == Draft {
		return deliveries[v].Used(i)
	}
	return shares[v][i]
}

func jain(ms []VendorMetrics) float64 {
	var sum, sumSq float64
	n := 0
	for _, m := range ms {
		if m.Users == 0 {
			continue
		}
		sum += m.RateMBps
		sumSq += m.RateMBps * m.RateMBps
		n++
	}
	if n == 0 || sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(n) * sumSq)
}

// vendorLatency tracks per-request best latencies for one vendor's
// coherent demand.
type vendorLatency struct {
	in    *model.Instance
	alloc model.Allocation
	reqs  []struct{ j, k int }
	cur   []units.Seconds
}

func newVendorLatency(in *model.Instance, a *Assignment, v int, alloc model.Allocation) *vendorLatency {
	vl := &vendorLatency{in: in, alloc: alloc}
	for j, items := range in.Wl.Requests {
		if a.UserOwner[j] != v {
			continue
		}
		for _, k := range items {
			if a.ItemOwner[k] != v {
				continue
			}
			vl.reqs = append(vl.reqs, struct{ j, k int }{j, k})
			vl.cur = append(vl.cur, in.CloudLatency(k))
		}
	}
	return vl
}

func (vl *vendorLatency) latVia(idx, i int) units.Seconds {
	r := vl.reqs[idx]
	a := vl.alloc[r.j]
	if !a.Allocated() {
		return vl.in.CloudLatency(r.k) + 1 // never better
	}
	return vl.in.EdgeLatency(r.k, i, a.Server)
}

func (vl *vendorLatency) gain(i, k int) float64 {
	g := 0.0
	for idx, r := range vl.reqs {
		if r.k != k {
			continue
		}
		if nl := vl.latVia(idx, i); nl < vl.cur[idx] {
			g += float64(vl.cur[idx] - nl)
		}
	}
	return g
}

func (vl *vendorLatency) commit(i, k int) {
	for idx, r := range vl.reqs {
		if r.k != k {
			continue
		}
		if nl := vl.latVia(idx, i); nl < vl.cur[idx] {
			vl.cur[idx] = nl
		}
	}
}

package vendor

import (
	"testing"

	"idde/internal/model"
	"idde/internal/radio"
	"idde/internal/rng"
	"idde/internal/topology"
	"idde/internal/units"
	"idde/internal/workload"
)

func genInstance(t *testing.T, n, m, k int, seed uint64) *model.Instance {
	t.Helper()
	s := rng.New(seed)
	top, err := topology.Generate(topology.DefaultGen(n, m, 1.0), s.Split("top"))
	if err != nil {
		t.Fatalf("topology: %v", err)
	}
	wl, err := workload.Generate(workload.DefaultGen(k), n, m, s.Split("wl"))
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	in, err := model.New(top, wl, radio.Default())
	if err != nil {
		t.Fatalf("model: %v", err)
	}
	return in
}

func TestRandomAssignmentShape(t *testing.T) {
	in := genInstance(t, 12, 80, 6, 1)
	a, err := RandomAssignment(in, 3, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if a.Vendors != 3 || len(a.UserOwner) != 80 || len(a.ItemOwner) != 6 {
		t.Fatalf("assignment malformed: %+v", a)
	}
	counts := make([]int, 3)
	for _, v := range a.UserOwner {
		if v < 0 || v >= 3 {
			t.Fatalf("owner %d out of range", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c == 0 {
			t.Errorf("vendor %d has no users", v)
		}
	}
	if _, err := RandomAssignment(in, 0, rng.New(1)); err == nil {
		t.Error("zero vendors accepted")
	}
}

func TestCompetePoliciesProduceValidResults(t *testing.T) {
	in := genInstance(t, 12, 100, 6, 3)
	a, err := RandomAssignment(in, 3, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range []SplitPolicy{EvenSplit, Proportional, Draft} {
		res, err := Compete(in, a, policy)
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		if len(res.PerVendor) != 3 {
			t.Fatalf("%v: vendor count wrong", policy)
		}
		for _, m := range res.PerVendor {
			if m.Users > 0 && m.RateMBps <= 0 {
				t.Errorf("%v: vendor %d has users but no rate", policy, m.Vendor)
			}
			if m.LatencyMs < 0 || m.ReservedMB < 0 {
				t.Errorf("%v: vendor %d malformed: %+v", policy, m.Vendor, m)
			}
		}
		if res.JainRate <= 0 || res.JainRate > 1+1e-9 {
			t.Errorf("%v: Jain index %v out of range", policy, res.JainRate)
		}
		if res.SystemLatencyMs < 0 {
			t.Errorf("%v: negative system latency", policy)
		}
	}
}

func TestCapacityIsNeverOversubscribed(t *testing.T) {
	in := genInstance(t, 10, 80, 6, 5)
	a, err := RandomAssignment(in, 3, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range []SplitPolicy{EvenSplit, Proportional, Draft} {
		res, err := Compete(in, a, policy)
		if err != nil {
			t.Fatal(err)
		}
		_ = res
		// Recompute combined usage from each vendor's replica count via
		// a fresh competition (deliveries are internal; reserve sums
		// must respect server capacities in aggregate).
		var totalReserved units.MegaBytes
		for _, m := range res.PerVendor {
			totalReserved += units.MegaBytes(m.ReservedMB)
		}
		if policy != Draft && float64(totalReserved) > float64(in.Wl.TotalCapacity())+1e-6 {
			t.Errorf("%v: reserved %v exceeds capacity %v", policy, totalReserved, in.Wl.TotalCapacity())
		}
	}
}

func TestDraftBeatsEvenSplitOnSystemLatency(t *testing.T) {
	// The draft allocates contested storage to whoever gains most per
	// MB, so system-wide latency should not be worse than a blind even
	// split (ties possible on easy instances).
	better, worse := 0, 0
	for seed := uint64(10); seed < 16; seed++ {
		in := genInstance(t, 12, 100, 6, seed)
		a, err := RandomAssignment(in, 3, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		even, err := Compete(in, a, EvenSplit)
		if err != nil {
			t.Fatal(err)
		}
		draft, err := Compete(in, a, Draft)
		if err != nil {
			t.Fatal(err)
		}
		if draft.SystemLatencyMs <= even.SystemLatencyMs+1e-9 {
			better++
		} else {
			worse++
		}
	}
	if worse > better {
		t.Errorf("draft worse than even split in %d of %d rounds", worse, better+worse)
	}
}

func TestCompeteValidation(t *testing.T) {
	in := genInstance(t, 8, 40, 4, 7)
	if _, err := Compete(in, nil, EvenSplit); err == nil {
		t.Error("nil assignment accepted")
	}
	a, _ := RandomAssignment(in, 2, rng.New(8))
	a.UserOwner[0] = 9
	if _, err := Compete(in, a, EvenSplit); err == nil {
		t.Error("bad owner accepted")
	}
	b, _ := RandomAssignment(in, 2, rng.New(8))
	if _, err := Compete(in, b, SplitPolicy(42)); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestPolicyStrings(t *testing.T) {
	if EvenSplit.String() != "even-split" || Proportional.String() != "proportional" || Draft.String() != "draft" {
		t.Error("policy strings wrong")
	}
	if SplitPolicy(9).String() == "" {
		t.Error("unknown policy string empty")
	}
}

// Package radio implements the user–server wireless communication model
// of the paper (§2.2): distance-based channel gain, the
// Signal-to-Interference-plus-Noise Ratio of Eq. (2), the Shannon data
// rate of Eq. (3), and the Lemma 2 interference bound that parametrizes
// the IDDE-U potential function.
//
// The package is pure physics — stateless functions over scalar
// quantities. Bookkeeping of which user sits on which channel (and the
// resulting interference sums) lives in internal/model, which feeds the
// aggregated power terms into these formulas.
package radio

import (
	"math"

	"idde/internal/units"
)

// Model captures the propagation constants of §4.2: the frequency
// dependent factor η, the path-loss exponent, and the additive white
// Gaussian noise floor ω.
type Model struct {
	// Eta is the frequency-dependent factor η in g = η·H^−loss.
	Eta float64
	// Loss is the path-loss exponent (3 in the paper's experiments).
	Loss float64
	// Noise is the AWGN power ω (−174 dBm in the paper's experiments).
	Noise units.Watts
	// RefDist clamps the user–server distance from below so the
	// power-law gain stays finite when a user stands at a server. One
	// meter is the conventional far-field reference distance.
	RefDist units.Meters
}

// Default returns the experimental configuration of §4.2:
// η = 1, loss = 3, ω = −174 dBm, with a 1 m reference distance.
func Default() Model {
	return Model{Eta: 1, Loss: 3, Noise: units.DBm(-174).Watts(), RefDist: 1}
}

// Gain computes the channel gain g_{i,x,j} = η·H^−loss for a user at
// distance d from the server. Distances below RefDist are clamped.
func (m Model) Gain(d units.Meters) float64 {
	h := float64(d)
	if h < float64(m.RefDist) {
		h = float64(m.RefDist)
	}
	return m.Eta * math.Pow(h, -m.Loss)
}

// SINR evaluates Eq. (2) for a user with signal gain g and transmit
// power p, given the total power of the *other* users sharing the
// channel on the same server (intraOther, Σ_{u_t∈U_{i,x}\u_j} p_t) and
// the inter-cell interference power F_{i,x,j} already aggregated over
// neighbouring servers:
//
//	r = g·p / (g·intraOther + F + ω)
func (m Model) SINR(g float64, p units.Watts, intraOther units.Watts, f units.Watts) float64 {
	den := g*float64(intraOther) + float64(f) + float64(m.Noise)
	if den <= 0 {
		return math.Inf(1)
	}
	return g * float64(p) / den
}

// ShannonRate evaluates Eq. (3): R = B·log2(1+r) for channel bandwidth
// B and SINR r. Negative SINRs (which cannot arise from SINR above) are
// treated as zero.
func ShannonRate(b units.Rate, sinr float64) units.Rate {
	if sinr <= 0 {
		return 0
	}
	if math.IsInf(sinr, 1) {
		return units.Rate(math.Inf(1))
	}
	return units.Rate(float64(b) * math.Log2(1+sinr))
}

// CapRate applies the Shannon-capacity ceiling of Eq. (4): a user's
// achievable rate is bounded by its device/network maximum R_{j,max}.
func CapRate(r, max units.Rate) units.Rate {
	if r > max {
		return max
	}
	return r
}

// Lemma2Bound computes T_j of Lemma 2, the largest interference a user
// can tolerate while still achieving its minimum channel rate R_{j,min}
// on a channel of bandwidth B:
//
//	T_j = g·p / (2^{R_min/B} − 1) − ω
//
// The bound weights the "stay unallocated" branch of the potential
// function (Eq. 13).
func (m Model) Lemma2Bound(g float64, p units.Watts, rmin, b units.Rate) units.Watts {
	if b <= 0 {
		return 0
	}
	den := math.Pow(2, float64(rmin)/float64(b)) - 1
	if den <= 0 {
		return units.Watts(math.Inf(1))
	}
	t := g*float64(p)/den - float64(m.Noise)
	if t < 0 {
		return 0
	}
	return units.Watts(t)
}

// InverseShannonSINR reports the SINR needed to reach rate r on
// bandwidth b: 2^{r/B} − 1. It is the inverse of ShannonRate and is used
// in tests and capacity planning.
func InverseShannonSINR(r, b units.Rate) float64 {
	if b <= 0 {
		return math.Inf(1)
	}
	return math.Pow(2, float64(r)/float64(b)) - 1
}

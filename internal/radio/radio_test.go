package radio

import (
	"math"
	"testing"
	"testing/quick"

	"idde/internal/units"
)

func TestDefaultConstants(t *testing.T) {
	m := Default()
	if m.Eta != 1 || m.Loss != 3 {
		t.Errorf("η=%v loss=%v, want 1 and 3", m.Eta, m.Loss)
	}
	// -174 dBm ≈ 3.98e-21 W.
	if math.Abs(float64(m.Noise)-3.98107e-21) > 1e-25 {
		t.Errorf("noise = %v W", float64(m.Noise))
	}
}

func TestGainPowerLaw(t *testing.T) {
	m := Default()
	// g(100m) = 100^-3 = 1e-6.
	if g := m.Gain(100); math.Abs(g-1e-6) > 1e-15 {
		t.Errorf("Gain(100) = %v", g)
	}
	// Doubling distance with loss=3 cuts gain by 8.
	ratio := m.Gain(100) / m.Gain(200)
	if math.Abs(ratio-8) > 1e-9 {
		t.Errorf("gain ratio = %v, want 8", ratio)
	}
}

func TestGainClampsAtRefDist(t *testing.T) {
	m := Default()
	if m.Gain(0) != m.Gain(0.5) || m.Gain(0) != m.Gain(1) {
		t.Error("sub-reference distances should clamp to RefDist gain")
	}
	if math.IsInf(m.Gain(0), 1) || math.IsNaN(m.Gain(0)) {
		t.Error("gain at zero distance must be finite")
	}
}

func TestGainMonotone(t *testing.T) {
	m := Default()
	f := func(aRaw, bRaw float64) bool {
		a := units.Meters(1 + math.Mod(math.Abs(aRaw), 5000))
		b := units.Meters(1 + math.Mod(math.Abs(bRaw), 5000))
		if a > b {
			a, b = b, a
		}
		return m.Gain(a) >= m.Gain(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSINRKnownValue(t *testing.T) {
	m := Model{Eta: 1, Loss: 2, Noise: 1e-9, RefDist: 1}
	// g=1e-4 (100m, loss 2), p=2W, intraOther=1W, F=1e-4 W.
	// r = 1e-4·2 / (1e-4·1 + 1e-4 + 1e-9) ≈ 2e-4/2.00001e-4 ≈ 0.999995.
	r := m.SINR(1e-4, 2, 1, 1e-4)
	if math.Abs(r-0.99999500) > 1e-6 {
		t.Errorf("SINR = %v", r)
	}
}

func TestSINRInterferenceFree(t *testing.T) {
	m := Default()
	g := m.Gain(100)
	r := m.SINR(g, 3, 0, 0)
	want := g * 3 / float64(m.Noise)
	if math.Abs(r-want) > 1e-6*want {
		t.Errorf("noise-limited SINR = %v, want %v", r, want)
	}
	if r < 1e12 {
		t.Errorf("isolated user should be far above noise floor, got %v", r)
	}
}

func TestSINRMonotoneInInterference(t *testing.T) {
	m := Default()
	f := func(fRaw, gRaw float64) bool {
		g := m.Gain(units.Meters(50 + math.Mod(math.Abs(gRaw), 500)))
		f1 := units.Watts(math.Mod(math.Abs(fRaw), 1e-3))
		f2 := f1 + 1e-6
		return m.SINR(g, 2, 0, f1) >= m.SINR(g, 2, 0, f2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSINRDegenerateDenominator(t *testing.T) {
	m := Model{Eta: 1, Loss: 3, Noise: 0, RefDist: 1}
	if r := m.SINR(1e-6, 2, 0, 0); !math.IsInf(r, 1) {
		t.Errorf("zero denominator should give +Inf, got %v", r)
	}
}

func TestShannonRate(t *testing.T) {
	// B=200, SINR=1 → 200·log2(2) = 200.
	if r := ShannonRate(200, 1); math.Abs(float64(r)-200) > 1e-9 {
		t.Errorf("rate = %v", r)
	}
	// SINR=3 → log2(4)=2 → 400.
	if r := ShannonRate(200, 3); math.Abs(float64(r)-400) > 1e-9 {
		t.Errorf("rate = %v", r)
	}
	if r := ShannonRate(200, 0); r != 0 {
		t.Errorf("zero SINR rate = %v", r)
	}
	if r := ShannonRate(200, -1); r != 0 {
		t.Errorf("negative SINR rate = %v", r)
	}
	if r := ShannonRate(200, math.Inf(1)); !math.IsInf(float64(r), 1) {
		t.Errorf("infinite SINR rate = %v", r)
	}
}

func TestCapRate(t *testing.T) {
	if r := CapRate(500, 250); r != 250 {
		t.Errorf("CapRate = %v", r)
	}
	if r := CapRate(100, 250); r != 100 {
		t.Errorf("CapRate = %v", r)
	}
}

func TestInverseShannonRoundTrip(t *testing.T) {
	f := func(rRaw float64) bool {
		r := units.Rate(math.Mod(math.Abs(rRaw), 1000))
		sinr := InverseShannonSINR(r, 200)
		back := ShannonRate(200, sinr)
		return math.Abs(float64(back-r)) <= 1e-9*math.Max(1, float64(r))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if !math.IsInf(InverseShannonSINR(100, 0), 1) {
		t.Error("zero bandwidth should need infinite SINR")
	}
}

func TestLemma2Bound(t *testing.T) {
	m := Default()
	g := m.Gain(100)
	p := units.Watts(3)
	// At R_min = B, the tolerable interference is g·p/(2^1−1) − ω = g·p − ω.
	got := m.Lemma2Bound(g, p, 200, 200)
	want := g*float64(p) - float64(m.Noise)
	if math.Abs(float64(got)-want) > 1e-9*want {
		t.Errorf("T_j = %v, want %v", float64(got), want)
	}
	// Higher required rate → lower tolerable interference.
	if m.Lemma2Bound(g, p, 400, 200) >= m.Lemma2Bound(g, p, 100, 200) {
		t.Error("Lemma2Bound not decreasing in required rate")
	}
	// Zero rate requirement tolerates unbounded interference.
	if !math.IsInf(float64(m.Lemma2Bound(g, p, 0, 200)), 1) {
		t.Error("zero rate should tolerate infinite interference")
	}
	// Negative results clamp to zero.
	tiny := Model{Eta: 1, Loss: 3, Noise: 1, RefDist: 1}
	if b := tiny.Lemma2Bound(1e-9, 1, 200, 200); b != 0 {
		t.Errorf("negative bound not clamped: %v", b)
	}
	if b := m.Lemma2Bound(g, p, 200, 0); b != 0 {
		t.Errorf("zero bandwidth bound = %v, want 0", b)
	}
}

// TestRateRealismAtPaperScale sanity-checks that the §4.2 constants put
// uncontended users far above any plausible R_max cap (so R_max binds,
// matching Fig. 4's ≈196 MBps at M=50) and contended users well below it.
func TestRateRealismAtPaperScale(t *testing.T) {
	m := Default()
	g := m.Gain(300) // mid-coverage distance
	solo := ShannonRate(200, m.SINR(g, 3, 0, 0))
	if solo < 5000 {
		t.Errorf("uncontended Shannon rate %v unexpectedly low", solo)
	}
	// Three equal-power users sharing a channel: SINR ≈ 1/2.
	shared := ShannonRate(200, m.SINR(g, 3, 6, 0))
	if shared > 200 || shared < 50 {
		t.Errorf("contended rate %v outside plausible band", shared)
	}
}

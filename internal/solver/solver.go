// Package solver provides a time-budgeted anytime search over arbitrary
// combinatorial states: multi-start hill climbing with an optional
// simulated-annealing acceptance rule. It is the stand-in for the IBM
// CPLEX CP Optimizer used by the paper's IDDE-IP baseline (§4.1): like
// the CP optimizer with its 100-second search cap, it consumes a fixed
// time budget and returns the best feasible incumbent found, without any
// optimality guarantee. See DESIGN.md §4 for the substitution rationale.
package solver

import (
	"math"
	"time"

	"idde/internal/rng"
)

// Problem describes a maximization problem over states of type S.
// Implementations must keep Score pure and make Mutate produce only
// feasible states.
type Problem[S any] interface {
	// Initial builds a feasible starting state.
	Initial(r *rng.Stream) S
	// Clone deep-copies a state.
	Clone(s S) S
	// Mutate perturbs s in place into a random feasible neighbor.
	Mutate(s S, r *rng.Stream)
	// Score evaluates s; higher is better.
	Score(s S) float64
}

// Options bounds the search. At least one of Budget or MaxIters must be
// set; the search stops at whichever limit is hit first.
type Options struct {
	// Budget is the wall-clock cap (the paper caps CPLEX at 100 s).
	Budget time.Duration
	// MaxIters caps candidate evaluations; used for deterministic tests.
	MaxIters int
	// RestartAfter restarts from a fresh Initial after this many
	// non-improving iterations (0 = n/50 of MaxIters or 2000).
	RestartAfter int
	// Anneal enables simulated-annealing acceptance of downhill moves.
	Anneal bool
	// InitTemp is the initial temperature relative to the initial
	// score's magnitude (default 0.1).
	InitTemp float64
	// Seed drives all randomness.
	Seed uint64
}

// Result reports the incumbent and search statistics.
type Result[S any] struct {
	Best      S
	BestScore float64
	// Iterations counts evaluated candidates; Restarts counts fresh
	// starts beyond the first.
	Iterations int
	Restarts   int
	Elapsed    time.Duration
	// HitBudget reports whether the time budget (rather than MaxIters
	// or natural exhaustion) ended the search — the signature behaviour
	// of the IDDE-IP baseline.
	HitBudget bool
}

// Maximize runs the anytime search.
func Maximize[S any](p Problem[S], opt Options) Result[S] {
	if opt.Budget <= 0 && opt.MaxIters <= 0 {
		opt.MaxIters = 10000
	}
	if opt.RestartAfter <= 0 {
		opt.RestartAfter = 2000
	}
	if opt.InitTemp <= 0 {
		opt.InitTemp = 0.1
	}
	r := rng.New(opt.Seed)
	start := time.Now()
	deadline := time.Time{}
	if opt.Budget > 0 {
		deadline = start.Add(opt.Budget)
	}

	cur := p.Initial(r.Split("init"))
	curScore := p.Score(cur)
	res := Result[S]{Best: p.Clone(cur), BestScore: curScore}

	temp := opt.InitTemp * (math.Abs(curScore) + 1)
	mut := r.Split("mutate")
	acc := r.Split("accept")
	sinceImprove := 0

	for {
		if opt.MaxIters > 0 && res.Iterations >= opt.MaxIters {
			break
		}
		// Checking the clock every iteration costs more than the
		// mutations at small state sizes; sample it.
		if !deadline.IsZero() && res.Iterations%64 == 0 && time.Now().After(deadline) {
			res.HitBudget = true
			break
		}
		cand := p.Clone(cur)
		p.Mutate(cand, mut)
		score := p.Score(cand)
		res.Iterations++

		accept := score > curScore
		if !accept && opt.Anneal && temp > 1e-12 {
			if delta := score - curScore; delta > -20*temp {
				accept = acc.Float64() < math.Exp(delta/temp)
			}
			temp *= 0.9995
		}
		if accept {
			cur, curScore = cand, score
			if score > res.BestScore {
				res.Best = p.Clone(cand)
				res.BestScore = score
				sinceImprove = 0
				continue
			}
		}
		sinceImprove++
		if sinceImprove >= opt.RestartAfter {
			res.Restarts++
			cur = p.Initial(r.SplitN("restart", res.Restarts))
			curScore = p.Score(cur)
			if curScore > res.BestScore {
				res.Best = p.Clone(cur)
				res.BestScore = curScore
			}
			temp = opt.InitTemp * (math.Abs(curScore) + 1)
			sinceImprove = 0
		}
	}
	res.Elapsed = time.Since(start)
	return res
}

package solver

import (
	"math"
	"testing"
	"time"

	"idde/internal/rng"
)

// onesProblem: state is a bit vector; score is the number of ones.
// Optimum = all ones. Hill climbing solves it trivially.
type onesProblem struct{ n int }

func (p onesProblem) Initial(r *rng.Stream) []bool {
	s := make([]bool, p.n)
	for i := range s {
		s[i] = r.Bool(0.2)
	}
	return s
}
func (p onesProblem) Clone(s []bool) []bool { return append([]bool(nil), s...) }
func (p onesProblem) Mutate(s []bool, r *rng.Stream) {
	i := r.IntN(len(s))
	s[i] = !s[i]
}
func (p onesProblem) Score(s []bool) float64 {
	n := 0.0
	for _, b := range s {
		if b {
			n++
		}
	}
	return n
}

// trapProblem has a deceptive local optimum at all-zeros (score n/2)
// and a global optimum at all-ones (score n); single flips from near
// zero lose score, so escaping needs annealing or restarts.
type trapProblem struct{ n int }

func (p trapProblem) Initial(r *rng.Stream) []bool { return make([]bool, p.n) }
func (p trapProblem) Clone(s []bool) []bool        { return append([]bool(nil), s...) }
func (p trapProblem) Mutate(s []bool, r *rng.Stream) {
	i := r.IntN(len(s))
	s[i] = !s[i]
}
func (p trapProblem) Score(s []bool) float64 {
	ones := 0
	for _, b := range s {
		if b {
			ones++
		}
	}
	if ones == 0 {
		return float64(p.n) / 2
	}
	return float64(ones)
}

func TestHillClimbSolvesOnes(t *testing.T) {
	p := onesProblem{n: 40}
	res := Maximize[[]bool](p, Options{MaxIters: 20000, Seed: 1})
	if res.BestScore != 40 {
		t.Errorf("BestScore = %v, want 40", res.BestScore)
	}
	if res.Iterations == 0 || res.Iterations > 20000 {
		t.Errorf("Iterations = %d", res.Iterations)
	}
}

func TestDeterministicWithMaxIters(t *testing.T) {
	p := onesProblem{n: 30}
	a := Maximize[[]bool](p, Options{MaxIters: 5000, Seed: 7})
	b := Maximize[[]bool](p, Options{MaxIters: 5000, Seed: 7})
	if a.BestScore != b.BestScore || a.Restarts != b.Restarts {
		t.Error("same seed produced different results")
	}
	c := Maximize[[]bool](p, Options{MaxIters: 5000, Seed: 8})
	_ = c // different seed may coincide in score; just ensure it runs
}

func TestAnnealingEscapesTrap(t *testing.T) {
	p := trapProblem{n: 12}
	plain := Maximize[[]bool](p, Options{MaxIters: 40000, Seed: 3, RestartAfter: 1 << 30})
	annealed := Maximize[[]bool](p, Options{MaxIters: 40000, Seed: 3, Anneal: true, InitTemp: 0.5, RestartAfter: 1 << 30})
	if annealed.BestScore < plain.BestScore {
		t.Errorf("annealing (%v) did worse than plain (%v)", annealed.BestScore, plain.BestScore)
	}
	if annealed.BestScore != 12 {
		t.Errorf("annealing stuck at %v, want 12", annealed.BestScore)
	}
}

// randomTrap is the trap with random initial states: most starts land
// in the all-zero basin, so escaping requires fresh restarts.
type randomTrap struct{ trapProblem }

func (p randomTrap) Initial(r *rng.Stream) []bool {
	s := make([]bool, p.n)
	for i := range s {
		s[i] = r.Bool(0.1)
	}
	return s
}

func TestRestartsEscapeTrapToo(t *testing.T) {
	p := randomTrap{trapProblem{n: 12}}
	res := Maximize[[]bool](p, Options{MaxIters: 60000, Seed: 5, RestartAfter: 300})
	if res.BestScore != 12 {
		t.Errorf("restarts stuck at %v, want 12", res.BestScore)
	}
}

func TestBudgetStopsSearch(t *testing.T) {
	p := onesProblem{n: 1000}
	start := time.Now()
	res := Maximize[[]bool](p, Options{Budget: 30 * time.Millisecond, Seed: 2})
	elapsed := time.Since(start)
	if !res.HitBudget {
		t.Error("HitBudget not reported")
	}
	if elapsed > 500*time.Millisecond {
		t.Errorf("search ran %v past a 30ms budget", elapsed)
	}
}

func TestIncumbentNeverRegresses(t *testing.T) {
	p := trapProblem{n: 10}
	res := Maximize[[]bool](p, Options{MaxIters: 5000, Seed: 11, Anneal: true})
	// The incumbent must be at least the deceptive optimum available at
	// the start state.
	if res.BestScore < 5 {
		t.Errorf("BestScore %v below initial score 5", res.BestScore)
	}
	if got := p.Score(res.Best); math.Abs(got-res.BestScore) > 1e-12 {
		t.Errorf("returned state scores %v but BestScore = %v", got, res.BestScore)
	}
}

func TestDefaultsWhenNoLimits(t *testing.T) {
	p := onesProblem{n: 10}
	res := Maximize[[]bool](p, Options{Seed: 4})
	if res.Iterations == 0 {
		t.Error("defaulted options did not run")
	}
	if res.HitBudget {
		t.Error("HitBudget without a budget")
	}
}

// Package units defines the physical quantities used throughout the IDDE
// system — transmit power, data size, data rate and latency — as distinct
// named types so that the signal-processing, storage and latency code
// cannot accidentally mix dimensions.
//
// The paper's evaluation (§4.2) quotes bandwidth and data rates in MBps,
// data sizes in MB, powers in Watts and noise in dBm, so those are the
// canonical units here. All types are thin float64 wrappers; arithmetic on
// the underlying values stays allocation-free and vectorizable.
package units

import (
	"fmt"
	"math"
	"time"
)

// Watts is a transmit power in Watts.
type Watts float64

// DBm is a power expressed in decibel-milliwatts.
type DBm float64

// Watts converts a dBm figure to Watts: P(W) = 10^((dBm-30)/10).
func (d DBm) Watts() Watts {
	return Watts(math.Pow(10, (float64(d)-30)/10))
}

// DBm converts a power in Watts to dBm: 10·log10(P/1mW).
func (w Watts) DBm() DBm {
	return DBm(10*math.Log10(float64(w)) + 30)
}

func (w Watts) String() string { return fmt.Sprintf("%gW", float64(w)) }
func (d DBm) String() string   { return fmt.Sprintf("%gdBm", float64(d)) }

// MegaBytes is a data volume in MB. Storage capacities and data item
// sizes (Eq. 6) are integral MB in the paper, but fractional values are
// allowed for intermediate arithmetic.
type MegaBytes float64

func (m MegaBytes) String() string { return fmt.Sprintf("%gMB", float64(m)) }

// Rate is a data rate in MB per second (MBps), the unit used for channel
// bandwidth B_{i,x}, user data rates R_j and link speeds in §4.2.
type Rate float64

func (r Rate) String() string { return fmt.Sprintf("%gMBps", float64(r)) }

// Seconds is a latency or duration in seconds. The paper reports
// latencies in milliseconds; Millis provides that view.
type Seconds float64

// Millis reports the duration in milliseconds.
func (s Seconds) Millis() float64 { return float64(s) * 1e3 }

// Duration converts to a time.Duration (truncated to nanoseconds).
func (s Seconds) Duration() time.Duration {
	return time.Duration(float64(s) * float64(time.Second))
}

// FromDuration converts a time.Duration to Seconds.
func FromDuration(d time.Duration) Seconds { return Seconds(d.Seconds()) }

func (s Seconds) String() string {
	if s < 1 {
		return fmt.Sprintf("%.3fms", s.Millis())
	}
	return fmt.Sprintf("%.3fs", float64(s))
}

// TransferTime reports how long moving size at rate takes. A non-positive
// rate yields +Inf, representing an unreachable path.
func TransferTime(size MegaBytes, rate Rate) Seconds {
	if rate <= 0 {
		return Seconds(math.Inf(1))
	}
	return Seconds(float64(size) / float64(rate))
}

// SecondsPerMB is an inverse bandwidth: the cost of moving one MB across
// a link or path. Shortest-path routing minimizes the sum of these, which
// is independent of the data size being moved (the size multiplies every
// hop equally), so all-pairs path costs can be precomputed once.
type SecondsPerMB float64

// Times scales the per-MB cost by a data size, giving a latency.
func (c SecondsPerMB) Times(size MegaBytes) Seconds {
	return Seconds(float64(c) * float64(size))
}

// PerMB returns the inverse of a rate as a per-MB transfer cost.
func PerMB(r Rate) SecondsPerMB {
	if r <= 0 {
		return SecondsPerMB(math.Inf(1))
	}
	return SecondsPerMB(1 / float64(r))
}

// Meters is a planar distance in meters, used by the channel-gain model
// g = η·H^−loss where H is the user–server distance.
type Meters float64

func (m Meters) String() string { return fmt.Sprintf("%gm", float64(m)) }

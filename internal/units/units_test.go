package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestDBmToWatts(t *testing.T) {
	cases := []struct {
		dbm  DBm
		want Watts
	}{
		{30, 1},                        // 30 dBm = 1 W
		{0, 0.001},                     // 0 dBm = 1 mW
		{-30, 1e-6},                    // -30 dBm = 1 µW
		{-174, 3.9810717055349565e-21}, // thermal noise floor used in §4.2
	}
	for _, c := range cases {
		got := c.dbm.Watts()
		if math.Abs(float64(got-c.want)) > 1e-9*math.Abs(float64(c.want)) {
			t.Errorf("DBm(%v).Watts() = %v, want %v", c.dbm, got, c.want)
		}
	}
}

func TestWattsToDBmRoundTrip(t *testing.T) {
	f := func(raw float64) bool {
		// Map raw into a positive power range (1 pW .. 100 W).
		p := Watts(1e-12 + math.Mod(math.Abs(raw), 100))
		back := p.DBm().Watts()
		return math.Abs(float64(back-p)) < 1e-9*float64(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTransferTime(t *testing.T) {
	if got := TransferTime(600, 600); got != 1 {
		t.Errorf("600MB at 600MBps = %v, want 1s", got)
	}
	if got := TransferTime(30, 6000); math.Abs(float64(got)-0.005) > 1e-12 {
		t.Errorf("30MB at 6000MBps = %v, want 5ms", got)
	}
	if got := TransferTime(30, 0); !math.IsInf(float64(got), 1) {
		t.Errorf("zero rate should be +Inf, got %v", got)
	}
	if got := TransferTime(30, -5); !math.IsInf(float64(got), 1) {
		t.Errorf("negative rate should be +Inf, got %v", got)
	}
}

func TestPerMBTimesMatchesTransferTime(t *testing.T) {
	f := func(sizeRaw, rateRaw float64) bool {
		size := MegaBytes(math.Mod(math.Abs(sizeRaw), 1000))
		rate := Rate(1 + math.Mod(math.Abs(rateRaw), 6000))
		direct := TransferTime(size, rate)
		viaCost := PerMB(rate).Times(size)
		return math.Abs(float64(direct-viaCost)) <= 1e-12*math.Max(1, math.Abs(float64(direct)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPerMBNonPositive(t *testing.T) {
	if c := PerMB(0); !math.IsInf(float64(c), 1) {
		t.Errorf("PerMB(0) = %v, want +Inf", c)
	}
}

func TestSecondsViews(t *testing.T) {
	s := Seconds(0.0125)
	if s.Millis() != 12.5 {
		t.Errorf("Millis = %v, want 12.5", s.Millis())
	}
	if s.Duration() != 12500*time.Microsecond {
		t.Errorf("Duration = %v", s.Duration())
	}
	if got := FromDuration(250 * time.Millisecond); got != 0.25 {
		t.Errorf("FromDuration = %v", got)
	}
}

func TestStringFormats(t *testing.T) {
	if s := Seconds(0.005).String(); s != "5.000ms" {
		t.Errorf("sub-second String = %q", s)
	}
	if s := Seconds(2.5).String(); s != "2.500s" {
		t.Errorf("seconds String = %q", s)
	}
	if s := MegaBytes(90).String(); s != "90MB" {
		t.Errorf("MegaBytes String = %q", s)
	}
	if s := Rate(200).String(); s != "200MBps" {
		t.Errorf("Rate String = %q", s)
	}
	if s := Watts(2).String(); s != "2W" {
		t.Errorf("Watts String = %q", s)
	}
	if s := DBm(-174).String(); s != "-174dBm" {
		t.Errorf("DBm String = %q", s)
	}
	if s := Meters(450).String(); s != "450m" {
		t.Errorf("Meters String = %q", s)
	}
}

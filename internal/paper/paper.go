// Package paper records the numbers the paper's evaluation section
// (§4.5) actually quotes, as data, so the harness can print a
// paper-vs-measured comparison for every figure. Absolute values are
// not expected to match (the substrate is a simulator, not the authors'
// testbed and CPLEX license); the *shape* — who wins, by roughly what
// factor, how curves move — is what EXPERIMENTS.md verifies.
package paper

import (
	"fmt"
	"strings"

	"idde/internal/experiment"
)

// Approach names in the paper's legend order, minus IDDE-G itself.
var Baselines = []string{"IDDE-IP", "SAA", "CDP", "DUP-G"}

// Advantages are IDDE-G's mean relative advantages in percent, in the
// orientation the paper quotes: rate = (ours−theirs)/theirs, latency =
// (theirs−ours)/theirs.
type Advantages struct {
	Rate    map[string]float64
	Latency map[string]float64
}

// Overall is §4.5.1's headline: "the average advantage of IDDE-G in
// terms of data rate is 9.20% over IDDE-IP, 53.27% over SAA, 29.40%
// over CDP and 41.56% over DUP-G … latency … 82.61%, 71.60%, 84.60%
// and 85.04%".
var Overall = Advantages{
	Rate:    map[string]float64{"IDDE-IP": 9.20, "SAA": 53.27, "CDP": 29.40, "DUP-G": 41.56},
	Latency: map[string]float64{"IDDE-IP": 82.61, "SAA": 71.60, "CDP": 84.60, "DUP-G": 85.04},
}

// PerSet are the per-set advantages quoted in §4.5.1. The paper does
// not quote Set #2/#3 latency advantages or Set #2/#3 splits for every
// baseline; missing entries are simply absent.
var PerSet = map[int]Advantages{
	1: {
		Rate:    map[string]float64{"IDDE-IP": 10.36, "SAA": 55.55, "CDP": 28.99, "DUP-G": 41.51},
		Latency: map[string]float64{"IDDE-IP": 83.16, "SAA": 70.42, "CDP": 84.05, "DUP-G": 82.76},
	},
	2: {
		Rate: map[string]float64{"IDDE-IP": 5.47, "SAA": 45.43, "CDP": 26.32, "DUP-G": 29.15},
	},
	3: {
		Rate: map[string]float64{"IDDE-IP": 7.25, "SAA": 50.03, "CDP": 25.69, "DUP-G": 43.19},
	},
	4: {
		Rate:    map[string]float64{"IDDE-IP": 13.94, "SAA": 62.92, "CDP": 36.87, "DUP-G": 54.91},
		Latency: map[string]float64{"IDDE-IP": 90.38, "SAA": 75.91, "CDP": 89.63, "DUP-G": 86.72},
	},
}

// Set2RateEndpoints are §4.5.1's Fig. 4(a) endpoints: R_avg at M=50 and
// M=350 per approach, in MBps.
var Set2RateEndpoints = map[string][2]float64{
	"IDDE-G":  {196.71, 68.48},
	"IDDE-IP": {196.06, 62.01},
	"SAA":     {143.75, 49.60},
	"CDP":     {153.62, 60.87},
	"DUP-G":   {174.76, 58.26},
}

// Set3LatencyRange are Fig. 5(b)'s quoted ranges: L_avg at K=2 and K=8
// per approach, in ms.
var Set3LatencyRange = map[string][2]float64{
	"IDDE-G":  {2.61, 7.52},
	"IDDE-IP": {18.58, 38.50},
	"SAA":     {9.33, 22.12},
	"CDP":     {24.12, 36.80},
	"DUP-G":   {32.16, 48.88},
}

// Set3LatencyMean are §4.5.1's Set #3 mean latencies in ms.
var Set3LatencyMean = map[string]float64{
	"IDDE-G": 5.22, "IDDE-IP": 27.98, "SAA": 16.88, "CDP": 31.26, "DUP-G": 41.10,
}

// Fig7MeanSeconds are §4.5.2's mean computation times in seconds. The
// paper caps CPLEX at 100 s of search; our IDDE-IP budget is
// configurable, so only the *ordering* is checked against this row.
var Fig7MeanSeconds = map[string]float64{
	"IDDE-IP": 135.3881, "SAA": 0.6626, "IDDE-G": 0.3620, "CDP": 0.1691, "DUP-G": 0.3716,
}

// Fig1ApproxMeansMs are Figure 1's approximate bar heights in ms (read
// off the plot; the paper prints no table).
var Fig1ApproxMeansMs = map[string]float64{
	"Edge": 10, "Singapore": 100, "London": 250, "Frankfurt": 270,
}

// Check is one paper-vs-measured comparison row.
type Check struct {
	Name     string
	Paper    float64
	Measured float64
	Unit     string
	// OK is the shape verdict: the measured value agrees with the
	// paper in sign/direction (not magnitude).
	OK bool
}

// CompareAdvantages computes IDDE-G's measured advantages for a set and
// lines them up with the paper's quoted values where present. A row is
// OK when the measured advantage is positive (IDDE-G wins), which is
// the claim the paper's sentence encodes.
func CompareAdvantages(sr *experiment.SetResult) []Check {
	quoted := PerSet[sr.Set.ID]
	var out []Check
	for _, name := range Baselines {
		measured := sr.Advantage(name, experiment.RateMetric) * 100
		row := Check{
			Name:     fmt.Sprintf("Set #%d rate advantage vs %s", sr.Set.ID, name),
			Measured: measured,
			Unit:     "%",
			OK:       measured > 0,
		}
		if quoted.Rate != nil {
			row.Paper = quoted.Rate[name]
		}
		out = append(out, row)
	}
	for _, name := range Baselines {
		measured := sr.Advantage(name, experiment.LatencyMetric) * 100
		row := Check{
			Name:     fmt.Sprintf("Set #%d latency advantage vs %s", sr.Set.ID, name),
			Measured: measured,
			Unit:     "%",
			OK:       measured > 0,
		}
		if quoted.Latency != nil {
			row.Paper = quoted.Latency[name]
		}
		out = append(out, row)
	}
	return out
}

// Markdown renders checks as a table. Rows with no quoted paper value
// print a dash.
func Markdown(checks []Check) string {
	var b strings.Builder
	b.WriteString("| Quantity | Paper | Measured | Shape |\n|---|---|---|---|\n")
	for _, c := range checks {
		pv := "—"
		if c.Paper != 0 {
			pv = fmt.Sprintf("%.2f%s", c.Paper, c.Unit)
		}
		verdict := "✗"
		if c.OK {
			verdict = "✓"
		}
		fmt.Fprintf(&b, "| %s | %s | %.2f%s | %s |\n", c.Name, pv, c.Measured, c.Unit, verdict)
	}
	return b.String()
}

package paper

import (
	"strings"
	"testing"

	"idde/internal/baseline"
	"idde/internal/experiment"
)

func TestQuotedTablesComplete(t *testing.T) {
	for _, name := range Baselines {
		if _, ok := Overall.Rate[name]; !ok {
			t.Errorf("Overall.Rate missing %s", name)
		}
		if _, ok := Overall.Latency[name]; !ok {
			t.Errorf("Overall.Latency missing %s", name)
		}
	}
	for _, name := range append([]string{"IDDE-G"}, Baselines...) {
		if _, ok := Set2RateEndpoints[name]; !ok {
			t.Errorf("Set2RateEndpoints missing %s", name)
		}
		if _, ok := Set3LatencyRange[name]; !ok {
			t.Errorf("Set3LatencyRange missing %s", name)
		}
		if _, ok := Fig7MeanSeconds[name]; !ok {
			t.Errorf("Fig7MeanSeconds missing %s", name)
		}
	}
}

func TestQuotedValuesInternallyConsistent(t *testing.T) {
	// Rates decrease from M=50 to M=350 for every approach (Fig. 4a).
	for name, ep := range Set2RateEndpoints {
		if ep[0] <= ep[1] {
			t.Errorf("%s: Set2 endpoints not decreasing: %v", name, ep)
		}
	}
	// Latencies increase from K=2 to K=8 (Fig. 5b).
	for name, r := range Set3LatencyRange {
		if r[0] >= r[1] {
			t.Errorf("%s: Set3 range not increasing: %v", name, r)
		}
	}
	// IDDE-G has the lowest quoted Set-3 mean latency.
	for name, v := range Set3LatencyMean {
		if name != "IDDE-G" && v <= Set3LatencyMean["IDDE-G"] {
			t.Errorf("%s quoted latency %v not above IDDE-G", name, v)
		}
	}
}

// TestSet2EndpointShape reproduces the quoted Fig. 4(a) endpoints'
// qualitative content on live runs: every approach's rate falls sharply
// from M=50 to M=350, IDDE-G is highest at both endpoints, and its
// relative drop is within a few points of the paper's −65.2%.
func TestSet2EndpointShape(t *testing.T) {
	if testing.Short() {
		t.Skip("endpoint reproduction skipped in -short")
	}
	set := experiment.Set{
		ID: 2, Vary: "M", Values: []float64{50, 350},
		Base: experiment.Params{N: 30, K: 5, Density: 1.0},
	}
	cfg := experiment.Config{
		Reps: 3, Seed: 2022,
		Approaches: []baseline.Approach{
			baseline.NewIDDEG(), baseline.NewSAA(), baseline.NewCDP(), baseline.NewDUPG(),
		},
	}
	sr, err := experiment.RunSet(set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	at := func(pi int, name string) float64 { return sr.Points[pi].ByApproach[name].Rate.Mean }
	for _, name := range []string{"IDDE-G", "SAA", "CDP", "DUP-G"} {
		lo, hi := at(1, name), at(0, name)
		if hi <= lo {
			t.Errorf("%s: rate did not fall with M: %v -> %v", name, hi, lo)
		}
		if name != "IDDE-G" {
			if at(0, "IDDE-G") < at(0, name) || at(1, "IDDE-G") < at(1, name) {
				t.Errorf("IDDE-G not highest at an endpoint vs %s", name)
			}
		}
	}
	drop := 1 - at(1, "IDDE-G")/at(0, "IDDE-G")
	paperDrop := 1 - Set2RateEndpoints["IDDE-G"][1]/Set2RateEndpoints["IDDE-G"][0]
	if drop < paperDrop-0.10 || drop > paperDrop+0.10 {
		t.Errorf("IDDE-G endpoint drop %.1f%% outside ±10pp of paper's %.1f%%", drop*100, paperDrop*100)
	}
}

func TestCompareAdvantagesAndMarkdown(t *testing.T) {
	set := experiment.Set{
		ID: 1, Vary: "N", Values: []float64{10},
		Base: experiment.Params{M: 60, K: 3, Density: 1.0},
	}
	cfg := experiment.Config{
		Reps: 2, Seed: 5,
		Approaches: []baseline.Approach{
			&baseline.IDDEIP{MaxIters: 300, Anneal: true},
			baseline.NewIDDEG(), baseline.NewSAA(), baseline.NewCDP(), baseline.NewDUPG(),
		},
	}
	sr, err := experiment.RunSet(set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checks := CompareAdvantages(sr)
	if len(checks) != 8 {
		t.Fatalf("checks = %d, want 8", len(checks))
	}
	okCount := 0
	for _, c := range checks {
		if c.OK {
			okCount++
		}
	}
	if okCount < 6 {
		t.Errorf("only %d/8 shape checks passed on a standard instance", okCount)
	}
	md := Markdown(checks)
	for _, want := range []string{"| Quantity |", "Set #1 rate advantage vs SAA", "✓"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q", want)
		}
	}
}
